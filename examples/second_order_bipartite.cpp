// Second-order queries on unreliable data: how reliable is "the network
// is bipartite"?
//
// Bipartiteness (2-colourability) is not first-order expressible — it
// needs an existential second-order quantifier: ∃C ∀x∀y (E(x,y) →
// (C(x) ↔ ¬C(y))). Theorem 4.2 covers such queries ("for all second-order
// queries, the reliability problem is in FP^#P"); this example runs that
// upper bound on a small switch fabric whose cabling records are partly
// unreliable.

#include <cstdio>
#include <memory>

#include "qrel/core/reliability.h"
#include "qrel/logic/parser.h"
#include "qrel/logic/second_order.h"

int main() {
  // Intended fabric: an even 6-ring (leaf/spine alternation — bipartite).
  auto vocabulary = std::make_shared<qrel::Vocabulary>();
  int e = vocabulary->AddRelation("E", 2);
  qrel::Structure observed(vocabulary, 6);
  auto edge = [&](int u, int v) {
    observed.AddFact(e, {static_cast<qrel::Element>(u),
                         static_cast<qrel::Element>(v)});
    observed.AddFact(e, {static_cast<qrel::Element>(v),
                         static_cast<qrel::Element>(u)});
  };
  for (int i = 0; i < 6; ++i) {
    edge(i, (i + 1) % 6);
  }
  qrel::UnreliableDatabase db(std::move(observed));
  // Two rumoured patch cables; either would create an odd cycle.
  db.SetErrorProbability(qrel::GroundAtom{e, {0, 2}}, qrel::Rational(1, 10));
  db.SetErrorProbability(qrel::GroundAtom{e, {1, 4}}, qrel::Rational(1, 8));
  // One recorded ring cable might be dead (which cannot break
  // bipartiteness — removing edges never does).
  db.SetErrorProbability(qrel::GroundAtom{e, {3, 4}}, qrel::Rational(1, 5));

  qrel::SecondOrderQuery bipartite;
  bipartite.relation_variables = {{"C", 1}};
  bipartite.matrix =
      *qrel::ParseFormula("forall x y . E(x, y) -> (C(x) <-> !C(y))");
  qrel::StatusOr<qrel::CompiledSecondOrder> compiled =
      qrel::CompiledSecondOrder::Compile(bipartite, db.vocabulary());
  if (!compiled.ok()) {
    std::fprintf(stderr, "compile: %s\n",
                 compiled.status().ToString().c_str());
    return 1;
  }

  qrel::StatusOr<bool> now = compiled->EvalSigma11(db.observed());
  std::printf("query      : EXISTS C . forall x y . E(x,y) -> (C(x) <-> "
              "!C(y))   [Sigma^1_1]\n");
  std::printf("observed   : fabric %s bipartite\n",
              *now ? "IS" : "is NOT");

  qrel::StatusOr<qrel::ReliabilityReport> report =
      qrel::ExactSecondOrderReliability(*compiled, db);
  if (!report.ok()) {
    std::fprintf(stderr, "reliability: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::printf("reliability: %s (= %.6f) over %llu worlds\n",
              report->reliability.ToString().c_str(),
              report->reliability.ToDouble(),
              static_cast<unsigned long long>(report->work_units));
  std::printf(
      "\nInterpretation: with probability H = %s the *actual* fabric is\n"
      "not bipartite even though the observed one is — one of the\n"
      "rumoured patch cables exists and closes an odd cycle. Note the\n"
      "possibly-dead ring cable contributes nothing: deleting edges\n"
      "cannot destroy bipartiteness, and the exact computation knows it.\n",
      report->expected_error.ToString().c_str());
  return 0;
}
