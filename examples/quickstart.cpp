// Quickstart: build an unreliable database, ask for query reliability.
//
// An unreliable database (Grädel–Gurevich–Hirsch, PODS 1998) is an ordinary
// database plus an error probability per fact: the chance that the fact's
// observed truth value is wrong. The reliability R_ψ of a query ψ is one
// minus the expected fraction of answer tuples that differ between the
// observed database and the (random) actual one.

#include <cstdio>
#include <string>

#include "qrel/engine/engine.h"
#include "qrel/prob/text_format.h"

int main() {
  // A 4-element social graph. Edges are trusted; the S-labels ("suspended
  // account") come from a flaky scraper with known error rates.
  const char* udb = R"(
    universe 4
    relation Follows 2
    relation Suspended 1

    fact Follows 0 1
    fact Follows 1 2
    fact Follows 2 3
    fact Suspended 0 err=1/4      # observed suspended, 25% chance wrong
    fact Suspended 2 err=1/3
    absent Suspended 1 err=1/10   # observed active, 10% chance wrong
  )";

  qrel::StatusOr<qrel::UnreliableDatabase> database = qrel::ParseUdb(udb);
  if (!database.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 database.status().ToString().c_str());
    return 1;
  }
  qrel::ReliabilityEngine engine(std::move(database).value());

  const std::string queries[] = {
      // Quantifier-free: answered exactly in polynomial time (Prop. 3.1).
      "Suspended(x)",
      // Conjunctive: a suspended account that someone still follows.
      "exists x y . Follows(x, y) & Suspended(y)",
      // Universal: nobody follows a suspended account.
      "forall x y . !(Follows(x, y) & Suspended(y))",
      // General first-order: every suspended account follows someone.
      "forall x . Suspended(x) -> (exists y . Follows(x, y))",
  };

  for (const std::string& text : queries) {
    qrel::StatusOr<qrel::EngineReport> report = engine.Run(text);
    if (!report.ok()) {
      std::fprintf(stderr, "error: %s\n", report.status().ToString().c_str());
      return 1;
    }
    std::printf("query      : %s\n", text.c_str());
    std::printf("class      : %s\n",
                qrel::QueryClassName(report->query_class));
    if (report->observed_answers.has_value()) {
      std::printf("observed   : %zu answer tuple(s)\n",
                  report->observed_answers->size());
    }
    if (report->exact_reliability.has_value()) {
      std::printf("reliability: %s (= %.6f, exact)\n",
                  report->exact_reliability->ToString().c_str(),
                  report->reliability);
    } else {
      std::printf("reliability: %.6f (estimated, %llu samples)\n",
                  report->reliability,
                  static_cast<unsigned long long>(report->samples));
    }
    std::printf("method     : %s\n\n", report->method.c_str());
  }
  return 0;
}
