// Hardness, operationally: counting monotone 2-SAT models with the
// reliability engine.
//
// Proposition 3.2 reduces #MONOTONE-2SAT — a #P-complete counting problem —
// to computing the expected error of the fixed conjunctive query
// ψ = ∃xyz (Lxy ∧ Rxz ∧ Sy ∧ Sz). This example runs the reduction forward:
// it builds the unreliable database for a formula, computes H_ψ exactly,
// and reads the model count out of it. The flip side of the theorem is
// visible in the timings: the exact path doubles its work with every
// variable.

#include <chrono>
#include <cstdio>

#include "qrel/core/reliability.h"
#include "qrel/reductions/monotone_two_sat.h"

int main() {
  qrel::Rng rng(42);

  std::printf("%6s %8s %14s %14s %12s\n", "vars", "clauses", "#SAT(exact)",
              "#SAT(via H)", "time(ms)");
  for (int variables = 4; variables <= 12; variables += 2) {
    qrel::MonotoneTwoSat formula =
        qrel::RandomMonotoneTwoSat(variables, variables + variables / 2, &rng);

    qrel::BigInt direct = qrel::CountSatisfyingAssignments(formula);

    auto start = std::chrono::steady_clock::now();
    qrel::Prop32Instance instance = qrel::BuildProp32Instance(formula);
    qrel::StatusOr<qrel::ReliabilityReport> report =
        qrel::ExactReliability(instance.query, instance.database);
    auto elapsed = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - start)
                       .count();
    if (!report.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   report.status().ToString().c_str());
      return 1;
    }
    qrel::BigInt recovered =
        qrel::RecoverModelCount(report->expected_error, variables);

    std::printf("%6d %8zu %14s %14s %12.2f\n", variables,
                formula.clauses.size(), direct.ToDecimalString().c_str(),
                recovered.ToDecimalString().c_str(), elapsed);
    if (recovered != direct) {
      std::fprintf(stderr, "REDUCTION MISMATCH!\n");
      return 1;
    }
  }
  std::printf(
      "\nEvery row satisfies #SAT = H_psi * 2^m (Proposition 3.2), and the\n"
      "runtime of the exact reliability computation doubles per variable —\n"
      "reliability of conjunctive queries is as hard as #P.\n");
  return 0;
}
