// Recursive queries on unreliable data: reachability with Datalog.
//
// First-order logic cannot express transitive closure; the paper's upper
// bounds still cover it ("this includes all Datalog queries"). This
// example asks how reliable *reachability* answers are when the edge list
// is noisy — the classic case where one wrong base fact flips a whole
// cascade of derived facts.

#include <cstdio>
#include <memory>

#include "qrel/datalog/reliability.h"

namespace {

// A two-rack topology: rack A = {1, 2, 3} behind switch 0, rack B =
// {5, 6, 7} behind switch 4, switches linked 0 -> 4. Uplinks are solid;
// several leaf links came from a stale scan.
qrel::UnreliableDatabase BuildTopology() {
  auto vocabulary = std::make_shared<qrel::Vocabulary>();
  int e = vocabulary->AddRelation("E", 2);
  vocabulary->AddRelation("Node", 1);
  qrel::Structure observed(vocabulary, 8);
  auto edge = [&](int u, int v) {
    observed.AddFact(e, {static_cast<qrel::Element>(u),
                         static_cast<qrel::Element>(v)});
  };
  edge(1, 0);
  edge(2, 0);
  edge(3, 0);
  edge(0, 4);
  edge(4, 5);
  edge(4, 6);
  edge(4, 7);
  for (int i = 0; i < 8; ++i) {
    observed.AddFact(1, {static_cast<qrel::Element>(i)});
  }
  qrel::UnreliableDatabase db(std::move(observed));
  // Leaf links with stale measurements.
  db.SetErrorProbability(qrel::GroundAtom{e, {3, 0}}, qrel::Rational(1, 5));
  db.SetErrorProbability(qrel::GroundAtom{e, {4, 7}}, qrel::Rational(1, 4));
  // A rumoured direct cross-link 2 -> 4.
  db.SetErrorProbability(qrel::GroundAtom{e, {2, 4}}, qrel::Rational(1, 10));
  // The inter-switch uplink is almost, but not perfectly, trusted.
  db.SetErrorProbability(qrel::GroundAtom{e, {0, 4}}, qrel::Rational(1, 50));
  return db;
}

}  // namespace

int main() {
  qrel::UnreliableDatabase db = BuildTopology();
  qrel::StatusOr<qrel::DatalogProgram> program = qrel::ParseDatalogProgram(R"(
    Path(x, y)      :- E(x, y).
    Path(x, z)      :- Path(x, y), E(y, z).
    Unreached(x, y) :- Node(x), Node(y), !Path(x, y).
  )");
  if (!program.ok()) {
    std::fprintf(stderr, "parse: %s\n", program.status().ToString().c_str());
    return 1;
  }
  qrel::StatusOr<qrel::CompiledDatalog> compiled =
      qrel::CompiledDatalog::Compile(*program, db.vocabulary());
  if (!compiled.ok()) {
    std::fprintf(stderr, "compile: %s\n",
                 compiled.status().ToString().c_str());
    return 1;
  }

  std::printf("program:\n%s\n", program->ToString().c_str());
  std::set<qrel::Tuple> observed_paths =
      *compiled->EvalPredicate(db.observed(), "Path");
  std::printf("observed Path relation: %zu pairs of %d\n\n",
              observed_paths.size(), 8 * 8);

  for (const char* predicate : {"Path", "Unreached"}) {
    qrel::StatusOr<qrel::ReliabilityReport> exact =
        qrel::ExactDatalogReliability(*compiled, predicate, db);
    if (!exact.ok()) {
      std::fprintf(stderr, "%s: %s\n", predicate,
                   exact.status().ToString().c_str());
      return 1;
    }
    std::printf("%-10s H = %-10s R = %s (= %.6f), %llu worlds\n", predicate,
                exact->expected_error.ToString().c_str(),
                exact->reliability.ToString().c_str(),
                exact->reliability.ToDouble(),
                static_cast<unsigned long long>(exact->work_units));

    qrel::ApproxOptions options;
    options.seed = 13;
    options.fixed_samples = 20000;
    qrel::StatusOr<qrel::ApproxResult> padded =
        qrel::PaddedDatalogReliability(*compiled, predicate, db, options);
    std::printf("%-10s R ~= %.6f via %s\n\n", "",
                padded->estimate, padded->method.c_str());
  }

  std::printf(
      "Note how a single uncertain uplink (error 1/50 on E(0,4)) puts 16\n"
      "derived Path facts at risk at once: recursive queries amplify base-\n"
      "fact uncertainty, yet both the exact (Thm 4.2) and padded\n"
      "(Thm 5.12) algorithms handle them out of the box because Datalog\n"
      "evaluation is polynomial.\n");
  return 0;
}
