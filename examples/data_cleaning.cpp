// Data-cleaning scenario: how trustworthy are analytics over a dirty CRM?
//
// A customer table was merged from two sources; the deduplication step
// attached a confidence to every record-linkage decision. We translate
// match confidences into error probabilities and ask the reliability of
// the queries the analytics dashboard actually runs. This is the classic
// motivation for probabilistic databases (MystiQ/MayBMS-style), expressed
// in the PODS'98 unreliable-database model.

#include <cstdio>
#include <memory>

#include "qrel/engine/engine.h"
#include "qrel/prob/text_format.h"

int main() {
  // Universe: 0..4 customers, 5..8 orders.
  // SameAs(x, y): record-linkage duplicates (uncertain).
  // Placed(o, c): order o placed by customer c (uncertain for merged rows).
  // Vip(c): flagged important (uncertain, comes from a heuristic).
  const char* udb = R"(
    universe 9
    relation SameAs 2
    relation Placed 2
    relation Vip 1

    fact SameAs 0 1 err=0.2       # 80% confident duplicates
    fact SameAs 1 0 err=0.2
    absent SameAs 2 3 err=0.4     # 40% chance these are duplicates

    fact Placed 5 0
    fact Placed 6 1 err=1/10      # ownership disputed after the merge
    fact Placed 7 2
    fact Placed 8 3 err=1/4

    fact Vip 0 err=0.15
    fact Vip 3 err=0.3
    absent Vip 2 err=0.25
  )";

  qrel::StatusOr<qrel::UnreliableDatabase> database = qrel::ParseUdb(udb);
  if (!database.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 database.status().ToString().c_str());
    return 1;
  }
  qrel::ReliabilityEngine engine(std::move(database).value());

  struct Dashboard {
    const char* label;
    const char* query;
  };
  const Dashboard panels[] = {
      {"VIP flags per customer", "Vip(x)"},
      {"orders owned by a VIP", "exists c . Placed(o, c) & Vip(c)"},
      {"some VIP has a duplicate record",
       "exists x y . Vip(x) & SameAs(x, y)"},
      {"duplicate pairs are symmetric",
       "forall x y . SameAs(x, y) -> SameAs(y, x)"},
      {"every VIP placed an order",
       "forall c . Vip(c) -> (exists o . Placed(o, c))"},
  };

  std::printf("%-38s %-12s %-10s method\n", "dashboard panel", "R",
              "class");
  for (const Dashboard& panel : panels) {
    qrel::StatusOr<qrel::EngineReport> report = engine.Run(panel.query);
    if (!report.ok()) {
      std::fprintf(stderr, "%s: %s\n", panel.label,
                   report.status().ToString().c_str());
      return 1;
    }
    std::printf("%-38s %-12.6f %-10s %s%s\n", panel.label,
                report->reliability,
                qrel::QueryClassName(report->query_class),
                report->method.c_str(), report->is_exact ? " (exact)" : "");
  }

  std::printf(
      "\nReading: a panel with R = 0.97 over 9 elements misclassifies about\n"
      "0.03 * 9^k answer cells in expectation; quantifier-free panels are\n"
      "certified exactly and in polynomial time (Prop 3.1), the rest use the\n"
      "exact enumeration or the paper's randomized approximations.\n");
  return 0;
}
