// qrel_cli: query reliability from the command line.
//
//   qrel_cli <database.udb> "<query>" [options]
//
// Options:
//   --analyze          static analysis only: print diagnostics and the
//                      explain plan (class, simplification, cost estimate,
//                      the paper theorem the engine would run) without
//                      executing anything. Lint exit codes: 0 clean (notes
//                      allowed), 1 warnings, 2 errors.
//   --diagnostics-format=<text|json>  how diagnostics (and, with
//                      --analyze, the plan) are printed. JSON gives one
//                      machine-readable path for parse errors and analysis
//                      findings alike.
//   --epsilon=<d>      absolute error target for randomized paths (0.02)
//   --delta=<d>        failure probability (0.02)
//   --seed=<n>         RNG seed (1)
//   --force-exact      always enumerate worlds (Thm 4.2)
//   --force-approx     never enumerate worlds
//   --per-tuple        also print the per-tuple expected-error breakdown
//   --timeout-ms=<n>   wall-clock deadline; past it the engine degrades to
//                      sampling (with --force-exact: fails instead)
//   --max-work=<n>     work-unit budget (worlds/samples/clauses), same
//                      degradation behavior
//   --max-exact-worlds=<n>  raise/lower the exact-enumeration cutoff
//   --no-degrade       fail with the budget error instead of degrading
//   --fault-inject=<site>[:<n>]  arm fault site <site> to fail on its nth
//                      hit (default 1), reproducing an injected failure
//                      deterministically; repeatable. See
//                      util/fault_injection.h for site names.
//   --checkpoint=<path>  crash-safe checkpointing: periodically snapshot
//                      the computation's progress to <path> (atomic
//                      write + rename), and resume from an existing
//                      snapshot there. A killed run re-run with the same
//                      arguments continues where it stopped and prints a
//                      bit-identical report. The snapshot is deleted on
//                      successful completion.
//   --checkpoint-every-ms=<n>  minimum interval between snapshots
//                      (default 1000; 0 = checkpoint at every safe point)
//   --list-fault-sites run a small built-in workload that touches every
//                      layer, then print all registered fault-site names
//                      (the valid --fault-inject targets) and exit.
//
// Exit codes: 0 success, 2 usage, otherwise 10 + StatusCode of the error
// (e.g. 10+kDeadlineExceeded, 10+kCancelled) so scripts can react to
// budget trips specifically.
//
// SIGINT (Ctrl-C) and SIGTERM cancel the run cooperatively instead of
// killing the process: the engine stops at its next safe point, a final
// checkpoint is flushed there when --checkpoint is set (so rerunning the
// same command resumes rather than restarts), and the process exits
// 10 + kCancelled = 18.
//
// Example:
//   qrel_cli crm.udb "exists c . Placed(o, c) & Vip(c)" --per-tuple

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "qrel/core/reliability.h"
#include "qrel/engine/engine.h"
#include "qrel/logic/parser.h"
#include "qrel/metafinite/text_format.h"
#include "qrel/prob/text_format.h"
#include "qrel/propositional/dnf.h"
#include "qrel/propositional/naive_mc.h"
#include "qrel/util/fault_injection.h"
#include "qrel/util/run_context.h"
#include "qrel/util/snapshot.h"

namespace {

// SIGINT/SIGTERM → cooperative cancellation of the in-flight run. The
// handler only flips the RunContext's atomic cancel flag (async-signal-
// safe); the engine surfaces kCancelled at its next safe point, and with
// --checkpoint set, CheckpointScope::MaybeCheckpoint flushes a final
// snapshot there — so an interrupted run resumes instead of restarting.
std::atomic<qrel::RunContext*> g_interrupt_context{nullptr};

extern "C" void HandleInterrupt(int /*signum*/) {
  qrel::RunContext* context =
      g_interrupt_context.load(std::memory_order_acquire);
  if (context != nullptr) {
    context->RequestCancellation();
  }
}

bool ParseDoubleFlag(const char* arg, const char* name, double* out) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') {
    return false;
  }
  *out = std::atof(arg + len + 1);
  return true;
}

bool ParseUint64Flag(const char* arg, const char* name, uint64_t* out) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') {
    return false;
  }
  const char* value = arg + len + 1;
  char* end = nullptr;
  *out = std::strtoull(value, &end, 10);
  if (*value == '\0' || *end != '\0') {
    std::fprintf(stderr, "%s needs a non-negative integer, got \"%s\"\n",
                 name, value);
    std::exit(2);
  }
  return true;
}

int Usage() {
  std::fprintf(stderr,
               "usage: qrel_cli <database.udb> \"<query>\" [--analyze] "
               "[--diagnostics-format=text|json] [--epsilon=E] "
               "[--delta=D] [--seed=N] [--force-exact] [--force-approx] "
               "[--per-tuple] [--timeout-ms=N] [--max-work=N] "
               "[--max-exact-worlds=N] [--no-degrade] "
               "[--fault-inject=SITE[:N]] [--checkpoint=PATH] "
               "[--checkpoint-every-ms=N]\n"
               "       qrel_cli --list-fault-sites\n");
  return 2;
}

// 0 is success and 2 is usage; status-caused exits start at 10 so each
// StatusCode maps to a stable, distinguishable exit code.
int ExitCodeFor(const qrel::Status& status) {
  return 10 + static_cast<int>(status.code());
}

// Prints diagnostics on the chosen format's single output path: one
// ToString() line each (text) or one JSON array (json), both on stdout so
// scripts parse a single stream.
void EmitDiagnostics(const std::vector<qrel::Diagnostic>& diagnostics,
                     bool json) {
  if (json) {
    std::printf("%s\n", qrel::DiagnosticsToJson(diagnostics).c_str());
    return;
  }
  for (const qrel::Diagnostic& diagnostic : diagnostics) {
    std::printf("%s\n", diagnostic.ToString().c_str());
  }
}

// A double as a JSON value; saturated infinities have no JSON spelling and
// become null.
std::string JsonNumber(double value) {
  if (!std::isfinite(value)) {
    return "null";
  }
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

// The --analyze report. Returns the lint exit code: 0 clean, 1 warnings,
// 2 errors.
int EmitPlan(const qrel::EnginePlan& plan, bool json) {
  if (json) {
    std::string out = "{\"diagnostics\":";
    out += qrel::DiagnosticsToJson(plan.diagnostics);
    out += ",\"plan\":{\"class\":\"";
    out += qrel::QueryClassName(plan.query_class);
    out += "\",\"effective_class\":\"";
    out += qrel::QueryClassName(plan.effective_class);
    out += "\",\"static_truth\":\"";
    out += qrel::StaticTruthName(plan.static_truth);
    out += "\",\"simplified\":\"";
    out += qrel::JsonEscapeString(plan.simplified_query);
    out += "\",\"planned_method\":\"";
    out += qrel::JsonEscapeString(plan.planned_method);
    out += "\",\"universe_size\":" + std::to_string(plan.cost.universe_size);
    out += ",\"arity\":" + std::to_string(plan.cost.arity);
    out += ",\"variables\":" + std::to_string(plan.cost.variables);
    out += ",\"answer_space\":" + JsonNumber(plan.cost.answer_space);
    out += ",\"grounding_size\":" + JsonNumber(plan.cost.grounding_size);
    out += ",\"uncertain_atoms\":" +
           std::to_string(plan.cost.uncertain_atoms);
    out += ",\"world_count\":" + JsonNumber(plan.cost.world_count);
    out += "},\"safety\":{\"applicable\":";
    out += plan.safe_plan_applicable ? "true" : "false";
    out += ",\"safe\":";
    out += plan.safe_plan_safe ? "true" : "false";
    if (plan.safe_plan_safe) {
      out += ",\"safe_plan\":\"" + qrel::JsonEscapeString(plan.safe_plan) +
             "\"";
    } else if (plan.safe_plan_applicable) {
      out += ",\"blocker\":\"" +
             qrel::JsonEscapeString(plan.safe_plan_blocker) + "\"";
    }
    out += "}}";
    std::printf("%s\n", out.c_str());
    return qrel::LintExitCode(plan.diagnostics);
  }
  std::printf("class      : %s\n", qrel::QueryClassName(plan.query_class));
  if (plan.effective_class != plan.query_class) {
    std::printf("effective  : %s\n",
                qrel::QueryClassName(plan.effective_class));
  }
  if (!plan.simplified_query.empty()) {
    std::printf("simplified : %s\n", plan.simplified_query.c_str());
  }
  std::printf("static     : %s\n", qrel::StaticTruthName(plan.static_truth));
  std::printf("cost       : universe %d, arity %d (answer space %s), "
              "%d variable(s) (grounding %s), %zu uncertain atom(s) "
              "(%s worlds)\n",
              plan.cost.universe_size, plan.cost.arity,
              JsonNumber(plan.cost.answer_space).c_str(),
              plan.cost.variables,
              JsonNumber(plan.cost.grounding_size).c_str(),
              plan.cost.uncertain_atoms,
              JsonNumber(plan.cost.world_count).c_str());
  if (plan.safe_plan_applicable) {
    if (plan.safe_plan_safe) {
      std::printf("safety     : safe, plan %s\n", plan.safe_plan.c_str());
    } else {
      std::printf("safety     : unsafe (%s)\n",
                  plan.safe_plan_blocker.c_str());
    }
  }
  if (plan.has_errors()) {
    std::printf("plan       : none (static errors)\n");
  } else {
    std::printf("plan       : %s\n", plan.planned_method.c_str());
  }
  if (!plan.diagnostics.empty()) {
    std::printf("diagnostics:\n");
    for (const qrel::Diagnostic& diagnostic : plan.diagnostics) {
      std::printf("  %s\n", diagnostic.ToString().c_str());
    }
  }
  return qrel::LintExitCode(plan.diagnostics);
}

std::string TupleToString(const qrel::Tuple& tuple) {
  std::string result = "(";
  for (size_t i = 0; i < tuple.size(); ++i) {
    if (i != 0) result += ",";
    result += std::to_string(tuple[i]);
  }
  return result + ")";
}

std::string WriteTempFile(const std::string& stem, const char* text) {
  const char* tmpdir = std::getenv("TMPDIR");
  std::string path = std::string(tmpdir != nullptr ? tmpdir : "/tmp") + "/" +
                     stem + "." + std::to_string(::getpid());
  std::ofstream out(path, std::ios::trunc);
  out << text;
  return path;
}

// Fault sites register lazily, the first time control reaches them; so to
// enumerate them all, run a small in-memory workload that walks every
// layer — file I/O and parsing, each engine rung (including the budget-
// degraded reserve rungs), the Datalog paths, a direct sampler call and a
// snapshot write/load — then read the registry. All steps are best-effort:
// only their side effect of registering sites matters here.
int ListFaultSites() {
  using namespace qrel;  // NOLINT: localized convenience

  constexpr char kUdbText[] =
      "universe 3\n"
      "relation E 2\n"
      "relation S 1\n"
      "fact E 0 1 err=1/4\n"
      "fact E 1 2 err=1/8\n"
      "fact S 0\n"
      "absent S 1 err=1/3\n";
  constexpr char kMfdbText[] =
      "universe 2\n"
      "function salary 1\n"
      "value salary 0 = 3200\n"
      "dist salary 0 : 3200 @ 9/10, 8200 @ 1/10\n";
  constexpr char kDatalog[] =
      "Path(x, y) :- E(x, y).\n"
      "Path(x, z) :- Path(x, y), E(y, z).";

  std::string udb_path = WriteTempFile("qrel_sites.udb", kUdbText);
  std::string mfdb_path = WriteTempFile("qrel_sites.mfdb", kMfdbText);
  StatusOr<UnreliableDatabase> database = LoadUdbFile(udb_path);
  (void)LoadMfdbFile(mfdb_path);
  (void)ParseMfdb(kMfdbText);
  std::remove(udb_path.c_str());
  std::remove(mfdb_path.c_str());

  {
    Dnf dnf(2);
    dnf.AddTerm({{0, true}, {1, false}});
    std::vector<Rational> probs = {Rational::Half(), Rational::Half()};
    (void)NaiveMcProbability(dnf, probs, 16, /*seed=*/5);
  }

  {
    SnapshotData data;
    data.kind = "cli.site_listing";
    std::string snap_path = WriteTempFile("qrel_sites.snapshot", "");
    (void)WriteSnapshotFile(snap_path, data);
    (void)ReadSnapshotFile(snap_path);
    std::remove(snap_path.c_str());
  }

  if (database.ok()) {
    ReliabilityEngine engine(std::move(database).value());
    EngineOptions defaults;
    defaults.seed = 7;
    (void)engine.Run("S(x)", defaults);
    (void)engine.Run("exists x y . E(x,y) & S(y)", defaults);

    EngineOptions sampled = defaults;
    sampled.force_approximate = true;
    sampled.epsilon = 0.3;
    sampled.delta = 0.3;
    sampled.fixed_samples = 16;
    (void)engine.Run("exists x y . E(x,y) & S(y)", sampled);
    (void)engine.Run("forall x . exists y . E(x,y) | S(x)", sampled);

    (void)engine.RunDatalog(kDatalog, "Path", defaults);
    (void)engine.RunDatalog(kDatalog, "Path", sampled);

    // Trip a one-unit work budget mid-rung so the engine walks down to the
    // reserve rungs, which only register when actually reached.
    EngineOptions starved = sampled;
    RunContext budgeted = RunContext::WithWorkBudget(1);
    starved.run_context = &budgeted;
    (void)engine.Run("forall x . exists y . E(x,y) | S(x)", starved);
    RunContext datalog_budgeted = RunContext::WithWorkBudget(1);
    starved.run_context = &datalog_budgeted;
    (void)engine.RunDatalog(kDatalog, "Path", starved);
  }

  std::vector<std::string> sites = FaultInjector::Instance().SiteNames();
  std::sort(sites.begin(), sites.end());
  for (const std::string& site : sites) {
    std::printf("%s\n", site.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 2 && std::strcmp(argv[1], "--list-fault-sites") == 0) {
    return ListFaultSites();
  }
  if (argc < 3) {
    return Usage();
  }
  const char* path = argv[1];
  const char* query = argv[2];
  qrel::EngineOptions options;
  bool per_tuple = false;
  bool analyze_only = false;
  bool json_diagnostics = false;
  uint64_t timeout_ms = 0;
  uint64_t max_work = 0;
  bool has_timeout = false;
  bool has_max_work = false;
  std::string checkpoint_path;
  uint64_t checkpoint_every_ms = 1000;
  for (int i = 3; i < argc; ++i) {
    if (ParseDoubleFlag(argv[i], "--epsilon", &options.epsilon) ||
        ParseDoubleFlag(argv[i], "--delta", &options.delta) ||
        ParseUint64Flag(argv[i], "--seed", &options.seed)) {
      continue;
    }
    if (ParseUint64Flag(argv[i], "--timeout-ms", &timeout_ms)) {
      has_timeout = true;
    } else if (ParseUint64Flag(argv[i], "--max-work", &max_work)) {
      has_max_work = true;
    } else if (ParseUint64Flag(argv[i], "--max-exact-worlds",
                               &options.max_exact_worlds) ||
               ParseUint64Flag(argv[i], "--checkpoint-every-ms",
                               &checkpoint_every_ms)) {
      continue;
    } else if (std::strncmp(argv[i], "--checkpoint=", 13) == 0) {
      checkpoint_path = argv[i] + 13;
      if (checkpoint_path.empty()) {
        std::fprintf(stderr, "--checkpoint needs a file path\n");
        return 2;
      }
    } else if (std::strncmp(argv[i], "--fault-inject=", 15) == 0) {
      qrel::Status armed = qrel::ArmFaultFromSpec(argv[i] + 15);
      if (!armed.ok()) {
        std::fprintf(stderr, "--fault-inject: %s\n",
                     armed.ToString().c_str());
        return 2;
      }
    } else if (std::strncmp(argv[i], "--diagnostics-format=", 21) == 0) {
      const char* format = argv[i] + 21;
      if (std::strcmp(format, "json") == 0) {
        json_diagnostics = true;
      } else if (std::strcmp(format, "text") == 0) {
        json_diagnostics = false;
      } else {
        std::fprintf(stderr,
                     "--diagnostics-format must be text or json, got "
                     "\"%s\"\n",
                     format);
        return 2;
      }
    } else if (std::strcmp(argv[i], "--analyze") == 0) {
      analyze_only = true;
    } else if (std::strcmp(argv[i], "--no-degrade") == 0) {
      options.degrade_on_budget = false;
    } else if (std::strcmp(argv[i], "--force-exact") == 0) {
      options.force_exact = true;
    } else if (std::strcmp(argv[i], "--force-approx") == 0) {
      options.force_approximate = true;
    } else if (std::strcmp(argv[i], "--per-tuple") == 0) {
      per_tuple = true;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", argv[i]);
      return Usage();
    }
  }

  qrel::RunContext run_context;
  if (has_timeout) {
    run_context.SetDeadline(std::chrono::milliseconds(timeout_ms));
  }
  if (has_max_work) {
    run_context.SetWorkBudget(max_work);
  }
  std::optional<qrel::Checkpointer> checkpointer;
  if (!checkpoint_path.empty()) {
    checkpointer.emplace(checkpoint_path,
                         std::chrono::milliseconds(checkpoint_every_ms));
    qrel::Status loaded = checkpointer->LoadForResume();
    if (!loaded.ok()) {
      // A corrupt snapshot is an error, not a silent restart from zero;
      // the user can delete the file to start over deliberately.
      std::fprintf(stderr, "checkpoint %s: %s\n", checkpoint_path.c_str(),
                   loaded.ToString().c_str());
      return ExitCodeFor(loaded);
    }
    run_context.SetCheckpointer(&*checkpointer);
  }
  // The run context is always attached so Ctrl-C cancels cooperatively
  // (exit 10+kCancelled = 18) instead of killing the process mid-write;
  // the budget report below stays gated on an explicit envelope.
  bool governed = has_timeout || has_max_work;
  options.run_context = &run_context;
  g_interrupt_context.store(&run_context, std::memory_order_release);
  std::signal(SIGINT, HandleInterrupt);
  std::signal(SIGTERM, HandleInterrupt);

  qrel::StatusOr<qrel::UnreliableDatabase> database =
      qrel::LoadUdbFile(path);
  if (!database.ok()) {
    std::fprintf(stderr, "%s: %s\n", path,
                 database.status().ToString().c_str());
    return ExitCodeFor(database.status());
  }
  // JSON diagnostics keep stdout a single machine-readable stream, so the
  // banner is suppressed.
  if (!json_diagnostics) {
    std::printf("database   : %s (universe %d, %zu facts, %zu unreliable "
                "atoms)\n",
                path, database->universe_size(),
                database->observed().FactCount(),
                static_cast<size_t>(database->model().entry_count()));
  }

  qrel::ReliabilityEngine engine(std::move(database).value());

  // Parse with the diagnostic-producing overload: a syntax error reaches
  // the same structured output path as every analyzer finding.
  qrel::Diagnostic syntax_error;
  qrel::StatusOr<qrel::FormulaPtr> formula =
      qrel::ParseFormula(query, &syntax_error);
  if (!formula.ok()) {
    EmitDiagnostics({syntax_error}, json_diagnostics);
    if (analyze_only) {
      return 2;  // lint convention: any error exits 2
    }
    std::fprintf(stderr, "query error: %s\n",
                 formula.status().ToString().c_str());
    return ExitCodeFor(formula.status());
  }

  qrel::EnginePlan plan = engine.Explain(*formula, options);
  if (analyze_only) {
    if (!json_diagnostics) {
      std::printf("query      : %s\n", query);
    }
    return EmitPlan(plan, json_diagnostics);
  }
  if (plan.has_errors()) {
    EmitDiagnostics(plan.diagnostics, json_diagnostics);
    qrel::Status failed = qrel::Status::InvalidArgument(
        qrel::FirstErrorMessage(plan.diagnostics));
    std::fprintf(stderr, "query error: %s\n", failed.ToString().c_str());
    return ExitCodeFor(failed);
  }

  qrel::StatusOr<qrel::EngineReport> report = engine.Run(*formula, options);
  if (!report.ok()) {
    std::fprintf(stderr, "query error: %s\n",
                 report.status().ToString().c_str());
    // On interruption the snapshot is deliberately left in place: the
    // cancellation path above flushed the final safe point, and a rerun
    // with the same arguments resumes from it.
    if (report.status().code() == qrel::StatusCode::kCancelled &&
        checkpointer.has_value() && checkpointer->writes() > 0) {
      std::fprintf(stderr,
                   "interrupted: %llu snapshot(s) flushed to %s; rerun "
                   "with the same arguments to resume\n",
                   static_cast<unsigned long long>(checkpointer->writes()),
                   checkpoint_path.c_str());
    }
    return ExitCodeFor(report.status());
  }

  std::printf("query      : %s\n", query);
  std::printf("class      : %s\n", qrel::QueryClassName(report->query_class));
  if (report->observed_answers.has_value()) {
    std::printf("observed   : %zu answer tuple(s)\n",
                report->observed_answers->size());
  }
  if (report->exact_reliability.has_value()) {
    std::printf("reliability: %s (= %.6f, exact)\n",
                report->exact_reliability->ToString().c_str(),
                report->reliability);
  } else {
    double error_bar = report->achieved_epsilon.value_or(options.epsilon);
    std::printf("reliability: %.6f +- %.4f (confidence %.2f, %llu samples)\n",
                report->reliability, error_bar, 1.0 - options.delta,
                static_cast<unsigned long long>(report->samples));
  }
  std::printf("H (exp.err): %.6f\n", report->expected_error);
  std::printf("method     : %s\n", report->method.c_str());
  if (report->degraded) {
    std::printf("degraded   : %s\n", report->degradation_reason.c_str());
  }
  if (report->partial) {
    std::printf("partial    : estimate from fewer samples than the (eps, "
                "delta) plan\n");
  }
  if (governed || checkpointer.has_value()) {
    std::printf("budget     : %llu work unit(s) spent\n",
                static_cast<unsigned long long>(report->budget_spent));
  }
  if (checkpointer.has_value()) {
    if (checkpointer->has_resume() && !checkpointer->resume_consumed()) {
      std::fprintf(stderr,
                   "warning: snapshot %s (kind %s) was not used by this "
                   "run's algorithm; it was left untouched\n",
                   checkpoint_path.c_str(),
                   checkpointer->resume_kind().c_str());
    } else {
      std::printf("checkpoint : %llu snapshot(s) written%s\n",
                  static_cast<unsigned long long>(checkpointer->writes()),
                  checkpointer->resume_consumed() ? ", resumed" : "");
      // The computation finished; the snapshot has served its purpose.
      std::remove(checkpoint_path.c_str());
    }
  }

  if (per_tuple) {
    qrel::StatusOr<qrel::FormulaPtr> formula = qrel::ParseFormula(query);
    qrel::StatusOr<std::vector<qrel::TupleError>> breakdown =
        qrel::PerTupleExpectedError(*formula, engine.database());
    if (!breakdown.ok()) {
      std::fprintf(stderr, "per-tuple: %s\n",
                   breakdown.status().ToString().c_str());
      return ExitCodeFor(breakdown.status());
    }
    std::printf("\nper-tuple breakdown (non-zero rows):\n");
    std::printf("  %-14s %-9s %s\n", "tuple", "observed", "Pr[wrong]");
    for (const qrel::TupleError& row : *breakdown) {
      if (row.error.IsZero()) {
        continue;
      }
      std::printf("  %-14s %-9s %s (= %.6f)\n",
                  TupleToString(row.tuple).c_str(),
                  row.observed ? "in" : "out", row.error.ToString().c_str(),
                  row.error.ToDouble());
    }
  }
  return 0;
}
