// qrel_cli: query reliability from the command line.
//
//   qrel_cli <database.udb> "<query>" [options]
//
// Options:
//   --epsilon=<d>      absolute error target for randomized paths (0.02)
//   --delta=<d>        failure probability (0.02)
//   --seed=<n>         RNG seed (1)
//   --force-exact      always enumerate worlds (Thm 4.2)
//   --force-approx     never enumerate worlds
//   --per-tuple        also print the per-tuple expected-error breakdown
//
// Example:
//   qrel_cli crm.udb "exists c . Placed(o, c) & Vip(c)" --per-tuple

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "qrel/core/reliability.h"
#include "qrel/engine/engine.h"
#include "qrel/logic/parser.h"
#include "qrel/prob/text_format.h"

namespace {

bool ParseDoubleFlag(const char* arg, const char* name, double* out) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') {
    return false;
  }
  *out = std::atof(arg + len + 1);
  return true;
}

bool ParseUint64Flag(const char* arg, const char* name, uint64_t* out) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') {
    return false;
  }
  *out = std::strtoull(arg + len + 1, nullptr, 10);
  return true;
}

int Usage() {
  std::fprintf(stderr,
               "usage: qrel_cli <database.udb> \"<query>\" [--epsilon=E] "
               "[--delta=D] [--seed=N] [--force-exact] [--force-approx] "
               "[--per-tuple]\n");
  return 2;
}

std::string TupleToString(const qrel::Tuple& tuple) {
  std::string result = "(";
  for (size_t i = 0; i < tuple.size(); ++i) {
    if (i != 0) result += ",";
    result += std::to_string(tuple[i]);
  }
  return result + ")";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    return Usage();
  }
  const char* path = argv[1];
  const char* query = argv[2];
  qrel::EngineOptions options;
  bool per_tuple = false;
  for (int i = 3; i < argc; ++i) {
    if (ParseDoubleFlag(argv[i], "--epsilon", &options.epsilon) ||
        ParseDoubleFlag(argv[i], "--delta", &options.delta) ||
        ParseUint64Flag(argv[i], "--seed", &options.seed)) {
      continue;
    }
    if (std::strcmp(argv[i], "--force-exact") == 0) {
      options.force_exact = true;
    } else if (std::strcmp(argv[i], "--force-approx") == 0) {
      options.force_approximate = true;
    } else if (std::strcmp(argv[i], "--per-tuple") == 0) {
      per_tuple = true;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", argv[i]);
      return Usage();
    }
  }

  qrel::StatusOr<qrel::UnreliableDatabase> database =
      qrel::LoadUdbFile(path);
  if (!database.ok()) {
    std::fprintf(stderr, "%s: %s\n", path,
                 database.status().ToString().c_str());
    return 1;
  }
  std::printf("database   : %s (universe %d, %zu facts, %zu unreliable "
              "atoms)\n",
              path, database->universe_size(),
              database->observed().FactCount(),
              static_cast<size_t>(database->model().entry_count()));

  qrel::ReliabilityEngine engine(std::move(database).value());
  qrel::StatusOr<qrel::EngineReport> report = engine.Run(query, options);
  if (!report.ok()) {
    std::fprintf(stderr, "query error: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }

  std::printf("query      : %s\n", query);
  std::printf("class      : %s\n", qrel::QueryClassName(report->query_class));
  if (report->observed_answers.has_value()) {
    std::printf("observed   : %zu answer tuple(s)\n",
                report->observed_answers->size());
  }
  if (report->exact_reliability.has_value()) {
    std::printf("reliability: %s (= %.6f, exact)\n",
                report->exact_reliability->ToString().c_str(),
                report->reliability);
  } else {
    std::printf("reliability: %.6f +- %.4f (confidence %.2f, %llu samples)\n",
                report->reliability, options.epsilon, 1.0 - options.delta,
                static_cast<unsigned long long>(report->samples));
  }
  std::printf("H (exp.err): %.6f\n", report->expected_error);
  std::printf("method     : %s\n", report->method.c_str());

  if (per_tuple) {
    qrel::StatusOr<qrel::FormulaPtr> formula = qrel::ParseFormula(query);
    qrel::StatusOr<std::vector<qrel::TupleError>> breakdown =
        qrel::PerTupleExpectedError(*formula, engine.database());
    if (!breakdown.ok()) {
      std::fprintf(stderr, "per-tuple: %s\n",
                   breakdown.status().ToString().c_str());
      return 1;
    }
    std::printf("\nper-tuple breakdown (non-zero rows):\n");
    std::printf("  %-14s %-9s %s\n", "tuple", "observed", "Pr[wrong]");
    for (const qrel::TupleError& row : *breakdown) {
      if (row.error.IsZero()) {
        continue;
      }
      std::printf("  %-14s %-9s %s (= %.6f)\n",
                  TupleToString(row.tuple).c_str(),
                  row.observed ? "in" : "out", row.error.ToString().c_str(),
                  row.error.ToDouble());
    }
  }
  return 0;
}
