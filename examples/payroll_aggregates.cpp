// Metafinite databases (Section 6): reliability of SQL-style aggregates
// over uncertain numeric data.
//
// The salary column of a payroll table was OCR'd from scanned forms; for
// ambiguous cells the pipeline kept the alternatives with probabilities.
// Queries are metafinite terms: SUM/AVG/MIN/MAX/COUNT over the universe,
// grouped variants with free variables, and quantifier-free per-row
// predicates (which Theorem 6.2 (i) answers in polynomial time).

#include <cstdio>
#include <memory>

#include "qrel/metafinite/functional_database.h"
#include "qrel/metafinite/reliability.h"
#include "qrel/metafinite/term.h"
#include "qrel/metafinite/text_format.h"

using qrel::MApply;
using qrel::MAvg;
using qrel::MConst;
using qrel::MCount;
using qrel::MEq;
using qrel::MLess;
using qrel::MMax;
using qrel::MMul;
using qrel::MSum;
using qrel::Rational;
using qrel::Term;

namespace {

qrel::UnreliableFunctionalDatabase BuildPayroll() {
  auto vocabulary = std::make_shared<qrel::FunctionalVocabulary>();
  int salary = vocabulary->AddFunction("salary", 1);
  int dept = vocabulary->AddFunction("dept", 1);

  qrel::FunctionalStructure observed(vocabulary, 6);
  const int64_t salaries[] = {3200, 4100, 2800, 5200, 3900, 6100};
  const int64_t depts[] = {1, 1, 2, 2, 3, 3};
  for (int i = 0; i < 6; ++i) {
    observed.SetValue(salary, {i}, Rational(salaries[i]));
    observed.SetValue(dept, {i}, Rational(depts[i]));
  }
  qrel::UnreliableFunctionalDatabase db(std::move(observed));

  // OCR ambiguities: a smudged digit makes two readings plausible.
  auto two_point = [](int64_t a, Rational pa, int64_t b) {
    qrel::ValueDistribution d;
    d.outcomes.push_back({Rational(a), pa});
    d.outcomes.push_back({Rational(b), pa.Complement()});
    return d;
  };
  // 3200 could be 8200 (3 vs 8), 90% confident.
  db.SetDistribution(qrel::FunctionEntry{salary, {0}},
                     two_point(3200, Rational(9, 10), 8200))
      .value();
  // 5200 could be 5900.
  db.SetDistribution(qrel::FunctionEntry{salary, {3}},
                     two_point(5200, Rational(3, 4), 5900))
      .value();
  // employee 4's department might be 2.
  db.SetDistribution(qrel::FunctionEntry{dept, {4}},
                     two_point(3, Rational(4, 5), 2))
      .value();
  return db;
}

void Report(const char* label, const qrel::MTermPtr& query,
            const qrel::UnreliableFunctionalDatabase& db) {
  qrel::StatusOr<qrel::FunctionalReliabilityReport> exact =
      qrel::ExactFunctionalReliability(query, db);
  if (!exact.ok()) {
    std::printf("%-44s ERROR: %s\n", label,
                exact.status().ToString().c_str());
    return;
  }
  Rational observed_value =
      exact->arity == 0 ? qrel::EvalTerm(query, db.observed(), {})
                        : Rational(0);
  if (exact->arity == 0) {
    std::printf("%-44s observed=%-8s R = %s (= %.4f)\n", label,
                observed_value.ToString().c_str(),
                exact->reliability.ToString().c_str(),
                exact->reliability.ToDouble());
  } else {
    std::printf("%-44s (arity %d)      R = %s (= %.4f)\n", label,
                exact->arity, exact->reliability.ToString().c_str(),
                exact->reliability.ToDouble());
  }
}

}  // namespace

int main() {
  qrel::UnreliableFunctionalDatabase db = BuildPayroll();
  std::printf("payroll: 6 employees, %d uncertain cells, %llu worlds\n\n",
              db.uncertain_entry_count(),
              static_cast<unsigned long long>(*db.WorldCount()));

  qrel::MTermPtr salary_y = MApply("salary", {Term::Var("y")});

  Report("SELECT SUM(salary)", MSum("y", salary_y), db);
  Report("SELECT AVG(salary)", MAvg("y", salary_y), db);
  Report("SELECT MAX(salary)", MMax("y", salary_y), db);
  Report("SELECT COUNT(*) WHERE salary > 4000",
         MCount("y", MLess(MConst(4000), salary_y)), db);
  // Grouped aggregate with a free variable x:
  // SUM(salary) OVER (PARTITION BY dept(x)).
  Report("SUM(salary) GROUP BY dept  [per-row]",
         MSum("y", MMul(MEq(MApply("dept", {Term::Var("y")}),
                            MApply("dept", {Term::Var("x")})),
                        salary_y)),
         db);
  // Quantifier-free per-row predicate: handled by the polynomial
  // algorithm of Theorem 6.2 (i).
  qrel::MTermPtr flag =
      MLess(MConst(4000), MApply("salary", {Term::Var("x")}));
  qrel::StatusOr<qrel::FunctionalReliabilityReport> fast =
      qrel::QuantifierFreeFunctionalReliability(flag, db);
  std::printf("%-44s (arity 1)      R = %s   [Thm 6.2(i), %llu local "
              "outcomes]\n",
              "salary(x) > 4000  [quantifier-free]",
              fast->reliability.ToString().c_str(),
              static_cast<unsigned long long>(fast->work_units));

  // Monte Carlo cross-check on the most sensitive aggregate.
  qrel::StatusOr<qrel::FunctionalMcResult> mc =
      qrel::McFunctionalReliability(MSum("y", salary_y), db, 50000, 1);
  std::printf("\nMonte Carlo cross-check on SUM: R ~= %.4f (50k samples)\n",
              mc->estimate);

  // The database serializes to the .mfdb text format (and parses back).
  std::printf("\n--- .mfdb serialization ---\n%s",
              qrel::FormatMfdb(db).c_str());
  return 0;
}
