// qrel_server: serve query reliability over TCP.
//
//   qrel_server <database.udb | name=database.udb>... [options]
//
// Attaches one or more unreliable databases at startup — a bare path
// attaches under the default database name, `name=path` attaches under
// `name` — and answers the framed line protocol of
// src/qrel/net/protocol.h (verbs QUERY / EXPLAIN / HEALTH / STATS /
// DRAIN plus the admin plane ATTACH / DETACH / RELOAD / DBLIST) from a
// fixed worker pool behind a bounded queue. See src/qrel/net/server.h
// for the robustness model: admission control, per-tenant isolation,
// overload shedding with Retry-After hints, pressure degradation, a
// memoizing single-flight result cache, crash-safe hot reload, and
// graceful drain.
//
// Options:
//   --port=<n>            TCP port (default 7461; 0 = ephemeral, printed)
//   --listen-any          bind 0.0.0.0 instead of loopback
//   --workers=<n>         worker threads (default 2)
//   --queue=<n>           bounded queue capacity (default 8)
//   --default-db=<name>   database name QUERYs without db= route to
//   --cost-ceiling=<d>    admission ceiling on the static cost estimate
//   --max-work=<n>        default per-request work budget
//   --max-request-work=<n> hard clip on any per-request budget
//   --quota=<n>           server-wide outstanding-work quota
//   --tenant-rate=<n>     per-tenant token-bucket refill, requests/sec
//                         (0 = unlimited, the default)
//   --tenant-burst=<n>    per-tenant token-bucket burst (default 8)
//   --tenant-quota=<n>    per-tenant outstanding-work quota (0 = uncapped)
//   --timeout-ms=<n>      default per-request deadline (0 = none)
//   --pressure-depth=<n>  queue depth that triggers degraded answers
//   --cache=<n>           result cache entries (0 disables storing)
//   --checkpoint-dir=<d>  crash/drain-safe per-query checkpointing
//   --checkpoint-interval-ms=<n>  checkpoint cadence (0 = every safe point)
//   --state-dir=<d>       durable server state: the attached-database
//                         manifest, the idempotency journal, and (unless
//                         --checkpoint-dir overrides) checkpoints all live
//                         here; on startup the server sweeps the dir and
//                         replays the manifest (see net/server.h
//                         RecoverState). With --state-dir the database
//                         arguments are optional — a restart recovers
//                         them from the manifest.
//   --drain-grace-ms=<n>  how long a drain waits before cancelling
//   --fault-inject=<site>[:<n>]  arm a fault site (repeatable); see
//                         util/fault_injection.h
//   --enable-fault-verb   permit the FAULT wire verb (crash drills only)
//
// Signals: SIGTERM and SIGINT begin a graceful drain — the listener stops
// accepting, queued-but-unstarted requests fail fast with CANCELLED,
// running requests get drain_grace_ms to finish and are then cancelled
// cooperatively (flushing a final checkpoint when --checkpoint-dir is
// set). The process prints final stats and exits 0; clients never see a
// torn response.
//
// Exit codes: 0 clean shutdown, 2 usage, otherwise 10 + StatusCode.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "qrel/engine/engine.h"
#include "qrel/net/catalog.h"
#include "qrel/net/server.h"
#include "qrel/util/fault_injection.h"

namespace {

// Signal handlers may only touch lock-free state; the main thread polls
// this flag and runs the actual drain.
volatile std::sig_atomic_t g_shutdown_requested = 0;

extern "C" void HandleShutdownSignal(int /*signum*/) {
  g_shutdown_requested = 1;
}

bool ParseUint64Flag(const char* arg, const char* name, uint64_t* out) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') {
    return false;
  }
  const char* value = arg + len + 1;
  char* end = nullptr;
  *out = std::strtoull(value, &end, 10);
  if (*value == '\0' || *end != '\0') {
    std::fprintf(stderr, "%s needs a non-negative integer, got \"%s\"\n",
                 name, value);
    std::exit(2);
  }
  return true;
}

bool ParseDoubleFlag(const char* arg, const char* name, double* out) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') {
    return false;
  }
  *out = std::atof(arg + len + 1);
  return true;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: qrel_server <database.udb | name=database.udb>... [--port=N] "
      "[--listen-any] [--workers=N] [--queue=N] [--default-db=NAME] "
      "[--cost-ceiling=D] [--max-work=N] [--max-request-work=N] [--quota=N] "
      "[--tenant-rate=N] [--tenant-burst=N] [--tenant-quota=N] "
      "[--timeout-ms=N] [--pressure-depth=N] [--cache=N] "
      "[--checkpoint-dir=DIR] [--checkpoint-interval-ms=N] "
      "[--state-dir=DIR] [--drain-grace-ms=N] "
      "[--fault-inject=SITE[:N]] [--enable-fault-verb]\n");
  return 2;
}

int ExitCodeFor(const qrel::Status& status) {
  return 10 + static_cast<int>(status.code());
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t port = 7461;
  uint64_t workers = 2;
  uint64_t queue = 8;
  uint64_t pressure_depth = 0;
  bool has_pressure_depth = false;
  qrel::ServerOptions options;
  // (name, path); a name still empty after flag parsing means "attach
  // under the default database name".
  std::vector<std::pair<std::string, std::string>> databases;
  for (int i = 1; i < argc; ++i) {
    if (argv[i][0] != '-') {
      std::string positional = argv[i];
      size_t eq = positional.find('=');
      if (eq == std::string::npos) {
        databases.emplace_back("", positional);
      } else {
        databases.emplace_back(positional.substr(0, eq),
                               positional.substr(eq + 1));
        if (databases.back().first.empty() ||
            databases.back().second.empty()) {
          std::fprintf(stderr, "bad database spec \"%s\": want name=path\n",
                       argv[i]);
          return 2;
        }
      }
      continue;
    }
    uint64_t u64 = 0;
    if (ParseUint64Flag(argv[i], "--port", &port) ||
        ParseUint64Flag(argv[i], "--workers", &workers) ||
        ParseUint64Flag(argv[i], "--queue", &queue) ||
        ParseDoubleFlag(argv[i], "--cost-ceiling",
                        &options.max_admission_cost) ||
        ParseUint64Flag(argv[i], "--max-work", &options.default_max_work) ||
        ParseUint64Flag(argv[i], "--max-request-work",
                        &options.max_request_work) ||
        ParseUint64Flag(argv[i], "--quota", &options.work_quota) ||
        ParseUint64Flag(argv[i], "--tenant-rate",
                        &options.tenant_rate_per_sec) ||
        ParseUint64Flag(argv[i], "--tenant-burst", &options.tenant_burst) ||
        ParseUint64Flag(argv[i], "--tenant-quota",
                        &options.tenant_work_quota) ||
        ParseUint64Flag(argv[i], "--timeout-ms",
                        &options.default_timeout_ms) ||
        ParseUint64Flag(argv[i], "--checkpoint-interval-ms",
                        &options.checkpoint_interval_ms) ||
        ParseUint64Flag(argv[i], "--drain-grace-ms",
                        &options.drain_grace_ms)) {
      continue;
    }
    if (ParseUint64Flag(argv[i], "--pressure-depth", &pressure_depth)) {
      has_pressure_depth = true;
    } else if (ParseUint64Flag(argv[i], "--cache", &u64)) {
      options.cache_capacity = static_cast<size_t>(u64);
    } else if (std::strncmp(argv[i], "--default-db=", 13) == 0) {
      options.default_db = argv[i] + 13;
      if (!qrel::DbCatalog::ValidName(options.default_db)) {
        std::fprintf(stderr, "--default-db: invalid database name \"%s\"\n",
                     options.default_db.c_str());
        return 2;
      }
    } else if (std::strncmp(argv[i], "--checkpoint-dir=", 17) == 0) {
      options.checkpoint_dir = argv[i] + 17;
      if (options.checkpoint_dir.empty()) {
        std::fprintf(stderr, "--checkpoint-dir needs a directory path\n");
        return 2;
      }
    } else if (std::strncmp(argv[i], "--state-dir=", 12) == 0) {
      options.state_dir = argv[i] + 12;
      if (options.state_dir.empty()) {
        std::fprintf(stderr, "--state-dir needs a directory path\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--enable-fault-verb") == 0) {
      options.enable_fault_verb = true;
    } else if (std::strncmp(argv[i], "--fault-inject=", 15) == 0) {
      qrel::Status armed = qrel::ArmFaultFromSpec(argv[i] + 15);
      if (!armed.ok()) {
        std::fprintf(stderr, "--fault-inject: %s\n",
                     armed.ToString().c_str());
        return 2;
      }
    } else if (std::strcmp(argv[i], "--listen-any") == 0) {
      options.listen_any = true;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", argv[i]);
      return Usage();
    }
  }
  if (databases.empty() && options.state_dir.empty()) {
    return Usage();
  }
  options.workers = static_cast<int>(workers);
  options.queue_capacity = static_cast<size_t>(queue);
  if (has_pressure_depth) {
    options.pressure_watermark = static_cast<size_t>(pressure_depth);
  }

  qrel::QrelServer server(options);

  // Recover durable state *before* the command-line attaches: a startup
  // ATTACH must not clobber the manifest the previous incarnation wrote.
  if (!options.state_dir.empty()) {
    qrel::RecoveryReport recovery = server.RecoverState();
    if (recovery.manifest_found || recovery.gc_removed_temp != 0 ||
        recovery.gc_removed_corrupt != 0 ||
        recovery.journal_recovered != 0 || recovery.journal_corrupt != 0) {
      std::printf("recovered  : %zu databases (%zu already attached, %zu "
                  "failed), %zu idempotency keys (%zu corrupt), swept %zu "
                  "orphaned temps, %zu corrupt leftovers%s\n",
                  recovery.reattached, recovery.skipped_existing,
                  recovery.failures.size(), recovery.journal_recovered,
                  recovery.journal_corrupt, recovery.gc_removed_temp,
                  recovery.gc_removed_corrupt,
                  recovery.manifest_corrupt ? " (manifest corrupt)" : "");
      for (const std::string& failure : recovery.failures) {
        std::fprintf(stderr, "recovery   : %s\n", failure.c_str());
      }
    }
  }

  for (auto& [name, path] : databases) {
    if (name.empty()) {
      name = options.default_db;
    }
    // Through the wire-verb path, not catalog() directly, so the attach
    // also persists the manifest when --state-dir is set.
    qrel::Request attach;
    attach.verb = qrel::RequestVerb::kAttach;
    attach.target = name;
    attach.path = path;
    qrel::Response attached = server.Handle(attach);
    if (!attached.ok()) {
      if (attached.status.code() == qrel::StatusCode::kFailedPrecondition &&
          server.catalog().Resolve(name).ok()) {
        // Recovery already re-attached this name from the manifest; the
        // recovered version (fingerprint-verified) wins.
        continue;
      }
      std::fprintf(stderr, "%s: %s\n", path.c_str(),
                   attached.status.ToString().c_str());
      return ExitCodeFor(attached.status);
    }
  }
  if (server.catalog().List().empty()) {
    std::fprintf(stderr,
                 "no databases: nothing recovered from --state-dir and none "
                 "given on the command line\n");
    // Still start: the admin plane (ATTACH) can populate the catalog.
  }
  for (const qrel::DbInfo& info : server.catalog().List()) {
    std::printf("database   : %s = %s (universe %d, %zu facts, %zu "
                "unreliable atoms)\n",
                info.name.c_str(), info.source_path.c_str(),
                info.universe_size, info.fact_count, info.uncertain_atoms);
  }

  qrel::Status serving =
      server.ServeInBackground(static_cast<int>(port));
  if (!serving.ok()) {
    std::fprintf(stderr, "listen: %s\n", serving.ToString().c_str());
    return ExitCodeFor(serving);
  }
  std::printf("listening  : %s:%d (%d workers, queue %zu)\n",
              options.listen_any ? "0.0.0.0" : "127.0.0.1", server.port(),
              options.workers, options.queue_capacity);
  std::fflush(stdout);

  std::signal(SIGTERM, HandleShutdownSignal);
  std::signal(SIGINT, HandleShutdownSignal);

  // The accept loop runs on its own thread; this thread only waits for a
  // shutdown signal or a protocol-initiated DRAIN.
  while (g_shutdown_requested == 0 && !server.draining()) {
    struct timespec tick = {0, 100 * 1000 * 1000};
    nanosleep(&tick, nullptr);
  }

  std::printf("draining   : %s\n",
              g_shutdown_requested != 0 ? "signal received"
                                        : "DRAIN request received");
  std::fflush(stdout);
  server.Shutdown();

  qrel::ServerStatsSnapshot stats = server.stats_snapshot();
  std::printf("served     : %llu requests (%llu ok, %llu error)\n",
              static_cast<unsigned long long>(stats.requests_total),
              static_cast<unsigned long long>(stats.completed_ok),
              static_cast<unsigned long long>(stats.completed_error));
  std::printf("shed       : %llu queue-full, %llu quota, %llu draining, "
              "%llu tenant-rate, %llu tenant-quota, %llu displaced\n",
              static_cast<unsigned long long>(stats.shed_queue_full),
              static_cast<unsigned long long>(stats.shed_quota),
              static_cast<unsigned long long>(stats.shed_draining),
              static_cast<unsigned long long>(stats.shed_tenant_rate),
              static_cast<unsigned long long>(stats.shed_tenant_quota),
              static_cast<unsigned long long>(stats.shed_displaced));
  std::printf("catalog    : %llu attaches, %llu detaches, %llu reloads "
              "(%llu failed)\n",
              static_cast<unsigned long long>(stats.attaches),
              static_cast<unsigned long long>(stats.detaches),
              static_cast<unsigned long long>(stats.reloads),
              static_cast<unsigned long long>(stats.reload_failures));
  std::printf("cache      : %llu hits, %llu misses, %llu shared\n",
              static_cast<unsigned long long>(stats.cache_hits),
              static_cast<unsigned long long>(stats.cache_misses),
              static_cast<unsigned long long>(stats.cache_shared));
  std::printf("drain      : %llu cancelled, %llu resumes available\n",
              static_cast<unsigned long long>(stats.drain_cancelled),
              static_cast<unsigned long long>(stats.checkpoint_resumes));
  return 0;
}
