// Network monitoring scenario: reliability of reachability-style queries
// when the link table is stale.
//
// A monitoring system records a Link relation between routers. Each entry
// was measured at some point in the past; the older the measurement, the
// higher the probability that the link has since flapped. We model this
// with per-fact error probabilities and ask how trustworthy the answers of
// common operational queries are — exactly where exact computation is
// feasible, with the paper's FPTRAS where it is not.

#include <cstdio>
#include <memory>
#include <string>

#include "qrel/core/approx.h"
#include "qrel/core/reliability.h"
#include "qrel/engine/engine.h"
#include "qrel/logic/parser.h"
#include "qrel/util/rng.h"

namespace {

// Builds a ring-with-chords topology on `n` routers. Link ages are
// pseudo-random; the error probability of a link grows with its age.
qrel::UnreliableDatabase BuildNetwork(int n, uint64_t seed) {
  auto vocabulary = std::make_shared<qrel::Vocabulary>();
  int link = vocabulary->AddRelation("Link", 2);
  int core = vocabulary->AddRelation("Core", 1);

  qrel::Structure observed(vocabulary, n);
  qrel::Rng rng(seed);

  auto add_link = [&](int u, int v) {
    observed.AddFact(link, {static_cast<qrel::Element>(u),
                            static_cast<qrel::Element>(v)});
  };
  for (int i = 0; i < n; ++i) {
    add_link(i, (i + 1) % n);  // the ring
  }
  for (int i = 0; i < n; i += 3) {
    add_link(i, (i + n / 2) % n);  // chords
  }
  for (int i = 0; i < n; i += 4) {
    observed.AddFact(core, {static_cast<qrel::Element>(i)});
  }

  qrel::UnreliableDatabase db(std::move(observed));
  // Stale measurements: age in {0..9} scans, error probability age/40.
  for (const qrel::Tuple& edge : db.observed().Facts(link)) {
    int64_t age = static_cast<int64_t>(rng.NextBelow(10));
    if (age > 0) {
      db.SetErrorProbability(qrel::GroundAtom{link, edge},
                             qrel::Rational(age, 40));
    }
  }
  // A few phantom links the scrubber is unsure about.
  for (int i = 0; i < n / 4; ++i) {
    qrel::Element u = static_cast<qrel::Element>(rng.NextBelow(n));
    qrel::Element v = static_cast<qrel::Element>(rng.NextBelow(n));
    if (u != v && !db.observed().AtomTrue(link, {u, v})) {
      db.SetErrorProbability(qrel::GroundAtom{link, {u, v}},
                             qrel::Rational(1, 20));
    }
  }
  return db;
}

void Report(const char* label, const qrel::StatusOr<qrel::EngineReport>& r) {
  if (!r.ok()) {
    std::printf("%-34s ERROR: %s\n", label, r.status().ToString().c_str());
    return;
  }
  std::printf("%-34s R = %.6f  [%s]%s\n", label, r->reliability,
              r->method.c_str(), r->is_exact ? " (exact)" : "");
}

}  // namespace

int main() {
  const int n = 12;
  qrel::ReliabilityEngine engine(BuildNetwork(n, /*seed=*/2024));
  std::printf("network: %d routers, %zu observed links, %zu uncertain atoms\n\n",
              n,
              engine.database().observed().FactCount(),
              engine.database().UncertainEntries().size());

  // Operational queries of increasing logical strength.
  qrel::EngineOptions options;
  options.epsilon = 0.02;
  options.delta = 0.05;
  options.max_exact_worlds = uint64_t{1} << 24;

  Report("link table itself: Link(x,y)", engine.Run("Link(x, y)", options));
  Report("2-hop reach: ex z . L(x,z)&L(z,y)",
         engine.Run("exists z . Link(x, z) & Link(z, y)", options));
  Report("some core-to-core 2-hop path",
         engine.Run("exists x y z . Core(x) & Core(y) & x != y & "
                    "Link(x, z) & Link(z, y)",
                    options));
  Report("no isolated core router",
         engine.Run("forall x . Core(x) -> (exists y . Link(x, y))",
                    options));

  // The same existential query through the Theorem 5.4 FPTRAS explicitly,
  // to show the grounding size and sample count.
  qrel::FormulaPtr probe = *qrel::ParseFormula(
      "exists x y z . Core(x) & Core(y) & x != y & Link(x, z) & Link(z, y)");
  qrel::ApproxOptions approx;
  approx.epsilon = 0.02;
  approx.delta = 0.05;
  approx.seed = 7;
  qrel::StatusOr<qrel::ApproxResult> fptras =
      qrel::ExistentialProbabilityFptras(probe, engine.database(), {},
                                         approx);
  if (fptras.ok()) {
    std::printf("\nFPTRAS detail: Pr[core 2-hop path in actual network] "
                "= %.6f\n  via %s, %llu samples\n",
                fptras->estimate, fptras->method.c_str(),
                static_cast<unsigned long long>(fptras->samples));
  }
  return 0;
}
