#include "qrel/reductions/monotone_two_sat.h"

#include <memory>

#include "qrel/logic/parser.h"
#include "qrel/util/check.h"

namespace qrel {

MonotoneTwoSat RandomMonotoneTwoSat(int variables, int clauses, Rng* rng) {
  QREL_CHECK_GE(variables, 2);
  QREL_CHECK_GE(clauses, 1);
  QREL_CHECK(rng != nullptr);
  MonotoneTwoSat formula;
  formula.variable_count = variables;
  formula.clauses.reserve(static_cast<size_t>(clauses));
  for (int c = 0; c < clauses; ++c) {
    int y = static_cast<int>(rng->NextBelow(static_cast<uint64_t>(variables)));
    int z = static_cast<int>(
        rng->NextBelow(static_cast<uint64_t>(variables - 1)));
    if (z >= y) {
      ++z;  // uniform over pairs with z != y
    }
    formula.clauses.emplace_back(y, z);
  }
  return formula;
}

BigInt CountSatisfyingAssignments(const MonotoneTwoSat& formula) {
  QREL_CHECK_LE(formula.variable_count, 30);
  uint64_t count = 0;
  uint64_t assignments = uint64_t{1} << formula.variable_count;
  for (uint64_t assignment = 0; assignment < assignments; ++assignment) {
    bool satisfied = true;
    for (const auto& [y, z] : formula.clauses) {
      if (((assignment >> y) & 1u) == 0 && ((assignment >> z) & 1u) == 0) {
        satisfied = false;
        break;
      }
    }
    if (satisfied) {
      ++count;
    }
  }
  return BigInt::FromUint64(count);
}

Prop32Instance BuildProp32Instance(const MonotoneTwoSat& formula) {
  QREL_CHECK_GE(formula.variable_count, 1);
  QREL_CHECK_GE(static_cast<int>(formula.clauses.size()), 1);

  int clause_count = static_cast<int>(formula.clauses.size());
  auto vocabulary = std::make_shared<Vocabulary>();
  int l = vocabulary->AddRelation("L", 2);
  int r = vocabulary->AddRelation("R", 2);
  int s = vocabulary->AddRelation("S", 1);

  // Universe: clauses 0..c-1, then variables c..c+m-1.
  Structure observed(std::move(vocabulary),
                     clause_count + formula.variable_count);
  for (int c = 0; c < clause_count; ++c) {
    Element left = static_cast<Element>(clause_count + formula.clauses[c].first);
    Element right =
        static_cast<Element>(clause_count + formula.clauses[c].second);
    observed.AddFact(l, {static_cast<Element>(c), left});
    observed.AddFact(r, {static_cast<Element>(c), right});
  }
  // The all-false assignment: S holds every variable.
  for (int v = 0; v < formula.variable_count; ++v) {
    observed.AddFact(s, {static_cast<Element>(clause_count + v)});
  }

  Prop32Instance instance{UnreliableDatabase(std::move(observed)),
                          nullptr,
                          clause_count,
                          formula.variable_count};
  // μ(S v) = 1/2 for every variable; L, R are reliable. Note that only
  // positive facts carry errors here, so the reduction also works in de
  // Rougemont's restricted model (see the remark after Prop. 3.2).
  for (int v = 0; v < formula.variable_count; ++v) {
    instance.database.SetErrorProbability(
        GroundAtom{s, {static_cast<Element>(clause_count + v)}},
        Rational::Half());
  }
  instance.query =
      *ParseFormula("exists x y z . L(x,y) & R(x,z) & S(y) & S(z)");
  return instance;
}

BigInt RecoverModelCount(const Rational& expected_error, int variable_count) {
  Rational scaled =
      expected_error *
      Rational(BigInt::TwoPow(static_cast<uint32_t>(variable_count)),
               BigInt(1));
  QREL_CHECK_MSG(scaled.denominator().IsOne(),
                 "H_psi * 2^m is not an integer");
  return scaled.numerator();
}

}  // namespace qrel
