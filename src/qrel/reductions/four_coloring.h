// Graph 4-colourability and the Lemma 5.9 reduction.
//
// Lemma 5.9 shows the absolute reliability problem co-NP-hard for the
// existential "non-4-colouring" query
//
//   ψ = ∃x ∃y ( E(x,y) ∧ (R₁x ↔ R₁y) ∧ (R₂x ↔ R₂y) )
//
// over the database that takes the graph's edge relation as reliable, sets
// R₁ = R₂ = ∅ (all vertices get colour (0,0)) and gives every R_i(v) atom
// error probability 1/2. A world is a colouring of the vertices with the
// four colours (R₁, R₂) ∈ {0,1}²; ψ holds iff that colouring is *not*
// proper. The observed database satisfies ψ (all vertices share a colour,
// assuming at least one edge), so
//
//   G is 4-colourable  ⟺  some world falsifies ψ  ⟺  𝔇 ∉ AR_ψ.

#ifndef QREL_REDUCTIONS_FOUR_COLORING_H_
#define QREL_REDUCTIONS_FOUR_COLORING_H_

#include <utility>
#include <vector>

#include "qrel/logic/ast.h"
#include "qrel/prob/unreliable_database.h"
#include "qrel/util/rng.h"

namespace qrel {

// An undirected graph on vertices 0..vertex_count-1.
struct Graph {
  int vertex_count = 0;
  std::vector<std::pair<int, int>> edges;
};

// Erdős–Rényi G(n, p); self-loops excluded, each unordered pair included
// independently with probability `edge_probability`.
Graph RandomGraph(int vertices, double edge_probability, Rng* rng);
// K_n (4-colourable iff n ≤ 4).
Graph CompleteGraph(int vertices);
// C_n (always 4-colourable; 2-colourable iff n even).
Graph CycleGraph(int vertices);
// K_5 with every edge subdivided once — 4-colourable (even bipartite-ish)
// but with many vertices; a useful "hard yes" instance.
Graph SubdividedK5();

// Exact decision by backtracking over the 4^V colourings with pruning.
bool IsFourColorable(const Graph& graph);

struct Lemma59Instance {
  UnreliableDatabase database;
  FormulaPtr query;  // the fixed non-4-colouring query ψ
};

// The Lemma 5.9 reduction. The graph must have at least one edge (the
// lemma's footnote "quietly ignoring the case E = ∅").
Lemma59Instance BuildLemma59Instance(const Graph& graph);

}  // namespace qrel

#endif  // QREL_REDUCTIONS_FOUR_COLORING_H_
