#include "qrel/reductions/four_coloring.h"

#include <memory>

#include "qrel/logic/parser.h"
#include "qrel/util/check.h"

namespace qrel {

Graph RandomGraph(int vertices, double edge_probability, Rng* rng) {
  QREL_CHECK_GE(vertices, 1);
  QREL_CHECK(rng != nullptr);
  Graph graph;
  graph.vertex_count = vertices;
  for (int u = 0; u < vertices; ++u) {
    for (int v = u + 1; v < vertices; ++v) {
      if (rng->NextBernoulli(edge_probability)) {
        graph.edges.emplace_back(u, v);
      }
    }
  }
  return graph;
}

Graph CompleteGraph(int vertices) {
  Graph graph;
  graph.vertex_count = vertices;
  for (int u = 0; u < vertices; ++u) {
    for (int v = u + 1; v < vertices; ++v) {
      graph.edges.emplace_back(u, v);
    }
  }
  return graph;
}

Graph CycleGraph(int vertices) {
  QREL_CHECK_GE(vertices, 3);
  Graph graph;
  graph.vertex_count = vertices;
  for (int v = 0; v < vertices; ++v) {
    graph.edges.emplace_back(v, (v + 1) % vertices);
  }
  return graph;
}

Graph SubdividedK5() {
  Graph graph;
  graph.vertex_count = 5;
  for (int u = 0; u < 5; ++u) {
    for (int v = u + 1; v < 5; ++v) {
      int midpoint = graph.vertex_count++;
      graph.edges.emplace_back(u, midpoint);
      graph.edges.emplace_back(midpoint, v);
    }
  }
  return graph;
}

namespace {

bool ColorBacktrack(const std::vector<std::vector<int>>& adjacency,
                    std::vector<int>* colors, size_t vertex) {
  if (vertex == colors->size()) {
    return true;
  }
  for (int c = 0; c < 4; ++c) {
    bool clash = false;
    for (int neighbor : adjacency[vertex]) {
      if (static_cast<size_t>(neighbor) < vertex &&
          (*colors)[static_cast<size_t>(neighbor)] == c) {
        clash = true;
        break;
      }
    }
    if (clash) {
      continue;
    }
    (*colors)[vertex] = c;
    if (ColorBacktrack(adjacency, colors, vertex + 1)) {
      return true;
    }
  }
  return false;
}

}  // namespace

bool IsFourColorable(const Graph& graph) {
  std::vector<std::vector<int>> adjacency(
      static_cast<size_t>(graph.vertex_count));
  for (const auto& [u, v] : graph.edges) {
    if (u == v) {
      return false;  // a self-loop can never be properly coloured
    }
    adjacency[static_cast<size_t>(u)].push_back(v);
    adjacency[static_cast<size_t>(v)].push_back(u);
  }
  std::vector<int> colors(static_cast<size_t>(graph.vertex_count), -1);
  return ColorBacktrack(adjacency, &colors, 0);
}

Lemma59Instance BuildLemma59Instance(const Graph& graph) {
  QREL_CHECK_GE(static_cast<int>(graph.edges.size()), 1);
  auto vocabulary = std::make_shared<Vocabulary>();
  int e = vocabulary->AddRelation("E", 2);
  int r1 = vocabulary->AddRelation("R1", 1);
  int r2 = vocabulary->AddRelation("R2", 1);

  Structure observed(std::move(vocabulary), graph.vertex_count);
  for (const auto& [u, v] : graph.edges) {
    observed.AddFact(e, {static_cast<Element>(u), static_cast<Element>(v)});
    observed.AddFact(e, {static_cast<Element>(v), static_cast<Element>(u)});
  }
  // R1 = R2 = ∅: every vertex observed with colour (0, 0).

  Lemma59Instance instance{UnreliableDatabase(std::move(observed)), nullptr};
  for (int v = 0; v < graph.vertex_count; ++v) {
    instance.database.SetErrorProbability(
        GroundAtom{r1, {static_cast<Element>(v)}}, Rational::Half());
    instance.database.SetErrorProbability(
        GroundAtom{r2, {static_cast<Element>(v)}}, Rational::Half());
  }
  instance.query = *ParseFormula(
      "exists x y . E(x,y) & (R1(x) <-> R1(y)) & (R2(x) <-> R2(y))");
  return instance;
}

}  // namespace qrel
