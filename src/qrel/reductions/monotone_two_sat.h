// #MONOTONE-2SAT and the Proposition 3.2 reduction.
//
// Valiant proved counting the satisfying assignments of a monotone 2-CNF
// formula #P-complete. Proposition 3.2 reduces it to computing the
// expected error of the fixed conjunctive query
//
//   ψ = ∃x ∃y ∃z ( L(x,y) ∧ R(x,z) ∧ S(y) ∧ S(z) )
//
// on the unreliable database that models the formula: the universe is the
// disjoint union of clauses and variables, L(c, v) / R(c, v) say that v is
// the left / right variable of clause c (error 0), and S holds all
// variables ("set to false") with error probability 1/2 each. Then
// ψ holds in the observed database, a world 𝔅 is an assignment (flipped
// S-atoms are the variables set to true), ψ^𝔅 is false exactly when the
// assignment satisfies the formula, and therefore
//
//   H_ψ(𝔄, μ) = #SAT(φ) / 2^m.
//
// Solving the reliability problem hence solves #MONOTONE-2SAT — the
// #P-hardness of conjunctive-query reliability, executable.

#ifndef QREL_REDUCTIONS_MONOTONE_TWO_SAT_H_
#define QREL_REDUCTIONS_MONOTONE_TWO_SAT_H_

#include <utility>
#include <vector>

#include "qrel/logic/ast.h"
#include "qrel/prob/unreliable_database.h"
#include "qrel/util/bigint.h"
#include "qrel/util/rng.h"

namespace qrel {

// A monotone 2-CNF formula: ⋀_i (Y_i ∨ Z_i) over variables 0..m-1.
struct MonotoneTwoSat {
  int variable_count = 0;
  std::vector<std::pair<int, int>> clauses;
};

// Uniformly random clauses (Y ≠ Z within a clause; duplicates allowed
// across clauses). `variables` must be at least 2, `clauses` at least 1.
MonotoneTwoSat RandomMonotoneTwoSat(int variables, int clauses, Rng* rng);

// Exact #SAT by exhaustive enumeration; `variable_count` must be ≤ 30.
BigInt CountSatisfyingAssignments(const MonotoneTwoSat& formula);

struct Prop32Instance {
  UnreliableDatabase database;
  FormulaPtr query;  // the fixed conjunctive query ψ
  // Element ids: clause c is element c; variable v is element
  // clause_count + v.
  int clause_count = 0;
  int variable_count = 0;
};

// The Proposition 3.2 reduction. The formula must have at least one clause
// (otherwise 𝔄 ⊭ ψ and the identity takes the complementary form).
Prop32Instance BuildProp32Instance(const MonotoneTwoSat& formula);

// Recovers #SAT(φ) from the expected error: #SAT = H_ψ · 2^m. Aborts if
// the product is not an integer (which would falsify the reduction).
BigInt RecoverModelCount(const Rational& expected_error, int variable_count);

}  // namespace qrel

#endif  // QREL_REDUCTIONS_MONOTONE_TWO_SAT_H_
