#include "qrel/core/reliability.h"

#include <unordered_map>
#include <utility>

#include "qrel/logic/classify.h"
#include "qrel/util/check.h"
#include "qrel/util/fault_injection.h"
#include "qrel/util/snapshot.h"

namespace qrel {

namespace {

// All tuples of arity `k` over {0..n-1}, in lexicographic order.
std::vector<Tuple> AllTuples(int n, int k) {
  std::vector<Tuple> result;
  Tuple tuple(static_cast<size_t>(k), 0);
  do {
    result.push_back(tuple);
  } while (AdvanceTuple(&tuple, n));
  return result;
}

Rational TupleSpaceSize(int n, int k) {
  return Rational(BigInt::Pow(BigInt(n), static_cast<uint32_t>(k)), BigInt(1));
}

// Answers atom queries from an explicit map; used by the Proposition 3.1
// algorithm, where only the atoms of ψ(ā) matter.
class LocalOracle : public AtomOracle {
 public:
  LocalOracle(const Vocabulary& vocabulary, int universe_size)
      : vocabulary_(vocabulary), universe_size_(universe_size) {}

  void Set(const GroundAtom& atom, bool value) { values_[atom] = value; }

  const Vocabulary& vocabulary() const override { return vocabulary_; }
  int universe_size() const override { return universe_size_; }
  bool AtomTrue(int relation_id, const Tuple& tuple) const override {
    auto it = values_.find(GroundAtom{relation_id, tuple});
    QREL_CHECK_MSG(it != values_.end(),
                   "LocalOracle queried for an unregistered atom");
    return it->second;
  }

 private:
  const Vocabulary& vocabulary_;
  int universe_size_;
  std::unordered_map<GroundAtom, bool, GroundAtomHash> values_;
};

// Collects the ground atoms of the quantifier-free ψ(ā), where `formula`'s
// free variables take the values given by `free_index` + `assignment`.
void CollectGroundAtoms(
    const Formula& formula,
    const std::unordered_map<std::string, size_t>& free_index,
    const Tuple& assignment, const Vocabulary& vocabulary,
    std::vector<GroundAtom>* atoms) {
  if (formula.kind == FormulaKind::kAtom) {
    GroundAtom atom;
    std::optional<int> relation = vocabulary.FindRelation(formula.relation);
    QREL_CHECK(relation.has_value());
    atom.relation = *relation;
    for (const Term& term : formula.args) {
      if (term.is_variable()) {
        atom.args.push_back(assignment[free_index.at(term.variable)]);
      } else {
        atom.args.push_back(term.constant);
      }
    }
    // Deduplicate.
    for (const GroundAtom& existing : *atoms) {
      if (existing == atom) {
        return;
      }
    }
    atoms->push_back(std::move(atom));
    return;
  }
  for (const FormulaPtr& child : formula.children) {
    CollectGroundAtoms(*child, free_index, assignment, vocabulary, atoms);
  }
}

}  // namespace

StatusOr<ReliabilityReport> ExactReliability(const FormulaPtr& query,
                                             const UnreliableDatabase& db,
                                             RunContext* ctx) {
  StatusOr<CompiledQuery> compiled =
      CompiledQuery::Compile(query, db.vocabulary());
  if (!compiled.ok()) {
    return compiled.status();
  }
  if (db.UncertainEntries().size() > 62) {
    return Status::OutOfRange(
        "exact reliability would enumerate more than 2^62 worlds");
  }
  int n = db.universe_size();
  int k = compiled->arity();
  std::vector<Tuple> tuples = AllTuples(n, k);

  // ψ^𝔄 on the observed database, fixed once.
  std::vector<uint8_t> observed_truth(tuples.size(), 0);
  for (size_t i = 0; i < tuples.size(); ++i) {
    observed_truth[i] = compiled->Eval(db.observed(), tuples[i]) ? 1 : 0;
  }

  ReliabilityReport report;
  report.arity = k;

  Fingerprint fingerprint;
  fingerprint.Mix("core.exact")
      .Mix(static_cast<uint64_t>(n))
      .Mix(static_cast<uint64_t>(k))
      .Mix(static_cast<uint64_t>(db.UncertainEntries().size()))
      .Mix(query->ToString())
      .Mix(db.ContentFingerprint());
  CheckpointScope checkpoint(ctx, "core.exact.v1", fingerprint.value());

  uint64_t code = 0;  // index of the next world to visit
  {
    std::optional<SnapshotReader> resume;
    QREL_RETURN_IF_ERROR(checkpoint.TakeResume(&resume));
    if (resume.has_value()) {
      QREL_RETURN_IF_ERROR(resume->U64(&code));
      QREL_RETURN_IF_ERROR(resume->RationalVal(&report.expected_error));
      QREL_RETURN_IF_ERROR(resume->U64(&report.work_units));
      QREL_RETURN_IF_ERROR(resume->ExpectEnd());
    }
  }

  Status budget = Status::Ok();
  db.ForEachWorldWhile(
      [&](const World& world, const Rational& probability) {
        // Checkpoint before charging so the resumed run re-charges this
        // world and the work counter continues without a gap.
        budget = checkpoint.MaybeCheckpoint([&](SnapshotWriter& w) {
          w.U64(code);
          w.RationalVal(report.expected_error);
          w.U64(report.work_units);
        });
        if (budget.ok()) {
          budget = ChargeWork(ctx);
        }
        if (budget.ok()) {
          budget = QREL_FAULT_HIT("core.exact.world");
        }
        if (!budget.ok()) {
          return false;
        }
        ++report.work_units;
        ++code;
        if (probability.IsZero()) {
          return true;
        }
        WorldView view(db, world);
        int differing = 0;
        for (size_t i = 0; i < tuples.size(); ++i) {
          bool actual = compiled->Eval(view, tuples[i]);
          if (actual != (observed_truth[i] != 0)) {
            ++differing;
          }
        }
        if (differing > 0) {
          report.expected_error += probability * Rational(differing);
        }
        return true;
      },
      code);
  QREL_RETURN_IF_ERROR(budget);
  report.reliability =
      Rational(1) - report.expected_error / TupleSpaceSize(n, k);
  return report;
}

StatusOr<Rational> ExactQueryProbability(const FormulaPtr& query,
                                         const UnreliableDatabase& db,
                                         const Tuple& assignment) {
  StatusOr<CompiledQuery> compiled =
      CompiledQuery::Compile(query, db.vocabulary());
  if (!compiled.ok()) {
    return compiled.status();
  }
  if (static_cast<int>(assignment.size()) != compiled->arity()) {
    return Status::InvalidArgument("assignment arity mismatch");
  }
  if (db.UncertainEntries().size() > 62) {
    return Status::OutOfRange(
        "exact probability would enumerate more than 2^62 worlds");
  }
  Rational probability;
  db.ForEachWorld([&](const World& world, const Rational& world_probability) {
    if (world_probability.IsZero()) {
      return;
    }
    WorldView view(db, world);
    if (compiled->Eval(view, assignment)) {
      probability += world_probability;
    }
  });
  return probability;
}

StatusOr<ScaledProbability> ExactScaledProbability(
    const FormulaPtr& query, const UnreliableDatabase& db,
    const Tuple& assignment) {
  StatusOr<Rational> probability = ExactQueryProbability(query, db, assignment);
  if (!probability.ok()) {
    return probability.status();
  }
  ScaledProbability result;
  result.g = db.ComputeG();
  Rational scaled = *probability * Rational(result.g, BigInt(1));
  QREL_CHECK_MSG(scaled.denominator().IsOne(),
                 "g does not scale the probability to an integer");
  result.g_times_probability = scaled.numerator();
  return result;
}

StatusOr<ReliabilityReport> QuantifierFreeReliability(
    const FormulaPtr& query, const UnreliableDatabase& db, RunContext* ctx) {
  if (!IsQuantifierFree(query)) {
    return Status::InvalidArgument(
        "QuantifierFreeReliability requires a quantifier-free query");
  }
  StatusOr<CompiledQuery> compiled =
      CompiledQuery::Compile(query, db.vocabulary());
  if (!compiled.ok()) {
    return compiled.status();
  }
  int n = db.universe_size();
  int k = compiled->arity();

  std::unordered_map<std::string, size_t> free_index;
  for (size_t i = 0; i < compiled->free_variables().size(); ++i) {
    free_index.emplace(compiled->free_variables()[i], i);
  }

  ReliabilityReport report;
  report.arity = k;

  Tuple assignment(static_cast<size_t>(k), 0);
  do {
    QREL_FAULT_SITE("core.quantifier_free.tuple");
    // The ground atoms of ψ(ā); their number is bounded by the number of
    // atom subformulas of ψ, independent of the database.
    std::vector<GroundAtom> atoms;
    CollectGroundAtoms(*query, free_index, assignment, db.vocabulary(),
                       &atoms);

    LocalOracle oracle(db.vocabulary(), n);
    std::vector<int> uncertain;  // indices into `atoms`
    std::vector<Rational> nu_true;
    for (size_t i = 0; i < atoms.size(); ++i) {
      int entry = -1;
      switch (db.StatusOf(atoms[i], &entry)) {
        case UnreliableDatabase::AtomStatus::kCertainTrue:
          oracle.Set(atoms[i], true);
          break;
        case UnreliableDatabase::AtomStatus::kCertainFalse:
          oracle.Set(atoms[i], false);
          break;
        case UnreliableDatabase::AtomStatus::kUncertain:
          uncertain.push_back(static_cast<int>(i));
          nu_true.push_back(db.EntryNuTrue(entry));
          break;
      }
    }
    QREL_CHECK_LE(uncertain.size(), 62u);

    bool observed = compiled->Eval(db.observed(), assignment);
    Rational h_tuple;
    uint64_t combinations = uint64_t{1} << uncertain.size();
    QREL_RETURN_IF_ERROR(ChargeWork(ctx, combinations));
    report.work_units += combinations;
    if (!uncertain.empty()) {
      for (uint64_t code = 0; code < combinations; ++code) {
        Rational probability = Rational::One();
        for (size_t i = 0; i < uncertain.size(); ++i) {
          bool value = (code >> i) & 1u;
          oracle.Set(atoms[static_cast<size_t>(uncertain[i])], value);
          probability *= value ? nu_true[i] : nu_true[i].Complement();
        }
        if (probability.IsZero()) {
          continue;
        }
        if (compiled->Eval(oracle, assignment) != observed) {
          h_tuple += probability;
        }
      }
    }
    report.expected_error += h_tuple;
  } while (AdvanceTuple(&assignment, n));

  report.reliability =
      Rational(1) - report.expected_error / TupleSpaceSize(n, k);
  return report;
}

StatusOr<ReliabilityReport> ExactSecondOrderReliability(
    const CompiledSecondOrder& query, const UnreliableDatabase& db,
    bool pi11) {
  if (db.UncertainEntries().size() > 62) {
    return Status::OutOfRange(
        "exact reliability would enumerate more than 2^62 worlds");
  }
  auto eval = [&](const AtomOracle& oracle) {
    return pi11 ? query.EvalPi11(oracle) : query.EvalSigma11(oracle);
  };
  // The first evaluation surfaces guess-space feasibility errors before
  // the world loop commits to them.
  StatusOr<bool> observed = eval(db.observed());
  if (!observed.ok()) {
    return observed.status();
  }

  ReliabilityReport report;
  report.arity = 0;
  db.ForEachWorld([&](const World& world, const Rational& probability) {
    ++report.work_units;
    if (probability.IsZero()) {
      return;
    }
    WorldView view(db, world);
    StatusOr<bool> actual = eval(view);
    QREL_CHECK(actual.ok());  // feasibility was established above
    if (*actual != *observed) {
      report.expected_error += probability;
    }
  });
  report.reliability = Rational(1) - report.expected_error;
  return report;
}

StatusOr<std::vector<TupleError>> PerTupleExpectedError(
    const FormulaPtr& query, const UnreliableDatabase& db) {
  StatusOr<CompiledQuery> compiled =
      CompiledQuery::Compile(query, db.vocabulary());
  if (!compiled.ok()) {
    return compiled.status();
  }
  int n = db.universe_size();
  int k = compiled->arity();
  std::vector<Tuple> tuples = AllTuples(n, k);

  std::vector<TupleError> result(tuples.size());
  for (size_t i = 0; i < tuples.size(); ++i) {
    result[i].tuple = tuples[i];
    result[i].observed = compiled->Eval(db.observed(), tuples[i]);
  }

  if (IsQuantifierFree(query)) {
    // Per-tuple errors are exactly what the Prop. 3.1 inner loop computes;
    // run it through ExactQueryProbability-style local enumeration by
    // instantiating the free variables and reusing the quantifier-free
    // machinery on each Boolean instance.
    for (size_t i = 0; i < tuples.size(); ++i) {
      FormulaPtr instance = query;
      const std::vector<std::string>& names = compiled->free_variables();
      for (size_t v = 0; v < names.size(); ++v) {
        instance = SubstituteConstant(instance, names[v], tuples[i][v]);
      }
      StatusOr<ReliabilityReport> report =
          QuantifierFreeReliability(instance, db);
      if (!report.ok()) {
        return report.status();
      }
      result[i].error = report->expected_error;
    }
    return result;
  }

  if (db.UncertainEntries().size() > 62) {
    return Status::OutOfRange(
        "per-tuple errors would enumerate more than 2^62 worlds");
  }
  db.ForEachWorld([&](const World& world, const Rational& probability) {
    if (probability.IsZero()) {
      return;
    }
    WorldView view(db, world);
    for (size_t i = 0; i < tuples.size(); ++i) {
      if (compiled->Eval(view, tuples[i]) != result[i].observed) {
        result[i].error += probability;
      }
    }
  });
  return result;
}

}  // namespace qrel
