// Exact query reliability: Definition 2.2, Proposition 3.1, Theorem 4.2.
//
// For a k-ary query ψ on an unreliable database 𝔇 = (𝔄, μ) over a universe
// of size n:
//
//   H_ψ(𝔇) = E[ |ψ^𝔄 Δ ψ^𝔅| ]   (expected Hamming error)
//   R_ψ(𝔇) = 1 − H_ψ(𝔇)/n^k     (reliability / fault tolerance)
//
// ExactReliability enumerates the 2^u possible worlds (u = number of
// uncertain atoms) and is the FP^#P-style exact algorithm of Theorem 4.2 —
// the #P oracle is realized by exact big-rational enumeration, and the
// report includes the scaling integer g together with the integer
// g·Pr[𝔅 ⊨ ψ(ā)] values whose integrality the theorem asserts.
//
// QuantifierFreeReliability is de Rougemont's polynomial-time algorithm
// (Proposition 3.1): for each tuple ā, only the ground atoms occurring in
// ψ(ā) matter — a constant number — so summing over their 2^{n(ψ)} local
// truth assignments is polynomial in n for fixed ψ.

#ifndef QREL_CORE_RELIABILITY_H_
#define QREL_CORE_RELIABILITY_H_

#include <vector>

#include "qrel/logic/ast.h"
#include "qrel/logic/eval.h"
#include "qrel/logic/second_order.h"
#include "qrel/prob/unreliable_database.h"
#include "qrel/util/rational.h"
#include "qrel/util/run_context.h"
#include "qrel/util/status.h"

namespace qrel {

struct ReliabilityReport {
  int arity = 0;
  Rational expected_error;  // H_ψ(𝔇)
  Rational reliability;     // R_ψ(𝔇) = 1 − H_ψ/n^k
  // Number of worlds enumerated (exact enumeration) or of local atom
  // assignments summed (quantifier-free algorithm).
  uint64_t work_units = 0;
};

// Exact H_ψ and R_ψ by possible-world enumeration (Theorem 4.2). Works for
// every first-order query; cost Θ(2^u · n^k) query evaluations with
// u = |UncertainEntries()|. Fails if u > 62. `ctx` (nullable) is charged
// one work unit per enumerated world; a tripped envelope stops the
// enumeration with the budget status.
StatusOr<ReliabilityReport> ExactReliability(const FormulaPtr& query,
                                             const UnreliableDatabase& db,
                                             RunContext* ctx = nullptr);

// Exact Pr[𝔅 ⊨ ψ(ā)] for a Boolean instantiation of a query, by world
// enumeration.
StatusOr<Rational> ExactQueryProbability(const FormulaPtr& query,
                                         const UnreliableDatabase& db,
                                         const Tuple& assignment);

// Theorem 4.2 artifacts: the scaling integer g (product of ν-denominators)
// and the exact integer g·Pr[𝔅 ⊨ ψ], certifying that the probability is a
// ratio of polynomial-size integers.
struct ScaledProbability {
  BigInt g;
  BigInt g_times_probability;
};
StatusOr<ScaledProbability> ExactScaledProbability(const FormulaPtr& query,
                                                   const UnreliableDatabase& db,
                                                   const Tuple& assignment);

// Proposition 3.1: polynomial-time exact reliability for quantifier-free
// queries. Fails with InvalidArgument if `query` has quantifiers. `ctx`
// (nullable) is charged one work unit per local atom assignment summed.
StatusOr<ReliabilityReport> QuantifierFreeReliability(
    const FormulaPtr& query, const UnreliableDatabase& db,
    RunContext* ctx = nullptr);

// Per-tuple breakdown of the expected error: H_ψ(ā) = Pr[ψ(ā) wrong] for
// every tuple ā (lexicographic order), exactly. The linearity of
// expectation behind Prop. 3.1 / Thm. 4.2 makes H_ψ their sum. Uses the
// polynomial local-atom algorithm for quantifier-free queries and world
// enumeration otherwise (same feasibility limits as ExactReliability).
struct TupleError {
  Tuple tuple;
  bool observed = false;     // ā ∈ ψ^𝔄
  Rational error;            // H_ψ(ā)
};
StatusOr<std::vector<TupleError>> PerTupleExpectedError(
    const FormulaPtr& query, const UnreliableDatabase& db);

// Theorem 4.2 at full strength: exact reliability of a second-order
// Boolean query — Σ¹₁ (default) or Π¹₁ (`pi11` = true) — by world
// enumeration. Each world evaluation itself enumerates the relation-
// variable contents, so both the world space (≤ 2^62) and the per-world
// guess space (≤ 2^24 bits, checked by the evaluator) must be small.
StatusOr<ReliabilityReport> ExactSecondOrderReliability(
    const CompiledSecondOrder& query, const UnreliableDatabase& db,
    bool pi11 = false);

}  // namespace qrel

#endif  // QREL_CORE_RELIABILITY_H_
