// Randomized approximation of query probabilities and reliabilities:
// Theorem 5.4, Corollary 5.5 and Theorem 5.12.
//
//  * ExistentialProbabilityFptras — an FPTRAS (relative error ε, failure
//    probability δ) for ν(ψ) = Pr[𝔅 ⊨ ψ], existential Boolean ψ: ground to
//    kDNF (Theorem 5.4) and run Karp-Luby.
//  * ReliabilityAbsoluteApprox — |R̂ − R_ψ| ≤ ε with probability ≥ 1−δ for
//    existential and universal queries of any arity (Corollary 5.5);
//    k-ary queries split the budget into (ε/n^k, δ/n^k) per tuple.
//  * PaddedReliabilityApprox — the same absolute-error guarantee for every
//    polynomial-time evaluable query (Theorem 5.12), via the padded query
//    ψ' = (ψ ∨ Rc) ∧ Rd with fresh ξ-probability atoms Rc, Rd, which pins
//    p = E[X] into [ξ², ξ] so the Karp-Luby zero-one lemma (Lemma 5.11)
//    applies with t = ⌈9/(2ξ(ε/2)²) · ln(1/δ)⌉ samples.

#ifndef QREL_CORE_APPROX_H_
#define QREL_CORE_APPROX_H_

#include <cstdint>
#include <optional>
#include <string>

#include "qrel/logic/ast.h"
#include "qrel/prob/unreliable_database.h"
#include "qrel/util/run_context.h"
#include "qrel/util/status.h"

namespace qrel {

struct ApproxOptions {
  // Error targets: relative for the FPTRAS, absolute for the reliability
  // approximators. Must lie in (0, 1).
  double epsilon = 0.05;
  double delta = 0.05;
  uint64_t seed = 1;

  // Theorem 5.12's ξ ∈ (0, 1/2); chosen before seeing 𝔇, ε or δ. The
  // sample count scales as 1/ξ, but the footnote fixes it a priori — the
  // default 1/4 matches the usual instantiation.
  double xi = 0.25;

  // Overrides the derived sample counts when set (for equal-budget
  // benchmark comparisons). Applies per Boolean sub-estimate.
  std::optional<uint64_t> fixed_samples;

  // Execution envelope (non-owning, nullable): sampling loops charge one
  // work unit per sample, grounding charges per assignment/clause. A
  // tripped envelope aborts the computation with the budget status.
  RunContext* run_context = nullptr;

  // For single-estimate paths (Boolean queries): when the envelope trips
  // mid-sampling with at least one sample drawn, return the running
  // estimate marked `truncated` instead of failing. Never applies to
  // cancellation, and never to multi-tuple loops (a partially covered
  // tuple space is not a usable estimate).
  bool allow_truncation = false;
};

struct ApproxResult {
  double estimate = 0.0;
  // Total samples drawn across all Boolean sub-estimates.
  uint64_t samples = 0;
  // Human-readable description of the algorithm that ran.
  std::string method;
  // Set when the drawn sample count delivers a weaker guarantee than the
  // requested `epsilon` (fixed_samples below the theorem-derived bound, or
  // a truncated run): the error actually guaranteed at the requested
  // delta, in the same units as the request (relative for the FPTRAS,
  // absolute on R for the reliability approximators).
  std::optional<double> achieved_epsilon;
  // The sampling loop stopped early on a tripped budget (see
  // ApproxOptions::allow_truncation).
  bool truncated = false;
};

// FPTRAS for ν(ψ(ā)) where ψ is existential (Theorem 5.4): relative error
// ε with probability ≥ 1-δ. `assignment` instantiates the free variables
// (empty for sentences). Fails if ψ is not existential.
StatusOr<ApproxResult> ExistentialProbabilityFptras(
    const FormulaPtr& query, const UnreliableDatabase& db,
    const Tuple& assignment, const ApproxOptions& options);

// Absolute-error approximation of R_ψ for existential or universal ψ of
// any arity (Corollary 5.5). Fails if ψ is neither.
StatusOr<ApproxResult> ReliabilityAbsoluteApprox(const FormulaPtr& query,
                                                 const UnreliableDatabase& db,
                                                 const ApproxOptions& options);

// Absolute-error approximation of R_ψ for any first-order ψ
// (Theorem 5.12). The estimator never grounds the query; it samples worlds
// and evaluates ψ directly, so it applies to every polynomial-time
// evaluable query.
StatusOr<ApproxResult> PaddedReliabilityApprox(const FormulaPtr& query,
                                               const UnreliableDatabase& db,
                                               const ApproxOptions& options);

// Theorem 5.12's sample bound t(ξ, ε, δ) = ⌈9/(2 ξ ε²) ln(1/δ)⌉ (the ε
// here is the one handed to Lemma 5.11, i.e. half the user's ε).
uint64_t PaddedSampleBound(double xi, double epsilon, double delta);

// Inverts the sample bound: the per-estimate absolute error actually
// guaranteed (at failure probability δ) by `samples` padded samples — the
// error bar of a truncated or fixed-budget run. Includes the ×2 from the
// proof's final step, so it is directly comparable to the user's ε.
double PaddedAchievedEpsilon(double xi, uint64_t samples, double delta);

}  // namespace qrel

#endif  // QREL_CORE_APPROX_H_
