// The absolute reliability problem AR_ψ (Definition 5.6): given 𝔇, decide
// whether R_ψ(𝔇) = 1, i.e. whether the query answer is correct in *every*
// world with positive probability.
//
//  * Lemma 5.7: for quantifier-free ψ, AR_ψ ∈ P — decided here through the
//    Proposition 3.1 polynomial algorithm (H_ψ = 0 exactly).
//  * Lemma 5.8: for polynomial-time evaluable ψ, AR_ψ ∈ co-NP — the
//    certificate is a world 𝔅 with ψ^𝔅 ≠ ψ^𝔄. AbsoluteReliabilityByWitness
//    realizes the certificate check by exhaustive witness search
//    (exponential in the number of uncertain atoms, as expected for a
//    co-NP-hard problem — Lemma 5.9).

#ifndef QREL_CORE_ABSOLUTE_H_
#define QREL_CORE_ABSOLUTE_H_

#include <optional>

#include "qrel/logic/ast.h"
#include "qrel/prob/unreliable_database.h"
#include "qrel/util/run_context.h"
#include "qrel/util/status.h"

namespace qrel {

struct AbsoluteReliabilityResult {
  bool absolutely_reliable = false;
  // A counterexample world (if not absolutely reliable): some tuple's
  // answer differs between the observed database and this world.
  std::optional<World> witness;
  uint64_t worlds_checked = 0;
};

// Lemma 5.7: polynomial-time decision for quantifier-free queries (no
// witness is produced). Fails if the query has quantifiers.
StatusOr<bool> AbsolutelyReliableQuantifierFree(const FormulaPtr& query,
                                                const UnreliableDatabase& db);

// Lemma 5.8 certificate search for any first-order query: enumerates
// positive-probability worlds until one changes the answer set. Fails if
// there are more than 62 uncertain atoms.
StatusOr<AbsoluteReliabilityResult> AbsoluteReliabilityByWitness(
    const FormulaPtr& query, const UnreliableDatabase& db);

// Randomized falsifier: samples `samples` worlds from ν looking for a
// certificate. Finding one *refutes* absolute reliability; not finding one
// is inconclusive (by Lemma 5.10, no efficient two-sided procedure is
// expected unless NP ⊆ BPP) — `absolutely_reliable` then only reports
// that no counterexample was seen. Unlike the exhaustive search this runs
// on databases with arbitrarily many uncertain atoms. A non-null `ctx`
// governs the sample loop (one work unit per world) and carries the
// crash-safe checkpoint policy (util/snapshot.h).
StatusOr<AbsoluteReliabilityResult> AbsoluteReliabilityMonteCarlo(
    const FormulaPtr& query, const UnreliableDatabase& db, uint64_t samples,
    uint64_t seed, RunContext* ctx = nullptr);

}  // namespace qrel

#endif  // QREL_CORE_ABSOLUTE_H_
