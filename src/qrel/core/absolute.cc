#include "qrel/core/absolute.h"

#include "qrel/core/reliability.h"
#include "qrel/logic/classify.h"
#include "qrel/logic/eval.h"
#include "qrel/util/check.h"
#include "qrel/util/snapshot.h"

namespace qrel {

StatusOr<bool> AbsolutelyReliableQuantifierFree(const FormulaPtr& query,
                                                const UnreliableDatabase& db) {
  StatusOr<ReliabilityReport> report = QuantifierFreeReliability(query, db);
  if (!report.ok()) {
    return report.status();
  }
  return report->expected_error.IsZero();
}

StatusOr<AbsoluteReliabilityResult> AbsoluteReliabilityByWitness(
    const FormulaPtr& query, const UnreliableDatabase& db) {
  StatusOr<CompiledQuery> compiled =
      CompiledQuery::Compile(query, db.vocabulary());
  if (!compiled.ok()) {
    return compiled.status();
  }
  const std::vector<int>& uncertain = db.UncertainEntries();
  if (uncertain.size() > 62) {
    return Status::OutOfRange(
        "witness search over more than 2^62 worlds");
  }

  int n = db.universe_size();
  int k = compiled->arity();

  // ψ^𝔄 once.
  std::vector<Tuple> tuples;
  std::vector<uint8_t> observed_truth;
  {
    Tuple assignment(static_cast<size_t>(k), 0);
    do {
      tuples.push_back(assignment);
      observed_truth.push_back(
          compiled->Eval(db.observed(), assignment) ? 1 : 0);
    } while (AdvanceTuple(&assignment, n));
  }

  AbsoluteReliabilityResult result;
  World world(db.model().entry_count());
  for (int id : db.model().CertainFlipEntries()) {
    world.SetFlipped(id, true);
  }

  uint64_t world_count = uint64_t{1} << uncertain.size();
  for (uint64_t code = 0; code < world_count; ++code) {
    for (size_t i = 0; i < uncertain.size(); ++i) {
      world.SetFlipped(uncertain[i], (code >> i) & 1u);
    }
    ++result.worlds_checked;
    WorldView view(db, world);
    for (size_t i = 0; i < tuples.size(); ++i) {
      if (compiled->Eval(view, tuples[i]) != (observed_truth[i] != 0)) {
        result.absolutely_reliable = false;
        result.witness = world;
        return result;
      }
    }
  }
  result.absolutely_reliable = true;
  return result;
}

StatusOr<AbsoluteReliabilityResult> AbsoluteReliabilityMonteCarlo(
    const FormulaPtr& query, const UnreliableDatabase& db, uint64_t samples,
    uint64_t seed, RunContext* ctx) {
  if (samples == 0) {
    return Status::InvalidArgument("sample count must be positive");
  }
  StatusOr<CompiledQuery> compiled =
      CompiledQuery::Compile(query, db.vocabulary());
  if (!compiled.ok()) {
    return compiled.status();
  }
  int n = db.universe_size();
  int k = compiled->arity();

  std::vector<Tuple> tuples;
  std::vector<uint8_t> observed_truth;
  {
    Tuple assignment(static_cast<size_t>(k), 0);
    do {
      tuples.push_back(assignment);
      observed_truth.push_back(
          compiled->Eval(db.observed(), assignment) ? 1 : 0);
    } while (AdvanceTuple(&assignment, n));
  }

  Fingerprint fingerprint;
  fingerprint.Mix("core.absolute_mc")
      .Mix(seed)
      .Mix(samples)
      .Mix(static_cast<uint64_t>(n))
      .Mix(static_cast<uint64_t>(k))
      .Mix(static_cast<uint64_t>(db.model().entry_count()))
      .Mix(query->ToString())
      .Mix(db.ContentFingerprint());
  CheckpointScope checkpoint(ctx, "core.absolute_mc.v1", fingerprint.value());

  Rng rng(seed);
  AbsoluteReliabilityResult result;
  uint64_t start = 0;
  {
    std::optional<SnapshotReader> resume;
    QREL_RETURN_IF_ERROR(checkpoint.TakeResume(&resume));
    if (resume.has_value()) {
      QREL_RETURN_IF_ERROR(resume->U64(&start));
      QREL_RETURN_IF_ERROR(resume->U64(&result.worlds_checked));
      QREL_RETURN_IF_ERROR(resume->RngState(&rng));
      QREL_RETURN_IF_ERROR(resume->ExpectEnd());
    }
  }
  for (uint64_t s = start; s < samples; ++s) {
    QREL_RETURN_IF_ERROR(checkpoint.MaybeCheckpoint([&](SnapshotWriter& w) {
      w.U64(s);
      w.U64(result.worlds_checked);
      w.RngState(rng);
    }));
    QREL_RETURN_IF_ERROR(ChargeWork(ctx));
    World world = db.SampleWorld(&rng);
    ++result.worlds_checked;
    WorldView view(db, world);
    for (size_t i = 0; i < tuples.size(); ++i) {
      if (compiled->Eval(view, tuples[i]) != (observed_truth[i] != 0)) {
        result.absolutely_reliable = false;
        result.witness = std::move(world);
        return result;
      }
    }
  }
  // No counterexample sampled; inconclusive but reported as "reliable so
  // far" (see the header comment and Lemma 5.10).
  result.absolutely_reliable = true;
  return result;
}

}  // namespace qrel
