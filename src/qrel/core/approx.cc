#include "qrel/core/approx.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "qrel/logic/classify.h"
#include "qrel/logic/eval.h"
#include "qrel/logic/grounding.h"
#include "qrel/logic/normal_form.h"
#include "qrel/propositional/dnf.h"
#include "qrel/propositional/karp_luby.h"
#include "qrel/util/check.h"
#include "qrel/util/fault_injection.h"
#include "qrel/util/snapshot.h"

namespace qrel {

namespace {

Status ValidateCommonOptions(const ApproxOptions& options) {
  if (options.epsilon <= 0.0 || options.epsilon >= 1.0 ||
      options.delta <= 0.0 || options.delta >= 1.0) {
    return Status::InvalidArgument("epsilon and delta must lie in (0, 1)");
  }
  return Status::Ok();
}

// Number of tuples n^k, with an overflow/feasibility guard.
StatusOr<uint64_t> TupleCount(int n, int k) {
  uint64_t count = 1;
  for (int i = 0; i < k; ++i) {
    count *= static_cast<uint64_t>(n);
    if (count > (uint64_t{1} << 22)) {
      return Status::OutOfRange(
          "query arity times universe size yields too many tuples");
    }
  }
  return count;
}

// One FPTRAS estimate of ν(ψ(ā)) from an already-computed prenex form.
StatusOr<ApproxResult> FptrasFromPrenex(const PrenexExistential& prenex,
                                        const UnreliableDatabase& db,
                                        const Tuple& assignment,
                                        const ApproxOptions& options) {
  StatusOr<GroundDnf> ground = GroundExistential(
      prenex, db, assignment, size_t{1} << 22, options.run_context);
  if (!ground.ok()) {
    return ground.status();
  }
  ApproxResult result;
  if (ground->certainly_true) {
    result.estimate = 1.0;
    result.method = "Thm 5.4 grounding: certainly true";
    return result;
  }
  if (ground->terms.empty()) {
    result.estimate = 0.0;
    result.method = "Thm 5.4 grounding: certainly false";
    return result;
  }

  int entries = db.model().entry_count();
  Dnf dnf(entries);
  for (const std::vector<GroundLiteral>& term : ground->terms) {
    std::vector<PropLiteral> literals;
    literals.reserve(term.size());
    for (const GroundLiteral& literal : term) {
      literals.push_back({literal.entry, literal.positive});
    }
    dnf.AddTerm(std::move(literals));
  }
  // Subsumption pruning shrinks m and with it the Karp-Luby sample bound,
  // without changing Pr[ψ''].
  dnf.RemoveSubsumedTerms();
  std::vector<Rational> prob_true;
  prob_true.reserve(static_cast<size_t>(entries));
  for (int e = 0; e < entries; ++e) {
    prob_true.push_back(db.EntryNuTrue(e));
  }

  KarpLubyOptions kl;
  kl.epsilon = options.epsilon;
  kl.delta = options.delta;
  kl.seed = options.seed;
  kl.fixed_samples = options.fixed_samples;
  kl.run_context = options.run_context;
  kl.allow_truncation = options.allow_truncation;
  StatusOr<KarpLubyResult> estimate = KarpLubyProbability(dnf, prob_true, kl);
  if (!estimate.ok()) {
    return estimate.status();
  }
  result.estimate = estimate->estimate;
  result.samples = estimate->samples;
  result.truncated = estimate->truncated;
  if (estimate->samples > 0 &&
      estimate->samples < KarpLubySampleBound(dnf.term_count(),
                                              options.epsilon,
                                              options.delta)) {
    result.achieved_epsilon = KarpLubyAchievedEpsilon(
        dnf.term_count(), estimate->samples, options.delta);
  }
  result.method = "Thm 5.4 grounding (" + std::to_string(dnf.term_count()) +
                  " terms, width " + std::to_string(dnf.Width()) +
                  ") + Karp-Luby";
  return result;
}

}  // namespace

uint64_t PaddedSampleBound(double xi, double epsilon, double delta) {
  double t = 9.0 / (2.0 * xi * epsilon * epsilon) * std::log(1.0 / delta);
  QREL_CHECK(std::isfinite(t));
  return static_cast<uint64_t>(std::ceil(t));
}

double PaddedAchievedEpsilon(double xi, uint64_t samples, double delta) {
  QREL_CHECK(samples > 0);
  // Solve t = 9/(2ξε²)·ln(1/δ) for ε, then double it to undo the proof's
  // ε/2 instantiation of Lemma 5.11.
  return 2.0 * std::sqrt(9.0 * std::log(1.0 / delta) /
                         (2.0 * xi * static_cast<double>(samples)));
}

StatusOr<ApproxResult> ExistentialProbabilityFptras(
    const FormulaPtr& query, const UnreliableDatabase& db,
    const Tuple& assignment, const ApproxOptions& options) {
  QREL_RETURN_IF_ERROR(ValidateCommonOptions(options));
  StatusOr<PrenexExistential> prenex = ToPrenexExistential(query);
  if (!prenex.ok()) {
    return prenex.status();
  }
  if (assignment.size() != prenex->free_variables.size()) {
    return Status::InvalidArgument("assignment arity mismatch");
  }
  return FptrasFromPrenex(*prenex, db, assignment, options);
}

StatusOr<ApproxResult> ReliabilityAbsoluteApprox(
    const FormulaPtr& query, const UnreliableDatabase& db,
    const ApproxOptions& options) {
  QREL_RETURN_IF_ERROR(ValidateCommonOptions(options));

  // Work with an existential formula: ψ itself, or ¬ψ for universal ψ.
  bool universal = false;
  FormulaPtr target = query;
  if (!IsExistential(query)) {
    if (!IsUniversal(query)) {
      return Status::InvalidArgument(
          "Corollary 5.5 applies to existential or universal queries only; "
          "use PaddedReliabilityApprox for general queries");
    }
    universal = true;
    target = Not(query);
  }
  StatusOr<PrenexExistential> prenex = ToPrenexExistential(target);
  if (!prenex.ok()) {
    return prenex.status();
  }

  StatusOr<CompiledQuery> compiled =
      CompiledQuery::Compile(query, db.vocabulary());
  if (!compiled.ok()) {
    return compiled.status();
  }
  int n = db.universe_size();
  int k = compiled->arity();
  StatusOr<uint64_t> tuple_count = TupleCount(n, k);
  if (!tuple_count.ok()) {
    return tuple_count.status();
  }

  // Per-tuple budgets from the proof of Corollary 5.5: error ε/n^k with
  // failure probability δ/n^k for each of the n^k Boolean estimates.
  ApproxOptions per_tuple = options;
  per_tuple.epsilon = options.epsilon / static_cast<double>(*tuple_count);
  per_tuple.delta = options.delta / static_cast<double>(*tuple_count);
  if (per_tuple.epsilon >= 1.0) per_tuple.epsilon = 0.999;
  // A truncated sub-estimate is only usable when it is the whole answer;
  // with several tuples a partially covered tuple space is not.
  per_tuple.allow_truncation = options.allow_truncation && *tuple_count == 1;

  // Claimed before the tuple loop so the Karp-Luby scope inside
  // FptrasFromPrenex stays inert: checkpoint granularity is one finished
  // tuple, whose state (plus the seeder) determines everything after it.
  Fingerprint fingerprint;
  fingerprint.Mix("core.absolute_approx")
      .Mix(options.seed)
      .Mix(static_cast<uint64_t>(n))
      .Mix(static_cast<uint64_t>(k))
      .MixDouble(options.epsilon)
      .MixDouble(options.delta)
      .Mix(options.fixed_samples.value_or(0))
      .Mix(static_cast<uint64_t>(db.model().entry_count()))
      .Mix(query->ToString())
      .Mix(db.ContentFingerprint());
  // A Boolean query has exactly one tuple, so this loop carries no state
  // worth snapshotting; leaving the checkpointer unclaimed lets the
  // Karp-Luby sampling rung below claim it and checkpoint per sample —
  // that is where a long run spends its time, and the only place a drain
  // cancellation or SIGINT can flush usable progress. With more than one
  // tuple the per-tuple accumulators must own the snapshot.
  CheckpointScope checkpoint(*tuple_count > 1 ? options.run_context : nullptr,
                             "core.absolute_approx.v1", fingerprint.value());

  Rng seeder(options.seed);
  double expected_error = 0.0;
  uint64_t samples = 0;
  bool truncated = false;
  double worst_sub_epsilon = 0.0;  // worst per-tuple achieved (relative) ε
  Tuple assignment(static_cast<size_t>(k), 0);
  {
    std::optional<SnapshotReader> resume;
    QREL_RETURN_IF_ERROR(checkpoint.TakeResume(&resume));
    if (resume.has_value()) {
      Tuple saved;
      QREL_RETURN_IF_ERROR(resume->TupleVal(&saved));
      if (saved.size() != assignment.size()) {
        return Status::DataLoss("snapshot tuple arity mismatch");
      }
      for (Element element : saved) {
        if (element < 0 || element >= n) {
          return Status::DataLoss("snapshot tuple element out of range");
        }
      }
      QREL_RETURN_IF_ERROR(resume->Double(&expected_error));
      QREL_RETURN_IF_ERROR(resume->U64(&samples));
      uint8_t truncated_byte = 0;
      QREL_RETURN_IF_ERROR(resume->U8(&truncated_byte));
      truncated = truncated_byte != 0;
      QREL_RETURN_IF_ERROR(resume->Double(&worst_sub_epsilon));
      QREL_RETURN_IF_ERROR(resume->RngState(&seeder));
      QREL_RETURN_IF_ERROR(resume->ExpectEnd());
      assignment = std::move(saved);
    }
  }
  do {
    // Checkpoint before charging so the resumed run re-charges this tuple
    // and the work counter continues exactly.
    QREL_RETURN_IF_ERROR(checkpoint.MaybeCheckpoint([&](SnapshotWriter& w) {
      w.TupleVal(assignment);
      w.Double(expected_error);
      w.U64(samples);
      w.U8(truncated ? 1 : 0);
      w.Double(worst_sub_epsilon);
      w.RngState(seeder);
    }));
    QREL_RETURN_IF_ERROR(ChargeWork(options.run_context));
    QREL_FAULT_SITE("core.approx.tuple");
    per_tuple.seed = seeder.NextUint64();
    StatusOr<ApproxResult> nu =
        FptrasFromPrenex(*prenex, db, assignment, per_tuple);
    if (!nu.ok()) {
      return nu.status();
    }
    samples += nu->samples;
    truncated = truncated || nu->truncated;
    if (nu->achieved_epsilon.has_value()) {
      worst_sub_epsilon = std::max(worst_sub_epsilon, *nu->achieved_epsilon);
    }
    bool observed = compiled->Eval(db.observed(), assignment);
    // nu estimates Pr[target(ā)]; translate into Pr[ψ(ā) wrong].
    double prob_true =
        universal ? 1.0 - nu->estimate : nu->estimate;  // Pr[𝔅 ⊨ ψ(ā)]
    expected_error += observed ? 1.0 - prob_true : prob_true;
  } while (AdvanceTuple(&assignment, n));

  ApproxResult result;
  result.samples = samples;
  result.truncated = truncated;
  if (worst_sub_epsilon > 0.0) {
    // Invert the Corollary 5.5 budget split (ε' = ε/n^k per tuple): the
    // guarantee actually delivered on R is n^k times the worst per-tuple
    // achieved error.
    result.achieved_epsilon =
        worst_sub_epsilon * static_cast<double>(*tuple_count);
  }
  result.estimate =
      1.0 - expected_error / static_cast<double>(*tuple_count);
  result.estimate = std::clamp(result.estimate, 0.0, 1.0);
  result.method = universal
                      ? "Cor 5.5 (universal via FPTRAS on negation)"
                      : "Cor 5.5 (existential via Thm 5.4 FPTRAS)";
  return result;
}

StatusOr<ApproxResult> PaddedReliabilityApprox(const FormulaPtr& query,
                                               const UnreliableDatabase& db,
                                               const ApproxOptions& options) {
  QREL_RETURN_IF_ERROR(ValidateCommonOptions(options));
  if (options.xi <= 0.0 || options.xi >= 0.5) {
    return Status::InvalidArgument("xi must lie in (0, 1/2)");
  }
  StatusOr<CompiledQuery> compiled =
      CompiledQuery::Compile(query, db.vocabulary());
  if (!compiled.ok()) {
    return compiled.status();
  }
  int n = db.universe_size();
  int k = compiled->arity();
  StatusOr<uint64_t> tuple_count = TupleCount(n, k);
  if (!tuple_count.ok()) {
    return tuple_count.status();
  }

  double per_epsilon = options.epsilon / static_cast<double>(*tuple_count);
  double per_delta = options.delta / static_cast<double>(*tuple_count);
  // Lemma 5.11 is applied with ε/2 (the proof's final step).
  uint64_t per_samples =
      options.fixed_samples.has_value()
          ? *options.fixed_samples
          : PaddedSampleBound(options.xi, per_epsilon / 2.0, per_delta);

  Fingerprint fingerprint;
  fingerprint.Mix("core.padded")
      .Mix(options.seed)
      .Mix(static_cast<uint64_t>(n))
      .Mix(static_cast<uint64_t>(k))
      .MixDouble(options.xi)
      .Mix(per_samples)
      .Mix(static_cast<uint64_t>(db.model().entry_count()))
      .Mix(query->ToString())
      .Mix(db.ContentFingerprint());
  CheckpointScope checkpoint(options.run_context, "core.padded.v1",
                             fingerprint.value());

  const double xi = options.xi;
  Rng rng(options.seed);
  double expected_error = 0.0;
  uint64_t samples = 0;
  Tuple assignment(static_cast<size_t>(k), 0);
  // Mid-tuple resume state: the inner sample loop restarts at resume_s
  // with resume_hits already accumulated (both zero after the first tuple).
  uint64_t resume_s = 0;
  uint64_t resume_hits = 0;
  {
    std::optional<SnapshotReader> resume;
    QREL_RETURN_IF_ERROR(checkpoint.TakeResume(&resume));
    if (resume.has_value()) {
      Tuple saved;
      QREL_RETURN_IF_ERROR(resume->TupleVal(&saved));
      if (saved.size() != assignment.size()) {
        return Status::DataLoss("snapshot tuple arity mismatch");
      }
      for (Element element : saved) {
        if (element < 0 || element >= n) {
          return Status::DataLoss("snapshot tuple element out of range");
        }
      }
      QREL_RETURN_IF_ERROR(resume->U64(&resume_s));
      QREL_RETURN_IF_ERROR(resume->U64(&resume_hits));
      QREL_RETURN_IF_ERROR(resume->U64(&samples));
      QREL_RETURN_IF_ERROR(resume->Double(&expected_error));
      QREL_RETURN_IF_ERROR(resume->RngState(&rng));
      QREL_RETURN_IF_ERROR(resume->ExpectEnd());
      assignment = std::move(saved);
    }
  }
  do {
    bool observed = compiled->Eval(db.observed(), assignment);
    // X_i = ψ'(𝔅') with ψ' = (ψ ∨ Rc) ∧ Rd over the padded database: the
    // two fresh atoms Rc, Rd are virtual — each is an independent
    // Bernoulli(ξ) draw, since R is empty in 𝔄' and μ'(Rc) = μ'(Rd) = ξ.
    uint64_t hits = resume_hits;
    for (uint64_t s = resume_s; s < per_samples; ++s) {
      QREL_RETURN_IF_ERROR(checkpoint.MaybeCheckpoint([&](SnapshotWriter& w) {
        w.TupleVal(assignment);
        w.U64(s);
        w.U64(hits);
        w.U64(samples);
        w.Double(expected_error);
        w.RngState(rng);
      }));
      QREL_RETURN_IF_ERROR(ChargeWork(options.run_context));
      QREL_FAULT_SITE("core.approx.padded_sample");
      bool rd = rng.NextBernoulli(xi);
      if (!rd) {
        continue;  // ψ' is false whatever ψ evaluates to
      }
      bool rc = rng.NextBernoulli(xi);
      bool psi_true = rc;
      if (!psi_true) {
        World world = db.SampleWorld(&rng);
        WorldView view(db, world);
        psi_true = compiled->Eval(view, assignment);
      }
      if (psi_true) {
        ++hits;
      }
    }
    resume_s = 0;
    resume_hits = 0;
    samples += per_samples;
    double x_bar = static_cast<double>(hits) / static_cast<double>(per_samples);
    // Invert p = ν(ψ)·(ξ-ξ²) + ξ² (equation (3) in the proof).
    double nu = (x_bar - xi * xi) / (xi - xi * xi);
    nu = std::clamp(nu, 0.0, 1.0);
    expected_error += observed ? 1.0 - nu : nu;
  } while (AdvanceTuple(&assignment, n));

  ApproxResult result;
  result.samples = samples;
  if (per_samples > 0 &&
      per_samples <
          PaddedSampleBound(options.xi, per_epsilon / 2.0, per_delta)) {
    // fixed_samples below the theorem bound: report the guarantee the
    // budget actually buys, scaled back up through the per-tuple split.
    result.achieved_epsilon =
        PaddedAchievedEpsilon(options.xi, per_samples, per_delta) *
        static_cast<double>(*tuple_count);
  }
  result.estimate =
      1.0 - expected_error / static_cast<double>(*tuple_count);
  result.estimate = std::clamp(result.estimate, 0.0, 1.0);
  result.method = "Thm 5.12 padded estimator (xi=" + std::to_string(xi) + ")";
  return result;
}

}  // namespace qrel
