// The metafinite term language of Section 6.
//
// Queries on functional databases are terms built from rational constants,
// function applications f(x̄) (arguments are first-order terms: variables
// over A or element constants), the field operations of ℚ, characteristic
// functions for comparisons (ℜ contains 0, 1 and the Boolean operations),
// and multiset operations Σ, Π, min, max, count, avg that bind a
// first-order variable ranging over A — the paper's generalization of
// quantifiers. Quantifier-free terms are exactly the multiset-free ones
// (Theorem 6.2 (i) applies to them).

#ifndef QREL_METAFINITE_TERM_H_
#define QREL_METAFINITE_TERM_H_

#include <memory>
#include <string>
#include <vector>

#include "qrel/logic/ast.h"
#include "qrel/metafinite/functional_database.h"
#include "qrel/util/rational.h"
#include "qrel/util/status.h"

namespace qrel {

enum class MTermKind {
  kConstant,  // a rational constant
  kApply,     // f(t1, ..., tk)
  kAdd,
  kSub,
  kMul,
  kDiv,   // division by zero evaluates to 0 (documented convention)
  kNeg,
  kEq,      // characteristic: 1 if equal, else 0
  kLess,    // 1 if <, else 0
  kLessEq,  // 1 if <=, else 0
  kNot,     // 1 if operand == 0, else 0
  kAnd,     // 1 if both operands != 0
  kOr,      // 1 if some operand != 0
  kIte,     // children[0] != 0 ? children[1] : children[2]
  kSum,     // Σ_y t
  kProd,    // Π_y t
  kMin,     // min_y t
  kMax,     // max_y t
  kCount,   // |{ y : t ≠ 0 }|
  kAvg,     // (Σ_y t) / |A|
};

class MTerm;
using MTermPtr = std::shared_ptr<const MTerm>;

class MTerm {
 public:
  MTermKind kind = MTermKind::kConstant;
  Rational constant;            // kConstant
  std::string function;         // kApply
  std::vector<Term> args;       // kApply: first-order argument terms
  std::vector<MTermPtr> children;
  std::string bound_variable;   // multiset operations

  std::string ToString() const;
  // Free first-order variables in first-appearance order.
  std::vector<std::string> FreeVariables() const;
  // No multiset operations anywhere.
  bool IsQuantifierFree() const;
};

// Factories.
MTermPtr MConst(Rational value);
MTermPtr MApply(std::string function, std::vector<Term> args);
MTermPtr MAdd(MTermPtr left, MTermPtr right);
MTermPtr MSub(MTermPtr left, MTermPtr right);
MTermPtr MMul(MTermPtr left, MTermPtr right);
MTermPtr MDiv(MTermPtr left, MTermPtr right);
MTermPtr MNeg(MTermPtr operand);
MTermPtr MEq(MTermPtr left, MTermPtr right);
MTermPtr MLess(MTermPtr left, MTermPtr right);
MTermPtr MLessEq(MTermPtr left, MTermPtr right);
MTermPtr MNot(MTermPtr operand);
MTermPtr MAnd(MTermPtr left, MTermPtr right);
MTermPtr MOr(MTermPtr left, MTermPtr right);
MTermPtr MIte(MTermPtr condition, MTermPtr then_term, MTermPtr else_term);
MTermPtr MSum(std::string variable, MTermPtr body);
MTermPtr MProd(std::string variable, MTermPtr body);
MTermPtr MMin(std::string variable, MTermPtr body);
MTermPtr MMax(std::string variable, MTermPtr body);
MTermPtr MCount(std::string variable, MTermPtr body);
MTermPtr MAvg(std::string variable, MTermPtr body);

// Checks function symbols/arities against the vocabulary and that argument
// constants could be range-checked at evaluation time.
Status ValidateTerm(const MTermPtr& term,
                    const FunctionalVocabulary& vocabulary);

// Evaluates `term` on `oracle` with `assignment` supplying the free
// variables in FreeVariables() order. The term must have been validated;
// structural errors abort.
Rational EvalTerm(const MTermPtr& term, const FunctionalOracle& oracle,
                  const Tuple& assignment);

// The function entries f(ā) read by the quantifier-free `term` under
// `assignment` — the local support used by the Theorem 6.2 (i) polynomial
// algorithm. Aborts if the term has multiset operations.
std::vector<FunctionEntry> CollectEntries(
    const MTermPtr& term, const FunctionalVocabulary& vocabulary,
    const Tuple& assignment, const std::vector<std::string>& free_variables);

}  // namespace qrel

#endif  // QREL_METAFINITE_TERM_H_
