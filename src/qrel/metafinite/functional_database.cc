#include "qrel/metafinite/functional_database.h"

#include <algorithm>
#include <utility>

#include "qrel/util/check.h"

namespace qrel {

int FunctionalVocabulary::AddFunction(std::string name, int arity) {
  QREL_CHECK_GE(arity, 0);
  QREL_CHECK_MSG(by_name_.find(name) == by_name_.end(),
                 "duplicate function name");
  int id = static_cast<int>(functions_.size());
  by_name_.emplace(name, id);
  functions_.push_back(FunctionSymbol{std::move(name), arity});
  return id;
}

const FunctionSymbol& FunctionalVocabulary::function(int id) const {
  QREL_CHECK_GE(id, 0);
  QREL_CHECK_LT(id, function_count());
  return functions_[static_cast<size_t>(id)];
}

std::optional<int> FunctionalVocabulary::FindFunction(
    const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return std::nullopt;
  }
  return it->second;
}

FunctionalStructure::FunctionalStructure(
    std::shared_ptr<const FunctionalVocabulary> vocabulary, int universe_size)
    : vocabulary_(std::move(vocabulary)), universe_size_(universe_size) {
  QREL_CHECK(vocabulary_ != nullptr);
  QREL_CHECK_GT(universe_size_, 0);
}

void FunctionalStructure::CheckEntry(int function_id,
                                     const Tuple& args) const {
  QREL_CHECK_GE(function_id, 0);
  QREL_CHECK_LT(function_id, vocabulary_->function_count());
  QREL_CHECK_EQ(static_cast<int>(args.size()),
                vocabulary_->function(function_id).arity);
  for (Element e : args) {
    QREL_CHECK_GE(e, 0);
    QREL_CHECK_LT(e, universe_size_);
  }
}

void FunctionalStructure::SetValue(int function_id, const Tuple& args,
                                   Rational value) {
  CheckEntry(function_id, args);
  values_[GroundAtom{function_id, args}] = std::move(value);
}

Rational FunctionalStructure::Value(int function_id,
                                    const Tuple& args) const {
  CheckEntry(function_id, args);
  auto it = values_.find(GroundAtom{function_id, args});
  if (it == values_.end()) {
    return Rational::Zero();
  }
  return it->second;
}

std::vector<std::pair<GroundAtom, Rational>>
FunctionalStructure::ExplicitValues() const {
  std::vector<std::pair<GroundAtom, Rational>> result(values_.begin(),
                                                      values_.end());
  std::sort(result.begin(), result.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return result;
}

Status ValueDistribution::Validate() const {
  if (outcomes.empty()) {
    return Status::InvalidArgument("distribution has no outcomes");
  }
  Rational total;
  for (size_t i = 0; i < outcomes.size(); ++i) {
    if (!outcomes[i].probability.IsProbability()) {
      return Status::InvalidArgument("outcome probability outside [0, 1]");
    }
    total += outcomes[i].probability;
    for (size_t j = i + 1; j < outcomes.size(); ++j) {
      if (outcomes[i].value == outcomes[j].value) {
        return Status::InvalidArgument("duplicate outcome value " +
                                       outcomes[i].value.ToString());
      }
    }
  }
  if (!total.IsOne()) {
    return Status::InvalidArgument(
        "outcome probabilities sum to " + total.ToString() + ", not 1");
  }
  return Status::Ok();
}

UnreliableFunctionalDatabase::UnreliableFunctionalDatabase(
    FunctionalStructure observed)
    : observed_(std::move(observed)) {}

StatusOr<int> UnreliableFunctionalDatabase::SetDistribution(
    const FunctionEntry& entry, ValueDistribution distribution) {
  // Range-check the entry against the observed structure.
  observed_.Value(entry.relation, entry.args);
  QREL_RETURN_IF_ERROR(distribution.Validate());
  auto [it, inserted] =
      entry_ids_.emplace(entry, static_cast<int>(entries_.size()));
  if (inserted) {
    entries_.push_back(entry);
    distributions_.push_back(std::move(distribution));
  } else {
    distributions_[static_cast<size_t>(it->second)] = std::move(distribution);
  }
  return it->second;
}

const FunctionEntry& UnreliableFunctionalDatabase::uncertain_entry(
    int id) const {
  QREL_CHECK_GE(id, 0);
  QREL_CHECK_LT(id, uncertain_entry_count());
  return entries_[static_cast<size_t>(id)];
}

const ValueDistribution& UnreliableFunctionalDatabase::distribution(
    int id) const {
  QREL_CHECK_GE(id, 0);
  QREL_CHECK_LT(id, uncertain_entry_count());
  return distributions_[static_cast<size_t>(id)];
}

std::optional<int> UnreliableFunctionalDatabase::FindUncertainEntry(
    const FunctionEntry& entry) const {
  auto it = entry_ids_.find(entry);
  if (it == entry_ids_.end()) {
    return std::nullopt;
  }
  return it->second;
}

std::optional<uint64_t> UnreliableFunctionalDatabase::WorldCount() const {
  uint64_t count = 1;
  for (const ValueDistribution& distribution : distributions_) {
    uint64_t outcomes = distribution.outcomes.size();
    if (count > (uint64_t{1} << 62) / outcomes) {
      return std::nullopt;
    }
    count *= outcomes;
  }
  return count;
}

Rational UnreliableFunctionalDatabase::WorldProbability(
    const FunctionalWorld& world) const {
  QREL_CHECK_EQ(static_cast<int>(world.size()), uncertain_entry_count());
  Rational probability = Rational::One();
  for (size_t i = 0; i < world.size(); ++i) {
    const ValueDistribution& distribution = distributions_[i];
    QREL_CHECK_GE(world[i], 0);
    QREL_CHECK_LT(world[i], static_cast<int>(distribution.outcomes.size()));
    probability *=
        distribution.outcomes[static_cast<size_t>(world[i])].probability;
    if (probability.IsZero()) {
      break;
    }
  }
  return probability;
}

FunctionalWorld UnreliableFunctionalDatabase::SampleWorld(Rng* rng) const {
  QREL_CHECK(rng != nullptr);
  FunctionalWorld world(entries_.size(), 0);
  for (size_t i = 0; i < entries_.size(); ++i) {
    const ValueDistribution& distribution = distributions_[i];
    // Inverse-CDF draw; exact when the common denominator fits 64 bits.
    double u = rng->NextDouble();
    double cumulative = 0.0;
    int pick = static_cast<int>(distribution.outcomes.size()) - 1;
    for (size_t o = 0; o < distribution.outcomes.size(); ++o) {
      cumulative += distribution.outcomes[o].probability.ToDouble();
      if (u < cumulative) {
        pick = static_cast<int>(o);
        break;
      }
    }
    world[i] = pick;
  }
  return world;
}

void UnreliableFunctionalDatabase::ForEachWorld(
    const std::function<void(const FunctionalWorld&, const Rational&)>& fn)
    const {
  QREL_CHECK_MSG(WorldCount().has_value(),
                 "functional world enumeration would exceed 2^62 worlds");
  FunctionalWorld world(entries_.size(), 0);
  for (;;) {
    fn(world, WorldProbability(world));
    // Mixed-radix odometer over outcome indices.
    size_t i = 0;
    for (; i < world.size(); ++i) {
      if (world[i] + 1 <
          static_cast<int>(distributions_[i].outcomes.size())) {
        ++world[i];
        break;
      }
      world[i] = 0;
    }
    if (i == world.size()) {
      return;
    }
  }
}

FunctionalWorldView::FunctionalWorldView(
    const UnreliableFunctionalDatabase& database, const FunctionalWorld& world)
    : database_(database), world_(world) {
  QREL_CHECK_EQ(static_cast<int>(world.size()),
                database.uncertain_entry_count());
}

const FunctionalVocabulary& FunctionalWorldView::vocabulary() const {
  return database_.vocabulary();
}

int FunctionalWorldView::universe_size() const {
  return database_.universe_size();
}

Rational FunctionalWorldView::Value(int function_id,
                                    const Tuple& args) const {
  // Uncertain entries read their sampled outcome; others the observed value.
  std::optional<int> id =
      database_.FindUncertainEntry(FunctionEntry{function_id, args});
  if (id.has_value()) {
    return database_.distribution(*id)
        .outcomes[static_cast<size_t>(world_[static_cast<size_t>(*id)])]
        .value;
  }
  return database_.observed().Value(function_id, args);
}

}  // namespace qrel
