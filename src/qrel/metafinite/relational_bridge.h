// The relational ⊂ metafinite embedding of Section 6.
//
// A relational unreliable database embeds into a functional one: each
// relation R becomes its characteristic function χ_R : A^k → {0, 1}
// (uncertain atoms become two-point value distributions with
// ν(χ_R(ā) = 1) = ν(R ā)), plus the identity function id : A → ℚ for
// translating first-order equalities. First-order formulas translate to
// 0/1-valued terms, with max/min playing the role of ∃/∀ — exactly the
// correspondence the paper describes ("the operations max and min can be
// seen as more general variants of existential and universal
// quantifiers"). Reliability is preserved by the translation, which the
// test suite verifies against the relational algorithms.

#ifndef QREL_METAFINITE_RELATIONAL_BRIDGE_H_
#define QREL_METAFINITE_RELATIONAL_BRIDGE_H_

#include "qrel/logic/ast.h"
#include "qrel/metafinite/functional_database.h"
#include "qrel/metafinite/term.h"
#include "qrel/prob/unreliable_database.h"
#include "qrel/util/status.h"

namespace qrel {

// The characteristic-function name for relation `relation_name`.
std::string ChiFunctionName(const std::string& relation_name);

// Name of the identity function used for equality translation.
inline const char* IdFunctionName() { return "id"; }

// Builds the functional encoding: χ_R for every relation (with the error
// model folded into two-point distributions) and id(a) = a.
StatusOr<UnreliableFunctionalDatabase> EncodeRelationalDatabase(
    const UnreliableDatabase& db);

// Translates a first-order formula into a 0/1-valued term over the
// encoding: atoms ↦ χ applications, t₁ = t₂ ↦ id-comparisons, Boolean
// connectives ↦ their characteristic counterparts, ∃/∀ ↦ max/min. Free
// variables stay free (same names, same first-appearance order).
StatusOr<MTermPtr> TranslateFirstOrder(const FormulaPtr& formula);

}  // namespace qrel

#endif  // QREL_METAFINITE_RELATIONAL_BRIDGE_H_
