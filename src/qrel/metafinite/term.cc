#include "qrel/metafinite/term.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "qrel/util/check.h"

namespace qrel {

namespace {

std::shared_ptr<MTerm> MakeNode(MTermKind kind) {
  auto node = std::make_shared<MTerm>();
  node->kind = kind;
  return node;
}

MTermPtr Binary(MTermKind kind, MTermPtr left, MTermPtr right) {
  QREL_CHECK(left != nullptr);
  QREL_CHECK(right != nullptr);
  auto node = MakeNode(kind);
  node->children = {std::move(left), std::move(right)};
  return node;
}

MTermPtr Multiset(MTermKind kind, std::string variable, MTermPtr body) {
  QREL_CHECK(body != nullptr);
  auto node = MakeNode(kind);
  node->bound_variable = std::move(variable);
  node->children = {std::move(body)};
  return node;
}

bool IsMultiset(MTermKind kind) {
  switch (kind) {
    case MTermKind::kSum:
    case MTermKind::kProd:
    case MTermKind::kMin:
    case MTermKind::kMax:
    case MTermKind::kCount:
    case MTermKind::kAvg:
      return true;
    default:
      return false;
  }
}

const char* MultisetName(MTermKind kind) {
  switch (kind) {
    case MTermKind::kSum:
      return "sum";
    case MTermKind::kProd:
      return "prod";
    case MTermKind::kMin:
      return "min";
    case MTermKind::kMax:
      return "max";
    case MTermKind::kCount:
      return "count";
    case MTermKind::kAvg:
      return "avg";
    default:
      QREL_CHECK_MSG(false, "not a multiset operation");
      return "";
  }
}

const char* BinaryOpSymbol(MTermKind kind) {
  switch (kind) {
    case MTermKind::kAdd:
      return " + ";
    case MTermKind::kSub:
      return " - ";
    case MTermKind::kMul:
      return " * ";
    case MTermKind::kDiv:
      return " / ";
    case MTermKind::kEq:
      return " == ";
    case MTermKind::kLess:
      return " < ";
    case MTermKind::kLessEq:
      return " <= ";
    case MTermKind::kAnd:
      return " && ";
    case MTermKind::kOr:
      return " || ";
    default:
      QREL_CHECK_MSG(false, "not a binary operation");
      return "";
  }
}

void CollectFree(const MTerm& term, std::vector<std::string>* bound,
                 std::vector<std::string>* result) {
  if (term.kind == MTermKind::kApply) {
    for (const Term& arg : term.args) {
      if (!arg.is_variable()) {
        continue;
      }
      if (std::find(bound->begin(), bound->end(), arg.variable) !=
          bound->end()) {
        continue;
      }
      if (std::find(result->begin(), result->end(), arg.variable) ==
          result->end()) {
        result->push_back(arg.variable);
      }
    }
    return;
  }
  if (IsMultiset(term.kind)) {
    bound->push_back(term.bound_variable);
    CollectFree(*term.children[0], bound, result);
    bound->pop_back();
    return;
  }
  for (const MTermPtr& child : term.children) {
    CollectFree(*child, bound, result);
  }
}

}  // namespace

std::string MTerm::ToString() const {
  switch (kind) {
    case MTermKind::kConstant:
      return constant.ToString();
    case MTermKind::kApply: {
      std::string result = function + "(";
      for (size_t i = 0; i < args.size(); ++i) {
        if (i != 0) result += ", ";
        result += args[i].ToString();
      }
      return result + ")";
    }
    case MTermKind::kNeg:
      return "-(" + children[0]->ToString() + ")";
    case MTermKind::kNot:
      return "!(" + children[0]->ToString() + ")";
    case MTermKind::kIte:
      return "(" + children[0]->ToString() + " ? " +
             children[1]->ToString() + " : " + children[2]->ToString() + ")";
    case MTermKind::kSum:
    case MTermKind::kProd:
    case MTermKind::kMin:
    case MTermKind::kMax:
    case MTermKind::kCount:
    case MTermKind::kAvg:
      return std::string(MultisetName(kind)) + " " + bound_variable + " . (" +
             children[0]->ToString() + ")";
    default:
      return "(" + children[0]->ToString() + BinaryOpSymbol(kind) +
             children[1]->ToString() + ")";
  }
}

std::vector<std::string> MTerm::FreeVariables() const {
  std::vector<std::string> bound;
  std::vector<std::string> result;
  CollectFree(*this, &bound, &result);
  return result;
}

bool MTerm::IsQuantifierFree() const {
  if (IsMultiset(kind)) {
    return false;
  }
  for (const MTermPtr& child : children) {
    if (!child->IsQuantifierFree()) {
      return false;
    }
  }
  return true;
}

MTermPtr MConst(Rational value) {
  auto node = MakeNode(MTermKind::kConstant);
  node->constant = std::move(value);
  return node;
}

MTermPtr MApply(std::string function, std::vector<Term> args) {
  auto node = MakeNode(MTermKind::kApply);
  node->function = std::move(function);
  node->args = std::move(args);
  return node;
}

MTermPtr MAdd(MTermPtr l, MTermPtr r) { return Binary(MTermKind::kAdd, std::move(l), std::move(r)); }
MTermPtr MSub(MTermPtr l, MTermPtr r) { return Binary(MTermKind::kSub, std::move(l), std::move(r)); }
MTermPtr MMul(MTermPtr l, MTermPtr r) { return Binary(MTermKind::kMul, std::move(l), std::move(r)); }
MTermPtr MDiv(MTermPtr l, MTermPtr r) { return Binary(MTermKind::kDiv, std::move(l), std::move(r)); }

MTermPtr MNeg(MTermPtr operand) {
  QREL_CHECK(operand != nullptr);
  auto node = MakeNode(MTermKind::kNeg);
  node->children = {std::move(operand)};
  return node;
}

MTermPtr MEq(MTermPtr l, MTermPtr r) { return Binary(MTermKind::kEq, std::move(l), std::move(r)); }
MTermPtr MLess(MTermPtr l, MTermPtr r) { return Binary(MTermKind::kLess, std::move(l), std::move(r)); }
MTermPtr MLessEq(MTermPtr l, MTermPtr r) { return Binary(MTermKind::kLessEq, std::move(l), std::move(r)); }

MTermPtr MNot(MTermPtr operand) {
  QREL_CHECK(operand != nullptr);
  auto node = MakeNode(MTermKind::kNot);
  node->children = {std::move(operand)};
  return node;
}

MTermPtr MAnd(MTermPtr l, MTermPtr r) { return Binary(MTermKind::kAnd, std::move(l), std::move(r)); }
MTermPtr MOr(MTermPtr l, MTermPtr r) { return Binary(MTermKind::kOr, std::move(l), std::move(r)); }

MTermPtr MIte(MTermPtr condition, MTermPtr then_term, MTermPtr else_term) {
  QREL_CHECK(condition != nullptr);
  QREL_CHECK(then_term != nullptr);
  QREL_CHECK(else_term != nullptr);
  auto node = MakeNode(MTermKind::kIte);
  node->children = {std::move(condition), std::move(then_term),
                    std::move(else_term)};
  return node;
}

MTermPtr MSum(std::string v, MTermPtr body) { return Multiset(MTermKind::kSum, std::move(v), std::move(body)); }
MTermPtr MProd(std::string v, MTermPtr body) { return Multiset(MTermKind::kProd, std::move(v), std::move(body)); }
MTermPtr MMin(std::string v, MTermPtr body) { return Multiset(MTermKind::kMin, std::move(v), std::move(body)); }
MTermPtr MMax(std::string v, MTermPtr body) { return Multiset(MTermKind::kMax, std::move(v), std::move(body)); }
MTermPtr MCount(std::string v, MTermPtr body) { return Multiset(MTermKind::kCount, std::move(v), std::move(body)); }
MTermPtr MAvg(std::string v, MTermPtr body) { return Multiset(MTermKind::kAvg, std::move(v), std::move(body)); }

Status ValidateTerm(const MTermPtr& term,
                    const FunctionalVocabulary& vocabulary) {
  if (term->kind == MTermKind::kApply) {
    std::optional<int> function = vocabulary.FindFunction(term->function);
    if (!function.has_value()) {
      return Status::InvalidArgument("unknown function '" + term->function +
                                     "'");
    }
    if (vocabulary.function(*function).arity !=
        static_cast<int>(term->args.size())) {
      return Status::InvalidArgument("arity mismatch for function '" +
                                     term->function + "'");
    }
    return Status::Ok();
  }
  for (const MTermPtr& child : term->children) {
    QREL_RETURN_IF_ERROR(ValidateTerm(child, vocabulary));
  }
  return Status::Ok();
}

namespace {

using Environment = std::unordered_map<std::string, Element>;

Rational Eval(const MTerm& term, const FunctionalOracle& oracle,
              Environment* env) {
  switch (term.kind) {
    case MTermKind::kConstant:
      return term.constant;
    case MTermKind::kApply: {
      std::optional<int> function =
          oracle.vocabulary().FindFunction(term.function);
      QREL_CHECK_MSG(function.has_value(), "unvalidated term");
      Tuple args;
      args.reserve(term.args.size());
      for (const Term& arg : term.args) {
        if (arg.is_variable()) {
          auto it = env->find(arg.variable);
          QREL_CHECK_MSG(it != env->end(), "unbound variable in term");
          args.push_back(it->second);
        } else {
          QREL_CHECK_GE(arg.constant, 0);
          QREL_CHECK_LT(arg.constant, oracle.universe_size());
          args.push_back(arg.constant);
        }
      }
      return oracle.Value(*function, args);
    }
    case MTermKind::kAdd:
      return Eval(*term.children[0], oracle, env) +
             Eval(*term.children[1], oracle, env);
    case MTermKind::kSub:
      return Eval(*term.children[0], oracle, env) -
             Eval(*term.children[1], oracle, env);
    case MTermKind::kMul:
      return Eval(*term.children[0], oracle, env) *
             Eval(*term.children[1], oracle, env);
    case MTermKind::kDiv: {
      Rational denominator = Eval(*term.children[1], oracle, env);
      if (denominator.IsZero()) {
        return Rational::Zero();  // documented total-function convention
      }
      return Eval(*term.children[0], oracle, env) / denominator;
    }
    case MTermKind::kNeg:
      return -Eval(*term.children[0], oracle, env);
    case MTermKind::kEq:
      return Eval(*term.children[0], oracle, env) ==
                     Eval(*term.children[1], oracle, env)
                 ? Rational(1)
                 : Rational(0);
    case MTermKind::kLess:
      return Eval(*term.children[0], oracle, env) <
                     Eval(*term.children[1], oracle, env)
                 ? Rational(1)
                 : Rational(0);
    case MTermKind::kLessEq:
      return Eval(*term.children[0], oracle, env) <=
                     Eval(*term.children[1], oracle, env)
                 ? Rational(1)
                 : Rational(0);
    case MTermKind::kNot:
      return Eval(*term.children[0], oracle, env).IsZero() ? Rational(1)
                                                           : Rational(0);
    case MTermKind::kAnd:
      return (!Eval(*term.children[0], oracle, env).IsZero() &&
              !Eval(*term.children[1], oracle, env).IsZero())
                 ? Rational(1)
                 : Rational(0);
    case MTermKind::kOr:
      return (!Eval(*term.children[0], oracle, env).IsZero() ||
              !Eval(*term.children[1], oracle, env).IsZero())
                 ? Rational(1)
                 : Rational(0);
    case MTermKind::kIte:
      return Eval(*term.children[0], oracle, env).IsZero()
                 ? Eval(*term.children[2], oracle, env)
                 : Eval(*term.children[1], oracle, env);
    case MTermKind::kSum:
    case MTermKind::kProd:
    case MTermKind::kMin:
    case MTermKind::kMax:
    case MTermKind::kCount:
    case MTermKind::kAvg: {
      // Shadow any outer binding of the variable for the loop's duration.
      std::optional<Element> shadowed;
      auto it = env->find(term.bound_variable);
      if (it != env->end()) {
        shadowed = it->second;
      }
      Rational accumulator;
      bool first = true;
      for (Element value = 0; value < oracle.universe_size(); ++value) {
        (*env)[term.bound_variable] = value;
        Rational body = Eval(*term.children[0], oracle, env);
        switch (term.kind) {
          case MTermKind::kSum:
          case MTermKind::kAvg:
            accumulator += body;
            break;
          case MTermKind::kProd:
            accumulator = first ? body : accumulator * body;
            break;
          case MTermKind::kMin:
            if (first || body < accumulator) accumulator = body;
            break;
          case MTermKind::kMax:
            if (first || body > accumulator) accumulator = body;
            break;
          case MTermKind::kCount:
            if (!body.IsZero()) accumulator += Rational(1);
            break;
          default:
            break;
        }
        first = false;
      }
      if (shadowed.has_value()) {
        (*env)[term.bound_variable] = *shadowed;
      } else {
        env->erase(term.bound_variable);
      }
      if (term.kind == MTermKind::kAvg) {
        accumulator = accumulator / Rational(oracle.universe_size());
      }
      return accumulator;
    }
  }
  QREL_CHECK_MSG(false, "corrupt term kind");
  return Rational();
}

}  // namespace

Rational EvalTerm(const MTermPtr& term, const FunctionalOracle& oracle,
                  const Tuple& assignment) {
  std::vector<std::string> free_variables = term->FreeVariables();
  QREL_CHECK_EQ(assignment.size(), free_variables.size());
  Environment env;
  for (size_t i = 0; i < free_variables.size(); ++i) {
    QREL_CHECK_GE(assignment[i], 0);
    QREL_CHECK_LT(assignment[i], oracle.universe_size());
    env.emplace(free_variables[i], assignment[i]);
  }
  return Eval(*term, oracle, &env);
}

namespace {

void CollectEntriesImpl(const MTerm& term,
                        const FunctionalVocabulary& vocabulary,
                        const Environment& env,
                        std::vector<FunctionEntry>* entries) {
  QREL_CHECK_MSG(!IsMultiset(term.kind),
                 "CollectEntries requires a quantifier-free term");
  if (term.kind == MTermKind::kApply) {
    std::optional<int> function = vocabulary.FindFunction(term.function);
    QREL_CHECK(function.has_value());
    FunctionEntry entry;
    entry.relation = *function;
    for (const Term& arg : term.args) {
      if (arg.is_variable()) {
        auto it = env.find(arg.variable);
        QREL_CHECK_MSG(it != env.end(), "unbound variable in term");
        entry.args.push_back(it->second);
      } else {
        entry.args.push_back(arg.constant);
      }
    }
    for (const FunctionEntry& existing : *entries) {
      if (existing == entry) {
        return;
      }
    }
    entries->push_back(std::move(entry));
    return;
  }
  for (const MTermPtr& child : term.children) {
    CollectEntriesImpl(*child, vocabulary, env, entries);
  }
}

}  // namespace

std::vector<FunctionEntry> CollectEntries(
    const MTermPtr& term, const FunctionalVocabulary& vocabulary,
    const Tuple& assignment,
    const std::vector<std::string>& free_variables) {
  QREL_CHECK_EQ(assignment.size(), free_variables.size());
  Environment env;
  for (size_t i = 0; i < free_variables.size(); ++i) {
    env.emplace(free_variables[i], assignment[i]);
  }
  std::vector<FunctionEntry> entries;
  CollectEntriesImpl(*term, vocabulary, env, &entries);
  return entries;
}

}  // namespace qrel
