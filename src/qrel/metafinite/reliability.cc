#include "qrel/metafinite/reliability.h"

#include <unordered_map>
#include <utility>

#include "qrel/util/check.h"

namespace qrel {

namespace {

Rational TupleSpaceSize(int n, int k) {
  return Rational(BigInt::Pow(BigInt(n), static_cast<uint32_t>(k)),
                  BigInt(1));
}

// A functional oracle answering from an explicit entry-value map, falling
// back to the observed structure (the Theorem 6.2 (i) local view).
class LocalFunctionalOracle : public FunctionalOracle {
 public:
  explicit LocalFunctionalOracle(const FunctionalStructure& observed)
      : observed_(observed) {}

  void Set(const FunctionEntry& entry, Rational value) {
    values_[entry] = std::move(value);
  }

  const FunctionalVocabulary& vocabulary() const override {
    return observed_.vocabulary();
  }
  int universe_size() const override { return observed_.universe_size(); }
  Rational Value(int function_id, const Tuple& args) const override {
    auto it = values_.find(GroundAtom{function_id, args});
    if (it != values_.end()) {
      return it->second;
    }
    return observed_.Value(function_id, args);
  }

 private:
  const FunctionalStructure& observed_;
  std::unordered_map<GroundAtom, Rational, GroundAtomHash> values_;
};

struct QueryShape {
  std::vector<std::string> free_variables;
  std::vector<Tuple> tuples;
  std::vector<Rational> observed_values;
};

StatusOr<QueryShape> PrepareQuery(const MTermPtr& query,
                                  const UnreliableFunctionalDatabase& db) {
  QREL_RETURN_IF_ERROR(ValidateTerm(query, db.vocabulary()));
  QueryShape shape;
  shape.free_variables = query->FreeVariables();
  Tuple assignment(shape.free_variables.size(), 0);
  do {
    shape.tuples.push_back(assignment);
    shape.observed_values.push_back(
        EvalTerm(query, db.observed(), assignment));
  } while (AdvanceTuple(&assignment, db.universe_size()));
  return shape;
}

}  // namespace

StatusOr<FunctionalReliabilityReport> ExactFunctionalReliability(
    const MTermPtr& query, const UnreliableFunctionalDatabase& db) {
  std::optional<uint64_t> world_count = db.WorldCount();
  if (!world_count.has_value() || *world_count > (uint64_t{1} << 22)) {
    return Status::OutOfRange("too many worlds for exact enumeration");
  }
  StatusOr<QueryShape> shape = PrepareQuery(query, db);
  if (!shape.ok()) {
    return shape.status();
  }

  FunctionalReliabilityReport report;
  report.arity = static_cast<int>(shape->free_variables.size());
  db.ForEachWorld([&](const FunctionalWorld& world,
                      const Rational& probability) {
    ++report.work_units;
    if (probability.IsZero()) {
      return;
    }
    FunctionalWorldView view(db, world);
    int differing = 0;
    for (size_t i = 0; i < shape->tuples.size(); ++i) {
      if (EvalTerm(query, view, shape->tuples[i]) !=
          shape->observed_values[i]) {
        ++differing;
      }
    }
    if (differing > 0) {
      report.expected_error += probability * Rational(differing);
    }
  });
  report.reliability =
      Rational(1) -
      report.expected_error / TupleSpaceSize(db.universe_size(), report.arity);
  return report;
}

StatusOr<FunctionalReliabilityReport> QuantifierFreeFunctionalReliability(
    const MTermPtr& query, const UnreliableFunctionalDatabase& db) {
  if (!query->IsQuantifierFree()) {
    return Status::InvalidArgument(
        "QuantifierFreeFunctionalReliability requires a multiset-free term");
  }
  QREL_RETURN_IF_ERROR(ValidateTerm(query, db.vocabulary()));

  std::vector<std::string> free_variables = query->FreeVariables();
  int k = static_cast<int>(free_variables.size());
  int n = db.universe_size();

  FunctionalReliabilityReport report;
  report.arity = k;

  Tuple assignment(static_cast<size_t>(k), 0);
  do {
    std::vector<FunctionEntry> entries =
        CollectEntries(query, db.vocabulary(), assignment, free_variables);
    // Only entries with uncertain values span the local outcome space.
    std::vector<int> uncertain;
    for (const FunctionEntry& entry : entries) {
      std::optional<int> id = db.FindUncertainEntry(entry);
      if (id.has_value()) {
        uncertain.push_back(*id);
      }
    }
    Rational observed_value = EvalTerm(query, db.observed(), assignment);

    // Mixed-radix enumeration of the joint local outcomes.
    std::vector<int> choice(uncertain.size(), 0);
    Rational h_tuple;
    for (;;) {
      ++report.work_units;
      LocalFunctionalOracle oracle(db.observed());
      Rational probability = Rational::One();
      for (size_t i = 0; i < uncertain.size(); ++i) {
        const ValueDistribution& distribution =
            db.distribution(uncertain[i]);
        const ValueDistribution::Outcome& outcome =
            distribution.outcomes[static_cast<size_t>(choice[i])];
        probability *= outcome.probability;
        oracle.Set(db.uncertain_entry(uncertain[i]), outcome.value);
      }
      if (!probability.IsZero() &&
          EvalTerm(query, oracle, assignment) != observed_value) {
        h_tuple += probability;
      }
      // Advance the odometer.
      size_t i = 0;
      for (; i < choice.size(); ++i) {
        if (choice[i] + 1 <
            static_cast<int>(
                db.distribution(uncertain[i]).outcomes.size())) {
          ++choice[i];
          break;
        }
        choice[i] = 0;
      }
      if (i == choice.size()) {
        break;
      }
    }
    report.expected_error += h_tuple;
  } while (AdvanceTuple(&assignment, n));

  report.reliability =
      Rational(1) - report.expected_error / TupleSpaceSize(n, k);
  return report;
}

StatusOr<FunctionalMcResult> McFunctionalReliability(
    const MTermPtr& query, const UnreliableFunctionalDatabase& db,
    uint64_t samples, uint64_t seed) {
  if (samples == 0) {
    return Status::InvalidArgument("sample count must be positive");
  }
  StatusOr<QueryShape> shape = PrepareQuery(query, db);
  if (!shape.ok()) {
    return shape.status();
  }
  Rng rng(seed);
  double total_hamming = 0.0;
  for (uint64_t s = 0; s < samples; ++s) {
    FunctionalWorld world = db.SampleWorld(&rng);
    FunctionalWorldView view(db, world);
    int differing = 0;
    for (size_t i = 0; i < shape->tuples.size(); ++i) {
      if (EvalTerm(query, view, shape->tuples[i]) !=
          shape->observed_values[i]) {
        ++differing;
      }
    }
    total_hamming += differing;
  }
  double tuple_count = static_cast<double>(shape->tuples.size());
  FunctionalMcResult result;
  result.samples = samples;
  result.estimate =
      1.0 - (total_hamming / static_cast<double>(samples)) / tuple_count;
  return result;
}

}  // namespace qrel
