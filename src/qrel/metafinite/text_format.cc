#include "qrel/metafinite/text_format.h"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <memory>
#include <new>
#include <sstream>
#include <vector>

#include "qrel/util/fault_injection.h"

namespace qrel {

namespace {

std::vector<std::string> Tokenize(std::string_view line) {
  std::vector<std::string> tokens;
  std::string current;
  for (char c : line) {
    if (c == '#') {
      break;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == ',' || c == ':' ||
        c == '=' || c == '@') {
      // Punctuation separates tokens; the directives below re-validate the
      // token counts, so treating ',', ':', '=' and '@' as whitespace
      // keeps the grammar simple without ambiguity.
      if (!current.empty()) {
        tokens.push_back(current);
        current.clear();
      }
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) {
    tokens.push_back(current);
  }
  return tokens;
}

Status LineError(int line_number, const std::string& message) {
  return Status::InvalidArgument("line " + std::to_string(line_number) + ": " +
                                 message);
}

StatusOr<int> ParseSmallInt(const std::string& token, int line_number) {
  if (token.empty()) {
    return LineError(line_number, "empty integer");
  }
  int value = 0;
  for (char c : token) {
    if (c < '0' || c > '9') {
      return LineError(line_number, "invalid integer '" + token + "'");
    }
    if (value > 100000000) {
      return LineError(line_number, "integer out of range '" + token + "'");
    }
    value = value * 10 + (c - '0');
  }
  return value;
}

}  // namespace

namespace {

StatusOr<UnreliableFunctionalDatabase> ParseMfdbImpl(std::string_view text) {
  auto vocabulary = std::make_shared<FunctionalVocabulary>();
  int universe_size = -1;

  struct PendingValue {
    FunctionEntry entry;
    Rational value;
  };
  struct PendingDistribution {
    FunctionEntry entry;
    ValueDistribution distribution;
    int line_number;
  };
  std::vector<PendingValue> values;
  std::vector<PendingDistribution> distributions;

  std::istringstream stream{std::string(text)};
  std::string line;
  int line_number = 0;
  while (std::getline(stream, line)) {
    ++line_number;
    QREL_FAULT_SITE("metafinite.parse_mfdb.line");
    std::vector<std::string> tokens = Tokenize(line);
    if (tokens.empty()) {
      continue;
    }
    const std::string& directive = tokens[0];
    if (directive == "universe") {
      if (universe_size != -1) {
        return LineError(line_number, "duplicate 'universe' directive");
      }
      if (tokens.size() != 2) {
        return LineError(line_number, "'universe' takes exactly one argument");
      }
      StatusOr<int> n = ParseSmallInt(tokens[1], line_number);
      if (!n.ok()) return n.status();
      if (*n <= 0) {
        return LineError(line_number, "universe size must be positive");
      }
      universe_size = *n;
    } else if (directive == "function") {
      if (tokens.size() != 3) {
        return LineError(line_number, "'function' takes a name and an arity");
      }
      if (vocabulary->FindFunction(tokens[1]).has_value()) {
        return LineError(line_number, "duplicate function '" + tokens[1] + "'");
      }
      StatusOr<int> arity = ParseSmallInt(tokens[2], line_number);
      if (!arity.ok()) return arity.status();
      vocabulary->AddFunction(tokens[1], *arity);
    } else if (directive == "value" || directive == "dist") {
      if (universe_size == -1) {
        return LineError(line_number, "'universe' must come before entries");
      }
      if (tokens.size() < 2) {
        return LineError(line_number, "'" + directive + "' needs a function");
      }
      std::optional<int> function = vocabulary->FindFunction(tokens[1]);
      if (!function.has_value()) {
        return LineError(line_number, "unknown function '" + tokens[1] + "'");
      }
      int arity = vocabulary->function(*function).arity;
      if (static_cast<int>(tokens.size()) < 2 + arity + 1) {
        return LineError(line_number, "too few tokens for '" + directive +
                                          "' on function '" + tokens[1] + "'");
      }
      FunctionEntry entry;
      entry.relation = *function;
      for (int i = 0; i < arity; ++i) {
        StatusOr<int> element =
            ParseSmallInt(tokens[static_cast<size_t>(2 + i)], line_number);
        if (!element.ok()) return element.status();
        if (*element >= universe_size) {
          return LineError(line_number,
                           "element outside universe of size " +
                               std::to_string(universe_size));
        }
        entry.args.push_back(*element);
      }
      size_t cursor = static_cast<size_t>(2 + arity);
      if (directive == "value") {
        if (tokens.size() != cursor + 1) {
          return LineError(line_number, "'value' takes exactly one value");
        }
        StatusOr<Rational> value = Rational::Parse(tokens[cursor]);
        if (!value.ok()) {
          return LineError(line_number, value.status().message());
        }
        values.push_back({std::move(entry), *value});
      } else {
        // value/probability pairs.
        if ((tokens.size() - cursor) % 2 != 0 ||
            tokens.size() == cursor) {
          return LineError(line_number,
                           "'dist' takes value/probability pairs");
        }
        ValueDistribution distribution;
        for (size_t i = cursor; i + 1 < tokens.size(); i += 2) {
          StatusOr<Rational> value = Rational::Parse(tokens[i]);
          if (!value.ok()) {
            return LineError(line_number, value.status().message());
          }
          StatusOr<Rational> probability = Rational::Parse(tokens[i + 1]);
          if (!probability.ok()) {
            return LineError(line_number, probability.status().message());
          }
          distribution.outcomes.push_back({*value, *probability});
        }
        distributions.push_back(
            {std::move(entry), std::move(distribution), line_number});
      }
    } else {
      return LineError(line_number, "unknown directive '" + directive + "'");
    }
  }

  if (universe_size == -1) {
    return Status::InvalidArgument("missing 'universe' directive");
  }

  FunctionalStructure observed(vocabulary, universe_size);
  for (const PendingValue& pending : values) {
    observed.SetValue(pending.entry.relation, pending.entry.args,
                      pending.value);
  }
  UnreliableFunctionalDatabase database(std::move(observed));
  for (PendingDistribution& pending : distributions) {
    StatusOr<int> set = database.SetDistribution(
        pending.entry, std::move(pending.distribution));
    if (!set.ok()) {
      return LineError(pending.line_number, set.status().message());
    }
  }
  return database;
}

}  // namespace

StatusOr<UnreliableFunctionalDatabase> ParseMfdb(std::string_view text) {
  try {
    return ParseMfdbImpl(text);
  } catch (const std::bad_alloc&) {
    return Status::ResourceExhausted("out of memory while parsing .mfdb text");
  }
}

StatusOr<UnreliableFunctionalDatabase> LoadMfdbFile(const std::string& path) {
  errno = 0;
  std::ifstream file(path);
  if (!file) {
    int open_errno = errno;
    if (open_errno == ENOENT) {
      return Status::NotFound("no such file: '" + path + "'");
    }
    return Status::Internal("cannot open '" + path + "': " +
                            (open_errno != 0 ? ErrnoString(open_errno)
                                             : "unknown error"));
  }
  QREL_RETURN_IF_ERROR(QREL_FAULT_HIT("metafinite.load_mfdb.read"));
  std::ostringstream contents;
  contents << file.rdbuf();
  if (file.bad()) {
    return Status::Internal("read error on '" + path + "'");
  }
  return ParseMfdb(contents.str());
}

std::string FormatMfdb(const UnreliableFunctionalDatabase& database) {
  std::ostringstream out;
  const FunctionalVocabulary& vocabulary = database.vocabulary();
  out << "universe " << database.universe_size() << "\n";
  for (int f = 0; f < vocabulary.function_count(); ++f) {
    out << "function " << vocabulary.function(f).name << " "
        << vocabulary.function(f).arity << "\n";
  }
  for (const auto& [entry, value] : database.observed().ExplicitValues()) {
    out << "value " << vocabulary.function(entry.relation).name;
    for (Element e : entry.args) {
      out << " " << e;
    }
    out << " = " << value.ToString() << "\n";
  }
  for (int id = 0; id < database.uncertain_entry_count(); ++id) {
    const FunctionEntry& entry = database.uncertain_entry(id);
    out << "dist " << vocabulary.function(entry.relation).name;
    for (Element e : entry.args) {
      out << " " << e;
    }
    out << " :";
    const ValueDistribution& distribution = database.distribution(id);
    for (size_t o = 0; o < distribution.outcomes.size(); ++o) {
      if (o != 0) {
        out << ",";
      }
      out << " " << distribution.outcomes[o].value.ToString() << " @ "
          << distribution.outcomes[o].probability.ToString();
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace qrel
