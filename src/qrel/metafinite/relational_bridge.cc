#include "qrel/metafinite/relational_bridge.h"

#include <memory>
#include <utility>

#include "qrel/util/check.h"

namespace qrel {

std::string ChiFunctionName(const std::string& relation_name) {
  return "chi_" + relation_name;
}

StatusOr<UnreliableFunctionalDatabase> EncodeRelationalDatabase(
    const UnreliableDatabase& db) {
  const Vocabulary& relational = db.vocabulary();
  auto vocabulary = std::make_shared<FunctionalVocabulary>();
  std::vector<int> chi(static_cast<size_t>(relational.relation_count()), 0);
  for (int r = 0; r < relational.relation_count(); ++r) {
    chi[static_cast<size_t>(r)] = vocabulary->AddFunction(
        ChiFunctionName(relational.relation(r).name),
        relational.relation(r).arity);
  }
  int id = vocabulary->AddFunction(IdFunctionName(), 1);

  FunctionalStructure observed(vocabulary, db.universe_size());
  for (Element a = 0; a < db.universe_size(); ++a) {
    observed.SetValue(id, {a}, Rational(a));
  }
  // χ_R is 1 exactly on the observed facts (unset entries default to 0).
  for (int r = 0; r < relational.relation_count(); ++r) {
    for (const Tuple& tuple : db.observed().Facts(r)) {
      observed.SetValue(chi[static_cast<size_t>(r)], tuple, Rational(1));
    }
  }

  UnreliableFunctionalDatabase encoded(std::move(observed));
  const ErrorModel& model = db.model();
  for (int entry = 0; entry < model.entry_count(); ++entry) {
    const GroundAtom& atom = model.atom(entry);
    Rational nu_true = db.EntryNuTrue(entry);
    ValueDistribution distribution;
    if (nu_true.IsOne()) {
      distribution.outcomes.push_back({Rational(1), Rational(1)});
    } else if (nu_true.IsZero()) {
      distribution.outcomes.push_back({Rational(0), Rational(1)});
    } else {
      distribution.outcomes.push_back({Rational(1), nu_true});
      distribution.outcomes.push_back({Rational(0), nu_true.Complement()});
    }
    StatusOr<int> set = encoded.SetDistribution(
        FunctionEntry{chi[static_cast<size_t>(atom.relation)], atom.args},
        std::move(distribution));
    if (!set.ok()) {
      return set.status();
    }
  }
  return encoded;
}

namespace {

// A first-order term (variable or element constant) as a numeric MTerm.
MTermPtr NumericTerm(const Term& term) {
  if (term.is_variable()) {
    return MApply(IdFunctionName(), {term});
  }
  return MConst(Rational(term.constant));
}

}  // namespace

StatusOr<MTermPtr> TranslateFirstOrder(const FormulaPtr& formula) {
  switch (formula->kind) {
    case FormulaKind::kTrue:
      return MConst(Rational(1));
    case FormulaKind::kFalse:
      return MConst(Rational(0));
    case FormulaKind::kAtom:
      // χ values are exactly 0/1 in every world, so the application is
      // already a characteristic term.
      return MApply(ChiFunctionName(formula->relation), formula->args);
    case FormulaKind::kEquals:
      return MEq(NumericTerm(formula->args[0]),
                 NumericTerm(formula->args[1]));
    case FormulaKind::kNot: {
      StatusOr<MTermPtr> operand = TranslateFirstOrder(formula->children[0]);
      if (!operand.ok()) return operand;
      return MNot(*operand);
    }
    case FormulaKind::kAnd:
    case FormulaKind::kOr: {
      StatusOr<MTermPtr> result = TranslateFirstOrder(formula->children[0]);
      if (!result.ok()) return result;
      for (size_t i = 1; i < formula->children.size(); ++i) {
        StatusOr<MTermPtr> next = TranslateFirstOrder(formula->children[i]);
        if (!next.ok()) return next;
        result = formula->kind == FormulaKind::kAnd ? MAnd(*result, *next)
                                                    : MOr(*result, *next);
      }
      return result;
    }
    case FormulaKind::kImplies: {
      StatusOr<MTermPtr> premise = TranslateFirstOrder(formula->children[0]);
      if (!premise.ok()) return premise;
      StatusOr<MTermPtr> conclusion =
          TranslateFirstOrder(formula->children[1]);
      if (!conclusion.ok()) return conclusion;
      return MOr(MNot(*premise), *conclusion);
    }
    case FormulaKind::kIff: {
      StatusOr<MTermPtr> left = TranslateFirstOrder(formula->children[0]);
      if (!left.ok()) return left;
      StatusOr<MTermPtr> right = TranslateFirstOrder(formula->children[1]);
      if (!right.ok()) return right;
      // Both sides are 0/1-valued, so numeric equality is biconditional.
      return MEq(*left, *right);
    }
    case FormulaKind::kExists:
    case FormulaKind::kForAll: {
      StatusOr<MTermPtr> body = TranslateFirstOrder(formula->children[0]);
      if (!body.ok()) return body;
      // max/min over A generalize ∃/∀ on characteristic terms.
      return formula->kind == FormulaKind::kExists
                 ? MMax(formula->bound_variable, *body)
                 : MMin(formula->bound_variable, *body);
    }
  }
  return Status::Internal("corrupt formula kind");
}

}  // namespace qrel
