// Reliability of metafinite queries — Theorem 6.2.
//
// A k-ary query term F on a functional database evaluates to F^𝔄 : A^k → ℚ;
// the expected error counts the tuples where F^𝔄 and F^𝔅 differ and
// R_F = 1 − H_F/n^k, exactly as in the relational case.
//
//   (i)  Quantifier-free terms: polynomial time — only the function entries
//        occurring in F(ā) matter per tuple.
//   (ii) First-order (multiset) terms: exact by world enumeration
//        (FP^#P discipline), plus a Monte Carlo estimator.

#ifndef QREL_METAFINITE_RELIABILITY_H_
#define QREL_METAFINITE_RELIABILITY_H_

#include "qrel/metafinite/functional_database.h"
#include "qrel/metafinite/term.h"
#include "qrel/util/status.h"

namespace qrel {

struct FunctionalReliabilityReport {
  int arity = 0;
  Rational expected_error;  // H_F(𝔇)
  Rational reliability;     // R_F(𝔇)
  uint64_t work_units = 0;  // worlds enumerated / local outcomes summed
};

// Exact H_F and R_F by enumerating all value worlds. Fails if the world
// count exceeds 2^22.
StatusOr<FunctionalReliabilityReport> ExactFunctionalReliability(
    const MTermPtr& query, const UnreliableFunctionalDatabase& db);

// Theorem 6.2 (i): polynomial-time exact reliability for quantifier-free
// terms (per-tuple local-entry enumeration). Fails if the term has
// multiset operations.
StatusOr<FunctionalReliabilityReport> QuantifierFreeFunctionalReliability(
    const MTermPtr& query, const UnreliableFunctionalDatabase& db);

struct FunctionalMcResult {
  double estimate = 0.0;  // estimated R_F
  uint64_t samples = 0;
};

// Monte Carlo estimation of R_F for arbitrary terms: sample worlds,
// compare answers on all tuples.
StatusOr<FunctionalMcResult> McFunctionalReliability(
    const MTermPtr& query, const UnreliableFunctionalDatabase& db,
    uint64_t samples, uint64_t seed);

}  // namespace qrel

#endif  // QREL_METAFINITE_RELIABILITY_H_
