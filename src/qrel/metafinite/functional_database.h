// Unreliable functional (metafinite) databases — Definition 6.1.
//
// A functional database 𝔄 = (A, ℱ) is a finite set A plus functions
// f : A^k → ℚ (the infinite interpreted structure ℜ is the ordered field
// of rationals with the multiset operations of term.h). An unreliable
// functional database assigns to entries f(ā) finite value distributions
// ν(f(ā) = r) with Σ_r ν = 1, independent across entries; entries without
// a distribution take their observed value with certainty.
//
// Worlds pick one outcome per uncertain entry, so the number of worlds
// with positive probability is Π |outcomes| — finite and enumerable, which
// is the structural fact behind Theorem 6.2 (ii).

#ifndef QREL_METAFINITE_FUNCTIONAL_DATABASE_H_
#define QREL_METAFINITE_FUNCTIONAL_DATABASE_H_

#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "qrel/relational/atom_table.h"
#include "qrel/relational/structure.h"
#include "qrel/util/rational.h"
#include "qrel/util/rng.h"
#include "qrel/util/status.h"

namespace qrel {

struct FunctionSymbol {
  std::string name;
  int arity = 0;
};

class FunctionalVocabulary {
 public:
  // Registers a function symbol; aborts on duplicates or negative arity.
  int AddFunction(std::string name, int arity);
  int function_count() const { return static_cast<int>(functions_.size()); }
  const FunctionSymbol& function(int id) const;
  std::optional<int> FindFunction(const std::string& name) const;

 private:
  std::vector<FunctionSymbol> functions_;
  std::unordered_map<std::string, int> by_name_;
};

// One function entry f(ā); shares GroundAtom's layout (relation := f).
using FunctionEntry = GroundAtom;

// Read access to the function values of one database or world.
class FunctionalOracle {
 public:
  virtual ~FunctionalOracle() = default;
  virtual const FunctionalVocabulary& vocabulary() const = 0;
  virtual int universe_size() const = 0;
  virtual Rational Value(int function_id, const Tuple& args) const = 0;
};

// A concrete functional structure; unset entries have value 0.
class FunctionalStructure : public FunctionalOracle {
 public:
  FunctionalStructure(std::shared_ptr<const FunctionalVocabulary> vocabulary,
                      int universe_size);

  const FunctionalVocabulary& vocabulary() const override {
    return *vocabulary_;
  }
  const std::shared_ptr<const FunctionalVocabulary>& vocabulary_ptr() const {
    return vocabulary_;
  }
  int universe_size() const override { return universe_size_; }

  void SetValue(int function_id, const Tuple& args, Rational value);
  Rational Value(int function_id, const Tuple& args) const override;

  // All explicitly set entries, sorted by (function, args); entries never
  // set have the implicit value 0 and are not listed.
  std::vector<std::pair<GroundAtom, Rational>> ExplicitValues() const;

 private:
  void CheckEntry(int function_id, const Tuple& args) const;

  std::shared_ptr<const FunctionalVocabulary> vocabulary_;
  int universe_size_;
  std::unordered_map<GroundAtom, Rational, GroundAtomHash> values_;
};

// A finite distribution over the actual value of one entry.
struct ValueDistribution {
  struct Outcome {
    Rational value;
    Rational probability;
  };
  std::vector<Outcome> outcomes;

  // Checks probabilities are in [0,1], sum to exactly 1, and values are
  // pairwise distinct.
  Status Validate() const;
};

// A world: outcome index per uncertain entry (dense entry ids).
using FunctionalWorld = std::vector<int>;

class UnreliableFunctionalDatabase {
 public:
  explicit UnreliableFunctionalDatabase(FunctionalStructure observed);

  const FunctionalStructure& observed() const { return observed_; }
  const FunctionalVocabulary& vocabulary() const {
    return observed_.vocabulary();
  }
  int universe_size() const { return observed_.universe_size(); }

  // Declares the value of `entry` unreliable with the given distribution.
  // Returns the dense uncertain-entry id, or a Status on invalid input.
  StatusOr<int> SetDistribution(const FunctionEntry& entry,
                                ValueDistribution distribution);

  int uncertain_entry_count() const {
    return static_cast<int>(entries_.size());
  }
  const FunctionEntry& uncertain_entry(int id) const;
  const ValueDistribution& distribution(int id) const;
  // Dense id of `entry` if its value is uncertain.
  std::optional<int> FindUncertainEntry(const FunctionEntry& entry) const;

  // Number of worlds with positive probability: Π |outcomes|; nullopt if
  // it exceeds 2^62.
  std::optional<uint64_t> WorldCount() const;

  Rational WorldProbability(const FunctionalWorld& world) const;
  FunctionalWorld SampleWorld(Rng* rng) const;
  // Enumerates all worlds with their probabilities (mixed-radix odometer).
  // Aborts if WorldCount() overflows.
  void ForEachWorld(const std::function<void(const FunctionalWorld&,
                                             const Rational&)>& fn) const;

 private:
  FunctionalStructure observed_;
  std::vector<FunctionEntry> entries_;
  std::vector<ValueDistribution> distributions_;
  std::unordered_map<GroundAtom, int, GroundAtomHash> entry_ids_;
};

// FunctionalOracle view of one world.
class FunctionalWorldView : public FunctionalOracle {
 public:
  FunctionalWorldView(const UnreliableFunctionalDatabase& database,
                      const FunctionalWorld& world);

  const FunctionalVocabulary& vocabulary() const override;
  int universe_size() const override;
  Rational Value(int function_id, const Tuple& args) const override;

 private:
  const UnreliableFunctionalDatabase& database_;
  const FunctionalWorld& world_;
};

}  // namespace qrel

#endif  // QREL_METAFINITE_FUNCTIONAL_DATABASE_H_
