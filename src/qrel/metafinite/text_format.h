// Text serialization of unreliable functional databases (.mfdb).
//
// Line-oriented, '#' comments, blank lines ignored:
//
//   universe 6
//   function salary 1
//   function dept 1
//   value salary 0 = 3200          # observed value (default 0)
//   value dept 0 = 1
//   dist salary 0 : 3200 @ 9/10, 8200 @ 1/10   # actual-value distribution
//
// Values and probabilities are exact rationals ("p/q", integers or
// decimals). A `dist` line makes the entry's actual value unreliable; its
// probabilities must sum to exactly 1.

#ifndef QREL_METAFINITE_TEXT_FORMAT_H_
#define QREL_METAFINITE_TEXT_FORMAT_H_

#include <string>
#include <string_view>

#include "qrel/metafinite/functional_database.h"
#include "qrel/util/status.h"

namespace qrel {

StatusOr<UnreliableFunctionalDatabase> ParseMfdb(std::string_view text);

StatusOr<UnreliableFunctionalDatabase> LoadMfdbFile(const std::string& path);

// Renders `database` in the .mfdb format (parseable by ParseMfdb). Only
// explicitly set observed values are emitted (unset entries are 0).
std::string FormatMfdb(const UnreliableFunctionalDatabase& database);

}  // namespace qrel

#endif  // QREL_METAFINITE_TEXT_FORMAT_H_
