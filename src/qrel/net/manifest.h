// Durable server state: the catalog manifest and the idempotency journal.
//
// Both records ride inside the PR-3 snapshot container (util/snapshot.h:
// magic, format version, fingerprint, kind, checksum), so they inherit
// its whole durability story for free — atomic temp-file + rename +
// directory-fsync writes, typed corruption detection on load, and the
// fuzz/corruption corpus that already hammers the container.
//
// **Catalog manifest** (`catalog.manifest` in --state-dir): the set of
// file-backed databases currently ATTACHed, one entry per database with
// its name, source path, version counter and content fingerprint.
// Rewritten atomically after every successful ATTACH / DETACH / RELOAD;
// replayed by QrelServer::RecoverState() after a restart, which
// re-attaches each entry and verifies the reloaded content fingerprint
// against the recorded one (drift means the file changed while the
// server was down — the database is excluded from serving rather than
// silently serving different data under a cached fingerprint).
//
// **Idempotency journal** (`k-<key>.idem` next to the checkpoints — the
// validated key grammar is filename-safe, so the key itself is embedded
// and distinct keys can never share one journal file): one
// tiny record per admitted request that carried an idempotency key,
// written before the work starts and unlinked when the response is
// produced. A record that survives a crash marks a request whose client
// will retry; the retry finds the request's checkpoint (keyed by the
// recorded flight key) and resumes instead of recomputing.
//
// Encoding canonicality: both Decode functions accept exactly the bytes
// their Encode counterparts produce — entries must be strictly sorted,
// the container fingerprint must match the recomputed digest, and the
// container's work counter must be zero. fuzz_parse_snapshot exploits
// this: any container the decoder accepts must re-encode byte-identically.

#ifndef QREL_NET_MANIFEST_H_
#define QREL_NET_MANIFEST_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "qrel/util/snapshot.h"
#include "qrel/util/status.h"

namespace qrel {

// Container `kind` strings (see util/snapshot.h on kind-based keying).
inline constexpr char kCatalogManifestKind[] = "net.catalog.manifest.v1";
inline constexpr char kIdempotencyJournalKind[] = "net.idem.journal.v1";

// More databases than any deployment attaches; a count field conjured by
// corruption past this is rejected instead of driving an allocation.
inline constexpr uint32_t kMaxManifestEntries = 4096;

// One ATTACHed file-backed database.
struct ManifestEntry {
  std::string name;
  std::string source_path;
  uint64_t version = 0;
  uint64_t fingerprint = 0;  // UnreliableDatabase::ContentFingerprint

  bool operator==(const ManifestEntry&) const = default;
};

struct CatalogManifest {
  // Strictly sorted by name (the canonical order; Decode rejects others).
  std::vector<ManifestEntry> entries;

  bool operator==(const CatalogManifest&) const = default;
};

// Digest over every entry field; stored as the container fingerprint and
// re-verified on decode, a second integrity check on top of the
// container checksum.
uint64_t ManifestFingerprint(const CatalogManifest& manifest);

SnapshotData EncodeManifest(const CatalogManifest& manifest);

// Typed failures: kInvalidArgument for a container of a different kind
// or an entry violating the name/path grammar; kDataLoss for truncation,
// bad counts, unsorted entries, a fingerprint mismatch, or a nonzero
// work counter.
StatusOr<CatalogManifest> DecodeManifest(const SnapshotData& data);

// Atomic write / validated read through the snapshot container file I/O
// (and therefore through the injectable filesystem, util/vfs.h).
Status WriteManifestFile(const std::string& path,
                         const CatalogManifest& manifest);
// kNotFound when no manifest exists (a fresh state dir, not an error).
StatusOr<CatalogManifest> ReadManifestFile(const std::string& path);

// One journaled admitted request.
struct IdempotencyRecord {
  std::string key;            // client-chosen, [A-Za-z0-9_.-]{1,64}
  uint64_t flight_key = 0;    // keys the request's checkpoint file
  uint64_t store_key = 0;     // keys its result-cache entry
  uint64_t db_fingerprint = 0;

  bool operator==(const IdempotencyRecord&) const = default;
};

uint64_t IdempotencyFingerprint(const IdempotencyRecord& record);
SnapshotData EncodeIdempotencyRecord(const IdempotencyRecord& record);
StatusOr<IdempotencyRecord> DecodeIdempotencyRecord(const SnapshotData& data);

Status WriteIdempotencyFile(const std::string& path,
                            const IdempotencyRecord& record);
StatusOr<IdempotencyRecord> ReadIdempotencyFile(const std::string& path);

// True for a well-formed client idempotency key: same identifier grammar
// as database names, so keys embed safely in filenames and responses.
bool ValidIdempotencyKey(std::string_view key);

}  // namespace qrel

#endif  // QREL_NET_MANIFEST_H_
