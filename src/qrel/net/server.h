// qrel_server core: a long-lived, overload-safe query-reliability service.
//
// One QrelServer serves many named databases from a DbCatalog
// (net/catalog.h) through a fixed-size worker pool behind a bounded
// request queue. The robustness layers, outermost first:
//
//  - **Per-tenant isolation.** Every QUERY carries a tenant identity
//    (`tenant=`, defaulting to "default"). Tenants are admitted through a
//    token bucket (`tenant_rate_per_sec`/`tenant_burst`), capped on
//    outstanding work (`tenant_work_quota`), and shed *fairly*: when the
//    queue is full, the incoming request displaces the most recently
//    queued job of the tenant hogging the queue — but only if that hog
//    has strictly more queued work than the incomer, so one tenant
//    saturating its bucket can never shed another tenant's traffic.
//    STATS reports per-tenant counters.
//
//  - **Admission control.** Every QUERY is Explain'd first (static
//    analysis only — never charges a budget): analyzer errors come back
//    as INVALID_ARGUMENT, and a request whose static cost estimate
//    (world count for exact plans, answer space / grounding size for the
//    others, per the paper's Thm 4.2 / Cor 5.5 complexity map) exceeds
//    `max_admission_cost` is rejected with a typed RESOURCE_EXHAUSTED
//    before any work happens. Admitted queries get a per-request
//    RunContext whose work budget is clipped by both `max_request_work`
//    and the server-wide outstanding-work quota.
//
//  - **Version pinning.** A QUERY resolves its database once, at
//    admission, and carries the pinned immutable DbVersion through the
//    queue, the engine run, and the response — a concurrent RELOAD or
//    DETACH can never change what an in-flight request computes. The
//    response reports db/db_version/db_fingerprint so clients can prove
//    which snapshot answered.
//
//  - **Overload shedding.** When the queue is full (and fair displacement
//    does not apply), a quota is saturated, or the server is draining,
//    the request is shed immediately with a typed UNAVAILABLE carrying a
//    Retry-After hint estimated from the observed queue drain rate
//    (net/retry.h) — the queue never grows unboundedly and a shed costs
//    O(1).
//
//  - **Graceful degradation.** A request dequeued while the queue depth
//    is at or above `pressure_watermark` steps down the engine's
//    degradation ladder up front: coarser (epsilon, delta) targets and a
//    fixed sample count instead of the theorem-derived plan. The response
//    reports the achieved (epsilon, delta) and `pressure=1`. Mid-run
//    budget trips additionally degrade exactly as in batch mode
//    (EngineOptions::degrade_on_budget).
//
//  - **Memoizing result cache** (net/result_cache.h) keyed by PR-4
//    content fingerprints and tagged with the database fingerprint, with
//    single-flight deduplication so a stampede of identical queries
//    computes once and consumes one queue slot. DETACH and a
//    content-changing RELOAD retire the displaced fingerprint's entries
//    so dead versions cannot pin memory.
//
//  - **Graceful drain.** BeginDrain() stops admission (new queries shed
//    with UNAVAILABLE "draining"); Drain() waits `drain_grace_ms` for
//    in-flight work, then requests cooperative cancellation on whatever
//    remains — with a checkpoint_dir configured, each cancelled run
//    flushes a final PR-3 checkpoint at its last safe point, so an
//    identical query after restart resumes instead of recomputing.
//    DETACH is the same protocol scoped to one database: queued work for
//    it fails typed, in-flight work gets the grace period then
//    cancellation, and only then is the entry dropped and its cache tag
//    retired.
//
//  - **Fault sites** (util/fault_injection.h) at the accept, frame-read,
//    frame-write, dispatch and worker boundaries plus every catalog
//    staging stage (net.catalog.*), so the chaos suite can kill the
//    server at any network or admin-plane edge and assert clients get
//    typed errors, never hangs, torn responses, or a half-swapped
//    database.
//
// Thread model: the engine's Run/Explain are const and share no mutable
// state, so worker threads call them concurrently on pinned DbVersions;
// every request gets its own RunContext (and Checkpointer), which are
// single-thread objects apart from the cancellation flag. Handle() is the
// transport-independent entry point — the TCP layer and the in-process
// tests/bench drive the same code path.

#ifndef QREL_NET_SERVER_H_
#define QREL_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <list>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "qrel/engine/engine.h"
#include "qrel/net/catalog.h"
#include "qrel/net/manifest.h"
#include "qrel/net/protocol.h"
#include "qrel/net/result_cache.h"
#include "qrel/net/retry.h"
#include "qrel/util/mutex.h"
#include "qrel/util/status.h"

namespace qrel {

struct ServerOptions {
  // Worker pool and queue.
  int workers = 2;
  size_t queue_capacity = 8;

  // The catalog name the engine-taking constructor attaches its database
  // under, and the database a QUERY with no db= option routes to.
  std::string default_db = "default";

  // Admission control.
  // Ceiling on the static cost estimate of an admitted query: predicted
  // world count for exact plans, answer space for the quantifier-free
  // rung, grounding size for the sampling rungs. Saturating compare, so
  // infinity always rejects.
  double max_admission_cost = 1e12;
  // Per-request work budget when the client does not set max_work.
  uint64_t default_max_work = uint64_t{1} << 20;
  // Hard clip on any per-request budget, client-requested or default.
  uint64_t max_request_work = uint64_t{1} << 22;
  // Server-wide cap on the sum of in-flight request budgets. A request
  // that cannot reserve its budget is shed with UNAVAILABLE.
  uint64_t work_quota = uint64_t{1} << 23;
  // Per-request wall-clock deadline when the client does not set
  // timeout_ms; 0 means none.
  uint64_t default_timeout_ms = 0;

  // Per-tenant isolation. Rate 0 disables the token bucket (every tenant
  // unlimited); quota 0 leaves per-tenant outstanding work uncapped.
  // Queue-fairness displacement is always on: it needs no configuration
  // and is inert while a single tenant uses the server.
  uint64_t tenant_rate_per_sec = 0;
  uint64_t tenant_burst = 8;
  uint64_t tenant_work_quota = 0;

  // Graceful degradation: queue depth at dequeue time at or above which a
  // request steps down to the coarse targets below. The default never
  // triggers.
  size_t pressure_watermark = SIZE_MAX;
  double pressure_epsilon = 0.1;
  double pressure_delta = 0.1;
  uint64_t pressure_fixed_samples = 256;

  // Result cache entries (0 disables storing; single-flight stays on).
  size_t cache_capacity = 256;

  // Retry-After hints: before the first completed job the hint is
  // retry_after_base_ms scaled by queue depth; after that it is the
  // EWMA service time times the queue position (net/retry.h), clamped
  // to [retry_after_min_ms, retry_after_max_ms].
  uint64_t retry_after_base_ms = 100;
  uint64_t retry_after_min_ms = 25;
  uint64_t retry_after_max_ms = 5000;

  // How long Drain() — and a DETACH draining one database — waits for
  // in-flight work before requesting cooperative cancellation.
  uint64_t drain_grace_ms = 2000;

  // When non-empty, every admitted query checkpoints its progress to
  // "<dir>/q<flight-key>.snap" (util/snapshot.h) at this interval, resumes
  // from a leftover snapshot of the identical request (including its
  // timeout/max_work envelope — single-flight serializes each flight key,
  // so one writer owns each path), and deletes the file on success. A
  // corrupt leftover is deleted and counted, not fatal: a server must not
  // make a query permanently unanswerable.
  std::string checkpoint_dir;
  uint64_t checkpoint_interval_ms = 250;

  // Durable server state (crash-restart recovery). When non-empty:
  //  - the set of file-backed ATTACHed databases persists as an atomic,
  //    checksummed manifest ("<dir>/catalog.manifest", net/manifest.h)
  //    rewritten after every successful ATTACH / DETACH / RELOAD;
  //  - admitted QUERYs carrying an idem= key journal the key next to
  //    their checkpoint ("<dir>/k-<key>.idem") so a post-crash retry
  //    resumes from the checkpoint instead of recomputing;
  //  - RecoverState() replays all of it after a restart and sweeps the
  //    directory for a crashed writer's leftovers.
  // checkpoint_dir defaults into state_dir when unset, so one flag turns
  // on the whole durability story.
  std::string state_dir;

  // Permits the FAULT wire verb (arm a fault-injection site remotely,
  // including the crash-after-vfs.* SIGKILL sites). Off by default:
  // this is a drill-harness hook, never a production feature.
  bool enable_fault_verb = false;

  // Transport.
  int max_connections = 64;
  // Idle-connection read timeout; a connection silent this long is closed.
  uint64_t connection_idle_timeout_ms = 30000;
  // Bind to all interfaces instead of loopback only.
  bool listen_any = false;
};

// Monotonic counters; every field is written with relaxed atomics and read
// via stats_snapshot().
struct ServerStatsSnapshot {
  uint64_t requests_total = 0;
  uint64_t queries = 0;
  uint64_t explains = 0;
  uint64_t admitted = 0;
  uint64_t completed_ok = 0;
  uint64_t completed_error = 0;
  uint64_t rejected_invalid = 0;
  uint64_t rejected_cost = 0;
  uint64_t shed_queue_full = 0;
  uint64_t shed_quota = 0;
  uint64_t shed_draining = 0;
  uint64_t shed_tenant_rate = 0;
  uint64_t shed_tenant_quota = 0;
  uint64_t shed_displaced = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_shared = 0;
  uint64_t pressure_degraded = 0;
  uint64_t budget_degraded = 0;
  uint64_t drain_cancelled = 0;
  uint64_t checkpoint_resumes = 0;
  uint64_t checkpoint_corrupt = 0;
  uint64_t attaches = 0;
  uint64_t detaches = 0;
  uint64_t reloads = 0;
  uint64_t reload_failures = 0;
  uint64_t connections_accepted = 0;
  uint64_t connections_rejected = 0;
  uint64_t net_faults = 0;
  // Durability (state_dir) counters.
  uint64_t manifest_writes = 0;
  uint64_t manifest_write_failures = 0;
  uint64_t dbs_recovered = 0;
  uint64_t dbs_recovery_failed = 0;
  uint64_t gc_removed = 0;
  uint64_t idem_journaled = 0;
  uint64_t idem_journal_failures = 0;
  uint64_t idem_recovered = 0;
};

// What RecoverState() found and did; every field is observable so the
// startup banner and the crash tests can assert recovery precisely.
struct RecoveryReport {
  bool manifest_found = false;
  // The manifest existed but failed to decode. The server still starts
  // (serving whatever else recovers); the corrupt file is left in place
  // for forensics and is atomically replaced by the next admin op.
  bool manifest_corrupt = false;
  size_t reattached = 0;       // manifest entries serving again
  size_t skipped_existing = 0; // manifest entries already attached
  // "name: reason" per manifest entry that could not be recovered —
  // missing file, load failure, or content-fingerprint drift. A drifted
  // database is *excluded* (serve the last-good subset) rather than
  // silently served under a stale fingerprint.
  std::vector<std::string> failures;
  size_t gc_removed_temp = 0;     // orphaned *.tmp.<pid>.<seq> of dead writers
  size_t gc_removed_corrupt = 0;  // undecodable checkpoint leftovers
  size_t journal_recovered = 0;   // idempotency keys loaded for resume
  size_t journal_corrupt = 0;     // undecodable journal records removed
};

// One tenant's accounting snapshot (STATS reports these per tenant).
struct TenantStatsSnapshot {
  std::string name;
  uint64_t admitted = 0;
  uint64_t completed = 0;
  uint64_t shed_rate = 0;
  uint64_t shed_quota = 0;
  uint64_t displaced = 0;
  uint64_t outstanding_work = 0;
  uint64_t queued = 0;
};

class QrelServer {
 public:
  // Spawns the worker pool immediately; the catalog starts empty —
  // attach databases via catalog() or the ATTACH verb. The destructor
  // runs Shutdown().
  explicit QrelServer(ServerOptions options);
  // Convenience: attaches `engine`'s database under options.default_db,
  // preserving the one-engine construction the earlier PRs used.
  QrelServer(ReliabilityEngine engine, ServerOptions options);
  ~QrelServer();

  QrelServer(const QrelServer&) = delete;
  QrelServer& operator=(const QrelServer&) = delete;

  // The transport-independent request lifecycle: admission, shedding,
  // cache, queue, execution. Blocks until the response is ready (HEALTH /
  // STATS / DRAIN / DBLIST / rejections return without touching the
  // queue; ATTACH/RELOAD stage off-path; DETACH drains its database).
  Response Handle(const Request& request);
  // ParseRequest + Handle + SerializeResponse; a parse failure becomes a
  // typed INVALID_ARGUMENT response payload.
  std::string HandlePayload(std::string_view payload);

  // The database catalog. Thread-safe; tests and embedding binaries
  // attach databases directly, the wire plane goes through ATTACH et al.
  // Prefer Handle({kDetach, ...}) over raw catalog detach calls: the
  // server's detach path is what drains pinned work and retires cache
  // tags.
  DbCatalog& catalog() { return catalog_; }
  const DbCatalog& catalog() const { return catalog_; }

  // Replays durable state from options.state_dir (no-op without one):
  // sweeps orphaned temp files and corrupt leftovers, loads surviving
  // idempotency journal records, and re-attaches every manifest database
  // whose file still exists and still fingerprints to the recorded
  // content. Never refuses to start: a missing file, drifted content, or
  // corrupt manifest costs that entry (or the whole manifest), not the
  // process. Call once after construction — before serving and before
  // attaching command-line databases, so a startup ATTACH cannot
  // overwrite the manifest before it is replayed.
  RecoveryReport RecoverState();

  // Stops admission: every subsequent QUERY is shed with UNAVAILABLE.
  // HEALTH/STATS stay available so orchestration can watch the drain.
  void BeginDrain();
  bool draining() const {
    return draining_.load(std::memory_order_acquire);
  }
  // BeginDrain + wait for the queue and in-flight work: up to
  // drain_grace_ms cooperatively, then cancels the stragglers and waits
  // for them to surface. On return no request is executing.
  void Drain();
  // Drain + stop the worker pool and the TCP listener. Idempotent.
  void Shutdown();

  // TCP transport. Listen binds (port 0 = ephemeral, see port());
  // ServeInBackground spawns the accept loop. Connections are one thread
  // each, framed per net/protocol.h.
  Status Listen(int port);
  Status ServeInBackground(int port);
  int port() const { return port_; }

  size_t queue_depth() const;
  size_t inflight() const {
    return inflight_.load(std::memory_order_acquire);
  }
  // Finished connection threads not yet joined. The accept loop reaps
  // these every cycle, so the value is transiently small on a serving
  // server and zero once all connections retire (test/diagnostic hook;
  // the old behavior — one unjoined thread per connection ever accepted —
  // leaked stacks for the server's whole lifetime).
  size_t unreaped_connection_threads() const;
  ServerStatsSnapshot stats_snapshot() const;
  std::vector<TenantStatsSnapshot> tenant_stats() const;
  const ServerOptions& options() const { return options_; }

 private:
  struct Job;
  struct Stats;
  struct TenantState;

  Response HandleQuery(const Request& request);
  Response HandleExplain(const Request& request);
  Response HandleHealth() const;
  Response HandleStats() const;
  Response HandleAttach(const Request& request);
  Response HandleDetach(const Request& request);
  Response HandleReload(const Request& request);
  Response HandleDblist() const;
  Response HandleFault(const Request& request);

  // Durable-state paths ("" when state_dir is unset).
  std::string ManifestPath() const;
  std::string IdempotencyPath(const std::string& key) const;

  // Rewrites the catalog manifest from the current catalog (file-backed,
  // non-draining entries only). Called after every successful admin
  // mutation; failures are counted, never fatal to the mutation itself
  // (the catalog already changed — the next successful write catches up).
  Status PersistManifest();

  // Resolves the request's db= (default_db when absent) to a pinned
  // version; the error is the typed response status.
  StatusOr<std::shared_ptr<const DbVersion>> ResolveDb(
      const Request& request) const;

  // Token-bucket admission for `tenant`. OK admits (and charges one
  // token); UNAVAILABLE carries the refill-based retry hint through
  // *retry_hint_ms.
  Status AdmitTenant(const std::string& tenant, uint64_t* retry_hint_ms);

  // Admission: plan + cost ceiling against the pinned version. Returns
  // the plan through *plan on success; a non-OK status is the typed
  // rejection.
  Status Admit(const Request& request, const DbVersion& db, EnginePlan* plan,
               double* cost);

  // Leader path under the cache: reserve quotas, enqueue (displacing a
  // queue hog if fairness allows), wait, release.
  CachedResult EnqueueAndRun(const Request& request,
                             std::shared_ptr<const DbVersion> db,
                             const std::string& tenant);

  void WorkerLoop();
  CachedResult ExecuteQuery(const Request& request, const DbVersion& db,
                            uint64_t budget, bool pressured);

  // Completes `job` with `result` and releases its server and tenant
  // accounting. The job must still be queued (not yet claimed by a
  // worker).
  void FailQueuedJobLocked(const std::shared_ptr<Job>& job,
                           CachedResult result) QREL_REQUIRES(mutex_);

  // Wait predicates for Drain/DETACH, factored out so the capability
  // analysis checks their guarded reads against the held lock.
  bool IdleLocked() const QREL_REQUIRES(mutex_);
  bool DbIdleLocked(uint64_t fingerprint) const QREL_REQUIRES(mutex_);

  uint64_t RetryAfterHintMs() const;
  uint64_t StoreKey(const Request& request, const DbVersion& db) const;
  uint64_t FlightKey(const Request& request, uint64_t store_key) const;

  // One live connection: its socket and the thread serving it. Entries
  // live in a std::list so the serving thread can erase itself via a
  // stable iterator.
  struct Connection {
    int fd = -1;
    std::thread thread;
  };

  void AcceptLoop();
  void ConnectionLoop(std::list<Connection>::iterator conn);
  // Joins every thread on the reaped list (threads that finished their
  // connection and parked their own handle there — a thread cannot join
  // itself). Called by the accept loop each cycle and by Shutdown.
  void ReapConnectionThreads();

  ServerOptions options_;
  DbCatalog catalog_;

  std::unique_ptr<Stats> stats_;
  ResultCache cache_;
  RetryAfterEstimator retry_estimator_;

  // A worker registered while running a job: its cancellation handle and
  // the fingerprint of the version it is pinned to, so DETACH can cancel
  // only its own database's work.
  struct ActiveRun {
    RunContext* ctx = nullptr;
    uint64_t db_fingerprint = 0;
  };

  mutable Mutex mutex_{LockRank::kServerCore};
  CondVar queue_cv_;  // workers wait for jobs
  CondVar idle_cv_;   // Drain/DETACH wait for completions
  std::deque<std::shared_ptr<Job>> queue_ QREL_GUARDED_BY(mutex_);
  std::vector<ActiveRun> active_runs_ QREL_GUARDED_BY(mutex_);
  // fingerprint -> running jobs
  std::map<uint64_t, size_t> inflight_by_db_ QREL_GUARDED_BY(mutex_);
  uint64_t quota_outstanding_ QREL_GUARDED_BY(mutex_) = 0;
  std::map<std::string, TenantState> tenants_ QREL_GUARDED_BY(mutex_);
  // Idempotency keys whose journal record survived a crash: the request
  // was admitted but its response never produced. A retry of the key
  // resumes from its checkpoint and reports recovered=1 — but only when
  // the journaled flight/store keys and db fingerprint match the retry,
  // so a key reused for a different query cannot masquerade as resumed.
  // Entries are consumed on first retry.
  std::map<std::string, IdempotencyRecord> recovered_keys_
      QREL_GUARDED_BY(mutex_);
  // Serializes PersistManifest across concurrent admin verbs
  // (ATTACH/DETACH/RELOAD run on independent connection threads). Held
  // across the catalog snapshot *and* the manifest file write — the two
  // together must be atomic or a slower writer can publish a stale
  // catalog state over a newer one. Never taken together with mutex_
  // (ranked kServerManifest < kCatalog: the only lock it nests with is
  // the catalog's, inside List()).
  Mutex manifest_mutex_{LockRank::kServerManifest};
  std::vector<std::thread> workers_;
  // workers exit when queue drains
  bool stopping_ QREL_GUARDED_BY(mutex_) = false;
  // fail queued jobs without running them
  bool drain_cancel_ QREL_GUARDED_BY(mutex_) = false;

  std::atomic<bool> draining_{false};
  std::atomic<size_t> inflight_{0};
  std::atomic<bool> shutdown_done_{false};

  // Transport state. A connection retires by moving its thread handle
  // onto reaped_conn_threads_ and erasing its conns_ entry *before*
  // closing its fd — so conns_ never lists a closed (reusable) fd number,
  // and Shutdown's ::shutdown() sweep can never hit an unrelated
  // descriptor.
  int listen_fd_ = -1;
  int port_ = 0;
  std::thread accept_thread_;
  mutable Mutex conn_mutex_{LockRank::kServerConn};
  CondVar conn_cv_;  // signalled when a connection retires
  std::list<Connection> conns_ QREL_GUARDED_BY(conn_mutex_);
  std::vector<std::thread> reaped_conn_threads_ QREL_GUARDED_BY(conn_mutex_);
  std::atomic<int> live_connections_{0};
  std::atomic<bool> stop_accepting_{false};
};

}  // namespace qrel

#endif  // QREL_NET_SERVER_H_
