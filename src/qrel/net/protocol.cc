#include "qrel/net/protocol.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace qrel {

namespace {

// One options-line `key=value`; returns false when `line` has no '='.
bool SplitKeyValue(std::string_view line, std::string_view* key,
                   std::string_view* value) {
  size_t eq = line.find('=');
  if (eq == std::string_view::npos) {
    return false;
  }
  *key = line.substr(0, eq);
  *value = line.substr(eq + 1);
  return true;
}

Status ParseU64(std::string_view key, std::string_view value, uint64_t* out) {
  if (value.empty()) {
    return Status::InvalidArgument(std::string(key) + " needs a value");
  }
  uint64_t result = 0;
  for (char c : value) {
    if (!std::isdigit(static_cast<unsigned char>(c))) {
      return Status::InvalidArgument(std::string(key) +
                                     " needs a non-negative integer, got \"" +
                                     std::string(value) + "\"");
    }
    uint64_t digit = static_cast<uint64_t>(c - '0');
    if (result > (UINT64_MAX - digit) / 10) {
      return Status::InvalidArgument(std::string(key) + " overflows");
    }
    result = result * 10 + digit;
  }
  *out = result;
  return Status::Ok();
}

Status ParseDoubleValue(std::string_view key, std::string_view value,
                        double* out) {
  std::string text(value);
  char* end = nullptr;
  double result = std::strtod(text.c_str(), &end);
  if (text.empty() || end != text.c_str() + text.size()) {
    return Status::InvalidArgument(std::string(key) +
                                   " needs a number, got \"" + text + "\"");
  }
  *out = result;
  return Status::Ok();
}

// Splits `payload` on '\n', dropping one trailing empty line (payloads may
// or may not end with a newline).
std::vector<std::string_view> SplitLines(std::string_view payload) {
  std::vector<std::string_view> lines;
  size_t start = 0;
  while (start <= payload.size()) {
    size_t nl = payload.find('\n', start);
    if (nl == std::string_view::npos) {
      lines.push_back(payload.substr(start));
      break;
    }
    lines.push_back(payload.substr(start, nl - start));
    start = nl + 1;
  }
  if (!lines.empty() && lines.back().empty()) {
    lines.pop_back();
  }
  return lines;
}

// Newlines are the protocol's field separator; a value that contains one
// (an engine message quoting the query, say) is flattened to spaces.
std::string FlattenValue(std::string_view value) {
  std::string result(value);
  for (char& c : result) {
    if (c == '\n' || c == '\r') {
      c = ' ';
    }
  }
  return result;
}

// Error messages echo client input (unknown verbs, malformed options), so
// an uncapped message would let a max-size request inflate the response
// past the frame limit. Flatten and cap at kMaxErrorMessageBytes.
std::string CapErrorMessage(std::string_view message) {
  if (message.size() <= kMaxErrorMessageBytes) {
    return FlattenValue(message);
  }
  std::string result =
      FlattenValue(message.substr(0, kMaxErrorMessageBytes));
  result += "...";
  return result;
}

}  // namespace

// ---------------------------------------------------------------------------
// Wire table.

const char* WireErrorToken(StatusCode code) {
  switch (code) {
#define QREL_NET_WIRE_CASE(enumerator, token, retryable) \
  case StatusCode::enumerator:                           \
    return token;
    QREL_NET_WIRE_STATUS_TABLE(QREL_NET_WIRE_CASE)
#undef QREL_NET_WIRE_CASE
  }
  return "INTERNAL";
}

bool WireErrorRetryable(StatusCode code) {
  switch (code) {
#define QREL_NET_WIRE_CASE(enumerator, token, retryable) \
  case StatusCode::enumerator:                           \
    return retryable;
    QREL_NET_WIRE_STATUS_TABLE(QREL_NET_WIRE_CASE)
#undef QREL_NET_WIRE_CASE
  }
  return false;
}

std::optional<StatusCode> StatusCodeFromWireToken(std::string_view token) {
#define QREL_NET_WIRE_CASE(enumerator, spelling, retryable) \
  if (token == spelling) {                                  \
    return StatusCode::enumerator;                          \
  }
  QREL_NET_WIRE_STATUS_TABLE(QREL_NET_WIRE_CASE)
#undef QREL_NET_WIRE_CASE
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Framing.

std::string EncodeFrame(std::string_view payload) {
  // Truncate rather than abort: response payloads can embed client input
  // (error echoes, the simplified query in EXPLAIN), so "too big" must
  // never be fatal. Cut at the last '\n' that fits so the remaining
  // payload is still whole lines; a 1 MiB run with no newline at all is
  // cut hard — still a decodable frame.
  if (payload.size() > kMaxFramePayload) {
    size_t cut = payload.rfind('\n', kMaxFramePayload - 1);
    payload = payload.substr(
        0, cut == std::string_view::npos ? kMaxFramePayload : cut + 1);
  }
  std::string frame = std::to_string(payload.size());
  frame += '\n';
  frame += payload;
  return frame;
}

Status DecodeFrame(std::string_view buffer, size_t* consumed,
                   std::string* payload) {
  *consumed = 0;
  payload->clear();
  // The length prefix of a max-size payload is 7 digits; anything longer
  // without a newline is malformed, not merely incomplete.
  size_t nl = buffer.find('\n');
  if (nl == std::string_view::npos) {
    if (buffer.size() > 8) {
      return Status::InvalidArgument("frame length prefix is not a line");
    }
    return Status::Ok();  // incomplete prefix
  }
  std::string_view digits = buffer.substr(0, nl);
  if (digits.empty() || digits.size() > 7) {
    return Status::InvalidArgument("malformed frame length prefix");
  }
  uint64_t length = 0;
  QREL_RETURN_IF_ERROR(ParseU64("frame length", digits, &length));
  if (length > kMaxFramePayload) {
    return Status::InvalidArgument("frame payload exceeds " +
                                   std::to_string(kMaxFramePayload) +
                                   " bytes");
  }
  size_t total = nl + 1 + static_cast<size_t>(length);
  if (buffer.size() < total) {
    return Status::Ok();  // incomplete payload
  }
  payload->assign(buffer.substr(nl + 1, static_cast<size_t>(length)));
  *consumed = total;
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Requests.

const char* RequestVerbName(RequestVerb verb) {
  switch (verb) {
    case RequestVerb::kQuery:
      return "QUERY";
    case RequestVerb::kExplain:
      return "EXPLAIN";
    case RequestVerb::kHealth:
      return "HEALTH";
    case RequestVerb::kStats:
      return "STATS";
    case RequestVerb::kDrain:
      return "DRAIN";
    case RequestVerb::kAttach:
      return "ATTACH";
    case RequestVerb::kDetach:
      return "DETACH";
    case RequestVerb::kReload:
      return "RELOAD";
    case RequestVerb::kDblist:
      return "DBLIST";
    case RequestVerb::kFault:
      return "FAULT";
  }
  return "HEALTH";
}

StatusOr<Request> ParseRequest(std::string_view payload) {
  std::vector<std::string_view> lines = SplitLines(payload);
  if (lines.empty()) {
    return Status::InvalidArgument("empty request");
  }
  Request request;
  std::string_view verb = lines[0];
  if (verb == "QUERY") {
    request.verb = RequestVerb::kQuery;
  } else if (verb == "EXPLAIN") {
    request.verb = RequestVerb::kExplain;
  } else if (verb == "HEALTH") {
    request.verb = RequestVerb::kHealth;
  } else if (verb == "STATS") {
    request.verb = RequestVerb::kStats;
  } else if (verb == "DRAIN") {
    request.verb = RequestVerb::kDrain;
  } else if (verb == "ATTACH") {
    request.verb = RequestVerb::kAttach;
  } else if (verb == "DETACH") {
    request.verb = RequestVerb::kDetach;
  } else if (verb == "RELOAD") {
    request.verb = RequestVerb::kReload;
  } else if (verb == "DBLIST") {
    request.verb = RequestVerb::kDblist;
  } else if (verb == "FAULT") {
    request.verb = RequestVerb::kFault;
  } else {
    return Status::InvalidArgument("unknown verb \"" + std::string(verb) +
                                   "\"");
  }
  // Admin verbs: a name line, and for ATTACH/RELOAD a path line.
  if (request.verb == RequestVerb::kAttach ||
      request.verb == RequestVerb::kDetach ||
      request.verb == RequestVerb::kReload) {
    if (lines.size() < 2 || lines[1].empty()) {
      return Status::InvalidArgument(std::string(verb) +
                                     " needs a database name on line 2");
    }
    request.target = std::string(lines[1]);
    bool takes_path = request.verb != RequestVerb::kDetach;
    size_t max_lines = takes_path ? 3 : 2;
    if (lines.size() > max_lines) {
      return Status::InvalidArgument(std::string(verb) +
                                     " has trailing lines");
    }
    if (lines.size() == 3) {
      if (lines[2].empty()) {
        return Status::InvalidArgument(std::string(verb) +
                                       " has an empty path on line 3");
      }
      request.path = std::string(lines[2]);
    }
    if (request.verb == RequestVerb::kAttach && request.path.empty()) {
      return Status::InvalidArgument("ATTACH needs a path on line 3");
    }
    return request;
  }
  if (request.verb == RequestVerb::kFault) {
    if (lines.size() < 2 || lines[1].empty()) {
      return Status::InvalidArgument(
          "FAULT needs a <site>[:<n>] spec on line 2");
    }
    if (lines.size() > 2) {
      return Status::InvalidArgument("FAULT has trailing lines");
    }
    request.target = std::string(lines[1]);
    return request;
  }
  bool has_query = request.verb == RequestVerb::kQuery ||
                   request.verb == RequestVerb::kExplain;
  if (!has_query) {
    if (lines.size() > 1) {
      return Status::InvalidArgument(std::string(verb) +
                                     " takes no arguments");
    }
    return request;
  }
  if (lines.size() < 2 || lines[1].empty()) {
    return Status::InvalidArgument(std::string(verb) +
                                   " needs a query on line 2");
  }
  request.query = std::string(lines[1]);
  for (size_t i = 2; i < lines.size(); ++i) {
    std::string_view key;
    std::string_view value;
    if (!SplitKeyValue(lines[i], &key, &value)) {
      return Status::InvalidArgument("malformed option line \"" +
                                     std::string(lines[i]) + "\"");
    }
    RequestOptions& opts = request.options;
    Status parsed = Status::Ok();
    if (key == "epsilon") {
      parsed = ParseDoubleValue(key, value, &opts.epsilon.emplace());
    } else if (key == "delta") {
      parsed = ParseDoubleValue(key, value, &opts.delta.emplace());
    } else if (key == "seed") {
      parsed = ParseU64(key, value, &opts.seed.emplace());
    } else if (key == "fixed_samples") {
      parsed = ParseU64(key, value, &opts.fixed_samples.emplace());
    } else if (key == "timeout_ms") {
      parsed = ParseU64(key, value, &opts.timeout_ms.emplace());
    } else if (key == "max_work") {
      parsed = ParseU64(key, value, &opts.max_work.emplace());
    } else if (key == "force_exact") {
      opts.force_exact = value == "1" || value == "true";
    } else if (key == "force_approx") {
      opts.force_approximate = value == "1" || value == "true";
    } else if (key == "db") {
      if (value.empty()) {
        return Status::InvalidArgument("db needs a value");
      }
      opts.db = std::string(value);
    } else if (key == "tenant") {
      if (value.empty()) {
        return Status::InvalidArgument("tenant needs a value");
      }
      opts.tenant = std::string(value);
    } else if (key == "idem") {
      if (value.empty()) {
        return Status::InvalidArgument("idem needs a value");
      }
      opts.idempotency_key = std::string(value);
    } else {
      return Status::InvalidArgument("unknown option \"" + std::string(key) +
                                     "\"");
    }
    QREL_RETURN_IF_ERROR(parsed);
  }
  return request;
}

std::string SerializeRequest(const Request& request) {
  std::string payload = RequestVerbName(request.verb);
  if (request.verb == RequestVerb::kAttach ||
      request.verb == RequestVerb::kDetach ||
      request.verb == RequestVerb::kReload ||
      request.verb == RequestVerb::kFault) {
    payload += '\n';
    payload += FlattenValue(request.target);
    payload += '\n';
    if (request.verb != RequestVerb::kDetach &&
        request.verb != RequestVerb::kFault && !request.path.empty()) {
      payload += FlattenValue(request.path);
      payload += '\n';
    }
    return payload;
  }
  if (request.verb != RequestVerb::kQuery &&
      request.verb != RequestVerb::kExplain) {
    payload += '\n';
    return payload;
  }
  payload += '\n';
  payload += FlattenValue(request.query);
  payload += '\n';
  const RequestOptions& opts = request.options;
  auto emit = [&payload](std::string_view key, const std::string& value) {
    payload += key;
    payload += '=';
    payload += value;
    payload += '\n';
  };
  char buffer[64];
  if (opts.epsilon.has_value()) {
    std::snprintf(buffer, sizeof(buffer), "%.17g", *opts.epsilon);
    emit("epsilon", buffer);
  }
  if (opts.delta.has_value()) {
    std::snprintf(buffer, sizeof(buffer), "%.17g", *opts.delta);
    emit("delta", buffer);
  }
  if (opts.seed.has_value()) {
    emit("seed", std::to_string(*opts.seed));
  }
  if (opts.fixed_samples.has_value()) {
    emit("fixed_samples", std::to_string(*opts.fixed_samples));
  }
  if (opts.timeout_ms.has_value()) {
    emit("timeout_ms", std::to_string(*opts.timeout_ms));
  }
  if (opts.max_work.has_value()) {
    emit("max_work", std::to_string(*opts.max_work));
  }
  if (opts.force_exact) {
    emit("force_exact", "1");
  }
  if (opts.force_approximate) {
    emit("force_approx", "1");
  }
  if (!opts.db.empty()) {
    emit("db", FlattenValue(opts.db));
  }
  if (!opts.tenant.empty()) {
    emit("tenant", FlattenValue(opts.tenant));
  }
  if (!opts.idempotency_key.empty()) {
    emit("idem", FlattenValue(opts.idempotency_key));
  }
  return payload;
}

// ---------------------------------------------------------------------------
// Responses.

std::optional<std::string> Response::Field(std::string_view key) const {
  for (const auto& [k, v] : fields) {
    if (k == key) {
      return v;
    }
  }
  return std::nullopt;
}

std::string SerializeResponse(const Response& response) {
  std::string payload;
  if (response.status.ok()) {
    payload = "OK\n";
  } else {
    payload = "ERR ";
    payload += WireErrorToken(response.status.code());
    payload += '\n';
    if (response.retry_after_ms.has_value()) {
      payload += "retry_after_ms=";
      payload += std::to_string(*response.retry_after_ms);
      payload += '\n';
    }
    if (!response.status.message().empty()) {
      payload += "message=";
      payload += CapErrorMessage(response.status.message());
      payload += '\n';
    }
  }
  for (const auto& [key, value] : response.fields) {
    payload += key;
    payload += '=';
    payload += FlattenValue(value);
    payload += '\n';
  }
  return payload;
}

StatusOr<Response> ParseResponse(std::string_view payload) {
  std::vector<std::string_view> lines = SplitLines(payload);
  if (lines.empty()) {
    return Status::InvalidArgument("empty response");
  }
  Response response;
  std::string_view head = lines[0];
  size_t body_start = 1;
  if (head == "OK") {
    response.status = Status::Ok();
  } else if (head.substr(0, 4) == "ERR ") {
    std::optional<StatusCode> code = StatusCodeFromWireToken(head.substr(4));
    if (!code.has_value() || *code == StatusCode::kOk) {
      return Status::InvalidArgument("unknown wire error code \"" +
                                     std::string(head.substr(4)) + "\"");
    }
    std::string message;
    std::optional<uint64_t> retry;
    for (size_t i = 1; i < lines.size(); ++i) {
      std::string_view key;
      std::string_view value;
      if (!SplitKeyValue(lines[i], &key, &value)) {
        return Status::InvalidArgument("malformed response line \"" +
                                       std::string(lines[i]) + "\"");
      }
      if (key == "retry_after_ms") {
        QREL_RETURN_IF_ERROR(ParseU64(key, value, &retry.emplace()));
      } else if (key == "message") {
        message = std::string(value);
      } else {
        response.fields.emplace_back(std::string(key), std::string(value));
      }
    }
    response.status = Status(*code, std::move(message));
    response.retry_after_ms = retry;
    return response;
  } else {
    return Status::InvalidArgument("malformed response status line \"" +
                                   std::string(head) + "\"");
  }
  for (size_t i = body_start; i < lines.size(); ++i) {
    std::string_view key;
    std::string_view value;
    if (!SplitKeyValue(lines[i], &key, &value)) {
      return Status::InvalidArgument("malformed response line \"" +
                                     std::string(lines[i]) + "\"");
    }
    response.fields.emplace_back(std::string(key), std::string(value));
  }
  return response;
}

Response ErrorResponse(const Status& status,
                       std::optional<uint64_t> retry_after_ms) {
  QREL_CHECK(!status.ok());
  Response response;
  response.status = status;
  if (WireErrorRetryable(status.code())) {
    response.retry_after_ms = retry_after_ms.value_or(0);
  }
  return response;
}

}  // namespace qrel
