#include "qrel/net/retry.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <random>
#include <thread>

namespace qrel {

// ---------------------------------------------------------------------------
// RetryAfterEstimator.

RetryAfterEstimator::RetryAfterEstimator(uint64_t fallback_base_ms,
                                         uint64_t min_ms, uint64_t max_ms,
                                         double alpha)
    : fallback_base_ms_(fallback_base_ms),
      min_ms_(std::min(min_ms, max_ms)),
      max_ms_(std::max(min_ms, max_ms)),
      alpha_(std::clamp(alpha, 0.01, 1.0)) {}

void RetryAfterEstimator::RecordServiceTimeMs(double ms) {
  if (!(ms >= 0.0) || !std::isfinite(ms)) {
    return;  // clock glitch; never poison the average
  }
  MutexLock lock(&mutex_);
  if (samples_ == 0) {
    ewma_ms_ = ms;
  } else {
    ewma_ms_ = alpha_ * ms + (1.0 - alpha_) * ewma_ms_;
  }
  ++samples_;
}

uint64_t RetryAfterEstimator::HintMs(size_t queue_depth,
                                     size_t workers) const {
  const double lanes = static_cast<double>(std::max<size_t>(workers, 1));
  MutexLock lock(&mutex_);
  if (samples_ == 0) {
    // Cold server: the PR 6 depth-scaled constant.
    const double base = static_cast<double>(fallback_base_ms_);
    return ClampMs(base * (1.0 + static_cast<double>(queue_depth) / lanes));
  }
  // The shed request would be (queue_depth + 1)-th in line; each worker
  // drains one job per ewma service time.
  return ClampMs(ewma_ms_ * (static_cast<double>(queue_depth) + 1.0) / lanes);
}

uint64_t RetryAfterEstimator::sample_count() const {
  MutexLock lock(&mutex_);
  return samples_;
}

uint64_t RetryAfterEstimator::ClampMs(double ms) const {
  if (!std::isfinite(ms)) {
    return max_ms_;
  }
  const double clamped = std::clamp(ms, static_cast<double>(min_ms_),
                                    static_cast<double>(max_ms_));
  return static_cast<uint64_t>(clamped);
}

// ---------------------------------------------------------------------------
// CallWithRetry.

namespace {

uint64_t DefaultJitter(uint64_t cap) {
  if (cap == 0) {
    return 0;
  }
  thread_local std::minstd_rand rng(std::random_device{}());
  return std::uniform_int_distribution<uint64_t>(0, cap)(rng);
}

void DefaultSleepMs(uint64_t ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

uint64_t DefaultNowMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

StatusOr<Response> CallWithRetry(
    const std::function<StatusOr<Response>()>& attempt,
    const RetryPolicy& policy) {
  const auto jitter = policy.jitter ? policy.jitter : DefaultJitter;
  const auto sleep_ms = policy.sleep_ms ? policy.sleep_ms : DefaultSleepMs;
  const auto now_ms = policy.now_ms ? policy.now_ms : DefaultNowMs;
  const int attempts = std::max(policy.max_attempts, 1);
  const uint64_t start = now_ms();

  double backoff = static_cast<double>(policy.initial_backoff_ms);
  StatusOr<Response> last = Status::Internal("retry loop never ran");
  for (int i = 0; i < attempts; ++i) {
    last = attempt();

    // Classify: transport errors arrive as a non-OK StatusOr; server-side
    // errors arrive as an OK StatusOr whose Response carries the status
    // (and possibly a Retry-After hint). Both retry on the same wire
    // table, so a connection refused during a restart and an UNAVAILABLE
    // shed behave identically.
    StatusCode code;
    std::optional<uint64_t> hint;
    if (last.ok()) {
      if (last.value().ok()) {
        return last;
      }
      code = last.value().status.code();
      hint = last.value().retry_after_ms;
    } else {
      code = last.status().code();
    }
    if (!WireErrorRetryable(code)) {
      return last;
    }
    if (i + 1 >= attempts) {
      break;
    }

    uint64_t wait = static_cast<uint64_t>(
        std::min(backoff, static_cast<double>(policy.max_backoff_ms)));
    if (hint.has_value()) {
      wait = std::max(wait, *hint);
    }
    wait += jitter(wait / 2);

    const uint64_t elapsed = now_ms() - start;
    if (policy.total_deadline_ms > 0 &&
        elapsed + wait >= policy.total_deadline_ms) {
      break;  // the wait would outlive the deadline: give up now
    }
    sleep_ms(wait);
    backoff *= std::max(policy.backoff_multiplier, 1.0);
  }
  return last;
}

}  // namespace qrel
