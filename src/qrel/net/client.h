// Blocking qrel protocol client.
//
// One QrelClient is one TCP connection speaking the framed protocol of
// net/protocol.h. Every transport failure surfaces as a *typed* Status —
// the mapping the chaos suite (tests/chaos_server_test.cc) pins down:
//
//   connection refused / reset         → kUnavailable
//   clean EOF before any response byte → kUnavailable (server shed or
//                                        dropped the connection whole;
//                                        safe to retry)
//   EOF mid-frame                      → kDataLoss (a torn response —
//                                        the framing makes this
//                                        detectable by construction)
//   receive timeout                    → kDeadlineExceeded
//   unparseable frame/response         → the parser's typed error
//
// A Call whose transport failed leaves the connection closed: the protocol
// has no resynchronization point, so the only safe recovery is a fresh
// connection. Not thread-safe; one client per thread.

#ifndef QREL_NET_CLIENT_H_
#define QREL_NET_CLIENT_H_

#include <cstdint>
#include <string>

#include "qrel/net/protocol.h"
#include "qrel/util/status.h"

namespace qrel {

class QrelClient {
 public:
  QrelClient() = default;
  ~QrelClient();

  QrelClient(const QrelClient&) = delete;
  QrelClient& operator=(const QrelClient&) = delete;

  // Connects to 127.0.0.1:`port`. `recv_timeout_ms` bounds each Call's
  // wait for a response (0 = wait forever).
  Status Connect(int port, uint64_t recv_timeout_ms = 0);
  void Close();
  bool connected() const { return fd_ >= 0; }

  // One request/response round trip. The returned Response may itself
  // carry an error status (the server's typed answer); a non-OK
  // StatusOr means the *transport* failed, per the table above.
  StatusOr<Response> Call(const Request& request);

  // Convenience wrappers around Call.
  StatusOr<Response> Query(const std::string& query,
                           const RequestOptions& options = {});
  StatusOr<Response> Explain(const std::string& query,
                             const RequestOptions& options = {});
  StatusOr<Response> Health();
  StatusOr<Response> Stats();
  StatusOr<Response> Drain();

 private:
  int fd_ = -1;
  std::string buffer_;  // bytes received beyond the last complete frame
};

}  // namespace qrel

#endif  // QREL_NET_CLIENT_H_
