// Blocking qrel protocol client.
//
// One QrelClient is one TCP connection speaking the framed protocol of
// net/protocol.h. Every transport failure surfaces as a *typed* Status —
// the mapping the chaos suite (tests/chaos_server_test.cc) pins down:
//
//   connection refused / reset         → kUnavailable
//   clean EOF before any response byte → kUnavailable (server shed or
//                                        dropped the connection whole;
//                                        safe to retry)
//   EOF mid-frame                      → kDataLoss (a torn response —
//                                        the framing makes this
//                                        detectable by construction)
//   receive timeout                    → kDeadlineExceeded
//   unparseable frame/response         → the parser's typed error
//
// A Call whose transport failed leaves the connection closed: the protocol
// has no resynchronization point, so the only safe recovery is a fresh
// connection. QueryWithRetry automates that recovery: it reconnects and
// retries with bounded exponential backoff, but only for errors the wire
// table (net/protocol.h) marks retryable, and it honors the server's
// Retry-After hint. Not thread-safe; one client per thread.

#ifndef QREL_NET_CLIENT_H_
#define QREL_NET_CLIENT_H_

#include <cstdint>
#include <string>

#include "qrel/net/protocol.h"
#include "qrel/net/retry.h"
#include "qrel/util/status.h"

namespace qrel {

class QrelClient {
 public:
  QrelClient() = default;
  ~QrelClient();

  QrelClient(const QrelClient&) = delete;
  QrelClient& operator=(const QrelClient&) = delete;

  // Connects to 127.0.0.1:`port`. `recv_timeout_ms` bounds each Call's
  // wait for a response (0 = wait forever).
  Status Connect(int port, uint64_t recv_timeout_ms = 0);
  void Close();
  bool connected() const { return fd_ >= 0; }

  // One request/response round trip. The returned Response may itself
  // carry an error status (the server's typed answer); a non-OK
  // StatusOr means the *transport* failed, per the table above.
  StatusOr<Response> Call(const Request& request);

  // Convenience wrappers around Call.
  StatusOr<Response> Query(const std::string& query,
                           const RequestOptions& options = {});
  StatusOr<Response> Explain(const std::string& query,
                             const RequestOptions& options = {});
  StatusOr<Response> Health();
  StatusOr<Response> Stats();
  StatusOr<Response> Drain();

  // The admin plane (net/catalog.h).
  StatusOr<Response> Attach(const std::string& name, const std::string& path);
  StatusOr<Response> Detach(const std::string& name);
  StatusOr<Response> Reload(const std::string& name,
                            const std::string& path = "");
  StatusOr<Response> DbList();

  // Arms a fault-injection site (`<site>[:<n>]`) on the server. Requires
  // the server to run with --enable-fault-verb; refused with
  // FAILED_PRECONDITION otherwise. Crash-drill plumbing only.
  StatusOr<Response> Fault(const std::string& spec);

  // Query with retry-on-overload. Each attempt reconnects first if the
  // previous one tore down the connection (using the Connect() port and
  // receive timeout). Retries follow `policy` — bounded exponential
  // backoff within a total deadline, waiting at least the server's
  // retry_after_ms hint — and fire only for codes the wire table marks
  // retryable (UNAVAILABLE, DEADLINE_EXCEEDED); a typed NOT_FOUND or
  // INVALID_ARGUMENT returns immediately. The policy's injectable
  // jitter/sleep/clock hooks make the schedule fully deterministic in
  // tests.
  StatusOr<Response> QueryWithRetry(const std::string& query,
                                    const RequestOptions& options = {},
                                    const RetryPolicy& policy = {});

 private:
  int fd_ = -1;
  int port_ = -1;                  // remembered for QueryWithRetry reconnects
  uint64_t recv_timeout_ms_ = 0;   // idem
  std::string buffer_;  // bytes received beyond the last complete frame
};

}  // namespace qrel

#endif  // QREL_NET_CLIENT_H_
