#include "qrel/net/catalog.h"

#include <optional>
#include <utility>

#include "qrel/prob/text_format.h"
#include "qrel/util/fault_injection.h"

namespace qrel {

namespace {

// The verify stage: a consistency walk over the staged database, run
// before anything is published. ParseUdb validates on the way in, but a
// reload adopts bytes from disk at an arbitrary moment — re-checking here
// means a staging bug or a torn write can never swap in an instance the
// engine would crash on.
Status VerifyStagedDatabase(const UnreliableDatabase& database) {
  if (database.universe_size() < 0) {
    return Status::DataLoss("staged database has a negative universe");
  }
  const ErrorModel& model = database.model();
  for (int id = 0; id < model.entry_count(); ++id) {
    Rational nu = database.EntryNuTrue(id);
    if (nu < Rational(0) || nu > Rational(1)) {
      return Status::DataLoss(
          "staged database entry " + std::to_string(id) +
          " has probability outside [0, 1]");
    }
  }
  return Status::Ok();
}

}  // namespace

DbVersion::DbVersion(std::string name_in, uint64_t version_in,
                     std::string source_path_in, ReliabilityEngine engine_in)
    : name(std::move(name_in)),
      version(version_in),
      source_path(std::move(source_path_in)),
      engine(std::move(engine_in)) {
  const UnreliableDatabase& database = engine.database();
  fingerprint = database.ContentFingerprint();
  universe_size = database.universe_size();
  fact_count = database.observed().FactCount();
  uncertain_atoms = database.UncertainEntries().size();
}

const char* DbStateName(DbState state) {
  switch (state) {
    case DbState::kServing:
      return "serving";
    case DbState::kReloading:
      return "reloading";
    case DbState::kDraining:
      return "draining";
  }
  return "serving";
}

bool DbCatalog::ValidName(std::string_view name) {
  if (name.empty() || name.size() > 64) {
    return false;
  }
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == '.' || c == '-';
    if (!ok) {
      return false;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Staging: everything that can fail, off the catalog lock.

StatusOr<std::shared_ptr<const DbVersion>> DbCatalog::Stage(
    const std::string& name, uint64_t version, const std::string& path,
    UnreliableDatabase* database) {
  // Stage 1: load. Reading and parsing the replacement bytes — the stage
  // most likely to fail in production (missing file, torn write, bad
  // edit) and the one that must never run under the lock.
  QREL_FAULT_SITE("net.catalog.load");
  std::optional<UnreliableDatabase> staged;
  if (database != nullptr) {
    staged.emplace(std::move(*database));
  } else {
    StatusOr<UnreliableDatabase> loaded = LoadUdbFile(path);
    if (!loaded.ok()) {
      return Status(loaded.status().code(),
                    "loading database \"" + name + "\" from " + path + ": " +
                        loaded.status().message());
    }
    staged.emplace(std::move(loaded).value());
  }

  // Stage 2: verify. A consistency walk over the staged instance.
  QREL_FAULT_SITE("net.catalog.verify");
  QREL_RETURN_IF_ERROR(VerifyStagedDatabase(*staged));

  // Stage 3: fingerprint + engine construction. The fingerprint keys the
  // result cache and every request checkpoint, so it must be computed
  // before the version becomes visible anywhere.
  QREL_FAULT_SITE("net.catalog.fingerprint");
  return std::make_shared<const DbVersion>(
      name, version, path, ReliabilityEngine(std::move(*staged)));
}

// ---------------------------------------------------------------------------
// Attach.

Status DbCatalog::Attach(const std::string& name, const std::string& path) {
  return AttachImpl(name, path, nullptr);
}

Status DbCatalog::AttachDatabase(const std::string& name,
                                 UnreliableDatabase database,
                                 std::string source_path) {
  return AttachImpl(name, source_path, &database);
}

Status DbCatalog::AttachImpl(const std::string& name, const std::string& path,
                             UnreliableDatabase* database) {
  if (!ValidName(name)) {
    return Status::InvalidArgument("invalid database name \"" + name + "\"");
  }
  QREL_FAULT_SITE("net.catalog.attach");
  {
    // Reserve the name before staging so two concurrent attaches of the
    // same name cannot both stage and race the insert.
    MutexLock lock(&mutex_);
    auto [it, inserted] = entries_.emplace(name, Entry{});
    if (!inserted) {
      return Status::FailedPrecondition("database \"" + name +
                                        "\" is already attached");
    }
    it->second.reloading = true;  // placeholder: staging in progress
  }
  StatusOr<std::shared_ptr<const DbVersion>> staged =
      Stage(name, /*version=*/1, path, database);
  MutexLock lock(&mutex_);
  auto it = entries_.find(name);
  if (!staged.ok()) {
    if (it != entries_.end() && it->second.current == nullptr) {
      entries_.erase(it);  // release the reservation
    }
    return staged.status();
  }
  it->second.current = std::move(staged).value();
  it->second.reloading = false;
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Reload.

StatusOr<ReloadOutcome> DbCatalog::Reload(const std::string& name,
                                          const std::string& path) {
  return ReloadImpl(name, path, nullptr);
}

StatusOr<ReloadOutcome> DbCatalog::ReloadDatabase(
    const std::string& name, UnreliableDatabase database) {
  return ReloadImpl(name, "", &database);
}

StatusOr<ReloadOutcome> DbCatalog::ReloadImpl(const std::string& name,
                                              const std::string& path,
                                              UnreliableDatabase* database) {
  // Claim the entry for reloading: concurrent reloads of one database
  // fail typed instead of racing the swap, and a draining entry cannot
  // be revived by a reload.
  std::shared_ptr<const DbVersion> old_version;
  std::string staged_path;
  {
    MutexLock lock(&mutex_);
    auto it = entries_.find(name);
    if (it == entries_.end() || it->second.current == nullptr) {
      return Status::NotFound("unknown database \"" + name + "\"");
    }
    if (it->second.draining) {
      return Status::Unavailable("database \"" + name + "\" is detaching");
    }
    if (it->second.reloading) {
      return Status::FailedPrecondition("database \"" + name +
                                        "\" is already reloading");
    }
    it->second.reloading = true;
    old_version = it->second.current;
    staged_path = path.empty() ? old_version->source_path : path;
  }
  // An entry attached from memory has no source path; a pathless reload
  // of it needs ReloadDatabase.
  auto fail = [&](Status status) -> StatusOr<ReloadOutcome> {
    MutexLock lock(&mutex_);
    auto it = entries_.find(name);
    if (it != entries_.end()) {
      it->second.reloading = false;  // old version keeps serving
    }
    return status;
  };
  if (database == nullptr && staged_path.empty()) {
    return fail(Status::InvalidArgument(
        "database \"" + name +
        "\" was attached from memory and has no source path; RELOAD needs "
        "an explicit path"));
  }
  StatusOr<std::shared_ptr<const DbVersion>> staged =
      Stage(name, old_version->version + 1, staged_path, database);
  if (!staged.ok()) {
    return fail(staged.status());
  }
  // Stage 4: the swap itself — the only stage under the lock, and the
  // last fault site: a failure here must behave like any other staging
  // failure (old version serving, entry back to serving state).
  Status swap_fault = QREL_FAULT_HIT("net.catalog.swap");
  if (!swap_fault.ok()) {
    return fail(swap_fault);
  }
  ReloadOutcome outcome;
  outcome.old_version = old_version;
  outcome.new_version = std::move(staged).value();
  outcome.changed =
      outcome.new_version->fingerprint != old_version->fingerprint;
  {
    MutexLock lock(&mutex_);
    auto it = entries_.find(name);
    if (it == entries_.end()) {
      // Detached underneath us (FinishDetach won the race): the staged
      // version is dropped, nothing was published.
      return Status::NotFound("database \"" + name +
                              "\" was detached during the reload");
    }
    it->second.current = outcome.new_version;
    it->second.reloading = false;
  }
  return outcome;
}

// ---------------------------------------------------------------------------
// Detach.

StatusOr<std::shared_ptr<const DbVersion>> DbCatalog::BeginDetach(
    const std::string& name) {
  QREL_FAULT_SITE("net.catalog.detach");
  MutexLock lock(&mutex_);
  auto it = entries_.find(name);
  if (it == entries_.end() || it->second.current == nullptr) {
    return Status::NotFound("unknown database \"" + name + "\"");
  }
  if (it->second.draining) {
    return Status::FailedPrecondition("database \"" + name +
                                      "\" is already detaching");
  }
  if (it->second.reloading) {
    return Status::FailedPrecondition("database \"" + name +
                                      "\" is reloading; retry the detach");
  }
  it->second.draining = true;
  return it->second.current;
}

void DbCatalog::FinishDetach(const std::string& name) {
  MutexLock lock(&mutex_);
  auto it = entries_.find(name);
  if (it != entries_.end() && it->second.draining) {
    entries_.erase(it);
  }
}

void DbCatalog::CancelDetach(const std::string& name) {
  MutexLock lock(&mutex_);
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    it->second.draining = false;
  }
}

// ---------------------------------------------------------------------------
// Read side.

StatusOr<std::shared_ptr<const DbVersion>> DbCatalog::Resolve(
    const std::string& name) const {
  MutexLock lock(&mutex_);
  auto it = entries_.find(name);
  if (it == entries_.end() || it->second.current == nullptr) {
    return Status::NotFound("unknown database \"" + name + "\"");
  }
  if (it->second.draining) {
    return Status::Unavailable("database \"" + name + "\" is detaching");
  }
  return it->second.current;
}

std::vector<DbInfo> DbCatalog::List() const {
  MutexLock lock(&mutex_);
  std::vector<DbInfo> infos;
  infos.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    if (entry.current == nullptr) {
      continue;  // attach still staging
    }
    DbInfo info;
    info.name = name;
    info.version = entry.current->version;
    info.fingerprint = entry.current->fingerprint;
    info.state = entry.draining    ? DbState::kDraining
                 : entry.reloading ? DbState::kReloading
                                   : DbState::kServing;
    info.source_path = entry.current->source_path;
    info.universe_size = entry.current->universe_size;
    info.fact_count = entry.current->fact_count;
    info.uncertain_atoms = entry.current->uncertain_atoms;
    infos.push_back(std::move(info));
  }
  return infos;
}

size_t DbCatalog::size() const {
  MutexLock lock(&mutex_);
  size_t count = 0;
  for (const auto& [name, entry] : entries_) {
    if (entry.current != nullptr) {
      ++count;
    }
  }
  return count;
}

}  // namespace qrel
