#include "qrel/net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <optional>

#include "qrel/util/fault_injection.h"
#include "qrel/util/snapshot.h"

namespace qrel {

namespace {

std::string FormatDouble(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

// Mixes an optional into a fingerprint unambiguously (presence bit first,
// so "unset" can never collide with a real value).
void MixOptional(Fingerprint* fp, const std::optional<uint64_t>& value) {
  fp->Mix(value.has_value() ? uint64_t{1} : uint64_t{0});
  fp->Mix(value.value_or(0));
}

// Sends every byte or reports failure; SIGPIPE is suppressed so a client
// that disappeared mid-write surfaces as an error, not a signal.
bool WriteAll(int fd, std::string_view data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

// Monotonic counters, written with relaxed atomics from every thread.
struct QrelServer::Stats {
  std::atomic<uint64_t> requests_total{0};
  std::atomic<uint64_t> queries{0};
  std::atomic<uint64_t> explains{0};
  std::atomic<uint64_t> admitted{0};
  std::atomic<uint64_t> completed_ok{0};
  std::atomic<uint64_t> completed_error{0};
  std::atomic<uint64_t> rejected_invalid{0};
  std::atomic<uint64_t> rejected_cost{0};
  std::atomic<uint64_t> shed_queue_full{0};
  std::atomic<uint64_t> shed_quota{0};
  std::atomic<uint64_t> shed_draining{0};
  std::atomic<uint64_t> cache_hits{0};
  std::atomic<uint64_t> cache_misses{0};
  std::atomic<uint64_t> cache_shared{0};
  std::atomic<uint64_t> pressure_degraded{0};
  std::atomic<uint64_t> budget_degraded{0};
  std::atomic<uint64_t> drain_cancelled{0};
  std::atomic<uint64_t> checkpoint_resumes{0};
  std::atomic<uint64_t> checkpoint_corrupt{0};
  std::atomic<uint64_t> connections_accepted{0};
  std::atomic<uint64_t> connections_rejected{0};
  std::atomic<uint64_t> net_faults{0};
};

// One admitted QUERY travelling from the dispatching client thread to a
// worker and back. The leader thread blocks on `cv` until a worker (or
// the drain fast-fail path) publishes `result`.
struct QrelServer::Job {
  Request request;
  uint64_t budget = 0;
  std::mutex m;
  std::condition_variable cv;
  bool done = false;
  CachedResult result;
};

QrelServer::QrelServer(ReliabilityEngine engine, ServerOptions options)
    : engine_(std::move(engine)),
      options_(options),
      stats_(new Stats),
      cache_(options.cache_capacity) {
  database_fingerprint_ = engine_.database().ContentFingerprint();
  if (options_.workers < 1) {
    options_.workers = 1;
  }
  if (options_.queue_capacity < 1) {
    options_.queue_capacity = 1;
  }
  workers_.reserve(static_cast<size_t>(options_.workers));
  for (int i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

QrelServer::~QrelServer() { Shutdown(); }

// ---------------------------------------------------------------------------
// Request lifecycle.

Response QrelServer::Handle(const Request& request) {
  stats_->requests_total.fetch_add(1, std::memory_order_relaxed);
  Status fault = QREL_FAULT_HIT("net.server.dispatch");
  if (!fault.ok()) {
    stats_->net_faults.fetch_add(1, std::memory_order_relaxed);
    return ErrorResponse(fault);
  }
  switch (request.verb) {
    case RequestVerb::kQuery:
      return HandleQuery(request);
    case RequestVerb::kExplain:
      return HandleExplain(request);
    case RequestVerb::kHealth:
      return HandleHealth();
    case RequestVerb::kStats:
      return HandleStats();
    case RequestVerb::kDrain: {
      BeginDrain();
      Response response;
      response.fields.emplace_back("state", "draining");
      return response;
    }
  }
  return ErrorResponse(Status::Internal("unhandled request verb"));
}

std::string QrelServer::HandlePayload(std::string_view payload) {
  StatusOr<Request> request = ParseRequest(payload);
  if (!request.ok()) {
    stats_->requests_total.fetch_add(1, std::memory_order_relaxed);
    stats_->rejected_invalid.fetch_add(1, std::memory_order_relaxed);
    return SerializeResponse(ErrorResponse(request.status()));
  }
  return SerializeResponse(Handle(*request));
}

// Applies server defaults and (for execution) pressure degradation to a
// request's options. Shared by Admit — the plan must describe the run the
// engine would actually execute — and ExecuteQuery.
static EngineOptions BuildEngineOptions(const Request& request,
                                        const ServerOptions& server,
                                        bool pressured) {
  EngineOptions opts;
  const RequestOptions& ro = request.options;
  if (ro.epsilon.has_value()) {
    opts.epsilon = *ro.epsilon;
  }
  if (ro.delta.has_value()) {
    opts.delta = *ro.delta;
  }
  if (ro.seed.has_value()) {
    opts.seed = *ro.seed;
  }
  opts.fixed_samples = ro.fixed_samples;
  opts.force_exact = ro.force_exact;
  opts.force_approximate = ro.force_approximate;
  // Answer sets are a batch-CLI affordance; responses stay small.
  opts.include_observed_answers = false;
  if (pressured && !ro.force_exact) {
    // Step down the ladder before running: coarser targets and a fixed
    // sample count. The response reports what was actually delivered.
    opts.epsilon = std::max(opts.epsilon, server.pressure_epsilon);
    opts.delta = std::max(opts.delta, server.pressure_delta);
    if (!opts.fixed_samples.has_value() ||
        *opts.fixed_samples > server.pressure_fixed_samples) {
      opts.fixed_samples = server.pressure_fixed_samples;
    }
  }
  return opts;
}

Status QrelServer::Admit(const Request& request, EnginePlan* plan,
                         double* cost) {
  EngineOptions opts = BuildEngineOptions(request, options_, false);
  StatusOr<EnginePlan> explained = engine_.Explain(request.query, opts);
  if (!explained.ok()) {
    stats_->rejected_invalid.fetch_add(1, std::memory_order_relaxed);
    return explained.status();
  }
  *plan = std::move(explained).value();
  if (plan->has_errors()) {
    stats_->rejected_invalid.fetch_add(1, std::memory_order_relaxed);
    return Status::InvalidArgument(FirstErrorMessage(plan->diagnostics));
  }
  // The static cost of the rung the run would execute: worlds for exact
  // enumeration, answer tuples for the quantifier-free algorithm,
  // grounding size for the sampling estimators.
  const std::string& method = plan->planned_method;
  if (method.rfind("Thm 4.2", 0) == 0) {
    *cost = plan->cost.world_count;
  } else if (method.rfind("Prop 3.1", 0) == 0) {
    *cost = plan->cost.answer_space;
  } else if (plan->static_truth != StaticTruth::kUnknown) {
    *cost = 0.0;
  } else {
    *cost = plan->cost.grounding_size;
  }
  // Negated compare so NaN and +inf reject rather than slip through.
  if (!(*cost <= options_.max_admission_cost)) {
    stats_->rejected_cost.fetch_add(1, std::memory_order_relaxed);
    return Status::ResourceExhausted(
        "static cost estimate " + FormatDouble(*cost) +
        " exceeds the admission ceiling " +
        FormatDouble(options_.max_admission_cost) +
        " (planned: " + method + ")");
  }
  return Status::Ok();
}

uint64_t QrelServer::StoreKey(const Request& request) const {
  // Everything the *result* deterministically depends on, envelope
  // excluded: the applied evaluation options and the PR-4 database
  // content fingerprint.
  EngineOptions applied = BuildEngineOptions(request, options_, false);
  Fingerprint fp;
  fp.Mix("net.query.v1")
      .Mix(request.query)
      .MixDouble(applied.epsilon)
      .MixDouble(applied.delta)
      .Mix(applied.seed)
      .Mix(applied.max_exact_worlds)
      .Mix((applied.force_exact ? 1u : 0u) |
           (applied.force_approximate ? 2u : 0u))
      .Mix(database_fingerprint_);
  MixOptional(&fp, applied.fixed_samples);
  return fp.value();
}

uint64_t QrelServer::FlightKey(const Request& request,
                               uint64_t store_key) const {
  // The flight key additionally pins the envelope, so only *exact*
  // duplicates share one computation.
  Fingerprint fp;
  fp.Mix("net.flight.v1").Mix(store_key);
  MixOptional(&fp, request.options.timeout_ms);
  MixOptional(&fp, request.options.max_work);
  return fp.value();
}

uint64_t QrelServer::RetryAfterHintMs() const {
  size_t depth = queue_depth();
  size_t workers = static_cast<size_t>(options_.workers);
  return options_.retry_after_base_ms * (1 + depth / std::max<size_t>(1, workers));
}

Response QrelServer::HandleQuery(const Request& request) {
  stats_->queries.fetch_add(1, std::memory_order_relaxed);
  if (draining()) {
    stats_->shed_draining.fetch_add(1, std::memory_order_relaxed);
    return ErrorResponse(Status::Unavailable("server is draining"),
                         RetryAfterHintMs());
  }
  EnginePlan plan;
  double cost = 0.0;
  Status admitted = Admit(request, &plan, &cost);
  if (!admitted.ok()) {
    return ErrorResponse(admitted);
  }
  stats_->admitted.fetch_add(1, std::memory_order_relaxed);

  uint64_t store_key = StoreKey(request);
  uint64_t flight_key = FlightKey(request, store_key);
  bool from_cache = false;
  bool shared = false;
  CachedResult result = cache_.GetOrCompute(
      store_key, flight_key, [&] { return EnqueueAndRun(request); },
      &from_cache, &shared);
  if (from_cache) {
    stats_->cache_hits.fetch_add(1, std::memory_order_relaxed);
  } else if (shared) {
    stats_->cache_shared.fetch_add(1, std::memory_order_relaxed);
  } else {
    stats_->cache_misses.fetch_add(1, std::memory_order_relaxed);
  }

  Response response;
  if (result.status.ok()) {
    response.fields = result.fields;
  } else {
    response = ErrorResponse(result.status,
                             result.status.code() == StatusCode::kUnavailable
                                 ? std::optional<uint64_t>(RetryAfterHintMs())
                                 : std::nullopt);
  }
  response.fields.emplace_back(
      "cache", from_cache ? "hit" : (shared ? "shared" : "miss"));
  return response;
}

Response QrelServer::HandleExplain(const Request& request) {
  stats_->explains.fetch_add(1, std::memory_order_relaxed);
  EnginePlan plan;
  double cost = 0.0;
  Status admitted = Admit(request, &plan, &cost);
  if (!admitted.ok() &&
      admitted.code() != StatusCode::kResourceExhausted) {
    return ErrorResponse(admitted);
  }
  Response response;
  auto& fields = response.fields;
  fields.emplace_back("class", QueryClassName(plan.query_class));
  fields.emplace_back("effective_class",
                      QueryClassName(plan.effective_class));
  fields.emplace_back("static_truth", StaticTruthName(plan.static_truth));
  fields.emplace_back("simplified", plan.simplified_query);
  fields.emplace_back("planned_method", plan.planned_method);
  fields.emplace_back("universe_size",
                      std::to_string(plan.cost.universe_size));
  fields.emplace_back("arity", std::to_string(plan.cost.arity));
  fields.emplace_back("variables", std::to_string(plan.cost.variables));
  fields.emplace_back("answer_space", FormatDouble(plan.cost.answer_space));
  fields.emplace_back("grounding_size",
                      FormatDouble(plan.cost.grounding_size));
  fields.emplace_back("uncertain_atoms",
                      std::to_string(plan.cost.uncertain_atoms));
  fields.emplace_back("world_count", FormatDouble(plan.cost.world_count));
  fields.emplace_back("admission_cost", FormatDouble(cost));
  fields.emplace_back("admitted", admitted.ok() ? "1" : "0");
  if (!admitted.ok()) {
    fields.emplace_back("reject_reason", admitted.message());
  }
  return response;
}

Response QrelServer::HandleHealth() const {
  Response response;
  response.fields.emplace_back("state", draining() ? "draining" : "serving");
  response.fields.emplace_back("queue_depth",
                               std::to_string(queue_depth()));
  response.fields.emplace_back("inflight", std::to_string(inflight()));
  response.fields.emplace_back("workers",
                               std::to_string(options_.workers));
  response.fields.emplace_back(
      "connections",
      std::to_string(live_connections_.load(std::memory_order_relaxed)));
  return response;
}

Response QrelServer::HandleStats() const {
  ServerStatsSnapshot s = stats_snapshot();
  ResultCacheStats cache = cache_.stats();
  Response response;
  auto emit = [&response](const char* key, uint64_t value) {
    response.fields.emplace_back(key, std::to_string(value));
  };
  emit("requests_total", s.requests_total);
  emit("queries", s.queries);
  emit("explains", s.explains);
  emit("admitted", s.admitted);
  emit("completed_ok", s.completed_ok);
  emit("completed_error", s.completed_error);
  emit("rejected_invalid", s.rejected_invalid);
  emit("rejected_cost", s.rejected_cost);
  emit("shed_queue_full", s.shed_queue_full);
  emit("shed_quota", s.shed_quota);
  emit("shed_draining", s.shed_draining);
  emit("cache_hits", s.cache_hits);
  emit("cache_misses", s.cache_misses);
  emit("cache_shared", s.cache_shared);
  emit("cache_entries", cache.entries);
  emit("cache_evictions", cache.evictions);
  emit("pressure_degraded", s.pressure_degraded);
  emit("budget_degraded", s.budget_degraded);
  emit("drain_cancelled", s.drain_cancelled);
  emit("checkpoint_resumes", s.checkpoint_resumes);
  emit("checkpoint_corrupt", s.checkpoint_corrupt);
  emit("connections_accepted", s.connections_accepted);
  emit("connections_rejected", s.connections_rejected);
  emit("net_faults", s.net_faults);
  emit("queue_depth", queue_depth());
  emit("inflight", inflight());
  {
    std::unique_lock<std::mutex> lock(mutex_);
    emit("quota_outstanding", quota_outstanding_);
  }
  emit("work_quota", options_.work_quota);
  return response;
}

// ---------------------------------------------------------------------------
// Queueing and execution.

CachedResult QrelServer::EnqueueAndRun(const Request& request) {
  auto job = std::make_shared<Job>();
  job->request = request;
  job->budget = std::min(
      request.options.max_work.value_or(options_.default_max_work),
      options_.max_request_work);
  {
    std::unique_lock<std::mutex> lock(mutex_);
    CachedResult shed;
    if (draining()) {
      stats_->shed_draining.fetch_add(1, std::memory_order_relaxed);
      shed.status = Status::Unavailable("server is draining");
      return shed;
    }
    if (queue_.size() >= options_.queue_capacity) {
      stats_->shed_queue_full.fetch_add(1, std::memory_order_relaxed);
      shed.status = Status::Unavailable(
          "request queue is full (" + std::to_string(queue_.size()) +
          " queued)");
      return shed;
    }
    if (quota_outstanding_ + job->budget > options_.work_quota) {
      stats_->shed_quota.fetch_add(1, std::memory_order_relaxed);
      shed.status = Status::Unavailable(
          "server work quota is saturated (" +
          std::to_string(quota_outstanding_) + "/" +
          std::to_string(options_.work_quota) + " units outstanding)");
      return shed;
    }
    quota_outstanding_ += job->budget;
    queue_.push_back(job);
  }
  queue_cv_.notify_one();
  {
    std::unique_lock<std::mutex> lock(job->m);
    job->cv.wait(lock, [&job] { return job->done; });
  }
  return job->result;
}

void QrelServer::WorkerLoop() {
  for (;;) {
    std::shared_ptr<Job> job;
    bool pressured = false;
    bool cancel = false;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stopping and drained
      }
      job = queue_.front();
      queue_.pop_front();
      pressured = queue_.size() >= options_.pressure_watermark;
      cancel = drain_cancel_;
      inflight_.fetch_add(1, std::memory_order_release);
    }
    CachedResult result;
    Status fault = QREL_FAULT_HIT("net.server.worker");
    if (cancel) {
      stats_->drain_cancelled.fetch_add(1, std::memory_order_relaxed);
      result.status = Status::Cancelled(
          "server drained before the request started");
    } else if (!fault.ok()) {
      stats_->net_faults.fetch_add(1, std::memory_order_relaxed);
      result.status = fault;
    } else {
      result = ExecuteQuery(job->request, job->budget, pressured);
    }
    if (result.status.ok()) {
      stats_->completed_ok.fetch_add(1, std::memory_order_relaxed);
    } else {
      stats_->completed_error.fetch_add(1, std::memory_order_relaxed);
    }
    {
      std::unique_lock<std::mutex> lock(mutex_);
      quota_outstanding_ -= job->budget;
      inflight_.fetch_sub(1, std::memory_order_release);
      if (queue_.empty() && inflight_.load(std::memory_order_acquire) == 0) {
        idle_cv_.notify_all();
      }
    }
    {
      std::unique_lock<std::mutex> lock(job->m);
      job->result = std::move(result);
      job->done = true;
    }
    job->cv.notify_all();
  }
}

CachedResult QrelServer::ExecuteQuery(const Request& request,
                                      uint64_t budget, bool pressured) {
  if (pressured) {
    stats_->pressure_degraded.fetch_add(1, std::memory_order_relaxed);
  }
  EngineOptions opts = BuildEngineOptions(request, options_, pressured);

  RunContext ctx;
  uint64_t timeout_ms =
      request.options.timeout_ms.value_or(options_.default_timeout_ms);
  if (timeout_ms > 0) {
    ctx.SetDeadline(std::chrono::milliseconds(timeout_ms));
  }
  ctx.SetWorkBudget(budget);

  // Per-request crash/drain safety: resume an identical query's leftover
  // snapshot, checkpoint progress, flush a final snapshot when the drain
  // cancellation lands (CheckpointScope::MaybeCheckpoint flushes on a
  // pending trip). The path is keyed by the *flight* key, not the store
  // key: single-flight guarantees at most one execution per flight key at
  // a time, so exactly one writer ever owns a snapshot path — two
  // concurrent requests that share a store key but differ in envelope
  // (different timeout/max_work) are distinct flights and must not
  // checkpoint into (and then delete) one shared file.
  std::optional<Checkpointer> checkpointer;
  std::string snapshot_path;
  if (!options_.checkpoint_dir.empty()) {
    char name[32];
    std::snprintf(name, sizeof(name), "q%016llx.snap",
                  static_cast<unsigned long long>(
                      FlightKey(request, StoreKey(request))));
    snapshot_path = options_.checkpoint_dir + "/" + name;
    checkpointer.emplace(
        snapshot_path,
        std::chrono::milliseconds(options_.checkpoint_interval_ms));
    Status loaded = checkpointer->LoadForResume();
    if (!loaded.ok()) {
      // A corrupt leftover must not make this query permanently
      // unanswerable: delete it and run fresh.
      stats_->checkpoint_corrupt.fetch_add(1, std::memory_order_relaxed);
      std::remove(snapshot_path.c_str());
      checkpointer.emplace(
          snapshot_path,
          std::chrono::milliseconds(options_.checkpoint_interval_ms));
    }
    ctx.SetCheckpointer(&*checkpointer);
  }
  opts.run_context = &ctx;

  {
    std::unique_lock<std::mutex> lock(mutex_);
    active_contexts_.push_back(&ctx);
  }
  StatusOr<EngineReport> report = engine_.Run(request.query, opts);
  {
    std::unique_lock<std::mutex> lock(mutex_);
    active_contexts_.erase(std::find(active_contexts_.begin(),
                                     active_contexts_.end(), &ctx));
  }

  if (checkpointer.has_value() && checkpointer->resume_consumed()) {
    stats_->checkpoint_resumes.fetch_add(1, std::memory_order_relaxed);
  }

  CachedResult result;
  if (!report.ok()) {
    result.status = report.status();
    return result;
  }
  if (report->degraded) {
    stats_->budget_degraded.fetch_add(1, std::memory_order_relaxed);
  }
  if (checkpointer.has_value()) {
    // The run finished; the snapshot has served its purpose.
    std::remove(snapshot_path.c_str());
  }

  auto& fields = result.fields;
  fields.emplace_back("reliability", FormatDouble(report->reliability));
  fields.emplace_back("exact", report->is_exact ? "1" : "0");
  if (report->exact_reliability.has_value()) {
    fields.emplace_back("exact_value",
                        report->exact_reliability->ToString());
  }
  fields.emplace_back("expected_error",
                      FormatDouble(report->expected_error));
  fields.emplace_back("method", report->method);
  fields.emplace_back("class", QueryClassName(report->query_class));
  fields.emplace_back("samples", std::to_string(report->samples));
  fields.emplace_back("epsilon", FormatDouble(opts.epsilon));
  fields.emplace_back("delta", FormatDouble(opts.delta));
  if (report->achieved_epsilon.has_value()) {
    fields.emplace_back("achieved_epsilon",
                        FormatDouble(*report->achieved_epsilon));
  }
  if (report->achieved_delta.has_value()) {
    fields.emplace_back("achieved_delta",
                        FormatDouble(*report->achieved_delta));
  }
  fields.emplace_back("degraded", report->degraded ? "1" : "0");
  if (report->degraded) {
    fields.emplace_back("degradation_reason", report->degradation_reason);
  }
  fields.emplace_back("partial", report->partial ? "1" : "0");
  fields.emplace_back("pressure", pressured ? "1" : "0");
  fields.emplace_back("budget_spent", std::to_string(report->budget_spent));
  // Only envelope-independent answers may be replayed to callers with
  // different budgets (see net/result_cache.h).
  result.storable = !report->degraded && !report->partial && !pressured;
  return result;
}

// ---------------------------------------------------------------------------
// Drain and shutdown.

void QrelServer::BeginDrain() {
  draining_.store(true, std::memory_order_release);
}

void QrelServer::Drain() {
  BeginDrain();
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(options_.drain_grace_ms);
  std::unique_lock<std::mutex> lock(mutex_);
  auto idle = [this] {
    return queue_.empty() && inflight_.load(std::memory_order_acquire) == 0;
  };
  idle_cv_.wait_until(lock, deadline, idle);
  if (!idle()) {
    // Grace expired: fail queued work fast and cancel running work
    // cooperatively. A cancelled run flushes its final checkpoint at the
    // next safe point and surfaces a typed CANCELLED to its client.
    drain_cancel_ = true;
    for (RunContext* ctx : active_contexts_) {
      ctx->RequestCancellation();
      stats_->drain_cancelled.fetch_add(1, std::memory_order_relaxed);
    }
    idle_cv_.wait(lock, idle);
  }
  drain_cancel_ = false;
}

void QrelServer::Shutdown() {
  if (shutdown_done_.exchange(true)) {
    return;
  }
  BeginDrain();
  stop_accepting_.store(true, std::memory_order_release);
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  // Unblock running requests first: connection threads may be parked in
  // Handle() waiting for a worker.
  Drain();
  {
    std::unique_lock<std::mutex> lock(conn_mutex_);
    for (Connection& conn : conns_) {
      ::shutdown(conn.fd, SHUT_RDWR);  // wakes any blocked recv with EOF
    }
    // Every fd in conns_ is still open (entries retire before closing),
    // so the sweep above cannot hit a reused descriptor. Wait for all
    // connections to retire, then join their parked threads.
    conn_cv_.wait(lock, [this] { return conns_.empty(); });
  }
  ReapConnectionThreads();
  {
    std::unique_lock<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& t : workers_) {
    if (t.joinable()) {
      t.join();
    }
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

size_t QrelServer::queue_depth() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return queue_.size();
}

ServerStatsSnapshot QrelServer::stats_snapshot() const {
  ServerStatsSnapshot s;
  const Stats& a = *stats_;
  s.requests_total = a.requests_total.load(std::memory_order_relaxed);
  s.queries = a.queries.load(std::memory_order_relaxed);
  s.explains = a.explains.load(std::memory_order_relaxed);
  s.admitted = a.admitted.load(std::memory_order_relaxed);
  s.completed_ok = a.completed_ok.load(std::memory_order_relaxed);
  s.completed_error = a.completed_error.load(std::memory_order_relaxed);
  s.rejected_invalid = a.rejected_invalid.load(std::memory_order_relaxed);
  s.rejected_cost = a.rejected_cost.load(std::memory_order_relaxed);
  s.shed_queue_full = a.shed_queue_full.load(std::memory_order_relaxed);
  s.shed_quota = a.shed_quota.load(std::memory_order_relaxed);
  s.shed_draining = a.shed_draining.load(std::memory_order_relaxed);
  s.cache_hits = a.cache_hits.load(std::memory_order_relaxed);
  s.cache_misses = a.cache_misses.load(std::memory_order_relaxed);
  s.cache_shared = a.cache_shared.load(std::memory_order_relaxed);
  s.pressure_degraded = a.pressure_degraded.load(std::memory_order_relaxed);
  s.budget_degraded = a.budget_degraded.load(std::memory_order_relaxed);
  s.drain_cancelled = a.drain_cancelled.load(std::memory_order_relaxed);
  s.checkpoint_resumes =
      a.checkpoint_resumes.load(std::memory_order_relaxed);
  s.checkpoint_corrupt =
      a.checkpoint_corrupt.load(std::memory_order_relaxed);
  s.connections_accepted =
      a.connections_accepted.load(std::memory_order_relaxed);
  s.connections_rejected =
      a.connections_rejected.load(std::memory_order_relaxed);
  s.net_faults = a.net_faults.load(std::memory_order_relaxed);
  return s;
}

// ---------------------------------------------------------------------------
// TCP transport.

Status QrelServer::Listen(int port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr =
      htonl(options_.listen_any ? INADDR_ANY : INADDR_LOOPBACK);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    int saved = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal(std::string("bind: ") + std::strerror(saved));
  }
  if (::listen(listen_fd_, 64) < 0) {
    int saved = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal(std::string("listen: ") + std::strerror(saved));
  }
  sockaddr_in bound;
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0) {
    port_ = ntohs(bound.sin_port);
  }
  return Status::Ok();
}

Status QrelServer::ServeInBackground(int port) {
  QREL_RETURN_IF_ERROR(Listen(port));
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void QrelServer::ReapConnectionThreads() {
  std::vector<std::thread> finished;
  {
    std::unique_lock<std::mutex> lock(conn_mutex_);
    finished.swap(reaped_conn_threads_);
  }
  for (std::thread& t : finished) {
    t.join();
  }
}

size_t QrelServer::unreaped_connection_threads() const {
  std::unique_lock<std::mutex> lock(conn_mutex_);
  return reaped_conn_threads_.size();
}

void QrelServer::AcceptLoop() {
  while (!stop_accepting_.load(std::memory_order_acquire)) {
    // Join connection threads that retired since the last cycle; without
    // this a long-lived server would accumulate one unjoined thread per
    // connection ever accepted.
    ReapConnectionThreads();
    pollfd p;
    p.fd = listen_fd_;
    p.events = POLLIN;
    p.revents = 0;
    int ready = ::poll(&p, 1, 100);
    if (ready <= 0) {
      continue;  // timeout (re-check the stop flag) or EINTR
    }
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      continue;
    }
    stats_->connections_accepted.fetch_add(1, std::memory_order_relaxed);
    Status fault = QREL_FAULT_HIT("net.server.accept");
    if (!fault.ok()) {
      // A fault at the accept boundary closes the connection before any
      // response bytes: the client sees a clean EOF and reports a typed
      // UNAVAILABLE, never a torn frame.
      stats_->net_faults.fetch_add(1, std::memory_order_relaxed);
      ::close(fd);
      continue;
    }
    if (live_connections_.load(std::memory_order_acquire) >=
        options_.max_connections) {
      stats_->connections_rejected.fetch_add(1, std::memory_order_relaxed);
      WriteAll(fd, EncodeFrame(SerializeResponse(ErrorResponse(
                       Status::Unavailable("connection limit reached"),
                       RetryAfterHintMs()))));
      ::close(fd);
      continue;
    }
    if (options_.connection_idle_timeout_ms > 0) {
      timeval tv;
      tv.tv_sec =
          static_cast<time_t>(options_.connection_idle_timeout_ms / 1000);
      tv.tv_usec = static_cast<suseconds_t>(
          (options_.connection_idle_timeout_ms % 1000) * 1000);
      ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    }
    live_connections_.fetch_add(1, std::memory_order_acq_rel);
    std::unique_lock<std::mutex> lock(conn_mutex_);
    conns_.emplace_back();
    auto conn = std::prev(conns_.end());
    conn->fd = fd;
    conn->thread = std::thread([this, conn] { ConnectionLoop(conn); });
  }
}

void QrelServer::ConnectionLoop(std::list<Connection>::iterator conn) {
  const int fd = conn->fd;
  std::string buffer;
  char chunk[4096];
  for (;;) {
    // Assemble exactly one frame.
    std::string payload;
    bool closed = false;
    for (;;) {
      size_t consumed = 0;
      Status decoded = DecodeFrame(buffer, &consumed, &payload);
      if (!decoded.ok()) {
        // Unrecoverable framing: answer typed, then drop the stream.
        WriteAll(fd, EncodeFrame(SerializeResponse(ErrorResponse(decoded))));
        closed = true;
        break;
      }
      if (consumed > 0) {
        buffer.erase(0, consumed);
        break;
      }
      ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n == 0) {
        closed = true;  // clean client EOF
        break;
      }
      if (n < 0) {
        if (errno == EINTR) {
          continue;
        }
        closed = true;  // idle timeout or reset
        break;
      }
      buffer.append(chunk, static_cast<size_t>(n));
    }
    if (closed) {
      break;
    }
    Status fault = QREL_FAULT_HIT("net.server.read");
    if (!fault.ok()) {
      // Fault after a complete frame was read: report it typed (best
      // effort) and close.
      stats_->net_faults.fetch_add(1, std::memory_order_relaxed);
      WriteAll(fd, EncodeFrame(SerializeResponse(ErrorResponse(fault))));
      break;
    }
    std::string response = HandlePayload(payload);
    fault = QREL_FAULT_HIT("net.server.write");
    if (!fault.ok()) {
      // Fault at the write boundary: drop the whole frame, never part of
      // one — the client detects the missing response as a typed error.
      stats_->net_faults.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    if (!WriteAll(fd, EncodeFrame(response))) {
      break;
    }
  }
  // Retire before touching the fd: once the conns_ entry is gone,
  // Shutdown's sweep can no longer ::shutdown() this fd number, so a
  // kernel reuse of it after the close below can never be hit by
  // mistake. The thread handle is parked for the accept loop (or
  // Shutdown) to join — a thread cannot join itself.
  {
    std::unique_lock<std::mutex> lock(conn_mutex_);
    reaped_conn_threads_.push_back(std::move(conn->thread));
    conns_.erase(conn);
  }
  conn_cv_.notify_all();
  ::shutdown(fd, SHUT_RDWR);
  ::close(fd);
  live_connections_.fetch_sub(1, std::memory_order_acq_rel);
}

}  // namespace qrel
