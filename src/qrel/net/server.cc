#include "qrel/net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <optional>

#include "qrel/util/fault_injection.h"
#include "qrel/util/snapshot.h"
#include "qrel/util/vfs.h"

namespace qrel {

namespace {

std::string FormatDouble(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

// Mixes an optional into a fingerprint unambiguously (presence bit first,
// so "unset" can never collide with a real value).
void MixOptional(Fingerprint* fp, const std::optional<uint64_t>& value) {
  fp->Mix(value.has_value() ? uint64_t{1} : uint64_t{0});
  fp->Mix(value.value_or(0));
}

// Sends every byte or reports failure; SIGPIPE is suppressed so a client
// that disappeared mid-write surfaces as an error, not a signal.
bool WriteAll(int fd, std::string_view data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

constexpr const char* kDefaultTenant = "default";

constexpr const char* kManifestFileName = "catalog.manifest";

// True when `name` ends with ".tmp.<pid>.<seq>" (WriteSnapshotFile's
// per-attempt-unique in-progress temp files) or the legacy ".tmp.<pid>"
// shape. *pid gets the writer's pid.
bool ParseTempFileName(const std::string& name, long* pid) {
  size_t marker = name.rfind(".tmp.");
  if (marker == std::string::npos) {
    return false;
  }
  std::string_view rest = std::string_view(name).substr(marker + 5);
  size_t dot = rest.find('.');
  std::string_view pid_digits =
      dot == std::string_view::npos ? rest : rest.substr(0, dot);
  if (dot != std::string_view::npos) {
    std::string_view seq = rest.substr(dot + 1);
    if (seq.empty() || seq.size() > 20) {
      return false;
    }
    for (char c : seq) {
      if (c < '0' || c > '9') {
        return false;
      }
    }
  }
  if (pid_digits.empty() || pid_digits.size() > 10) {
    return false;
  }
  // Accumulate unsigned: ten digits can exceed a 32-bit long, and signed
  // overflow is UB before any range check could run.
  uint64_t value = 0;
  for (char c : pid_digits) {
    if (c < '0' || c > '9') {
      return false;
    }
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  // pid_t is at least 32-bit signed everywhere this runs; a larger value
  // cannot be a live pid and was not written by WriteSnapshotFile, so the
  // file is not ours to reap (probing a truncated pid could report an
  // unrelated live process as the writer).
  if (value > uint64_t{0x7fffffff}) {
    return false;
  }
  *pid = static_cast<long>(value);
  return true;
}

// Whether the process that was writing this temp file is gone (so the
// file is an orphan, not a live writer's work in progress). kill(pid, 0)
// probes existence without signalling; EPERM means "exists but not
// ours", which must NOT be treated as dead.
bool WriterIsDead(long pid) {
  if (pid <= 0) {
    return true;
  }
  return ::kill(static_cast<pid_t>(pid), 0) != 0 && errno == ESRCH;
}

bool EndsWith(const std::string& name, std::string_view suffix) {
  return name.size() >= suffix.size() &&
         name.compare(name.size() - suffix.size(), suffix.size(), suffix) ==
             0;
}

}  // namespace

// Monotonic counters, written with relaxed atomics from every thread.
struct QrelServer::Stats {
  std::atomic<uint64_t> requests_total{0};
  std::atomic<uint64_t> queries{0};
  std::atomic<uint64_t> explains{0};
  std::atomic<uint64_t> admitted{0};
  std::atomic<uint64_t> completed_ok{0};
  std::atomic<uint64_t> completed_error{0};
  std::atomic<uint64_t> rejected_invalid{0};
  std::atomic<uint64_t> rejected_cost{0};
  std::atomic<uint64_t> shed_queue_full{0};
  std::atomic<uint64_t> shed_quota{0};
  std::atomic<uint64_t> shed_draining{0};
  std::atomic<uint64_t> shed_tenant_rate{0};
  std::atomic<uint64_t> shed_tenant_quota{0};
  std::atomic<uint64_t> shed_displaced{0};
  std::atomic<uint64_t> cache_hits{0};
  std::atomic<uint64_t> cache_misses{0};
  std::atomic<uint64_t> cache_shared{0};
  std::atomic<uint64_t> pressure_degraded{0};
  std::atomic<uint64_t> budget_degraded{0};
  std::atomic<uint64_t> drain_cancelled{0};
  std::atomic<uint64_t> checkpoint_resumes{0};
  std::atomic<uint64_t> checkpoint_corrupt{0};
  std::atomic<uint64_t> attaches{0};
  std::atomic<uint64_t> detaches{0};
  std::atomic<uint64_t> reloads{0};
  std::atomic<uint64_t> reload_failures{0};
  std::atomic<uint64_t> connections_accepted{0};
  std::atomic<uint64_t> connections_rejected{0};
  std::atomic<uint64_t> net_faults{0};
  std::atomic<uint64_t> manifest_writes{0};
  std::atomic<uint64_t> manifest_write_failures{0};
  std::atomic<uint64_t> dbs_recovered{0};
  std::atomic<uint64_t> dbs_recovery_failed{0};
  std::atomic<uint64_t> gc_removed{0};
  std::atomic<uint64_t> idem_journaled{0};
  std::atomic<uint64_t> idem_journal_failures{0};
  std::atomic<uint64_t> idem_recovered{0};
};

// One admitted QUERY travelling from the dispatching client thread to a
// worker and back. The leader thread blocks on `cv` until a worker (or a
// fast-fail path: drain cancel, detach sweep, fair displacement)
// publishes `result`. `db` pins the version the request admitted
// against: a concurrent RELOAD cannot change what this job computes.
struct QrelServer::Job {
  // request/db/tenant/budget are written by the dispatching thread before
  // the job is published to the queue and never after — the queue handoff
  // under the server lock orders them for the worker, so they carry no
  // guard of their own.
  Request request;
  std::shared_ptr<const DbVersion> db;
  std::string tenant;
  uint64_t budget = 0;
  // Ranked above the server core lock: the fast-fail paths publish a
  // result under mutex_ (FailQueuedJobLocked).
  Mutex m{LockRank::kServerJob};
  CondVar cv;
  bool done QREL_GUARDED_BY(m) = false;
  CachedResult result QREL_GUARDED_BY(m);
};

// Per-tenant accounting, guarded by mutex_. The token bucket lazily
// refills on each admission attempt.
struct QrelServer::TenantState {
  double tokens = 0.0;
  bool bucket_init = false;
  std::chrono::steady_clock::time_point last_refill;
  uint64_t outstanding_work = 0;
  size_t queued = 0;
  uint64_t admitted = 0;
  uint64_t completed = 0;
  uint64_t shed_rate = 0;
  uint64_t shed_quota = 0;
  uint64_t displaced = 0;
};

QrelServer::QrelServer(ServerOptions options)
    : options_(std::move(options)),
      stats_(new Stats),
      cache_(options_.cache_capacity),
      retry_estimator_(options_.retry_after_base_ms,
                       options_.retry_after_min_ms,
                       options_.retry_after_max_ms) {
  if (options_.workers < 1) {
    options_.workers = 1;
  }
  if (options_.queue_capacity < 1) {
    options_.queue_capacity = 1;
  }
  if (!DbCatalog::ValidName(options_.default_db)) {
    options_.default_db = "default";
  }
  if (!options_.state_dir.empty() && options_.checkpoint_dir.empty()) {
    // One flag turns on the whole durability story: checkpoints live next
    // to the manifest and the idempotency journal.
    options_.checkpoint_dir = options_.state_dir;
  }
  workers_.reserve(static_cast<size_t>(options_.workers));
  for (int i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

QrelServer::QrelServer(ReliabilityEngine engine, ServerOptions options)
    : QrelServer(std::move(options)) {
  Status attached =
      catalog_.AttachDatabase(options_.default_db, engine.database());
  QREL_CHECK_MSG(attached.ok(), attached.ToString().c_str());
}

QrelServer::~QrelServer() { Shutdown(); }

// ---------------------------------------------------------------------------
// Request lifecycle.

Response QrelServer::Handle(const Request& request) {
  stats_->requests_total.fetch_add(1, std::memory_order_relaxed);
  Status fault = QREL_FAULT_HIT("net.server.dispatch");
  if (!fault.ok()) {
    stats_->net_faults.fetch_add(1, std::memory_order_relaxed);
    return ErrorResponse(fault);
  }
  switch (request.verb) {
    case RequestVerb::kQuery:
      return HandleQuery(request);
    case RequestVerb::kExplain:
      return HandleExplain(request);
    case RequestVerb::kHealth:
      return HandleHealth();
    case RequestVerb::kStats:
      return HandleStats();
    case RequestVerb::kDrain: {
      BeginDrain();
      Response response;
      response.fields.emplace_back("state", "draining");
      return response;
    }
    case RequestVerb::kAttach:
      return HandleAttach(request);
    case RequestVerb::kDetach:
      return HandleDetach(request);
    case RequestVerb::kReload:
      return HandleReload(request);
    case RequestVerb::kDblist:
      return HandleDblist();
    case RequestVerb::kFault:
      return HandleFault(request);
  }
  return ErrorResponse(Status::Internal("unhandled request verb"));
}

std::string QrelServer::HandlePayload(std::string_view payload) {
  StatusOr<Request> request = ParseRequest(payload);
  if (!request.ok()) {
    stats_->requests_total.fetch_add(1, std::memory_order_relaxed);
    stats_->rejected_invalid.fetch_add(1, std::memory_order_relaxed);
    return SerializeResponse(ErrorResponse(request.status()));
  }
  return SerializeResponse(Handle(*request));
}

// Applies server defaults and (for execution) pressure degradation to a
// request's options. Shared by Admit — the plan must describe the run the
// engine would actually execute — and ExecuteQuery.
static EngineOptions BuildEngineOptions(const Request& request,
                                        const ServerOptions& server,
                                        bool pressured) {
  EngineOptions opts;
  const RequestOptions& ro = request.options;
  if (ro.epsilon.has_value()) {
    opts.epsilon = *ro.epsilon;
  }
  if (ro.delta.has_value()) {
    opts.delta = *ro.delta;
  }
  if (ro.seed.has_value()) {
    opts.seed = *ro.seed;
  }
  opts.fixed_samples = ro.fixed_samples;
  opts.force_exact = ro.force_exact;
  opts.force_approximate = ro.force_approximate;
  // Answer sets are a batch-CLI affordance; responses stay small.
  opts.include_observed_answers = false;
  if (pressured && !ro.force_exact) {
    // Step down the ladder before running: coarser targets and a fixed
    // sample count. The response reports what was actually delivered.
    opts.epsilon = std::max(opts.epsilon, server.pressure_epsilon);
    opts.delta = std::max(opts.delta, server.pressure_delta);
    if (!opts.fixed_samples.has_value() ||
        *opts.fixed_samples > server.pressure_fixed_samples) {
      opts.fixed_samples = server.pressure_fixed_samples;
    }
  }
  return opts;
}

StatusOr<std::shared_ptr<const DbVersion>> QrelServer::ResolveDb(
    const Request& request) const {
  const std::string& name =
      request.options.db.empty() ? options_.default_db : request.options.db;
  if (!DbCatalog::ValidName(name)) {
    return Status::InvalidArgument("invalid database name \"" + name + "\"");
  }
  return catalog_.Resolve(name);
}

Status QrelServer::AdmitTenant(const std::string& tenant,
                               uint64_t* retry_hint_ms) {
  *retry_hint_ms = 0;
  const uint64_t rate = options_.tenant_rate_per_sec;
  if (rate == 0) {
    return Status::Ok();
  }
  const double burst =
      static_cast<double>(std::max<uint64_t>(options_.tenant_burst, 1));
  MutexLock lock(&mutex_);
  TenantState& t = tenants_[tenant];
  auto now = std::chrono::steady_clock::now();
  if (!t.bucket_init) {
    t.tokens = burst;
    t.bucket_init = true;
  } else {
    double elapsed =
        std::chrono::duration<double>(now - t.last_refill).count();
    t.tokens = std::min(burst,
                        t.tokens + elapsed * static_cast<double>(rate));
  }
  t.last_refill = now;
  if (t.tokens < 1.0) {
    ++t.shed_rate;
    stats_->shed_tenant_rate.fetch_add(1, std::memory_order_relaxed);
    // Time until the bucket refills the missing fraction of a token —
    // the most honest Retry-After a rate limit can give.
    double wait_s = (1.0 - t.tokens) / static_cast<double>(rate);
    *retry_hint_ms =
        std::max<uint64_t>(1, static_cast<uint64_t>(std::ceil(wait_s * 1e3)));
    return Status::Unavailable("tenant \"" + tenant +
                               "\" is over its request rate");
  }
  t.tokens -= 1.0;
  return Status::Ok();
}

Status QrelServer::Admit(const Request& request, const DbVersion& db,
                         EnginePlan* plan, double* cost) {
  EngineOptions opts = BuildEngineOptions(request, options_, false);
  StatusOr<EnginePlan> explained = db.engine.Explain(request.query, opts);
  if (!explained.ok()) {
    stats_->rejected_invalid.fetch_add(1, std::memory_order_relaxed);
    return explained.status();
  }
  *plan = std::move(explained).value();
  if (plan->has_errors()) {
    stats_->rejected_invalid.fetch_add(1, std::memory_order_relaxed);
    return Status::InvalidArgument(FirstErrorMessage(plan->diagnostics));
  }
  // The static cost of the rung the run would execute: worlds for exact
  // enumeration, answer tuples for the quantifier-free algorithm,
  // grounding size for the extensional safe-plan rung (its n^k·n^depth
  // plan evaluations are bounded by n^#variables) and for the sampling
  // estimators. Keying on the *planned* rung means a query that
  // simplifies to a safe or static form is admitted on its polynomial
  // cost, never on the 2^u world count its raw class would suggest.
  const std::string& method = plan->planned_method;
  if (method.rfind("Thm 4.2", 0) == 0) {
    *cost = plan->cost.world_count;
  } else if (method.rfind("Prop 3.1", 0) == 0) {
    *cost = plan->cost.answer_space;
  } else if (method.rfind("safe-plan extensional", 0) == 0) {
    *cost = plan->cost.grounding_size;
  } else if (plan->static_truth != StaticTruth::kUnknown) {
    *cost = 0.0;
  } else {
    *cost = plan->cost.grounding_size;
  }
  // Negated compare so NaN and +inf reject rather than slip through.
  if (!(*cost <= options_.max_admission_cost)) {
    stats_->rejected_cost.fetch_add(1, std::memory_order_relaxed);
    return Status::ResourceExhausted(
        "static cost estimate " + FormatDouble(*cost) +
        " exceeds the admission ceiling " +
        FormatDouble(options_.max_admission_cost) +
        " (planned: " + method + ")");
  }
  return Status::Ok();
}

uint64_t QrelServer::StoreKey(const Request& request,
                              const DbVersion& db) const {
  // Everything the *result* deterministically depends on, envelope
  // excluded: the applied evaluation options and the PR-4 content
  // fingerprint of the pinned database version.
  EngineOptions applied = BuildEngineOptions(request, options_, false);
  Fingerprint fp;
  fp.Mix("net.query.v1")
      .Mix(request.query)
      .MixDouble(applied.epsilon)
      .MixDouble(applied.delta)
      .Mix(applied.seed)
      .Mix(applied.max_exact_worlds)
      .Mix((applied.force_exact ? 1u : 0u) |
           (applied.force_approximate ? 2u : 0u))
      .Mix(db.fingerprint);
  MixOptional(&fp, applied.fixed_samples);
  return fp.value();
}

uint64_t QrelServer::FlightKey(const Request& request,
                               uint64_t store_key) const {
  // The flight key additionally pins the envelope, so only *exact*
  // duplicates share one computation.
  Fingerprint fp;
  fp.Mix("net.flight.v1").Mix(store_key);
  MixOptional(&fp, request.options.timeout_ms);
  MixOptional(&fp, request.options.max_work);
  return fp.value();
}

uint64_t QrelServer::RetryAfterHintMs() const {
  return retry_estimator_.HintMs(queue_depth(),
                                 static_cast<size_t>(options_.workers));
}

Response QrelServer::HandleQuery(const Request& request) {
  stats_->queries.fetch_add(1, std::memory_order_relaxed);
  const std::string tenant =
      request.options.tenant.empty() ? kDefaultTenant
                                     : request.options.tenant;
  if (!DbCatalog::ValidName(tenant)) {
    stats_->rejected_invalid.fetch_add(1, std::memory_order_relaxed);
    return ErrorResponse(Status::InvalidArgument(
        "invalid tenant name \"" + tenant + "\""));
  }
  const std::string& idem_key = request.options.idempotency_key;
  if (!idem_key.empty() && !ValidIdempotencyKey(idem_key)) {
    stats_->rejected_invalid.fetch_add(1, std::memory_order_relaxed);
    return ErrorResponse(Status::InvalidArgument(
        "invalid idempotency key \"" + idem_key +
        "\" (want [A-Za-z0-9_.-]{1,64})"));
  }
  if (draining()) {
    stats_->shed_draining.fetch_add(1, std::memory_order_relaxed);
    return ErrorResponse(Status::Unavailable("server is draining"),
                         RetryAfterHintMs());
  }
  StatusOr<std::shared_ptr<const DbVersion>> resolved = ResolveDb(request);
  if (!resolved.ok()) {
    if (resolved.status().code() != StatusCode::kUnavailable) {
      stats_->rejected_invalid.fetch_add(1, std::memory_order_relaxed);
    }
    return ErrorResponse(resolved.status(),
                         resolved.status().code() == StatusCode::kUnavailable
                             ? std::optional<uint64_t>(RetryAfterHintMs())
                             : std::nullopt);
  }
  std::shared_ptr<const DbVersion> version = std::move(resolved).value();

  uint64_t tenant_hint = 0;
  Status tenant_admit = AdmitTenant(tenant, &tenant_hint);
  if (!tenant_admit.ok()) {
    return ErrorResponse(tenant_admit,
                         std::max(tenant_hint, RetryAfterHintMs()));
  }

  EnginePlan plan;
  double cost = 0.0;
  Status admitted = Admit(request, *version, &plan, &cost);
  if (!admitted.ok()) {
    return ErrorResponse(admitted);
  }
  stats_->admitted.fetch_add(1, std::memory_order_relaxed);
  {
    MutexLock lock(&mutex_);
    ++tenants_[tenant].admitted;
  }

  uint64_t store_key = StoreKey(request, *version);
  uint64_t flight_key = FlightKey(request, store_key);

  // The idempotency key is deliberately NOT mixed into store/flight keys:
  // a post-crash retry of the same request must land on the same
  // checkpoint path and cache slot it was using before the crash.
  bool recovered_key = false;
  std::string journal_path;
  if (!idem_key.empty() && !options_.state_dir.empty()) {
    {
      MutexLock lock(&mutex_);
      auto it = recovered_keys_.find(idem_key);
      if (it != recovered_keys_.end()) {
        // The entry is consumed either way, but recovered=1 is reported
        // only when the journaled identity matches this request: a retry
        // that reuses the key for a different query (or against a changed
        // database) did not resume the pre-crash computation and must not
        // claim it did.
        recovered_key = it->second.flight_key == flight_key &&
                        it->second.store_key == store_key &&
                        it->second.db_fingerprint == version->fingerprint;
        recovered_keys_.erase(it);
      }
    }
    if (recovered_key) {
      stats_->idem_recovered.fetch_add(1, std::memory_order_relaxed);
    }
    journal_path = IdempotencyPath(idem_key);
    IdempotencyRecord record;
    record.key = idem_key;
    record.flight_key = flight_key;
    record.store_key = store_key;
    record.db_fingerprint = version->fingerprint;
    Status journaled = WriteIdempotencyFile(journal_path, record);
    if (journaled.ok()) {
      stats_->idem_journaled.fetch_add(1, std::memory_order_relaxed);
    } else {
      // The journal is a durability upgrade, not an admission gate: the
      // query still runs, it just loses crash-resume for this attempt.
      stats_->idem_journal_failures.fetch_add(1, std::memory_order_relaxed);
      journal_path.clear();
    }
  }

  bool from_cache = false;
  bool shared = false;
  CachedResult result = cache_.GetOrCompute(
      store_key, flight_key, version->fingerprint,
      [&] { return EnqueueAndRun(request, version, tenant); }, &from_cache,
      &shared);
  if (from_cache) {
    stats_->cache_hits.fetch_add(1, std::memory_order_relaxed);
  } else if (shared) {
    stats_->cache_shared.fetch_add(1, std::memory_order_relaxed);
  } else {
    stats_->cache_misses.fetch_add(1, std::memory_order_relaxed);
  }
  if (!journal_path.empty()) {
    // The request ran to a response; a later retry has nothing to resume.
    (void)ProcessVfs().Unlink(journal_path);
  }

  Response response;
  if (result.status.ok()) {
    response.fields = result.fields;
  } else {
    response = ErrorResponse(result.status,
                             result.status.code() == StatusCode::kUnavailable
                                 ? std::optional<uint64_t>(RetryAfterHintMs())
                                 : std::nullopt);
  }
  response.fields.emplace_back(
      "cache", from_cache ? "hit" : (shared ? "shared" : "miss"));
  // The pinned version that answered (or would have): the client-side
  // proof of which snapshot it observed, bit-identical under reload.
  response.fields.emplace_back("db", version->name);
  response.fields.emplace_back("db_version",
                               std::to_string(version->version));
  response.fields.emplace_back("db_fingerprint",
                               std::to_string(version->fingerprint));
  if (!idem_key.empty()) {
    response.fields.emplace_back("idempotency_key", idem_key);
    response.fields.emplace_back("recovered", recovered_key ? "1" : "0");
  }
  return response;
}

Response QrelServer::HandleExplain(const Request& request) {
  stats_->explains.fetch_add(1, std::memory_order_relaxed);
  StatusOr<std::shared_ptr<const DbVersion>> resolved = ResolveDb(request);
  if (!resolved.ok()) {
    if (resolved.status().code() != StatusCode::kUnavailable) {
      stats_->rejected_invalid.fetch_add(1, std::memory_order_relaxed);
    }
    return ErrorResponse(resolved.status());
  }
  std::shared_ptr<const DbVersion> version = std::move(resolved).value();
  EnginePlan plan;
  double cost = 0.0;
  Status admitted = Admit(request, *version, &plan, &cost);
  if (!admitted.ok() &&
      admitted.code() != StatusCode::kResourceExhausted) {
    return ErrorResponse(admitted);
  }
  Response response;
  auto& fields = response.fields;
  fields.emplace_back("db", version->name);
  fields.emplace_back("db_version", std::to_string(version->version));
  fields.emplace_back("class", QueryClassName(plan.query_class));
  fields.emplace_back("effective_class",
                      QueryClassName(plan.effective_class));
  fields.emplace_back("static_truth", StaticTruthName(plan.static_truth));
  fields.emplace_back("simplified", plan.simplified_query);
  fields.emplace_back("planned_method", plan.planned_method);
  if (plan.safe_plan_applicable) {
    fields.emplace_back("safe", plan.safe_plan_safe ? "1" : "0");
    if (plan.safe_plan_safe) {
      fields.emplace_back("safe_plan", plan.safe_plan);
    } else {
      fields.emplace_back("safe_plan_blocker", plan.safe_plan_blocker);
    }
  }
  fields.emplace_back("universe_size",
                      std::to_string(plan.cost.universe_size));
  fields.emplace_back("arity", std::to_string(plan.cost.arity));
  fields.emplace_back("variables", std::to_string(plan.cost.variables));
  fields.emplace_back("answer_space", FormatDouble(plan.cost.answer_space));
  fields.emplace_back("grounding_size",
                      FormatDouble(plan.cost.grounding_size));
  fields.emplace_back("uncertain_atoms",
                      std::to_string(plan.cost.uncertain_atoms));
  fields.emplace_back("world_count", FormatDouble(plan.cost.world_count));
  fields.emplace_back("admission_cost", FormatDouble(cost));
  fields.emplace_back("admitted", admitted.ok() ? "1" : "0");
  if (!admitted.ok()) {
    fields.emplace_back("reject_reason", admitted.message());
  }
  return response;
}

Response QrelServer::HandleHealth() const {
  std::vector<DbInfo> infos = catalog_.List();
  bool ready = !draining() && !infos.empty();
  for (const DbInfo& info : infos) {
    if (info.state == DbState::kDraining) {
      ready = false;
    }
  }
  Response response;
  response.fields.emplace_back("state", draining() ? "draining" : "serving");
  // The balancer bit: 1 only when accepting work and every database is
  // serving (a draining database means this replica should be pulled).
  response.fields.emplace_back("ready", ready ? "1" : "0");
  response.fields.emplace_back("queue_depth",
                               std::to_string(queue_depth()));
  response.fields.emplace_back("inflight", std::to_string(inflight()));
  response.fields.emplace_back("workers",
                               std::to_string(options_.workers));
  response.fields.emplace_back(
      "connections",
      std::to_string(live_connections_.load(std::memory_order_relaxed)));
  response.fields.emplace_back("databases", std::to_string(infos.size()));
  for (const DbInfo& info : infos) {
    const std::string prefix = "db." + info.name;
    response.fields.emplace_back(prefix + ".state",
                                 DbStateName(info.state));
    response.fields.emplace_back(prefix + ".version",
                                 std::to_string(info.version));
    response.fields.emplace_back(prefix + ".fingerprint",
                                 std::to_string(info.fingerprint));
  }
  return response;
}

Response QrelServer::HandleStats() const {
  ServerStatsSnapshot s = stats_snapshot();
  ResultCacheStats cache = cache_.stats();
  Response response;
  auto emit = [&response](const std::string& key, uint64_t value) {
    response.fields.emplace_back(key, std::to_string(value));
  };
  emit("requests_total", s.requests_total);
  emit("queries", s.queries);
  emit("explains", s.explains);
  emit("admitted", s.admitted);
  emit("completed_ok", s.completed_ok);
  emit("completed_error", s.completed_error);
  emit("rejected_invalid", s.rejected_invalid);
  emit("rejected_cost", s.rejected_cost);
  emit("shed_queue_full", s.shed_queue_full);
  emit("shed_quota", s.shed_quota);
  emit("shed_draining", s.shed_draining);
  emit("shed_tenant_rate", s.shed_tenant_rate);
  emit("shed_tenant_quota", s.shed_tenant_quota);
  emit("shed_displaced", s.shed_displaced);
  emit("cache_hits", s.cache_hits);
  emit("cache_misses", s.cache_misses);
  emit("cache_shared", s.cache_shared);
  emit("cache_entries", cache.entries);
  emit("cache_evictions", cache.evictions);
  emit("cache_retired", cache.retired);
  emit("pressure_degraded", s.pressure_degraded);
  emit("budget_degraded", s.budget_degraded);
  emit("drain_cancelled", s.drain_cancelled);
  emit("checkpoint_resumes", s.checkpoint_resumes);
  emit("checkpoint_corrupt", s.checkpoint_corrupt);
  emit("attaches", s.attaches);
  emit("detaches", s.detaches);
  emit("reloads", s.reloads);
  emit("reload_failures", s.reload_failures);
  emit("connections_accepted", s.connections_accepted);
  emit("connections_rejected", s.connections_rejected);
  emit("net_faults", s.net_faults);
  emit("manifest_writes", s.manifest_writes);
  emit("manifest_write_failures", s.manifest_write_failures);
  emit("dbs_recovered", s.dbs_recovered);
  emit("dbs_recovery_failed", s.dbs_recovery_failed);
  emit("gc_removed", s.gc_removed);
  emit("idem_journaled", s.idem_journaled);
  emit("idem_journal_failures", s.idem_journal_failures);
  emit("idem_recovered", s.idem_recovered);
  emit("queue_depth", queue_depth());
  emit("inflight", inflight());
  emit("databases", catalog_.size());
  {
    MutexLock lock(&mutex_);
    emit("quota_outstanding", quota_outstanding_);
  }
  emit("work_quota", options_.work_quota);
  emit("retry_samples", retry_estimator_.sample_count());
  std::vector<TenantStatsSnapshot> tenants = tenant_stats();
  emit("tenants", tenants.size());
  for (const TenantStatsSnapshot& t : tenants) {
    const std::string prefix = "tenant." + t.name;
    emit(prefix + ".admitted", t.admitted);
    emit(prefix + ".completed", t.completed);
    emit(prefix + ".shed_rate", t.shed_rate);
    emit(prefix + ".shed_quota", t.shed_quota);
    emit(prefix + ".displaced", t.displaced);
    emit(prefix + ".outstanding_work", t.outstanding_work);
    emit(prefix + ".queued", t.queued);
  }
  return response;
}

// ---------------------------------------------------------------------------
// The admin plane.

Response QrelServer::HandleAttach(const Request& request) {
  Status attached = catalog_.Attach(request.target, request.path);
  if (!attached.ok()) {
    return ErrorResponse(attached);
  }
  stats_->attaches.fetch_add(1, std::memory_order_relaxed);
  Status persisted = PersistManifest();
  Response response;
  response.fields.emplace_back("db", request.target);
  StatusOr<std::shared_ptr<const DbVersion>> resolved =
      catalog_.Resolve(request.target);
  if (resolved.ok()) {
    const DbVersion& v = *resolved.value();
    response.fields.emplace_back("db_version", std::to_string(v.version));
    response.fields.emplace_back("db_fingerprint",
                                 std::to_string(v.fingerprint));
    response.fields.emplace_back("universe_size",
                                 std::to_string(v.universe_size));
    response.fields.emplace_back("facts", std::to_string(v.fact_count));
    response.fields.emplace_back("uncertain_atoms",
                                 std::to_string(v.uncertain_atoms));
  }
  if (!options_.state_dir.empty()) {
    response.fields.emplace_back("manifest",
                                 persisted.ok() ? "written" : "failed");
  }
  return response;
}

Response QrelServer::HandleReload(const Request& request) {
  StatusOr<ReloadOutcome> outcome =
      catalog_.Reload(request.target, request.path);
  if (!outcome.ok()) {
    stats_->reload_failures.fetch_add(1, std::memory_order_relaxed);
    return ErrorResponse(outcome.status());
  }
  stats_->reloads.fetch_add(1, std::memory_order_relaxed);
  size_t evicted = 0;
  if (outcome->changed) {
    // The displaced version's cache entries are unreachable (keys mix the
    // fingerprint) but would pin its memory; retire them now. In-flight
    // requests pinned to the old version still complete and answer — the
    // retired ring only stops them from re-publishing.
    evicted = cache_.RetireTag(outcome->old_version->fingerprint);
  }
  Response response;
  response.fields.emplace_back("db", request.target);
  response.fields.emplace_back(
      "old_version", std::to_string(outcome->old_version->version));
  response.fields.emplace_back(
      "new_version", std::to_string(outcome->new_version->version));
  response.fields.emplace_back(
      "old_fingerprint",
      std::to_string(outcome->old_version->fingerprint));
  response.fields.emplace_back(
      "new_fingerprint",
      std::to_string(outcome->new_version->fingerprint));
  response.fields.emplace_back("changed", outcome->changed ? "1" : "0");
  response.fields.emplace_back("cache_evicted", std::to_string(evicted));
  Status persisted = PersistManifest();
  if (!options_.state_dir.empty()) {
    response.fields.emplace_back("manifest",
                                 persisted.ok() ? "written" : "failed");
  }
  return response;
}

Response QrelServer::HandleDetach(const Request& request) {
  const std::string& name = request.target;
  StatusOr<std::shared_ptr<const DbVersion>> begun =
      catalog_.BeginDetach(name);
  if (!begun.ok()) {
    return ErrorResponse(begun.status());
  }
  std::shared_ptr<const DbVersion> version = std::move(begun).value();
  const uint64_t fp = version->fingerprint;

  // From here on Resolve(name) fails typed, so no new work can admit
  // against this database. Drain what already did, the way SIGTERM
  // drains the whole server: fail its queued jobs fast, give its
  // in-flight runs the grace period, then cancel cooperatively.
  size_t cancelled = 0;
  {
    MutexLock lock(&mutex_);
    for (auto it = queue_.begin(); it != queue_.end();) {
      if ((*it)->db->fingerprint == fp) {
        std::shared_ptr<Job> job = *it;
        it = queue_.erase(it);
        CachedResult result;
        result.status = Status::Cancelled("database \"" + name +
                                          "\" is detaching");
        FailQueuedJobLocked(job, std::move(result));
        ++cancelled;
      } else {
        ++it;
      }
    }
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(options_.drain_grace_ms);
    while (!DbIdleLocked(fp)) {
      if (idle_cv_.WaitUntil(mutex_, deadline) == std::cv_status::timeout) {
        break;
      }
    }
    if (!DbIdleLocked(fp)) {
      for (ActiveRun& run : active_runs_) {
        if (run.db_fingerprint == fp) {
          run.ctx->RequestCancellation();
          ++cancelled;
          stats_->drain_cancelled.fetch_add(1, std::memory_order_relaxed);
        }
      }
      while (!DbIdleLocked(fp)) {
        idle_cv_.Wait(mutex_);
      }
    }
  }
  catalog_.FinishDetach(name);
  size_t evicted = cache_.RetireTag(fp);
  stats_->detaches.fetch_add(1, std::memory_order_relaxed);

  Response response;
  response.fields.emplace_back("db", name);
  response.fields.emplace_back("db_version",
                               std::to_string(version->version));
  response.fields.emplace_back("db_fingerprint", std::to_string(fp));
  response.fields.emplace_back("cancelled", std::to_string(cancelled));
  response.fields.emplace_back("cache_evicted", std::to_string(evicted));
  Status persisted = PersistManifest();
  if (!options_.state_dir.empty()) {
    response.fields.emplace_back("manifest",
                                 persisted.ok() ? "written" : "failed");
  }
  return response;
}

Response QrelServer::HandleDblist() const {
  std::vector<DbInfo> infos = catalog_.List();
  Response response;
  response.fields.emplace_back("databases", std::to_string(infos.size()));
  for (const DbInfo& info : infos) {
    const std::string prefix = "db." + info.name;
    response.fields.emplace_back(prefix + ".state",
                                 DbStateName(info.state));
    response.fields.emplace_back(prefix + ".version",
                                 std::to_string(info.version));
    response.fields.emplace_back(prefix + ".fingerprint",
                                 std::to_string(info.fingerprint));
    response.fields.emplace_back(prefix + ".universe_size",
                                 std::to_string(info.universe_size));
    response.fields.emplace_back(prefix + ".facts",
                                 std::to_string(info.fact_count));
    response.fields.emplace_back(prefix + ".uncertain_atoms",
                                 std::to_string(info.uncertain_atoms));
    if (!info.source_path.empty()) {
      response.fields.emplace_back(prefix + ".path", info.source_path);
    }
  }
  return response;
}

Response QrelServer::HandleFault(const Request& request) {
  if (!options_.enable_fault_verb) {
    return ErrorResponse(Status::FailedPrecondition(
        "FAULT verb is disabled (start the server with "
        "--enable-fault-verb)"));
  }
  Status armed = ArmFaultFromSpec(request.target);
  if (!armed.ok()) {
    return ErrorResponse(armed);
  }
  Response response;
  response.fields.emplace_back("armed", request.target);
  return response;
}

// ---------------------------------------------------------------------------
// Durable state: the catalog manifest, the idempotency journal, and
// crash-restart recovery. All file I/O goes through ProcessVfs(), so the
// crash drills in tests/crash_restart_test.cc exercise these exact paths.

std::string QrelServer::ManifestPath() const {
  return options_.state_dir + "/" + kManifestFileName;
}

std::string QrelServer::IdempotencyPath(const std::string& key) const {
  // The validated key grammar ([A-Za-z0-9_.-]{1,64}) is already
  // filename-safe, so the key itself is embedded: distinct keys can never
  // share one journal file the way a 64-bit hash of them could collide,
  // and the "k-" prefix keeps even "."/".."-shaped keys meaningless to
  // the filesystem.
  return options_.state_dir + "/k-" + key + ".idem";
}

Status QrelServer::PersistManifest() {
  if (options_.state_dir.empty()) {
    return Status::Ok();
  }
  // One writer at a time, held across snapshot *and* write: concurrent
  // admin verbs each run read-catalog-then-rename, and unserialised the
  // slower thread can rename an older catalog snapshot over the newer
  // one, silently dropping a just-attached database from durable state.
  MutexLock manifest_lock(&manifest_mutex_);
  CatalogManifest manifest;
  for (const DbInfo& info : catalog_.List()) {
    if (info.source_path.empty()) {
      // Memory-attached databases (AttachDatabase) have no file to reload
      // from after a restart; they are the caller's job to re-create.
      continue;
    }
    if (info.state == DbState::kDraining) {
      continue;
    }
    ManifestEntry entry;
    entry.name = info.name;
    entry.source_path = info.source_path;
    entry.version = info.version;
    entry.fingerprint = info.fingerprint;
    manifest.entries.push_back(std::move(entry));
  }
  // catalog_.List() iterates a std::map, so entries arrive strictly
  // sorted by name — the canonical order DecodeManifest enforces.
  Status written = WriteManifestFile(ManifestPath(), manifest);
  if (written.ok()) {
    stats_->manifest_writes.fetch_add(1, std::memory_order_relaxed);
  } else {
    stats_->manifest_write_failures.fetch_add(1, std::memory_order_relaxed);
  }
  return written;
}

RecoveryReport QrelServer::RecoverState() {
  RecoveryReport report;
  if (options_.state_dir.empty()) {
    return report;
  }
  Vfs& vfs = ProcessVfs();

  // Pass 1: sweep the state directory. Orphaned temp files from writers
  // that died mid-write, corrupt checkpoints, and the idempotency journal
  // are all handled here, before any database is attached.
  StatusOr<std::vector<std::string>> listing = vfs.ListDir(options_.state_dir);
  if (listing.ok()) {
    for (const std::string& name : *listing) {
      const std::string path = options_.state_dir + "/" + name;
      long writer_pid = 0;
      if (ParseTempFileName(name, &writer_pid)) {
        // A live process may still be writing this file (a concurrent
        // server sharing the directory, or our own earlier fork); only
        // reap temps whose writer is provably gone.
        if (WriterIsDead(writer_pid)) {
          if (vfs.Unlink(path).ok()) {
            ++report.gc_removed_temp;
            stats_->gc_removed.fetch_add(1, std::memory_order_relaxed);
          }
        }
        continue;
      }
      if (EndsWith(name, ".idem")) {
        StatusOr<IdempotencyRecord> record = ReadIdempotencyFile(path);
        if (record.ok()) {
          // Normalize: the retry flow rewrites and removes the journal at
          // the key's canonical hashed path, so an entry under any other
          // name (a copied or renamed file) would otherwise leak forever.
          if (path != IdempotencyPath(record->key)) {
            (void)vfs.Unlink(path);
          }
          MutexLock lock(&mutex_);
          recovered_keys_[record->key] = std::move(record).value();
          ++report.journal_recovered;
        } else {
          // A torn or corrupt journal entry is useless for resume; count
          // it and clear it so it cannot be mistaken for live state.
          ++report.journal_corrupt;
          if (vfs.Unlink(path).ok()) {
            ++report.gc_removed_corrupt;
            stats_->gc_removed.fetch_add(1, std::memory_order_relaxed);
          }
        }
        continue;
      }
      if (EndsWith(name, ".snap")) {
        // Checkpoints only pay for themselves when decodable; a torn one
        // would be detected and deleted at query time anyway (see
        // ExecuteQuery), doing it here keeps the directory honest.
        if (!ReadSnapshotFile(path).ok()) {
          if (vfs.Unlink(path).ok()) {
            ++report.gc_removed_corrupt;
            stats_->gc_removed.fetch_add(1, std::memory_order_relaxed);
          }
        }
        continue;
      }
    }
  }

  // Pass 2: replay the manifest. Every failure is per-database and typed;
  // the server always starts and serves whatever subset recovered.
  StatusOr<CatalogManifest> manifest = ReadManifestFile(ManifestPath());
  if (!manifest.ok()) {
    if (manifest.status().code() == StatusCode::kNotFound) {
      return report;  // fresh state dir — nothing to replay
    }
    report.manifest_found = true;
    report.manifest_corrupt = true;
    report.failures.push_back("<manifest>: " + manifest.status().ToString());
    return report;
  }
  report.manifest_found = true;
  for (const ManifestEntry& entry : manifest->entries) {
    if (catalog_.Resolve(entry.name).ok()) {
      // Already attached (constructor default database, or a caller that
      // attached before recovery); the live version wins.
      ++report.skipped_existing;
      continue;
    }
    Status attached = catalog_.Attach(entry.name, entry.source_path);
    if (!attached.ok()) {
      std::string reason =
          attached.code() == StatusCode::kNotFound ||
                  attached.code() == StatusCode::kInvalidArgument
              ? "missing or unreadable source file " + entry.source_path +
                    ": " + attached.ToString()
              : attached.ToString();
      report.failures.push_back(entry.name + ": " + reason);
      stats_->dbs_recovery_failed.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    StatusOr<std::shared_ptr<const DbVersion>> resolved =
        catalog_.Resolve(entry.name);
    if (resolved.ok() && (*resolved)->fingerprint != entry.fingerprint) {
      // The file changed behind the manifest's back. Serving it silently
      // would break the bit-identical-answer contract the manifest
      // fingerprint exists to enforce — drop it and report the drift.
      StatusOr<std::shared_ptr<const DbVersion>> begun =
          catalog_.BeginDetach(entry.name);
      if (begun.ok()) {
        catalog_.FinishDetach(entry.name);
      }
      report.failures.push_back(
          entry.name + ": fingerprint drift (manifest " +
          std::to_string(entry.fingerprint) + ", file " +
          std::to_string((*resolved)->fingerprint) + ")");
      stats_->dbs_recovery_failed.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    ++report.reattached;
    stats_->dbs_recovered.fetch_add(1, std::memory_order_relaxed);
  }
  // Re-persist so the on-disk manifest reflects what actually recovered
  // (drifted or missing databases drop out instead of failing forever).
  (void)PersistManifest();
  return report;
}

// ---------------------------------------------------------------------------
// Queueing and execution.

void QrelServer::FailQueuedJobLocked(const std::shared_ptr<Job>& job,
                                     CachedResult result) {
  quota_outstanding_ -= job->budget;
  TenantState& t = tenants_[job->tenant];
  if (t.queued > 0) {
    --t.queued;
  }
  t.outstanding_work -= std::min(t.outstanding_work, job->budget);
  {
    MutexLock job_lock(&job->m);
    job->result = std::move(result);
    job->done = true;
  }
  job->cv.NotifyAll();
}

CachedResult QrelServer::EnqueueAndRun(const Request& request,
                                       std::shared_ptr<const DbVersion> db,
                                       const std::string& tenant) {
  auto job = std::make_shared<Job>();
  job->request = request;
  job->db = std::move(db);
  job->tenant = tenant;
  job->budget = std::min(
      request.options.max_work.value_or(options_.default_max_work),
      options_.max_request_work);
  {
    MutexLock lock(&mutex_);
    CachedResult shed;
    if (draining()) {
      stats_->shed_draining.fetch_add(1, std::memory_order_relaxed);
      shed.status = Status::Unavailable("server is draining");
      return shed;
    }
    TenantState& t = tenants_[tenant];
    if (options_.tenant_work_quota > 0 &&
        t.outstanding_work + job->budget > options_.tenant_work_quota) {
      ++t.shed_quota;
      stats_->shed_tenant_quota.fetch_add(1, std::memory_order_relaxed);
      shed.status = Status::Unavailable(
          "tenant \"" + tenant + "\" work quota is saturated (" +
          std::to_string(t.outstanding_work) + "/" +
          std::to_string(options_.tenant_work_quota) +
          " units outstanding)");
      return shed;
    }
    if (queue_.size() >= options_.queue_capacity) {
      // Fair displacement: if one tenant hogs the queue, the incoming
      // request evicts that hog's most recently queued job — but only
      // when the hog has strictly more queued work than the incomer, so
      // displacement can never invert into the hog shedding others.
      const std::string* hog = nullptr;
      size_t hog_queued = t.queued;  // must strictly exceed the incomer
      for (const auto& [tenant_name, state] : tenants_) {
        if (tenant_name != tenant && state.queued > hog_queued) {
          hog_queued = state.queued;
          hog = &tenant_name;
        }
      }
      bool displaced = false;
      if (hog != nullptr) {
        for (auto it = queue_.rbegin(); it != queue_.rend(); ++it) {
          if ((*it)->tenant == *hog) {
            std::shared_ptr<Job> victim = *it;
            queue_.erase(std::next(it).base());
            stats_->shed_displaced.fetch_add(1, std::memory_order_relaxed);
            ++tenants_[*hog].displaced;
            CachedResult result;
            result.status = Status::Unavailable(
                "displaced from the queue: tenant \"" + *hog +
                "\" is over its fair share");
            FailQueuedJobLocked(victim, std::move(result));
            displaced = true;
            break;
          }
        }
      }
      if (!displaced) {
        stats_->shed_queue_full.fetch_add(1, std::memory_order_relaxed);
        shed.status = Status::Unavailable(
            "request queue is full (" + std::to_string(queue_.size()) +
            " queued)");
        return shed;
      }
    }
    if (quota_outstanding_ + job->budget > options_.work_quota) {
      stats_->shed_quota.fetch_add(1, std::memory_order_relaxed);
      shed.status = Status::Unavailable(
          "server work quota is saturated (" +
          std::to_string(quota_outstanding_) + "/" +
          std::to_string(options_.work_quota) + " units outstanding)");
      return shed;
    }
    quota_outstanding_ += job->budget;
    ++t.queued;
    t.outstanding_work += job->budget;
    queue_.push_back(job);
  }
  queue_cv_.NotifyOne();
  {
    MutexLock lock(&job->m);
    while (!job->done) {
      job->cv.Wait(job->m);
    }
    return job->result;
  }
}

void QrelServer::WorkerLoop() {
  for (;;) {
    std::shared_ptr<Job> job;
    bool pressured = false;
    bool cancel = false;
    {
      MutexLock lock(&mutex_);
      while (!stopping_ && queue_.empty()) {
        queue_cv_.Wait(mutex_);
      }
      if (queue_.empty()) {
        return;  // stopping and drained
      }
      job = queue_.front();
      queue_.pop_front();
      pressured = queue_.size() >= options_.pressure_watermark;
      cancel = drain_cancel_;
      TenantState& t = tenants_[job->tenant];
      if (t.queued > 0) {
        --t.queued;
      }
      ++inflight_by_db_[job->db->fingerprint];
      inflight_.fetch_add(1, std::memory_order_release);
    }
    CachedResult result;
    Status fault = QREL_FAULT_HIT("net.server.worker");
    bool executed = false;
    auto start = std::chrono::steady_clock::now();
    if (cancel) {
      stats_->drain_cancelled.fetch_add(1, std::memory_order_relaxed);
      result.status = Status::Cancelled(
          "server drained before the request started");
    } else if (!fault.ok()) {
      stats_->net_faults.fetch_add(1, std::memory_order_relaxed);
      result.status = fault;
    } else {
      result = ExecuteQuery(job->request, *job->db, job->budget, pressured);
      executed = true;
    }
    if (executed) {
      // Only real engine runs feed the drain-rate estimate; fast-failed
      // jobs would bias the Retry-After hint toward zero.
      double ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - start)
                      .count();
      retry_estimator_.RecordServiceTimeMs(ms);
    }
    if (result.status.ok()) {
      stats_->completed_ok.fetch_add(1, std::memory_order_relaxed);
    } else {
      stats_->completed_error.fetch_add(1, std::memory_order_relaxed);
    }
    {
      MutexLock lock(&mutex_);
      quota_outstanding_ -= job->budget;
      TenantState& t = tenants_[job->tenant];
      t.outstanding_work -= std::min(t.outstanding_work, job->budget);
      ++t.completed;
      auto by_db = inflight_by_db_.find(job->db->fingerprint);
      if (by_db != inflight_by_db_.end() && --by_db->second == 0) {
        inflight_by_db_.erase(by_db);
      }
      inflight_.fetch_sub(1, std::memory_order_release);
      // Every completion can be the one a DETACH (per-database) or
      // Drain (whole-server) is waiting on.
      idle_cv_.NotifyAll();
    }
    {
      MutexLock lock(&job->m);
      job->result = std::move(result);
      job->done = true;
    }
    job->cv.NotifyAll();
  }
}

CachedResult QrelServer::ExecuteQuery(const Request& request,
                                      const DbVersion& db, uint64_t budget,
                                      bool pressured) {
  if (pressured) {
    stats_->pressure_degraded.fetch_add(1, std::memory_order_relaxed);
  }
  EngineOptions opts = BuildEngineOptions(request, options_, pressured);

  RunContext ctx;
  uint64_t timeout_ms =
      request.options.timeout_ms.value_or(options_.default_timeout_ms);
  if (timeout_ms > 0) {
    ctx.SetDeadline(std::chrono::milliseconds(timeout_ms));
  }
  ctx.SetWorkBudget(budget);

  // Per-request crash/drain safety: resume an identical query's leftover
  // snapshot, checkpoint progress, flush a final snapshot when the drain
  // cancellation lands (CheckpointScope::MaybeCheckpoint flushes on a
  // pending trip). The path is keyed by the *flight* key, not the store
  // key: single-flight guarantees at most one execution per flight key at
  // a time, so exactly one writer ever owns a snapshot path — two
  // concurrent requests that share a store key but differ in envelope
  // (different timeout/max_work) are distinct flights and must not
  // checkpoint into (and then delete) one shared file. The store key
  // mixes the database fingerprint, so versions never share snapshots.
  std::optional<Checkpointer> checkpointer;
  std::string snapshot_path;
  if (!options_.checkpoint_dir.empty()) {
    char name[32];
    std::snprintf(name, sizeof(name), "q%016llx.snap",
                  static_cast<unsigned long long>(
                      FlightKey(request, StoreKey(request, db))));
    snapshot_path = options_.checkpoint_dir + "/" + name;
    checkpointer.emplace(
        snapshot_path,
        std::chrono::milliseconds(options_.checkpoint_interval_ms));
    Status loaded = checkpointer->LoadForResume();
    if (!loaded.ok()) {
      // A corrupt leftover must not make this query permanently
      // unanswerable: delete it and run fresh.
      stats_->checkpoint_corrupt.fetch_add(1, std::memory_order_relaxed);
      (void)ProcessVfs().Unlink(snapshot_path);
      checkpointer.emplace(
          snapshot_path,
          std::chrono::milliseconds(options_.checkpoint_interval_ms));
    }
    ctx.SetCheckpointer(&*checkpointer);
  }
  opts.run_context = &ctx;

  {
    MutexLock lock(&mutex_);
    active_runs_.push_back(ActiveRun{&ctx, db.fingerprint});
  }
  StatusOr<EngineReport> report = db.engine.Run(request.query, opts);
  {
    MutexLock lock(&mutex_);
    active_runs_.erase(
        std::find_if(active_runs_.begin(), active_runs_.end(),
                     [&ctx](const ActiveRun& run) { return run.ctx == &ctx; }));
  }

  if (checkpointer.has_value() && checkpointer->resume_consumed()) {
    stats_->checkpoint_resumes.fetch_add(1, std::memory_order_relaxed);
  }

  CachedResult result;
  if (!report.ok()) {
    result.status = report.status();
    return result;
  }
  if (report->degraded) {
    stats_->budget_degraded.fetch_add(1, std::memory_order_relaxed);
  }
  if (checkpointer.has_value()) {
    // The run finished; the snapshot has served its purpose.
    (void)ProcessVfs().Unlink(snapshot_path);
  }

  auto& fields = result.fields;
  fields.emplace_back("reliability", FormatDouble(report->reliability));
  fields.emplace_back("exact", report->is_exact ? "1" : "0");
  if (report->exact_reliability.has_value()) {
    fields.emplace_back("exact_value",
                        report->exact_reliability->ToString());
  }
  fields.emplace_back("expected_error",
                      FormatDouble(report->expected_error));
  fields.emplace_back("method", report->method);
  fields.emplace_back("class", QueryClassName(report->query_class));
  fields.emplace_back("samples", std::to_string(report->samples));
  fields.emplace_back("epsilon", FormatDouble(opts.epsilon));
  fields.emplace_back("delta", FormatDouble(opts.delta));
  if (report->achieved_epsilon.has_value()) {
    fields.emplace_back("achieved_epsilon",
                        FormatDouble(*report->achieved_epsilon));
  }
  if (report->achieved_delta.has_value()) {
    fields.emplace_back("achieved_delta",
                        FormatDouble(*report->achieved_delta));
  }
  fields.emplace_back("degraded", report->degraded ? "1" : "0");
  if (report->degraded) {
    fields.emplace_back("degradation_reason", report->degradation_reason);
  }
  fields.emplace_back("partial", report->partial ? "1" : "0");
  fields.emplace_back("pressure", pressured ? "1" : "0");
  fields.emplace_back("budget_spent", std::to_string(report->budget_spent));
  // Only envelope-independent answers may be replayed to callers with
  // different budgets (see net/result_cache.h).
  result.storable = !report->degraded && !report->partial && !pressured;
  return result;
}

// ---------------------------------------------------------------------------
// Drain and shutdown.

void QrelServer::BeginDrain() {
  draining_.store(true, std::memory_order_release);
}

void QrelServer::Drain() {
  BeginDrain();
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(options_.drain_grace_ms);
  MutexLock lock(&mutex_);
  while (!IdleLocked()) {
    if (idle_cv_.WaitUntil(mutex_, deadline) == std::cv_status::timeout) {
      break;
    }
  }
  if (!IdleLocked()) {
    // Grace expired: fail queued work fast and cancel running work
    // cooperatively. A cancelled run flushes its final checkpoint at the
    // next safe point and surfaces a typed CANCELLED to its client.
    drain_cancel_ = true;
    for (ActiveRun& run : active_runs_) {
      run.ctx->RequestCancellation();
      stats_->drain_cancelled.fetch_add(1, std::memory_order_relaxed);
    }
    while (!IdleLocked()) {
      idle_cv_.Wait(mutex_);
    }
  }
  drain_cancel_ = false;
}

bool QrelServer::IdleLocked() const {
  return queue_.empty() && inflight_.load(std::memory_order_acquire) == 0;
}

bool QrelServer::DbIdleLocked(uint64_t fingerprint) const {
  auto it = inflight_by_db_.find(fingerprint);
  return it == inflight_by_db_.end() || it->second == 0;
}

void QrelServer::Shutdown() {
  if (shutdown_done_.exchange(true)) {
    return;
  }
  BeginDrain();
  stop_accepting_.store(true, std::memory_order_release);
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  // Unblock running requests first: connection threads may be parked in
  // Handle() waiting for a worker.
  Drain();
  {
    MutexLock lock(&conn_mutex_);
    for (Connection& conn : conns_) {
      ::shutdown(conn.fd, SHUT_RDWR);  // wakes any blocked recv with EOF
    }
    // Every fd in conns_ is still open (entries retire before closing),
    // so the sweep above cannot hit a reused descriptor. Wait for all
    // connections to retire, then join their parked threads.
    while (!conns_.empty()) {
      conn_cv_.Wait(conn_mutex_);
    }
  }
  ReapConnectionThreads();
  {
    MutexLock lock(&mutex_);
    stopping_ = true;
  }
  queue_cv_.NotifyAll();
  for (std::thread& t : workers_) {
    if (t.joinable()) {
      t.join();
    }
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

size_t QrelServer::queue_depth() const {
  MutexLock lock(&mutex_);
  return queue_.size();
}

ServerStatsSnapshot QrelServer::stats_snapshot() const {
  ServerStatsSnapshot s;
  const Stats& a = *stats_;
  s.requests_total = a.requests_total.load(std::memory_order_relaxed);
  s.queries = a.queries.load(std::memory_order_relaxed);
  s.explains = a.explains.load(std::memory_order_relaxed);
  s.admitted = a.admitted.load(std::memory_order_relaxed);
  s.completed_ok = a.completed_ok.load(std::memory_order_relaxed);
  s.completed_error = a.completed_error.load(std::memory_order_relaxed);
  s.rejected_invalid = a.rejected_invalid.load(std::memory_order_relaxed);
  s.rejected_cost = a.rejected_cost.load(std::memory_order_relaxed);
  s.shed_queue_full = a.shed_queue_full.load(std::memory_order_relaxed);
  s.shed_quota = a.shed_quota.load(std::memory_order_relaxed);
  s.shed_draining = a.shed_draining.load(std::memory_order_relaxed);
  s.shed_tenant_rate = a.shed_tenant_rate.load(std::memory_order_relaxed);
  s.shed_tenant_quota =
      a.shed_tenant_quota.load(std::memory_order_relaxed);
  s.shed_displaced = a.shed_displaced.load(std::memory_order_relaxed);
  s.cache_hits = a.cache_hits.load(std::memory_order_relaxed);
  s.cache_misses = a.cache_misses.load(std::memory_order_relaxed);
  s.cache_shared = a.cache_shared.load(std::memory_order_relaxed);
  s.pressure_degraded = a.pressure_degraded.load(std::memory_order_relaxed);
  s.budget_degraded = a.budget_degraded.load(std::memory_order_relaxed);
  s.drain_cancelled = a.drain_cancelled.load(std::memory_order_relaxed);
  s.checkpoint_resumes =
      a.checkpoint_resumes.load(std::memory_order_relaxed);
  s.checkpoint_corrupt =
      a.checkpoint_corrupt.load(std::memory_order_relaxed);
  s.attaches = a.attaches.load(std::memory_order_relaxed);
  s.detaches = a.detaches.load(std::memory_order_relaxed);
  s.reloads = a.reloads.load(std::memory_order_relaxed);
  s.reload_failures = a.reload_failures.load(std::memory_order_relaxed);
  s.manifest_writes = a.manifest_writes.load(std::memory_order_relaxed);
  s.manifest_write_failures =
      a.manifest_write_failures.load(std::memory_order_relaxed);
  s.dbs_recovered = a.dbs_recovered.load(std::memory_order_relaxed);
  s.dbs_recovery_failed =
      a.dbs_recovery_failed.load(std::memory_order_relaxed);
  s.gc_removed = a.gc_removed.load(std::memory_order_relaxed);
  s.idem_journaled = a.idem_journaled.load(std::memory_order_relaxed);
  s.idem_journal_failures =
      a.idem_journal_failures.load(std::memory_order_relaxed);
  s.idem_recovered = a.idem_recovered.load(std::memory_order_relaxed);
  s.connections_accepted =
      a.connections_accepted.load(std::memory_order_relaxed);
  s.connections_rejected =
      a.connections_rejected.load(std::memory_order_relaxed);
  s.net_faults = a.net_faults.load(std::memory_order_relaxed);
  return s;
}

std::vector<TenantStatsSnapshot> QrelServer::tenant_stats() const {
  MutexLock lock(&mutex_);
  std::vector<TenantStatsSnapshot> snapshot;
  snapshot.reserve(tenants_.size());
  for (const auto& [name, t] : tenants_) {
    TenantStatsSnapshot row;
    row.name = name;
    row.admitted = t.admitted;
    row.completed = t.completed;
    row.shed_rate = t.shed_rate;
    row.shed_quota = t.shed_quota;
    row.displaced = t.displaced;
    row.outstanding_work = t.outstanding_work;
    row.queued = t.queued;
    snapshot.push_back(std::move(row));
  }
  return snapshot;
}

// ---------------------------------------------------------------------------
// TCP transport.

Status QrelServer::Listen(int port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(std::string("socket: ") + ErrnoString(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr =
      htonl(options_.listen_any ? INADDR_ANY : INADDR_LOOPBACK);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    int saved = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal(std::string("bind: ") + ErrnoString(saved));
  }
  if (::listen(listen_fd_, 64) < 0) {
    int saved = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal(std::string("listen: ") + ErrnoString(saved));
  }
  sockaddr_in bound;
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0) {
    port_ = ntohs(bound.sin_port);
  }
  return Status::Ok();
}

Status QrelServer::ServeInBackground(int port) {
  QREL_RETURN_IF_ERROR(Listen(port));
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void QrelServer::ReapConnectionThreads() {
  std::vector<std::thread> finished;
  {
    MutexLock lock(&conn_mutex_);
    finished.swap(reaped_conn_threads_);
  }
  for (std::thread& t : finished) {
    t.join();
  }
}

size_t QrelServer::unreaped_connection_threads() const {
  MutexLock lock(&conn_mutex_);
  return reaped_conn_threads_.size();
}

void QrelServer::AcceptLoop() {
  while (!stop_accepting_.load(std::memory_order_acquire)) {
    // Join connection threads that retired since the last cycle; without
    // this a long-lived server would accumulate one unjoined thread per
    // connection ever accepted.
    ReapConnectionThreads();
    pollfd p;
    p.fd = listen_fd_;
    p.events = POLLIN;
    p.revents = 0;
    int ready = ::poll(&p, 1, 100);
    if (ready <= 0) {
      continue;  // timeout (re-check the stop flag) or EINTR
    }
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      continue;
    }
    stats_->connections_accepted.fetch_add(1, std::memory_order_relaxed);
    Status fault = QREL_FAULT_HIT("net.server.accept");
    if (!fault.ok()) {
      // A fault at the accept boundary closes the connection before any
      // response bytes: the client sees a clean EOF and reports a typed
      // UNAVAILABLE, never a torn frame.
      stats_->net_faults.fetch_add(1, std::memory_order_relaxed);
      ::close(fd);
      continue;
    }
    if (live_connections_.load(std::memory_order_acquire) >=
        options_.max_connections) {
      stats_->connections_rejected.fetch_add(1, std::memory_order_relaxed);
      WriteAll(fd, EncodeFrame(SerializeResponse(ErrorResponse(
                       Status::Unavailable("connection limit reached"),
                       RetryAfterHintMs()))));
      ::close(fd);
      continue;
    }
    if (options_.connection_idle_timeout_ms > 0) {
      timeval tv;
      tv.tv_sec =
          static_cast<time_t>(options_.connection_idle_timeout_ms / 1000);
      tv.tv_usec = static_cast<suseconds_t>(
          (options_.connection_idle_timeout_ms % 1000) * 1000);
      ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    }
    live_connections_.fetch_add(1, std::memory_order_acq_rel);
    MutexLock lock(&conn_mutex_);
    conns_.emplace_back();
    auto conn = std::prev(conns_.end());
    conn->fd = fd;
    conn->thread = std::thread([this, conn] { ConnectionLoop(conn); });
  }
}

void QrelServer::ConnectionLoop(std::list<Connection>::iterator conn) {
  const int fd = conn->fd;
  std::string buffer;
  char chunk[4096];
  for (;;) {
    // Assemble exactly one frame.
    std::string payload;
    bool closed = false;
    for (;;) {
      size_t consumed = 0;
      Status decoded = DecodeFrame(buffer, &consumed, &payload);
      if (!decoded.ok()) {
        // Unrecoverable framing: answer typed, then drop the stream.
        WriteAll(fd, EncodeFrame(SerializeResponse(ErrorResponse(decoded))));
        closed = true;
        break;
      }
      if (consumed > 0) {
        buffer.erase(0, consumed);
        break;
      }
      ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n == 0) {
        closed = true;  // clean client EOF
        break;
      }
      if (n < 0) {
        if (errno == EINTR) {
          continue;
        }
        closed = true;  // idle timeout or reset
        break;
      }
      buffer.append(chunk, static_cast<size_t>(n));
    }
    if (closed) {
      break;
    }
    Status fault = QREL_FAULT_HIT("net.server.read");
    if (!fault.ok()) {
      // Fault after a complete frame was read: report it typed (best
      // effort) and close.
      stats_->net_faults.fetch_add(1, std::memory_order_relaxed);
      WriteAll(fd, EncodeFrame(SerializeResponse(ErrorResponse(fault))));
      break;
    }
    std::string response = HandlePayload(payload);
    fault = QREL_FAULT_HIT("net.server.write");
    if (!fault.ok()) {
      // Fault at the write boundary: drop the whole frame, never part of
      // one — the client detects the missing response as a typed error.
      stats_->net_faults.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    if (!WriteAll(fd, EncodeFrame(response))) {
      break;
    }
  }
  // Retire before touching the fd: once the conns_ entry is gone,
  // Shutdown's sweep can no longer ::shutdown() this fd number, so a
  // kernel reuse of it after the close below can never be hit by
  // mistake. The thread handle is parked for the accept loop (or
  // Shutdown) to join — a thread cannot join itself.
  {
    MutexLock lock(&conn_mutex_);
    reaped_conn_threads_.push_back(std::move(conn->thread));
    conns_.erase(conn);
  }
  conn_cv_.NotifyAll();
  ::shutdown(fd, SHUT_RDWR);
  ::close(fd);
  live_connections_.fetch_sub(1, std::memory_order_acq_rel);
}

}  // namespace qrel
