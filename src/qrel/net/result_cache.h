// Memoizing result cache with single-flight deduplication.
//
// The server's QUERY results are deterministic functions of (query text,
// evaluation options, database content) — the engine seeds every sampler
// explicitly — so identical requests can be answered once and replayed.
// Two keys per request make that sound:
//
//  - the **flight key** digests everything the outcome can depend on,
//    including the execution envelope (timeout, work budget, pressure
//    level). Concurrent requests with the same flight key are exact
//    duplicates: only the first (the *leader*) computes, the rest block
//    and share the leader's outcome — a stampede of identical queries
//    costs one engine run and one queue slot.
//  - the **store key** digests only the determinism inputs (query,
//    epsilon/delta/seed/sample plan, database fingerprint) and *not* the
//    envelope. Only envelope-independent outcomes — OK, not degraded, not
//    partial — are published under it, so a result computed under a tight
//    budget can never be replayed to a caller with a generous one unless
//    it is the full-fidelity answer either would have produced.
//
// Invalidation: the store key mixes UnreliableDatabase::ContentFingerprint
// (PR-4), so any database edit changes every key — stale entries are
// unreachable rather than purged. With the multi-database catalog
// (net/catalog.h) unreachable is not enough: a detached or reloaded-away
// version's entries would pin its memory until LRU pressure finds them.
// Entries therefore carry a *tag* (the database fingerprint) and
// RetireTag(tag) evicts every entry published under it. Retired tags are
// remembered in a bounded ring so an in-flight leader that pinned the old
// version cannot re-publish under a retired tag after the eviction ran.
//
// Thread-safety: all methods are safe from any thread. The compute
// callback runs without the cache lock held.

#ifndef QREL_NET_RESULT_CACHE_H_
#define QREL_NET_RESULT_CACHE_H_

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "qrel/util/mutex.h"
#include "qrel/util/status.h"

namespace qrel {

// What one computation produced: the typed outcome plus the response
// fields to replay, and whether the value may be published to the store.
struct CachedResult {
  Status status;
  std::vector<std::pair<std::string, std::string>> fields;
  // Leader-set: true only for envelope-independent successes.
  bool storable = false;
};

struct ResultCacheStats {
  uint64_t hits = 0;                 // served from the store
  uint64_t misses = 0;               // led a computation
  uint64_t single_flight_shared = 0; // shared a concurrent leader's outcome
  uint64_t evictions = 0;            // LRU evictions from the store
  uint64_t retired = 0;              // entries evicted by RetireTag
  size_t entries = 0;                // current store size
};

class ResultCache {
 public:
  // `capacity` bounds the store (LRU eviction); 0 disables storing but
  // keeps single-flight deduplication.
  explicit ResultCache(size_t capacity);

  // The full lookup protocol. Checks the store under `store_key`; on a
  // miss, elects a leader among concurrent callers with the same
  // `flight_key`, runs `compute` on the leader, and hands every caller
  // the same CachedResult. The leader publishes to the store iff the
  // result is marked storable and `tag` has not been retired. `tag` is
  // the database content fingerprint the result was computed against
  // (0 = untagged, never retired). `*from_cache` reports a store hit;
  // `*shared` reports a follower that rode a leader's flight.
  CachedResult GetOrCompute(uint64_t store_key, uint64_t flight_key,
                            uint64_t tag,
                            const std::function<CachedResult()>& compute,
                            bool* from_cache, bool* shared);

  // Evicts every entry published under `tag` and remembers the tag so
  // stragglers still computing against it cannot re-publish. Called on
  // DETACH and on a content-changing RELOAD with the displaced version's
  // fingerprint. Returns the number of entries evicted.
  size_t RetireTag(uint64_t tag);

  ResultCacheStats stats() const;

  void Clear();

 private:
  // Both fields are guarded by the enclosing cache's mutex_ (a nested
  // struct cannot name the enclosing instance's capability, so the
  // analysis checks the accesses in ResultCache's methods instead).
  struct InFlight {
    CondVar done_cv;
    bool done = false;
    CachedResult result;
  };

  struct StoreEntry {
    CachedResult result;
    uint64_t tag = 0;
    std::list<uint64_t>::iterator lru_it;
  };

  void StoreLocked(uint64_t store_key, uint64_t tag,
                   const CachedResult& result) QREL_REQUIRES(mutex_);
  bool TagRetiredLocked(uint64_t tag) const QREL_REQUIRES(mutex_);

  // RetireTag memory: the last kRetiredRingSize retired fingerprints.
  // Bounded because version churn is unbounded; a tag aged out of the
  // ring can in principle be re-published by a very late straggler, but
  // by then the entry is merely unreachable (the key mixes the
  // fingerprint) and ordinary LRU pressure reclaims it.
  static constexpr size_t kRetiredRingSize = 64;

  mutable Mutex mutex_{LockRank::kResultCache};
  const size_t capacity_;  // immutable after construction
  std::unordered_map<uint64_t, StoreEntry> store_ QREL_GUARDED_BY(mutex_);
  // front = most recent
  std::list<uint64_t> lru_ QREL_GUARDED_BY(mutex_);
  std::unordered_map<uint64_t, std::shared_ptr<InFlight>> in_flight_
      QREL_GUARDED_BY(mutex_);
  std::vector<uint64_t> retired_ring_ QREL_GUARDED_BY(mutex_);
  size_t retired_next_ QREL_GUARDED_BY(mutex_) = 0;
  ResultCacheStats stats_ QREL_GUARDED_BY(mutex_);
};

}  // namespace qrel

#endif  // QREL_NET_RESULT_CACHE_H_
