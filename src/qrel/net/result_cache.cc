#include "qrel/net/result_cache.h"

namespace qrel {

ResultCache::ResultCache(size_t capacity) : capacity_(capacity) {}

CachedResult ResultCache::GetOrCompute(
    uint64_t store_key, uint64_t flight_key, uint64_t tag,
    const std::function<CachedResult()>& compute, bool* from_cache,
    bool* shared) {
  *from_cache = false;
  *shared = false;
  std::shared_ptr<InFlight> flight;
  {
    MutexLock lock(&mutex_);
    auto stored = store_.find(store_key);
    if (stored != store_.end()) {
      lru_.splice(lru_.begin(), lru_, stored->second.lru_it);
      ++stats_.hits;
      *from_cache = true;
      return stored->second.result;
    }
    auto inflight = in_flight_.find(flight_key);
    if (inflight != in_flight_.end()) {
      // An exact duplicate (same determinism inputs *and* envelope) is
      // already computing; ride its flight and share its outcome, typed
      // errors included.
      flight = inflight->second;
      while (!flight->done) {
        flight->done_cv.Wait(mutex_);
      }
      ++stats_.single_flight_shared;
      *shared = true;
      return flight->result;
    }
    flight = std::make_shared<InFlight>();
    in_flight_.emplace(flight_key, flight);
    ++stats_.misses;
  }

  CachedResult result = compute();

  {
    MutexLock lock(&mutex_);
    flight->result = result;
    flight->done = true;
    if (result.storable && result.status.ok()) {
      StoreLocked(store_key, tag, result);
    }
    in_flight_.erase(flight_key);
  }
  flight->done_cv.NotifyAll();
  return result;
}

void ResultCache::StoreLocked(uint64_t store_key, uint64_t tag,
                              const CachedResult& result) {
  if (capacity_ == 0) {
    return;
  }
  if (TagRetiredLocked(tag)) {
    // A straggler finishing against a detached/reloaded-away version:
    // publishing would re-pin memory RetireTag already reclaimed.
    return;
  }
  auto existing = store_.find(store_key);
  if (existing != store_.end()) {
    existing->second.result = result;
    existing->second.tag = tag;
    lru_.splice(lru_.begin(), lru_, existing->second.lru_it);
    return;
  }
  while (store_.size() >= capacity_) {
    store_.erase(lru_.back());
    lru_.pop_back();
    ++stats_.evictions;
  }
  lru_.push_front(store_key);
  store_.emplace(store_key, StoreEntry{result, tag, lru_.begin()});
}

bool ResultCache::TagRetiredLocked(uint64_t tag) const {
  if (tag == 0) {
    return false;
  }
  for (uint64_t retired : retired_ring_) {
    if (retired == tag) {
      return true;
    }
  }
  return false;
}

size_t ResultCache::RetireTag(uint64_t tag) {
  if (tag == 0) {
    return 0;
  }
  MutexLock lock(&mutex_);
  if (!TagRetiredLocked(tag)) {
    if (retired_ring_.size() < kRetiredRingSize) {
      retired_ring_.push_back(tag);
    } else {
      retired_ring_[retired_next_] = tag;
      retired_next_ = (retired_next_ + 1) % kRetiredRingSize;
    }
  }
  size_t evicted = 0;
  for (auto it = store_.begin(); it != store_.end();) {
    if (it->second.tag == tag) {
      lru_.erase(it->second.lru_it);
      it = store_.erase(it);
      ++evicted;
    } else {
      ++it;
    }
  }
  stats_.retired += evicted;
  return evicted;
}

ResultCacheStats ResultCache::stats() const {
  MutexLock lock(&mutex_);
  ResultCacheStats snapshot = stats_;
  snapshot.entries = store_.size();
  return snapshot;
}

void ResultCache::Clear() {
  MutexLock lock(&mutex_);
  store_.clear();
  lru_.clear();
  stats_.entries = 0;
}

}  // namespace qrel
