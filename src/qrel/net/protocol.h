// Wire protocol for qrel_server: framing, requests, responses, and the
// Status-to-wire error table.
//
// The protocol is a length-prefixed line protocol, chosen so that a
// client can always tell a complete response from a torn one:
//
//   frame    := <decimal payload length> '\n' <payload bytes>
//   payload  := <line> ('\n' <line>)*
//
// A connection closed mid-frame is detectable by construction (the byte
// count is known before the first payload byte), so a killed server can
// never make a client mistake a partial response for a complete one —
// the client surfaces a typed kUnavailable/kDataLoss instead.
//
// Request payloads (first line is the verb):
//
//   QUERY                 run a reliability query
//     line 2: the query text (logic/parser.h syntax)
//     lines 3+: options, one `key=value` per line — epsilon, delta, seed,
//       fixed_samples, timeout_ms, max_work, force_exact, force_approx
//   EXPLAIN               static analysis + admission dry run, never
//     executes; same layout as QUERY
//   HEALTH                serving state, queue depth, per-database
//     readiness (no body)
//   STATS                 all server counters (no body)
//   DRAIN                 stop accepting new work; in-flight finishes
//
// Admin verbs (the catalog plane, see net/catalog.h):
//
//   ATTACH                add a database to the catalog
//     line 2: the database name, line 3: the .udb file path
//   DETACH                drain and remove a database
//     line 2: the database name
//   RELOAD                stage a replacement off-path and swap atomically
//     line 2: the database name
//     line 3 (optional): a new source path; omitted = reload the
//       version's recorded path
//   DBLIST                one line per attached database (no body)
//
// Drill verbs (disabled unless the server opts in):
//
//   FAULT                 arm a fault-injection site (util/fault_injection.h)
//     line 2: the spec, `<site>[:<n>]` — including the crash-after-vfs.*
//       sites that SIGKILL the server at a chosen syscall boundary.
//     Refused with FAILED_PRECONDITION unless the server was started with
//     the fault verb enabled (qrel_server --enable-fault-verb); it exists
//     for crash drills and chaos tests, never for production traffic.
//
// QUERY/EXPLAIN additionally take `db=<name>` (route to a catalog
// database; omitted = the server's default database) and `tenant=<name>`
// (the accounting identity for per-tenant quotas and STATS counters;
// omitted = the shared "default" tenant). QUERY also takes
// `idem=<key>` — a client-chosen idempotency key ([A-Za-z0-9_.-]{1,64});
// when the server runs with --state-dir the admitted key is journaled
// next to the request's checkpoint, so a retry of the same key after a
// server crash resumes the computation instead of restarting it
// (net/manifest.h). The response echoes `idempotency_key` and reports
// `recovered=1` when the request continued work journaled before a crash.
//
// Response payloads:
//
//   'OK' '\n' (<key> '=' <value> '\n')*
//   'ERR' ' ' <wire code> '\n' ('retry_after_ms' '=' <n> '\n')?
//         ('message' '=' <text> '\n')?
//
// The ERR line's wire code comes from the table below, which maps the
// *full* Status taxonomy (util/status.h) onto wire error responses in one
// place. `retryable` marks the codes for which an identical retry can
// succeed once the server sheds load — those responses carry a
// Retry-After hint.

#ifndef QREL_NET_PROTOCOL_H_
#define QREL_NET_PROTOCOL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "qrel/util/status.h"

namespace qrel {

// ---------------------------------------------------------------------------
// The one Status-taxonomy-to-wire table. Every StatusCode has exactly one
// row: code, wire token (the ERR line spelling), and whether a backoff-
// and-retry of the identical request is a sensible client reaction.
#define QREL_NET_WIRE_STATUS_TABLE(X)                 \
  X(kOk, "OK", false)                                 \
  X(kInvalidArgument, "INVALID_ARGUMENT", false)      \
  X(kNotFound, "NOT_FOUND", false)                    \
  X(kOutOfRange, "OUT_OF_RANGE", false)               \
  X(kFailedPrecondition, "FAILED_PRECONDITION", false)\
  X(kInternal, "INTERNAL", false)                     \
  X(kDeadlineExceeded, "DEADLINE_EXCEEDED", true)     \
  X(kResourceExhausted, "RESOURCE_EXHAUSTED", false)  \
  X(kCancelled, "CANCELLED", false)                   \
  X(kDataLoss, "DATA_LOSS", false)                    \
  X(kUnavailable, "UNAVAILABLE", true)

// The ERR-line spelling of `code` ("UNAVAILABLE", ...).
const char* WireErrorToken(StatusCode code);
// Whether responses with this code should carry a Retry-After hint.
bool WireErrorRetryable(StatusCode code);
// Inverse of WireErrorToken; nullopt for an unknown token.
std::optional<StatusCode> StatusCodeFromWireToken(std::string_view token);

// ---------------------------------------------------------------------------
// Framing.

// Frames larger than this are rejected on both sides: the protocol serves
// queries and key=value reports, not bulk data.
inline constexpr size_t kMaxFramePayload = 1u << 20;

// Error messages embed client-controlled text (the offending verb, option
// line, or query); capping them guarantees an error response always fits a
// frame, no matter how large the request that provoked it was. A request at
// the 1 MiB frame limit must never be able to crash the server by inflating
// its own echo.
inline constexpr size_t kMaxErrorMessageBytes = 512;

// `length '\n' payload`. Never fails: a payload over kMaxFramePayload is
// truncated at the last line boundary that fits (dropping whole tail
// lines), so the receiver always sees a decodable, well-formed payload.
std::string EncodeFrame(std::string_view payload);

// Incremental decode: tries to extract one complete frame from the front
// of `buffer`. Outcomes:
//   OK, *consumed > 0   — *payload holds the frame, drop *consumed bytes;
//   OK, *consumed == 0  — `buffer` holds only a prefix, read more bytes;
//   kInvalidArgument    — malformed or oversized length prefix: the
//                         stream is unrecoverable, close the connection.
Status DecodeFrame(std::string_view buffer, size_t* consumed,
                   std::string* payload);

// ---------------------------------------------------------------------------
// Requests.

enum class RequestVerb {
  kQuery,
  kExplain,
  kHealth,
  kStats,
  kDrain,
  kAttach,
  kDetach,
  kReload,
  kDblist,
  kFault,
};

const char* RequestVerbName(RequestVerb verb);

// Per-request option overrides; unset fields take the server defaults.
struct RequestOptions {
  std::optional<double> epsilon;
  std::optional<double> delta;
  std::optional<uint64_t> seed;
  std::optional<uint64_t> fixed_samples;
  std::optional<uint64_t> timeout_ms;
  std::optional<uint64_t> max_work;
  bool force_exact = false;
  bool force_approximate = false;
  std::string db;      // catalog database to route to; empty = default
  std::string tenant;  // accounting identity; empty = "default"
  // Client-chosen idempotency key; empty = none. With --state-dir the
  // server journals admitted keys so a post-crash retry resumes from the
  // request's checkpoint (see net/manifest.h).
  std::string idempotency_key;
};

struct Request {
  RequestVerb verb = RequestVerb::kHealth;
  std::string query;   // QUERY / EXPLAIN only
  std::string target;  // ATTACH / DETACH / RELOAD: the database name;
                       // FAULT: the `<site>[:<n>]` spec
  std::string path;    // ATTACH (required) / RELOAD (optional) source path
  RequestOptions options;
};

// Parses a request payload. kInvalidArgument on an unknown verb, a
// missing query line, or an unknown/malformed option.
StatusOr<Request> ParseRequest(std::string_view payload);

// Serializes a request payload (the client side of ParseRequest).
std::string SerializeRequest(const Request& request);

// ---------------------------------------------------------------------------
// Responses.

struct Response {
  Status status;  // OK or the typed error on the ERR line
  // Backoff hint, only on retryable errors (see the wire table).
  std::optional<uint64_t> retry_after_ms;
  // Ordered key=value payload ("reliability", "method", ...). Values must
  // not contain newlines; SerializeResponse flattens any that do.
  std::vector<std::pair<std::string, std::string>> fields;

  bool ok() const { return status.ok(); }
  // First value for `key`, nullopt when absent.
  std::optional<std::string> Field(std::string_view key) const;
};

std::string SerializeResponse(const Response& response);

// Parses a response payload (the client side). kInvalidArgument on a
// malformed status line or unknown wire code — distinct from the parsed
// response itself carrying an error status.
StatusOr<Response> ParseResponse(std::string_view payload);

// The uniform error response for `status` (never call with OK):
// ERR line from the wire table, Retry-After hint for retryable codes,
// message field with newlines flattened and capped at
// kMaxErrorMessageBytes on serialization.
Response ErrorResponse(const Status& status,
                       std::optional<uint64_t> retry_after_ms = std::nullopt);

}  // namespace qrel

#endif  // QREL_NET_PROTOCOL_H_
