#include "qrel/net/manifest.h"

#include <utility>

#include "qrel/net/catalog.h"

namespace qrel {

namespace {

// The manifest names end up in filenames and wire responses, so they are
// held to the catalog's identifier grammar; paths only need to be
// non-empty and bounded.
constexpr size_t kMaxSourcePathLength = 4096;

Status ValidateEntry(const ManifestEntry& entry) {
  if (!DbCatalog::ValidName(entry.name)) {
    return Status::InvalidArgument("manifest entry has an invalid database "
                                   "name: \"" +
                                   entry.name + "\"");
  }
  if (entry.source_path.empty() ||
      entry.source_path.size() > kMaxSourcePathLength) {
    return Status::InvalidArgument("manifest entry for \"" + entry.name +
                                   "\" has an empty or oversized source "
                                   "path");
  }
  if (entry.version == 0) {
    return Status::DataLoss("manifest entry for \"" + entry.name +
                            "\" has version 0 (versions start at 1)");
  }
  return Status::Ok();
}

}  // namespace

uint64_t ManifestFingerprint(const CatalogManifest& manifest) {
  Fingerprint fp;
  fp.Mix(kCatalogManifestKind);
  fp.Mix(static_cast<uint64_t>(manifest.entries.size()));
  for (const ManifestEntry& entry : manifest.entries) {
    fp.Mix(entry.name);
    fp.Mix(entry.source_path);
    fp.Mix(entry.version);
    fp.Mix(entry.fingerprint);
  }
  return fp.value();
}

SnapshotData EncodeManifest(const CatalogManifest& manifest) {
  SnapshotWriter writer;
  writer.U32(static_cast<uint32_t>(manifest.entries.size()));
  for (const ManifestEntry& entry : manifest.entries) {
    writer.String(entry.name);
    writer.String(entry.source_path);
    writer.U64(entry.version);
    writer.U64(entry.fingerprint);
  }
  SnapshotData data;
  data.kind = kCatalogManifestKind;
  data.fingerprint = ManifestFingerprint(manifest);
  data.work_spent = 0;
  data.payload = writer.TakeBytes();
  return data;
}

StatusOr<CatalogManifest> DecodeManifest(const SnapshotData& data) {
  if (data.kind != kCatalogManifestKind) {
    return Status::InvalidArgument("not a catalog manifest (kind \"" +
                                   data.kind + "\")");
  }
  if (data.work_spent != 0) {
    return Status::DataLoss("catalog manifest has a nonzero work counter");
  }
  SnapshotReader reader(data.payload);
  uint32_t count = 0;
  QREL_RETURN_IF_ERROR(reader.U32(&count));
  if (count > kMaxManifestEntries) {
    return Status::DataLoss("catalog manifest claims " +
                            std::to_string(count) + " entries (max " +
                            std::to_string(kMaxManifestEntries) + ")");
  }
  CatalogManifest manifest;
  manifest.entries.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    ManifestEntry entry;
    QREL_RETURN_IF_ERROR(reader.String(&entry.name));
    QREL_RETURN_IF_ERROR(reader.String(&entry.source_path));
    QREL_RETURN_IF_ERROR(reader.U64(&entry.version));
    QREL_RETURN_IF_ERROR(reader.U64(&entry.fingerprint));
    QREL_RETURN_IF_ERROR(ValidateEntry(entry));
    if (!manifest.entries.empty() &&
        manifest.entries.back().name >= entry.name) {
      return Status::DataLoss(
          "catalog manifest entries are not strictly sorted by name");
    }
    manifest.entries.push_back(std::move(entry));
  }
  QREL_RETURN_IF_ERROR(reader.ExpectEnd());
  if (data.fingerprint != ManifestFingerprint(manifest)) {
    return Status::DataLoss("catalog manifest fingerprint mismatch");
  }
  return manifest;
}

Status WriteManifestFile(const std::string& path,
                         const CatalogManifest& manifest) {
  return WriteSnapshotFile(path, EncodeManifest(manifest));
}

StatusOr<CatalogManifest> ReadManifestFile(const std::string& path) {
  QREL_ASSIGN_OR_RETURN(SnapshotData data, ReadSnapshotFile(path));
  return DecodeManifest(data);
}

uint64_t IdempotencyFingerprint(const IdempotencyRecord& record) {
  Fingerprint fp;
  fp.Mix(kIdempotencyJournalKind);
  fp.Mix(record.key);
  fp.Mix(record.flight_key);
  fp.Mix(record.store_key);
  fp.Mix(record.db_fingerprint);
  return fp.value();
}

SnapshotData EncodeIdempotencyRecord(const IdempotencyRecord& record) {
  SnapshotWriter writer;
  writer.String(record.key);
  writer.U64(record.flight_key);
  writer.U64(record.store_key);
  writer.U64(record.db_fingerprint);
  SnapshotData data;
  data.kind = kIdempotencyJournalKind;
  data.fingerprint = IdempotencyFingerprint(record);
  data.work_spent = 0;
  data.payload = writer.TakeBytes();
  return data;
}

StatusOr<IdempotencyRecord> DecodeIdempotencyRecord(const SnapshotData& data) {
  if (data.kind != kIdempotencyJournalKind) {
    return Status::InvalidArgument("not an idempotency journal record "
                                   "(kind \"" +
                                   data.kind + "\")");
  }
  if (data.work_spent != 0) {
    return Status::DataLoss(
        "idempotency journal record has a nonzero work counter");
  }
  SnapshotReader reader(data.payload);
  IdempotencyRecord record;
  QREL_RETURN_IF_ERROR(reader.String(&record.key));
  QREL_RETURN_IF_ERROR(reader.U64(&record.flight_key));
  QREL_RETURN_IF_ERROR(reader.U64(&record.store_key));
  QREL_RETURN_IF_ERROR(reader.U64(&record.db_fingerprint));
  QREL_RETURN_IF_ERROR(reader.ExpectEnd());
  if (!ValidIdempotencyKey(record.key)) {
    return Status::DataLoss("idempotency journal record has a malformed "
                            "key");
  }
  if (data.fingerprint != IdempotencyFingerprint(record)) {
    return Status::DataLoss("idempotency journal fingerprint mismatch");
  }
  return record;
}

Status WriteIdempotencyFile(const std::string& path,
                            const IdempotencyRecord& record) {
  return WriteSnapshotFile(path, EncodeIdempotencyRecord(record));
}

StatusOr<IdempotencyRecord> ReadIdempotencyFile(const std::string& path) {
  QREL_ASSIGN_OR_RETURN(SnapshotData data, ReadSnapshotFile(path));
  return DecodeIdempotencyRecord(data);
}

bool ValidIdempotencyKey(std::string_view key) {
  return DbCatalog::ValidName(key);
}

}  // namespace qrel
