// Backoff machinery for the serving layer, both sides of the wire.
//
// Server side: RetryAfterEstimator turns observed queue drain rate into
// the Retry-After hint attached to retryable errors. PR 6 used a fixed
// base scaled by queue depth; that over-hints when jobs are cheap and
// under-hints when a hard query is grinding. The estimator keeps an
// exponentially-weighted moving average of per-job service time and
// predicts the wait for a newly shed request as
//
//   hint = ewma_service_time * (queue_depth + 1) / workers
//
// clamped to [min, max]. Before the first completed job it falls back to
// the PR 6 formula so a cold server still hints sensibly.
//
// Client side: RetryPolicy + CallWithRetry implement bounded exponential
// backoff that honors the server's Retry-After hint and retries only the
// codes the wire table marks retryable. Clock, sleep, and jitter are
// injectable std::functions so unit tests drive the loop with a fake
// clock and deterministic jitter; the defaults use the steady clock,
// real sleeping, and uniform half-jitter.

#ifndef QREL_NET_RETRY_H_
#define QREL_NET_RETRY_H_

#include <cstdint>
#include <functional>

#include "qrel/net/protocol.h"
#include "qrel/util/mutex.h"
#include "qrel/util/status.h"

namespace qrel {

// ---------------------------------------------------------------------------
// Server side: the Retry-After estimator.

class RetryAfterEstimator {
 public:
  // `fallback_base_ms` reproduces the pre-sample formula
  // base * (1 + depth / workers); hints are clamped to [min_ms, max_ms].
  RetryAfterEstimator(uint64_t fallback_base_ms, uint64_t min_ms,
                      uint64_t max_ms, double alpha = 0.2);

  // Feeds one completed job's wall-clock service time into the EWMA.
  // Thread-safe; called by every worker on job completion.
  void RecordServiceTimeMs(double ms);

  // Predicted wait until a newly shed request could admit, given the
  // current queue depth and worker count.
  uint64_t HintMs(size_t queue_depth, size_t workers) const;

  // Completed-job samples recorded so far (diagnostics / tests).
  uint64_t sample_count() const;

 private:
  uint64_t ClampMs(double ms) const;

  const uint64_t fallback_base_ms_;
  const uint64_t min_ms_;
  const uint64_t max_ms_;
  const double alpha_;

  mutable Mutex mutex_{LockRank::kRetryEstimator};
  double ewma_ms_ QREL_GUARDED_BY(mutex_) = 0.0;
  uint64_t samples_ QREL_GUARDED_BY(mutex_) = 0;
};

// ---------------------------------------------------------------------------
// Client side: bounded exponential backoff.

struct RetryPolicy {
  int max_attempts = 4;              // total attempts, including the first
  uint64_t initial_backoff_ms = 50;  // before the first retry
  double backoff_multiplier = 2.0;
  uint64_t max_backoff_ms = 2000;
  // Hard wall for the whole loop (attempts + waits). A wait that would
  // cross it is not taken: the last error returns instead.
  uint64_t total_deadline_ms = 10000;

  // Injectable nondeterminism, defaulted in EffectiveOrDie() when null:
  // `jitter(cap)` returns extra milliseconds in [0, cap] added to each
  // wait; `sleep_ms` blocks; `now_ms` is a monotone millisecond clock.
  std::function<uint64_t(uint64_t cap)> jitter;
  std::function<void(uint64_t ms)> sleep_ms;
  std::function<uint64_t()> now_ms;
};

// Runs `attempt` under `policy`. Retries when the attempt's status — the
// transport error, or the error carried by an otherwise-parseable
// response — is retryable per the wire table, waiting
// max(backoff, response Retry-After) + jitter between attempts. Returns
// the first success, the first non-retryable error, or the last error
// once attempts or the deadline run out. Exposed separately from
// QrelClient so the loop is unit-testable with scripted outcomes.
StatusOr<Response> CallWithRetry(
    const std::function<StatusOr<Response>()>& attempt,
    const RetryPolicy& policy);

}  // namespace qrel

#endif  // QREL_NET_RETRY_H_
