// Database catalog for qrel_server: many named databases, each an
// immutable versioned snapshot behind an RCU-style shared_ptr swap.
//
// The serving problem this solves: the paper's dichotomy means one served
// workload mixes PTIME and #P-hard queries, and an operator must be able
// to change the data under that workload without a restart and without
// one tenant's in-flight hard query ever observing a half-swapped
// database. The invariants, in order of importance:
//
//  - **Immutability.** A DbVersion is never mutated after construction.
//    Readers pin a version with a shared_ptr copy (Resolve) and keep it
//    for the whole request; a concurrent Reload cannot change what they
//    compute — answers stay bit-identical to the pinned version.
//
//  - **Off-path staging.** Reload/Attach parse, verify and fingerprint
//    the replacement entirely outside the catalog lock; the lock is taken
//    only for the O(1) pointer swap. A slow or failing load never stalls
//    or disturbs serving.
//
//  - **All-or-nothing swap.** Every staging stage (load, verify,
//    fingerprint, swap) has a fault site (util/fault_injection.h:
//    net.catalog.*). A failure at any stage — bad file, parse error,
//    injected crash — leaves the previous version serving untouched and
//    the entry in the serving state.
//
//  - **Two-phase detach.** BeginDetach flips the entry to draining (new
//    Resolve calls get a typed kUnavailable) but leaves the version
//    alive so the server can drain or cancel the work pinned to it, the
//    way SIGTERM drains the whole process; FinishDetach then drops the
//    entry. The caller owns evicting the detached fingerprint from the
//    result cache.
//
// Thread-safety: all methods are safe from any thread. Per-entry
// reloading/draining flags serialize conflicting admin operations
// (concurrent reloads of one database fail typed instead of racing).

#ifndef QREL_NET_CATALOG_H_
#define QREL_NET_CATALOG_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "qrel/engine/engine.h"
#include "qrel/util/mutex.h"
#include "qrel/util/status.h"

namespace qrel {

// One immutable database snapshot. Everything a request needs — the
// engine, the content fingerprint that keys caches and checkpoints, and
// the summary stats HEALTH/DBLIST report — travels together so a pinned
// version is self-contained.
struct DbVersion {
  std::string name;
  uint64_t version = 0;      // monotone per name, starts at 1
  uint64_t fingerprint = 0;  // UnreliableDatabase::ContentFingerprint
  std::string source_path;   // empty when attached from memory
  int universe_size = 0;
  size_t fact_count = 0;
  size_t uncertain_atoms = 0;
  ReliabilityEngine engine;

  DbVersion(std::string name_in, uint64_t version_in,
            std::string source_path_in, ReliabilityEngine engine_in);
};

enum class DbState { kServing, kReloading, kDraining };
const char* DbStateName(DbState state);

// A snapshot row of List(): the DbVersion summary plus the entry's
// current admin state.
struct DbInfo {
  std::string name;
  uint64_t version = 0;
  uint64_t fingerprint = 0;
  DbState state = DbState::kServing;
  std::string source_path;
  int universe_size = 0;
  size_t fact_count = 0;
  size_t uncertain_atoms = 0;
};

// What a successful Reload returns: the displaced and the new version.
// `changed` is false when the reloaded content fingerprints identically
// (an idempotent reload) — the caller then has no cache entries to evict.
struct ReloadOutcome {
  std::shared_ptr<const DbVersion> old_version;
  std::shared_ptr<const DbVersion> new_version;
  bool changed = false;
};

class DbCatalog {
 public:
  DbCatalog() = default;
  DbCatalog(const DbCatalog&) = delete;
  DbCatalog& operator=(const DbCatalog&) = delete;

  // Database names are identifiers, not paths: [A-Za-z0-9_.-], 1..64
  // bytes. Keeps names safe to embed in response fields and filenames.
  static bool ValidName(std::string_view name);

  // Stages `path` (load, verify, fingerprint) and adds it under `name` as
  // version 1. kAlreadyExists is spelled kFailedPrecondition (the status
  // taxonomy has no richer code); kInvalidArgument for a bad name.
  Status Attach(const std::string& name, const std::string& path);
  // Attach from an in-memory database (tests, benches, embedded use).
  Status AttachDatabase(const std::string& name, UnreliableDatabase database,
                        std::string source_path = "");

  // Stages a replacement off the serving path and swaps it in atomically.
  // `path` empty means "reload from the version's recorded source_path".
  // On any failure the previous version keeps serving and the entry
  // returns to the serving state.
  StatusOr<ReloadOutcome> Reload(const std::string& name,
                                 const std::string& path = "");
  // Reload from an in-memory replacement (same staging and swap sites).
  StatusOr<ReloadOutcome> ReloadDatabase(const std::string& name,
                                         UnreliableDatabase database);

  // Phase 1 of detach: marks the entry draining so every subsequent
  // Resolve fails typed, and returns the still-live version so the caller
  // can drain the work pinned to it. Fails typed when the entry is
  // unknown, already draining, or mid-reload.
  StatusOr<std::shared_ptr<const DbVersion>> BeginDetach(
      const std::string& name);
  // Phase 2: drops the entry. The caller must have drained pinned work.
  void FinishDetach(const std::string& name);
  // Aborts phase 1 (the drain could not complete): back to serving.
  void CancelDetach(const std::string& name);

  // Pins the current version of `name`: kNotFound for an unknown name,
  // kUnavailable while the entry is draining. Never blocks on staging —
  // a mid-reload entry serves its previous version.
  StatusOr<std::shared_ptr<const DbVersion>> Resolve(
      const std::string& name) const;

  std::vector<DbInfo> List() const;
  size_t size() const;

 private:
  struct Entry {
    std::shared_ptr<const DbVersion> current;
    bool reloading = false;
    bool draining = false;
  };

  // The off-lock staging pipeline shared by Attach and Reload: load (or
  // adopt the given database), verify, fingerprint — each stage behind
  // its net.catalog.* fault site.
  static StatusOr<std::shared_ptr<const DbVersion>> Stage(
      const std::string& name, uint64_t version, const std::string& path,
      UnreliableDatabase* database);

  Status AttachImpl(const std::string& name, const std::string& path,
                    UnreliableDatabase* database);
  StatusOr<ReloadOutcome> ReloadImpl(const std::string& name,
                                     const std::string& path,
                                     UnreliableDatabase* database);

  mutable Mutex mutex_{LockRank::kCatalog};
  // Ordered so listings are stable.
  std::map<std::string, Entry> entries_ QREL_GUARDED_BY(mutex_);
};

}  // namespace qrel

#endif  // QREL_NET_CATALOG_H_
