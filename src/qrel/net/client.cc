#include "qrel/net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace qrel {

QrelClient::~QrelClient() { Close(); }

Status QrelClient::Connect(int port, uint64_t recv_timeout_ms) {
  Close();
  port_ = port;
  recv_timeout_ms_ = recv_timeout_ms;
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    return Status::Internal(std::string("socket: ") + ErrnoString(errno));
  }
  if (recv_timeout_ms > 0) {
    timeval tv;
    tv.tv_sec = static_cast<time_t>(recv_timeout_ms / 1000);
    tv.tv_usec = static_cast<suseconds_t>((recv_timeout_ms % 1000) * 1000);
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    int saved = errno;
    Close();
    return Status::Unavailable(std::string("connect: ") +
                               ErrnoString(saved));
  }
  return Status::Ok();
}

void QrelClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

StatusOr<Response> QrelClient::Call(const Request& request) {
  if (fd_ < 0) {
    return Status::FailedPrecondition("client is not connected");
  }
  std::string frame = EncodeFrame(SerializeRequest(request));
  size_t sent = 0;
  while (sent < frame.size()) {
    ssize_t n =
        ::send(fd_, frame.data() + sent, frame.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      int saved = errno;
      Close();
      return Status::Unavailable(std::string("send: ") +
                                 ErrnoString(saved));
    }
    sent += static_cast<size_t>(n);
  }

  bool got_bytes = !buffer_.empty();
  char chunk[4096];
  for (;;) {
    size_t consumed = 0;
    std::string payload;
    Status decoded = DecodeFrame(buffer_, &consumed, &payload);
    if (!decoded.ok()) {
      Close();
      return decoded;
    }
    if (consumed > 0) {
      buffer_.erase(0, consumed);
      return ParseResponse(payload);
    }
    ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n == 0) {
      Close();
      // The framing makes a torn response detectable by construction: a
      // clean EOF with zero response bytes means the whole exchange was
      // dropped (retryable), EOF inside a frame means bytes were lost.
      if (got_bytes) {
        return Status::DataLoss("connection closed mid-frame");
      }
      return Status::Unavailable("connection closed before a response");
    }
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      int saved = errno;
      Close();
      if (saved == EAGAIN || saved == EWOULDBLOCK) {
        return Status::DeadlineExceeded("timed out waiting for a response");
      }
      return Status::Unavailable(std::string("recv: ") +
                                 ErrnoString(saved));
    }
    got_bytes = true;
    buffer_.append(chunk, static_cast<size_t>(n));
  }
}

StatusOr<Response> QrelClient::Query(const std::string& query,
                                     const RequestOptions& options) {
  Request request;
  request.verb = RequestVerb::kQuery;
  request.query = query;
  request.options = options;
  return Call(request);
}

StatusOr<Response> QrelClient::Explain(const std::string& query,
                                       const RequestOptions& options) {
  Request request;
  request.verb = RequestVerb::kExplain;
  request.query = query;
  request.options = options;
  return Call(request);
}

StatusOr<Response> QrelClient::Health() {
  Request request;
  request.verb = RequestVerb::kHealth;
  return Call(request);
}

StatusOr<Response> QrelClient::Stats() {
  Request request;
  request.verb = RequestVerb::kStats;
  return Call(request);
}

StatusOr<Response> QrelClient::Drain() {
  Request request;
  request.verb = RequestVerb::kDrain;
  return Call(request);
}

StatusOr<Response> QrelClient::Attach(const std::string& name,
                                      const std::string& path) {
  Request request;
  request.verb = RequestVerb::kAttach;
  request.target = name;
  request.path = path;
  return Call(request);
}

StatusOr<Response> QrelClient::Detach(const std::string& name) {
  Request request;
  request.verb = RequestVerb::kDetach;
  request.target = name;
  return Call(request);
}

StatusOr<Response> QrelClient::Reload(const std::string& name,
                                      const std::string& path) {
  Request request;
  request.verb = RequestVerb::kReload;
  request.target = name;
  request.path = path;
  return Call(request);
}

StatusOr<Response> QrelClient::DbList() {
  Request request;
  request.verb = RequestVerb::kDblist;
  return Call(request);
}

StatusOr<Response> QrelClient::Fault(const std::string& spec) {
  Request request;
  request.verb = RequestVerb::kFault;
  request.target = spec;
  return Call(request);
}

StatusOr<Response> QrelClient::QueryWithRetry(const std::string& query,
                                              const RequestOptions& options,
                                              const RetryPolicy& policy) {
  if (port_ < 0) {
    return Status::FailedPrecondition(
        "QueryWithRetry needs a prior Connect() to know where to reconnect");
  }
  return CallWithRetry(
      [this, &query, &options]() -> StatusOr<Response> {
        if (!connected()) {
          // The previous attempt's transport failure closed the socket;
          // a retry only makes sense on a fresh connection.
          QREL_RETURN_IF_ERROR(Connect(port_, recv_timeout_ms_));
        }
        return Query(query, options);
      },
      policy);
}

}  // namespace qrel
