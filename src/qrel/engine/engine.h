// One-call reliability engine: parse a query, statically analyze it,
// classify it, evaluate it on the observed database, and compute or
// approximate its reliability with the best algorithm the paper provides
// for its class.
//
// Every run starts with static analysis (logic/analyze.h,
// datalog/analyze.h): hard errors — unknown predicates, arity mismatches,
// unsafe or unstratifiable Datalog rules — fail fast with a typed
// kInvalidArgument carrying a source-located diagnostic, before any
// RunContext budget is charged. Queries the simplifier proves statically
// true or false short-circuit to the exact closed form (R = 1, H = 0)
// without sampling a single world. Otherwise dispatch uses the *simplified*
// formula's class, which by the simplifier contract is never a worse rung.
//
// Strategy (in order):
//   0. statically true/false  → closed form, no evaluation at all;
//   1. quantifier-free        → Proposition 3.1 exact polynomial algorithm;
//   2. safe conjunctive       → safe-plan extensional evaluation
//                               (logic/safe_plan.h + lifted/extensional.h):
//                               exact rationals, no worlds, no samples;
//   3. small world space      → Theorem 4.2 exact enumeration
//                               (2^#uncertain ≤ options.max_exact_worlds);
//   4. existential/universal  → Corollary 5.5 absolute-error approximation
//                               (Theorem 5.4 grounding + Karp-Luby);
//   5. anything else          → Theorem 5.12 padded estimator.
//
// Explain() runs the same analysis and rung selection *without executing*:
// it returns the diagnostics, the simplified query, the cost pre-analysis
// (grounding size n^k, world count 2^u) and the planned method string,
// which is always a prefix of the EngineReport::method an actual run with
// the same options produces.
//
// Resource governance: EngineOptions::run_context carries a wall-clock
// deadline, a work budget and a cancellation flag into every rung. An
// envelope that is already tripped at entry fails fast with its budget
// status. When a deadline or work budget trips *mid-rung* and
// degrade_on_budget is set, the engine falls down the ladder instead of
// failing — the exact rung's partial work is discarded, the randomized
// rungs run under whatever envelope remains, and a last-resort padded run
// with `reserve_samples` fixed samples (ungoverned, so it always finishes)
// guarantees an answer. The report flags the fallback (`degraded`,
// `degradation_reason`) and the weakened guarantee (`partial`,
// `achieved_epsilon`/`achieved_delta`). Cancellation never degrades: it
// always surfaces as kCancelled.
//
// Crash-safe checkpointing: attach a Checkpointer to the RunContext
// (RunContext::SetCheckpointer, after Checkpointer::LoadForResume) and
// every rung's outermost loop periodically snapshots its progress —
// counters, accumulators, RNG state — through util/snapshot.h. A run
// killed at any point and re-run with the same options resumes from the
// latest snapshot and produces a bit-identical report (estimate, samples,
// budget_spent). Snapshots are keyed by algorithm and parameter
// fingerprint, so a rung simply ignores another rung's snapshot, and a
// parameter change refuses to resume instead of silently biasing the
// estimate.

#ifndef QREL_ENGINE_ENGINE_H_
#define QREL_ENGINE_ENGINE_H_

#include <optional>
#include <string>
#include <vector>

#include "qrel/core/absolute.h"
#include "qrel/core/approx.h"
#include "qrel/core/reliability.h"
#include "qrel/datalog/analyze.h"
#include "qrel/datalog/reliability.h"
#include "qrel/logic/analyze.h"
#include "qrel/logic/classify.h"
#include "qrel/logic/diagnostics.h"
#include "qrel/prob/unreliable_database.h"
#include "qrel/util/run_context.h"
#include "qrel/util/status.h"

namespace qrel {

struct EngineOptions {
  // Targets for the randomized paths (absolute error on R_ψ).
  double epsilon = 0.02;
  double delta = 0.02;
  uint64_t seed = 1;

  // Overrides the theorem-derived Monte Carlo sample counts (per Boolean
  // sub-estimate) on the randomized paths. The derived counts honor the
  // (ε, δ) guarantee but grow steeply with n^arity; set this for budgeted
  // estimates.
  std::optional<uint64_t> fixed_samples;

  // Use exact world enumeration when 2^#uncertain-atoms is at most this.
  uint64_t max_exact_worlds = uint64_t{1} << 16;
  // Force a path regardless of the heuristics (both false = automatic).
  bool force_exact = false;
  bool force_approximate = false;

  // Also evaluate ψ on the observed database and report the answer set
  // (skipped when n^arity exceeds 2^16 tuples).
  bool include_observed_answers = true;

  // Execution envelope for the whole run (non-owning, nullable; see
  // util/run_context.h). Every rung charges its work — worlds, samples,
  // ground clauses, fixpoint nodes — against it.
  RunContext* run_context = nullptr;

  // Fall down the strategy ladder when the envelope trips mid-rung
  // (deadline or work budget only — cancellation always propagates).
  // force_exact suppresses degradation: an explicit demand for an exact
  // answer is honored even at the price of a budget error.
  bool degrade_on_budget = true;

  // Per-Boolean-sub-estimate sample count for the last-resort padded rung,
  // which runs ungoverned so a degraded run still returns an estimate.
  uint64_t reserve_samples = 384;
};

struct EngineReport {
  QueryClass query_class = QueryClass::kGeneralFirstOrder;
  std::string method;          // which algorithm ran
  bool is_exact = false;       // whether `reliability` is exact
  double reliability = 0.0;    // R_ψ(𝔇), exact or estimated
  double expected_error = 0.0; // H_ψ(𝔇) = (1 − R)·n^k
  // The exact rational value, when an exact path ran.
  std::optional<Rational> exact_reliability;
  uint64_t samples = 0;  // Monte Carlo samples drawn (0 on exact paths)
  // ψ^𝔄, if requested and small enough.
  std::optional<std::vector<Tuple>> observed_answers;

  // A cheaper rung than the planned one produced the answer because the
  // execution envelope tripped mid-run; `degradation_reason` says why.
  bool degraded = false;
  std::string degradation_reason;
  // The estimate rests on fewer samples than the (ε, δ) plan called for —
  // a truncated sampling run or the fixed-size reserve rung.
  bool partial = false;
  // The guarantee those samples actually deliver (absolute error on R at
  // confidence achieved_delta), when weaker than the requested epsilon.
  std::optional<double> achieved_epsilon;
  std::optional<double> achieved_delta;
  // Work units charged to options.run_context by this run (0 when
  // ungoverned).
  uint64_t budget_spent = 0;
};

// The engine's "explain plan": everything static analysis can say about a
// query against this database without executing anything.
struct EnginePlan {
  // All analyzer diagnostics (errors, warnings, notes). When any is an
  // error, `planned_method` names no theorem: a Run with the same inputs
  // fails with kInvalidArgument instead of executing.
  std::vector<Diagnostic> diagnostics;

  QueryClass query_class = QueryClass::kGeneralFirstOrder;  // original
  // Class of the simplified query — what dispatch actually uses. By the
  // simplifier contract PlanRank(effective) <= PlanRank(query_class).
  QueryClass effective_class = QueryClass::kGeneralFirstOrder;
  StaticTruth static_truth = StaticTruth::kUnknown;
  // ToString() of the simplified query (empty for Datalog plans).
  std::string simplified_query;

  // Work prediction: answer space n^k, grounding size n^#vars, world
  // count 2^u.
  CostEstimate cost;

  // The rung an actual run with these options would execute, naming the
  // paper theorem. Always a prefix of that run's EngineReport::method.
  // Empty when `diagnostics` contains errors.
  std::string planned_method;

  // Safe-plan analysis of the dispatched query (logic/safe_plan.h).
  // `safe_plan_applicable`: the query is a quantified conjunctive query,
  // so the safe/unsafe verdict is meaningful. When safe, `safe_plan`
  // renders the plan tree; when applicable but unsafe,
  // `safe_plan_blocker` carries the check id of the blocking diagnostic
  // (unsafe-self-join or unsafe-no-root-variable), whose full located
  // message is in `diagnostics`.
  bool safe_plan_applicable = false;
  bool safe_plan_safe = false;
  std::string safe_plan;
  std::string safe_plan_blocker;

  bool has_errors() const { return HasErrors(diagnostics); }
};

class ReliabilityEngine {
 public:
  explicit ReliabilityEngine(UnreliableDatabase database);

  const UnreliableDatabase& database() const { return database_; }
  UnreliableDatabase* mutable_database() { return &database_; }

  // Parses and runs `query_text` (see logic/parser.h for the syntax).
  StatusOr<EngineReport> Run(const std::string& query_text,
                             const EngineOptions& options = {}) const;
  StatusOr<EngineReport> Run(const FormulaPtr& query,
                             const EngineOptions& options = {}) const;

  // Static analysis + rung selection without executing: diagnostics,
  // simplification, cost estimates and the planned method. Never charges
  // options.run_context. The text overload fails only on syntax errors.
  StatusOr<EnginePlan> Explain(const std::string& query_text,
                               const EngineOptions& options = {}) const;
  EnginePlan Explain(const FormulaPtr& query,
                     const EngineOptions& options = {}) const;

  // The Datalog counterpart: program diagnostics (safety, stratification,
  // reachability of `predicate`) and the planned rung. The text overload
  // fails only on syntax errors.
  StatusOr<EnginePlan> ExplainDatalog(const std::string& program_text,
                                      const std::string& predicate,
                                      const EngineOptions& options = {}) const;
  EnginePlan ExplainDatalog(const DatalogProgram& program,
                            const std::string& predicate,
                            const EngineOptions& options = {}) const;

  // Runs a Datalog program (see datalog/program.h for the syntax) and
  // reports the reliability of `predicate`: exact world enumeration when
  // the support is small (or force_exact), the Thm 5.12 padded estimator
  // otherwise. Datalog queries have no syntactic class ladder, so the
  // query_class field is reported as general first-order.
  StatusOr<EngineReport> RunDatalog(const std::string& program_text,
                                    const std::string& predicate,
                                    const EngineOptions& options = {}) const;

 private:
  // The actual rung ladders; the public entry points wrap them to turn a
  // std::bad_alloc mid-run (real or injected via util/fault_injection.h)
  // into a typed kResourceExhausted instead of a crash.
  StatusOr<EngineReport> RunImpl(const FormulaPtr& query,
                                 const EngineOptions& options) const;
  StatusOr<EngineReport> RunDatalogImpl(const std::string& program_text,
                                        const std::string& predicate,
                                        const EngineOptions& options) const;

  UnreliableDatabase database_;
};

}  // namespace qrel

#endif  // QREL_ENGINE_ENGINE_H_
