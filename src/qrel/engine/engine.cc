#include "qrel/engine/engine.h"

#include <cmath>
#include <utility>

#include "qrel/datalog/eval.h"
#include "qrel/logic/eval.h"
#include "qrel/logic/parser.h"
#include "qrel/util/check.h"

namespace qrel {

namespace {

// n^k as a double for error reporting (saturates; callers only display it).
double TupleSpace(int n, int k) {
  return std::pow(static_cast<double>(n), static_cast<double>(k));
}

}  // namespace

ReliabilityEngine::ReliabilityEngine(UnreliableDatabase database)
    : database_(std::move(database)) {}

StatusOr<EngineReport> ReliabilityEngine::Run(
    const std::string& query_text, const EngineOptions& options) const {
  StatusOr<FormulaPtr> query = ParseFormula(query_text);
  if (!query.ok()) {
    return query.status();
  }
  return Run(*query, options);
}

StatusOr<EngineReport> ReliabilityEngine::Run(
    const FormulaPtr& query, const EngineOptions& options) const {
  if (options.force_exact && options.force_approximate) {
    return Status::InvalidArgument(
        "force_exact and force_approximate are mutually exclusive");
  }
  StatusOr<CompiledQuery> compiled =
      CompiledQuery::Compile(query, database_.vocabulary());
  if (!compiled.ok()) {
    return compiled.status();
  }

  EngineReport report;
  report.query_class = Classify(query);
  int n = database_.universe_size();
  int k = compiled->arity();

  if (options.include_observed_answers) {
    double tuples = TupleSpace(n, k);
    if (tuples <= static_cast<double>(uint64_t{1} << 16)) {
      report.observed_answers = compiled->AnswerSet(database_.observed());
    }
  }

  size_t uncertain = database_.UncertainEntries().size();
  bool exact_feasible =
      uncertain < 63 &&
      (uint64_t{1} << uncertain) <= options.max_exact_worlds;

  auto fill_exact = [&](const ReliabilityReport& exact,
                        const std::string& method) {
    report.method = method;
    report.is_exact = true;
    report.exact_reliability = exact.reliability;
    report.reliability = exact.reliability.ToDouble();
    report.expected_error = exact.expected_error.ToDouble();
  };

  // 1. Quantifier-free: always polynomial, always exact (Prop. 3.1).
  if (report.query_class == QueryClass::kQuantifierFree &&
      !options.force_approximate) {
    StatusOr<ReliabilityReport> exact =
        QuantifierFreeReliability(query, database_);
    if (!exact.ok()) {
      return exact.status();
    }
    fill_exact(*exact, "Prop 3.1 quantifier-free polynomial algorithm");
    return report;
  }

  // 2. Small world space (or forced): exact enumeration (Thm 4.2).
  if ((exact_feasible || options.force_exact) && !options.force_approximate) {
    StatusOr<ReliabilityReport> exact = ExactReliability(query, database_);
    if (!exact.ok()) {
      return exact.status();
    }
    fill_exact(*exact, "Thm 4.2 exact world enumeration (" +
                           std::to_string(exact->work_units) + " worlds)");
    return report;
  }

  // 3./4. Randomized approximation.
  ApproxOptions approx;
  approx.epsilon = options.epsilon;
  approx.delta = options.delta;
  approx.seed = options.seed;
  approx.fixed_samples = options.fixed_samples;

  StatusOr<ApproxResult> estimate =
      (report.query_class == QueryClass::kConjunctive ||
       report.query_class == QueryClass::kExistential ||
       report.query_class == QueryClass::kUniversal)
          ? ReliabilityAbsoluteApprox(query, database_, approx)
          : PaddedReliabilityApprox(query, database_, approx);
  if (!estimate.ok()) {
    return estimate.status();
  }
  report.method = estimate->method;
  report.is_exact = false;
  report.reliability = estimate->estimate;
  report.expected_error = (1.0 - estimate->estimate) * TupleSpace(n, k);
  report.samples = estimate->samples;
  return report;
}

StatusOr<EngineReport> ReliabilityEngine::RunDatalog(
    const std::string& program_text, const std::string& predicate,
    const EngineOptions& options) const {
  if (options.force_exact && options.force_approximate) {
    return Status::InvalidArgument(
        "force_exact and force_approximate are mutually exclusive");
  }
  StatusOr<DatalogProgram> program = ParseDatalogProgram(program_text);
  if (!program.ok()) {
    return program.status();
  }
  StatusOr<CompiledDatalog> compiled =
      CompiledDatalog::Compile(std::move(program).value(),
                               database_.vocabulary());
  if (!compiled.ok()) {
    return compiled.status();
  }
  StatusOr<int> arity = compiled->PredicateArity(predicate);
  if (!arity.ok()) {
    return arity.status();
  }

  EngineReport report;
  report.query_class = QueryClass::kGeneralFirstOrder;
  if (options.include_observed_answers) {
    double tuples = TupleSpace(database_.universe_size(), *arity);
    if (tuples <= static_cast<double>(uint64_t{1} << 16)) {
      StatusOr<std::set<Tuple>> answers =
          compiled->EvalPredicate(database_.observed(), predicate);
      if (!answers.ok()) {
        return answers.status();
      }
      report.observed_answers.emplace(answers->begin(), answers->end());
    }
  }

  size_t uncertain = database_.UncertainEntries().size();
  bool exact_feasible =
      uncertain < 63 &&
      (uint64_t{1} << uncertain) <= options.max_exact_worlds;
  if ((exact_feasible || options.force_exact) && !options.force_approximate) {
    StatusOr<ReliabilityReport> exact =
        ExactDatalogReliability(*compiled, predicate, database_);
    if (!exact.ok()) {
      return exact.status();
    }
    report.method = "Thm 4.2 exact world enumeration over Datalog (" +
                    std::to_string(exact->work_units) + " worlds)";
    report.is_exact = true;
    report.exact_reliability = exact->reliability;
    report.reliability = exact->reliability.ToDouble();
    report.expected_error = exact->expected_error.ToDouble();
    return report;
  }

  ApproxOptions approx;
  approx.epsilon = options.epsilon;
  approx.delta = options.delta;
  approx.seed = options.seed;
  approx.fixed_samples = options.fixed_samples;
  StatusOr<ApproxResult> estimate =
      PaddedDatalogReliability(*compiled, predicate, database_, approx);
  if (!estimate.ok()) {
    return estimate.status();
  }
  report.method = estimate->method;
  report.is_exact = false;
  report.reliability = estimate->estimate;
  report.expected_error =
      (1.0 - estimate->estimate) *
      TupleSpace(database_.universe_size(), *arity);
  report.samples = estimate->samples;
  return report;
}

}  // namespace qrel
