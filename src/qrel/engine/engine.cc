#include "qrel/engine/engine.h"

#include <cmath>
#include <new>
#include <utility>

#include "qrel/datalog/eval.h"
#include "qrel/lifted/extensional.h"
#include "qrel/logic/eval.h"
#include "qrel/logic/parser.h"
#include "qrel/util/check.h"
#include "qrel/util/fault_injection.h"

namespace qrel {

namespace {

// n^k as a double for error reporting (saturates; callers only display it).
double TupleSpace(int n, int k) {
  return std::pow(static_cast<double>(n), static_cast<double>(k));
}

// Whether a rung failure should send the run down the ladder instead of
// out to the caller: only deadline/work trips, only when degradation is
// enabled and no exact answer was explicitly demanded. Cancellation is a
// caller decision, never an engine one.
bool ShouldDegrade(const Status& status, const EngineOptions& options) {
  return options.degrade_on_budget && !options.force_exact &&
         IsBudgetStatusCode(status.code()) &&
         status.code() != StatusCode::kCancelled;
}

std::string DegradationReason(const Status& status) {
  return std::string(StatusCodeName(status.code())) + ": " + status.message();
}

// Whether 2^#uncertain fits the exact-enumeration budget.
bool ExactFeasible(size_t uncertain, const EngineOptions& options) {
  return uncertain < 63 &&
         (uint64_t{1} << uncertain) <= options.max_exact_worlds;
}

std::string StaticClosedFormMethod(StaticTruth truth) {
  return std::string("static analysis closed form (query simplifies to ") +
         (truth == StaticTruth::kTautology ? "true" : "false") + ")";
}

// The single rung-selection function, shared between Explain (which
// reports its result as the plan) and RunImpl (which executes it). Every
// string returned here is a prefix of the EngineReport::method the
// corresponding rung writes.
std::string PlannedMethod(QueryClass effective_class, StaticTruth truth,
                          size_t uncertain, const EngineOptions& options) {
  if (truth != StaticTruth::kUnknown) {
    return StaticClosedFormMethod(truth);
  }
  if (effective_class == QueryClass::kQuantifierFree &&
      !options.force_approximate) {
    return "Prop 3.1 quantifier-free polynomial algorithm";
  }
  // Like the quantifier-free rung, the extensional rung is exact, so it
  // wins over Thm 4.2 even under force_exact.
  if (effective_class == QueryClass::kSafeConjunctive &&
      !options.force_approximate) {
    return "safe-plan extensional evaluation";
  }
  if ((ExactFeasible(uncertain, options) || options.force_exact) &&
      !options.force_approximate) {
    return "Thm 4.2 exact world enumeration";
  }
  if (effective_class != QueryClass::kGeneralFirstOrder) {
    // core/approx.cc takes the dual (negation) branch exactly when the
    // query is not existential, i.e. when its class is universal.
    return effective_class == QueryClass::kUniversal
               ? "Cor 5.5 (universal via FPTRAS on negation)"
               : "Cor 5.5 (existential via Thm 5.4 FPTRAS)";
  }
  return "Thm 5.12 padded estimator";
}

std::string PlannedDatalogMethod(size_t uncertain,
                                 const EngineOptions& options) {
  if ((ExactFeasible(uncertain, options) || options.force_exact) &&
      !options.force_approximate) {
    return "Thm 4.2 exact world enumeration over Datalog";
  }
  return "Thm 5.12 padded estimator on Datalog predicate";
}

}  // namespace

ReliabilityEngine::ReliabilityEngine(UnreliableDatabase database)
    : database_(std::move(database)) {}

StatusOr<EngineReport> ReliabilityEngine::Run(
    const std::string& query_text, const EngineOptions& options) const {
  StatusOr<FormulaPtr> query = ParseFormula(query_text);
  if (!query.ok()) {
    return query.status();
  }
  return Run(*query, options);
}

StatusOr<EngineReport> ReliabilityEngine::Run(
    const FormulaPtr& query, const EngineOptions& options) const {
  try {
    return RunImpl(query, options);
  } catch (const std::bad_alloc&) {
    return Status::ResourceExhausted("out of memory during engine run");
  }
}

StatusOr<EnginePlan> ReliabilityEngine::Explain(
    const std::string& query_text, const EngineOptions& options) const {
  StatusOr<FormulaPtr> query = ParseFormula(query_text);
  if (!query.ok()) {
    return query.status();
  }
  return Explain(*query, options);
}

EnginePlan ReliabilityEngine::Explain(const FormulaPtr& query,
                                      const EngineOptions& options) const {
  FormulaAnalysis analysis = AnalyzeFormula(query, &database_.vocabulary());
  size_t uncertain = database_.UncertainEntries().size();

  EnginePlan plan;
  plan.diagnostics = std::move(analysis.diagnostics);
  plan.query_class = analysis.original_class;
  plan.effective_class = analysis.effective_class;
  plan.static_truth = analysis.static_truth;
  plan.simplified_query = analysis.simplified->ToString();
  const FormulaPtr& effective =
      analysis.arity_preserved ? analysis.simplified : query;
  plan.cost = EstimateCost(effective, database_.universe_size(), uncertain);
  plan.safe_plan_applicable = analysis.safety.applicable;
  plan.safe_plan_safe = analysis.safety.safe;
  if (analysis.safety.safe) {
    plan.safe_plan = analysis.safety.plan->ToString();
  } else if (analysis.safety.applicable &&
             !analysis.safety.diagnostics.empty()) {
    plan.safe_plan_blocker = analysis.safety.diagnostics.front().check_id;
  }
  if (!plan.has_errors()) {
    QueryClass dispatch_class = analysis.arity_preserved
                                    ? analysis.effective_class
                                    : analysis.original_class;
    plan.planned_method = PlannedMethod(dispatch_class, analysis.static_truth,
                                        uncertain, options);
  }
  return plan;
}

StatusOr<EnginePlan> ReliabilityEngine::ExplainDatalog(
    const std::string& program_text, const std::string& predicate,
    const EngineOptions& options) const {
  StatusOr<DatalogProgram> program = ParseDatalogProgram(program_text);
  if (!program.ok()) {
    return program.status();
  }
  return ExplainDatalog(*program, predicate, options);
}

EnginePlan ReliabilityEngine::ExplainDatalog(
    const DatalogProgram& program, const std::string& predicate,
    const EngineOptions& options) const {
  DatalogAnalysis analysis =
      AnalyzeDatalogProgram(program, &database_.vocabulary(), predicate);
  size_t uncertain = database_.UncertainEntries().size();

  EnginePlan plan;
  plan.diagnostics = std::move(analysis.diagnostics);
  // Datalog has no syntactic first-order class ladder; like RunDatalog,
  // the plan reports the general class.
  plan.query_class = QueryClass::kGeneralFirstOrder;
  plan.effective_class = QueryClass::kGeneralFirstOrder;
  plan.cost.universe_size = database_.universe_size();
  plan.cost.uncertain_atoms = uncertain;
  plan.cost.world_count =
      std::pow(2.0, static_cast<double>(uncertain));
  // Arity of the query predicate, when it can be resolved statically: a
  // rule head, a body literal, or an extensional relation.
  std::optional<int> arity;
  for (const DatalogRule& rule : program.rules) {
    if (rule.head.relation == predicate) {
      arity = static_cast<int>(rule.head.args.size());
      break;
    }
    for (const DatalogLiteral& literal : rule.body) {
      if (literal.atom.relation == predicate) {
        arity = static_cast<int>(literal.atom.args.size());
        break;
      }
    }
    if (arity.has_value()) {
      break;
    }
  }
  if (!arity.has_value()) {
    std::optional<int> relation =
        database_.vocabulary().FindRelation(predicate);
    if (relation.has_value()) {
      arity = database_.vocabulary().relation(*relation).arity;
    }
  }
  if (arity.has_value()) {
    plan.cost.arity = *arity;
    plan.cost.answer_space =
        std::pow(static_cast<double>(plan.cost.universe_size),
                 static_cast<double>(*arity));
  }
  if (!plan.has_errors()) {
    plan.planned_method = PlannedDatalogMethod(uncertain, options);
  }
  return plan;
}

StatusOr<EngineReport> ReliabilityEngine::RunImpl(
    const FormulaPtr& query, const EngineOptions& options) const {
  if (options.force_exact && options.force_approximate) {
    return Status::InvalidArgument(
        "force_exact and force_approximate are mutually exclusive");
  }
  RunContext* ctx = options.run_context;

  // Static analysis first: unknown predicates, arity mismatches and the
  // like fail with a source-located diagnostic before the envelope is
  // consulted and before any budget could be charged.
  FormulaAnalysis analysis = AnalyzeFormula(query, &database_.vocabulary());
  if (analysis.has_errors()) {
    return Status::InvalidArgument(FirstErrorMessage(analysis.diagnostics));
  }

  // Fail fast on an envelope that is already spent (zero work budget,
  // expired deadline, prior cancellation): nothing ran, so there is
  // nothing to degrade to.
  QREL_RETURN_IF_ERROR(CheckRunContext(ctx));

  // Dispatch on the simplified query when it kept the free-variable
  // columns; otherwise simplification dropped a vacuous free variable and
  // the original must stay the unit of evaluation.
  const FormulaPtr& effective =
      analysis.arity_preserved ? analysis.simplified : query;

  StatusOr<CompiledQuery> compiled =
      CompiledQuery::Compile(effective, database_.vocabulary());
  if (!compiled.ok()) {
    return compiled.status();
  }

  EngineReport report;
  report.query_class = analysis.arity_preserved ? analysis.effective_class
                                                : analysis.original_class;
  int n = database_.universe_size();
  int k = compiled->arity();

  if (options.include_observed_answers) {
    double tuples = TupleSpace(n, k);
    if (tuples <= static_cast<double>(uint64_t{1} << 16)) {
      report.observed_answers = compiled->AnswerSet(database_.observed());
    }
  }

  // 0. Statically decided: the answer set is the same in every world
  // (everything for a tautology, nothing for an unsatisfiable query), so
  // the reliability is exactly 1 with no worlds enumerated and no samples
  // drawn.
  if (analysis.static_truth != StaticTruth::kUnknown) {
    report.method = StaticClosedFormMethod(analysis.static_truth);
    report.is_exact = true;
    report.exact_reliability = Rational::One();
    report.reliability = 1.0;
    report.expected_error = 0.0;
    report.samples = 0;
    report.budget_spent = ctx != nullptr ? ctx->work_spent() : 0;
    return report;
  }

  size_t uncertain = database_.UncertainEntries().size();
  bool exact_feasible = ExactFeasible(uncertain, options);

  auto fill_exact = [&](const ReliabilityReport& exact,
                        const std::string& method) {
    report.method = method;
    report.is_exact = true;
    report.exact_reliability = exact.reliability;
    report.reliability = exact.reliability.ToDouble();
    report.expected_error = exact.expected_error.ToDouble();
    report.budget_spent = ctx != nullptr ? ctx->work_spent() : 0;
  };

  // Why the exact path was abandoned mid-run; OK while no rung tripped.
  Status degrade_trigger = Status::Ok();

  // 1. Quantifier-free: always polynomial, always exact (Prop. 3.1).
  if (report.query_class == QueryClass::kQuantifierFree &&
      !options.force_approximate) {
    // An injected fault at a rung boundary is handled exactly like the
    // rung failing on its own: degrade on budget codes, propagate the rest.
    Status fault = QREL_FAULT_HIT("engine.rung.quantifier_free");
    StatusOr<ReliabilityReport> exact =
        fault.ok() ? QuantifierFreeReliability(effective, database_, ctx)
                   : StatusOr<ReliabilityReport>(fault);
    if (exact.ok()) {
      fill_exact(*exact, "Prop 3.1 quantifier-free polynomial algorithm");
      return report;
    }
    if (!ShouldDegrade(exact.status(), options)) {
      return exact.status();
    }
    degrade_trigger = exact.status();
  }

  // 2. Safe self-join-free conjunctive query: exact lifted evaluation of
  // the safe plan against the tuple marginals — polynomial, no worlds, no
  // samples (logic/safe_plan.h, lifted/extensional.h).
  if (degrade_trigger.ok() &&
      report.query_class == QueryClass::kSafeConjunctive &&
      !options.force_approximate) {
    Status fault = QREL_FAULT_HIT("engine.rung.extensional");
    StatusOr<ReliabilityReport> exact =
        fault.ok() ? ExtensionalReliability(effective, database_, ctx)
                   : StatusOr<ReliabilityReport>(fault);
    if (exact.ok()) {
      fill_exact(*exact, "safe-plan extensional evaluation (" +
                             std::to_string(exact->work_units) +
                             " plan ops)");
      return report;
    }
    if (!ShouldDegrade(exact.status(), options)) {
      return exact.status();
    }
    degrade_trigger = exact.status();
  }

  // 3. Small world space (or forced): exact enumeration (Thm 4.2). Skipped
  // once a cheaper exact rung has already tripped the envelope.
  if (degrade_trigger.ok() && (exact_feasible || options.force_exact) &&
      !options.force_approximate) {
    Status fault = QREL_FAULT_HIT("engine.exact.enumerate");
    StatusOr<ReliabilityReport> exact =
        fault.ok() ? ExactReliability(effective, database_, ctx)
                   : StatusOr<ReliabilityReport>(fault);
    if (exact.ok()) {
      fill_exact(*exact, "Thm 4.2 exact world enumeration (" +
                             std::to_string(exact->work_units) + " worlds)");
      return report;
    }
    if (!ShouldDegrade(exact.status(), options)) {
      return exact.status();
    }
    degrade_trigger = exact.status();
  }

  // 4./5. Randomized approximation. Runs under whatever envelope remains;
  // single-estimate paths may truncate rather than fail.
  ApproxOptions approx;
  approx.epsilon = options.epsilon;
  approx.delta = options.delta;
  approx.seed = options.seed;
  approx.fixed_samples = options.fixed_samples;
  approx.run_context = ctx;
  approx.allow_truncation = options.degrade_on_budget;

  bool cor55_applies = report.query_class == QueryClass::kQuantifierFree ||
                       report.query_class == QueryClass::kSafeConjunctive ||
                       report.query_class == QueryClass::kConjunctive ||
                       report.query_class == QueryClass::kExistential ||
                       report.query_class == QueryClass::kUniversal;

  std::optional<ApproxResult> estimate;
  bool used_reserve = false;
  if (CheckRunContext(ctx).ok()) {
    Status fault = QREL_FAULT_HIT("engine.rung.approx");
    StatusOr<ApproxResult> attempt =
        !fault.ok()
            ? StatusOr<ApproxResult>(fault)
            : cor55_applies ? ReliabilityAbsoluteApprox(effective, database_, approx)
                            : PaddedReliabilityApprox(effective, database_, approx);
    if (attempt.ok()) {
      estimate = std::move(attempt).value();
    } else if (ShouldDegrade(attempt.status(), options)) {
      degrade_trigger = attempt.status();
    } else {
      return attempt.status();
    }
  } else if (degrade_trigger.ok()) {
    Status entry = CheckRunContext(ctx);
    if (!ShouldDegrade(entry, options)) {
      return entry;
    }
    degrade_trigger = entry;
  }

  if (!estimate.has_value()) {
    if (!options.degrade_on_budget) {
      return degrade_trigger;
    }
    if (ctx != nullptr && ctx->cancellation_requested()) {
      return Status::Cancelled("run cancelled before the reserve rung");
    }
    // Last resort: a fixed reserve-sample padded run. It runs ungoverned —
    // its cost is bounded by construction — so a degraded run still ends
    // with an estimate instead of an error.
    QREL_FAULT_SITE("engine.rung.reserve");
    ApproxOptions reserve = approx;
    reserve.run_context = nullptr;
    reserve.allow_truncation = false;
    reserve.fixed_samples = options.reserve_samples;
    StatusOr<ApproxResult> attempt =
        PaddedReliabilityApprox(effective, database_, reserve);
    if (!attempt.ok()) {
      return attempt.status();
    }
    estimate = std::move(attempt).value();
    used_reserve = true;
  }

  report.method = estimate->method;
  report.is_exact = false;
  report.reliability = estimate->estimate;
  report.expected_error = (1.0 - estimate->estimate) * TupleSpace(n, k);
  report.samples = estimate->samples;
  report.partial = estimate->truncated || used_reserve;
  report.achieved_epsilon = estimate->achieved_epsilon;
  if (report.achieved_epsilon.has_value()) {
    report.achieved_delta = options.delta;
  }
  if (!degrade_trigger.ok()) {
    report.degraded = true;
    report.degradation_reason = DegradationReason(degrade_trigger);
  }
  report.budget_spent = ctx != nullptr ? ctx->work_spent() : 0;
  return report;
}

StatusOr<EngineReport> ReliabilityEngine::RunDatalog(
    const std::string& program_text, const std::string& predicate,
    const EngineOptions& options) const {
  try {
    return RunDatalogImpl(program_text, predicate, options);
  } catch (const std::bad_alloc&) {
    return Status::ResourceExhausted("out of memory during Datalog run");
  }
}

StatusOr<EngineReport> ReliabilityEngine::RunDatalogImpl(
    const std::string& program_text, const std::string& predicate,
    const EngineOptions& options) const {
  if (options.force_exact && options.force_approximate) {
    return Status::InvalidArgument(
        "force_exact and force_approximate are mutually exclusive");
  }
  RunContext* ctx = options.run_context;
  StatusOr<DatalogProgram> program = ParseDatalogProgram(program_text);
  if (!program.ok()) {
    return program.status();
  }

  // Static analysis first (the same checks Compile enforces, plus lint):
  // a broken program fails with a source-located diagnostic before the
  // envelope is consulted and before any budget could be charged.
  DatalogAnalysis analysis =
      AnalyzeDatalogProgram(*program, &database_.vocabulary(), predicate);
  if (analysis.has_errors()) {
    return Status::InvalidArgument(FirstErrorMessage(analysis.diagnostics));
  }

  QREL_RETURN_IF_ERROR(CheckRunContext(ctx));
  StatusOr<CompiledDatalog> compiled =
      CompiledDatalog::Compile(std::move(program).value(),
                               database_.vocabulary());
  if (!compiled.ok()) {
    return compiled.status();
  }
  StatusOr<int> arity = compiled->PredicateArity(predicate);
  if (!arity.ok()) {
    return arity.status();
  }

  EngineReport report;
  report.query_class = QueryClass::kGeneralFirstOrder;
  if (options.include_observed_answers) {
    double tuples = TupleSpace(database_.universe_size(), *arity);
    if (tuples <= static_cast<double>(uint64_t{1} << 16)) {
      StatusOr<std::set<Tuple>> answers =
          compiled->EvalPredicate(database_.observed(), predicate);
      if (!answers.ok()) {
        return answers.status();
      }
      report.observed_answers.emplace(answers->begin(), answers->end());
    }
  }

  size_t uncertain = database_.UncertainEntries().size();
  bool exact_feasible = ExactFeasible(uncertain, options);
  Status degrade_trigger = Status::Ok();
  if ((exact_feasible || options.force_exact) && !options.force_approximate) {
    Status fault = QREL_FAULT_HIT("engine.datalog.exact");
    StatusOr<ReliabilityReport> exact =
        fault.ok() ? ExactDatalogReliability(*compiled, predicate, database_,
                                             ctx)
                   : StatusOr<ReliabilityReport>(fault);
    if (exact.ok()) {
      report.method = "Thm 4.2 exact world enumeration over Datalog (" +
                      std::to_string(exact->work_units) + " worlds)";
      report.is_exact = true;
      report.exact_reliability = exact->reliability;
      report.reliability = exact->reliability.ToDouble();
      report.expected_error = exact->expected_error.ToDouble();
      report.budget_spent = ctx != nullptr ? ctx->work_spent() : 0;
      return report;
    }
    if (!ShouldDegrade(exact.status(), options)) {
      return exact.status();
    }
    degrade_trigger = exact.status();
  }

  ApproxOptions approx;
  approx.epsilon = options.epsilon;
  approx.delta = options.delta;
  approx.seed = options.seed;
  approx.fixed_samples = options.fixed_samples;
  approx.run_context = ctx;
  // Datalog's padded estimator shares each sampled world across all
  // tuples, so a truncated prefix of worlds is sound (see
  // datalog/reliability.h).
  approx.allow_truncation = options.degrade_on_budget;

  std::optional<ApproxResult> estimate;
  bool used_reserve = false;
  if (CheckRunContext(ctx).ok()) {
    Status fault = QREL_FAULT_HIT("engine.datalog.padded");
    StatusOr<ApproxResult> attempt =
        fault.ok()
            ? PaddedDatalogReliability(*compiled, predicate, database_, approx)
            : StatusOr<ApproxResult>(fault);
    if (attempt.ok()) {
      estimate = std::move(attempt).value();
    } else if (ShouldDegrade(attempt.status(), options)) {
      degrade_trigger = attempt.status();
    } else {
      return attempt.status();
    }
  } else if (degrade_trigger.ok()) {
    Status entry = CheckRunContext(ctx);
    if (!ShouldDegrade(entry, options)) {
      return entry;
    }
    degrade_trigger = entry;
  }

  if (!estimate.has_value()) {
    if (!options.degrade_on_budget) {
      return degrade_trigger;
    }
    if (ctx != nullptr && ctx->cancellation_requested()) {
      return Status::Cancelled("run cancelled before the reserve rung");
    }
    QREL_FAULT_SITE("engine.datalog.reserve");
    ApproxOptions reserve = approx;
    reserve.run_context = nullptr;
    reserve.allow_truncation = false;
    reserve.fixed_samples = options.reserve_samples;
    StatusOr<ApproxResult> attempt =
        PaddedDatalogReliability(*compiled, predicate, database_, reserve);
    if (!attempt.ok()) {
      return attempt.status();
    }
    estimate = std::move(attempt).value();
    used_reserve = true;
  }

  report.method = estimate->method;
  report.is_exact = false;
  report.reliability = estimate->estimate;
  report.expected_error =
      (1.0 - estimate->estimate) *
      TupleSpace(database_.universe_size(), *arity);
  report.samples = estimate->samples;
  report.partial = estimate->truncated || used_reserve;
  report.achieved_epsilon = estimate->achieved_epsilon;
  if (report.achieved_epsilon.has_value()) {
    report.achieved_delta = options.delta;
  }
  if (!degrade_trigger.ok()) {
    report.degraded = true;
    report.degradation_reason = DegradationReason(degrade_trigger);
  }
  report.budget_spent = ctx != nullptr ? ctx->work_spent() : 0;
  return report;
}

}  // namespace qrel
