// Invariant-checking macros. QREL_CHECK* abort the process with a message;
// they guard programmer errors (violated preconditions), not user input.
// User input errors are reported through Status (see status.h).

#ifndef QREL_UTIL_CHECK_H_
#define QREL_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

// Aborts unless `condition` holds. The text of the condition is printed with
// the source location; `...` may add a printf-style message.
#define QREL_CHECK(condition)                                              \
  do {                                                                     \
    if (!(condition)) {                                                    \
      std::fprintf(stderr, "QREL_CHECK failed at %s:%d: %s\n", __FILE__,   \
                   __LINE__, #condition);                                  \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

#define QREL_CHECK_MSG(condition, msg)                                       \
  do {                                                                       \
    if (!(condition)) {                                                      \
      std::fprintf(stderr, "QREL_CHECK failed at %s:%d: %s (%s)\n",          \
                   __FILE__, __LINE__, #condition, (msg));                   \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#define QREL_CHECK_EQ(a, b) QREL_CHECK((a) == (b))
#define QREL_CHECK_NE(a, b) QREL_CHECK((a) != (b))
#define QREL_CHECK_LT(a, b) QREL_CHECK((a) < (b))
#define QREL_CHECK_LE(a, b) QREL_CHECK((a) <= (b))
#define QREL_CHECK_GT(a, b) QREL_CHECK((a) > (b))
#define QREL_CHECK_GE(a, b) QREL_CHECK((a) >= (b))

#endif  // QREL_UTIL_CHECK_H_
