// The process-wide lock-rank registry: one total order over every mutex
// in the codebase.
//
// Compile-time capability analysis (util/thread_annotations.h) proves
// each guarded field is accessed under its own lock, but it cannot see a
// lock *ordering* cycle across call graphs — thread A holding the server
// mutex while taking a job mutex, thread B doing the reverse, is
// annotation-clean and still deadlocks. The runtime rank checker in
// util/mutex.h closes that hole: every qrel::Mutex carries a rank from
// this registry, each thread tracks the ranks it currently holds, and an
// acquisition whose rank is not strictly greater than every held rank
// aborts immediately with both rank names — turning a once-in-a-soak
// deadlock into a deterministic unit-test failure on the first
// out-of-order interleaving any test reaches.
//
// The registry is the documentation of record for nesting: a lock may
// only be acquired while holding locks of strictly smaller rank, so the
// enum reads top-down as "outermost first". Known constraints baked into
// the order below:
//
//   kServerManifest < kCatalog        PersistManifest snapshots the
//                                     catalog under the manifest lock
//   kServerCore     < kServerJob      FailQueuedJobLocked publishes a
//                                     job's result under the server lock
//   anything        < kFaultRegistry  fault sites fire inside vfs writes
//                                     made under manifest / checkpoint
//                                     locks, so the registry is innermost
//
// Adding a mutex: pick the slot that reflects where it nests, leave gaps
// (ranks are spaced by 10) so insertions don't renumber the world, and
// add the LockRankName case. Two mutexes that can never be held together
// may share a rank *value* only if they are instances of the same class
// guarding disjoint objects (e.g. two servers' core mutexes); same-rank
// acquisition is otherwise an abort, which is what catches accidental
// recursion.

#ifndef QREL_UTIL_LOCK_RANKS_H_
#define QREL_UTIL_LOCK_RANKS_H_

namespace qrel {

enum class LockRank : int {
  // Outermost: held across catalog snapshot + manifest file write
  // (net/server.h manifest_mutex_).
  kServerManifest = 10,
  // The server core lock: queue, tenants, quotas, active runs, recovered
  // idempotency keys (net/server.h mutex_).
  kServerCore = 20,
  // The catalog swap lock (net/catalog.h); taken under kServerManifest by
  // PersistManifest's List() snapshot, never under kServerCore.
  kCatalog = 30,
  // The transport connection table (net/server.h conn_mutex_).
  kServerConn = 40,
  // The result cache store / single-flight map (net/result_cache.h).
  kResultCache = 50,
  // Checkpointer claim + write policy (util/snapshot.h); held across
  // snapshot file writes, so below the fault registry only.
  kCheckpointer = 60,
  // One queued job's completion latch (net/server.cc Job::m); taken under
  // kServerCore by the fast-fail paths.
  kServerJob = 70,
  // The Retry-After EWMA (net/retry.h). Leaf.
  kRetryEstimator = 80,
  // The fault-injection site registry (util/fault_injection.cc).
  // Innermost: QREL_FAULT_HIT can fire under any of the locks above
  // (vfs syscall sites fire inside manifest and checkpoint writes).
  kFaultRegistry = 90,
  // Default for mutexes that never nest with anything: acquiring any
  // other qrel::Mutex while holding a leaf aborts.
  kLeaf = 1000,
};

inline const char* LockRankName(LockRank rank) {
  switch (rank) {
    case LockRank::kServerManifest:
      return "server-manifest";
    case LockRank::kServerCore:
      return "server-core";
    case LockRank::kCatalog:
      return "catalog";
    case LockRank::kServerConn:
      return "server-conn";
    case LockRank::kResultCache:
      return "result-cache";
    case LockRank::kCheckpointer:
      return "checkpointer";
    case LockRank::kServerJob:
      return "server-job";
    case LockRank::kRetryEstimator:
      return "retry-estimator";
    case LockRank::kFaultRegistry:
      return "fault-registry";
    case LockRank::kLeaf:
      return "leaf";
  }
  return "unknown";
}

}  // namespace qrel

#endif  // QREL_UTIL_LOCK_RANKS_H_
