#include "qrel/util/run_context.h"

#include <limits>
#include <string>

namespace qrel {

uint64_t RunContext::work_remaining() const {
  if (!max_work_.has_value()) {
    return std::numeric_limits<uint64_t>::max();
  }
  uint64_t spent = work_spent();
  return spent >= *max_work_ ? 0 : *max_work_ - spent;
}

Status RunContext::Trip(StatusCode code) const {
  uint64_t spent = work_spent();
  switch (code) {
    case StatusCode::kCancelled:
      return Status::Cancelled("run cancelled after " +
                               std::to_string(spent) + " work unit(s)");
    case StatusCode::kResourceExhausted:
      return Status::ResourceExhausted(
          "work budget of " + std::to_string(max_work_.value_or(0)) +
          " unit(s) exhausted (spent " + std::to_string(spent) + ")");
    case StatusCode::kDeadlineExceeded:
      return Status::DeadlineExceeded("deadline exceeded after " +
                                      std::to_string(spent) +
                                      " work unit(s)");
    default:
      return Status::Internal("RunContext tripped with unexpected code");
  }
}

Status RunContext::Charge(uint64_t units) {
  uint64_t spent =
      work_spent_.fetch_add(units, std::memory_order_relaxed) + units;
  if (cancellation_requested()) {
    return Trip(StatusCode::kCancelled);
  }
  if (max_work_.has_value() && spent > *max_work_) {
    return Trip(StatusCode::kResourceExhausted);
  }
  if (deadline_.has_value()) {
    units_since_clock_check_ += units;
    if (units_since_clock_check_ >= kClockCheckStride) {
      units_since_clock_check_ = 0;
      if (Clock::now() >= *deadline_) {
        return Trip(StatusCode::kDeadlineExceeded);
      }
    }
  }
  return Status::Ok();
}

Status RunContext::Check() const {
  if (cancellation_requested()) {
    return Trip(StatusCode::kCancelled);
  }
  if (max_work_.has_value() && work_spent() >= *max_work_) {
    return Trip(StatusCode::kResourceExhausted);
  }
  if (deadline_.has_value() && Clock::now() >= *deadline_) {
    return Trip(StatusCode::kDeadlineExceeded);
  }
  return Status::Ok();
}

}  // namespace qrel
