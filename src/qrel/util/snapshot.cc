#include "qrel/util/snapshot.h"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <utility>

#include "qrel/util/fault_injection.h"
#include "qrel/util/vfs.h"

namespace qrel {

namespace {

constexpr uint8_t kMagic[8] = {'Q', 'R', 'E', 'L', 'S', 'N', 'A', 'P'};
// Container overhead: magic + version + fingerprint + work counter +
// kind length + payload length + checksum.
constexpr size_t kMinFileSize = 8 + 4 + 8 + 8 + 4 + 8 + 8;
// Guards against length fields conjured by corruption: no legitimate kind
// or payload comes close.
constexpr uint32_t kMaxKindLength = 4096;
constexpr uint64_t kMaxPayloadLength = uint64_t{1} << 30;

uint64_t Fnv1a(const uint8_t* data, size_t size, uint64_t hash) {
  for (size_t i = 0; i < size; ++i) {
    hash ^= data[i];
    hash *= 0x100000001b3ULL;  // FNV-1a prime
  }
  return hash;
}

// resize+memcpy rather than vector::insert with an iterator range: the
// range-insert path trips gcc 12's bogus -Wstringop-overflow/-Warray-bounds
// analysis at -O2.
void AppendBytes(std::vector<uint8_t>* bytes, const void* data, size_t size) {
  if (size == 0) {
    return;
  }
  const size_t offset = bytes->size();
  bytes->resize(offset + size);
  std::memcpy(bytes->data() + offset, data, size);
}

void AppendU32(std::vector<uint8_t>* bytes, uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    bytes->push_back(static_cast<uint8_t>(value >> shift));
  }
}

void AppendU64(std::vector<uint8_t>* bytes, uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    bytes->push_back(static_cast<uint8_t>(value >> shift));
  }
}

uint32_t LoadU32(const uint8_t* data) {
  uint32_t value = 0;
  for (int i = 3; i >= 0; --i) {
    value = (value << 8) | data[i];
  }
  return value;
}

uint64_t LoadU64(const uint8_t* data) {
  uint64_t value = 0;
  for (int i = 7; i >= 0; --i) {
    value = (value << 8) | data[i];
  }
  return value;
}

uint64_t DoubleBits(double value) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

double BitsToDouble(uint64_t bits) {
  double value = 0;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

}  // namespace

// ---------------------------------------------------------------------------
// SnapshotWriter

void SnapshotWriter::U32(uint32_t value) { AppendU32(&bytes_, value); }
void SnapshotWriter::U64(uint64_t value) { AppendU64(&bytes_, value); }
void SnapshotWriter::Double(double value) { U64(DoubleBits(value)); }

void SnapshotWriter::String(std::string_view value) {
  U32(static_cast<uint32_t>(value.size()));
  AppendBytes(&bytes_, value.data(), value.size());
}

void SnapshotWriter::RationalVal(const Rational& value) {
  BigIntVal(value.numerator());
  BigIntVal(value.denominator());
}

void SnapshotWriter::RngState(const Rng& rng) {
  for (uint64_t word : rng.Save()) {
    U64(word);
  }
}

void SnapshotWriter::TupleVal(const std::vector<int32_t>& tuple) {
  U32(static_cast<uint32_t>(tuple.size()));
  for (int32_t element : tuple) {
    U32(static_cast<uint32_t>(element));
  }
}

// ---------------------------------------------------------------------------
// SnapshotReader

Status SnapshotReader::U8(uint8_t* out) {
  if (remaining() < 1) {
    return Status::DataLoss("snapshot payload truncated");
  }
  *out = bytes_[position_++];
  return Status::Ok();
}

Status SnapshotReader::U32(uint32_t* out) {
  if (remaining() < 4) {
    return Status::DataLoss("snapshot payload truncated");
  }
  *out = LoadU32(bytes_.data() + position_);
  position_ += 4;
  return Status::Ok();
}

Status SnapshotReader::U64(uint64_t* out) {
  if (remaining() < 8) {
    return Status::DataLoss("snapshot payload truncated");
  }
  *out = LoadU64(bytes_.data() + position_);
  position_ += 8;
  return Status::Ok();
}

Status SnapshotReader::I64(int64_t* out) {
  uint64_t bits = 0;
  QREL_RETURN_IF_ERROR(U64(&bits));
  *out = static_cast<int64_t>(bits);
  return Status::Ok();
}

Status SnapshotReader::Double(double* out) {
  uint64_t bits = 0;
  QREL_RETURN_IF_ERROR(U64(&bits));
  *out = BitsToDouble(bits);
  return Status::Ok();
}

Status SnapshotReader::String(std::string* out) {
  uint32_t length = 0;
  QREL_RETURN_IF_ERROR(U32(&length));
  if (length > remaining()) {
    return Status::DataLoss("snapshot string length exceeds payload");
  }
  out->assign(reinterpret_cast<const char*>(bytes_.data() + position_),
              length);
  position_ += length;
  return Status::Ok();
}

Status SnapshotReader::BigIntVal(BigInt* out) {
  std::string digits;
  QREL_RETURN_IF_ERROR(String(&digits));
  StatusOr<BigInt> parsed = BigInt::FromDecimalString(digits);
  if (!parsed.ok()) {
    return Status::DataLoss("snapshot holds a malformed integer: " +
                            parsed.status().message());
  }
  *out = std::move(parsed).value();
  return Status::Ok();
}

Status SnapshotReader::RationalVal(Rational* out) {
  BigInt numerator;
  BigInt denominator;
  QREL_RETURN_IF_ERROR(BigIntVal(&numerator));
  QREL_RETURN_IF_ERROR(BigIntVal(&denominator));
  if (denominator.IsZero()) {
    return Status::DataLoss("snapshot holds a zero-denominator rational");
  }
  *out = Rational(std::move(numerator), std::move(denominator));
  return Status::Ok();
}

Status SnapshotReader::RngState(Rng* out) {
  std::array<uint64_t, 4> state = {};
  for (uint64_t& word : state) {
    QREL_RETURN_IF_ERROR(U64(&word));
  }
  StatusOr<Rng> restored = Rng::Restore(state);
  if (!restored.ok()) {
    return Status::DataLoss("snapshot holds an invalid RNG state");
  }
  *out = std::move(restored).value();
  return Status::Ok();
}

Status SnapshotReader::TupleVal(std::vector<int32_t>* out) {
  uint32_t size = 0;
  QREL_RETURN_IF_ERROR(U32(&size));
  if (static_cast<size_t>(size) * 4 > remaining()) {
    return Status::DataLoss("snapshot tuple length exceeds payload");
  }
  out->clear();
  out->reserve(size);
  for (uint32_t i = 0; i < size; ++i) {
    uint32_t element = 0;
    QREL_RETURN_IF_ERROR(U32(&element));
    out->push_back(static_cast<int32_t>(element));
  }
  return Status::Ok();
}

Status SnapshotReader::ExpectEnd() const {
  if (remaining() != 0) {
    return Status::DataLoss("snapshot payload has trailing bytes");
  }
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Fingerprint

Fingerprint& Fingerprint::Mix(uint64_t value) {
  uint8_t bytes[8];
  for (int i = 0; i < 8; ++i) {
    bytes[i] = static_cast<uint8_t>(value >> (8 * i));
  }
  hash_ = Fnv1a(bytes, sizeof(bytes), hash_);
  return *this;
}

Fingerprint& Fingerprint::Mix(std::string_view value) {
  Mix(static_cast<uint64_t>(value.size()));
  hash_ = Fnv1a(reinterpret_cast<const uint8_t*>(value.data()), value.size(),
                hash_);
  return *this;
}

Fingerprint& Fingerprint::MixDouble(double value) {
  return Mix(DoubleBits(value));
}

Fingerprint& Fingerprint::MixRational(const Rational& value) {
  Mix(value.numerator().ToDecimalString());
  return Mix(value.denominator().ToDecimalString());
}

// ---------------------------------------------------------------------------
// Container encode / decode

std::vector<uint8_t> EncodeSnapshot(const SnapshotData& data) {
  std::vector<uint8_t> bytes;
  bytes.reserve(kMinFileSize + data.kind.size() + data.payload.size());
  AppendBytes(&bytes, kMagic, sizeof(kMagic));
  AppendU32(&bytes, kSnapshotFormatVersion);
  AppendU64(&bytes, data.fingerprint);
  AppendU64(&bytes, data.work_spent);
  AppendU32(&bytes, static_cast<uint32_t>(data.kind.size()));
  AppendBytes(&bytes, data.kind.data(), data.kind.size());
  AppendU64(&bytes, static_cast<uint64_t>(data.payload.size()));
  AppendBytes(&bytes, data.payload.data(), data.payload.size());
  AppendU64(&bytes, Fnv1a(bytes.data(), bytes.size(),
                          0xcbf29ce484222325ULL));
  return bytes;
}

StatusOr<SnapshotData> DecodeSnapshot(const uint8_t* data, size_t size) {
  if (size < kMinFileSize) {
    return Status::DataLoss("snapshot truncated: " + std::to_string(size) +
                            " byte(s), need at least " +
                            std::to_string(kMinFileSize));
  }
  if (std::memcmp(data, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("not a qrel snapshot (bad magic)");
  }
  size_t offset = sizeof(kMagic);
  uint32_t version = LoadU32(data + offset);
  offset += 4;
  if (version != kSnapshotFormatVersion) {
    return Status::InvalidArgument(
        "unsupported snapshot format version " + std::to_string(version) +
        " (this build reads version " +
        std::to_string(kSnapshotFormatVersion) + ")");
  }

  SnapshotData result;
  result.fingerprint = LoadU64(data + offset);
  offset += 8;
  result.work_spent = LoadU64(data + offset);
  offset += 8;

  uint32_t kind_length = LoadU32(data + offset);
  offset += 4;
  if (kind_length > kMaxKindLength || kind_length > size - offset) {
    return Status::DataLoss("snapshot kind length exceeds file size");
  }
  result.kind.assign(reinterpret_cast<const char*>(data + offset),
                     kind_length);
  offset += kind_length;

  if (size - offset < 8) {
    return Status::DataLoss("snapshot truncated before payload length");
  }
  uint64_t payload_length = LoadU64(data + offset);
  offset += 8;
  if (payload_length > kMaxPayloadLength ||
      payload_length > size - offset) {
    return Status::DataLoss("snapshot payload length exceeds file size");
  }
  result.payload.assign(data + offset, data + offset + payload_length);
  offset += payload_length;

  if (size - offset != 8) {
    return Status::DataLoss("snapshot has trailing bytes after checksum");
  }
  uint64_t stored = LoadU64(data + offset);
  uint64_t computed = Fnv1a(data, offset, 0xcbf29ce484222325ULL);
  if (stored != computed) {
    return Status::DataLoss("snapshot checksum mismatch (file corrupted)");
  }
  return result;
}

// ---------------------------------------------------------------------------
// Atomic file I/O (POSIX: write temp -> fsync -> rename).

namespace {

// Directory holding `path` ("." for a bare file name); fsync'd after the
// rename so the new directory entry survives a power loss.
std::string ParentDirectory(const std::string& path) {
  size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) {
    return ".";
  }
  return slash == 0 ? "/" : path.substr(0, slash);
}

}  // namespace

Status WriteSnapshotFile(const std::string& path, const SnapshotData& data) {
  QREL_FAULT_SITE("util.snapshot.write");
  Vfs& vfs = ProcessVfs();
  std::vector<uint8_t> bytes = EncodeSnapshot(data);
  // Per-attempt-unique temp name ("<path>.tmp.<pid>.<seq>"): concurrent
  // writers — two threads of this process as much as two processes
  // sharing the directory — race only on the final rename (last writer
  // wins, both files whole), never on the temp file itself, where an
  // O_TRUNC collision would tear both writers' data. Startup GC
  // (net/server.h RecoverState) parses this exact shape to tell a crashed
  // writer's orphan from a live writer's file by the embedded pid.
  static std::atomic<uint64_t> temp_seq{0};
  std::string temp_path =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid())) + "." +
      std::to_string(temp_seq.fetch_add(1, std::memory_order_relaxed) + 1);
  StatusOr<int> opened = vfs.OpenWrite(temp_path);
  if (!opened.ok()) {
    return Status(opened.status().code(),
                  "cannot create checkpoint temp file " + temp_path + ": " +
                      opened.status().message());
  }
  int fd = *opened;
  // Every early return below funnels through one of these, so no failure
  // path can leak the descriptor or leave the temp file behind. Cleanup
  // is best-effort: a second failure while cleaning up must not mask the
  // original error.
  auto fail_open = [&](const char* what, const Status& cause) {
    vfs.Close(fd);
    vfs.Unlink(temp_path);
    return Status(cause.code(),
                  std::string("checkpoint ") + what + " failed: " +
                      cause.message());
  };
  auto fail_closed = [&](const char* what, const Status& cause) {
    vfs.Unlink(temp_path);
    return Status(cause.code(),
                  std::string("checkpoint ") + what + " failed: " +
                      cause.message());
  };
  size_t written = 0;
  while (written < bytes.size()) {
    StatusOr<size_t> n =
        vfs.Write(fd, bytes.data() + written, bytes.size() - written);
    if (!n.ok()) {
      return fail_open("write", n.status());
    }
    if (*n == 0) {
      // A zero-byte transfer would loop forever; treat it as the I/O
      // error it almost certainly is.
      return fail_open("write",
                       Status::Internal("write transferred no bytes"));
    }
    written += *n;
  }
  // fsync before rename: the rename must not become durable before the
  // data it points at.
  Status synced = vfs.Fsync(fd);
  if (!synced.ok()) {
    return fail_open("fsync", synced);
  }
  Status closed = vfs.Close(fd);
  if (!closed.ok()) {
    return fail_closed("close", closed);
  }
  Status renamed = vfs.Rename(temp_path, path);
  if (!renamed.ok()) {
    return fail_closed("rename", renamed);
  }
  // fsync the containing directory: the rename updated a directory entry,
  // and without this a power loss can roll the directory back to the old
  // (or no) snapshot even though the data blocks were synced above. The
  // temp file is already renamed away, so there is nothing to unlink on
  // this last error path.
  Status dir_synced = vfs.FsyncDir(ParentDirectory(path));
  if (!dir_synced.ok()) {
    return Status(dir_synced.code(), "checkpoint directory fsync failed: " +
                                         dir_synced.message());
  }
  return Status::Ok();
}

StatusOr<SnapshotData> ReadSnapshotFile(const std::string& path) {
  QREL_FAULT_SITE("util.snapshot.load");
  StatusOr<std::vector<uint8_t>> bytes = ProcessVfs().ReadFileBytes(
      path, kMaxPayloadLength + kMinFileSize + kMaxKindLength);
  if (!bytes.ok()) {
    if (bytes.status().code() == StatusCode::kNotFound) {
      return Status::NotFound("no snapshot at " + path);
    }
    if (bytes.status().code() == StatusCode::kDataLoss) {
      return Status::DataLoss("snapshot file implausibly large");
    }
    return Status(bytes.status().code(),
                  "snapshot read failed: " + bytes.status().message());
  }
  return DecodeSnapshot(bytes->data(), bytes->size());
}

// ---------------------------------------------------------------------------
// Checkpointer / CheckpointScope

Checkpointer::Checkpointer(std::string path,
                           std::chrono::milliseconds interval)
    : path_(std::move(path)), interval_(interval) {
  // The interval clock starts now, not at the first write: a run shorter
  // than the interval pays nothing for being checkpointable.
  last_write_ = Clock::now();
}

Status Checkpointer::LoadForResume() {
  StatusOr<SnapshotData> snapshot = ReadSnapshotFile(path_);
  if (!snapshot.ok()) {
    if (snapshot.status().code() == StatusCode::kNotFound) {
      return Status::Ok();  // fresh run
    }
    return snapshot.status();
  }
  MutexLock lock(&mu_);
  resume_ = std::move(snapshot).value();
  resume_consumed_ = false;
  return Status::Ok();
}

CheckpointScope::CheckpointScope(RunContext* ctx, std::string_view kind,
                                 uint64_t fingerprint)
    : kind_(kind), fingerprint_(fingerprint) {
  if (ctx == nullptr || ctx->checkpointer() == nullptr) {
    return;  // inert: no policy attached
  }
  Checkpointer* checkpointer = ctx->checkpointer();
  // Test-and-set under the checkpointer's lock: with concurrent scope
  // construction on one context (parallel engine core), exactly one scope
  // wins the claim and the rest are inert.
  MutexLock lock(&checkpointer->mu_);
  if (checkpointer->claimed_) {
    return;  // inert: a nested (or concurrent) loop already claimed
  }
  ctx_ = ctx;
  checkpointer_ = checkpointer;
  checkpointer_->claimed_ = true;
}

CheckpointScope::~CheckpointScope() {
  if (checkpointer_ != nullptr) {
    MutexLock lock(&checkpointer_->mu_);
    checkpointer_->claimed_ = false;
  }
}

bool CheckpointScope::WouldClaim(const RunContext* ctx) {
  return ctx != nullptr && ctx->checkpointer() != nullptr &&
         !ctx->checkpointer()->claimed();
}

Status CheckpointScope::TakeResume(std::optional<SnapshotReader>* reader) {
  reader->reset();
  if (checkpointer_ == nullptr) {
    return Status::Ok();
  }
  MutexLock lock(&checkpointer_->mu_);
  if (!checkpointer_->resume_.has_value() ||
      checkpointer_->resume_consumed_) {
    return Status::Ok();
  }
  SnapshotData& resume = *checkpointer_->resume_;
  if (resume.kind != kind_) {
    // Another algorithm's state; leave it for the rung it belongs to.
    return Status::Ok();
  }
  if (resume.fingerprint != fingerprint_) {
    return Status::InvalidArgument(
        "snapshot '" + checkpointer_->path_ + "' (kind " + resume.kind +
        ") was written by a run with different parameters; refusing to "
        "resume from it");
  }
  checkpointer_->resume_consumed_ = true;
  if (ctx_ != nullptr) {
    ctx_->SetWorkSpent(resume.work_spent);
  }
  reader->emplace(std::move(resume.payload));
  return Status::Ok();
}

Status CheckpointScope::MaybeCheckpoint(
    const std::function<void(SnapshotWriter&)>& fill) {
  if (checkpointer_ == nullptr) {
    return Status::Ok();
  }
  // A pending cooperative cancellation (SIGINT in qrel_cli, a server
  // drain) or an exhausted work budget means the very next Charge() ends
  // this run: flush a final checkpoint at this safe point regardless of
  // the interval, so the interrupted run loses no progress. Both checks
  // are O(1) loads — deadline expiry is left to the interval writes, which
  // already consult the clock.
  bool trip_pending =
      ctx_ != nullptr &&
      (ctx_->cancellation_requested() ||
       (ctx_->has_work_budget() && ctx_->work_remaining() == 0));
  if (!trip_pending) {
    MutexLock lock(&checkpointer_->mu_);
    if (checkpointer_->last_write_.has_value() &&
        Checkpointer::Clock::now() - *checkpointer_->last_write_ <
            checkpointer_->interval_) {
      return Status::Ok();
    }
  }
  return CheckpointNow(fill);
}

Status CheckpointScope::CheckpointNow(
    const std::function<void(SnapshotWriter&)>& fill) {
  if (checkpointer_ == nullptr) {
    return Status::Ok();
  }
  // Held across the file write: one writer at a time per checkpoint path
  // (WriteSnapshotFile's unique temp names already make concurrent writers
  // safe; the lock makes them ordered, so last_write_/writes_ cannot drift
  // from what is on disk).
  MutexLock lock(&checkpointer_->mu_);
  if (checkpointer_->resume_.has_value() &&
      !checkpointer_->resume_consumed_ &&
      checkpointer_->resume_->kind != kind_) {
    // The file holds another algorithm's unconsumed progress (e.g. the run
    // was re-invoked with a different query). Overwriting it would destroy
    // a resumable checkpoint, so this run proceeds without checkpointing.
    return Status::Ok();
  }
  SnapshotData data;
  data.kind = kind_;
  data.fingerprint = fingerprint_;
  data.work_spent = ctx_ != nullptr ? ctx_->work_spent() : 0;
  SnapshotWriter writer;
  fill(writer);
  data.payload = writer.TakeBytes();
  QREL_RETURN_IF_ERROR(WriteSnapshotFile(checkpointer_->path_, data));
  checkpointer_->last_write_ = Checkpointer::Clock::now();
  ++checkpointer_->writes_;
  return Status::Ok();
}

}  // namespace qrel
