#include "qrel/util/status.h"

#include <cstring>

namespace qrel {

namespace {

// strerror_r comes in two flavours: XSI returns int and fills `buf`; GNU
// (selected by _GNU_SOURCE, which gnu++ modes define) returns a char* that
// may point at `buf` or at a static message. Overload dispatch on the
// actual return type handles whichever the toolchain picked.
[[maybe_unused]] const char* StrerrorResult(int rc, const char* buf) {
  return rc == 0 ? buf : "unknown error";
}
[[maybe_unused]] const char* StrerrorResult(const char* message,
                                            const char* /*buf*/) {
  return message != nullptr ? message : "unknown error";
}

}  // namespace

std::string ErrnoString(int err) {
  char buf[256];
  buf[0] = '\0';
  return StrerrorResult(strerror_r(err, buf, sizeof(buf)), buf);
}

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kCancelled:
      return "CANCELLED";
    case StatusCode::kDataLoss:
      return "DATA_LOSS";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string result = StatusCodeName(code_);
  result += ": ";
  result += message_;
  return result;
}

}  // namespace qrel
