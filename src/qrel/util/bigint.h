// Arbitrary-precision signed integers.
//
// The exact algorithms in this library (Theorem 4.2's world-enumeration
// computation, Proposition 3.1's quantifier-free algorithm, the Theorem 5.3
// reduction) manipulate probabilities whose denominators are products over
// all atoms of a database, i.e. numbers with thousands of bits. BigInt is
// the integer substrate for Rational (rational.h).
//
// Representation: sign-magnitude with 32-bit limbs in little-endian order
// and no leading zero limbs; zero has an empty limb vector and positive
// sign. All operations are value-semantic.

#ifndef QREL_UTIL_BIGINT_H_
#define QREL_UTIL_BIGINT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "qrel/util/status.h"

namespace qrel {

class BigInt {
 public:
  // Zero.
  BigInt() = default;
  // NOLINTNEXTLINE(google-explicit-constructor): numeric literals should
  // convert implicitly, mirroring built-in integer behaviour.
  BigInt(int64_t value);

  static BigInt FromUint64(uint64_t value);
  // Parses an optionally signed decimal string. Fails on empty input or
  // non-digit characters.
  static StatusOr<BigInt> FromDecimalString(std::string_view text);
  // 2^exponent.
  static BigInt TwoPow(uint32_t exponent);

  bool IsZero() const { return limbs_.empty(); }
  bool IsOne() const { return !negative_ && limbs_.size() == 1 && limbs_[0] == 1; }
  bool IsNegative() const { return negative_; }
  // -1, 0 or +1.
  int Sign() const { return IsZero() ? 0 : (negative_ ? -1 : 1); }

  // Number of bits in the magnitude; 0 for zero.
  size_t BitLength() const;
  // Whether the magnitude's bit `index` (0 = least significant) is set.
  bool TestBit(size_t index) const;
  bool IsEven() const { return limbs_.empty() || (limbs_[0] & 1u) == 0; }

  BigInt Abs() const;
  BigInt Negated() const;

  // Three-way comparison: negative/zero/positive as *this <,==,> other.
  int Compare(const BigInt& other) const;

  BigInt operator+(const BigInt& other) const;
  BigInt operator-(const BigInt& other) const;
  BigInt operator*(const BigInt& other) const;
  // Truncated division (C++ semantics: quotient rounds toward zero, the
  // remainder has the sign of the dividend). Dividing by zero aborts.
  BigInt operator/(const BigInt& other) const;
  BigInt operator%(const BigInt& other) const;
  BigInt& operator+=(const BigInt& other) { return *this = *this + other; }
  BigInt& operator-=(const BigInt& other) { return *this = *this - other; }
  BigInt& operator*=(const BigInt& other) { return *this = *this * other; }

  BigInt operator-() const { return Negated(); }

  bool operator==(const BigInt& other) const { return Compare(other) == 0; }
  bool operator!=(const BigInt& other) const { return Compare(other) != 0; }
  bool operator<(const BigInt& other) const { return Compare(other) < 0; }
  bool operator<=(const BigInt& other) const { return Compare(other) <= 0; }
  bool operator>(const BigInt& other) const { return Compare(other) > 0; }
  bool operator>=(const BigInt& other) const { return Compare(other) >= 0; }

  // Quotient and remainder in one pass (same semantics as / and %).
  struct DivModResult;  // defined after the class (needs a complete BigInt)
  DivModResult DivMod(const BigInt& divisor) const;

  // Magnitude shifts (sign is preserved; shifting zero stays zero).
  BigInt ShiftLeft(size_t bits) const;
  BigInt ShiftRight(size_t bits) const;

  // Greatest common divisor of the magnitudes; Gcd(0, 0) == 0.
  static BigInt Gcd(const BigInt& a, const BigInt& b);
  // Least common multiple of the magnitudes; Lcm with zero is zero.
  static BigInt Lcm(const BigInt& a, const BigInt& b);
  // base^exponent. Pow(0, 0) == 1.
  static BigInt Pow(const BigInt& base, uint32_t exponent);

  std::string ToDecimalString() const;
  // Nearest double (may overflow to +/-inf for huge values).
  double ToDouble() const;
  // Returns the value as int64_t; aborts if it does not fit.
  int64_t ToInt64() const;
  // Whether the value fits in an int64_t.
  bool FitsInt64() const;

 private:
  static std::vector<uint32_t> AddMag(const std::vector<uint32_t>& a,
                                      const std::vector<uint32_t>& b);
  // Requires |a| >= |b|.
  static std::vector<uint32_t> SubMag(const std::vector<uint32_t>& a,
                                      const std::vector<uint32_t>& b);
  static std::vector<uint32_t> MulMag(const std::vector<uint32_t>& a,
                                      const std::vector<uint32_t>& b);
  // Schoolbook long division (Knuth algorithm D) on magnitudes.
  static void DivModMag(const std::vector<uint32_t>& u,
                        const std::vector<uint32_t>& v,
                        std::vector<uint32_t>* quotient,
                        std::vector<uint32_t>* remainder);
  static int CompareMag(const std::vector<uint32_t>& a,
                        const std::vector<uint32_t>& b);
  static void TrimMag(std::vector<uint32_t>* mag);

  void Canonicalize();

  bool negative_ = false;
  std::vector<uint32_t> limbs_;
};

struct BigInt::DivModResult {
  BigInt quotient;
  BigInt remainder;
};

}  // namespace qrel

#endif  // QREL_UTIL_BIGINT_H_
