#include "qrel/util/rational.h"

#include <limits>
#include <utility>

#include "qrel/util/check.h"

namespace qrel {

Rational::Rational(BigInt numerator, BigInt denominator)
    : numerator_(std::move(numerator)), denominator_(std::move(denominator)) {
  QREL_CHECK_MSG(!denominator_.IsZero(), "Rational with zero denominator");
  Normalize();
}

void Rational::Normalize() {
  if (denominator_.IsNegative()) {
    numerator_ = numerator_.Negated();
    denominator_ = denominator_.Negated();
  }
  if (numerator_.IsZero()) {
    denominator_ = BigInt(1);
    return;
  }
  BigInt g = BigInt::Gcd(numerator_, denominator_);
  if (!g.IsOne()) {
    numerator_ = numerator_ / g;
    denominator_ = denominator_ / g;
  }
}

StatusOr<Rational> Rational::Parse(std::string_view text) {
  if (text.empty()) {
    return Status::InvalidArgument("empty rational literal");
  }
  size_t slash = text.find('/');
  if (slash != std::string_view::npos) {
    StatusOr<BigInt> numerator = BigInt::FromDecimalString(text.substr(0, slash));
    if (!numerator.ok()) {
      return numerator.status();
    }
    StatusOr<BigInt> denominator =
        BigInt::FromDecimalString(text.substr(slash + 1));
    if (!denominator.ok()) {
      return denominator.status();
    }
    if (denominator->IsZero()) {
      return Status::InvalidArgument("rational with zero denominator: " +
                                     std::string(text));
    }
    return Rational(std::move(numerator).value(),
                    std::move(denominator).value());
  }
  size_t dot = text.find('.');
  if (dot != std::string_view::npos) {
    std::string digits;
    digits.reserve(text.size());
    digits.append(text.substr(0, dot));
    std::string_view fraction = text.substr(dot + 1);
    if (fraction.empty()) {
      return Status::InvalidArgument("decimal literal ends in '.': " +
                                     std::string(text));
    }
    digits.append(fraction);
    StatusOr<BigInt> numerator = BigInt::FromDecimalString(digits);
    if (!numerator.ok()) {
      return numerator.status();
    }
    BigInt denominator = BigInt::Pow(BigInt(10),
                                     static_cast<uint32_t>(fraction.size()));
    return Rational(std::move(numerator).value(), std::move(denominator));
  }
  StatusOr<BigInt> numerator = BigInt::FromDecimalString(text);
  if (!numerator.ok()) {
    return numerator.status();
  }
  return Rational(std::move(numerator).value(), BigInt(1));
}

bool Rational::IsProbability() const {
  return Sign() >= 0 && Compare(Rational(1)) <= 0;
}

Rational Rational::operator+(const Rational& other) const {
  return Rational(numerator_ * other.denominator_ +
                      other.numerator_ * denominator_,
                  denominator_ * other.denominator_);
}

Rational Rational::operator-(const Rational& other) const {
  return Rational(numerator_ * other.denominator_ -
                      other.numerator_ * denominator_,
                  denominator_ * other.denominator_);
}

Rational Rational::operator*(const Rational& other) const {
  return Rational(numerator_ * other.numerator_,
                  denominator_ * other.denominator_);
}

Rational Rational::operator/(const Rational& other) const {
  QREL_CHECK_MSG(!other.IsZero(), "Rational division by zero");
  return Rational(numerator_ * other.denominator_,
                  denominator_ * other.numerator_);
}

Rational Rational::operator-() const {
  Rational result = *this;
  result.numerator_ = result.numerator_.Negated();
  return result;
}

int Rational::Compare(const Rational& other) const {
  // Denominators are positive, so cross-multiplication preserves order.
  return (numerator_ * other.denominator_)
      .Compare(other.numerator_ * denominator_);
}

std::string Rational::ToString() const {
  if (denominator_.IsOne()) {
    return numerator_.ToDecimalString();
  }
  return numerator_.ToDecimalString() + "/" + denominator_.ToDecimalString();
}

double Rational::ToDouble() const {
  // Scale down both parts together to stay inside double range for huge
  // operands.
  size_t num_bits = numerator_.BitLength();
  size_t den_bits = denominator_.BitLength();
  if (num_bits < 900 && den_bits < 900) {
    return numerator_.ToDouble() / denominator_.ToDouble();
  }
  size_t shift = (num_bits > den_bits ? num_bits : den_bits) - 512;
  BigInt num = numerator_.ShiftRight(shift);
  BigInt den = denominator_.ShiftRight(shift);
  if (den.IsZero()) {
    // Denominator vanished: the value overflows double range.
    return numerator_.IsNegative()
               ? -std::numeric_limits<double>::infinity()
               : std::numeric_limits<double>::infinity();
  }
  return num.ToDouble() / den.ToDouble();
}

}  // namespace qrel
