// Lightweight error propagation without exceptions.
//
// Library code that can fail on *user input* (parsers, validators, file
// loaders) returns Status or StatusOr<T>. Programmer errors are guarded by
// QREL_CHECK instead.

#ifndef QREL_UTIL_STATUS_H_
#define QREL_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "qrel/util/check.h"

namespace qrel {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
};

// Returns a stable human-readable name for `code` ("OK", "INVALID_ARGUMENT",
// ...).
const char* StatusCodeName(StatusCode code);

// An error code plus message. Cheap to copy in the OK case.
class Status {
 public:
  // Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  static Status OutOfRange(std::string message) {
    return Status(StatusCode::kOutOfRange, std::move(message));
  }
  static Status FailedPrecondition(std::string message) {
    return Status(StatusCode::kFailedPrecondition, std::move(message));
  }
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CODE>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

// Holds either a value or an error Status. `value()` may only be called when
// `ok()`; this is enforced with QREL_CHECK.
template <typename T>
class StatusOr {
 public:
  // Intentionally implicit, so functions can `return value;` or
  // `return Status::InvalidArgument(...)`.
  StatusOr(T value) : status_(Status::Ok()), value_(std::move(value)) {}
  StatusOr(Status status) : status_(std::move(status)) {
    QREL_CHECK_MSG(!status_.ok(), "StatusOr constructed from OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    QREL_CHECK_MSG(ok(), status_.ToString().c_str());
    return *value_;
  }
  T& value() & {
    QREL_CHECK_MSG(ok(), status_.ToString().c_str());
    return *value_;
  }
  T&& value() && {
    QREL_CHECK_MSG(ok(), status_.ToString().c_str());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

// Propagates a non-OK status from an expression producing a Status.
#define QREL_RETURN_IF_ERROR(expr)            \
  do {                                        \
    ::qrel::Status qrel_status_tmp = (expr);  \
    if (!qrel_status_tmp.ok()) {              \
      return qrel_status_tmp;                 \
    }                                         \
  } while (0)

}  // namespace qrel

#endif  // QREL_UTIL_STATUS_H_
