// Lightweight error propagation without exceptions.
//
// Library code that can fail on *user input* (parsers, validators, file
// loaders) returns Status or StatusOr<T>. Programmer errors are guarded by
// QREL_CHECK instead.

#ifndef QREL_UTIL_STATUS_H_
#define QREL_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <type_traits>
#include <utility>

#include "qrel/util/check.h"

namespace qrel {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  // Resource-governance trips (see util/run_context.h).
  kDeadlineExceeded,
  kResourceExhausted,
  kCancelled,
  // Stored data is unrecoverably corrupt (truncated or checksum-mismatched
  // snapshot files, see util/snapshot.h). Distinct from kInvalidArgument:
  // the input *was* valid data once and has been damaged since.
  kDataLoss,
  // The service cannot take this request *right now* — a full queue, a
  // drained server, a saturated work quota (see net/server.h). Distinct
  // from kResourceExhausted: nothing about the request itself is too
  // expensive, and an identical retry after backing off may succeed, so
  // wire responses carry a Retry-After hint (net/protocol.h). Appended
  // last so existing CLI exit codes (10 + code) stay stable; kUnavailable
  // exits 20.
  kUnavailable,
};

// True for the codes a RunContext produces when an execution envelope
// trips — the codes the engine's degradation ladder reacts to.
// kUnavailable is deliberately *not* a budget code: it is produced by the
// serving layer before any budget is charged, and degrading would be the
// wrong reaction to a full queue.
inline bool IsBudgetStatusCode(StatusCode code) {
  return code == StatusCode::kDeadlineExceeded ||
         code == StatusCode::kResourceExhausted ||
         code == StatusCode::kCancelled;
}

// Returns a stable human-readable name for `code` ("OK", "INVALID_ARGUMENT",
// ...).
const char* StatusCodeName(StatusCode code);

// Thread-safe strerror: formats `err` (an errno value) via strerror_r
// into a fresh string. std::strerror returns a pointer into static
// storage a concurrent call may rewrite (clang-tidy concurrency-mt-unsafe),
// and the serving layer builds errno messages from many threads.
std::string ErrnoString(int err);

// An error code plus message. Cheap to copy in the OK case.
class Status {
 public:
  // Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  static Status OutOfRange(std::string message) {
    return Status(StatusCode::kOutOfRange, std::move(message));
  }
  static Status FailedPrecondition(std::string message) {
    return Status(StatusCode::kFailedPrecondition, std::move(message));
  }
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }
  static Status DeadlineExceeded(std::string message) {
    return Status(StatusCode::kDeadlineExceeded, std::move(message));
  }
  static Status ResourceExhausted(std::string message) {
    return Status(StatusCode::kResourceExhausted, std::move(message));
  }
  static Status Cancelled(std::string message) {
    return Status(StatusCode::kCancelled, std::move(message));
  }
  static Status DataLoss(std::string message) {
    return Status(StatusCode::kDataLoss, std::move(message));
  }
  static Status Unavailable(std::string message) {
    return Status(StatusCode::kUnavailable, std::move(message));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CODE>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

// Holds either a value or an error Status. `value()` may only be called when
// `ok()`; this is enforced with QREL_CHECK.
template <typename T>
class StatusOr {
 public:
  // Intentionally implicit, so functions can `return value;` or
  // `return Status::InvalidArgument(...)`.
  StatusOr(T value) : status_(Status::Ok()), value_(std::move(value)) {}
  StatusOr(Status status) : status_(std::move(status)) {
    QREL_CHECK_MSG(!status_.ok(), "StatusOr constructed from OK status");
  }

  // Converting construction from a StatusOr of a convertible type, so
  // e.g. a StatusOr<Derived> or StatusOr<int> can be returned where a
  // StatusOr<Base> / StatusOr<int64_t> is expected.
  template <typename U,
            typename = std::enable_if_t<!std::is_same_v<T, U> &&
                                        std::is_constructible_v<T, U&&>>>
  StatusOr(StatusOr<U> other) : status_(other.status()) {
    if (other.ok()) {
      value_.emplace(std::move(other).value());
    }
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    QREL_CHECK_MSG(ok(), status_.ToString().c_str());
    return *value_;
  }
  T& value() & {
    QREL_CHECK_MSG(ok(), status_.ToString().c_str());
    return *value_;
  }
  T&& value() && {
    QREL_CHECK_MSG(ok(), status_.ToString().c_str());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  // The held value, or `fallback` when this holds an error.
  template <typename U>
  T value_or(U&& fallback) const& {
    return ok() ? *value_ : static_cast<T>(std::forward<U>(fallback));
  }
  template <typename U>
  T value_or(U&& fallback) && {
    return ok() ? std::move(*value_)
                : static_cast<T>(std::forward<U>(fallback));
  }

 private:
  Status status_;
  std::optional<T> value_;
};

// Propagates a non-OK status from an expression producing a Status.
#define QREL_RETURN_IF_ERROR(expr)            \
  do {                                        \
    ::qrel::Status qrel_status_tmp = (expr);  \
    if (!qrel_status_tmp.ok()) {              \
      return qrel_status_tmp;                 \
    }                                         \
  } while (0)

// Evaluates `expr` (a StatusOr<T> expression), propagates a non-OK status,
// and otherwise assigns the held value to `lhs`. `lhs` may declare a new
// variable (`QREL_ASSIGN_OR_RETURN(auto x, Foo())`) or name an existing
// one.
#define QREL_ASSIGN_OR_RETURN(lhs, expr) \
  QREL_ASSIGN_OR_RETURN_IMPL_(           \
      QREL_STATUS_CONCAT_(qrel_statusor_tmp, __LINE__), lhs, expr)

#define QREL_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) {                                  \
    return tmp.status();                            \
  }                                                 \
  lhs = std::move(tmp).value()

#define QREL_STATUS_CONCAT_(a, b) QREL_STATUS_CONCAT_IMPL_(a, b)
#define QREL_STATUS_CONCAT_IMPL_(a, b) a##b

}  // namespace qrel

#endif  // QREL_UTIL_STATUS_H_
