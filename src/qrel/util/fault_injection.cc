#include "qrel/util/fault_injection.h"

#include <new>
#include <unordered_map>

#include "qrel/util/mutex.h"

namespace qrel {

namespace fault_internal {

// The registry lock. A named accessor (rather than a Registry member) so
// SiteState fields can carry QREL_GUARDED_BY(RegistryMutex()) — a nested
// member mutex is not nameable from the guarded struct. Ranked innermost:
// fault sites fire under every other lock in the process (vfs syscall
// sites inside manifest and checkpoint writes).
Mutex& RegistryMutex() {
  static Mutex* mutex = new Mutex(LockRank::kFaultRegistry);  // never destroyed
  return *mutex;
}

// All fields except `hits` are guarded by the registry mutex. `hits`
// is atomic so the un-armed fast path never takes the lock.
struct SiteState {
  std::string name;
  std::atomic<uint64_t> hits{0};
  uint64_t triggered QREL_GUARDED_BY(RegistryMutex()) = 0;

  bool armed QREL_GUARDED_BY(RegistryMutex()) = false;
  // absolute hit count at which to fire
  uint64_t fire_at QREL_GUARDED_BY(RegistryMutex()) = 0;
  StatusCode code QREL_GUARDED_BY(RegistryMutex()) = StatusCode::kInternal;
  FaultKind kind QREL_GUARDED_BY(RegistryMutex()) = FaultKind::kStatus;
};

namespace {

struct Registry {
  // Site states live for the process lifetime; pointers handed to
  // FaultSite instances stay valid across Reset().
  std::unordered_map<std::string, SiteState*> sites
      QREL_GUARDED_BY(RegistryMutex());
  // registration order, for SiteNames()
  std::vector<SiteState*> order QREL_GUARDED_BY(RegistryMutex());
  // Schedules armed before their site first registered.
  struct Pending {
    uint64_t nth;
    StatusCode code;
    FaultKind kind;
  };
  std::unordered_map<std::string, Pending> pending
      QREL_GUARDED_BY(RegistryMutex());
};

Registry& GetRegistry() {
  static Registry* registry = new Registry();  // never destroyed
  return *registry;
}

}  // namespace

}  // namespace fault_internal

using fault_internal::GetRegistry;
using fault_internal::Registry;
using fault_internal::SiteState;

FaultInjector& FaultInjector::Instance() {
  static FaultInjector* instance = new FaultInjector();  // never destroyed
  return *instance;
}

SiteState* FaultInjector::Register(const char* name) {
  Registry& registry = GetRegistry();
  MutexLock lock(&fault_internal::RegistryMutex());
  auto it = registry.sites.find(name);
  if (it != registry.sites.end()) {
    return it->second;  // same name declared at several call sites
  }
  SiteState* state = new SiteState();
  state->name = name;
  registry.sites.emplace(state->name, state);
  registry.order.push_back(state);
  auto pending = registry.pending.find(state->name);
  if (pending != registry.pending.end()) {
    state->armed = true;
    state->fire_at = pending->second.nth;  // hits start at 0
    state->code = pending->second.code;
    state->kind = pending->second.kind;
    registry.pending.erase(pending);
    armed_count_.fetch_add(1, std::memory_order_relaxed);
  }
  return state;
}

void FaultInjector::Arm(std::string_view site, uint64_t nth, StatusCode code,
                        FaultKind kind) {
  if (nth == 0) {
    nth = 1;
  }
  Registry& registry = GetRegistry();
  MutexLock lock(&fault_internal::RegistryMutex());
  auto it = registry.sites.find(std::string(site));
  if (it == registry.sites.end()) {
    registry.pending[std::string(site)] = {nth, code, kind};
    return;
  }
  SiteState* state = it->second;
  if (!state->armed) {
    armed_count_.fetch_add(1, std::memory_order_relaxed);
  }
  state->armed = true;
  state->fire_at = state->hits.load(std::memory_order_relaxed) + nth;
  state->code = code;
  state->kind = kind;
}

void FaultInjector::ArmEverySiteOnce(StatusCode code) {
  Registry& registry = GetRegistry();
  MutexLock lock(&fault_internal::RegistryMutex());
  for (SiteState* state : registry.order) {
    if (!state->armed) {
      armed_count_.fetch_add(1, std::memory_order_relaxed);
    }
    state->armed = true;
    state->fire_at = state->hits.load(std::memory_order_relaxed) + 1;
    state->code = code;
    state->kind = FaultKind::kStatus;
  }
}

void FaultInjector::Reset() {
  Registry& registry = GetRegistry();
  MutexLock lock(&fault_internal::RegistryMutex());
  for (SiteState* state : registry.order) {
    if (state->armed) {
      armed_count_.fetch_sub(1, std::memory_order_relaxed);
    }
    state->armed = false;
    state->hits.store(0, std::memory_order_relaxed);
    state->triggered = 0;
  }
  registry.pending.clear();
}

std::vector<std::string> FaultInjector::SiteNames() const {
  Registry& registry = GetRegistry();
  MutexLock lock(&fault_internal::RegistryMutex());
  std::vector<std::string> names;
  names.reserve(registry.order.size());
  for (const SiteState* state : registry.order) {
    names.push_back(state->name);
  }
  return names;
}

uint64_t FaultInjector::HitCount(std::string_view site) const {
  Registry& registry = GetRegistry();
  MutexLock lock(&fault_internal::RegistryMutex());
  auto it = registry.sites.find(std::string(site));
  return it == registry.sites.end()
             ? 0
             : it->second->hits.load(std::memory_order_relaxed);
}

uint64_t FaultInjector::TriggeredCount(std::string_view site) const {
  Registry& registry = GetRegistry();
  MutexLock lock(&fault_internal::RegistryMutex());
  auto it = registry.sites.find(std::string(site));
  return it == registry.sites.end() ? 0 : it->second->triggered;
}

Status FaultInjector::OnArmedHit(SiteState* state, uint64_t hit) {
  FaultKind kind;
  StatusCode code;
  std::string name;
  {
    MutexLock lock(&fault_internal::RegistryMutex());
    if (!state->armed || hit < state->fire_at) {
      return Status::Ok();
    }
    // One-shot: disarm before firing so a retry of the faulted call runs
    // clean.
    state->armed = false;
    ++state->triggered;
    armed_count_.fetch_sub(1, std::memory_order_relaxed);
    kind = state->kind;
    code = state->code;
    name = state->name;
  }
  if (kind == FaultKind::kBadAlloc) {
    throw std::bad_alloc();
  }
  return Status(code, "injected fault at '" + name + "' (hit " +
                          std::to_string(hit) + ")");
}

FaultSite::FaultSite(const char* name)
    : state_(FaultInjector::Instance().Register(name)) {}

Status FaultSite::Fire() {
  uint64_t hit = state_->hits.fetch_add(1, std::memory_order_relaxed) + 1;
  FaultInjector& injector = FaultInjector::Instance();
  if (!injector.AnyArmed()) {
    return Status::Ok();
  }
  return injector.OnArmedHit(state_, hit);
}

Status ArmFaultFromSpec(std::string_view spec) {
  if (spec.empty()) {
    return Status::InvalidArgument("empty fault spec");
  }
  std::string_view site = spec;
  uint64_t nth = 1;
  size_t colon = spec.rfind(':');
  if (colon != std::string_view::npos) {
    site = spec.substr(0, colon);
    std::string_view count = spec.substr(colon + 1);
    if (site.empty() || count.empty()) {
      return Status::InvalidArgument("fault spec must be '<site>:<n>', got '" +
                                     std::string(spec) + "'");
    }
    nth = 0;
    for (char c : count) {
      if (c < '0' || c > '9' || nth > 100000000) {
        return Status::InvalidArgument(
            "fault spec hit count must be a positive integer, got '" +
            std::string(count) + "'");
      }
      nth = nth * 10 + static_cast<uint64_t>(c - '0');
    }
    if (nth == 0) {
      return Status::InvalidArgument("fault spec hit count must be >= 1");
    }
  }
  FaultInjector::Instance().Arm(site, nth);
  return Status::Ok();
}

}  // namespace qrel
