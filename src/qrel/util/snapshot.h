// Crash-safe checkpointing and deterministic resume.
//
// The exact FP^#P computation (Thm 4.2) and the sampling estimators
// (Thms 5.2-5.12) run for minutes to hours at scale; a crash, OOM-kill or
// deadline expiry used to throw away all accumulated work. This module
// turns every long-running loop in the engine into a *resumable* one:
//
//  - A versioned, checksummed binary **snapshot format** written atomically
//    (write temp file -> fsync -> rename) so a crash mid-write can never
//    destroy the previous checkpoint, with corruption detection on load
//    (truncation, bit flips and version skew come back as typed
//    kDataLoss / kInvalidArgument Statuses — never a crash, never a silent
//    restart from zero).
//  - A **Checkpointer** that owns the snapshot file path and the write
//    interval, rides on a RunContext next to the deadline and work budget,
//    and hands the previous run's snapshot to whichever algorithm it
//    belongs to.
//  - A **CheckpointScope** claimed by the outermost governed loop of each
//    algorithm (Karp-Luby / naive-MC sampling, exact world enumeration,
//    the padded and absolute-error estimators, the Datalog fixpoint). The
//    scope serializes loop state — counters, accumulators, the full RNG
//    state (util/rng.h) — at safe points, and restores it on resume so the
//    continued run draws the *same* random stream and accumulates in the
//    *same* order as an uninterrupted run: the final estimate, count and
//    (ε, δ) report are bit-identical.
//
// Scope claiming: only the first CheckpointScope constructed on a
// RunContext is active; nested scopes (a Karp-Luby loop inside the
// Corollary 5.5 tuple loop, a fixpoint inside the Datalog world loop) are
// inert. Checkpoint granularity is therefore decided by the outermost
// loop, which is also the loop whose state fully determines the rest of
// the computation.
//
// Resume keying: each algorithm stamps its snapshots with a `kind` string
// (e.g. "propositional.karp_luby.v1") and a fingerprint digesting
// everything its result depends on — not just the run parameters (seed,
// sample plan) and the instance *shape* (counts, arities), but the full
// instance *content*: the serialized query or program, the DNF term
// literals, the observed facts, and every probability-model entry. A
// re-run with an edited query or tweaked probabilities that happens to
// keep the same shape therefore cannot match. On resume, a snapshot is
// consumed only by a scope with the same kind; a kind match with a
// fingerprint mismatch is an InvalidArgument ("snapshot from a different
// run"), not a silent restart and never a silently biased merge.

#ifndef QREL_UTIL_SNAPSHOT_H_
#define QREL_UTIL_SNAPSHOT_H_

#include <array>
#include <chrono>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "qrel/util/bigint.h"
#include "qrel/util/mutex.h"
#include "qrel/util/rational.h"
#include "qrel/util/rng.h"
#include "qrel/util/run_context.h"
#include "qrel/util/status.h"

namespace qrel {

// The snapshot container format version. Bump on any layout change; load
// rejects other versions with InvalidArgument (the payload encodings are
// versioned separately through each algorithm's `kind` string).
inline constexpr uint32_t kSnapshotFormatVersion = 1;

// One decoded snapshot: whose state it is (`kind` + parameter
// `fingerprint`), the work-unit counter at checkpoint time, and the
// algorithm-specific payload bytes.
struct SnapshotData {
  std::string kind;
  uint64_t fingerprint = 0;
  uint64_t work_spent = 0;
  std::vector<uint8_t> payload;
};

// ---------------------------------------------------------------------------
// Byte-level encoding helpers. All integers are little-endian; doubles are
// bit-cast to uint64. Strings and byte blobs are u32-length-prefixed;
// BigInt/Rational travel as decimal strings (exact, and validated on read
// by the existing parsers).

class SnapshotWriter {
 public:
  void U8(uint8_t value) { bytes_.push_back(value); }
  void U32(uint32_t value);
  void U64(uint64_t value);
  void I64(int64_t value) { U64(static_cast<uint64_t>(value)); }
  void Double(double value);
  void String(std::string_view value);
  void BigIntVal(const BigInt& value) { String(value.ToDecimalString()); }
  void RationalVal(const Rational& value);
  void RngState(const Rng& rng);
  void TupleVal(const std::vector<int32_t>& tuple);

  const std::vector<uint8_t>& bytes() const { return bytes_; }
  std::vector<uint8_t> TakeBytes() { return std::move(bytes_); }

 private:
  std::vector<uint8_t> bytes_;
};

// Reads values back in write order. Every method returns kDataLoss on a
// truncated buffer and kDataLoss/kInvalidArgument on malformed variable-
// length fields, so restoring from an adversarial (or bit-rotted but
// checksum-colliding) payload degrades to a typed error, never UB — the
// property fuzz/fuzz_parse_snapshot.cc hammers on.
class SnapshotReader {
 public:
  explicit SnapshotReader(std::vector<uint8_t> bytes)
      : bytes_(std::move(bytes)) {}

  Status U8(uint8_t* out);
  Status U32(uint32_t* out);
  Status U64(uint64_t* out);
  Status I64(int64_t* out);
  Status Double(double* out);
  Status String(std::string* out);
  Status BigIntVal(BigInt* out);
  Status RationalVal(Rational* out);
  Status RngState(Rng* out);
  Status TupleVal(std::vector<int32_t>* out);
  // Fails with kDataLoss unless every byte has been consumed.
  Status ExpectEnd() const;

  size_t remaining() const { return bytes_.size() - position_; }

 private:
  std::vector<uint8_t> bytes_;
  size_t position_ = 0;
};

// Incremental FNV-1a over the values an algorithm's result depends on;
// used both as the file checksum and as the run-parameter fingerprint.
class Fingerprint {
 public:
  Fingerprint& Mix(uint64_t value);
  Fingerprint& Mix(std::string_view value);
  Fingerprint& MixDouble(double value);
  // Exact: digests the normalized numerator/denominator decimal strings.
  Fingerprint& MixRational(const Rational& value);
  uint64_t value() const { return hash_; }

 private:
  uint64_t hash_ = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
};

// ---------------------------------------------------------------------------
// Container encode/decode and atomic file I/O.

// Serializes `data` into the container format (magic, version,
// fingerprint, kind, work counter, payload, trailing checksum).
std::vector<uint8_t> EncodeSnapshot(const SnapshotData& data);

// Decodes and validates a container. Typed failures:
//   kInvalidArgument — wrong magic (not a snapshot) or unsupported version;
//   kDataLoss        — truncated data, length fields pointing past the end,
//                      trailing garbage, or checksum mismatch.
StatusOr<SnapshotData> DecodeSnapshot(const uint8_t* data, size_t size);

// Writes atomically: the bytes go to "<path>.tmp.<pid>.<seq>" (unique
// per writer attempt, so concurrent writers — threads or processes —
// checkpointing to the same path cannot truncate each other's
// in-progress temp file), are fsync'd, the temp file is renamed over
// `path`, and the containing directory is fsync'd so the rename itself
// is durable. A crash at any instant leaves either the old snapshot or
// the new one — never a torn file.
Status WriteSnapshotFile(const std::string& path, const SnapshotData& data);

// Loads and validates `path`. kNotFound when the file does not exist
// (a fresh run, not an error for callers that probe); otherwise the
// DecodeSnapshot contract.
StatusOr<SnapshotData> ReadSnapshotFile(const std::string& path);

// ---------------------------------------------------------------------------
// Checkpointer: the per-run checkpoint/resume policy, attached to a
// RunContext (RunContext::SetCheckpointer) and claimed by the outermost
// checkpointable loop via CheckpointScope.

class Checkpointer {
 public:
  using Clock = std::chrono::steady_clock;

  // Checkpoints are written to `path` at most every `interval`, the first
  // one `interval` after construction — a run shorter than the interval
  // writes nothing. An interval of zero checkpoints at every safe point
  // (the deterministic setting the crash-recovery tests use).
  Checkpointer(std::string path, std::chrono::milliseconds interval);

  // Probes `path`: when a snapshot exists it becomes the resume state a
  // matching CheckpointScope will consume. A missing file is a fresh run
  // (OK); a corrupt or version-skewed file is the typed DecodeSnapshot
  // error so callers never silently restart from zero.
  Status LoadForResume();

  const std::string& path() const { return path_; }
  bool has_resume() const {
    MutexLock lock(&mu_);
    return resume_.has_value();
  }
  // Kind of the pending resume snapshot, empty when none.
  std::string resume_kind() const {
    MutexLock lock(&mu_);
    return resume_.has_value() ? resume_->kind : std::string();
  }
  // True once a scope consumed the resume state.
  bool resume_consumed() const {
    MutexLock lock(&mu_);
    return resume_consumed_;
  }
  // True while some CheckpointScope holds the claim (so any further scope
  // constructed on the same context would be inert).
  bool claimed() const {
    MutexLock lock(&mu_);
    return claimed_;
  }
  // Checkpoints written so far (tests and overhead accounting).
  uint64_t writes() const {
    MutexLock lock(&mu_);
    return writes_;
  }

 private:
  friend class CheckpointScope;

  std::string path_;          // immutable after construction
  Clock::duration interval_;  // immutable after construction

  // Guards the claim and all checkpoint/resume state, so concurrent
  // CheckpointScope construction (the coming parallel engine core, and
  // today's concurrency stress test) race-free elects exactly one active
  // scope per Checkpointer. Held across WriteSnapshotFile: one writer at
  // a time per checkpoint path, ranked just below the fault registry the
  // write's vfs fault sites take.
  mutable Mutex mu_{LockRank::kCheckpointer};
  std::optional<SnapshotData> resume_ QREL_GUARDED_BY(mu_);
  bool resume_consumed_ QREL_GUARDED_BY(mu_) = false;
  bool claimed_ QREL_GUARDED_BY(mu_) = false;
  std::optional<Clock::time_point> last_write_ QREL_GUARDED_BY(mu_);
  uint64_t writes_ QREL_GUARDED_BY(mu_) = 0;
};

// RAII claim on a RunContext's Checkpointer. Constructed by every
// checkpointable loop; active only for the outermost one (and only when a
// checkpointer is attached at all), inert otherwise — all methods on an
// inert scope are cheap no-ops.
class CheckpointScope {
 public:
  // `kind` identifies the algorithm + payload encoding; `fingerprint`
  // digests the parameters that must match for a resume to be sound.
  CheckpointScope(RunContext* ctx, std::string_view kind,
                  uint64_t fingerprint);
  ~CheckpointScope();

  CheckpointScope(const CheckpointScope&) = delete;
  CheckpointScope& operator=(const CheckpointScope&) = delete;

  // Whether a scope constructed on `ctx` right now would be active. Lets a
  // caller skip computing an expensive content fingerprint (e.g. hashing a
  // whole extensional database) for a scope that would be inert anyway —
  // in particular per-world fixpoints under a claimed world loop.
  static bool WouldClaim(const RunContext* ctx);

  bool active() const { return checkpointer_ != nullptr; }

  // If the checkpointer holds an unconsumed snapshot of this scope's kind,
  // consumes it: restores the RunContext work counter and hands back a
  // reader over the payload. nullopt when there is nothing to resume (or
  // the scope is inert). A kind match with a different fingerprint fails
  // with InvalidArgument: the snapshot belongs to a different run and
  // resuming — or silently discarding it — would both be wrong.
  Status TakeResume(std::optional<SnapshotReader>* reader);

  // Writes a checkpoint when the interval has elapsed (always, for a zero
  // interval). Also writes when the RunContext has a cancellation pending
  // or its work budget is already spent — the next Charge() ends the run,
  // so this is the last safe point and the final state is flushed instead
  // of losing everything since the previous interval write (the qrel_cli
  // SIGINT and server-drain paths rely on this). `fill` serializes the
  // loop state into the payload. Safe to call from tight loops: the
  // inert/not-due paths are a few compares and relaxed loads.
  Status MaybeCheckpoint(const std::function<void(SnapshotWriter&)>& fill);

  // Writes unconditionally (scope entry/exit, stratum boundaries).
  Status CheckpointNow(const std::function<void(SnapshotWriter&)>& fill);

 private:
  RunContext* ctx_ = nullptr;
  Checkpointer* checkpointer_ = nullptr;  // non-null iff this scope claimed
  std::string kind_;
  uint64_t fingerprint_ = 0;
};

}  // namespace qrel

#endif  // QREL_UTIL_SNAPSHOT_H_
