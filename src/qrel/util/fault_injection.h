// Deterministic fault injection for chaos testing.
//
// A *fault site* is a named point in the pipeline where a failure can be
// injected on demand: an I/O read, a parser step, an engine rung boundary,
// one iteration of a sampling loop or of the Datalog fixpoint. Sites are
// declared in place with QREL_FAULT_SITE("layer.component.step"); when no
// fault is armed the hit costs two relaxed atomic operations, so sites can
// live inside hot loops.
//
//   Status Grind(...) {
//     for (...) {
//       QREL_FAULT_SITE("engine.exact.enumerate");  // returns on injection
//       ...
//     }
//   }
//
// Tests (and qrel_cli --fault-inject=<site>:<n>) schedule failures through
// the process-wide FaultInjector registry: fail the Nth hit of one site,
// fail every known site once, inject a chosen StatusCode or a simulated
// std::bad_alloc. A site registers itself the first time control reaches
// it, so the chaos suite discovers the full site list by running a clean
// pass of the workload before arming anything (see tests/chaos_engine_test.cc
// and DESIGN.md "Fault injection and hardening").
//
// Thread-safety: arming, firing and inspection are all mutex-guarded
// except the per-hit fast path, which is lock-free. Faults are one-shot:
// a site disarms itself when it fires, so a faulted call can be retried
// without re-tripping.

#ifndef QREL_UTIL_FAULT_INJECTION_H_
#define QREL_UTIL_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "qrel/util/status.h"

namespace qrel {

// What an armed fault does when it fires.
enum class FaultKind {
  kStatus,    // Fire() returns the armed Status code
  kBadAlloc,  // Fire() throws std::bad_alloc (allocation-failure drill;
              // callers catch it at API boundaries, see engine::Run)
};

namespace fault_internal {
struct SiteState;
}  // namespace fault_internal

class FaultInjector {
 public:
  // The process-wide registry.
  static FaultInjector& Instance();

  // Schedules the site named `site` to fail on its `nth` hit from now
  // (1 = the very next hit). The site does not need to exist yet: arming
  // an unknown name creates the schedule and the site picks it up when it
  // first registers, which is what lets qrel_cli arm a fault before any
  // code has run.
  void Arm(std::string_view site, uint64_t nth,
           StatusCode code = StatusCode::kInternal,
           FaultKind kind = FaultKind::kStatus);

  // Arms every currently-registered site to fail on its next hit.
  void ArmEverySiteOnce(StatusCode code = StatusCode::kInternal);

  // Disarms everything and zeroes all hit/trigger counters.
  void Reset();

  // Names of all sites registered so far, in registration order. A site
  // registers the first time control reaches it.
  std::vector<std::string> SiteNames() const;

  // Hits since the last Reset() (0 for a never-hit or unknown site).
  uint64_t HitCount(std::string_view site) const;
  // Times the site actually fired an injected fault since the last Reset().
  uint64_t TriggeredCount(std::string_view site) const;

  // True while at least one fault is armed (the fast-path gate).
  bool AnyArmed() const {
    return armed_count_.load(std::memory_order_relaxed) > 0;
  }

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

 private:
  friend class FaultSite;
  FaultInjector() = default;

  fault_internal::SiteState* Register(const char* name);
  Status OnArmedHit(fault_internal::SiteState* state, uint64_t hit);

  std::atomic<int> armed_count_{0};
};

// One declared fault site; constructed as a function-local static by the
// QREL_FAULT_SITE macro so registration happens once, on first execution.
class FaultSite {
 public:
  explicit FaultSite(const char* name);

  // Records a hit and returns the injected Status if a fault is due here
  // (or throws std::bad_alloc for FaultKind::kBadAlloc). OK otherwise.
  Status Fire();

 private:
  fault_internal::SiteState* state_;
};

// Parses "<site>:<n>" (fail the nth hit, n >= 1) or "<site>" (shorthand
// for n = 1) and arms it on the process-wide injector. Returns
// InvalidArgument on a malformed spec. Backs qrel_cli --fault-inject.
Status ArmFaultFromSpec(std::string_view spec);

// Evaluates to the Status of one hit of the named site. `site_name` must
// be a string literal.
#define QREL_FAULT_HIT(site_name)                    \
  ([]() -> ::qrel::Status {                          \
    static ::qrel::FaultSite qrel_fault_site{site_name}; \
    return qrel_fault_site.Fire();                   \
  }())

// Declares a fault site and returns the injected error from the enclosing
// function (which must return Status or StatusOr<T>) when a fault fires.
#define QREL_FAULT_SITE(site_name) QREL_RETURN_IF_ERROR(QREL_FAULT_HIT(site_name))

}  // namespace qrel

#endif  // QREL_UTIL_FAULT_INJECTION_H_
