// Resource governance for long-running computations.
//
// The paper's central tension is that exact reliability is FP^#P-hard
// (Theorem 4.2) while approximation is tractable (Theorems 5.2/5.4): any
// path the engine picks can still blow past a caller's latency or work
// envelope on adversarial inputs. A RunContext carries the caller's
// envelope — a wall-clock deadline, a work budget, and a cooperative
// cancellation flag — into every long-running loop (world enumeration,
// Monte Carlo sampling, grounding, Datalog fixpoints), which charge their
// work to it and stop early with a typed Status when the envelope is
// exceeded.
//
// Work is counted in abstract *units*; by convention one unit is one
// enumerated world, one Monte Carlo sample, one grounded clause, or one
// Datalog rule firing — the quantities whose counts the paper's complexity
// bounds are stated in.
//
// Usage:
//
//   RunContext ctx = RunContext::WithDeadline(std::chrono::milliseconds(50));
//   ...
//   for (...) {                           // some long-running loop
//     QREL_RETURN_IF_ERROR(ctx.Charge()); // 1 unit of work
//     ...
//   }
//
// All governed entry points accept `RunContext*` with nullptr meaning
// "ungoverned" (Charge on nullptr is a no-op by convention at call sites;
// helpers below make that cheap).
//
// Thread-safety: RequestCancellation() and the accessors are safe to call
// from any thread (the engine runs single-threaded, the cancel flag and
// the spent-work counter are atomic so a controller thread can observe and
// interrupt a run in flight). Charge() itself must only be called from the
// thread running the computation.

#ifndef QREL_UTIL_RUN_CONTEXT_H_
#define QREL_UTIL_RUN_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <optional>

#include "qrel/util/status.h"

namespace qrel {

class Checkpointer;  // util/snapshot.h

class RunContext {
 public:
  using Clock = std::chrono::steady_clock;

  // Ungoverned: never trips, only tracks spent work and cancellation.
  RunContext() = default;

  // Movable (for the factory functions below) but not copyable: a
  // RunContext is shared by pointer and must have one identity. Moving a
  // context that another thread is observing is a caller error.
  RunContext(RunContext&& other) noexcept
      : deadline_(other.deadline_),
        max_work_(other.max_work_),
        cancel_requested_(other.cancel_requested_.load()),
        work_spent_(other.work_spent_.load()),
        units_since_clock_check_(other.units_since_clock_check_),
        checkpointer_(other.checkpointer_) {}
  RunContext& operator=(RunContext&& other) noexcept {
    deadline_ = other.deadline_;
    max_work_ = other.max_work_;
    cancel_requested_.store(other.cancel_requested_.load());
    work_spent_.store(other.work_spent_.load());
    units_since_clock_check_ = other.units_since_clock_check_;
    checkpointer_ = other.checkpointer_;
    return *this;
  }
  RunContext(const RunContext&) = delete;
  RunContext& operator=(const RunContext&) = delete;

  static RunContext Unlimited() { return RunContext(); }
  static RunContext WithDeadline(Clock::duration timeout) {
    RunContext ctx;
    ctx.SetDeadline(timeout);
    return ctx;
  }
  static RunContext WithWorkBudget(uint64_t max_work) {
    RunContext ctx;
    ctx.SetWorkBudget(max_work);
    return ctx;
  }

  // Sets / replaces the deadline to `timeout` from now.
  void SetDeadline(Clock::duration timeout) {
    deadline_ = Clock::now() + timeout;
  }
  // Sets / replaces the total work budget (spent work counts against it
  // retroactively: a budget below work_spent() trips on the next Charge).
  void SetWorkBudget(uint64_t max_work) { max_work_ = max_work; }

  bool has_deadline() const { return deadline_.has_value(); }
  bool has_work_budget() const { return max_work_.has_value(); }
  std::optional<uint64_t> work_budget() const { return max_work_; }

  // Requests cooperative cancellation: the next Charge()/Check() returns
  // kCancelled. Safe from any thread. Cancellation is one-way.
  void RequestCancellation() {
    cancel_requested_.store(true, std::memory_order_release);
  }
  bool cancellation_requested() const {
    return cancel_requested_.load(std::memory_order_acquire);
  }

  // Total units charged so far. Safe to read from any thread.
  uint64_t work_spent() const {
    return work_spent_.load(std::memory_order_relaxed);
  }

  // Overwrites the spent-work counter. Only for deterministic resume
  // (util/snapshot.h): a restored checkpoint carries the counter of the
  // interrupted run, so budget accounting and reports continue where they
  // left off instead of double- or under-counting the replayed prefix.
  void SetWorkSpent(uint64_t spent) {
    work_spent_.store(spent, std::memory_order_relaxed);
  }

  // Crash-safe checkpointing policy for this run (non-owning, nullable;
  // see util/snapshot.h). Algorithms claim it through CheckpointScope;
  // the context itself never dereferences it.
  void SetCheckpointer(Checkpointer* checkpointer) {
    checkpointer_ = checkpointer;
  }
  Checkpointer* checkpointer() const { return checkpointer_; }

  // Work budget still available (max uint64 when no budget is set).
  uint64_t work_remaining() const;

  // Charges `units` of work, then checks cancellation, the work budget and
  // (amortized) the deadline. Returns kCancelled, kResourceExhausted or
  // kDeadlineExceeded on a tripped envelope, OK otherwise. Once tripped,
  // every further call keeps returning the same code (the work counter
  // still advances, so reports can show the true total).
  Status Charge(uint64_t units = 1);

  // Checks the envelope without charging work. Always consults the clock.
  // Use at entry to a governed computation to fail fast on an already
  // expired/cancelled/exhausted context.
  Status Check() const;

 private:
  Status Trip(StatusCode code) const;

  std::optional<Clock::time_point> deadline_;
  std::optional<uint64_t> max_work_;
  std::atomic<bool> cancel_requested_{false};
  std::atomic<uint64_t> work_spent_{0};
  // Units charged since the deadline was last consulted; the clock is read
  // once per kClockCheckStride units so tight loops stay cheap.
  uint64_t units_since_clock_check_ = 0;
  static constexpr uint64_t kClockCheckStride = 64;
  Checkpointer* checkpointer_ = nullptr;
};

// Charge/Check helpers for the `RunContext* ctx` (nullable) convention.
inline Status ChargeWork(RunContext* ctx, uint64_t units = 1) {
  if (ctx == nullptr) {
    return Status::Ok();
  }
  return ctx->Charge(units);
}
inline Status CheckRunContext(const RunContext* ctx) {
  if (ctx == nullptr) {
    return Status::Ok();
  }
  return ctx->Check();
}

}  // namespace qrel

#endif  // QREL_UTIL_RUN_CONTEXT_H_
