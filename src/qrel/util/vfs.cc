#include "qrel/util/vfs.h"

#include <dirent.h>
#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>

#include "qrel/util/fault_injection.h"

namespace qrel {

namespace {

Status ErrnoStatus(const char* op, const std::string& path, int err) {
  std::string message =
      std::string(op) + " " + path + ": " + ErrnoString(err);
  switch (err) {
    case ENOENT:
      return Status::NotFound(std::move(message));
    case ENOSPC:
    case EDQUOT:
      return Status::ResourceExhausted(std::move(message));
    default:
      return Status::Internal(std::move(message));
  }
}

// The crash-after-<site> trigger: the syscall already succeeded, now die
// exactly here — no destructors, no atexit, no buffered-stream flush —
// the closest a test can get to yanking the power cord at a chosen
// syscall boundary.
[[noreturn]] void CrashNow() {
  ::kill(::getpid(), SIGKILL);
  // SIGKILL cannot be delayed by this process, but be explicit about the
  // contract anyway.
  ::_exit(137);
}

class PosixVfs : public Vfs {
 public:
  StatusOr<int> OpenWrite(const std::string& path) override {
    int fd;
    do {
      fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    } while (fd < 0 && errno == EINTR);
    if (fd < 0) {
      return ErrnoStatus("open", path, errno);
    }
    return fd;
  }

  StatusOr<size_t> Write(int fd, const uint8_t* data, size_t size) override {
    ssize_t n;
    do {
      n = ::write(fd, data, size);
    } while (n < 0 && errno == EINTR);
    if (n < 0) {
      return ErrnoStatus("write", "fd", errno);
    }
    return static_cast<size_t>(n);
  }

  Status Fsync(int fd) override {
    int rc;
    do {
      rc = ::fsync(fd);
    } while (rc < 0 && errno == EINTR);
    if (rc < 0) {
      return ErrnoStatus("fsync", "fd", errno);
    }
    return Status::Ok();
  }

  Status Close(int fd) override {
    // No EINTR retry: on Linux the descriptor is gone either way, and
    // retrying risks closing an unrelated fd opened by another thread.
    if (::close(fd) < 0) {
      return ErrnoStatus("close", "fd", errno);
    }
    return Status::Ok();
  }

  Status Rename(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) < 0) {
      return ErrnoStatus("rename", from + " -> " + to, errno);
    }
    return Status::Ok();
  }

  Status Unlink(const std::string& path) override {
    if (::unlink(path.c_str()) < 0) {
      return ErrnoStatus("unlink", path, errno);
    }
    return Status::Ok();
  }

  Status FsyncDir(const std::string& dir) override {
    int fd;
    do {
      fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    } while (fd < 0 && errno == EINTR);
    if (fd < 0) {
      return ErrnoStatus("open directory", dir, errno);
    }
    int rc;
    do {
      rc = ::fsync(fd);
    } while (rc < 0 && errno == EINTR);
    int saved = errno;
    ::close(fd);
    if (rc < 0) {
      return ErrnoStatus("fsync directory", dir, saved);
    }
    return Status::Ok();
  }

  StatusOr<std::vector<uint8_t>> ReadFileBytes(const std::string& path,
                                               size_t max_size) override {
    int fd;
    do {
      fd = ::open(path.c_str(), O_RDONLY);
    } while (fd < 0 && errno == EINTR);
    if (fd < 0) {
      return ErrnoStatus("open", path, errno);
    }
    std::vector<uint8_t> bytes;
    uint8_t chunk[65536];
    for (;;) {
      ssize_t n;
      do {
        n = ::read(fd, chunk, sizeof(chunk));
      } while (n < 0 && errno == EINTR);
      if (n < 0) {
        int saved = errno;
        ::close(fd);
        return ErrnoStatus("read", path, saved);
      }
      if (n == 0) {
        break;
      }
      if (bytes.size() + static_cast<size_t>(n) > max_size) {
        ::close(fd);
        return Status::DataLoss("file " + path + " exceeds " +
                                std::to_string(max_size) +
                                " bytes, implausibly large");
      }
      bytes.insert(bytes.end(), chunk, chunk + n);
    }
    ::close(fd);
    return bytes;
  }

  StatusOr<std::vector<std::string>> ListDir(const std::string& dir) override {
    DIR* handle = ::opendir(dir.c_str());
    if (handle == nullptr) {
      return ErrnoStatus("opendir", dir, errno);
    }
    std::vector<std::string> names;
    for (;;) {
      errno = 0;
      struct dirent* entry = ::readdir(handle);
      if (entry == nullptr) {
        int saved = errno;
        ::closedir(handle);
        if (saved != 0) {
          return ErrnoStatus("readdir", dir, saved);
        }
        return names;
      }
      if (std::strcmp(entry->d_name, ".") == 0 ||
          std::strcmp(entry->d_name, "..") == 0) {
        continue;
      }
      names.emplace_back(entry->d_name);
    }
  }
};

// Fires a crash-after site: the real syscall succeeded, an armed fault of
// any StatusCode means "kill the process at this boundary".
#define QREL_VFS_CRASH_POINT(site_name)    \
  do {                                     \
    if (!QREL_FAULT_HIT(site_name).ok()) { \
      CrashNow();                          \
    }                                      \
  } while (0)

// The process-wide override is a single atomic pointer rather than a
// mutex-guarded slot: readers (every vfs call) do one acquire load, and
// ScopedVfsOverride's exchange/store pair makes install/restore safe
// against concurrent readers. Nothing here for the thread-safety
// capability analysis to check — there is no lock to hold.
std::atomic<Vfs*> g_vfs_override{nullptr};

}  // namespace

Vfs& RawPosixVfs() {
  static PosixVfs* posix = new PosixVfs;
  return *posix;
}

StatusOr<int> FaultInjectingVfs::OpenWrite(const std::string& path) {
  QREL_FAULT_SITE("vfs.open_write");
  StatusOr<int> fd = base_->OpenWrite(path);
  if (fd.ok()) {
    QREL_VFS_CRASH_POINT("crash-after-vfs.open_write");
  }
  return fd;
}

StatusOr<size_t> FaultInjectingVfs::Write(int fd, const uint8_t* data,
                                          size_t size) {
  QREL_FAULT_SITE("vfs.write");
  size_t attempt = size;
  if (!QREL_FAULT_HIT("vfs.write.short").ok() && size > 1) {
    // Transfer only half the bytes: a legal short write that a correct
    // caller must absorb by looping.
    attempt = size / 2;
  }
  StatusOr<size_t> written = base_->Write(fd, data, attempt);
  if (written.ok()) {
    QREL_VFS_CRASH_POINT("crash-after-vfs.write");
  }
  return written;
}

Status FaultInjectingVfs::Fsync(int fd) {
  QREL_FAULT_SITE("vfs.fsync");
  QREL_RETURN_IF_ERROR(base_->Fsync(fd));
  QREL_VFS_CRASH_POINT("crash-after-vfs.fsync");
  return Status::Ok();
}

Status FaultInjectingVfs::Close(int fd) {
  // The injected close failure still releases the descriptor first:
  // "close failed" never means "fd leaked", matching the POSIX contract
  // callers rely on.
  Status injected = QREL_FAULT_HIT("vfs.close");
  Status closed = base_->Close(fd);
  QREL_RETURN_IF_ERROR(injected);
  QREL_RETURN_IF_ERROR(closed);
  QREL_VFS_CRASH_POINT("crash-after-vfs.close");
  return Status::Ok();
}

Status FaultInjectingVfs::Rename(const std::string& from,
                                 const std::string& to) {
  QREL_FAULT_SITE("vfs.rename");
  QREL_RETURN_IF_ERROR(base_->Rename(from, to));
  QREL_VFS_CRASH_POINT("crash-after-vfs.rename");
  return Status::Ok();
}

Status FaultInjectingVfs::Unlink(const std::string& path) {
  QREL_FAULT_SITE("vfs.unlink");
  QREL_RETURN_IF_ERROR(base_->Unlink(path));
  QREL_VFS_CRASH_POINT("crash-after-vfs.unlink");
  return Status::Ok();
}

Status FaultInjectingVfs::FsyncDir(const std::string& dir) {
  QREL_FAULT_SITE("vfs.fsync_dir");
  QREL_RETURN_IF_ERROR(base_->FsyncDir(dir));
  QREL_VFS_CRASH_POINT("crash-after-vfs.fsync_dir");
  return Status::Ok();
}

StatusOr<std::vector<uint8_t>> FaultInjectingVfs::ReadFileBytes(
    const std::string& path, size_t max_size) {
  QREL_FAULT_SITE("vfs.read");
  return base_->ReadFileBytes(path, max_size);
}

StatusOr<std::vector<std::string>> FaultInjectingVfs::ListDir(
    const std::string& dir) {
  QREL_FAULT_SITE("vfs.list");
  return base_->ListDir(dir);
}

Vfs& ProcessVfs() {
  Vfs* override_vfs = g_vfs_override.load(std::memory_order_acquire);
  if (override_vfs != nullptr) {
    return *override_vfs;
  }
  static FaultInjectingVfs* process = new FaultInjectingVfs(&RawPosixVfs());
  return *process;
}

ScopedVfsOverride::ScopedVfsOverride(Vfs* vfs)
    : previous_(g_vfs_override.exchange(vfs, std::memory_order_acq_rel)) {}

ScopedVfsOverride::~ScopedVfsOverride() {
  g_vfs_override.store(previous_, std::memory_order_release);
}

}  // namespace qrel
