#include "qrel/util/mutex.h"

#if QREL_MUTEX_RANK_CHECKS
#include <cstdio>
#include <cstdlib>
#include <iterator>
#include <vector>
#endif

namespace qrel {

#if QREL_MUTEX_RANK_CHECKS
namespace mutex_internal {
namespace {

struct HeldLock {
  const void* mu;
  LockRank rank;
};

// The calling thread's acquisition stack, outermost first. Depth in
// practice is <= 3 (manifest -> catalog -> fault registry), so a flat
// vector scan beats any fancier structure.
thread_local std::vector<HeldLock> t_held;

[[noreturn]] void RankViolation(LockRank acquiring, LockRank held) {
  std::fprintf(
      stderr,
      "qrel: lock-rank violation: acquiring '%s' (rank %d) while holding "
      "'%s' (rank %d); acquisition order must be strictly increasing — "
      "see src/qrel/util/lock_ranks.h for the registry\n",
      LockRankName(acquiring), static_cast<int>(acquiring),
      LockRankName(held), static_cast<int>(held));
  std::fflush(stderr);
  std::abort();
}

}  // namespace

void RankCheckAcquire(const void* mu, LockRank rank) {
  for (const HeldLock& held : t_held) {
    // >= also catches self-recursion and two same-rank objects held
    // together (e.g. two jobs' latches), both of which the registry
    // forbids.
    if (static_cast<int>(held.rank) >= static_cast<int>(rank)) {
      RankViolation(rank, held.rank);
    }
  }
  t_held.push_back(HeldLock{mu, rank});
}

void RankCheckRelease(const void* mu) {
  for (auto it = t_held.rbegin(); it != t_held.rend(); ++it) {
    if (it->mu == mu) {
      t_held.erase(std::next(it).base());
      return;
    }
  }
  std::fprintf(stderr,
               "qrel: lock-rank bookkeeping: released a mutex this thread "
               "does not hold\n");
  std::fflush(stderr);
  std::abort();
}

int HeldLockCount() { return static_cast<int>(t_held.size()); }

}  // namespace mutex_internal
#endif  // QREL_MUTEX_RANK_CHECKS

void CondVar::Wait(Mutex& mu) {
  QREL_MUTEX_RANK_RELEASE(&mu);
  // Adopt the already-held std::mutex for the duration of the wait, then
  // release() so the caller's MutexLock keeps ownership afterwards.
  std::unique_lock<std::mutex> lk(mu.mu_, std::adopt_lock);
  cv_.wait(lk);
  lk.release();
  QREL_MUTEX_RANK_ACQUIRE(&mu, mu.rank());
}

std::cv_status CondVar::WaitUntil(
    Mutex& mu, std::chrono::steady_clock::time_point deadline) {
  QREL_MUTEX_RANK_RELEASE(&mu);
  std::unique_lock<std::mutex> lk(mu.mu_, std::adopt_lock);
  std::cv_status status = cv_.wait_until(lk, deadline);
  lk.release();
  QREL_MUTEX_RANK_ACQUIRE(&mu, mu.rank());
  return status;
}

}  // namespace qrel
