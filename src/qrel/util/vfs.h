// Injectable filesystem: every durable byte goes through here.
//
// The snapshot container (util/snapshot.h), the catalog loader, the
// server's checkpoint/journal files and the durable catalog manifest
// (net/manifest.h) all perform their I/O through the process Vfs instead
// of calling ::open / ::write / ::rename directly. That buys two things:
//
//   1. *Fault drills.* The default process Vfs wraps the real POSIX
//      implementation in a fault-injecting layer driven by the existing
//      util/fault_injection site registry, so tests (and
//      --fault-inject=...) can make any individual syscall fail with a
//      typed Status — ENOSPC (kResourceExhausted), EIO (kInternal), a
//      short write, a failed fsync, a torn rename — without touching the
//      real filesystem.
//
//   2. *Crash points.* Each write-path operation also carries a
//      crash-after-<site> trigger that SIGKILLs the process at the exact
//      syscall boundary — after the real operation succeeded, before any
//      caller cleanup runs. This is how crash_restart_test proves the
//      atomic-rename protocol: kill -9 between any two syscalls of a
//      checkpoint write, restart, and the previous state must still be
//      intact.
//
// Error-injection sites (fire *instead of* the syscall; the StatusCode is
// chosen at arm time, default kInternal ~ EIO, kResourceExhausted ~
// ENOSPC):
//
//   vfs.open_write   vfs.write    vfs.fsync   vfs.close   vfs.rename
//   vfs.unlink       vfs.fsync_dir   vfs.read    vfs.list
//
// plus vfs.write.short, which makes one Write() transfer only half its
// bytes and return the short count (success), exercising callers' write
// loops.
//
// Crash sites (fire *after* the syscall succeeded; any armed StatusCode
// means "crash here"):
//
//   crash-after-vfs.open_write   crash-after-vfs.write
//   crash-after-vfs.fsync        crash-after-vfs.close
//   crash-after-vfs.rename       crash-after-vfs.fsync_dir
//   crash-after-vfs.unlink
//
// When no fault is armed a site costs two relaxed atomic loads, so the
// wrapper is always on: file I/O is never a hot path here and an always-on
// wrapper means release binaries can run the same crash drills as tests.

#ifndef QREL_UTIL_VFS_H_
#define QREL_UTIL_VFS_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "qrel/util/status.h"

namespace qrel {

// The filesystem operations the durability layer needs. Write-path
// methods mirror the atomic-rename protocol of util/snapshot.cc: open a
// temp file, write, fsync, close, rename over the target, fsync the
// parent directory.
class Vfs {
 public:
  virtual ~Vfs() = default;

  // Opens `path` for writing (O_WRONLY | O_CREAT | O_TRUNC, 0644) and
  // returns the file descriptor.
  virtual StatusOr<int> OpenWrite(const std::string& path) = 0;

  // Writes up to `size` bytes; may transfer fewer (a short write). Returns
  // the number of bytes actually written, which is at least 1 when
  // `size > 0`. Callers must loop.
  virtual StatusOr<size_t> Write(int fd, const uint8_t* data,
                                 size_t size) = 0;

  virtual Status Fsync(int fd) = 0;

  // Closes `fd`. On failure the descriptor is still released (POSIX
  // leaves it unspecified; Linux always closes), so callers never retry.
  virtual Status Close(int fd) = 0;

  virtual Status Rename(const std::string& from, const std::string& to) = 0;

  // Removes `path`. Removing a file that does not exist is kNotFound.
  virtual Status Unlink(const std::string& path) = 0;

  // Makes a completed rename in `dir` durable (open O_DIRECTORY + fsync).
  virtual Status FsyncDir(const std::string& dir) = 0;

  // Reads the whole file. A file over `max_size` bytes is kDataLoss (the
  // caller declared anything bigger implausible); a missing file is
  // kNotFound.
  virtual StatusOr<std::vector<uint8_t>> ReadFileBytes(
      const std::string& path, size_t max_size) = 0;

  // Names of the entries in `dir` (excluding "." and ".."), in no
  // particular order. A missing directory is kNotFound.
  virtual StatusOr<std::vector<std::string>> ListDir(
      const std::string& dir) = 0;
};

// The raw POSIX implementation, no fault sites. Shared and stateless.
Vfs& RawPosixVfs();

// Wraps any Vfs with the fault-injection and crash sites documented
// above. Public so tests can wrap a mock; production code uses
// ProcessVfs().
class FaultInjectingVfs : public Vfs {
 public:
  explicit FaultInjectingVfs(Vfs* base) : base_(base) {}

  StatusOr<int> OpenWrite(const std::string& path) override;
  StatusOr<size_t> Write(int fd, const uint8_t* data, size_t size) override;
  Status Fsync(int fd) override;
  Status Close(int fd) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status Unlink(const std::string& path) override;
  Status FsyncDir(const std::string& dir) override;
  StatusOr<std::vector<uint8_t>> ReadFileBytes(const std::string& path,
                                               size_t max_size) override;
  StatusOr<std::vector<std::string>> ListDir(const std::string& dir) override;

 private:
  Vfs* base_;
};

// The Vfs all durability code routes through: a FaultInjectingVfs over
// RawPosixVfs unless a ScopedVfsOverride is active.
Vfs& ProcessVfs();

// Routes ProcessVfs() to `vfs` for the lifetime of this object (tests
// installing counting or failing mocks). Not recursive-safe across
// threads: intended for single-threaded test setup.
class ScopedVfsOverride {
 public:
  explicit ScopedVfsOverride(Vfs* vfs);
  ~ScopedVfsOverride();

  ScopedVfsOverride(const ScopedVfsOverride&) = delete;
  ScopedVfsOverride& operator=(const ScopedVfsOverride&) = delete;

 private:
  Vfs* previous_;
};

}  // namespace qrel

#endif  // QREL_UTIL_VFS_H_
