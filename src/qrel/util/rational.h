// Exact rational arithmetic on BigInt.
//
// All probabilities in an unreliable database are rationals (the paper's
// complexity model assumes rational error probabilities in a standard
// encoding); the exact reliability algorithms keep them exact end-to-end.
//
// Invariant: the denominator is positive, and numerator/denominator are
// coprime; zero is 0/1.

#ifndef QREL_UTIL_RATIONAL_H_
#define QREL_UTIL_RATIONAL_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "qrel/util/bigint.h"
#include "qrel/util/status.h"

namespace qrel {

class Rational {
 public:
  // Zero.
  Rational() : numerator_(0), denominator_(1) {}
  // NOLINTNEXTLINE(google-explicit-constructor): integer literals should
  // convert implicitly, mirroring built-in numeric behaviour.
  Rational(int64_t value) : numerator_(value), denominator_(1) {}
  // numerator/denominator, normalized. Aborts if denominator is zero.
  Rational(BigInt numerator, BigInt denominator);
  Rational(int64_t numerator, int64_t denominator)
      : Rational(BigInt(numerator), BigInt(denominator)) {}

  // Parses "p", "p/q", or decimal notation "0.125" (exact: 125/1000
  // normalized). Fails on malformed input or zero denominator.
  static StatusOr<Rational> Parse(std::string_view text);

  static Rational Zero() { return Rational(); }
  static Rational One() { return Rational(1); }
  // 1/2, the probability used by both hardness reductions in the paper.
  static Rational Half() { return Rational(1, 2); }

  const BigInt& numerator() const { return numerator_; }
  const BigInt& denominator() const { return denominator_; }

  bool IsZero() const { return numerator_.IsZero(); }
  bool IsOne() const { return numerator_.IsOne() && denominator_.IsOne(); }
  int Sign() const { return numerator_.Sign(); }
  // Whether the value lies in the closed interval [0, 1].
  bool IsProbability() const;

  Rational operator+(const Rational& other) const;
  Rational operator-(const Rational& other) const;
  Rational operator*(const Rational& other) const;
  // Aborts on division by zero.
  Rational operator/(const Rational& other) const;
  Rational operator-() const;
  Rational& operator+=(const Rational& other) { return *this = *this + other; }
  Rational& operator-=(const Rational& other) { return *this = *this - other; }
  Rational& operator*=(const Rational& other) { return *this = *this * other; }
  Rational& operator/=(const Rational& other) { return *this = *this / other; }

  // 1 - *this; ubiquitous for complementary probabilities.
  Rational Complement() const { return Rational(1) - *this; }

  int Compare(const Rational& other) const;
  bool operator==(const Rational& other) const { return Compare(other) == 0; }
  bool operator!=(const Rational& other) const { return Compare(other) != 0; }
  bool operator<(const Rational& other) const { return Compare(other) < 0; }
  bool operator<=(const Rational& other) const { return Compare(other) <= 0; }
  bool operator>(const Rational& other) const { return Compare(other) > 0; }
  bool operator>=(const Rational& other) const { return Compare(other) >= 0; }

  // "p" when the denominator is 1, otherwise "p/q".
  std::string ToString() const;
  double ToDouble() const;

 private:
  void Normalize();

  BigInt numerator_;
  BigInt denominator_;
};

}  // namespace qrel

#endif  // QREL_UTIL_RATIONAL_H_
