#include "qrel/util/bigint.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

#include "qrel/util/check.h"

namespace qrel {

namespace {

constexpr uint64_t kLimbBase = uint64_t{1} << 32;

}  // namespace

BigInt::BigInt(int64_t value) {
  if (value == 0) {
    return;
  }
  uint64_t magnitude;
  if (value < 0) {
    negative_ = true;
    // Avoid UB on INT64_MIN: negate in unsigned arithmetic.
    magnitude = ~static_cast<uint64_t>(value) + 1;
  } else {
    magnitude = static_cast<uint64_t>(value);
  }
  limbs_.push_back(static_cast<uint32_t>(magnitude & 0xffffffffu));
  if (magnitude >> 32) {
    limbs_.push_back(static_cast<uint32_t>(magnitude >> 32));
  }
}

BigInt BigInt::FromUint64(uint64_t value) {
  BigInt result;
  if (value == 0) {
    return result;
  }
  result.limbs_.push_back(static_cast<uint32_t>(value & 0xffffffffu));
  if (value >> 32) {
    result.limbs_.push_back(static_cast<uint32_t>(value >> 32));
  }
  return result;
}

StatusOr<BigInt> BigInt::FromDecimalString(std::string_view text) {
  if (text.empty()) {
    return Status::InvalidArgument("empty integer literal");
  }
  bool negative = false;
  size_t pos = 0;
  if (text[0] == '+' || text[0] == '-') {
    negative = text[0] == '-';
    pos = 1;
  }
  if (pos == text.size()) {
    return Status::InvalidArgument("integer literal has no digits");
  }
  BigInt result;
  for (; pos < text.size(); ++pos) {
    char c = text[pos];
    if (c < '0' || c > '9') {
      return Status::InvalidArgument(std::string("invalid digit '") + c +
                                     "' in integer literal");
    }
    // result = result * 10 + digit, with inlined small-scalar ops.
    uint64_t carry = static_cast<uint64_t>(c - '0');
    for (size_t i = 0; i < result.limbs_.size(); ++i) {
      uint64_t value = static_cast<uint64_t>(result.limbs_[i]) * 10 + carry;
      result.limbs_[i] = static_cast<uint32_t>(value & 0xffffffffu);
      carry = value >> 32;
    }
    if (carry != 0) {
      result.limbs_.push_back(static_cast<uint32_t>(carry));
    }
  }
  TrimMag(&result.limbs_);
  result.negative_ = negative && !result.limbs_.empty();
  return result;
}

BigInt BigInt::TwoPow(uint32_t exponent) {
  BigInt result;
  result.limbs_.assign(exponent / 32 + 1, 0);
  result.limbs_.back() = uint32_t{1} << (exponent % 32);
  return result;
}

size_t BigInt::BitLength() const {
  if (limbs_.empty()) {
    return 0;
  }
  return (limbs_.size() - 1) * 32 +
         (32 - static_cast<size_t>(std::countl_zero(limbs_.back())));
}

bool BigInt::TestBit(size_t index) const {
  size_t limb = index / 32;
  if (limb >= limbs_.size()) {
    return false;
  }
  return (limbs_[limb] >> (index % 32)) & 1u;
}

BigInt BigInt::Abs() const {
  BigInt result = *this;
  result.negative_ = false;
  return result;
}

BigInt BigInt::Negated() const {
  BigInt result = *this;
  if (!result.limbs_.empty()) {
    result.negative_ = !result.negative_;
  }
  return result;
}

int BigInt::CompareMag(const std::vector<uint32_t>& a,
                       const std::vector<uint32_t>& b) {
  if (a.size() != b.size()) {
    return a.size() < b.size() ? -1 : 1;
  }
  for (size_t i = a.size(); i-- > 0;) {
    if (a[i] != b[i]) {
      return a[i] < b[i] ? -1 : 1;
    }
  }
  return 0;
}

int BigInt::Compare(const BigInt& other) const {
  if (negative_ != other.negative_) {
    return negative_ ? -1 : 1;
  }
  int mag = CompareMag(limbs_, other.limbs_);
  return negative_ ? -mag : mag;
}

void BigInt::TrimMag(std::vector<uint32_t>* mag) {
  while (!mag->empty() && mag->back() == 0) {
    mag->pop_back();
  }
}

void BigInt::Canonicalize() {
  TrimMag(&limbs_);
  if (limbs_.empty()) {
    negative_ = false;
  }
}

std::vector<uint32_t> BigInt::AddMag(const std::vector<uint32_t>& a,
                                     const std::vector<uint32_t>& b) {
  const std::vector<uint32_t>& longer = a.size() >= b.size() ? a : b;
  const std::vector<uint32_t>& shorter = a.size() >= b.size() ? b : a;
  std::vector<uint32_t> result;
  result.reserve(longer.size() + 1);
  uint64_t carry = 0;
  for (size_t i = 0; i < longer.size(); ++i) {
    uint64_t sum = carry + longer[i] + (i < shorter.size() ? shorter[i] : 0u);
    result.push_back(static_cast<uint32_t>(sum & 0xffffffffu));
    carry = sum >> 32;
  }
  if (carry != 0) {
    result.push_back(static_cast<uint32_t>(carry));
  }
  return result;
}

std::vector<uint32_t> BigInt::SubMag(const std::vector<uint32_t>& a,
                                     const std::vector<uint32_t>& b) {
  QREL_CHECK_GE(CompareMag(a, b), 0);
  std::vector<uint32_t> result;
  result.reserve(a.size());
  int64_t borrow = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    int64_t diff = static_cast<int64_t>(a[i]) -
                   (i < b.size() ? static_cast<int64_t>(b[i]) : 0) - borrow;
    if (diff < 0) {
      diff += static_cast<int64_t>(kLimbBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    result.push_back(static_cast<uint32_t>(diff));
  }
  QREL_CHECK_EQ(borrow, 0);
  TrimMag(&result);
  return result;
}

std::vector<uint32_t> BigInt::MulMag(const std::vector<uint32_t>& a,
                                     const std::vector<uint32_t>& b) {
  if (a.empty() || b.empty()) {
    return {};
  }
  std::vector<uint32_t> result(a.size() + b.size(), 0);
  for (size_t i = 0; i < a.size(); ++i) {
    uint64_t carry = 0;
    uint64_t ai = a[i];
    for (size_t j = 0; j < b.size(); ++j) {
      uint64_t value = ai * b[j] + result[i + j] + carry;
      result[i + j] = static_cast<uint32_t>(value & 0xffffffffu);
      carry = value >> 32;
    }
    size_t k = i + b.size();
    while (carry != 0) {
      uint64_t value = result[k] + carry;
      result[k] = static_cast<uint32_t>(value & 0xffffffffu);
      carry = value >> 32;
      ++k;
    }
  }
  TrimMag(&result);
  return result;
}

// Knuth TAOCP vol. 2, algorithm 4.3.1 D, specialized to 32-bit limbs with
// 64-bit intermediates.
void BigInt::DivModMag(const std::vector<uint32_t>& u_in,
                       const std::vector<uint32_t>& v_in,
                       std::vector<uint32_t>* quotient,
                       std::vector<uint32_t>* remainder) {
  QREL_CHECK(!v_in.empty());
  quotient->clear();
  remainder->clear();
  if (CompareMag(u_in, v_in) < 0) {
    *remainder = u_in;
    return;
  }
  if (v_in.size() == 1) {
    // Short division by a single limb.
    uint64_t divisor = v_in[0];
    quotient->assign(u_in.size(), 0);
    uint64_t rem = 0;
    for (size_t i = u_in.size(); i-- > 0;) {
      uint64_t cur = (rem << 32) | u_in[i];
      (*quotient)[i] = static_cast<uint32_t>(cur / divisor);
      rem = cur % divisor;
    }
    TrimMag(quotient);
    if (rem != 0) {
      remainder->push_back(static_cast<uint32_t>(rem));
    }
    return;
  }

  const size_t n = v_in.size();
  const size_t m = u_in.size() - n;

  // D1: normalize so the divisor's top limb has its high bit set.
  const int shift = std::countl_zero(v_in.back());
  std::vector<uint32_t> v(n);
  for (size_t i = n; i-- > 0;) {
    uint32_t high = v_in[i] << shift;
    uint32_t low =
        (shift != 0 && i > 0) ? (v_in[i - 1] >> (32 - shift)) : 0;
    v[i] = high | low;
  }
  std::vector<uint32_t> u(u_in.size() + 1, 0);
  for (size_t i = u_in.size(); i-- > 0;) {
    uint32_t high = u_in[i] << shift;
    uint32_t low =
        (shift != 0 && i > 0) ? (u_in[i - 1] >> (32 - shift)) : 0;
    u[i] = high | low;
  }
  if (shift != 0) {
    u[u_in.size()] = u_in.back() >> (32 - shift);
  }

  quotient->assign(m + 1, 0);
  const uint64_t v_top = v[n - 1];
  const uint64_t v_next = v[n - 2];

  // D2..D7: main loop over quotient digits.
  for (size_t j = m + 1; j-- > 0;) {
    // D3: estimate the quotient digit.
    uint64_t numerator = (static_cast<uint64_t>(u[j + n]) << 32) | u[j + n - 1];
    uint64_t qhat = numerator / v_top;
    uint64_t rhat = numerator % v_top;
    while (qhat >= kLimbBase ||
           qhat * v_next > ((rhat << 32) | u[j + n - 2])) {
      --qhat;
      rhat += v_top;
      if (rhat >= kLimbBase) {
        break;
      }
    }

    // D4: multiply and subtract.
    int64_t borrow = 0;
    uint64_t carry = 0;
    for (size_t i = 0; i < n; ++i) {
      uint64_t product = qhat * v[i] + carry;
      carry = product >> 32;
      int64_t diff = static_cast<int64_t>(u[i + j]) -
                     static_cast<int64_t>(product & 0xffffffffu) - borrow;
      if (diff < 0) {
        diff += static_cast<int64_t>(kLimbBase);
        borrow = 1;
      } else {
        borrow = 0;
      }
      u[i + j] = static_cast<uint32_t>(diff);
    }
    int64_t top = static_cast<int64_t>(u[j + n]) -
                  static_cast<int64_t>(carry) - borrow;
    bool negative = top < 0;
    u[j + n] = static_cast<uint32_t>(top & 0xffffffff);

    // D5/D6: if we subtracted too much, add the divisor back.
    if (negative) {
      --qhat;
      uint64_t add_carry = 0;
      for (size_t i = 0; i < n; ++i) {
        uint64_t sum = static_cast<uint64_t>(u[i + j]) + v[i] + add_carry;
        u[i + j] = static_cast<uint32_t>(sum & 0xffffffffu);
        add_carry = sum >> 32;
      }
      u[j + n] = static_cast<uint32_t>(u[j + n] + add_carry);
    }
    (*quotient)[j] = static_cast<uint32_t>(qhat);
  }
  TrimMag(quotient);

  // D8: de-normalize the remainder.
  remainder->assign(n, 0);
  for (size_t i = 0; i < n; ++i) {
    uint32_t high = (shift != 0 && i + 1 < u.size())
                        ? (u[i + 1] << (32 - shift))
                        : 0;
    (*remainder)[i] = shift == 0 ? u[i] : ((u[i] >> shift) | high);
  }
  TrimMag(remainder);
}

BigInt BigInt::operator+(const BigInt& other) const {
  BigInt result;
  if (negative_ == other.negative_) {
    result.limbs_ = AddMag(limbs_, other.limbs_);
    result.negative_ = negative_;
  } else {
    int cmp = CompareMag(limbs_, other.limbs_);
    if (cmp == 0) {
      return BigInt();
    }
    if (cmp > 0) {
      result.limbs_ = SubMag(limbs_, other.limbs_);
      result.negative_ = negative_;
    } else {
      result.limbs_ = SubMag(other.limbs_, limbs_);
      result.negative_ = other.negative_;
    }
  }
  result.Canonicalize();
  return result;
}

BigInt BigInt::operator-(const BigInt& other) const {
  return *this + other.Negated();
}

BigInt BigInt::operator*(const BigInt& other) const {
  BigInt result;
  result.limbs_ = MulMag(limbs_, other.limbs_);
  result.negative_ = negative_ != other.negative_;
  result.Canonicalize();
  return result;
}

BigInt::DivModResult BigInt::DivMod(const BigInt& divisor) const {
  QREL_CHECK_MSG(!divisor.IsZero(), "BigInt division by zero");
  DivModResult result;
  DivModMag(limbs_, divisor.limbs_, &result.quotient.limbs_,
            &result.remainder.limbs_);
  result.quotient.negative_ = negative_ != divisor.negative_;
  result.remainder.negative_ = negative_;
  result.quotient.Canonicalize();
  result.remainder.Canonicalize();
  return result;
}

BigInt BigInt::operator/(const BigInt& other) const {
  return DivMod(other).quotient;
}

BigInt BigInt::operator%(const BigInt& other) const {
  return DivMod(other).remainder;
}

BigInt BigInt::ShiftLeft(size_t bits) const {
  if (IsZero() || bits == 0) {
    return *this;
  }
  BigInt result;
  result.negative_ = negative_;
  size_t limb_shift = bits / 32;
  size_t bit_shift = bits % 32;
  result.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
  for (size_t i = 0; i < limbs_.size(); ++i) {
    uint64_t value = static_cast<uint64_t>(limbs_[i]) << bit_shift;
    result.limbs_[i + limb_shift] |= static_cast<uint32_t>(value & 0xffffffffu);
    result.limbs_[i + limb_shift + 1] |= static_cast<uint32_t>(value >> 32);
  }
  result.Canonicalize();
  return result;
}

BigInt BigInt::ShiftRight(size_t bits) const {
  size_t limb_shift = bits / 32;
  if (limb_shift >= limbs_.size()) {
    return BigInt();
  }
  size_t bit_shift = bits % 32;
  BigInt result;
  result.negative_ = negative_;
  result.limbs_.assign(limbs_.size() - limb_shift, 0);
  for (size_t i = 0; i < result.limbs_.size(); ++i) {
    uint64_t value = limbs_[i + limb_shift] >> bit_shift;
    if (bit_shift != 0 && i + limb_shift + 1 < limbs_.size()) {
      value |= static_cast<uint64_t>(limbs_[i + limb_shift + 1])
               << (32 - bit_shift);
    }
    result.limbs_[i] = static_cast<uint32_t>(value & 0xffffffffu);
  }
  result.Canonicalize();
  return result;
}

BigInt BigInt::Gcd(const BigInt& a_in, const BigInt& b_in) {
  BigInt a = a_in.Abs();
  BigInt b = b_in.Abs();
  // Euclid with full divisions: the operand sizes shrink quickly, and the
  // limb-based DivMod keeps each step O(n^2) at worst.
  while (!b.IsZero()) {
    BigInt r = a % b;
    a = std::move(b);
    b = std::move(r);
  }
  return a;
}

BigInt BigInt::Lcm(const BigInt& a, const BigInt& b) {
  if (a.IsZero() || b.IsZero()) {
    return BigInt();
  }
  BigInt g = Gcd(a, b);
  return (a.Abs() / g) * b.Abs();
}

BigInt BigInt::Pow(const BigInt& base, uint32_t exponent) {
  BigInt result(1);
  BigInt factor = base;
  while (exponent != 0) {
    if (exponent & 1u) {
      result *= factor;
    }
    exponent >>= 1;
    if (exponent != 0) {
      factor *= factor;
    }
  }
  return result;
}

std::string BigInt::ToDecimalString() const {
  if (IsZero()) {
    return "0";
  }
  // Repeatedly divide by 10^9 and emit 9-digit chunks.
  std::vector<uint32_t> mag = limbs_;
  std::string digits;
  while (!mag.empty()) {
    uint64_t rem = 0;
    for (size_t i = mag.size(); i-- > 0;) {
      uint64_t cur = (rem << 32) | mag[i];
      mag[i] = static_cast<uint32_t>(cur / 1000000000u);
      rem = cur % 1000000000u;
    }
    TrimMag(&mag);
    for (int i = 0; i < 9; ++i) {
      digits.push_back(static_cast<char>('0' + rem % 10));
      rem /= 10;
    }
  }
  while (digits.size() > 1 && digits.back() == '0') {
    digits.pop_back();
  }
  if (negative_) {
    digits.push_back('-');
  }
  std::reverse(digits.begin(), digits.end());
  return digits;
}

double BigInt::ToDouble() const {
  double result = 0.0;
  for (size_t i = limbs_.size(); i-- > 0;) {
    result = result * 4294967296.0 + static_cast<double>(limbs_[i]);
  }
  return negative_ ? -result : result;
}

bool BigInt::FitsInt64() const {
  if (limbs_.size() > 2) {
    return false;
  }
  uint64_t magnitude = 0;
  if (!limbs_.empty()) {
    magnitude = limbs_[0];
  }
  if (limbs_.size() == 2) {
    magnitude |= static_cast<uint64_t>(limbs_[1]) << 32;
  }
  if (negative_) {
    return magnitude <= (uint64_t{1} << 63);
  }
  return magnitude <= static_cast<uint64_t>(
                          std::numeric_limits<int64_t>::max());
}

int64_t BigInt::ToInt64() const {
  QREL_CHECK_MSG(FitsInt64(), "BigInt does not fit in int64_t");
  uint64_t magnitude = 0;
  if (!limbs_.empty()) {
    magnitude = limbs_[0];
  }
  if (limbs_.size() == 2) {
    magnitude |= static_cast<uint64_t>(limbs_[1]) << 32;
  }
  if (negative_) {
    return static_cast<int64_t>(~magnitude + 1);
  }
  return static_cast<int64_t>(magnitude);
}

}  // namespace qrel
