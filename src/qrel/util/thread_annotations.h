// Clang thread-safety (capability) annotation macros.
//
// These wrap Clang's `-Wthread-safety` attribute set so every
// lock/shared-state relationship in the codebase is *machine-checked at
// compile time*: a field marked QREL_GUARDED_BY(mu) read or written
// without holding `mu`, or a QREL_REQUIRES(mu) helper called lockless, is
// a build error under `-Werror=thread-safety-analysis` (the CI lint job's
// clang pass), not a review catch. On GCC — which has no capability
// analysis — every macro expands to nothing, so the annotations cost
// zero and gate nothing outside the clang build.
//
// The annotated primitives live in util/mutex.h (qrel::Mutex /
// qrel::MutexLock / qrel::CondVar); annotate with these macros, lock with
// those types. tests/compile_fail/ pins the analysis itself: snippets
// that violate the discipline must keep failing the clang build, so the
// checking can't silently rot.
//
// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html

#ifndef QREL_UTIL_THREAD_ANNOTATIONS_H_
#define QREL_UTIL_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && !defined(QREL_NO_THREAD_SAFETY_ANALYSIS)
#define QREL_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define QREL_THREAD_ANNOTATION(x)  // no-op on GCC / MSVC
#endif

// Declares a type to be a capability ("mutex" for all of ours).
#define QREL_CAPABILITY(x) QREL_THREAD_ANNOTATION(capability(x))

// Declares an RAII type whose lifetime holds a capability.
#define QREL_SCOPED_CAPABILITY QREL_THREAD_ANNOTATION(scoped_lockable)

// Field/variable is protected by the given capability; all reads and
// writes must happen with it held.
#define QREL_GUARDED_BY(x) QREL_THREAD_ANNOTATION(guarded_by(x))

// Pointer field whose *pointee* is protected by the capability.
#define QREL_PT_GUARDED_BY(x) QREL_THREAD_ANNOTATION(pt_guarded_by(x))

// Function requires the capability held on entry (and does not release).
#define QREL_REQUIRES(...) \
  QREL_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

// Function must NOT hold the capability on entry (deadlock guard for
// functions that acquire it themselves).
#define QREL_EXCLUDES(...) QREL_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

// Function acquires / releases the capability.
#define QREL_ACQUIRE(...) \
  QREL_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define QREL_RELEASE(...) \
  QREL_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define QREL_TRY_ACQUIRE(...) \
  QREL_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

// Function returns a reference to the capability guarding its result.
#define QREL_RETURN_CAPABILITY(x) QREL_THREAD_ANNOTATION(lock_returned(x))

// Asserts (without acquiring) that the capability is held — for helpers
// reached only with the lock held in ways the analysis cannot see.
#define QREL_ASSERT_CAPABILITY(x) \
  QREL_THREAD_ANNOTATION(assert_capability(x))

// Escape hatch: turns the analysis off for one function. Every use must
// carry a comment saying why the discipline cannot be expressed.
#define QREL_NO_THREAD_SAFETY_ANALYSIS \
  QREL_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // QREL_UTIL_THREAD_ANNOTATIONS_H_
