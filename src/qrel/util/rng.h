// Deterministic pseudo-random number generation for all randomized
// algorithms in the library (Karp-Luby, naive Monte Carlo, the Theorem 5.12
// estimator, workload generators).
//
// The generator is xoshiro256++ seeded through splitmix64, which gives
// high-quality streams from arbitrary 64-bit seeds. Every randomized API in
// qrel takes an explicit Rng (or seed), so runs are reproducible.

#ifndef QREL_UTIL_RNG_H_
#define QREL_UTIL_RNG_H_

#include <array>
#include <cstdint>

#include "qrel/util/check.h"
#include "qrel/util/status.h"

namespace qrel {

// xoshiro256++ by Blackman & Vigna (public domain reference algorithm).
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // splitmix64 expansion of the seed into the four-word state.
    uint64_t x = seed;
    for (int i = 0; i < 4; ++i) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      state_[i] = z ^ (z >> 31);
    }
    // The all-zero state is invalid for xoshiro; seed==0 cannot produce it
    // through splitmix64, but keep the check as documentation.
    QREL_CHECK(state_[0] | state_[1] | state_[2] | state_[3]);
  }

  // Next uniformly distributed 64-bit value.
  uint64_t NextUint64() {
    const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound). `bound` must be positive. Uses Lemire-style
  // rejection to avoid modulo bias.
  uint64_t NextBelow(uint64_t bound) {
    QREL_CHECK_GT(bound, 0u);
    // Rejection sampling on the top bits: unbiased and branch-cheap.
    uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      uint64_t r = NextUint64();
      if (r >= threshold) {
        return r % bound;
      }
    }
  }

  // Uniform double in [0, 1) with 53 bits of precision.
  double NextDouble() {
    return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
  }

  // Bernoulli draw with success probability `p` (clamped to [0,1]).
  bool NextBernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return NextDouble() < p;
  }

  // Derives an independent generator; useful to hand sub-tasks their own
  // streams without correlations.
  Rng Fork() { return Rng(NextUint64() ^ 0xa5a5a5a5a5a5a5a5ULL); }

  // The full generator state, for checkpointing. Restore(Save()) yields a
  // generator whose future output is byte-identical to this one's — the
  // foundation of deterministic resume (util/snapshot.h).
  std::array<uint64_t, 4> Save() const {
    return {state_[0], state_[1], state_[2], state_[3]};
  }

  // Rebuilds a generator from a saved state. The all-zero state is the one
  // invalid xoshiro state (the generator would emit zeros forever); it is
  // rejected with InvalidArgument rather than checked, because restored
  // states come from external files.
  static StatusOr<Rng> Restore(const std::array<uint64_t, 4>& state) {
    if ((state[0] | state[1] | state[2] | state[3]) == 0) {
      return Status::InvalidArgument("all-zero RNG state is invalid");
    }
    Rng rng(RestoreTag{}, state);
    return rng;
  }

 private:
  struct RestoreTag {};
  Rng(RestoreTag, const std::array<uint64_t, 4>& state) {
    for (int i = 0; i < 4; ++i) {
      state_[i] = state[static_cast<size_t>(i)];
    }
  }

  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace qrel

#endif  // QREL_UTIL_RNG_H_
