// Annotated synchronization primitives: qrel::Mutex / MutexLock / CondVar.
//
// Every mutex in the codebase is one of these instead of a raw
// std::mutex, which buys two machine checks on top of plain locking:
//
//  1. **Compile-time capability analysis** (Clang `-Wthread-safety`,
//     promoted to an error in the CI lint job). The types carry the
//     capability attributes from util/thread_annotations.h, so a field
//     marked QREL_GUARDED_BY(mu) touched without holding `mu`, a
//     QREL_REQUIRES(mu) helper called lockless, or a lock left held at
//     function exit is a build error. GCC builds compile the same source
//     with the attributes expanded away.
//
//  2. **Runtime lock-rank deadlock detection** (on by default; disable
//     with -DQREL_MUTEX_RANK_CHECKS=0 for a bare release build). Every
//     Mutex carries a rank from the single ordered registry in
//     util/lock_ranks.h; each thread tracks the ranks it holds, and an
//     acquisition whose rank is not strictly greater than every held
//     rank aborts with both rank names. This catches the ordering cycles
//     capability analysis cannot see across call graphs — the class of
//     deadlock that otherwise only surfaces as a wedged soak test.
//
// Waiting: CondVar takes the Mutex directly (Wait / WaitUntil /
// WaitFor). Prefer explicit `while (!ConditionLocked()) cv.Wait(mu);`
// loops over predicate lambdas at call sites — the capability analysis
// checks the loop body against the held lock, whereas a lambda is
// analyzed as a separate unannotated function and defeats the check.
//
// The lock-rank bookkeeping is a thread-local vector push/pop per
// acquisition; none of the code using these locks is a per-sample hot
// path (the engine's inner loops are lock-free by construction), so the
// checks stay on in every CI configuration, sanitized or not.

#ifndef QREL_UTIL_MUTEX_H_
#define QREL_UTIL_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "qrel/util/lock_ranks.h"
#include "qrel/util/thread_annotations.h"

#if !defined(QREL_MUTEX_RANK_CHECKS)
#define QREL_MUTEX_RANK_CHECKS 1
#endif

namespace qrel {

#if QREL_MUTEX_RANK_CHECKS
namespace mutex_internal {
// Rank bookkeeping, per thread. Acquire aborts (after printing the
// acquiring and held rank names) on any non-increasing acquisition;
// Release forgets the entry; the WaitRelease/WaitReacquire pair brackets
// a condition-variable wait, where the lock is not held while blocked.
void RankCheckAcquire(const void* mu, LockRank rank);
void RankCheckRelease(const void* mu);
inline void RankCheckWaitRelease(const void* mu) { RankCheckRelease(mu); }
inline void RankCheckWaitReacquire(const void* mu, LockRank rank) {
  RankCheckAcquire(mu, rank);
}
// Ranks currently held by the calling thread (tests / diagnostics).
int HeldLockCount();
}  // namespace mutex_internal
#define QREL_MUTEX_RANK_ACQUIRE(mu, rank) \
  ::qrel::mutex_internal::RankCheckAcquire(mu, rank)
#define QREL_MUTEX_RANK_RELEASE(mu) \
  ::qrel::mutex_internal::RankCheckRelease(mu)
#else
#define QREL_MUTEX_RANK_ACQUIRE(mu, rank) ((void)0)
#define QREL_MUTEX_RANK_RELEASE(mu) ((void)0)
#endif

// A standard mutex carrying a capability for the static analysis and a
// rank for the runtime ordering check.
class QREL_CAPABILITY("mutex") Mutex {
 public:
  // Rank defaults to kLeaf: correct for a mutex that never nests with
  // another; any mutex that does must name its slot in lock_ranks.h.
  explicit Mutex(LockRank rank = LockRank::kLeaf) : rank_(rank) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() QREL_ACQUIRE() {
    QREL_MUTEX_RANK_ACQUIRE(this, rank_);
    mu_.lock();
  }

  void Unlock() QREL_RELEASE() {
    mu_.unlock();
    QREL_MUTEX_RANK_RELEASE(this);
  }

  LockRank rank() const { return rank_; }

 private:
  friend class CondVar;

  std::mutex mu_;
  const LockRank rank_;
};

// RAII lock scope; the only way production code takes a Mutex.
class QREL_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) QREL_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() QREL_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

// Condition variable bound to qrel::Mutex. Wait requires the mutex held;
// while blocked the lock (and its rank bookkeeping) is released, exactly
// like std::condition_variable.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  // One blocking wait; spurious wakeups possible, callers loop on their
  // condition.
  void Wait(Mutex& mu) QREL_REQUIRES(mu);

  // Blocks until notified or `deadline`; std::cv_status::timeout when the
  // deadline passed. Callers re-test their condition either way.
  std::cv_status WaitUntil(Mutex& mu,
                           std::chrono::steady_clock::time_point deadline)
      QREL_REQUIRES(mu);

  std::cv_status WaitFor(Mutex& mu, std::chrono::steady_clock::duration rel)
      QREL_REQUIRES(mu) {
    return WaitUntil(mu, std::chrono::steady_clock::now() + rel);
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace qrel

#endif  // QREL_UTIL_MUTEX_H_
