#include "qrel/lifted/extensional.h"

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "qrel/logic/eval.h"
#include "qrel/logic/safe_plan.h"
#include "qrel/relational/atom_table.h"
#include "qrel/util/check.h"

namespace qrel {

namespace {

Rational TupleSpaceSize(int n, int k) {
  return Rational(BigInt::Pow(BigInt(n), static_cast<uint32_t>(k)),
                  BigInt(1));
}

// A safe plan with relation names resolved to ids and variables mapped to
// dense environment slots, so the per-tuple inner loop does no string
// work (mirroring logic/eval.h's CompiledQuery).
struct CompiledPlanTerm {
  bool is_slot = false;
  int slot = 0;          // environment index if is_slot
  Element constant = 0;  // otherwise
};

struct CompiledPlanNode {
  SafePlanKind kind = SafePlanKind::kJoin;
  int relation = -1;                    // kAtom
  std::vector<CompiledPlanTerm> terms;  // kAtom / kEquality
  int slot = -1;                        // kProject: projected variable
  std::vector<CompiledPlanNode> children;
};

class PlanCompiler {
 public:
  explicit PlanCompiler(const Vocabulary& vocabulary)
      : vocabulary_(vocabulary) {}

  // `slots` maps the free variables (and, during recursion, the projected
  // variables) to environment indices; the builder guarantees variable
  // names are unique across a plan.
  StatusOr<CompiledPlanNode> Compile(const SafePlanNode& node,
                                     std::map<std::string, int>* slots,
                                     int* slot_count) {
    CompiledPlanNode compiled;
    compiled.kind = node.kind;
    switch (node.kind) {
      case SafePlanKind::kAtom: {
        std::optional<int> relation =
            vocabulary_.FindRelation(node.relation);
        if (!relation.has_value()) {
          return Status::InvalidArgument("unknown relation '" +
                                         node.relation + "' in safe plan");
        }
        compiled.relation = *relation;
        QREL_RETURN_IF_ERROR(CompileTerms(node, *slots, &compiled));
        return compiled;
      }
      case SafePlanKind::kEquality:
        QREL_RETURN_IF_ERROR(CompileTerms(node, *slots, &compiled));
        return compiled;
      case SafePlanKind::kJoin:
        for (const SafePlanPtr& child : node.children) {
          StatusOr<CompiledPlanNode> compiled_child =
              Compile(*child, slots, slot_count);
          if (!compiled_child.ok()) {
            return compiled_child.status();
          }
          compiled.children.push_back(std::move(compiled_child).value());
        }
        return compiled;
      case SafePlanKind::kProject: {
        QREL_CHECK(node.children.size() == 1);
        compiled.slot = (*slot_count)++;
        slots->emplace(node.variable, compiled.slot);
        StatusOr<CompiledPlanNode> compiled_child =
            Compile(*node.children[0], slots, slot_count);
        if (!compiled_child.ok()) {
          return compiled_child.status();
        }
        compiled.children.push_back(std::move(compiled_child).value());
        return compiled;
      }
    }
    QREL_CHECK_MSG(false, "corrupt safe-plan node");
    return Status::Internal("corrupt safe-plan node");
  }

 private:
  static Status CompileTerms(const SafePlanNode& node,
                             const std::map<std::string, int>& slots,
                             CompiledPlanNode* compiled) {
    for (const Term& term : node.args) {
      CompiledPlanTerm out;
      if (term.is_variable()) {
        auto it = slots.find(term.variable);
        if (it == slots.end()) {
          return Status::Internal("safe-plan variable '" + term.variable +
                                  "' has no environment slot");
        }
        out.is_slot = true;
        out.slot = it->second;
      } else {
        out.constant = term.constant;
      }
      compiled->terms.push_back(out);
    }
    return Status::Ok();
  }

  const Vocabulary& vocabulary_;
};

// Pr[subplan true] under the environment `env`; charges `ctx` per leaf.
StatusOr<Rational> EvalPlan(const CompiledPlanNode& node,
                            const UnreliableDatabase& db,
                            std::vector<Element>* env, RunContext* ctx,
                            uint64_t* ops) {
  switch (node.kind) {
    case SafePlanKind::kAtom: {
      QREL_RETURN_IF_ERROR(ChargeWork(ctx));
      ++*ops;
      GroundAtom atom;
      atom.relation = node.relation;
      atom.args.reserve(node.terms.size());
      for (const CompiledPlanTerm& term : node.terms) {
        atom.args.push_back(term.is_slot ? (*env)[term.slot]
                                         : term.constant);
      }
      return db.NuTrue(atom);
    }
    case SafePlanKind::kEquality: {
      QREL_RETURN_IF_ERROR(ChargeWork(ctx));
      ++*ops;
      QREL_CHECK(node.terms.size() == 2);
      Element left = node.terms[0].is_slot ? (*env)[node.terms[0].slot]
                                           : node.terms[0].constant;
      Element right = node.terms[1].is_slot ? (*env)[node.terms[1].slot]
                                            : node.terms[1].constant;
      return left == right ? Rational::One() : Rational::Zero();
    }
    case SafePlanKind::kJoin: {
      // Independent factors: the product of the children.
      Rational product = Rational::One();
      for (const CompiledPlanNode& child : node.children) {
        StatusOr<Rational> p = EvalPlan(child, db, env, ctx, ops);
        if (!p.ok()) {
          return p.status();
        }
        product *= *p;
      }
      return product;
    }
    case SafePlanKind::kProject: {
      // Independent instantiations: Pr[∃x φ] = 1 − Π_c (1 − Pr[φ[x:=c]]).
      Rational none_true = Rational::One();
      for (Element value = 0; value < db.universe_size(); ++value) {
        (*env)[node.slot] = value;
        StatusOr<Rational> p =
            EvalPlan(node.children[0], db, env, ctx, ops);
        if (!p.ok()) {
          return p.status();
        }
        none_true *= p->Complement();
      }
      return none_true.Complement();
    }
  }
  QREL_CHECK_MSG(false, "corrupt safe-plan node");
  return Status::Internal("corrupt safe-plan node");
}

struct CompiledExtensional {
  CompiledQuery query;
  CompiledPlanNode plan;
  int slot_count = 0;

  explicit CompiledExtensional(CompiledQuery q) : query(std::move(q)) {}
};

StatusOr<CompiledExtensional> CompileExtensional(
    const FormulaPtr& query, const UnreliableDatabase& db) {
  SafePlanAnalysis analysis = AnalyzeSafePlan(query);
  if (!analysis.applicable || !analysis.safe) {
    return Status::InvalidArgument(
        "query admits no safe plan; use the exact or sampling rungs");
  }
  StatusOr<CompiledQuery> compiled =
      CompiledQuery::Compile(query, db.vocabulary());
  if (!compiled.ok()) {
    return compiled.status();
  }
  CompiledExtensional result(std::move(compiled).value());
  std::map<std::string, int> slots;
  int slot_count = 0;
  for (const std::string& variable : result.query.free_variables()) {
    slots.emplace(variable, slot_count++);
  }
  PlanCompiler plan_compiler(db.vocabulary());
  StatusOr<CompiledPlanNode> plan =
      plan_compiler.Compile(*analysis.plan, &slots, &slot_count);
  if (!plan.ok()) {
    return plan.status();
  }
  result.plan = std::move(plan).value();
  result.slot_count = slot_count;
  return result;
}

}  // namespace

StatusOr<ReliabilityReport> ExtensionalReliability(
    const FormulaPtr& query, const UnreliableDatabase& db, RunContext* ctx) {
  StatusOr<CompiledExtensional> compiled = CompileExtensional(query, db);
  if (!compiled.ok()) {
    return compiled.status();
  }
  const int n = db.universe_size();
  const int k = compiled->query.arity();

  ReliabilityReport report;
  report.arity = k;
  uint64_t ops = 0;
  Tuple tuple(static_cast<size_t>(k), 0);
  std::vector<Element> env(static_cast<size_t>(compiled->slot_count), 0);
  while (true) {
    QREL_RETURN_IF_ERROR(ChargeWork(ctx));
    ++ops;
    for (int i = 0; i < k; ++i) {
      env[static_cast<size_t>(i)] = tuple[static_cast<size_t>(i)];
    }
    StatusOr<Rational> p = EvalPlan(compiled->plan, db, &env, ctx, &ops);
    if (!p.ok()) {
      return p.status();
    }
    // Pr[ψ(ā) wrong]: the observed database answers ā or it does not.
    bool observed = compiled->query.Eval(db.observed(), tuple);
    report.expected_error += observed ? p->Complement() : *p;
    if (!AdvanceTuple(&tuple, n)) {
      break;
    }
  }
  report.reliability =
      Rational(1) - report.expected_error / TupleSpaceSize(n, k);
  report.work_units = ops;
  return report;
}

StatusOr<Rational> ExtensionalQueryProbability(const FormulaPtr& query,
                                               const UnreliableDatabase& db,
                                               const Tuple& assignment) {
  StatusOr<CompiledExtensional> compiled = CompileExtensional(query, db);
  if (!compiled.ok()) {
    return compiled.status();
  }
  if (assignment.size() != static_cast<size_t>(compiled->query.arity())) {
    return Status::InvalidArgument(
        "assignment size does not match the query arity");
  }
  std::vector<Element> env(static_cast<size_t>(compiled->slot_count), 0);
  for (size_t i = 0; i < assignment.size(); ++i) {
    env[i] = assignment[i];
  }
  uint64_t ops = 0;
  return EvalPlan(compiled->plan, db, &env, nullptr, &ops);
}

}  // namespace qrel
