// Extensional (lifted) evaluation of safe plans.
//
// For a safe self-join-free conjunctive query (logic/safe_plan.h), the
// query probability factors over independent tuple events, so reliability
// needs no possible worlds and no samples:
//
//   leaf R(t̄)        Pr = ν(R t̄)                     (one marginal lookup)
//   equality t₁ = t₂  Pr = 1 or 0                     (deterministic)
//   independent join  Pr[φ₁ ∧ φ₂] = Pr[φ₁]·Pr[φ₂]
//   independent proj  Pr[∃x φ] = 1 − Π_c (1 − Pr[φ[x:=c]])
//
// ExtensionalReliability evaluates the plan once per answer tuple ā over
// the n^k tuple space, in exact rational arithmetic, and assembles
// H_ψ(𝔇) = Σ_ā Pr[ψ(ā) wrong] and R_ψ = 1 − H_ψ/n^k exactly — the same
// quantities core/reliability.h computes by 2^u world enumeration, at
// polynomial cost O(n^k · plan-size · n^depth).
//
// RunContext (nullable) is charged one unit per answer tuple and one per
// plan-leaf evaluation; a tripped envelope stops the computation with its
// budget status. The run is polynomial and restartable from scratch, so
// unlike the exponential rungs it takes no checkpoints.

#ifndef QREL_LIFTED_EXTENSIONAL_H_
#define QREL_LIFTED_EXTENSIONAL_H_

#include "qrel/core/reliability.h"
#include "qrel/logic/ast.h"
#include "qrel/prob/unreliable_database.h"
#include "qrel/util/rational.h"
#include "qrel/util/run_context.h"
#include "qrel/util/status.h"

namespace qrel {

// Exact H_ψ and R_ψ by safe-plan evaluation. Fails with kInvalidArgument
// when the query admits no safe plan (use logic/safe_plan.h or
// QueryClass::kSafeConjunctive to decide beforehand); work_units counts
// plan operations (tuples + leaf evaluations).
StatusOr<ReliabilityReport> ExtensionalReliability(
    const FormulaPtr& query, const UnreliableDatabase& db,
    RunContext* ctx = nullptr);

// Exact Pr[𝔅 ⊨ ψ(ā)] via the safe plan, for one assignment of the free
// variables (free_variables order; empty for Boolean queries). The
// extensional counterpart of ExactQueryProbability, used by the
// cross-check tests.
StatusOr<Rational> ExtensionalQueryProbability(const FormulaPtr& query,
                                               const UnreliableDatabase& db,
                                               const Tuple& assignment);

}  // namespace qrel

#endif  // QREL_LIFTED_EXTENSIONAL_H_
