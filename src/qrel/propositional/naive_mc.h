// Naive Monte Carlo estimation of DNF probability: sample assignments from
// the product distribution and report the hit fraction.
//
// This is the strawman the Karp-Luby construction improves on — the
// absolute error is fine, but the *relative* error at fixed sample budget
// diverges as Pr[φ] → 0 (experiment E4). It doubles as the generic
// estimator for query probabilities when no DNF structure is available.

#ifndef QREL_PROPOSITIONAL_NAIVE_MC_H_
#define QREL_PROPOSITIONAL_NAIVE_MC_H_

#include <cstdint>
#include <vector>

#include "qrel/propositional/dnf.h"
#include "qrel/util/run_context.h"
#include "qrel/util/status.h"

namespace qrel {

struct NaiveMcResult {
  double estimate = 0.0;
  uint64_t samples = 0;
  uint64_t hits = 0;
  // The loop stopped early on a tripped budget; `samples` is the number
  // actually incorporated into `estimate`.
  bool truncated = false;
};

// Estimates Pr[φ] with `samples` independent assignments (must be > 0).
// `ctx` (nullable) is charged one work unit per sample; when the envelope
// trips mid-loop and `allow_truncation` is set, the running estimate is
// returned (marked `truncated`; the hit-fraction estimator is unbiased at
// any prefix). Cancellation always propagates as kCancelled.
StatusOr<NaiveMcResult> NaiveMcProbability(
    const Dnf& dnf, const std::vector<Rational>& prob_true, uint64_t samples,
    uint64_t seed, RunContext* ctx = nullptr, bool allow_truncation = false);

}  // namespace qrel

#endif  // QREL_PROPOSITIONAL_NAIVE_MC_H_
