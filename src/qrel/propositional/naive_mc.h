// Naive Monte Carlo estimation of DNF probability: sample assignments from
// the product distribution and report the hit fraction.
//
// This is the strawman the Karp-Luby construction improves on — the
// absolute error is fine, but the *relative* error at fixed sample budget
// diverges as Pr[φ] → 0 (experiment E4). It doubles as the generic
// estimator for query probabilities when no DNF structure is available.

#ifndef QREL_PROPOSITIONAL_NAIVE_MC_H_
#define QREL_PROPOSITIONAL_NAIVE_MC_H_

#include <cstdint>
#include <vector>

#include "qrel/propositional/dnf.h"
#include "qrel/util/status.h"

namespace qrel {

struct NaiveMcResult {
  double estimate = 0.0;
  uint64_t samples = 0;
  uint64_t hits = 0;
};

// Estimates Pr[φ] with `samples` independent assignments (must be > 0).
StatusOr<NaiveMcResult> NaiveMcProbability(
    const Dnf& dnf, const std::vector<Rational>& prob_true, uint64_t samples,
    uint64_t seed);

}  // namespace qrel

#endif  // QREL_PROPOSITIONAL_NAIVE_MC_H_
