// The Theorem 5.3 reduction: Prob-kDNF → #DNF.
//
// Given a kDNF formula φ with rational probabilities ν(X) = p/q per
// variable, build a plain DNF formula φ'' over fresh binary variables such
// that
//
//   ν(φ) = (#models(φ'') − illegal) / legal,
//
// where each original variable X with denominator q gets ℓ = len(q) bits
// Ȳ, the literal X is replaced by the DNF of "val(Ȳ) < p", ¬X by
// "val(Ȳ) ≥ p", assignments with val(Ȳ) ≥ q are illegal, φ'' additionally
// absorbs all illegal assignments (so its models = legal models of φ' +
// all illegal assignments), legal = Π q_X, and illegal = 2^bits − legal.
//
// This turns any FPTRAS for #DNF (karp_luby.h) into an FPTRAS for
// Prob-kDNF. The construction is exponential in the width k but polynomial
// in |φ| and in the bit-length of the probabilities, exactly as the proof
// states.

#ifndef QREL_PROPOSITIONAL_KDNF_REDUCTION_H_
#define QREL_PROPOSITIONAL_KDNF_REDUCTION_H_

#include <vector>

#include "qrel/propositional/dnf.h"
#include "qrel/util/bigint.h"
#include "qrel/util/status.h"

namespace qrel {

struct KdnfReduction {
  Dnf phi_pp;                // φ'' over the fresh bit variables
  int bit_count = 0;         // total fresh variables
  BigInt legal_assignments;  // Π q_X
  BigInt total_assignments;  // 2^bit_count

  // Per original variable: first bit index and number of bits. Bit b of
  // variable X is phi_pp variable bit_offset[X] + b, with b = 0 the least
  // significant.
  std::vector<int> bit_offset;
  std::vector<int> bit_width;

  KdnfReduction() : phi_pp(0) {}

  // Recovers ν(φ) from an exact or estimated model count of φ''.
  // ν(φ) = (count − (total − legal)) / legal.
  Rational RecoverProbability(const BigInt& model_count) const;
  double RecoverProbability(double model_count) const;
};

// Builds the reduction. Fails if some probability is outside [0, 1] or if
// the distributed DNF would exceed `max_terms` (width × bit-length blowup
// guard).
StatusOr<KdnfReduction> ReduceProbKdnfToSharpDnf(
    const Dnf& dnf, const std::vector<Rational>& prob_true,
    size_t max_terms = size_t{1} << 22);

}  // namespace qrel

#endif  // QREL_PROPOSITIONAL_KDNF_REDUCTION_H_
