#include "qrel/propositional/exact.h"

#include <utility>

#include "qrel/util/check.h"
#include "qrel/util/snapshot.h"

namespace qrel {

namespace {

// Terms represented as (variable, positive) lists, shrinking as variables
// get decided. An empty term list means false; a list containing an empty
// term means true.
using Term = std::vector<PropLiteral>;

// Conditions `terms` on variable `variable` = `value`: terms contradicted
// by the choice disappear, satisfied literals are removed. Returns true if
// some term became empty (formula satisfied).
bool Condition(const std::vector<Term>& terms, int variable, bool value,
               std::vector<Term>* out) {
  out->clear();
  for (const Term& term : terms) {
    Term reduced;
    reduced.reserve(term.size());
    bool alive = true;
    for (const PropLiteral& literal : term) {
      if (literal.variable == variable) {
        if (literal.positive != value) {
          alive = false;
          break;
        }
        continue;  // literal satisfied
      }
      reduced.push_back(literal);
    }
    if (!alive) {
      continue;
    }
    if (reduced.empty()) {
      return true;
    }
    out->push_back(std::move(reduced));
  }
  return false;
}

Status Shannon(const std::vector<Term>& terms,
               const std::vector<Rational>& prob_true, RunContext* ctx,
               Rational* out) {
  *out = Rational::Zero();
  if (terms.empty()) {
    return Status::Ok();
  }
  // One expansion node; the worst case is exponential in the variable
  // count, which is exactly what a work budget needs to see.
  QREL_RETURN_IF_ERROR(ChargeWork(ctx));

  // Branch on the first variable of the first term; it appears in at least
  // one term, so both branches strictly simplify.
  int variable = terms[0][0].variable;
  const Rational& p = prob_true[static_cast<size_t>(variable)];

  std::vector<Term> branch;
  Rational result;
  if (!p.IsZero()) {
    if (Condition(terms, variable, true, &branch)) {
      result += p;
    } else {
      Rational sub;
      QREL_RETURN_IF_ERROR(Shannon(branch, prob_true, ctx, &sub));
      result += p * sub;
    }
  }
  Rational q = p.Complement();
  if (!q.IsZero()) {
    if (Condition(terms, variable, false, &branch)) {
      result += q;
    } else {
      Rational sub;
      QREL_RETURN_IF_ERROR(Shannon(branch, prob_true, ctx, &sub));
      result += q * sub;
    }
  }
  *out = std::move(result);
  return Status::Ok();
}

}  // namespace

StatusOr<Rational> ShannonDnfProbability(const Dnf& dnf,
                                         const std::vector<Rational>& prob_true,
                                         RunContext* ctx) {
  QREL_CHECK_EQ(static_cast<int>(prob_true.size()), dnf.variable_count());
  std::vector<Term> terms;
  terms.reserve(static_cast<size_t>(dnf.term_count()));
  for (int i = 0; i < dnf.term_count(); ++i) {
    if (dnf.term(i).empty()) {
      return Rational::One();  // the constant-true term
    }
    terms.push_back(dnf.term(i));
  }
  Rational result;
  QREL_RETURN_IF_ERROR(Shannon(terms, prob_true, ctx, &result));
  return result;
}

Rational ShannonDnfProbability(const Dnf& dnf,
                               const std::vector<Rational>& prob_true) {
  // Ungoverned runs cannot trip a budget.
  return std::move(ShannonDnfProbability(dnf, prob_true, nullptr)).value();
}

StatusOr<Rational> BruteForceDnfProbability(
    const Dnf& dnf, const std::vector<Rational>& prob_true, RunContext* ctx) {
  QREL_CHECK_EQ(static_cast<int>(prob_true.size()), dnf.variable_count());
  QREL_CHECK_LE(dnf.variable_count(), 25);
  size_t n = static_cast<size_t>(dnf.variable_count());

  Fingerprint fingerprint;
  fingerprint.Mix("propositional.brute_force");
  MixDnfContent(dnf, prob_true, &fingerprint);
  CheckpointScope checkpoint(ctx, "propositional.brute_force.v1",
                             fingerprint.value());

  Rational total;
  uint64_t start_code = 0;
  {
    std::optional<SnapshotReader> resume;
    QREL_RETURN_IF_ERROR(checkpoint.TakeResume(&resume));
    if (resume.has_value()) {
      QREL_RETURN_IF_ERROR(resume->U64(&start_code));
      QREL_RETURN_IF_ERROR(resume->RationalVal(&total));
      QREL_RETURN_IF_ERROR(resume->ExpectEnd());
    }
  }

  PropAssignment assignment(n, 0);
  for (uint64_t code = start_code; code < (uint64_t{1} << n); ++code) {
    // Checkpoint before charging: on resume the loop re-enters at `code`
    // and charges it again, so the work counter continues exactly.
    QREL_RETURN_IF_ERROR(checkpoint.MaybeCheckpoint([&](SnapshotWriter& w) {
      w.U64(code);  // this assignment not yet folded into `total`
      w.RationalVal(total);
    }));
    QREL_RETURN_IF_ERROR(ChargeWork(ctx));
    for (size_t i = 0; i < n; ++i) {
      assignment[i] = (code >> i) & 1u;
    }
    if (!dnf.Eval(assignment)) {
      continue;
    }
    Rational probability = Rational::One();
    for (size_t i = 0; i < n; ++i) {
      probability *=
          assignment[i] ? prob_true[i] : prob_true[i].Complement();
      if (probability.IsZero()) {
        break;
      }
    }
    total += probability;
  }
  return total;
}

Rational BruteForceDnfProbability(const Dnf& dnf,
                                  const std::vector<Rational>& prob_true) {
  return std::move(BruteForceDnfProbability(dnf, prob_true, nullptr)).value();
}

StatusOr<BigInt> CountDnfModels(const Dnf& dnf, RunContext* ctx) {
  std::vector<Rational> half(static_cast<size_t>(dnf.variable_count()),
                             Rational::Half());
  StatusOr<Rational> probability = ShannonDnfProbability(dnf, half, ctx);
  if (!probability.ok()) {
    return probability.status();
  }
  Rational count =
      *probability *
      Rational(BigInt::TwoPow(static_cast<uint32_t>(dnf.variable_count())),
               BigInt(1));
  QREL_CHECK(count.denominator().IsOne());
  return count.numerator();
}

BigInt CountDnfModels(const Dnf& dnf) {
  return std::move(CountDnfModels(dnf, nullptr)).value();
}

}  // namespace qrel
