#include "qrel/propositional/karp_luby.h"

#include <algorithm>
#include <cmath>

#include "qrel/util/check.h"
#include "qrel/util/fault_injection.h"
#include "qrel/util/snapshot.h"

namespace qrel {

uint64_t KarpLubySampleBound(int term_count, double epsilon, double delta) {
  QREL_CHECK_GT(term_count, 0);
  double t = 4.0 * term_count * std::log(2.0 / delta) / (epsilon * epsilon);
  QREL_CHECK(std::isfinite(t));
  return static_cast<uint64_t>(std::ceil(t));
}

double KarpLubyAchievedEpsilon(int term_count, uint64_t samples,
                               double delta) {
  QREL_CHECK_GT(term_count, 0);
  QREL_CHECK_GT(samples, 0u);
  // t = 4 m ln(2/δ) / ε²  solved for ε.
  return std::sqrt(4.0 * term_count * std::log(2.0 / delta) /
                   static_cast<double>(samples));
}

StatusOr<KarpLubyResult> KarpLubyProbability(
    const Dnf& dnf, const std::vector<Rational>& prob_true,
    const KarpLubyOptions& options) {
  if (static_cast<int>(prob_true.size()) != dnf.variable_count()) {
    return Status::InvalidArgument(
        "probability vector size does not match variable count");
  }
  if (options.epsilon <= 0.0 || options.epsilon >= 1.0 ||
      options.delta <= 0.0 || options.delta >= 1.0) {
    return Status::InvalidArgument("epsilon and delta must lie in (0, 1)");
  }
  for (const Rational& p : prob_true) {
    if (!p.IsProbability()) {
      return Status::InvalidArgument("variable probability outside [0, 1]");
    }
  }

  KarpLubyResult result;
  if (dnf.term_count() == 0) {
    return result;  // false: probability 0
  }

  // Exact per-term probabilities; drop zero-weight terms from sampling.
  std::vector<double> weight(static_cast<size_t>(dnf.term_count()), 0.0);
  std::vector<int> live_terms;
  double total_weight = 0.0;
  for (int i = 0; i < dnf.term_count(); ++i) {
    if (dnf.term(i).empty()) {
      // The constant-true term: Pr[φ] = 1 exactly.
      result.estimate = 1.0;
      result.total_term_weight = 1.0;
      return result;
    }
    double w = dnf.TermProbability(i, prob_true).ToDouble();
    weight[static_cast<size_t>(i)] = w;
    if (w > 0.0) {
      live_terms.push_back(i);
      total_weight += w;
    }
  }
  result.total_term_weight = total_weight;
  if (live_terms.empty()) {
    return result;  // every term impossible: probability 0
  }

  // Cumulative weights for sampling a term index.
  std::vector<double> cumulative(live_terms.size(), 0.0);
  double running = 0.0;
  for (size_t i = 0; i < live_terms.size(); ++i) {
    running += weight[static_cast<size_t>(live_terms[i])];
    cumulative[i] = running;
  }

  uint64_t samples =
      options.fixed_samples.has_value()
          ? *options.fixed_samples
          : KarpLubySampleBound(static_cast<int>(live_terms.size()),
                                options.epsilon, options.delta);
  if (samples == 0) {
    return Status::InvalidArgument("sample count must be positive");
  }

  // Checkpointable loop state: sample counter, accumulator, RNG. The
  // fingerprint pins everything the sample stream depends on; resuming
  // under different parameters would silently bias the estimate.
  Fingerprint fingerprint;
  fingerprint.Mix("propositional.karp_luby")
      .Mix(options.seed)
      .Mix(samples)
      .Mix(options.estimator == KarpLubyOptions::Estimator::kCanonical
               ? uint64_t{1}
               : uint64_t{0})
      .MixDouble(total_weight);
  MixDnfContent(dnf, prob_true, &fingerprint);
  CheckpointScope checkpoint(options.run_context, "propositional.karp_luby.v1",
                             fingerprint.value());

  Rng rng(options.seed);
  PropAssignment assignment(static_cast<size_t>(dnf.variable_count()), 0);
  double sum = 0.0;
  uint64_t drawn = 0;
  {
    std::optional<SnapshotReader> resume;
    QREL_RETURN_IF_ERROR(checkpoint.TakeResume(&resume));
    if (resume.has_value()) {
      QREL_RETURN_IF_ERROR(resume->U64(&drawn));
      QREL_RETURN_IF_ERROR(resume->Double(&sum));
      QREL_RETURN_IF_ERROR(resume->RngState(&rng));
      QREL_RETURN_IF_ERROR(resume->ExpectEnd());
    }
  }
  for (uint64_t s = drawn; s < samples; ++s) {
    QREL_FAULT_SITE("propositional.karp_luby.sample");
    if (options.run_context != nullptr) {
      Status budget = options.run_context->Charge();
      if (!budget.ok()) {
        // A prefix of the zero-one sample sequence is still an unbiased
        // estimator; keep it when the caller opted in (never for an
        // explicit cancellation).
        if (options.allow_truncation && drawn > 0 &&
            budget.code() != StatusCode::kCancelled) {
          result.truncated = true;
          break;
        }
        return budget;
      }
    }
    // Pick a term with probability proportional to its weight.
    double u = rng.NextDouble() * total_weight;
    size_t pick =
        static_cast<size_t>(std::lower_bound(cumulative.begin(),
                                             cumulative.end(), u) -
                            cumulative.begin());
    if (pick >= live_terms.size()) {
      pick = live_terms.size() - 1;  // guard against u == total_weight
    }
    int term_index = live_terms[pick];

    // Draw an assignment conditioned on that term being satisfied: the
    // term's literals are forced, all other variables are independent.
    for (int v = 0; v < dnf.variable_count(); ++v) {
      const Rational& p = prob_true[static_cast<size_t>(v)];
      bool value;
      if (p.denominator().FitsInt64()) {
        uint64_t den = static_cast<uint64_t>(p.denominator().ToInt64());
        uint64_t num = static_cast<uint64_t>(p.numerator().ToInt64());
        value = rng.NextBelow(den) < num;
      } else {
        value = rng.NextBernoulli(p.ToDouble());
      }
      assignment[static_cast<size_t>(v)] = value ? 1 : 0;
    }
    for (const PropLiteral& literal : dnf.term(term_index)) {
      assignment[static_cast<size_t>(literal.variable)] =
          literal.positive ? 1 : 0;
    }

    if (options.estimator == KarpLubyOptions::Estimator::kCanonical) {
      // 1 iff the sampled term is the first satisfied one.
      if (dnf.FirstSatisfiedTerm(assignment) == term_index) {
        sum += 1.0;
      }
    } else {
      int covered = dnf.SatisfiedTermCount(assignment);
      QREL_CHECK_GT(covered, 0);  // the sampled term is satisfied
      sum += 1.0 / covered;
    }
    ++drawn;
    QREL_RETURN_IF_ERROR(checkpoint.MaybeCheckpoint([&](SnapshotWriter& w) {
      w.U64(drawn);
      w.Double(sum);
      w.RngState(rng);
    }));
  }

  result.samples = drawn;
  result.estimate = total_weight * sum / static_cast<double>(drawn);
  // Probabilities cannot exceed 1; the estimator can (slightly).
  result.estimate = std::min(result.estimate, 1.0);
  return result;
}

StatusOr<KarpLubyResult> KarpLubyCount(const Dnf& dnf,
                                       const KarpLubyOptions& options) {
  std::vector<Rational> half(static_cast<size_t>(dnf.variable_count()),
                             Rational::Half());
  StatusOr<KarpLubyResult> result = KarpLubyProbability(dnf, half, options);
  if (!result.ok()) {
    return result;
  }
  double scale = std::ldexp(1.0, dnf.variable_count());
  result->estimate *= scale;
  result->total_term_weight *= scale;
  return result;
}

}  // namespace qrel
