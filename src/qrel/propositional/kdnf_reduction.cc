#include "qrel/propositional/kdnf_reduction.h"

#include <utility>

#include "qrel/util/check.h"

namespace qrel {

namespace {

// DNF of "val(Ȳ) < bound" over ℓ bits starting at `offset` (bit 0 least
// significant), following the construction in the proof of Theorem 5.3:
// one term per set bit i of `bound`, forcing Y_i = 0 and Y_j = 0 for every
// higher position j where `bound` has a zero bit.
std::vector<std::vector<PropLiteral>> LessThanDnf(const BigInt& bound,
                                                  int bits, int offset) {
  std::vector<std::vector<PropLiteral>> result;
  for (int i = 0; i < bits; ++i) {
    if (!bound.TestBit(static_cast<size_t>(i))) {
      continue;
    }
    std::vector<PropLiteral> term;
    term.push_back({offset + i, false});
    for (int j = i + 1; j < bits; ++j) {
      if (!bound.TestBit(static_cast<size_t>(j))) {
        term.push_back({offset + j, false});
      }
    }
    result.push_back(std::move(term));
  }
  return result;
}

// DNF of "val(Ȳ) ≥ bound": the all-ones-of-bound term (equality or above)
// plus, for every zero bit i of `bound`, a term forcing Y_i = 1 and Y_j = 1
// for every higher position j where `bound` has a one bit.
std::vector<std::vector<PropLiteral>> GreaterEqDnf(const BigInt& bound,
                                                   int bits, int offset) {
  std::vector<std::vector<PropLiteral>> result;
  std::vector<PropLiteral> ones;
  for (int j = 0; j < bits; ++j) {
    if (bound.TestBit(static_cast<size_t>(j))) {
      ones.push_back({offset + j, true});
    }
  }
  result.push_back(ones);
  for (int i = 0; i < bits; ++i) {
    if (bound.TestBit(static_cast<size_t>(i))) {
      continue;
    }
    std::vector<PropLiteral> term;
    term.push_back({offset + i, true});
    for (int j = i + 1; j < bits; ++j) {
      if (bound.TestBit(static_cast<size_t>(j))) {
        term.push_back({offset + j, true});
      }
    }
    result.push_back(std::move(term));
  }
  return result;
}

// Whether `value` is a power of two (value must be positive).
bool IsPowerOfTwo(const BigInt& value) {
  return value ==
         BigInt::TwoPow(static_cast<uint32_t>(value.BitLength() - 1));
}

}  // namespace

Rational KdnfReduction::RecoverProbability(const BigInt& model_count) const {
  BigInt illegal = total_assignments - legal_assignments;
  return Rational(model_count - illegal, legal_assignments);
}

double KdnfReduction::RecoverProbability(double model_count) const {
  double illegal = (total_assignments - legal_assignments).ToDouble();
  return (model_count - illegal) / legal_assignments.ToDouble();
}

StatusOr<KdnfReduction> ReduceProbKdnfToSharpDnf(
    const Dnf& dnf, const std::vector<Rational>& prob_true,
    size_t max_terms) {
  if (static_cast<int>(prob_true.size()) != dnf.variable_count()) {
    return Status::InvalidArgument(
        "probability vector size does not match variable count");
  }
  for (const Rational& p : prob_true) {
    if (!p.IsProbability()) {
      return Status::InvalidArgument("variable probability outside [0, 1]");
    }
  }

  KdnfReduction reduction;
  int variable_count = dnf.variable_count();
  reduction.bit_offset.resize(static_cast<size_t>(variable_count), 0);
  reduction.bit_width.resize(static_cast<size_t>(variable_count), 0);
  reduction.legal_assignments = BigInt(1);

  int bits = 0;
  for (int v = 0; v < variable_count; ++v) {
    const BigInt& q = prob_true[static_cast<size_t>(v)].denominator();
    // Dyadic denominators q = 2^ℓ get exactly ℓ bits (every assignment
    // legal, the paper's easy case, including ℓ = 0 for certain variables);
    // otherwise len(q) bits with the val ≥ q patterns declared illegal.
    int width = static_cast<int>(q.BitLength()) - (IsPowerOfTwo(q) ? 1 : 0);
    reduction.bit_offset[static_cast<size_t>(v)] = bits;
    reduction.bit_width[static_cast<size_t>(v)] = width;
    bits += width;
    reduction.legal_assignments = reduction.legal_assignments * q;
  }
  reduction.bit_count = bits;
  reduction.total_assignments = BigInt::TwoPow(static_cast<uint32_t>(bits));
  reduction.phi_pp = Dnf(bits);

  // φ': distribute each original term across the per-literal comparison
  // DNFs. Distinct variables own disjoint bit ranges, so merged terms are
  // always consistent.
  for (int t = 0; t < dnf.term_count(); ++t) {
    std::vector<std::vector<PropLiteral>> partial = {{}};
    for (const PropLiteral& literal : dnf.term(t)) {
      const Rational& p = prob_true[static_cast<size_t>(literal.variable)];
      int offset = reduction.bit_offset[static_cast<size_t>(literal.variable)];
      int width = reduction.bit_width[static_cast<size_t>(literal.variable)];
      std::vector<std::vector<PropLiteral>> replacement;
      if (width == 0) {
        // A certain variable (ν ∈ {0, 1} with denominator 1, or 2^0): the
        // literal is simply true or false.
        bool literal_true = literal.positive == p.numerator().IsOne();
        if (!literal_true) {
          replacement.clear();
        } else {
          replacement.push_back({});
        }
      } else {
        replacement = literal.positive
                          ? LessThanDnf(p.numerator(), width, offset)
                          : GreaterEqDnf(p.numerator(), width, offset);
      }
      std::vector<std::vector<PropLiteral>> next;
      for (const std::vector<PropLiteral>& left : partial) {
        for (const std::vector<PropLiteral>& right : replacement) {
          std::vector<PropLiteral> merged = left;
          merged.insert(merged.end(), right.begin(), right.end());
          next.push_back(std::move(merged));
          if (next.size() > max_terms) {
            return Status::OutOfRange("kDNF reduction exceeds term limit");
          }
        }
      }
      partial = std::move(next);
      if (partial.empty()) {
        break;  // a false literal replacement: the whole term vanishes
      }
    }
    for (std::vector<PropLiteral>& term : partial) {
      reduction.phi_pp.AddTerm(std::move(term));
      if (static_cast<size_t>(reduction.phi_pp.term_count()) > max_terms) {
        return Status::OutOfRange("kDNF reduction exceeds term limit");
      }
    }
  }

  // Absorb every illegal assignment: ⋁_X "val(Ȳ_X) ≥ q_X". Dyadic
  // variables have no illegal patterns and are skipped.
  for (int v = 0; v < variable_count; ++v) {
    const BigInt& q = prob_true[static_cast<size_t>(v)].denominator();
    if (IsPowerOfTwo(q)) {
      continue;
    }
    int offset = reduction.bit_offset[static_cast<size_t>(v)];
    int width = reduction.bit_width[static_cast<size_t>(v)];
    for (std::vector<PropLiteral>& term : GreaterEqDnf(q, width, offset)) {
      reduction.phi_pp.AddTerm(std::move(term));
      if (static_cast<size_t>(reduction.phi_pp.term_count()) > max_terms) {
        return Status::OutOfRange("kDNF reduction exceeds term limit");
      }
    }
  }

  return reduction;
}

}  // namespace qrel
