#include "qrel/propositional/dnf.h"

#include <algorithm>

#include "qrel/util/check.h"
#include "qrel/util/snapshot.h"

namespace qrel {

Dnf::Dnf(int variable_count) : variable_count_(variable_count) {
  QREL_CHECK_GE(variable_count, 0);
}

bool Dnf::AddTerm(std::vector<PropLiteral> literals) {
  std::sort(literals.begin(), literals.end());
  std::vector<PropLiteral> normalized;
  normalized.reserve(literals.size());
  for (const PropLiteral& literal : literals) {
    QREL_CHECK_GE(literal.variable, 0);
    QREL_CHECK_LT(literal.variable, variable_count_);
    if (!normalized.empty() &&
        normalized.back().variable == literal.variable) {
      if (normalized.back().positive != literal.positive) {
        return false;  // complementary pair: inconsistent term
      }
      continue;  // duplicate
    }
    normalized.push_back(literal);
  }
  terms_.push_back(std::move(normalized));
  return true;
}

int Dnf::Width() const {
  size_t width = 0;
  for (const std::vector<PropLiteral>& term : terms_) {
    width = std::max(width, term.size());
  }
  return static_cast<int>(width);
}

bool Dnf::TermSatisfied(int index, const PropAssignment& assignment) const {
  for (const PropLiteral& literal : terms_[static_cast<size_t>(index)]) {
    bool value = assignment[static_cast<size_t>(literal.variable)] != 0;
    if (value != literal.positive) {
      return false;
    }
  }
  return true;
}

bool Dnf::Eval(const PropAssignment& assignment) const {
  return FirstSatisfiedTerm(assignment) >= 0;
}

int Dnf::FirstSatisfiedTerm(const PropAssignment& assignment) const {
  for (int i = 0; i < term_count(); ++i) {
    if (TermSatisfied(i, assignment)) {
      return i;
    }
  }
  return -1;
}

int Dnf::SatisfiedTermCount(const PropAssignment& assignment) const {
  int count = 0;
  for (int i = 0; i < term_count(); ++i) {
    if (TermSatisfied(i, assignment)) {
      ++count;
    }
  }
  return count;
}

Rational Dnf::TermProbability(int index,
                              const std::vector<Rational>& prob_true) const {
  QREL_CHECK_EQ(static_cast<int>(prob_true.size()), variable_count_);
  Rational probability = Rational::One();
  for (const PropLiteral& literal : terms_[static_cast<size_t>(index)]) {
    const Rational& p = prob_true[static_cast<size_t>(literal.variable)];
    probability *= literal.positive ? p : p.Complement();
    if (probability.IsZero()) {
      break;
    }
  }
  return probability;
}

int Dnf::RemoveSubsumedTerms() {
  // Terms are normalized (sorted, duplicate-free), so subset testing is a
  // linear merge. Keep the shorter (more general) term of any comparable
  // pair; among equal terms keep the first.
  auto subset_of = [](const std::vector<PropLiteral>& small,
                      const std::vector<PropLiteral>& large) {
    size_t j = 0;
    for (const PropLiteral& literal : small) {
      while (j < large.size() && large[j] < literal) {
        ++j;
      }
      if (j == large.size() || !(large[j] == literal)) {
        return false;
      }
      ++j;
    }
    return true;
  };

  std::vector<bool> dead(terms_.size(), false);
  for (size_t i = 0; i < terms_.size(); ++i) {
    if (dead[i]) continue;
    for (size_t j = 0; j < terms_.size(); ++j) {
      if (i == j || dead[j]) continue;
      if (terms_[i].size() <= terms_[j].size() &&
          subset_of(terms_[i], terms_[j])) {
        dead[j] = true;
      }
    }
  }
  int removed = 0;
  std::vector<std::vector<PropLiteral>> kept;
  kept.reserve(terms_.size());
  for (size_t i = 0; i < terms_.size(); ++i) {
    if (dead[i]) {
      ++removed;
    } else {
      kept.push_back(std::move(terms_[i]));
    }
  }
  terms_ = std::move(kept);
  return removed;
}

PropAssignment SampleAssignment(const std::vector<Rational>& prob_true,
                                Rng* rng) {
  QREL_CHECK(rng != nullptr);
  PropAssignment assignment(prob_true.size(), 0);
  for (size_t i = 0; i < prob_true.size(); ++i) {
    const Rational& p = prob_true[i];
    bool value;
    if (p.denominator().FitsInt64()) {
      uint64_t den = static_cast<uint64_t>(p.denominator().ToInt64());
      uint64_t num = static_cast<uint64_t>(p.numerator().ToInt64());
      value = den == 1 ? !p.IsZero() : rng->NextBelow(den) < num;
    } else {
      value = rng->NextBernoulli(p.ToDouble());
    }
    assignment[i] = value ? 1 : 0;
  }
  return assignment;
}

void MixDnfContent(const Dnf& dnf, const std::vector<Rational>& prob_true,
                   Fingerprint* fp) {
  QREL_CHECK(fp != nullptr);
  QREL_CHECK_EQ(prob_true.size(),
                static_cast<size_t>(dnf.variable_count()));
  fp->Mix(static_cast<uint64_t>(dnf.variable_count()));
  fp->Mix(static_cast<uint64_t>(dnf.term_count()));
  for (const std::vector<PropLiteral>& term : dnf.terms()) {
    fp->Mix(static_cast<uint64_t>(term.size()));
    for (const PropLiteral& literal : term) {
      fp->Mix((static_cast<uint64_t>(static_cast<uint32_t>(literal.variable))
               << 1) |
              (literal.positive ? 1u : 0u));
    }
  }
  for (const Rational& p : prob_true) {
    fp->MixRational(p);
  }
}

}  // namespace qrel
