// The Karp-Luby FPTRAS for DNF (Theorem 5.2) in its weighted form: a fully
// polynomial-time randomized approximation scheme for the probability of a
// DNF formula under independent per-variable probabilities, and the
// classical unweighted #DNF counting instance as a special case.
//
// Importance sampling over the union of the terms' satisfying sets:
//
//   S = Σ_i Pr[T_i]                     (total term weight)
//   sample i with probability Pr[T_i]/S, then an assignment w ~ (· | T_i);
//   canonical estimator  X = 1{ i == min{ j : w ⊨ T_j } }
//   coverage estimator   X = 1 / |{ j : w ⊨ T_j }|
//
// Both satisfy E[S·X] = Pr[φ] and S·X ≤ S ≤ m·Pr[φ], so by the
// Karp-Luby-Madras zero-one estimator theorem t = ⌈4 m ln(2/δ) / ε²⌉
// samples give relative error ε with probability ≥ 1-δ. The coverage
// estimator has no larger variance and is the default.

#ifndef QREL_PROPOSITIONAL_KARP_LUBY_H_
#define QREL_PROPOSITIONAL_KARP_LUBY_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "qrel/propositional/dnf.h"
#include "qrel/util/bigint.h"
#include "qrel/util/status.h"

namespace qrel {

struct KarpLubyOptions {
  // Target relative error and failure probability; both must be in (0, 1).
  double epsilon = 0.05;
  double delta = 0.05;
  uint64_t seed = 1;

  enum class Estimator { kCoverage, kCanonical };
  Estimator estimator = Estimator::kCoverage;

  // Overrides the Karp-Luby-Madras sample count when set (used by the
  // benchmark harness for equal-budget comparisons).
  std::optional<uint64_t> fixed_samples;
};

struct KarpLubyResult {
  // The estimate of Pr[φ] (or of the model count for KarpLubyCount).
  double estimate = 0.0;
  uint64_t samples = 0;
  // S = Σ_i Pr[T_i], the importance-sampling normalizer.
  double total_term_weight = 0.0;
};

// Estimates Pr[φ] for `dnf` under `prob_true`. Exact corner cases (no
// terms, an empty term, zero total weight) return without sampling.
StatusOr<KarpLubyResult> KarpLubyProbability(
    const Dnf& dnf, const std::vector<Rational>& prob_true,
    const KarpLubyOptions& options);

// Estimates the number of satisfying assignments of `dnf` (#DNF): the
// uniform-probability instance scaled by 2^variable_count.
StatusOr<KarpLubyResult> KarpLubyCount(const Dnf& dnf,
                                       const KarpLubyOptions& options);

// The Karp-Luby-Madras sample bound t(m, ε, δ) = ⌈4 m ln(2/δ) / ε²⌉.
uint64_t KarpLubySampleBound(int term_count, double epsilon, double delta);

}  // namespace qrel

#endif  // QREL_PROPOSITIONAL_KARP_LUBY_H_
