// The Karp-Luby FPTRAS for DNF (Theorem 5.2) in its weighted form: a fully
// polynomial-time randomized approximation scheme for the probability of a
// DNF formula under independent per-variable probabilities, and the
// classical unweighted #DNF counting instance as a special case.
//
// Importance sampling over the union of the terms' satisfying sets:
//
//   S = Σ_i Pr[T_i]                     (total term weight)
//   sample i with probability Pr[T_i]/S, then an assignment w ~ (· | T_i);
//   canonical estimator  X = 1{ i == min{ j : w ⊨ T_j } }
//   coverage estimator   X = 1 / |{ j : w ⊨ T_j }|
//
// Both satisfy E[S·X] = Pr[φ] and S·X ≤ S ≤ m·Pr[φ], so by the
// Karp-Luby-Madras zero-one estimator theorem t = ⌈4 m ln(2/δ) / ε²⌉
// samples give relative error ε with probability ≥ 1-δ. The coverage
// estimator has no larger variance and is the default.

#ifndef QREL_PROPOSITIONAL_KARP_LUBY_H_
#define QREL_PROPOSITIONAL_KARP_LUBY_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "qrel/propositional/dnf.h"
#include "qrel/util/bigint.h"
#include "qrel/util/run_context.h"
#include "qrel/util/status.h"

namespace qrel {

struct KarpLubyOptions {
  // Target relative error and failure probability; both must be in (0, 1).
  double epsilon = 0.05;
  double delta = 0.05;
  uint64_t seed = 1;

  enum class Estimator { kCoverage, kCanonical };
  Estimator estimator = Estimator::kCoverage;

  // Overrides the Karp-Luby-Madras sample count when set (used by the
  // benchmark harness for equal-budget comparisons).
  std::optional<uint64_t> fixed_samples;

  // Execution envelope (non-owning, nullable): one work unit is charged
  // per sample drawn.
  RunContext* run_context = nullptr;

  // When the envelope trips mid-loop and at least one sample completed,
  // return the running estimate (marked `truncated`) instead of the budget
  // error. Sound because each zero-one sample is independent and the
  // estimator stays unbiased at any prefix of the sample sequence; only
  // the (ε, δ) guarantee weakens — see KarpLubyAchievedEpsilon.
  // Cancellation is never converted into a truncated result.
  bool allow_truncation = false;
};

struct KarpLubyResult {
  // The estimate of Pr[φ] (or of the model count for KarpLubyCount).
  double estimate = 0.0;
  uint64_t samples = 0;
  // S = Σ_i Pr[T_i], the importance-sampling normalizer.
  double total_term_weight = 0.0;
  // The sampling loop stopped early on a tripped budget; `samples` is the
  // number actually incorporated into `estimate`.
  bool truncated = false;
};

// Estimates Pr[φ] for `dnf` under `prob_true`. Exact corner cases (no
// terms, an empty term, zero total weight) return without sampling.
StatusOr<KarpLubyResult> KarpLubyProbability(
    const Dnf& dnf, const std::vector<Rational>& prob_true,
    const KarpLubyOptions& options);

// Estimates the number of satisfying assignments of `dnf` (#DNF): the
// uniform-probability instance scaled by 2^variable_count.
StatusOr<KarpLubyResult> KarpLubyCount(const Dnf& dnf,
                                       const KarpLubyOptions& options);

// The Karp-Luby-Madras sample bound t(m, ε, δ) = ⌈4 m ln(2/δ) / ε²⌉.
uint64_t KarpLubySampleBound(int term_count, double epsilon, double delta);

// Inverts the sample bound: the relative error ε actually guaranteed (at
// failure probability δ) by `samples` zero-one samples over `term_count`
// terms — the error bar of a truncated run.
double KarpLubyAchievedEpsilon(int term_count, uint64_t samples,
                               double delta);

}  // namespace qrel

#endif  // QREL_PROPOSITIONAL_KARP_LUBY_H_
