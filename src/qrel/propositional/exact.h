// Exact baselines for DNF probability and model counting.
//
// These are the oracles the randomized algorithms are validated and
// benchmarked against. ShannonDnfProbability decomposes on variables
// (exponential worst case but with heavy pruning); BruteForceDnfProbability
// enumerates all assignments (an independent second opinion used in tests).

#ifndef QREL_PROPOSITIONAL_EXACT_H_
#define QREL_PROPOSITIONAL_EXACT_H_

#include <vector>

#include "qrel/propositional/dnf.h"
#include "qrel/util/bigint.h"
#include "qrel/util/rational.h"

namespace qrel {

// Exact Pr[φ] under independent per-variable probabilities, by Shannon
// expansion with formula simplification.
Rational ShannonDnfProbability(const Dnf& dnf,
                               const std::vector<Rational>& prob_true);

// Exact Pr[φ] by enumerating all 2^variable_count assignments. Aborts if
// variable_count > 25 (use ShannonDnfProbability instead).
Rational BruteForceDnfProbability(const Dnf& dnf,
                                  const std::vector<Rational>& prob_true);

// Exact number of satisfying assignments (#DNF), via Shannon expansion
// with uniform probabilities: count = Pr[φ] · 2^variable_count.
BigInt CountDnfModels(const Dnf& dnf);

}  // namespace qrel

#endif  // QREL_PROPOSITIONAL_EXACT_H_
