// Exact baselines for DNF probability and model counting.
//
// These are the oracles the randomized algorithms are validated and
// benchmarked against. ShannonDnfProbability decomposes on variables
// (exponential worst case but with heavy pruning); BruteForceDnfProbability
// enumerates all assignments (an independent second opinion used in tests).

#ifndef QREL_PROPOSITIONAL_EXACT_H_
#define QREL_PROPOSITIONAL_EXACT_H_

#include <vector>

#include "qrel/propositional/dnf.h"
#include "qrel/util/bigint.h"
#include "qrel/util/rational.h"
#include "qrel/util/run_context.h"
#include "qrel/util/status.h"

namespace qrel {

// Exact Pr[φ] under independent per-variable probabilities, by Shannon
// expansion with formula simplification.
Rational ShannonDnfProbability(const Dnf& dnf,
                               const std::vector<Rational>& prob_true);

// Governed variant: charges one work unit per Shannon expansion node to
// `ctx` (nullable) and stops early with the budget status when the
// envelope trips.
StatusOr<Rational> ShannonDnfProbability(const Dnf& dnf,
                                         const std::vector<Rational>& prob_true,
                                         RunContext* ctx);

// Exact Pr[φ] by enumerating all 2^variable_count assignments. Aborts if
// variable_count > 25 (use ShannonDnfProbability instead).
Rational BruteForceDnfProbability(const Dnf& dnf,
                                  const std::vector<Rational>& prob_true);

// Governed variant: charges one work unit per enumerated assignment.
StatusOr<Rational> BruteForceDnfProbability(
    const Dnf& dnf, const std::vector<Rational>& prob_true, RunContext* ctx);

// Exact number of satisfying assignments (#DNF), via Shannon expansion
// with uniform probabilities: count = Pr[φ] · 2^variable_count.
BigInt CountDnfModels(const Dnf& dnf);

// Governed variant of CountDnfModels.
StatusOr<BigInt> CountDnfModels(const Dnf& dnf, RunContext* ctx);

}  // namespace qrel

#endif  // QREL_PROPOSITIONAL_EXACT_H_
