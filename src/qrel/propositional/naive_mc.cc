#include "qrel/propositional/naive_mc.h"

#include "qrel/util/fault_injection.h"
#include "qrel/util/snapshot.h"

namespace qrel {

StatusOr<NaiveMcResult> NaiveMcProbability(
    const Dnf& dnf, const std::vector<Rational>& prob_true, uint64_t samples,
    uint64_t seed, RunContext* ctx, bool allow_truncation) {
  if (static_cast<int>(prob_true.size()) != dnf.variable_count()) {
    return Status::InvalidArgument(
        "probability vector size does not match variable count");
  }
  if (samples == 0) {
    return Status::InvalidArgument("sample count must be positive");
  }
  for (const Rational& p : prob_true) {
    if (!p.IsProbability()) {
      return Status::InvalidArgument("variable probability outside [0, 1]");
    }
  }
  Fingerprint fingerprint;
  fingerprint.Mix("propositional.naive_mc").Mix(seed).Mix(samples);
  MixDnfContent(dnf, prob_true, &fingerprint);
  CheckpointScope checkpoint(ctx, "propositional.naive_mc.v1",
                             fingerprint.value());

  Rng rng(seed);
  NaiveMcResult result;
  uint64_t drawn = 0;
  {
    std::optional<SnapshotReader> resume;
    QREL_RETURN_IF_ERROR(checkpoint.TakeResume(&resume));
    if (resume.has_value()) {
      QREL_RETURN_IF_ERROR(resume->U64(&drawn));
      QREL_RETURN_IF_ERROR(resume->U64(&result.hits));
      QREL_RETURN_IF_ERROR(resume->RngState(&rng));
      QREL_RETURN_IF_ERROR(resume->ExpectEnd());
    }
  }
  for (uint64_t s = drawn; s < samples; ++s) {
    QREL_FAULT_SITE("propositional.naive_mc.sample");
    if (ctx != nullptr) {
      Status budget = ctx->Charge();
      if (!budget.ok()) {
        if (allow_truncation && drawn > 0 &&
            budget.code() != StatusCode::kCancelled) {
          result.truncated = true;
          break;
        }
        return budget;
      }
    }
    PropAssignment assignment = SampleAssignment(prob_true, &rng);
    if (dnf.Eval(assignment)) {
      ++result.hits;
    }
    ++drawn;
    QREL_RETURN_IF_ERROR(checkpoint.MaybeCheckpoint([&](SnapshotWriter& w) {
      w.U64(drawn);
      w.U64(result.hits);
      w.RngState(rng);
    }));
  }
  result.samples = drawn;
  result.estimate =
      static_cast<double>(result.hits) / static_cast<double>(drawn);
  return result;
}

}  // namespace qrel
