#include "qrel/propositional/naive_mc.h"

#include "qrel/util/fault_injection.h"

namespace qrel {

StatusOr<NaiveMcResult> NaiveMcProbability(
    const Dnf& dnf, const std::vector<Rational>& prob_true, uint64_t samples,
    uint64_t seed, RunContext* ctx, bool allow_truncation) {
  if (static_cast<int>(prob_true.size()) != dnf.variable_count()) {
    return Status::InvalidArgument(
        "probability vector size does not match variable count");
  }
  if (samples == 0) {
    return Status::InvalidArgument("sample count must be positive");
  }
  for (const Rational& p : prob_true) {
    if (!p.IsProbability()) {
      return Status::InvalidArgument("variable probability outside [0, 1]");
    }
  }
  Rng rng(seed);
  NaiveMcResult result;
  uint64_t drawn = 0;
  for (uint64_t s = 0; s < samples; ++s) {
    QREL_FAULT_SITE("propositional.naive_mc.sample");
    if (ctx != nullptr) {
      Status budget = ctx->Charge();
      if (!budget.ok()) {
        if (allow_truncation && drawn > 0 &&
            budget.code() != StatusCode::kCancelled) {
          result.truncated = true;
          break;
        }
        return budget;
      }
    }
    PropAssignment assignment = SampleAssignment(prob_true, &rng);
    if (dnf.Eval(assignment)) {
      ++result.hits;
    }
    ++drawn;
  }
  result.samples = drawn;
  result.estimate =
      static_cast<double>(result.hits) / static_cast<double>(drawn);
  return result;
}

}  // namespace qrel
