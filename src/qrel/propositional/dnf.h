// Propositional formulas in disjunctive normal form over dense integer
// variables, with per-variable truth probabilities.
//
// This is the target language of the Theorem 5.4 grounding (variables are
// error-model entry ids there) and the input language of the Karp-Luby
// estimators (Theorem 5.2), the exact baselines, and the Theorem 5.3
// reduction.

#ifndef QREL_PROPOSITIONAL_DNF_H_
#define QREL_PROPOSITIONAL_DNF_H_

#include <cstdint>
#include <vector>

#include "qrel/util/rational.h"
#include "qrel/util/rng.h"

namespace qrel {

struct PropLiteral {
  int variable = 0;
  bool positive = true;

  bool operator==(const PropLiteral& other) const {
    return variable == other.variable && positive == other.positive;
  }
  bool operator<(const PropLiteral& other) const {
    if (variable != other.variable) return variable < other.variable;
    return positive < other.positive;
  }
};

// One truth assignment; index i holds the value of variable i.
using PropAssignment = std::vector<uint8_t>;

// A DNF formula: a disjunction of consistent conjunctive terms.
class Dnf {
 public:
  explicit Dnf(int variable_count);

  int variable_count() const { return variable_count_; }
  int term_count() const { return static_cast<int>(terms_.size()); }
  const std::vector<PropLiteral>& term(int index) const {
    return terms_[static_cast<size_t>(index)];
  }
  const std::vector<std::vector<PropLiteral>>& terms() const {
    return terms_;
  }

  // Normalizes the term (sorts by variable, merges duplicates) and appends
  // it. Returns false — and adds nothing — if the term contains a
  // complementary pair of literals (an inconsistent term contributes
  // nothing to a disjunction). The empty term is the constant true and is
  // allowed. Variables must be in [0, variable_count).
  bool AddTerm(std::vector<PropLiteral> literals);

  // The k of kDNF: maximum number of literals in any term (0 if no terms).
  int Width() const;

  // Whether `term(index)` is satisfied by `assignment`.
  bool TermSatisfied(int index, const PropAssignment& assignment) const;
  // Whether any term is satisfied.
  bool Eval(const PropAssignment& assignment) const;
  // Index of the first satisfied term, or -1.
  int FirstSatisfiedTerm(const PropAssignment& assignment) const;
  // Number of satisfied terms.
  int SatisfiedTermCount(const PropAssignment& assignment) const;

  // Pr[term] under independent per-variable probabilities `prob_true`
  // (which must have variable_count() entries): the product over the
  // term's literals. The empty term has probability 1.
  Rational TermProbability(int index,
                           const std::vector<Rational>& prob_true) const;

  // Removes terms subsumed by another term (T ⊆ T' as literal sets makes
  // T' redundant: T' ⟹ T). Preserves Pr[φ] exactly while shrinking the
  // term count m — and with it the Karp-Luby sample bound 4m·ln(2/δ)/ε².
  // Returns the number of removed terms. O(m²·width).
  int RemoveSubsumedTerms();

 private:
  int variable_count_;
  std::vector<std::vector<PropLiteral>> terms_;
};

// Draws an assignment from the product distribution given by `prob_true`.
// Exact (integer-threshold) draws when denominators fit in 64 bits.
PropAssignment SampleAssignment(const std::vector<Rational>& prob_true,
                                Rng* rng);

class Fingerprint;

// Mixes the full instance content — every term's literals and every
// variable's probability, not just the counts — into `fp`, so two DNF
// instances with the same shape but different formulas or probabilities
// get different resume fingerprints. `prob_true` must have
// dnf.variable_count() entries.
void MixDnfContent(const Dnf& dnf, const std::vector<Rational>& prob_true,
                   Fingerprint* fp);

}  // namespace qrel

#endif  // QREL_PROPOSITIONAL_DNF_H_
