// Query evaluation (data complexity): evaluating a fixed compiled query on
// a database or possible world.
//
// CompiledQuery resolves relation names against a vocabulary once and maps
// variables to dense environment slots, so repeated evaluation (the inner
// loop of every Monte Carlo estimator) does no string work. Evaluation
// reads atom truth through the AtomOracle interface, so it runs unchanged
// on the observed database (Structure) and on possible worlds (WorldView).

#ifndef QREL_LOGIC_EVAL_H_
#define QREL_LOGIC_EVAL_H_

#include <memory>
#include <string>
#include <vector>

#include "qrel/logic/ast.h"
#include "qrel/relational/structure.h"
#include "qrel/util/status.h"

namespace qrel {

class CompiledQuery {
 public:
  // Validates `formula` against `vocabulary` (all relations exist with
  // matching arities) and prepares it for evaluation. The query's free
  // variables, in first-appearance order, become the answer-tuple columns.
  static StatusOr<CompiledQuery> Compile(FormulaPtr formula,
                                         const Vocabulary& vocabulary);

  CompiledQuery(CompiledQuery&&) = default;
  CompiledQuery& operator=(CompiledQuery&&) = default;

  const FormulaPtr& formula() const { return formula_; }
  const std::vector<std::string>& free_variables() const {
    return free_variables_;
  }
  // Number of free variables (the k of a k-ary query).
  int arity() const { return static_cast<int>(free_variables_.size()); }

  // Truth of ψ(ā) on the database `oracle`, where `assignment` supplies the
  // values of the free variables in free_variables() order. Must have
  // exactly arity() entries (empty for Boolean queries).
  bool Eval(const AtomOracle& oracle, const Tuple& assignment) const;

  // ψ^𝔄 = { ā : 𝔄 ⊨ ψ(ā) } in lexicographic tuple order. Enumerates all
  // n^arity assignments.
  std::vector<Tuple> AnswerSet(const AtomOracle& oracle) const;

 private:
  struct CompiledTerm {
    bool is_slot = false;
    int slot = 0;        // environment index if is_slot
    Element constant = 0;  // otherwise
  };
  struct Node {
    FormulaKind kind;
    int relation = -1;                 // kAtom
    std::vector<CompiledTerm> terms;   // kAtom / kEquals
    std::vector<std::unique_ptr<Node>> children;
    int slot = -1;  // kExists / kForAll: environment index of bound variable
  };

  CompiledQuery() = default;

  static StatusOr<std::unique_ptr<Node>> CompileNode(
      const Formula& formula, const Vocabulary& vocabulary,
      std::vector<std::pair<std::string, int>>* scope, int* next_slot);

  bool EvalNode(const Node& node, const AtomOracle& oracle,
                std::vector<Element>* env) const;

  FormulaPtr formula_;
  std::vector<std::string> free_variables_;
  std::unique_ptr<Node> root_;
  int slot_count_ = 0;
};

}  // namespace qrel

#endif  // QREL_LOGIC_EVAL_H_
