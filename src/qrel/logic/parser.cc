#include "qrel/logic/parser.h"

#include <cctype>
#include <new>
#include <string>
#include <vector>

#include "qrel/util/fault_injection.h"

namespace qrel {

namespace {

// The recursive-descent parser recurses once per nesting level ("!", "(",
// quantifier bodies, right-associative "->"), so an adversarial
// "((((..." or "!!!!..." input would otherwise turn into unbounded native
// stack growth. Far deeper than any legitimate formula, far shallower than
// any stack limit.
constexpr int kMaxNestingDepth = 256;

enum class TokenKind {
  kIdent,
  kInteger,
  kLParen,
  kRParen,
  kComma,
  kDot,
  kBang,       // !
  kAmp,        // &
  kPipe,       // |
  kArrow,      // ->
  kIffArrow,   // <->
  kEquals,     // =
  kNotEquals,  // !=
  kEnd,
};

struct Token {
  TokenKind kind;
  std::string text;
  size_t position;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  Status Tokenize(std::vector<Token>* tokens) {
    size_t pos = 0;
    while (pos < text_.size()) {
      char c = text_[pos];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos;
        continue;
      }
      size_t start = pos;
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        while (pos < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[pos])) ||
                text_[pos] == '_' || text_[pos] == '\'')) {
          ++pos;
        }
        tokens->push_back({TokenKind::kIdent,
                           std::string(text_.substr(start, pos - start)),
                           start});
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) || c == '#') {
        if (c == '#') {
          ++pos;
          start = pos;
        }
        if (pos >= text_.size() ||
            !std::isdigit(static_cast<unsigned char>(text_[pos]))) {
          return Error(start, "expected digits after '#'");
        }
        while (pos < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos]))) {
          ++pos;
        }
        tokens->push_back({TokenKind::kInteger,
                           std::string(text_.substr(start, pos - start)),
                           start});
        continue;
      }
      switch (c) {
        case '(':
          tokens->push_back({TokenKind::kLParen, "(", pos++});
          break;
        case ')':
          tokens->push_back({TokenKind::kRParen, ")", pos++});
          break;
        case ',':
          tokens->push_back({TokenKind::kComma, ",", pos++});
          break;
        case '.':
          tokens->push_back({TokenKind::kDot, ".", pos++});
          break;
        case '&':
          tokens->push_back({TokenKind::kAmp, "&", pos++});
          break;
        case '|':
          tokens->push_back({TokenKind::kPipe, "|", pos++});
          break;
        case '=':
          tokens->push_back({TokenKind::kEquals, "=", pos++});
          break;
        case '!':
          if (pos + 1 < text_.size() && text_[pos + 1] == '=') {
            tokens->push_back({TokenKind::kNotEquals, "!=", pos});
            pos += 2;
          } else {
            tokens->push_back({TokenKind::kBang, "!", pos++});
          }
          break;
        case '-':
          if (pos + 1 < text_.size() && text_[pos + 1] == '>') {
            tokens->push_back({TokenKind::kArrow, "->", pos});
            pos += 2;
          } else {
            return Error(pos, "expected '->' after '-'");
          }
          break;
        case '<':
          if (pos + 2 < text_.size() && text_[pos + 1] == '-' &&
              text_[pos + 2] == '>') {
            tokens->push_back({TokenKind::kIffArrow, "<->", pos});
            pos += 3;
          } else {
            return Error(pos, "expected '<->' after '<'");
          }
          break;
        default:
          return Error(pos, std::string("unexpected character '") + c + "'");
      }
    }
    tokens->push_back({TokenKind::kEnd, "", text_.size()});
    return Status::Ok();
  }

 private:
  Status Error(size_t position, const std::string& message) {
    return Status::InvalidArgument("at position " + std::to_string(position) +
                                   ": " + message);
  }

  std::string_view text_;
};

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  StatusOr<FormulaPtr> Parse() {
    StatusOr<FormulaPtr> formula = ParseIff();
    if (!formula.ok()) {
      return formula;
    }
    if (Peek().kind != TokenKind::kEnd) {
      return Error("unexpected trailing input '" + Peek().text + "'");
    }
    return formula;
  }

 private:
  // Counts live recursion frames along the grammar's cycles; every
  // recursive production enters one of the guarded rules below.
  class DepthFrame {
   public:
    explicit DepthFrame(int* depth) : depth_(depth) { ++*depth_; }
    ~DepthFrame() { --*depth_; }
    DepthFrame(const DepthFrame&) = delete;
    DepthFrame& operator=(const DepthFrame&) = delete;

   private:
    int* depth_;
  };

  Status CheckDepth() const {
    if (depth_ > kMaxNestingDepth) {
      return Status::InvalidArgument("formula nesting too deep");
    }
    return Status::Ok();
  }

  const Token& Peek() const { return tokens_[index_]; }
  const Token& Advance() { return tokens_[index_++]; }
  bool Match(TokenKind kind) {
    if (Peek().kind == kind) {
      ++index_;
      return true;
    }
    return false;
  }

  Status Error(const std::string& message) const {
    return Status::InvalidArgument("at position " +
                                   std::to_string(Peek().position) + ": " +
                                   message);
  }

  StatusOr<FormulaPtr> ParseIff() {
    DepthFrame frame(&depth_);
    QREL_RETURN_IF_ERROR(CheckDepth());
    StatusOr<FormulaPtr> left = ParseImplies();
    if (!left.ok()) return left;
    FormulaPtr result = *left;
    while (Match(TokenKind::kIffArrow)) {
      StatusOr<FormulaPtr> right = ParseImplies();
      if (!right.ok()) return right;
      result = Iff(result, *right);
    }
    return result;
  }

  StatusOr<FormulaPtr> ParseImplies() {
    DepthFrame frame(&depth_);
    QREL_RETURN_IF_ERROR(CheckDepth());
    StatusOr<FormulaPtr> left = ParseOr();
    if (!left.ok()) return left;
    if (Match(TokenKind::kArrow)) {
      // Right-associative: a -> b -> c parses as a -> (b -> c).
      StatusOr<FormulaPtr> right = ParseImplies();
      if (!right.ok()) return right;
      return Implies(*left, *right);
    }
    return left;
  }

  StatusOr<FormulaPtr> ParseOr() {
    StatusOr<FormulaPtr> first = ParseAnd();
    if (!first.ok()) return first;
    std::vector<FormulaPtr> operands = {*first};
    while (Match(TokenKind::kPipe)) {
      StatusOr<FormulaPtr> next = ParseAnd();
      if (!next.ok()) return next;
      operands.push_back(*next);
    }
    return Or(std::move(operands));
  }

  StatusOr<FormulaPtr> ParseAnd() {
    StatusOr<FormulaPtr> first = ParseUnary();
    if (!first.ok()) return first;
    std::vector<FormulaPtr> operands = {*first};
    while (Match(TokenKind::kAmp)) {
      StatusOr<FormulaPtr> next = ParseUnary();
      if (!next.ok()) return next;
      operands.push_back(*next);
    }
    return And(std::move(operands));
  }

  StatusOr<FormulaPtr> ParseUnary() {
    DepthFrame frame(&depth_);
    QREL_RETURN_IF_ERROR(CheckDepth());
    if (Match(TokenKind::kBang)) {
      StatusOr<FormulaPtr> operand = ParseUnary();
      if (!operand.ok()) return operand;
      return Not(*operand);
    }
    if (Peek().kind == TokenKind::kIdent &&
        (Peek().text == "exists" || Peek().text == "forall")) {
      return ParseQuantifier();
    }
    return ParsePrimary();
  }

  StatusOr<FormulaPtr> ParseQuantifier() {
    bool is_exists = Advance().text == "exists";
    std::vector<std::string> variables;
    while (Peek().kind == TokenKind::kIdent && Peek().text != "exists" &&
           Peek().text != "forall") {
      variables.push_back(Advance().text);
    }
    if (variables.empty()) {
      return Error("quantifier needs at least one variable");
    }
    if (!Match(TokenKind::kDot)) {
      return Error("expected '.' after quantified variables");
    }
    // The quantifier scopes over the longest formula to its right.
    StatusOr<FormulaPtr> body = ParseIff();
    if (!body.ok()) return body;
    return is_exists ? Exists(variables, *body) : ForAll(variables, *body);
  }

  StatusOr<FormulaPtr> ParsePrimary() {
    const Token& token = Peek();
    if (token.kind == TokenKind::kLParen) {
      Advance();
      StatusOr<FormulaPtr> inner = ParseIff();
      if (!inner.ok()) return inner;
      // A parenthesized term may continue as an equality: "(x) = y" is not
      // supported; parentheses group formulas only.
      if (!Match(TokenKind::kRParen)) {
        return Error("expected ')'");
      }
      return inner;
    }
    if (token.kind == TokenKind::kIdent) {
      if (token.text == "true") {
        Advance();
        return True();
      }
      if (token.text == "false") {
        Advance();
        return False();
      }
      // Relation atom or a variable starting an equality.
      if (tokens_[index_ + 1].kind == TokenKind::kLParen) {
        return ParseAtom();
      }
      return ParseEquality();
    }
    if (token.kind == TokenKind::kInteger) {
      return ParseEquality();
    }
    return Error("expected a formula, found '" + token.text + "'");
  }

  StatusOr<FormulaPtr> ParseAtom() {
    std::string relation = Advance().text;
    if (!Match(TokenKind::kLParen)) {
      return Error("expected '(' after relation name");
    }
    std::vector<Term> args;
    if (!Match(TokenKind::kRParen)) {
      for (;;) {
        StatusOr<Term> term = ParseTerm();
        if (!term.ok()) return term.status();
        args.push_back(*term);
        if (Match(TokenKind::kRParen)) {
          break;
        }
        if (!Match(TokenKind::kComma)) {
          return Error("expected ',' or ')' in argument list");
        }
      }
    }
    return Atom(std::move(relation), std::move(args));
  }

  StatusOr<FormulaPtr> ParseEquality() {
    StatusOr<Term> left = ParseTerm();
    if (!left.ok()) return left.status();
    if (Match(TokenKind::kEquals)) {
      StatusOr<Term> right = ParseTerm();
      if (!right.ok()) return right.status();
      return Equals(*left, *right);
    }
    if (Match(TokenKind::kNotEquals)) {
      StatusOr<Term> right = ParseTerm();
      if (!right.ok()) return right.status();
      return Not(Equals(*left, *right));
    }
    return Error("expected '=' or '!=' after term");
  }

  StatusOr<Term> ParseTerm() {
    const Token& token = Peek();
    if (token.kind == TokenKind::kIdent && token.text != "true" &&
        token.text != "false" && token.text != "exists" &&
        token.text != "forall") {
      return Term::Var(Advance().text);
    }
    if (token.kind == TokenKind::kInteger) {
      const std::string& digits = Advance().text;
      long value = 0;
      for (char c : digits) {
        value = value * 10 + (c - '0');
        if (value > 1000000000) {
          return Status::InvalidArgument("constant out of range: " + digits);
        }
      }
      return Term::Const(static_cast<Element>(value));
    }
    return Status::InvalidArgument(
        "at position " + std::to_string(token.position) +
        ": expected a term, found '" + token.text + "'");
  }

  std::vector<Token> tokens_;
  size_t index_ = 0;
  int depth_ = 0;
};

}  // namespace

StatusOr<FormulaPtr> ParseFormula(std::string_view text) {
  try {
    QREL_FAULT_SITE("logic.parse_formula");
    std::vector<Token> tokens;
    Status status = Lexer(text).Tokenize(&tokens);
    if (!status.ok()) {
      return status;
    }
    return Parser(std::move(tokens)).Parse();
  } catch (const std::bad_alloc&) {
    return Status::ResourceExhausted("out of memory while parsing formula");
  }
}

}  // namespace qrel
