#include "qrel/logic/parser.h"

#include <algorithm>
#include <cctype>
#include <new>
#include <string>
#include <vector>

#include "qrel/util/fault_injection.h"

namespace qrel {

namespace {

// The recursive-descent parser recurses once per nesting level ("!", "(",
// quantifier bodies, right-associative "->"), so an adversarial
// "((((..." or "!!!!..." input would otherwise turn into unbounded native
// stack growth. Far deeper than any legitimate formula, far shallower than
// any stack limit.
constexpr int kMaxNestingDepth = 256;

enum class TokenKind {
  kIdent,
  kInteger,
  kLParen,
  kRParen,
  kComma,
  kDot,
  kBang,       // !
  kAmp,        // &
  kPipe,       // |
  kArrow,      // ->
  kIffArrow,   // <->
  kEquals,     // =
  kNotEquals,  // !=
  kEnd,
};

struct Token {
  TokenKind kind;
  std::string text;
  size_t position;
};

size_t TokenEnd(const Token& token) {
  return token.position + std::max<size_t>(token.text.size(), 1);
}

// Records the error both ways: as the Status the parse returns (message
// format unchanged: "at position N: ...") and, when the caller asked for
// one, as a source-located Diagnostic with the stable "syntax-error" check
// id — the machine-readable path of ParseFormula's Diagnostic overload.
Status SyntaxError(size_t begin, size_t end, const std::string& message,
                   Diagnostic* diagnostic) {
  if (diagnostic != nullptr) {
    *diagnostic =
        MakeError("syntax-error", message, SourceRange{begin, end});
  }
  return Status::InvalidArgument("at position " + std::to_string(begin) +
                                 ": " + message);
}

class Lexer {
 public:
  explicit Lexer(std::string_view text, Diagnostic* diagnostic)
      : text_(text), diagnostic_(diagnostic) {}

  Status Tokenize(std::vector<Token>* tokens) {
    size_t pos = 0;
    while (pos < text_.size()) {
      char c = text_[pos];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos;
        continue;
      }
      size_t start = pos;
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        while (pos < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[pos])) ||
                text_[pos] == '_' || text_[pos] == '\'')) {
          ++pos;
        }
        tokens->push_back({TokenKind::kIdent,
                           std::string(text_.substr(start, pos - start)),
                           start});
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) || c == '#') {
        if (c == '#') {
          ++pos;
          start = pos;
        }
        if (pos >= text_.size() ||
            !std::isdigit(static_cast<unsigned char>(text_[pos]))) {
          return Error(start, "expected digits after '#'");
        }
        while (pos < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos]))) {
          ++pos;
        }
        tokens->push_back({TokenKind::kInteger,
                           std::string(text_.substr(start, pos - start)),
                           start});
        continue;
      }
      switch (c) {
        case '(':
          tokens->push_back({TokenKind::kLParen, "(", pos++});
          break;
        case ')':
          tokens->push_back({TokenKind::kRParen, ")", pos++});
          break;
        case ',':
          tokens->push_back({TokenKind::kComma, ",", pos++});
          break;
        case '.':
          tokens->push_back({TokenKind::kDot, ".", pos++});
          break;
        case '&':
          tokens->push_back({TokenKind::kAmp, "&", pos++});
          break;
        case '|':
          tokens->push_back({TokenKind::kPipe, "|", pos++});
          break;
        case '=':
          tokens->push_back({TokenKind::kEquals, "=", pos++});
          break;
        case '!':
          if (pos + 1 < text_.size() && text_[pos + 1] == '=') {
            tokens->push_back({TokenKind::kNotEquals, "!=", pos});
            pos += 2;
          } else {
            tokens->push_back({TokenKind::kBang, "!", pos++});
          }
          break;
        case '-':
          if (pos + 1 < text_.size() && text_[pos + 1] == '>') {
            tokens->push_back({TokenKind::kArrow, "->", pos});
            pos += 2;
          } else {
            return Error(pos, "expected '->' after '-'");
          }
          break;
        case '<':
          if (pos + 2 < text_.size() && text_[pos + 1] == '-' &&
              text_[pos + 2] == '>') {
            tokens->push_back({TokenKind::kIffArrow, "<->", pos});
            pos += 3;
          } else {
            return Error(pos, "expected '<->' after '<'");
          }
          break;
        default:
          return Error(pos, std::string("unexpected character '") + c + "'");
      }
    }
    tokens->push_back({TokenKind::kEnd, "", text_.size()});
    return Status::Ok();
  }

 private:
  Status Error(size_t position, const std::string& message) {
    return SyntaxError(position, position + 1, message, diagnostic_);
  }

  std::string_view text_;
  Diagnostic* diagnostic_;
};

class Parser {
 public:
  Parser(std::vector<Token> tokens, Diagnostic* diagnostic)
      : tokens_(std::move(tokens)), diagnostic_(diagnostic) {}

  StatusOr<FormulaPtr> Parse() {
    StatusOr<FormulaPtr> formula = ParseIff();
    if (!formula.ok()) {
      return formula;
    }
    if (Peek().kind != TokenKind::kEnd) {
      return Error("unexpected trailing input '" + Peek().text + "'");
    }
    return formula;
  }

 private:
  // Counts live recursion frames along the grammar's cycles; every
  // recursive production enters one of the guarded rules below.
  class DepthFrame {
   public:
    explicit DepthFrame(int* depth) : depth_(depth) { ++*depth_; }
    ~DepthFrame() { --*depth_; }
    DepthFrame(const DepthFrame&) = delete;
    DepthFrame& operator=(const DepthFrame&) = delete;

   private:
    int* depth_;
  };

  Status CheckDepth() {
    if (depth_ > kMaxNestingDepth) {
      return SyntaxError(Peek().position, TokenEnd(Peek()),
                         "formula nesting too deep", diagnostic_);
    }
    return Status::Ok();
  }

  const Token& Peek() const { return tokens_[index_]; }
  const Token& Advance() { return tokens_[index_++]; }
  bool Match(TokenKind kind) {
    if (Peek().kind == kind) {
      ++index_;
      return true;
    }
    return false;
  }

  Status Error(const std::string& message) {
    return SyntaxError(Peek().position, TokenEnd(Peek()), message,
                       diagnostic_);
  }

  // The source range from the first token of the production (by token
  // index) through the last token consumed so far.
  SourceRange RangeFrom(size_t start_index) const {
    if (index_ == 0 || start_index >= index_) {
      return SourceRange{};
    }
    return SourceRange{tokens_[start_index].position,
                       TokenEnd(tokens_[index_ - 1])};
  }

  FormulaPtr Ranged(FormulaPtr formula, size_t start_index) const {
    return WithRange(formula, RangeFrom(start_index));
  }

  StatusOr<FormulaPtr> ParseIff() {
    DepthFrame frame(&depth_);
    QREL_RETURN_IF_ERROR(CheckDepth());
    size_t start = index_;
    StatusOr<FormulaPtr> left = ParseImplies();
    if (!left.ok()) return left;
    FormulaPtr result = *left;
    while (Match(TokenKind::kIffArrow)) {
      StatusOr<FormulaPtr> right = ParseImplies();
      if (!right.ok()) return right;
      result = Ranged(Iff(result, *right), start);
    }
    return result;
  }

  StatusOr<FormulaPtr> ParseImplies() {
    DepthFrame frame(&depth_);
    QREL_RETURN_IF_ERROR(CheckDepth());
    size_t start = index_;
    StatusOr<FormulaPtr> left = ParseOr();
    if (!left.ok()) return left;
    if (Match(TokenKind::kArrow)) {
      // Right-associative: a -> b -> c parses as a -> (b -> c).
      StatusOr<FormulaPtr> right = ParseImplies();
      if (!right.ok()) return right;
      return Ranged(Implies(*left, *right), start);
    }
    return left;
  }

  StatusOr<FormulaPtr> ParseOr() {
    size_t start = index_;
    StatusOr<FormulaPtr> first = ParseAnd();
    if (!first.ok()) return first;
    std::vector<FormulaPtr> operands = {*first};
    while (Match(TokenKind::kPipe)) {
      StatusOr<FormulaPtr> next = ParseAnd();
      if (!next.ok()) return next;
      operands.push_back(*next);
    }
    if (operands.size() == 1) {
      return operands[0];
    }
    return Ranged(Or(std::move(operands)), start);
  }

  StatusOr<FormulaPtr> ParseAnd() {
    size_t start = index_;
    StatusOr<FormulaPtr> first = ParseUnary();
    if (!first.ok()) return first;
    std::vector<FormulaPtr> operands = {*first};
    while (Match(TokenKind::kAmp)) {
      StatusOr<FormulaPtr> next = ParseUnary();
      if (!next.ok()) return next;
      operands.push_back(*next);
    }
    if (operands.size() == 1) {
      return operands[0];
    }
    return Ranged(And(std::move(operands)), start);
  }

  StatusOr<FormulaPtr> ParseUnary() {
    DepthFrame frame(&depth_);
    QREL_RETURN_IF_ERROR(CheckDepth());
    size_t start = index_;
    if (Match(TokenKind::kBang)) {
      StatusOr<FormulaPtr> operand = ParseUnary();
      if (!operand.ok()) return operand;
      return Ranged(Not(*operand), start);
    }
    if (Peek().kind == TokenKind::kIdent &&
        (Peek().text == "exists" || Peek().text == "forall")) {
      return ParseQuantifier();
    }
    return ParsePrimary();
  }

  StatusOr<FormulaPtr> ParseQuantifier() {
    size_t start = index_;
    bool is_exists = Advance().text == "exists";
    // One token index per bound variable, so each binder in "exists x y ."
    // gets its own source range (needed for per-binder diagnostics like
    // unused-quantifier).
    std::vector<size_t> variable_tokens;
    std::vector<std::string> variables;
    while (Peek().kind == TokenKind::kIdent && Peek().text != "exists" &&
           Peek().text != "forall") {
      variable_tokens.push_back(index_);
      variables.push_back(Advance().text);
    }
    if (variables.empty()) {
      return Error("quantifier needs at least one variable");
    }
    if (!Match(TokenKind::kDot)) {
      return Error("expected '.' after quantified variables");
    }
    // The quantifier scopes over the longest formula to its right.
    StatusOr<FormulaPtr> body = ParseIff();
    if (!body.ok()) return body;
    FormulaPtr result = *body;
    for (size_t i = variables.size(); i-- > 0;) {
      result = is_exists ? Exists(variables[i], std::move(result))
                         : ForAll(variables[i], std::move(result));
      // Innermost binders start at their own variable token; the outermost
      // one covers the whole quantifier expression.
      size_t node_start = i == 0 ? start : variable_tokens[i];
      result = Ranged(std::move(result), node_start);
    }
    return result;
  }

  StatusOr<FormulaPtr> ParsePrimary() {
    size_t start = index_;
    const Token& token = Peek();
    if (token.kind == TokenKind::kLParen) {
      Advance();
      StatusOr<FormulaPtr> inner = ParseIff();
      if (!inner.ok()) return inner;
      // A parenthesized term may continue as an equality: "(x) = y" is not
      // supported; parentheses group formulas only.
      if (!Match(TokenKind::kRParen)) {
        return Error("expected ')'");
      }
      return Ranged(*inner, start);
    }
    if (token.kind == TokenKind::kIdent) {
      if (token.text == "true") {
        Advance();
        return Ranged(True(), start);
      }
      if (token.text == "false") {
        Advance();
        return Ranged(False(), start);
      }
      // Relation atom or a variable starting an equality.
      if (tokens_[index_ + 1].kind == TokenKind::kLParen) {
        return ParseAtom();
      }
      return ParseEquality();
    }
    if (token.kind == TokenKind::kInteger) {
      return ParseEquality();
    }
    return Error("expected a formula, found '" + token.text + "'");
  }

  StatusOr<FormulaPtr> ParseAtom() {
    size_t start = index_;
    std::string relation = Advance().text;
    if (!Match(TokenKind::kLParen)) {
      return Error("expected '(' after relation name");
    }
    std::vector<Term> args;
    if (!Match(TokenKind::kRParen)) {
      for (;;) {
        StatusOr<Term> term = ParseTerm();
        if (!term.ok()) return term.status();
        args.push_back(*term);
        if (Match(TokenKind::kRParen)) {
          break;
        }
        if (!Match(TokenKind::kComma)) {
          return Error("expected ',' or ')' in argument list");
        }
      }
    }
    return Ranged(Atom(std::move(relation), std::move(args)), start);
  }

  StatusOr<FormulaPtr> ParseEquality() {
    size_t start = index_;
    StatusOr<Term> left = ParseTerm();
    if (!left.ok()) return left.status();
    if (Match(TokenKind::kEquals)) {
      StatusOr<Term> right = ParseTerm();
      if (!right.ok()) return right.status();
      return Ranged(Equals(*left, *right), start);
    }
    if (Match(TokenKind::kNotEquals)) {
      StatusOr<Term> right = ParseTerm();
      if (!right.ok()) return right.status();
      return Ranged(Not(Ranged(Equals(*left, *right), start)), start);
    }
    return Error("expected '=' or '!=' after term");
  }

  StatusOr<Term> ParseTerm() {
    const Token& token = Peek();
    if (token.kind == TokenKind::kIdent && token.text != "true" &&
        token.text != "false" && token.text != "exists" &&
        token.text != "forall") {
      return Term::Var(Advance().text);
    }
    if (token.kind == TokenKind::kInteger) {
      const std::string& digits = Advance().text;
      long value = 0;
      for (char c : digits) {
        value = value * 10 + (c - '0');
        if (value > 1000000000) {
          if (diagnostic_ != nullptr) {
            *diagnostic_ = MakeError(
                "syntax-error", "constant out of range: " + digits,
                SourceRange{token.position, TokenEnd(token)});
          }
          return Status::InvalidArgument("constant out of range: " + digits);
        }
      }
      return Term::Const(static_cast<Element>(value));
    }
    return SyntaxError(token.position, TokenEnd(token),
                       "expected a term, found '" + token.text + "'",
                       diagnostic_);
  }

  std::vector<Token> tokens_;
  size_t index_ = 0;
  int depth_ = 0;
  Diagnostic* diagnostic_;
};

}  // namespace

StatusOr<FormulaPtr> ParseFormula(std::string_view text) {
  return ParseFormula(text, nullptr);
}

StatusOr<FormulaPtr> ParseFormula(std::string_view text,
                                  Diagnostic* syntax_error) {
  try {
    QREL_FAULT_SITE("logic.parse_formula");
    std::vector<Token> tokens;
    Status status = Lexer(text, syntax_error).Tokenize(&tokens);
    if (!status.ok()) {
      return status;
    }
    return Parser(std::move(tokens), syntax_error).Parse();
  } catch (const std::bad_alloc&) {
    if (syntax_error != nullptr) {
      *syntax_error = MakeError("syntax-error",
                                "out of memory while parsing formula");
    }
    return Status::ResourceExhausted("out of memory while parsing formula");
  }
}

}  // namespace qrel
