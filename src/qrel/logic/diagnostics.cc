#include "qrel/logic/diagnostics.h"

#include <algorithm>

#include "qrel/util/check.h"

namespace qrel {

namespace {

Diagnostic Make(DiagnosticSeverity severity, std::string check_id,
                std::string message, SourceRange range) {
  Diagnostic diagnostic;
  diagnostic.severity = severity;
  diagnostic.check_id = std::move(check_id);
  diagnostic.message = std::move(message);
  diagnostic.range = range;
  return diagnostic;
}

}  // namespace

std::string JsonEscapeString(const std::string& text) {
  std::string result;
  result.reserve(text.size() + 2);
  for (char c : text) {
    switch (c) {
      case '"':
        result += "\\\"";
        break;
      case '\\':
        result += "\\\\";
        break;
      case '\n':
        result += "\\n";
        break;
      case '\r':
        result += "\\r";
        break;
      case '\t':
        result += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char kHex[] = "0123456789abcdef";
          result += "\\u00";
          result += kHex[(static_cast<unsigned char>(c) >> 4) & 0xf];
          result += kHex[static_cast<unsigned char>(c) & 0xf];
        } else {
          result += c;
        }
    }
  }
  return result;
}

SourceRange SourceRange::Merge(const SourceRange& a, const SourceRange& b) {
  if (!a.valid()) return b;
  if (!b.valid()) return a;
  return SourceRange{std::min(a.begin, b.begin), std::max(a.end, b.end)};
}

const char* DiagnosticSeverityName(DiagnosticSeverity severity) {
  switch (severity) {
    case DiagnosticSeverity::kError:
      return "error";
    case DiagnosticSeverity::kWarning:
      return "warning";
    case DiagnosticSeverity::kNote:
      return "note";
  }
  QREL_CHECK_MSG(false, "corrupt diagnostic severity");
  return "";
}

std::string Diagnostic::ToString() const {
  std::string result = std::string(DiagnosticSeverityName(severity)) + "[" +
                       check_id + "]";
  if (range.valid()) {
    result += " at " + std::to_string(range.begin) + "-" +
              std::to_string(range.end);
  }
  result += ": " + message;
  return result;
}

std::string Diagnostic::ToJson() const {
  std::string result = "{\"severity\":\"";
  result += DiagnosticSeverityName(severity);
  result += "\",\"check\":\"" + JsonEscapeString(check_id) + "\"";
  if (range.valid()) {
    result += ",\"begin\":" + std::to_string(range.begin) +
              ",\"end\":" + std::to_string(range.end);
  }
  result += ",\"message\":\"" + JsonEscapeString(message) + "\"}";
  return result;
}

Diagnostic MakeError(std::string check_id, std::string message,
                     SourceRange range) {
  return Make(DiagnosticSeverity::kError, std::move(check_id),
              std::move(message), range);
}

Diagnostic MakeWarning(std::string check_id, std::string message,
                       SourceRange range) {
  return Make(DiagnosticSeverity::kWarning, std::move(check_id),
              std::move(message), range);
}

Diagnostic MakeNote(std::string check_id, std::string message,
                    SourceRange range) {
  return Make(DiagnosticSeverity::kNote, std::move(check_id),
              std::move(message), range);
}

bool HasErrors(const std::vector<Diagnostic>& diagnostics) {
  return std::any_of(diagnostics.begin(), diagnostics.end(),
                     [](const Diagnostic& d) {
                       return d.severity == DiagnosticSeverity::kError;
                     });
}

int LintExitCode(const std::vector<Diagnostic>& diagnostics) {
  if (HasErrors(diagnostics)) {
    return 2;
  }
  bool warned = std::any_of(diagnostics.begin(), diagnostics.end(),
                            [](const Diagnostic& d) {
                              return d.severity ==
                                     DiagnosticSeverity::kWarning;
                            });
  return warned ? 1 : 0;
}

std::string DiagnosticsToJson(const std::vector<Diagnostic>& diagnostics) {
  std::string result = "[";
  for (size_t i = 0; i < diagnostics.size(); ++i) {
    if (i != 0) result += ",";
    result += diagnostics[i].ToJson();
  }
  return result + "]";
}

}  // namespace qrel
