// Structured diagnostics for static query analysis.
//
// Every problem the analyzers (logic/analyze.h, datalog/analyze.h) or the
// parsers find is reported as a Diagnostic: a severity, a *stable* check id
// (the contract with tooling — scripts grep for "arity-mismatch", not for
// message wording), a human-readable message and a source range into the
// original query text. Parse errors travel through the same struct (check
// id "syntax-error"), so `--diagnostics-format=json` gives one
// machine-readable output path for everything that can be wrong with a
// query before it runs.
//
// The registered check ids are listed in DESIGN.md ("Static analysis and
// plan explanation"); renaming one is a breaking change.

#ifndef QREL_LOGIC_DIAGNOSTICS_H_
#define QREL_LOGIC_DIAGNOSTICS_H_

#include <cstddef>
#include <string>
#include <vector>

namespace qrel {

// A half-open byte range [begin, end) into the source text a node was
// parsed from. Programmatically built nodes have no range (valid() false);
// diagnostics for them simply omit the location.
struct SourceRange {
  static constexpr size_t kNone = static_cast<size_t>(-1);

  size_t begin = kNone;
  size_t end = kNone;

  bool valid() const { return begin != kNone && end >= begin; }

  // Smallest range covering both inputs; an invalid side is ignored.
  static SourceRange Merge(const SourceRange& a, const SourceRange& b);
};

enum class DiagnosticSeverity {
  kError,    // the query cannot run (fails with kInvalidArgument)
  kWarning,  // the query runs but is probably not what was meant
  kNote,     // analysis finding with no quality judgement
};

// Stable display name: "error", "warning", "note".
const char* DiagnosticSeverityName(DiagnosticSeverity severity);

struct Diagnostic {
  DiagnosticSeverity severity = DiagnosticSeverity::kError;
  std::string check_id;  // stable kebab-case id, e.g. "arity-mismatch"
  std::string message;
  SourceRange range;  // may be invalid (no location known)

  // "error[arity-mismatch] at 4-11: relation 'E' has arity 2 ..." (the
  // location clause is dropped when no range is known).
  std::string ToString() const;
  // One JSON object with keys severity/check/message and, when located,
  // begin/end.
  std::string ToJson() const;
};

// Convenience constructors.
Diagnostic MakeError(std::string check_id, std::string message,
                     SourceRange range = {});
Diagnostic MakeWarning(std::string check_id, std::string message,
                       SourceRange range = {});
Diagnostic MakeNote(std::string check_id, std::string message,
                    SourceRange range = {});

// Whether any diagnostic has error severity.
bool HasErrors(const std::vector<Diagnostic>& diagnostics);
// Errors, then warnings, then notes (0/1/2 of the lint exit-code
// convention): 0 when clean, 1 when the worst finding is a warning, 2 when
// any error is present. Notes alone still exit 0.
int LintExitCode(const std::vector<Diagnostic>& diagnostics);

// A JSON array of ToJson() objects (stable field order, no trailing
// newline).
std::string DiagnosticsToJson(const std::vector<Diagnostic>& diagnostics);

// JSON string-body escaping (quotes, backslashes, control characters) used
// by ToJson; exposed so callers embedding query text alongside diagnostics
// in JSON output escape it identically.
std::string JsonEscapeString(const std::string& text);

}  // namespace qrel

#endif  // QREL_LOGIC_DIAGNOSTICS_H_
