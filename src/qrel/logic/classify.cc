#include "qrel/logic/classify.h"

#include "qrel/logic/normal_form.h"
#include "qrel/logic/safe_plan.h"
#include "qrel/util/check.h"

namespace qrel {

namespace {

bool ContainsQuantifier(const Formula& formula, FormulaKind which) {
  if (formula.kind == which) {
    return true;
  }
  for (const FormulaPtr& child : formula.children) {
    if (ContainsQuantifier(*child, which)) {
      return true;
    }
  }
  return false;
}

bool IsConjunctionOfAtoms(const Formula& formula) {
  switch (formula.kind) {
    case FormulaKind::kAtom:
    case FormulaKind::kEquals:
      return true;
    case FormulaKind::kAnd:
      for (const FormulaPtr& child : formula.children) {
        if (!IsConjunctionOfAtoms(*child)) {
          return false;
        }
      }
      return true;
    default:
      return false;
  }
}

}  // namespace

const char* QueryClassName(QueryClass query_class) {
  switch (query_class) {
    case QueryClass::kQuantifierFree:
      return "quantifier-free";
    case QueryClass::kSafeConjunctive:
      return "safe conjunctive";
    case QueryClass::kConjunctive:
      return "conjunctive";
    case QueryClass::kExistential:
      return "existential";
    case QueryClass::kUniversal:
      return "universal";
    case QueryClass::kGeneralFirstOrder:
      return "general first-order";
  }
  QREL_CHECK_MSG(false, "corrupt query class");
  return "";
}

bool IsQuantifierFree(const FormulaPtr& formula) {
  return !ContainsQuantifier(*formula, FormulaKind::kExists) &&
         !ContainsQuantifier(*formula, FormulaKind::kForAll);
}

bool IsConjunctiveQuery(const FormulaPtr& formula) {
  const Formula* node = formula.get();
  while (node->kind == FormulaKind::kExists) {
    node = node->children[0].get();
  }
  return IsConjunctionOfAtoms(*node);
}

bool IsSafeConjunctiveQuery(const FormulaPtr& formula) {
  return HasSafePlan(formula);
}

bool IsExistential(const FormulaPtr& formula) {
  FormulaPtr nnf = ToNnf(formula);
  return !ContainsQuantifier(*nnf, FormulaKind::kForAll);
}

bool IsUniversal(const FormulaPtr& formula) {
  FormulaPtr nnf = ToNnf(formula);
  return !ContainsQuantifier(*nnf, FormulaKind::kExists);
}

int PlanRank(QueryClass query_class) {
  switch (query_class) {
    case QueryClass::kQuantifierFree:
      return 0;
    case QueryClass::kSafeConjunctive:
      return 1;
    case QueryClass::kConjunctive:
      return 2;
    case QueryClass::kExistential:
    case QueryClass::kUniversal:
      return 3;
    case QueryClass::kGeneralFirstOrder:
      return 4;
  }
  QREL_CHECK_MSG(false, "corrupt query class");
  return 4;
}

QueryClass Classify(const FormulaPtr& formula) {
  if (IsQuantifierFree(formula)) {
    return QueryClass::kQuantifierFree;
  }
  if (IsConjunctiveQuery(formula)) {
    return IsSafeConjunctiveQuery(formula) ? QueryClass::kSafeConjunctive
                                           : QueryClass::kConjunctive;
  }
  if (IsExistential(formula)) {
    return QueryClass::kExistential;
  }
  if (IsUniversal(formula)) {
    return QueryClass::kUniversal;
  }
  return QueryClass::kGeneralFirstOrder;
}

}  // namespace qrel
