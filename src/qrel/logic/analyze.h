// Static analysis of first-order queries: validation diagnostics, the
// semantics-preserving simplification, and the cost pre-analysis behind
// the engine's "explain plan".
//
// AnalyzeFormula runs before anything is grounded, enumerated or sampled.
// It reports every problem it finds as a source-located Diagnostic
// (logic/diagnostics.h) instead of failing on the first one, computes the
// simplified formula (logic/simplify.h) and both classifications, and —
// when a database is supplied — statically estimates the work the engine
// would do. engine/engine.h routes every run through this analysis: hard
// errors fail with kInvalidArgument before any budget is charged, and
// dispatch uses the simplified formula's class.
//
// Checks (stable ids — see DESIGN.md "Static analysis and plan
// explanation"):
//   error   unknown-predicate      relation not in the vocabulary
//   error   arity-mismatch         relation used with the wrong arity
//   warning unused-quantifier      bound variable never occurs in the body
//   warning vacuous-quantifier     quantified body is a truth constant
//   warning contradictory-literals conjunction contains φ and !φ
//   warning tautological-literals  disjunction contains φ and !φ
//   note    constant-equality      equality between two constants
//   note    statically-true        the query simplifies to true
//   note    statically-false       the query simplifies to false
//   note    simplified             simplification changed the formula
//
// plus the safe-plan checks of logic/safe_plan.h, run on the formula the
// engine will dispatch on:
//   note    safe-plan              the query admits a safe plan
//   note    unsafe-self-join       two distinct atoms share a relation
//   note    unsafe-no-root-variable  the hierarchy condition fails

#ifndef QREL_LOGIC_ANALYZE_H_
#define QREL_LOGIC_ANALYZE_H_

#include <string>
#include <vector>

#include "qrel/logic/ast.h"
#include "qrel/logic/classify.h"
#include "qrel/logic/diagnostics.h"
#include "qrel/logic/safe_plan.h"
#include "qrel/relational/vocabulary.h"

namespace qrel {

// What static analysis decided about the query's truth value.
enum class StaticTruth {
  kUnknown,        // depends on the database
  kTautology,      // simplifies to true: every world answers all tuples
  kUnsatisfiable,  // simplifies to false: every world answers nothing
};

// Stable display name ("unknown", "tautology", "unsatisfiable").
const char* StaticTruthName(StaticTruth truth);

// Statically computed work predictions for a query on a database of
// universe size n. Doubles saturate to infinity rather than overflow.
struct CostEstimate {
  int universe_size = 0;
  // Free variables of the query (the k of the n^k answer-tuple space).
  int arity = 0;
  // Distinct variables overall (free + quantifier-bound); the grounding of
  // Thm 5.4 enumerates up to n^variables assignments.
  int variables = 0;
  double answer_space = 1.0;    // n^arity
  double grounding_size = 1.0;  // n^variables
  size_t uncertain_atoms = 0;   // u = dimensions of the world space
  double world_count = 1.0;     // 2^u
};

struct FormulaAnalysis {
  std::vector<Diagnostic> diagnostics;

  // The equivalent simplified formula and both classifications. The
  // effective class is never worse: PlanRank(effective_class) <=
  // PlanRank(original_class).
  FormulaPtr simplified;
  QueryClass original_class = QueryClass::kGeneralFirstOrder;
  QueryClass effective_class = QueryClass::kGeneralFirstOrder;

  StaticTruth static_truth = StaticTruth::kUnknown;

  // Whether the simplified formula has the same free variables, in the
  // same order, as the original. Only then may the engine substitute the
  // simplified formula wholesale (answer tuples keep their columns);
  // otherwise simplification dropped a vacuous free variable and the
  // original formula must still be the one evaluated.
  bool arity_preserved = false;

  // Safe-plan analysis (logic/safe_plan.h) of the formula the engine will
  // dispatch on (the simplified one when arity_preserved, else the
  // original); its diagnostics are also appended to `diagnostics`. When
  // safety.safe, the effective class is kSafeConjunctive and the engine's
  // extensional rung evaluates the plan exactly in polynomial time.
  SafePlanAnalysis safety;

  bool has_errors() const { return HasErrors(diagnostics); }
};

// Analyzes `formula`. `vocabulary` is nullable; without it the
// vocabulary-dependent checks (unknown-predicate, arity-mismatch) are
// skipped and only the purely syntactic checks run.
FormulaAnalysis AnalyzeFormula(const FormulaPtr& formula,
                               const Vocabulary* vocabulary);

// The cost pre-analysis for `formula` (use the *effective* formula the
// engine will dispatch on) against a database with `universe_size` and
// `uncertain_atoms` uncertain entries.
CostEstimate EstimateCost(const FormulaPtr& formula, int universe_size,
                          size_t uncertain_atoms);

// Renders the first error diagnostic as a one-line message for a typed
// Status ("arity-mismatch at 4-11: ..."). Requires has_errors().
std::string FirstErrorMessage(const std::vector<Diagnostic>& diagnostics);

}  // namespace qrel

#endif  // QREL_LOGIC_ANALYZE_H_
