#include "qrel/logic/analyze.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <string>
#include <utility>

#include "qrel/logic/simplify.h"
#include "qrel/util/check.h"

namespace qrel {

namespace {

bool IsConstant(const Formula& formula) {
  return formula.kind == FormulaKind::kTrue ||
         formula.kind == FormulaKind::kFalse;
}

// Collects every distinct variable name — free occurrences and binders —
// so the grounding-size estimate covers the full assignment space.
void CollectVariables(const Formula& formula,
                      std::set<std::string>* variables) {
  switch (formula.kind) {
    case FormulaKind::kAtom:
    case FormulaKind::kEquals:
      for (const Term& term : formula.args) {
        if (term.is_variable()) {
          variables->insert(term.variable);
        }
      }
      return;
    case FormulaKind::kExists:
    case FormulaKind::kForAll:
      variables->insert(formula.bound_variable);
      CollectVariables(*formula.children[0], variables);
      return;
    default:
      for (const FormulaPtr& child : formula.children) {
        CollectVariables(*child, variables);
      }
      return;
  }
}

class FormulaChecker {
 public:
  FormulaChecker(const Vocabulary* vocabulary,
                 std::vector<Diagnostic>* diagnostics)
      : vocabulary_(vocabulary), diagnostics_(diagnostics) {}

  void Check(const Formula& formula) {
    switch (formula.kind) {
      case FormulaKind::kTrue:
      case FormulaKind::kFalse:
        return;
      case FormulaKind::kAtom:
        CheckAtom(formula);
        return;
      case FormulaKind::kEquals:
        if (!formula.args[0].is_variable() &&
            !formula.args[1].is_variable()) {
          diagnostics_->push_back(MakeNote(
              "constant-equality",
              "equality between constants " + formula.args[0].ToString() +
                  " and " + formula.args[1].ToString() +
                  " is decided statically",
              formula.range));
        }
        return;
      case FormulaKind::kExists:
      case FormulaKind::kForAll:
        CheckQuantifier(formula);
        Check(*formula.children[0]);
        return;
      case FormulaKind::kAnd:
      case FormulaKind::kOr:
        CheckComplementaryPair(formula);
        for (const FormulaPtr& child : formula.children) {
          Check(*child);
        }
        return;
      default:
        for (const FormulaPtr& child : formula.children) {
          Check(*child);
        }
        return;
    }
  }

 private:
  void CheckAtom(const Formula& atom) {
    if (vocabulary_ == nullptr) {
      return;
    }
    std::optional<int> relation = vocabulary_->FindRelation(atom.relation);
    if (!relation.has_value()) {
      diagnostics_->push_back(MakeError(
          "unknown-predicate",
          "unknown relation '" + atom.relation + "'", atom.range));
      return;
    }
    int arity = vocabulary_->relation(*relation).arity;
    if (arity != static_cast<int>(atom.args.size())) {
      diagnostics_->push_back(MakeError(
          "arity-mismatch",
          "relation '" + atom.relation + "' has arity " +
              std::to_string(arity) + " but is used with " +
              std::to_string(atom.args.size()) + " argument(s)",
          atom.range));
    }
  }

  void CheckQuantifier(const Formula& quantifier) {
    const char* word =
        quantifier.kind == FormulaKind::kExists ? "exists" : "forall";
    const Formula& body = *quantifier.children[0];
    // A body that *folds* to a constant (e.g. "y = y") is just as vacuous
    // as a literal one; match what the simplifier will do.
    if (IsConstant(body) ||
        IsConstant(*SimplifyFormula(quantifier.children[0]))) {
      diagnostics_->push_back(MakeWarning(
          "vacuous-quantifier",
          std::string(word) + " " + quantifier.bound_variable +
              " quantifies a constant body and has no effect",
          quantifier.range));
      return;
    }
    const std::vector<std::string> free = body.FreeVariables();
    if (std::find(free.begin(), free.end(), quantifier.bound_variable) ==
        free.end()) {
      diagnostics_->push_back(MakeWarning(
          "unused-quantifier",
          "variable '" + quantifier.bound_variable + "' bound by " + word +
              " never occurs in its scope",
          quantifier.range));
    }
  }

  // A conjunction containing both φ and !φ is statically false (the dual
  // disjunction statically true) — almost always a query-writing mistake.
  void CheckComplementaryPair(const Formula& connective) {
    std::set<std::string> positive;
    std::set<std::string> negated;
    for (const FormulaPtr& child : connective.children) {
      std::string key;
      bool is_negation = child->kind == FormulaKind::kNot;
      if (is_negation) {
        key = child->children[0]->ToString();
      } else {
        key = child->ToString();
      }
      bool complement_seen = is_negation ? positive.count(key) != 0
                                         : negated.count(key) != 0;
      if (complement_seen) {
        bool conjunction = connective.kind == FormulaKind::kAnd;
        diagnostics_->push_back(MakeWarning(
            conjunction ? "contradictory-literals"
                        : "tautological-literals",
            std::string(conjunction ? "conjunction" : "disjunction") +
                " contains both " + key + " and its negation, so it is "
                "statically " + (conjunction ? "false" : "true"),
            connective.range));
        return;  // one report per connective is enough
      }
      (is_negation ? negated : positive).insert(key);
    }
  }

  const Vocabulary* vocabulary_;
  std::vector<Diagnostic>* diagnostics_;
};

}  // namespace

const char* StaticTruthName(StaticTruth truth) {
  switch (truth) {
    case StaticTruth::kUnknown:
      return "unknown";
    case StaticTruth::kTautology:
      return "tautology";
    case StaticTruth::kUnsatisfiable:
      return "unsatisfiable";
  }
  QREL_CHECK_MSG(false, "corrupt static truth");
  return "";
}

FormulaAnalysis AnalyzeFormula(const FormulaPtr& formula,
                               const Vocabulary* vocabulary) {
  QREL_CHECK(formula != nullptr);
  FormulaAnalysis analysis;
  FormulaChecker(vocabulary, &analysis.diagnostics).Check(*formula);

  analysis.simplified = SimplifyFormula(formula);
  analysis.original_class = Classify(formula);
  analysis.effective_class = Classify(analysis.simplified);
  analysis.arity_preserved =
      formula->FreeVariables() == analysis.simplified->FreeVariables();

  if (analysis.simplified->kind == FormulaKind::kTrue) {
    analysis.static_truth = StaticTruth::kTautology;
    analysis.diagnostics.push_back(MakeNote(
        "statically-true",
        "query simplifies to true: every world answers every tuple, "
        "reliability is exactly 1",
        formula->range));
  } else if (analysis.simplified->kind == FormulaKind::kFalse) {
    analysis.static_truth = StaticTruth::kUnsatisfiable;
    analysis.diagnostics.push_back(MakeNote(
        "statically-false",
        "query simplifies to false: every world answers nothing, "
        "reliability is exactly 1",
        formula->range));
  } else if (analysis.simplified->ToString() != formula->ToString()) {
    analysis.diagnostics.push_back(MakeNote(
        "simplified",
        "query simplifies to " + analysis.simplified->ToString() +
            " (class " + QueryClassName(analysis.effective_class) + ")",
        formula->range));
  }

  // Safe-plan analysis of the formula the engine will dispatch on; its
  // verdict is what makes the effective class kSafeConjunctive.
  const FormulaPtr& dispatched =
      analysis.arity_preserved ? analysis.simplified : formula;
  analysis.safety = AnalyzeSafePlan(dispatched);
  analysis.diagnostics.insert(analysis.diagnostics.end(),
                              analysis.safety.diagnostics.begin(),
                              analysis.safety.diagnostics.end());
  return analysis;
}

CostEstimate EstimateCost(const FormulaPtr& formula, int universe_size,
                          size_t uncertain_atoms) {
  QREL_CHECK(formula != nullptr);
  CostEstimate cost;
  cost.universe_size = universe_size;
  cost.arity = static_cast<int>(formula->FreeVariables().size());
  std::set<std::string> variables;
  CollectVariables(*formula, &variables);
  cost.variables = static_cast<int>(variables.size());
  cost.answer_space = std::pow(static_cast<double>(universe_size),
                               static_cast<double>(cost.arity));
  cost.grounding_size = std::pow(static_cast<double>(universe_size),
                                 static_cast<double>(cost.variables));
  cost.uncertain_atoms = uncertain_atoms;
  cost.world_count = std::pow(2.0, static_cast<double>(uncertain_atoms));
  return cost;
}

std::string FirstErrorMessage(const std::vector<Diagnostic>& diagnostics) {
  for (const Diagnostic& diagnostic : diagnostics) {
    if (diagnostic.severity != DiagnosticSeverity::kError) {
      continue;
    }
    std::string message = diagnostic.check_id;
    if (diagnostic.range.valid()) {
      message += " at " + std::to_string(diagnostic.range.begin) + "-" +
                 std::to_string(diagnostic.range.end);
    }
    return message + ": " + diagnostic.message;
  }
  QREL_CHECK_MSG(false, "FirstErrorMessage called without errors");
  return "";
}

}  // namespace qrel
