#include "qrel/logic/normal_form.h"

#include <utility>

#include "qrel/util/check.h"

namespace qrel {

namespace {

FormulaPtr Nnf(const FormulaPtr& formula, bool negated) {
  switch (formula->kind) {
    case FormulaKind::kTrue:
      return negated ? False() : True();
    case FormulaKind::kFalse:
      return negated ? True() : False();
    case FormulaKind::kAtom:
    case FormulaKind::kEquals:
      return negated ? Not(formula) : formula;
    case FormulaKind::kNot:
      return Nnf(formula->children[0], !negated);
    case FormulaKind::kAnd:
    case FormulaKind::kOr: {
      bool is_and = (formula->kind == FormulaKind::kAnd) != negated;
      std::vector<FormulaPtr> children;
      children.reserve(formula->children.size());
      for (const FormulaPtr& child : formula->children) {
        children.push_back(Nnf(child, negated));
      }
      return is_and ? And(std::move(children)) : Or(std::move(children));
    }
    case FormulaKind::kImplies: {
      const FormulaPtr& premise = formula->children[0];
      const FormulaPtr& conclusion = formula->children[1];
      if (negated) {
        // !(a -> b) == a & !b
        return And(Nnf(premise, false), Nnf(conclusion, true));
      }
      return Or(Nnf(premise, true), Nnf(conclusion, false));
    }
    case FormulaKind::kIff: {
      const FormulaPtr& left = formula->children[0];
      const FormulaPtr& right = formula->children[1];
      if (negated) {
        // !(a <-> b) == (a & !b) | (!a & b)
        return Or(And(Nnf(left, false), Nnf(right, true)),
                  And(Nnf(left, true), Nnf(right, false)));
      }
      return Or(And(Nnf(left, false), Nnf(right, false)),
                And(Nnf(left, true), Nnf(right, true)));
    }
    case FormulaKind::kExists:
    case FormulaKind::kForAll: {
      bool is_exists = (formula->kind == FormulaKind::kExists) != negated;
      FormulaPtr body = Nnf(formula->children[0], negated);
      return is_exists ? Exists(formula->bound_variable, std::move(body))
                       : ForAll(formula->bound_variable, std::move(body));
    }
  }
  QREL_CHECK_MSG(false, "corrupt formula kind");
  return nullptr;
}

bool SameAtom(const Formula& a, const Formula& b) {
  if (a.kind != b.kind) return false;
  if (a.kind == FormulaKind::kAtom && a.relation != b.relation) return false;
  return a.args == b.args;
}

// Appends `literal` to `conjunct`. Returns false if the conjunct becomes
// contradictory (contains the complementary literal).
bool AddLiteral(SymbolicConjunct* conjunct, const SymbolicLiteral& literal) {
  for (const SymbolicLiteral& existing : *conjunct) {
    if (SameAtom(*existing.atom, *literal.atom)) {
      if (existing.positive != literal.positive) {
        return false;  // complementary pair
      }
      return true;  // duplicate, skip
    }
  }
  conjunct->push_back(literal);
  return true;
}

Status DistributeDnf(const FormulaPtr& formula, size_t max_conjuncts,
                     std::vector<SymbolicConjunct>* result) {
  switch (formula->kind) {
    case FormulaKind::kTrue:
      result->push_back({});
      return Status::Ok();
    case FormulaKind::kFalse:
      return Status::Ok();
    case FormulaKind::kAtom:
    case FormulaKind::kEquals:
      result->push_back({SymbolicLiteral{true, formula}});
      return Status::Ok();
    case FormulaKind::kNot: {
      const FormulaPtr& operand = formula->children[0];
      QREL_CHECK_MSG(operand->kind == FormulaKind::kAtom ||
                         operand->kind == FormulaKind::kEquals,
                     "input to QfNnfToDnf is not in NNF");
      result->push_back({SymbolicLiteral{false, operand}});
      return Status::Ok();
    }
    case FormulaKind::kOr: {
      for (const FormulaPtr& child : formula->children) {
        QREL_RETURN_IF_ERROR(DistributeDnf(child, max_conjuncts, result));
        if (result->size() > max_conjuncts) {
          return Status::OutOfRange("DNF distribution exceeds limit");
        }
      }
      return Status::Ok();
    }
    case FormulaKind::kAnd: {
      std::vector<SymbolicConjunct> accumulated = {{}};
      for (const FormulaPtr& child : formula->children) {
        std::vector<SymbolicConjunct> child_dnf;
        QREL_RETURN_IF_ERROR(DistributeDnf(child, max_conjuncts, &child_dnf));
        std::vector<SymbolicConjunct> next;
        for (const SymbolicConjunct& left : accumulated) {
          for (const SymbolicConjunct& right : child_dnf) {
            SymbolicConjunct merged = left;
            bool consistent = true;
            for (const SymbolicLiteral& literal : right) {
              if (!AddLiteral(&merged, literal)) {
                consistent = false;
                break;
              }
            }
            if (consistent) {
              next.push_back(std::move(merged));
              if (next.size() > max_conjuncts) {
                return Status::OutOfRange("DNF distribution exceeds limit");
              }
            }
          }
        }
        accumulated = std::move(next);
        if (accumulated.empty()) {
          return Status::Ok();  // contradiction everywhere: contributes false
        }
      }
      for (SymbolicConjunct& conjunct : accumulated) {
        result->push_back(std::move(conjunct));
        if (result->size() > max_conjuncts) {
          return Status::OutOfRange("DNF distribution exceeds limit");
        }
      }
      return Status::Ok();
    }
    default:
      QREL_CHECK_MSG(false, "input to QfNnfToDnf is not quantifier-free NNF");
      return Status::Internal("unreachable");
  }
}

// Hoists the (freshly renamed) existential quantifiers of an NNF formula
// without universal quantifiers, returning the quantifier-free matrix.
FormulaPtr HoistExistentials(const FormulaPtr& formula, int* fresh_counter,
                             std::vector<std::string>* bound) {
  switch (formula->kind) {
    case FormulaKind::kTrue:
    case FormulaKind::kFalse:
    case FormulaKind::kAtom:
    case FormulaKind::kEquals:
    case FormulaKind::kNot:
      return formula;
    case FormulaKind::kAnd:
    case FormulaKind::kOr: {
      std::vector<FormulaPtr> children;
      children.reserve(formula->children.size());
      for (const FormulaPtr& child : formula->children) {
        children.push_back(HoistExistentials(child, fresh_counter, bound));
      }
      return formula->kind == FormulaKind::kAnd ? And(std::move(children))
                                                : Or(std::move(children));
    }
    case FormulaKind::kExists: {
      std::string fresh = "_e" + std::to_string((*fresh_counter)++);
      bound->push_back(fresh);
      FormulaPtr body =
          SubstituteVariable(formula->children[0], formula->bound_variable,
                             fresh);
      return HoistExistentials(body, fresh_counter, bound);
    }
    default:
      QREL_CHECK_MSG(false, "HoistExistentials: unexpected node");
      return nullptr;
  }
}

bool ContainsForAll(const Formula& formula) {
  if (formula.kind == FormulaKind::kForAll) {
    return true;
  }
  for (const FormulaPtr& child : formula.children) {
    if (ContainsForAll(*child)) {
      return true;
    }
  }
  return false;
}

}  // namespace

FormulaPtr ToNnf(const FormulaPtr& formula) { return Nnf(formula, false); }

FormulaPtr SubstituteVariable(const FormulaPtr& formula,
                              const std::string& from, const std::string& to) {
  switch (formula->kind) {
    case FormulaKind::kTrue:
    case FormulaKind::kFalse:
      return formula;
    case FormulaKind::kAtom:
    case FormulaKind::kEquals: {
      bool changed = false;
      std::vector<Term> args = formula->args;
      for (Term& term : args) {
        if (term.is_variable() && term.variable == from) {
          term = Term::Var(to);
          changed = true;
        }
      }
      if (!changed) return formula;
      if (formula->kind == FormulaKind::kAtom) {
        return Atom(formula->relation, std::move(args));
      }
      return Equals(args[0], args[1]);
    }
    case FormulaKind::kExists:
    case FormulaKind::kForAll: {
      if (formula->bound_variable == from) {
        return formula;  // shadowed
      }
      FormulaPtr body = SubstituteVariable(formula->children[0], from, to);
      if (body == formula->children[0]) return formula;
      return formula->kind == FormulaKind::kExists
                 ? Exists(formula->bound_variable, std::move(body))
                 : ForAll(formula->bound_variable, std::move(body));
    }
    case FormulaKind::kNot:
      return Not(SubstituteVariable(formula->children[0], from, to));
    default: {
      std::vector<FormulaPtr> children;
      children.reserve(formula->children.size());
      bool changed = false;
      for (const FormulaPtr& child : formula->children) {
        FormulaPtr replaced = SubstituteVariable(child, from, to);
        changed = changed || replaced != child;
        children.push_back(std::move(replaced));
      }
      if (!changed) return formula;
      switch (formula->kind) {
        case FormulaKind::kAnd:
          return And(std::move(children));
        case FormulaKind::kOr:
          return Or(std::move(children));
        case FormulaKind::kImplies:
          return Implies(children[0], children[1]);
        case FormulaKind::kIff:
          return Iff(children[0], children[1]);
        default:
          QREL_CHECK_MSG(false, "corrupt formula kind");
          return nullptr;
      }
    }
  }
}

StatusOr<std::vector<SymbolicConjunct>> QfNnfToDnf(const FormulaPtr& qf_nnf,
                                                   size_t max_conjuncts) {
  std::vector<SymbolicConjunct> result;
  QREL_RETURN_IF_ERROR(DistributeDnf(qf_nnf, max_conjuncts, &result));
  return result;
}

StatusOr<PrenexExistential> ToPrenexExistential(const FormulaPtr& formula) {
  FormulaPtr nnf = ToNnf(formula);
  if (ContainsForAll(*nnf)) {
    return Status::InvalidArgument(
        "formula is not existential: its negation normal form contains a "
        "universal quantifier");
  }
  PrenexExistential result;
  result.free_variables = formula->FreeVariables();
  int fresh_counter = 0;
  result.matrix =
      HoistExistentials(nnf, &fresh_counter, &result.bound_variables);
  return result;
}

}  // namespace qrel
