#include "qrel/logic/simplify.h"

#include <algorithm>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "qrel/util/check.h"

namespace qrel {

namespace {

bool IsConstant(const FormulaPtr& formula) {
  return formula->kind == FormulaKind::kTrue ||
         formula->kind == FormulaKind::kFalse;
}

FormulaPtr Constant(bool value, SourceRange range) {
  return WithRange(value ? True() : False(), range);
}

// Negation of an already-simplified formula, kept simplified: constants
// fold and a double negation cancels instead of stacking.
FormulaPtr SimplifiedNot(const FormulaPtr& operand) {
  switch (operand->kind) {
    case FormulaKind::kTrue:
      return Constant(false, operand->range);
    case FormulaKind::kFalse:
      return Constant(true, operand->range);
    case FormulaKind::kNot:
      return operand->children[0];
    default:
      return WithRange(Not(operand), operand->range);
  }
}

// N-ary conjunction/disjunction over already-simplified operands:
// flattens nested nodes of the same kind, folds constants, drops
// duplicates, and detects a complementary pair (φ together with !φ), which
// decides the whole connective. ToString() is the canonical key — it
// ignores source ranges, so two copies of a literal parsed at different
// positions still count as duplicates.
FormulaPtr SimplifiedNary(FormulaKind kind, std::vector<FormulaPtr> operands,
                          SourceRange range) {
  const bool is_and = kind == FormulaKind::kAnd;
  // true decides an Or, false decides an And.
  const FormulaKind deciding = is_and ? FormulaKind::kFalse
                                      : FormulaKind::kTrue;

  // Work stack holding the operands left to process, in reverse so pops
  // come out in source order; a same-kind operand flattens by pushing its
  // children back.
  std::vector<FormulaPtr> pending(operands.rbegin(), operands.rend());
  std::vector<FormulaPtr> kept;
  std::set<std::string> positive_keys;  // operands that are not negations
  std::set<std::string> negated_keys;   // bodies of operands that are !φ
  while (!pending.empty()) {
    FormulaPtr operand = std::move(pending.back());
    pending.pop_back();
    if (operand->kind == kind) {
      for (auto it = operand->children.rbegin();
           it != operand->children.rend(); ++it) {
        pending.push_back(*it);
      }
      continue;
    }
    if (operand->kind == deciding) {
      return Constant(!is_and, range);
    }
    if (IsConstant(operand)) {
      continue;  // neutral element
    }
    if (operand->kind == FormulaKind::kNot) {
      const std::string key = operand->children[0]->ToString();
      if (positive_keys.count(key) != 0) {
        // φ & !φ is false; φ | !φ is true.
        return Constant(!is_and, range);
      }
      if (!negated_keys.insert(key).second) {
        continue;  // duplicate
      }
    } else {
      const std::string key = operand->ToString();
      if (negated_keys.count(key) != 0) {
        return Constant(!is_and, range);
      }
      if (!positive_keys.insert(key).second) {
        continue;  // duplicate
      }
    }
    kept.push_back(std::move(operand));
  }
  if (kept.empty()) {
    // Every operand was the neutral constant.
    return Constant(is_and, range);
  }
  if (kept.size() == 1) {
    return kept[0];
  }
  return WithRange(is_and ? And(std::move(kept)) : Or(std::move(kept)),
                   range);
}

FormulaPtr Simplify(const FormulaPtr& formula) {
  switch (formula->kind) {
    case FormulaKind::kTrue:
    case FormulaKind::kFalse:
    case FormulaKind::kAtom:
      return formula;
    case FormulaKind::kEquals: {
      const Term& left = formula->args[0];
      const Term& right = formula->args[1];
      if (left == right) {
        // x = x and c = c are identically true.
        return Constant(true, formula->range);
      }
      if (!left.is_variable() && !right.is_variable()) {
        // Distinct constants (equal ones were caught above).
        return Constant(false, formula->range);
      }
      return formula;
    }
    case FormulaKind::kNot:
      return SimplifiedNot(Simplify(formula->children[0]));
    case FormulaKind::kAnd:
    case FormulaKind::kOr: {
      std::vector<FormulaPtr> operands;
      operands.reserve(formula->children.size());
      for (const FormulaPtr& child : formula->children) {
        operands.push_back(Simplify(child));
      }
      return SimplifiedNary(formula->kind, std::move(operands),
                            formula->range);
    }
    case FormulaKind::kImplies: {
      // Desugar φ -> ψ to !φ | ψ; the disjunction simplifier then folds
      // constants (true -> ψ is ψ, φ -> false is !φ, ...).
      FormulaPtr premise = Simplify(formula->children[0]);
      FormulaPtr conclusion = Simplify(formula->children[1]);
      return SimplifiedNary(
          FormulaKind::kOr,
          {SimplifiedNot(std::move(premise)), std::move(conclusion)},
          formula->range);
    }
    case FormulaKind::kIff: {
      FormulaPtr left = Simplify(formula->children[0]);
      FormulaPtr right = Simplify(formula->children[1]);
      if (left->kind == FormulaKind::kTrue) return right;
      if (right->kind == FormulaKind::kTrue) return left;
      if (left->kind == FormulaKind::kFalse) return SimplifiedNot(right);
      if (right->kind == FormulaKind::kFalse) return SimplifiedNot(left);
      if (left->ToString() == right->ToString()) {
        return Constant(true, formula->range);
      }
      return WithRange(Iff(std::move(left), std::move(right)),
                       formula->range);
    }
    case FormulaKind::kExists:
    case FormulaKind::kForAll: {
      FormulaPtr body = Simplify(formula->children[0]);
      // Constant bodies and unused binders make the quantifier a no-op;
      // both rewrites rely on the universe being non-empty, which the text
      // formats guarantee (universe size must be positive).
      if (IsConstant(body)) {
        return body;
      }
      const std::vector<std::string> free = body->FreeVariables();
      if (std::find(free.begin(), free.end(), formula->bound_variable) ==
          free.end()) {
        return body;
      }
      FormulaPtr rebuilt =
          formula->kind == FormulaKind::kExists
              ? Exists(formula->bound_variable, std::move(body))
              : ForAll(formula->bound_variable, std::move(body));
      return WithRange(std::move(rebuilt), formula->range);
    }
  }
  QREL_CHECK_MSG(false, "corrupt formula kind");
  return formula;
}

}  // namespace

FormulaPtr SimplifyFormula(const FormulaPtr& formula) {
  QREL_CHECK(formula != nullptr);
  return Simplify(formula);
}

}  // namespace qrel
