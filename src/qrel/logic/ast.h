// Abstract syntax of first-order queries.
//
// Formulas are immutable trees shared through shared_ptr<const Formula>;
// relation symbols are referred to by *name* so that a query is independent
// of any particular database (names are resolved against a Vocabulary when
// the query is compiled for evaluation, see eval.h).
//
// The query classes of the paper are subsets of this language:
//   quantifier-free queries  — no kExists/kForAll nodes,
//   conjunctive queries      — ∃x̄ (α₁ ∧ ... ∧ α_ℓ) with atomic α_i,
//   existential queries      — no ∀ after negation normal form,
//   universal queries        — no ∃ after negation normal form.
// classify.h implements the tests.

#ifndef QREL_LOGIC_AST_H_
#define QREL_LOGIC_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "qrel/logic/diagnostics.h"
#include "qrel/relational/structure.h"

namespace qrel {

// A term: a variable (by name) or a constant universe element.
struct Term {
  enum class Kind { kVariable, kConstant };

  static Term Var(std::string name);
  static Term Const(Element value);

  bool is_variable() const { return kind == Kind::kVariable; }
  bool operator==(const Term& other) const {
    return kind == other.kind && variable == other.variable &&
           constant == other.constant;
  }

  std::string ToString() const;

  Kind kind = Kind::kConstant;
  std::string variable;   // meaningful iff kind == kVariable
  Element constant = 0;   // meaningful iff kind == kConstant
};

enum class FormulaKind {
  kTrue,
  kFalse,
  kAtom,     // R(t1, ..., tk)
  kEquals,   // t1 = t2
  kNot,
  kAnd,
  kOr,
  kImplies,
  kIff,
  kExists,
  kForAll,
};

class Formula;
using FormulaPtr = std::shared_ptr<const Formula>;

// One node of a formula tree. Fields beyond `kind` are meaningful only for
// the kinds indicated. Construct through the factory functions below.
class Formula {
 public:
  FormulaKind kind;

  // kAtom:
  std::string relation;
  std::vector<Term> args;  // also used by kEquals (exactly two terms)

  // kNot: children[0]; kAnd/kOr: children (>= 1 each);
  // kImplies/kIff: children[0], children[1];
  // kExists/kForAll: children[0] is the body.
  std::vector<FormulaPtr> children;

  // kExists/kForAll:
  std::string bound_variable;

  // Byte range of this node in the text it was parsed from (set by
  // logic/parser.cc, the source-location anchor for diagnostics); invalid
  // for programmatically built formulas. Ignored by ToString() and by all
  // semantic comparisons.
  SourceRange range;

  // Human-readable rendering (parseable back by parser.h).
  std::string ToString() const;

  // Free variables in first-appearance order (depth-first, left to right).
  std::vector<std::string> FreeVariables() const;
};

// Factory functions; the only way to build formulas.
FormulaPtr True();
FormulaPtr False();
FormulaPtr Atom(std::string relation, std::vector<Term> args);
FormulaPtr Equals(Term left, Term right);
FormulaPtr Not(FormulaPtr operand);
FormulaPtr And(std::vector<FormulaPtr> operands);
FormulaPtr And(FormulaPtr left, FormulaPtr right);
FormulaPtr Or(std::vector<FormulaPtr> operands);
FormulaPtr Or(FormulaPtr left, FormulaPtr right);
FormulaPtr Implies(FormulaPtr premise, FormulaPtr conclusion);
FormulaPtr Iff(FormulaPtr left, FormulaPtr right);
FormulaPtr Exists(std::string variable, FormulaPtr body);
// ∃v1 ∃v2 ... body, nesting right to left.
FormulaPtr Exists(const std::vector<std::string>& variables, FormulaPtr body);
FormulaPtr ForAll(std::string variable, FormulaPtr body);
FormulaPtr ForAll(const std::vector<std::string>& variables, FormulaPtr body);

// A shallow copy of `formula` carrying `range` (children stay shared).
// The parser's way of attaching source locations without widening every
// factory signature.
FormulaPtr WithRange(const FormulaPtr& formula, SourceRange range);

// Replaces free occurrences of `variable` by the constant `value`.
// Occurrences bound by a quantifier of the same name are untouched.
FormulaPtr SubstituteConstant(const FormulaPtr& formula,
                              const std::string& variable, Element value);

}  // namespace qrel

#endif  // QREL_LOGIC_AST_H_
