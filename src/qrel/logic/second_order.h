// Second-order queries: Σ¹₁ (existential second-order) sentences and their
// evaluation by enumeration over relation contents.
//
// Theorem 4.2 states the FP^#P upper bound for *all second-order* queries
// (= all of the polynomial-time hierarchy, by Fagin/Stockmeyer). This
// module makes that scope executable: a SecondOrderQuery is a block of
// existentially quantified relation variables ∃R₁...∃R_m followed by a
// first-order matrix over the database vocabulary extended with the R_i.
// Universally quantified blocks are obtained by negation (Π¹₁ = ¬Σ¹₁),
// which EvalPi11 provides.
//
// Evaluation enumerates the 2^(n^arity) contents of each relation
// variable — exponential, as it must be for NP-complete data complexity —
// and is therefore feasible only for small universes; the reliability
// algorithms inherit those limits.

#ifndef QREL_LOGIC_SECOND_ORDER_H_
#define QREL_LOGIC_SECOND_ORDER_H_

#include <memory>
#include <string>
#include <vector>

#include "qrel/logic/ast.h"
#include "qrel/logic/eval.h"
#include "qrel/relational/structure.h"
#include "qrel/util/status.h"

namespace qrel {

struct RelationVariable {
  std::string name;
  int arity = 0;
};

// ∃R₁ ... ∃R_m . matrix, with `matrix` a first-order sentence over the
// database vocabulary plus the R_i.
struct SecondOrderQuery {
  std::vector<RelationVariable> relation_variables;
  FormulaPtr matrix;
};

class CompiledSecondOrder {
 public:
  // Validates the matrix against `vocabulary` extended by the relation
  // variables (whose names must be fresh) and requires a sentence (no free
  // first-order variables).
  static StatusOr<CompiledSecondOrder> Compile(SecondOrderQuery query,
                                               const Vocabulary& vocabulary);

  // Σ¹₁ evaluation: does some assignment of contents to the relation
  // variables satisfy the matrix on `database`? `database`'s universe must
  // satisfy Σ_i n^arity_i ≤ 24 (the guess space is 2^that).
  StatusOr<bool> EvalSigma11(const AtomOracle& database) const;

  // Π¹₁ evaluation: ∀R̄ matrix = ¬∃R̄ ¬matrix.
  StatusOr<bool> EvalPi11(const AtomOracle& database) const;

  const std::vector<RelationVariable>& relation_variables() const {
    return query_.relation_variables;
  }

 private:
  CompiledSecondOrder() = default;

  StatusOr<bool> Search(const AtomOracle& database, bool negate_matrix) const;

  SecondOrderQuery query_;
  std::shared_ptr<const Vocabulary> extended_vocabulary_;
  std::unique_ptr<CompiledQuery> matrix_;          // over extended vocabulary
  std::unique_ptr<CompiledQuery> negated_matrix_;  // ¬matrix, for Π¹₁
  std::vector<int> variable_relation_ids_;         // ids in extended vocab
};

}  // namespace qrel

#endif  // QREL_LOGIC_SECOND_ORDER_H_
