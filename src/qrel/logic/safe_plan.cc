#include "qrel/logic/safe_plan.h"

#include <cstddef>
#include <map>
#include <set>
#include <utility>

#include "qrel/util/check.h"

namespace qrel {

namespace {

// An atom of the normalized matrix.
struct NormAtom {
  std::string relation;
  std::vector<Term> args;
  SourceRange range;
};

std::string AtomToString(const NormAtom& atom) {
  std::string out = atom.relation + "(";
  for (size_t i = 0; i < atom.args.size(); ++i) {
    if (i != 0) {
      out += ", ";
    }
    out += atom.args[i].ToString();
  }
  return out + ")";
}

// Union-find over terms, keyed by an unambiguous encoding (variable names
// and constant values live in different namespaces).
std::string TermKey(const Term& term) {
  return term.is_variable() ? "v:" + term.variable
                            : "c:" + std::to_string(term.constant);
}

class TermUnionFind {
 public:
  const std::string& Find(const std::string& key) {
    auto it = parent_.find(key);
    if (it == parent_.end()) {
      it = parent_.emplace(key, key).first;
    }
    while (it->second != it->first) {
      auto up = parent_.find(it->second);
      it->second = up->second;  // path halving
      it = up;
    }
    return it->first;
  }

  void Union(const Term& a, const Term& b) {
    terms_.emplace(TermKey(a), a);
    terms_.emplace(TermKey(b), b);
    std::string ra = Find(TermKey(a));
    std::string rb = Find(TermKey(b));
    if (ra != rb) {
      parent_[ra] = rb;
    }
  }

  // Equivalence classes in deterministic (key-sorted) order; singleton
  // classes of terms never mentioned in an equality do not appear.
  std::map<std::string, std::vector<Term>> Classes() {
    std::map<std::string, std::vector<Term>> classes;
    for (const auto& [key, term] : terms_) {
      classes[Find(key)].push_back(term);
    }
    return classes;
  }

 private:
  std::map<std::string, std::string> parent_;
  std::map<std::string, Term> terms_;
};

// Flattens a conjunction-of-atoms matrix into atom and equality lists.
// Returns false on any other node kind (not a conjunctive matrix).
bool FlattenMatrix(const Formula& node, std::vector<NormAtom>* atoms,
                   std::vector<const Formula*>* equalities) {
  switch (node.kind) {
    case FormulaKind::kAtom:
      atoms->push_back(NormAtom{node.relation, node.args, node.range});
      return true;
    case FormulaKind::kEquals:
      equalities->push_back(&node);
      return true;
    case FormulaKind::kAnd:
      for (const FormulaPtr& child : node.children) {
        if (!FlattenMatrix(*child, atoms, equalities)) {
          return false;
        }
      }
      return true;
    default:
      return false;
  }
}

// Index of `name` in `order`, or order.size() when absent.
size_t IndexIn(const std::vector<std::string>& order,
               const std::string& name) {
  for (size_t i = 0; i < order.size(); ++i) {
    if (order[i] == name) {
      return i;
    }
  }
  return order.size();
}

SafePlanPtr MakeNode(SafePlanNode node) {
  return std::make_shared<const SafePlanNode>(std::move(node));
}

SafePlanPtr MakeEqualityLeaf(Term left, Term right, SourceRange range) {
  SafePlanNode leaf;
  leaf.kind = SafePlanKind::kEquality;
  leaf.args = {std::move(left), std::move(right)};
  leaf.range = range;
  return MakeNode(std::move(leaf));
}

SourceRange MergeAtomRanges(const std::vector<NormAtom>& atoms,
                            const std::vector<size_t>& indices) {
  SourceRange merged;
  for (size_t index : indices) {
    merged = SourceRange::Merge(merged, atoms[index].range);
  }
  return merged;
}

// Recursive safe-plan construction over `indices` into `atoms`, with
// `bound` the quantified variables still in play (binder order). On
// failure returns nullptr and fills *blocker.
SafePlanPtr Build(const std::vector<NormAtom>& atoms,
                  const std::vector<size_t>& indices,
                  const std::vector<std::string>& bound,
                  Diagnostic* blocker) {
  if (indices.empty()) {
    SafePlanNode one;
    one.kind = SafePlanKind::kJoin;
    return MakeNode(std::move(one));
  }

  // Quantified variables used by each atom of this subquery.
  std::vector<std::set<std::string>> used(indices.size());
  for (size_t i = 0; i < indices.size(); ++i) {
    for (const Term& term : atoms[indices[i]].args) {
      if (term.is_variable() &&
          IndexIn(bound, term.variable) != bound.size()) {
        used[i].insert(term.variable);
      }
    }
  }

  // Connected components under "shares a quantified variable" (union-find
  // over positions, deterministic).
  std::vector<size_t> component(indices.size());
  for (size_t i = 0; i < indices.size(); ++i) {
    component[i] = i;
  }
  auto root_of = [&](size_t i) {
    while (component[i] != i) {
      component[i] = component[component[i]];
      i = component[i];
    }
    return i;
  };
  for (size_t i = 0; i < indices.size(); ++i) {
    for (size_t j = i + 1; j < indices.size(); ++j) {
      for (const std::string& variable : used[i]) {
        if (used[j].count(variable) != 0) {
          component[root_of(j)] = root_of(i);
          break;
        }
      }
    }
  }
  std::map<size_t, std::vector<size_t>> components;  // root → member positions
  for (size_t i = 0; i < indices.size(); ++i) {
    components[root_of(i)].push_back(i);
  }

  if (components.size() > 1) {
    // Independent join: the components share no quantified variable, and
    // self-join-freedom (checked globally before the recursion) makes
    // their ground atoms disjoint.
    SafePlanNode join;
    join.kind = SafePlanKind::kJoin;
    join.range = MergeAtomRanges(atoms, indices);
    for (const auto& [root, members] : components) {
      std::vector<size_t> child_indices;
      for (size_t position : members) {
        child_indices.push_back(indices[position]);
      }
      SafePlanPtr child = Build(atoms, child_indices, bound, blocker);
      if (child == nullptr) {
        return nullptr;
      }
      join.children.push_back(std::move(child));
    }
    return MakeNode(std::move(join));
  }

  // One component. With no quantified variable left it is a single atom
  // (an atom without quantified variables shares none, so it is a
  // component of its own): a ν-lookup leaf.
  const std::vector<size_t>& members = components.begin()->second;
  std::set<std::string> any_used;
  for (const std::set<std::string>& u : used) {
    any_used.insert(u.begin(), u.end());
  }
  if (any_used.empty()) {
    QREL_CHECK(indices.size() == 1);
    const NormAtom& atom = atoms[indices[0]];
    SafePlanNode leaf;
    leaf.kind = SafePlanKind::kAtom;
    leaf.relation = atom.relation;
    leaf.args = atom.args;
    leaf.range = atom.range;
    return MakeNode(std::move(leaf));
  }

  // Independent project: a root variable occurs in *every* atom, so the
  // instantiations x:=c touch disjoint ground atoms. First such variable
  // in binder order, for determinism.
  for (const std::string& candidate : bound) {
    if (any_used.count(candidate) == 0) {
      continue;
    }
    bool in_every_atom = true;
    for (size_t position : members) {
      if (used[position].count(candidate) == 0) {
        in_every_atom = false;
        break;
      }
    }
    if (!in_every_atom) {
      continue;
    }
    std::vector<std::string> remaining;
    for (const std::string& variable : bound) {
      if (variable != candidate) {
        remaining.push_back(variable);
      }
    }
    SafePlanPtr child = Build(atoms, indices, remaining, blocker);
    if (child == nullptr) {
      return nullptr;
    }
    SafePlanNode project;
    project.kind = SafePlanKind::kProject;
    project.variable = candidate;
    project.range = MergeAtomRanges(atoms, indices);
    project.children.push_back(std::move(child));
    return MakeNode(std::move(project));
  }

  // The hierarchy condition fails: every quantified variable of this
  // component misses some atom. Name a witness pair for the diagnostic.
  const std::string* witness_variable = nullptr;
  const NormAtom* witness_atom = nullptr;
  for (const std::string& variable : bound) {
    if (any_used.count(variable) == 0) {
      continue;
    }
    for (size_t position : members) {
      if (used[position].count(variable) == 0) {
        witness_variable = &variable;
        witness_atom = &atoms[indices[position]];
        break;
      }
    }
    if (witness_variable != nullptr) {
      break;
    }
  }
  QREL_CHECK(witness_variable != nullptr && witness_atom != nullptr);
  *blocker = MakeNote(
      "unsafe-no-root-variable",
      "no independent project: every quantified variable is missing from "
      "some atom of its component (e.g. '" +
          *witness_variable + "' does not occur in " +
          AtomToString(*witness_atom) +
          "), so the hierarchy condition fails",
      MergeAtomRanges(atoms, indices));
  return nullptr;
}

}  // namespace

std::string SafePlanNode::ToString() const {
  switch (kind) {
    case SafePlanKind::kAtom: {
      std::string out = relation + "(";
      for (size_t i = 0; i < args.size(); ++i) {
        if (i != 0) {
          out += ", ";
        }
        out += args[i].ToString();
      }
      return out + ")";
    }
    case SafePlanKind::kEquality:
      return args[0].ToString() + " = " + args[1].ToString();
    case SafePlanKind::kJoin: {
      if (children.empty()) {
        return "1";
      }
      if (children.size() == 1) {
        return children[0]->ToString();
      }
      std::string out = "(";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i != 0) {
          out += " * ";
        }
        out += children[i]->ToString();
      }
      return out + ")";
    }
    case SafePlanKind::kProject:
      QREL_CHECK(children.size() == 1);
      return "proj " + variable + " . " + children[0]->ToString();
  }
  QREL_CHECK_MSG(false, "corrupt safe-plan node");
  return "";
}

SafePlanAnalysis AnalyzeSafePlan(const FormulaPtr& formula) {
  QREL_CHECK(formula != nullptr);
  SafePlanAnalysis analysis;

  // ∃-prefix; a repeated binder name shadows the earlier one, which then
  // binds nothing and can be ignored.
  std::vector<std::string> binders;
  const Formula* node = formula.get();
  while (node->kind == FormulaKind::kExists) {
    if (IndexIn(binders, node->bound_variable) == binders.size()) {
      binders.push_back(node->bound_variable);
    }
    node = node->children[0].get();
  }
  if (binders.empty()) {
    return analysis;  // quantifier-free (or not a CQ): Prop 3.1 territory
  }

  std::vector<NormAtom> atoms;
  std::vector<const Formula*> equalities;
  if (!FlattenMatrix(*node, &atoms, &equalities)) {
    return analysis;  // not a conjunctive matrix
  }
  analysis.applicable = true;

  const std::vector<std::string> free_order = formula->FreeVariables();
  auto is_bound = [&](const std::string& name) {
    return IndexIn(binders, name) != binders.size();
  };

  // Unify the equalities.
  TermUnionFind uf;
  for (const Formula* equality : equalities) {
    uf.Union(equality->args[0], equality->args[1]);
  }

  // Pick each class's representative (constant ≻ free variable ≻ quantified
  // variable, earliest in free/binder order) and collect the residual
  // deterministic constraints among the non-quantified members.
  std::map<std::string, Term> substitution;  // variable name → representative
  std::vector<SafePlanPtr> residual_leaves;
  for (const auto& [root, members] : uf.Classes()) {
    const Term* constant = nullptr;
    const Term* second_constant = nullptr;
    const Term* free_var = nullptr;
    const Term* bound_var = nullptr;
    for (const Term& member : members) {
      if (!member.is_variable()) {
        if (constant == nullptr) {
          constant = &member;
        } else if (member.constant != constant->constant) {
          second_constant = &member;
        }
      } else if (is_bound(member.variable)) {
        if (bound_var == nullptr ||
            IndexIn(binders, member.variable) <
                IndexIn(binders, bound_var->variable)) {
          bound_var = &member;
        }
      } else {
        if (free_var == nullptr ||
            IndexIn(free_order, member.variable) <
                IndexIn(free_order, free_var->variable)) {
          free_var = &member;
        }
      }
    }
    if (second_constant != nullptr) {
      // Two distinct constants required equal: the query is identically
      // false. The whole plan is the single 0-valued leaf. (The simplifier
      // folds such queries to `false` long before dispatch; this keeps the
      // analysis total on the raw formula.)
      analysis.safe = true;
      analysis.plan =
          MakeEqualityLeaf(*constant, *second_constant, formula->range);
      analysis.diagnostics.push_back(MakeNote(
          "safe-plan", "safe plan: " + analysis.plan->ToString(),
          formula->range));
      return analysis;
    }
    const Term* representative =
        constant != nullptr ? constant
                            : (free_var != nullptr ? free_var : bound_var);
    QREL_CHECK(representative != nullptr);
    for (const Term& member : members) {
      if (member.is_variable() && !(member == *representative)) {
        substitution.emplace(member.variable, *representative);
      }
      // Equalities among the non-quantified members survive as
      // deterministic 0/1 leaves; equalities involving a quantified
      // variable are absorbed by the substitution (∃x (x = t ∧ φ) ≡ φ[x:=t]
      // over a nonempty universe).
      bool deterministic =
          !member.is_variable() || !is_bound(member.variable);
      if (deterministic && !(member == *representative)) {
        residual_leaves.push_back(
            MakeEqualityLeaf(*representative, member, formula->range));
      }
    }
  }

  // Apply the substitution; drop binders that no longer reach any atom
  // (sound: universes are nonempty), merge duplicate atoms.
  std::vector<NormAtom> normalized;
  for (NormAtom atom : atoms) {
    for (Term& term : atom.args) {
      if (term.is_variable()) {
        auto it = substitution.find(term.variable);
        if (it != substitution.end()) {
          term = it->second;
        }
      }
    }
    bool duplicate = false;
    for (const NormAtom& seen : normalized) {
      if (seen.relation == atom.relation && seen.args == atom.args) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) {
      normalized.push_back(std::move(atom));
    }
  }
  std::vector<std::string> live_binders;
  for (const std::string& binder : binders) {
    bool used = false;
    for (const NormAtom& atom : normalized) {
      for (const Term& term : atom.args) {
        if (term.is_variable() && term.variable == binder) {
          used = true;
          break;
        }
      }
      if (used) {
        break;
      }
    }
    if (used) {
      live_binders.push_back(binder);
    }
  }

  // Self-join-freedom: two *distinct* atoms over one relation put the
  // query outside the safe class (conservatively — constants could make
  // some such pairs independent, but those fall through to the ladder).
  for (size_t i = 0; i < normalized.size(); ++i) {
    for (size_t j = i + 1; j < normalized.size(); ++j) {
      if (normalized[i].relation != normalized[j].relation) {
        continue;
      }
      analysis.diagnostics.push_back(MakeNote(
          "unsafe-self-join",
          "self-join: relation '" + normalized[i].relation +
              "' occurs in two distinct atoms " +
              AtomToString(normalized[i]) + " and " +
              AtomToString(normalized[j]) +
              ", whose ground instantiations are not independent",
          SourceRange::Merge(normalized[i].range, normalized[j].range)));
      return analysis;
    }
  }

  std::vector<size_t> all_indices;
  for (size_t i = 0; i < normalized.size(); ++i) {
    all_indices.push_back(i);
  }
  Diagnostic blocker;
  SafePlanPtr body = Build(normalized, all_indices, live_binders, &blocker);
  if (body == nullptr) {
    analysis.diagnostics.push_back(std::move(blocker));
    return analysis;
  }

  SafePlanPtr plan;
  if (residual_leaves.empty()) {
    plan = std::move(body);
  } else if (body->kind == SafePlanKind::kJoin && body->children.empty() &&
             residual_leaves.size() == 1) {
    plan = std::move(residual_leaves[0]);
  } else {
    SafePlanNode join;
    join.kind = SafePlanKind::kJoin;
    join.range = formula->range;
    join.children = std::move(residual_leaves);
    if (!(body->kind == SafePlanKind::kJoin && body->children.empty())) {
      join.children.push_back(std::move(body));
    }
    plan = MakeNode(std::move(join));
  }

  analysis.safe = true;
  analysis.plan = std::move(plan);
  analysis.diagnostics.push_back(MakeNote(
      "safe-plan", "safe plan: " + analysis.plan->ToString(),
      formula->range));
  return analysis;
}

bool HasSafePlan(const FormulaPtr& formula) {
  SafePlanAnalysis analysis = AnalyzeSafePlan(formula);
  return analysis.applicable && analysis.safe;
}

}  // namespace qrel
