// Semantics-preserving formula simplification.
//
// SimplifyFormula rewrites a formula into an equivalent one that is never
// *harder* for the engine: the simplified formula's Classify() result is at
// least as specific (PlanRank never increases), and a statically decided
// formula collapses all the way to the constant true/false, which the
// engine answers in closed form without enumerating or sampling anything.
//
// Rewrites applied (bottom-up, single pass):
//   * constant folding        — !true → false, true & φ → φ, false & φ →
//                               false, true | φ → true, false | φ → φ,
//                               c = c → true, c = c' → false, x = x → true,
//                               true <-> φ → φ, false <-> φ → !φ;
//   * double negation         — !!φ → φ;
//   * implication desugaring  — φ → ψ rewrites to !φ | ψ (the NNF the
//                               classifier reasons over, now materialized);
//   * vacuous quantifiers     — ∃x.φ / ∀x.φ → φ when x is not free in φ
//                               (sound because universes are non-empty);
//   * contradictory conjuncts — a conjunction containing both φ and !φ is
//                               false; the dual disjunction is true;
//   * duplicate operands      — φ & φ → φ, φ | φ → φ.
//
// Equivalence is pointwise over every structure with a non-empty universe
// (text_format.cc enforces universe >= 1), so reliability, per-tuple error
// and answer sets are unchanged whenever the free-variable list is
// preserved. Simplification can *drop* free variables (e.g. S(x) & y = y
// loses y); the engine only substitutes the simplified formula when the
// free-variable lists match (see logic/analyze.h).

#ifndef QREL_LOGIC_SIMPLIFY_H_
#define QREL_LOGIC_SIMPLIFY_H_

#include "qrel/logic/ast.h"

namespace qrel {

// The simplified, equivalent formula. Source ranges are inherited from the
// nodes that survive, so diagnostics on the simplified formula still point
// into the original text. Idempotent: simplifying twice changes nothing.
FormulaPtr SimplifyFormula(const FormulaPtr& formula);

}  // namespace qrel

#endif  // QREL_LOGIC_SIMPLIFY_H_
