#include "qrel/logic/second_order.h"

#include <utility>

#include "qrel/util/check.h"

namespace qrel {

namespace {

// The database plus guessed contents for the relation variables.
// Variable relations have ids >= base_count in the extended vocabulary;
// their contents are bitsets over rank(tuple) = Σ tuple[i]·n^(k-1-i).
class OverlayOracle : public AtomOracle {
 public:
  OverlayOracle(const AtomOracle& base, const Vocabulary& extended,
                int base_count,
                const std::vector<std::vector<uint8_t>>* guesses)
      : base_(base),
        extended_(extended),
        base_count_(base_count),
        guesses_(guesses) {}

  const Vocabulary& vocabulary() const override { return extended_; }
  int universe_size() const override { return base_.universe_size(); }

  bool AtomTrue(int relation_id, const Tuple& tuple) const override {
    if (relation_id < base_count_) {
      return base_.AtomTrue(relation_id, tuple);
    }
    size_t rank = 0;
    for (Element value : tuple) {
      rank = rank * static_cast<size_t>(base_.universe_size()) +
             static_cast<size_t>(value);
    }
    return (*guesses_)[static_cast<size_t>(relation_id - base_count_)]
                      [rank] != 0;
  }

 private:
  const AtomOracle& base_;
  const Vocabulary& extended_;
  int base_count_;
  const std::vector<std::vector<uint8_t>>* guesses_;
};

}  // namespace

StatusOr<CompiledSecondOrder> CompiledSecondOrder::Compile(
    SecondOrderQuery query, const Vocabulary& vocabulary) {
  if (query.matrix == nullptr) {
    return Status::InvalidArgument("second-order query has no matrix");
  }
  if (!query.matrix->FreeVariables().empty()) {
    return Status::InvalidArgument(
        "second-order queries must be sentences (free first-order "
        "variable '" +
        query.matrix->FreeVariables()[0] + "')");
  }

  // Extended vocabulary: the base relations (ids preserved) followed by
  // the relation variables.
  auto extended = std::make_shared<Vocabulary>();
  for (int r = 0; r < vocabulary.relation_count(); ++r) {
    extended->AddRelation(vocabulary.relation(r).name,
                          vocabulary.relation(r).arity);
  }
  CompiledSecondOrder compiled;
  for (const RelationVariable& variable : query.relation_variables) {
    if (variable.arity < 0) {
      return Status::InvalidArgument("negative relation-variable arity");
    }
    if (extended->FindRelation(variable.name).has_value()) {
      return Status::InvalidArgument(
          "relation variable '" + variable.name +
          "' collides with an existing relation or variable");
    }
    compiled.variable_relation_ids_.push_back(
        extended->AddRelation(variable.name, variable.arity));
  }

  StatusOr<CompiledQuery> matrix =
      CompiledQuery::Compile(query.matrix, *extended);
  if (!matrix.ok()) {
    return matrix.status();
  }
  StatusOr<CompiledQuery> negated =
      CompiledQuery::Compile(Not(query.matrix), *extended);
  if (!negated.ok()) {
    return negated.status();
  }

  compiled.query_ = std::move(query);
  compiled.extended_vocabulary_ = std::move(extended);
  compiled.matrix_ =
      std::make_unique<CompiledQuery>(std::move(matrix).value());
  compiled.negated_matrix_ =
      std::make_unique<CompiledQuery>(std::move(negated).value());
  return compiled;
}

StatusOr<bool> CompiledSecondOrder::Search(const AtomOracle& database,
                                           bool negate_matrix) const {
  int n = database.universe_size();

  // Size of the guess space.
  std::vector<size_t> cells;
  size_t total_bits = 0;
  for (const RelationVariable& variable : query_.relation_variables) {
    size_t count = 1;
    for (int i = 0; i < variable.arity; ++i) {
      count *= static_cast<size_t>(n);
      if (count > 64) {
        return Status::OutOfRange(
            "second-order guess space exceeds 2^64 contents per variable");
      }
    }
    cells.push_back(count);
    total_bits += count;
    if (total_bits > 24) {
      return Status::OutOfRange(
          "second-order evaluation would enumerate more than 2^24 "
          "relation contents");
    }
  }

  std::vector<std::vector<uint8_t>> guesses;
  for (size_t count : cells) {
    guesses.emplace_back(count, 0);
  }
  OverlayOracle oracle(database, *extended_vocabulary_,
                       extended_vocabulary_->relation_count() -
                           static_cast<int>(query_.relation_variables.size()),
                       &guesses);
  const CompiledQuery& target = negate_matrix ? *negated_matrix_ : *matrix_;

  uint64_t codes = uint64_t{1} << total_bits;
  for (uint64_t code = 0; code < codes; ++code) {
    uint64_t bits = code;
    for (size_t v = 0; v < guesses.size(); ++v) {
      for (size_t c = 0; c < guesses[v].size(); ++c) {
        guesses[v][c] = bits & 1u;
        bits >>= 1;
      }
    }
    if (target.Eval(oracle, {})) {
      return true;
    }
  }
  return false;
}

StatusOr<bool> CompiledSecondOrder::EvalSigma11(
    const AtomOracle& database) const {
  return Search(database, /*negate_matrix=*/false);
}

StatusOr<bool> CompiledSecondOrder::EvalPi11(
    const AtomOracle& database) const {
  StatusOr<bool> witness = Search(database, /*negate_matrix=*/true);
  if (!witness.ok()) {
    return witness;
  }
  return !*witness;
}

}  // namespace qrel
