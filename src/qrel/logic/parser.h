// Text syntax for first-order queries.
//
// Grammar (precedence low to high: <->, ->, |, &, !, quantifiers bind
// their whole scope to the right):
//
//   formula  := iff
//   iff      := implies ("<->" implies)*
//   implies  := or ("->" or)*          (right-associative)
//   or       := and ("|" and)*
//   and      := unary ("&" unary)*
//   unary    := "!" unary | quant | primary
//   quant    := ("exists" | "forall") ident+ "." formula
//   primary  := "(" formula ")" | "true" | "false"
//             | ident "(" terms? ")"                 (relational atom)
//             | term "=" term | term "!=" term       (equality; != sugar)
//   term     := ident | "#"? integer                 (integers are constants)
//
// Examples:
//   exists x y z . L(x,y) & R(x,z) & S(y) & S(z)          (Prop. 3.2 query)
//   exists x y . E(x,y) & (R1(x) <-> R1(y)) & (R2(x) <-> R2(y))

#ifndef QREL_LOGIC_PARSER_H_
#define QREL_LOGIC_PARSER_H_

#include <string_view>

#include "qrel/logic/ast.h"
#include "qrel/logic/diagnostics.h"
#include "qrel/util/status.h"

namespace qrel {

// Parses `text` into a formula; reports syntax errors with positions.
// Every node of the returned formula carries the source range it was
// parsed from (Formula::range), the anchor for analyzer diagnostics.
StatusOr<FormulaPtr> ParseFormula(std::string_view text);

// Like above; on a syntax error additionally fills `*syntax_error` (when
// non-null) with a source-located Diagnostic (check id "syntax-error"), so
// parse errors and static-analysis findings share one machine-readable
// output path (see logic/diagnostics.h).
StatusOr<FormulaPtr> ParseFormula(std::string_view text,
                                  Diagnostic* syntax_error);

}  // namespace qrel

#endif  // QREL_LOGIC_PARSER_H_
