// The Theorem 5.4 grounding: from an existential query over an unreliable
// database to a propositional kDNF formula over the uncertain atoms.
//
//   ψ(x̄) = ∃ȳ φ(x̄, ȳ)   ↦   ψ'(x̄) = ⋁_b̄ φ(x̄, b̄)   ↦   ψ''
//
// where ψ'' replaces equalities by their truth values and treats atomic
// statements as propositional variables. We additionally fold in atoms
// whose truth is certain (error probability 0, or 1), so the variables of
// ψ'' are exactly the error-model entries with 0 < μ < 1. The number of
// literals per disjunct is bounded by the width of φ's DNF — independent
// of the database — so ψ'' is a kDNF of size polynomial in n, as the
// theorem requires.

#ifndef QREL_LOGIC_GROUNDING_H_
#define QREL_LOGIC_GROUNDING_H_

#include <vector>

#include "qrel/logic/normal_form.h"
#include "qrel/prob/unreliable_database.h"
#include "qrel/util/run_context.h"
#include "qrel/util/status.h"

namespace qrel {

// A literal of the grounded DNF: an error-model entry id, possibly negated.
struct GroundLiteral {
  int entry = 0;
  bool positive = true;

  bool operator==(const GroundLiteral& other) const {
    return entry == other.entry && positive == other.positive;
  }
  bool operator<(const GroundLiteral& other) const {
    if (entry != other.entry) return entry < other.entry;
    return positive < other.positive;
  }
};

// A propositional DNF over error-model entries. Terms are consistent
// (no complementary pair) and duplicate-free, with literals sorted by
// entry id; the term list is duplicate-free.
struct GroundDnf {
  std::vector<std::vector<GroundLiteral>> terms;
  // Some disjunct reduced to the empty (always-true) term: the query holds
  // in every world with positive probability. `terms` is empty then.
  bool certainly_true = false;

  // The k of kDNF: maximum number of literals in a term (0 if no terms).
  int Width() const;
};

// Grounds the prenex-existential query against `database`, with
// `free_assignment` supplying values for prenex.free_variables (in order;
// empty for sentences). Fails with OutOfRange if more than `max_terms`
// ground terms survive (the bound exists to keep malformed inputs from
// exhausting memory; the construction itself is polynomial for a fixed
// query). `ctx` (nullable) is charged one work unit per bound-variable
// assignment plus one per emitted ground clause; a tripped envelope stops
// the expansion with the budget status.
StatusOr<GroundDnf> GroundExistential(const PrenexExistential& prenex,
                                      const UnreliableDatabase& database,
                                      const Tuple& free_assignment,
                                      size_t max_terms = size_t{1} << 22,
                                      RunContext* ctx = nullptr);

}  // namespace qrel

#endif  // QREL_LOGIC_GROUNDING_H_
