// Negation normal form, DNF of quantifier-free matrices, and the prenex
// existential form used by the Theorem 5.4 grounding.
//
// For a *fixed* query these transformations take constant time; the
// exponential worst case in the formula size is irrelevant for data
// complexity but is still guarded with explicit limits so malformed input
// cannot blow up memory.

#ifndef QREL_LOGIC_NORMAL_FORM_H_
#define QREL_LOGIC_NORMAL_FORM_H_

#include <string>
#include <vector>

#include "qrel/logic/ast.h"
#include "qrel/util/status.h"

namespace qrel {

// Rewrites to negation normal form: eliminates -> and <->, pushes negation
// down to atoms/equalities (and truth constants), preserving quantifiers.
FormulaPtr ToNnf(const FormulaPtr& formula);

// Replaces free occurrences of variable `from` by variable `to`.
FormulaPtr SubstituteVariable(const FormulaPtr& formula,
                              const std::string& from, const std::string& to);

// A literal of a quantifier-free matrix: a possibly negated atom or
// equality (`atom->kind` is kAtom or kEquals).
struct SymbolicLiteral {
  bool positive = true;
  FormulaPtr atom;
};
// A conjunction of literals; one disjunct of a DNF. The empty conjunct is
// the constant true.
using SymbolicConjunct = std::vector<SymbolicLiteral>;

// Distributes a quantifier-free NNF formula into DNF. Conjuncts containing
// complementary literals are dropped and duplicate literals are merged, so
// the result is a set of consistent conjuncts (empty vector = false).
// Fails if the distribution would exceed `max_conjuncts`.
StatusOr<std::vector<SymbolicConjunct>> QfNnfToDnf(
    const FormulaPtr& qf_nnf, size_t max_conjuncts = size_t{1} << 20);

// ∃ x1 ... xq . matrix with a quantifier-free NNF matrix; the normal form
// behind Theorem 5.4. Bound variables are freshly renamed ("_e0", "_e1",
// ...) so they are pairwise distinct and distinct from the free variables,
// which is what makes hoisting ∃ out of ∧/∨ sound.
struct PrenexExistential {
  std::vector<std::string> free_variables;
  std::vector<std::string> bound_variables;
  FormulaPtr matrix;
};

// Computes the prenex existential form. Fails with InvalidArgument if the
// formula is not existential (its NNF contains a universal quantifier).
StatusOr<PrenexExistential> ToPrenexExistential(const FormulaPtr& formula);

}  // namespace qrel

#endif  // QREL_LOGIC_NORMAL_FORM_H_
