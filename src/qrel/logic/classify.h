// Syntactic classification of queries into the classes the paper assigns
// different complexity to. The engine (engine/engine.h) uses the most
// specific class to pick a reliability algorithm:
//
//   quantifier-free  — Prop. 3.1: reliability in polynomial time,
//   safe conjunctive — the safe (hierarchical) self-join-free subclass of
//                      the dichotomy literature: exact polynomial
//                      reliability by extensional safe-plan evaluation
//                      (logic/safe_plan.h, lifted/extensional.h),
//   conjunctive      — Prop. 3.2: #P-hard in general; FPTRAS applies,
//   existential     — Thm. 5.4 / Cor. 5.5: FPTRAS for ν, absolute-error
//                     approximation for R_ψ,
//   universal       — dual of existential (Cor. 5.5),
//   general FO      — Thm. 4.2: FP^#P exact; Thm. 5.12: absolute-error
//                     randomized approximation.

#ifndef QREL_LOGIC_CLASSIFY_H_
#define QREL_LOGIC_CLASSIFY_H_

#include <string>

#include "qrel/logic/ast.h"

namespace qrel {

enum class QueryClass {
  kQuantifierFree,
  kSafeConjunctive,
  kConjunctive,
  kExistential,
  kUniversal,
  kGeneralFirstOrder,
};

// Stable display name ("quantifier-free", "conjunctive", ...).
const char* QueryClassName(QueryClass query_class);

// No quantifiers anywhere.
bool IsQuantifierFree(const FormulaPtr& formula);

// ∃x1...∃xk (α1 ∧ ... ∧ αℓ) with every αi an atom or equality (negation-
// free), following the paper's definition of conjunctive queries.
bool IsConjunctiveQuery(const FormulaPtr& formula);

// A *quantified* conjunctive query that is self-join-free and admits a
// safe plan (logic/safe_plan.h): exact polynomial reliability without
// worlds or samples. Quantifier-free conjunctions are excluded — they
// already have the better Prop. 3.1 rung.
bool IsSafeConjunctiveQuery(const FormulaPtr& formula);

// The negation normal form contains no universal quantifier.
bool IsExistential(const FormulaPtr& formula);

// The negation normal form contains no existential quantifier.
bool IsUniversal(const FormulaPtr& formula);

// The most specific class, in the order quantifier-free, safe
// conjunctive, conjunctive, existential, universal, general
// (quantifier-free wins because Prop. 3.1 gives it the best algorithm;
// conjunctive queries that happen to be quantifier-free are therefore
// reported as quantifier-free).
QueryClass Classify(const FormulaPtr& formula);

// How good an algorithm the class gets, smaller = better: 0
// quantifier-free (Prop. 3.1 exact polynomial), 1 safe conjunctive (exact
// polynomial safe-plan evaluation), 2 conjunctive, 3
// existential/universal (both get the Cor. 5.5 absolute-error
// FPTRAS-based approximation), 4 general first-order (Thm. 5.12 padded
// estimation only). The simplifier's contract (logic/simplify.h) is that
// PlanRank(Classify(simplified)) <= PlanRank(Classify(original)).
int PlanRank(QueryClass query_class);

}  // namespace qrel

#endif  // QREL_LOGIC_CLASSIFY_H_
