// Safe-plan analysis for self-join-free conjunctive queries.
//
// The paper proves reliability #P-hard already for conjunctive queries
// (Prop. 3.2), but the dichotomy literature (Dalvi–Suciu; Amarilli–
// Kimelfeld, "Uniform Reliability of Self-Join-Free Conjunctive Queries")
// identifies the *safe* subclass, recognizable syntactically, where the
// query probability factors over independent tuple events and is exact in
// polynomial time. This module is the recognizer: it normalizes a
// conjunctive query ∃x̄ (α₁ ∧ ... ∧ α_ℓ), checks self-join-freedom, and
// recursively applies the two safe-plan rules:
//
//   independent join     the atoms split into components that share no
//                        quantified variable; since the query is self-join-
//                        free, components touch disjoint ground atoms and
//                        Pr[φ₁ ∧ φ₂] = Pr[φ₁]·Pr[φ₂];
//   independent project  some quantified variable x (a *root* variable)
//                        occurs in every atom, so the instantiations
//                        φ[x:=c] touch disjoint ground atoms and
//                        Pr[∃x φ] = 1 − Π_c (1 − Pr[φ[x:=c]]).
//
// A query where the recursion completes is *safe* and gets a SafePlan tree
// that lifted/extensional.h evaluates directly against the tuple marginals
// ν — no worlds, no samples, exact rationals. A query where it gets stuck
// is reported unsafe with a located diagnostic naming the blocking
// structure (the atom pair sharing a relation, or the quantified variables
// none of which reaches every atom). Unsafe queries are not wrong, just
// hard: they fall through to the engine's existing ladder.
//
// Normalization (performed before the rules, mirroring what the
// simplifier is allowed to do so the verdict is stable under
// simplification): equalities are unified away (preferring constants, then
// free variables, as class representatives), with equalities among free
// variables/constants kept as deterministic 0/1 leaves; duplicate atoms
// are merged; binders whose variable occurs in no atom are dropped (sound
// because universes are nonempty).
//
// Check ids emitted here (see DESIGN.md "Static analysis and plan
// explanation"):
//   note safe-plan                the query is safe; message carries the plan
//   note unsafe-self-join         two distinct atoms share a relation
//   note unsafe-no-root-variable  a component has no root variable (the
//                                 hierarchy condition fails)

#ifndef QREL_LOGIC_SAFE_PLAN_H_
#define QREL_LOGIC_SAFE_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "qrel/logic/ast.h"
#include "qrel/logic/diagnostics.h"

namespace qrel {

enum class SafePlanKind {
  kAtom,      // ν lookup: R(t̄) with t̄ over constants, free and projected vars
  kEquality,  // deterministic 0/1 leaf: t₁ = t₂ (no quantified variables)
  kJoin,      // independent product over the children (empty product = 1)
  kProject,   // independent project on `variable` over the single child
};

struct SafePlanNode;
using SafePlanPtr = std::shared_ptr<const SafePlanNode>;

struct SafePlanNode {
  SafePlanKind kind = SafePlanKind::kJoin;

  // kAtom:
  std::string relation;
  std::vector<Term> args;  // also kEquality (exactly two terms)

  // kProject:
  std::string variable;

  // kJoin (any number), kProject (exactly one):
  std::vector<SafePlanPtr> children;

  // Source range of the formula fragment this node was built from (merged
  // over the component for kJoin/kProject); may be invalid.
  SourceRange range;

  // Rendering: "proj x . (S(x) * E(x, y))"; the empty join renders "1".
  std::string ToString() const;
};

struct SafePlanAnalysis {
  // Whether the safe-plan rules are even in scope: the formula is a
  // *quantified* conjunctive query (quantifier-free conjunctions already
  // have the better Prop. 3.1 rung and are reported not applicable).
  bool applicable = false;
  // Whether the recursion completed; implies applicable.
  bool safe = false;
  // The plan, when safe.
  SafePlanPtr plan;
  // One note: safe-plan when safe, else the blocking unsafe-* diagnostic.
  std::vector<Diagnostic> diagnostics;
};

// Analyzes `formula`. Purely syntactic: needs no vocabulary and no
// database (the plan stores relation *names*; lifted/extensional.h
// resolves them when it evaluates).
SafePlanAnalysis AnalyzeSafePlan(const FormulaPtr& formula);

// Convenience: applicable && safe.
bool HasSafePlan(const FormulaPtr& formula);

}  // namespace qrel

#endif  // QREL_LOGIC_SAFE_PLAN_H_
