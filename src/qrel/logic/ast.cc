#include "qrel/logic/ast.h"

#include <algorithm>
#include <utility>

#include "qrel/util/check.h"

namespace qrel {

Term Term::Var(std::string name) {
  Term term;
  term.kind = Kind::kVariable;
  term.variable = std::move(name);
  return term;
}

Term Term::Const(Element value) {
  Term term;
  term.kind = Kind::kConstant;
  term.constant = value;
  return term;
}

std::string Term::ToString() const {
  if (is_variable()) {
    return variable;
  }
  return "#" + std::to_string(constant);
}

namespace {

std::shared_ptr<Formula> MakeNode(FormulaKind kind) {
  auto node = std::make_shared<Formula>();
  node->kind = kind;
  return node;
}

const char* ConnectiveSymbol(FormulaKind kind) {
  switch (kind) {
    case FormulaKind::kAnd:
      return " & ";
    case FormulaKind::kOr:
      return " | ";
    case FormulaKind::kImplies:
      return " -> ";
    case FormulaKind::kIff:
      return " <-> ";
    default:
      QREL_CHECK_MSG(false, "not a connective");
      return "";
  }
}

void CollectFreeVariables(const Formula& formula,
                          std::vector<std::string>* bound,
                          std::vector<std::string>* result) {
  auto visit_term = [&](const Term& term) {
    if (!term.is_variable()) {
      return;
    }
    if (std::find(bound->begin(), bound->end(), term.variable) !=
        bound->end()) {
      return;
    }
    if (std::find(result->begin(), result->end(), term.variable) ==
        result->end()) {
      result->push_back(term.variable);
    }
  };
  switch (formula.kind) {
    case FormulaKind::kTrue:
    case FormulaKind::kFalse:
      return;
    case FormulaKind::kAtom:
    case FormulaKind::kEquals:
      for (const Term& term : formula.args) {
        visit_term(term);
      }
      return;
    case FormulaKind::kExists:
    case FormulaKind::kForAll:
      bound->push_back(formula.bound_variable);
      CollectFreeVariables(*formula.children[0], bound, result);
      bound->pop_back();
      return;
    default:
      for (const FormulaPtr& child : formula.children) {
        CollectFreeVariables(*child, bound, result);
      }
      return;
  }
}

}  // namespace

std::string Formula::ToString() const {
  switch (kind) {
    case FormulaKind::kTrue:
      return "true";
    case FormulaKind::kFalse:
      return "false";
    case FormulaKind::kAtom: {
      std::string result = relation + "(";
      for (size_t i = 0; i < args.size(); ++i) {
        if (i != 0) result += ", ";
        result += args[i].ToString();
      }
      return result + ")";
    }
    case FormulaKind::kEquals:
      return args[0].ToString() + " = " + args[1].ToString();
    case FormulaKind::kNot:
      return "!(" + children[0]->ToString() + ")";
    case FormulaKind::kAnd:
    case FormulaKind::kOr:
    case FormulaKind::kImplies:
    case FormulaKind::kIff: {
      std::string result = "(";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i != 0) result += ConnectiveSymbol(kind);
        result += children[i]->ToString();
      }
      return result + ")";
    }
    case FormulaKind::kExists:
      return "exists " + bound_variable + " . (" + children[0]->ToString() +
             ")";
    case FormulaKind::kForAll:
      return "forall " + bound_variable + " . (" + children[0]->ToString() +
             ")";
  }
  QREL_CHECK_MSG(false, "corrupt formula kind");
  return "";
}

std::vector<std::string> Formula::FreeVariables() const {
  std::vector<std::string> bound;
  std::vector<std::string> result;
  CollectFreeVariables(*this, &bound, &result);
  return result;
}

FormulaPtr True() { return MakeNode(FormulaKind::kTrue); }

FormulaPtr False() { return MakeNode(FormulaKind::kFalse); }

FormulaPtr Atom(std::string relation, std::vector<Term> args) {
  auto node = MakeNode(FormulaKind::kAtom);
  node->relation = std::move(relation);
  node->args = std::move(args);
  return node;
}

FormulaPtr Equals(Term left, Term right) {
  auto node = MakeNode(FormulaKind::kEquals);
  node->args = {std::move(left), std::move(right)};
  return node;
}

FormulaPtr Not(FormulaPtr operand) {
  QREL_CHECK(operand != nullptr);
  auto node = MakeNode(FormulaKind::kNot);
  node->children = {std::move(operand)};
  return node;
}

FormulaPtr And(std::vector<FormulaPtr> operands) {
  QREL_CHECK(!operands.empty());
  if (operands.size() == 1) {
    return operands[0];
  }
  auto node = MakeNode(FormulaKind::kAnd);
  node->children = std::move(operands);
  return node;
}

FormulaPtr And(FormulaPtr left, FormulaPtr right) {
  return And(std::vector<FormulaPtr>{std::move(left), std::move(right)});
}

FormulaPtr Or(std::vector<FormulaPtr> operands) {
  QREL_CHECK(!operands.empty());
  if (operands.size() == 1) {
    return operands[0];
  }
  auto node = MakeNode(FormulaKind::kOr);
  node->children = std::move(operands);
  return node;
}

FormulaPtr Or(FormulaPtr left, FormulaPtr right) {
  return Or(std::vector<FormulaPtr>{std::move(left), std::move(right)});
}

FormulaPtr Implies(FormulaPtr premise, FormulaPtr conclusion) {
  auto node = MakeNode(FormulaKind::kImplies);
  node->children = {std::move(premise), std::move(conclusion)};
  return node;
}

FormulaPtr Iff(FormulaPtr left, FormulaPtr right) {
  auto node = MakeNode(FormulaKind::kIff);
  node->children = {std::move(left), std::move(right)};
  return node;
}

FormulaPtr Exists(std::string variable, FormulaPtr body) {
  QREL_CHECK(body != nullptr);
  auto node = MakeNode(FormulaKind::kExists);
  node->bound_variable = std::move(variable);
  node->children = {std::move(body)};
  return node;
}

FormulaPtr Exists(const std::vector<std::string>& variables, FormulaPtr body) {
  FormulaPtr result = std::move(body);
  for (size_t i = variables.size(); i-- > 0;) {
    result = Exists(variables[i], std::move(result));
  }
  return result;
}

FormulaPtr ForAll(std::string variable, FormulaPtr body) {
  QREL_CHECK(body != nullptr);
  auto node = MakeNode(FormulaKind::kForAll);
  node->bound_variable = std::move(variable);
  node->children = {std::move(body)};
  return node;
}

FormulaPtr ForAll(const std::vector<std::string>& variables, FormulaPtr body) {
  FormulaPtr result = std::move(body);
  for (size_t i = variables.size(); i-- > 0;) {
    result = ForAll(variables[i], std::move(result));
  }
  return result;
}

FormulaPtr WithRange(const FormulaPtr& formula, SourceRange range) {
  QREL_CHECK(formula != nullptr);
  if (formula->range.begin == range.begin &&
      formula->range.end == range.end) {
    return formula;
  }
  auto node = std::make_shared<Formula>(*formula);
  node->range = range;
  return node;
}

FormulaPtr SubstituteConstant(const FormulaPtr& formula,
                              const std::string& variable, Element value) {
  switch (formula->kind) {
    case FormulaKind::kTrue:
    case FormulaKind::kFalse:
      return formula;
    case FormulaKind::kAtom:
    case FormulaKind::kEquals: {
      bool changed = false;
      std::vector<Term> args = formula->args;
      for (Term& term : args) {
        if (term.is_variable() && term.variable == variable) {
          term = Term::Const(value);
          changed = true;
        }
      }
      if (!changed) {
        return formula;
      }
      if (formula->kind == FormulaKind::kAtom) {
        return Atom(formula->relation, std::move(args));
      }
      return Equals(args[0], args[1]);
    }
    case FormulaKind::kExists:
    case FormulaKind::kForAll: {
      if (formula->bound_variable == variable) {
        return formula;  // shadowed; no free occurrences below
      }
      FormulaPtr body =
          SubstituteConstant(formula->children[0], variable, value);
      if (body == formula->children[0]) {
        return formula;
      }
      return formula->kind == FormulaKind::kExists
                 ? Exists(formula->bound_variable, std::move(body))
                 : ForAll(formula->bound_variable, std::move(body));
    }
    default: {
      bool changed = false;
      std::vector<FormulaPtr> children;
      children.reserve(formula->children.size());
      for (const FormulaPtr& child : formula->children) {
        FormulaPtr replaced = SubstituteConstant(child, variable, value);
        changed = changed || replaced != child;
        children.push_back(std::move(replaced));
      }
      if (!changed) {
        return formula;
      }
      auto node = MakeNode(formula->kind);
      node->children = std::move(children);
      return node;
    }
  }
}

}  // namespace qrel
