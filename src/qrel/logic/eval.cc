#include "qrel/logic/eval.h"

#include <utility>

#include "qrel/util/check.h"

namespace qrel {

StatusOr<CompiledQuery> CompiledQuery::Compile(FormulaPtr formula,
                                               const Vocabulary& vocabulary) {
  QREL_CHECK(formula != nullptr);
  CompiledQuery query;
  query.formula_ = formula;
  query.free_variables_ = formula->FreeVariables();

  // Free variables occupy the first slots, in answer-column order.
  std::vector<std::pair<std::string, int>> scope;
  int next_slot = 0;
  for (const std::string& name : query.free_variables_) {
    scope.emplace_back(name, next_slot++);
  }
  StatusOr<std::unique_ptr<Node>> root =
      CompileNode(*formula, vocabulary, &scope, &next_slot);
  if (!root.ok()) {
    return root.status();
  }
  query.root_ = std::move(root).value();
  query.slot_count_ = next_slot;
  return query;
}

StatusOr<std::unique_ptr<CompiledQuery::Node>> CompiledQuery::CompileNode(
    const Formula& formula, const Vocabulary& vocabulary,
    std::vector<std::pair<std::string, int>>* scope, int* next_slot) {
  auto node = std::make_unique<Node>();
  node->kind = formula.kind;

  auto compile_term = [&](const Term& term) -> StatusOr<CompiledTerm> {
    CompiledTerm compiled;
    if (term.is_variable()) {
      // Innermost binding wins (quantifiers may shadow outer variables).
      for (size_t i = scope->size(); i-- > 0;) {
        if ((*scope)[i].first == term.variable) {
          compiled.is_slot = true;
          compiled.slot = (*scope)[i].second;
          return compiled;
        }
      }
      return Status::Internal("unbound variable '" + term.variable + "'");
    }
    compiled.constant = term.constant;
    return compiled;
  };

  switch (formula.kind) {
    case FormulaKind::kTrue:
    case FormulaKind::kFalse:
      return node;
    case FormulaKind::kAtom: {
      std::optional<int> relation = vocabulary.FindRelation(formula.relation);
      if (!relation.has_value()) {
        return Status::InvalidArgument("unknown relation '" +
                                       formula.relation + "'");
      }
      int arity = vocabulary.relation(*relation).arity;
      if (arity != static_cast<int>(formula.args.size())) {
        return Status::InvalidArgument(
            "relation '" + formula.relation + "' has arity " +
            std::to_string(arity) + " but is used with " +
            std::to_string(formula.args.size()) + " arguments");
      }
      node->relation = *relation;
      for (const Term& term : formula.args) {
        StatusOr<CompiledTerm> compiled = compile_term(term);
        if (!compiled.ok()) return compiled.status();
        node->terms.push_back(*compiled);
      }
      return node;
    }
    case FormulaKind::kEquals: {
      for (const Term& term : formula.args) {
        StatusOr<CompiledTerm> compiled = compile_term(term);
        if (!compiled.ok()) return compiled.status();
        node->terms.push_back(*compiled);
      }
      return node;
    }
    case FormulaKind::kExists:
    case FormulaKind::kForAll: {
      node->slot = (*next_slot)++;
      scope->emplace_back(formula.bound_variable, node->slot);
      StatusOr<std::unique_ptr<Node>> body =
          CompileNode(*formula.children[0], vocabulary, scope, next_slot);
      scope->pop_back();
      if (!body.ok()) return body.status();
      node->children.push_back(std::move(body).value());
      return node;
    }
    default: {
      for (const FormulaPtr& child : formula.children) {
        StatusOr<std::unique_ptr<Node>> compiled =
            CompileNode(*child, vocabulary, scope, next_slot);
        if (!compiled.ok()) return compiled.status();
        node->children.push_back(std::move(compiled).value());
      }
      return node;
    }
  }
}

bool CompiledQuery::Eval(const AtomOracle& oracle,
                         const Tuple& assignment) const {
  QREL_CHECK_EQ(static_cast<int>(assignment.size()), arity());
  std::vector<Element> env(static_cast<size_t>(slot_count_), 0);
  for (size_t i = 0; i < assignment.size(); ++i) {
    QREL_CHECK_GE(assignment[i], 0);
    QREL_CHECK_LT(assignment[i], oracle.universe_size());
    env[i] = assignment[i];
  }
  return EvalNode(*root_, oracle, &env);
}

bool CompiledQuery::EvalNode(const Node& node, const AtomOracle& oracle,
                             std::vector<Element>* env) const {
  auto term_value = [&](const CompiledTerm& term) {
    return term.is_slot ? (*env)[static_cast<size_t>(term.slot)]
                        : term.constant;
  };
  switch (node.kind) {
    case FormulaKind::kTrue:
      return true;
    case FormulaKind::kFalse:
      return false;
    case FormulaKind::kAtom: {
      Tuple args;
      args.reserve(node.terms.size());
      for (const CompiledTerm& term : node.terms) {
        args.push_back(term_value(term));
      }
      return oracle.AtomTrue(node.relation, args);
    }
    case FormulaKind::kEquals:
      return term_value(node.terms[0]) == term_value(node.terms[1]);
    case FormulaKind::kNot:
      return !EvalNode(*node.children[0], oracle, env);
    case FormulaKind::kAnd:
      for (const std::unique_ptr<Node>& child : node.children) {
        if (!EvalNode(*child, oracle, env)) return false;
      }
      return true;
    case FormulaKind::kOr:
      for (const std::unique_ptr<Node>& child : node.children) {
        if (EvalNode(*child, oracle, env)) return true;
      }
      return false;
    case FormulaKind::kImplies:
      return !EvalNode(*node.children[0], oracle, env) ||
             EvalNode(*node.children[1], oracle, env);
    case FormulaKind::kIff:
      return EvalNode(*node.children[0], oracle, env) ==
             EvalNode(*node.children[1], oracle, env);
    case FormulaKind::kExists:
      for (Element value = 0; value < oracle.universe_size(); ++value) {
        (*env)[static_cast<size_t>(node.slot)] = value;
        if (EvalNode(*node.children[0], oracle, env)) return true;
      }
      return false;
    case FormulaKind::kForAll:
      for (Element value = 0; value < oracle.universe_size(); ++value) {
        (*env)[static_cast<size_t>(node.slot)] = value;
        if (!EvalNode(*node.children[0], oracle, env)) return false;
      }
      return true;
  }
  QREL_CHECK_MSG(false, "corrupt compiled query");
  return false;
}

std::vector<Tuple> CompiledQuery::AnswerSet(const AtomOracle& oracle) const {
  std::vector<Tuple> result;
  Tuple assignment(static_cast<size_t>(arity()), 0);
  do {
    if (Eval(oracle, assignment)) {
      result.push_back(assignment);
    }
  } while (AdvanceTuple(&assignment, oracle.universe_size()));
  return result;
}

}  // namespace qrel
