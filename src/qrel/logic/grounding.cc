#include "qrel/logic/grounding.h"

#include <algorithm>
#include <set>
#include <unordered_map>
#include <utility>

#include "qrel/util/check.h"
#include "qrel/util/fault_injection.h"

namespace qrel {

int GroundDnf::Width() const {
  size_t width = 0;
  for (const std::vector<GroundLiteral>& term : terms) {
    width = std::max(width, term.size());
  }
  return static_cast<int>(width);
}

StatusOr<GroundDnf> GroundExistential(const PrenexExistential& prenex,
                                      const UnreliableDatabase& database,
                                      const Tuple& free_assignment,
                                      size_t max_terms, RunContext* ctx) {
  if (free_assignment.size() != prenex.free_variables.size()) {
    return Status::InvalidArgument(
        "free assignment has " + std::to_string(free_assignment.size()) +
        " values but the query has " +
        std::to_string(prenex.free_variables.size()) + " free variables");
  }

  // The symbolic DNF of the matrix; computed once, instantiated per
  // assignment of the bound variables.
  StatusOr<std::vector<SymbolicConjunct>> matrix_dnf =
      QfNnfToDnf(prenex.matrix);
  if (!matrix_dnf.ok()) {
    return matrix_dnf.status();
  }

  // Variable name -> index into the combined (free ++ bound) valuation.
  std::unordered_map<std::string, size_t> variable_index;
  for (size_t i = 0; i < prenex.free_variables.size(); ++i) {
    variable_index.emplace(prenex.free_variables[i], i);
  }
  for (size_t i = 0; i < prenex.bound_variables.size(); ++i) {
    variable_index.emplace(prenex.bound_variables[i],
                           prenex.free_variables.size() + i);
  }

  const Vocabulary& vocabulary = database.vocabulary();
  // Relation name -> id, resolved once.
  std::unordered_map<std::string, int> relation_ids;
  for (const SymbolicConjunct& conjunct : *matrix_dnf) {
    for (const SymbolicLiteral& literal : conjunct) {
      if (literal.atom->kind != FormulaKind::kAtom) {
        continue;
      }
      const std::string& name = literal.atom->relation;
      if (relation_ids.find(name) != relation_ids.end()) {
        continue;
      }
      std::optional<int> id = vocabulary.FindRelation(name);
      if (!id.has_value()) {
        return Status::InvalidArgument("unknown relation '" + name + "'");
      }
      if (vocabulary.relation(*id).arity !=
          static_cast<int>(literal.atom->args.size())) {
        return Status::InvalidArgument("arity mismatch for relation '" +
                                       name + "'");
      }
      relation_ids.emplace(name, *id);
    }
  }

  std::vector<Element> valuation(
      prenex.free_variables.size() + prenex.bound_variables.size(), 0);
  for (size_t i = 0; i < free_assignment.size(); ++i) {
    valuation[i] = free_assignment[i];
  }

  auto term_value = [&](const Term& term) -> Element {
    if (!term.is_variable()) {
      return term.constant;
    }
    auto it = variable_index.find(term.variable);
    QREL_CHECK_MSG(it != variable_index.end(), "unbound variable in matrix");
    return valuation[it->second];
  };

  GroundDnf result;
  std::set<std::vector<GroundLiteral>> seen_terms;

  Tuple bound_assignment(prenex.bound_variables.size(), 0);
  bool more_assignments = true;
  while (more_assignments) {
    QREL_RETURN_IF_ERROR(ChargeWork(ctx));
    QREL_FAULT_SITE("logic.grounding.assignment");
    for (size_t i = 0; i < bound_assignment.size(); ++i) {
      valuation[prenex.free_variables.size() + i] = bound_assignment[i];
    }

    for (const SymbolicConjunct& conjunct : *matrix_dnf) {
      std::vector<GroundLiteral> ground_term;
      bool term_alive = true;
      for (const SymbolicLiteral& literal : conjunct) {
        if (literal.atom->kind == FormulaKind::kEquals) {
          bool holds = term_value(literal.atom->args[0]) ==
                       term_value(literal.atom->args[1]);
          if (holds != literal.positive) {
            term_alive = false;  // equality literal is false: drop the term
            break;
          }
          continue;  // true equality: contributes nothing
        }
        GroundAtom atom;
        atom.relation = relation_ids.at(literal.atom->relation);
        atom.args.reserve(literal.atom->args.size());
        for (const Term& term : literal.atom->args) {
          Element value = term_value(term);
          if (value < 0 || value >= database.universe_size()) {
            return Status::InvalidArgument(
                "constant " + std::to_string(value) +
                " outside the universe of size " +
                std::to_string(database.universe_size()));
          }
          atom.args.push_back(value);
        }
        int entry = -1;
        UnreliableDatabase::AtomStatus status = database.StatusOf(atom, &entry);
        if (status == UnreliableDatabase::AtomStatus::kCertainTrue) {
          if (!literal.positive) {
            term_alive = false;
            break;
          }
          continue;
        }
        if (status == UnreliableDatabase::AtomStatus::kCertainFalse) {
          if (literal.positive) {
            term_alive = false;
            break;
          }
          continue;
        }
        // Uncertain atom: a propositional variable of ψ''.
        GroundLiteral ground{entry, literal.positive};
        bool duplicate = false;
        for (const GroundLiteral& existing : ground_term) {
          if (existing.entry == ground.entry) {
            if (existing.positive != ground.positive) {
              term_alive = false;  // complementary pair within the term
            }
            duplicate = true;
            break;
          }
        }
        if (!term_alive) {
          break;
        }
        if (!duplicate) {
          ground_term.push_back(ground);
        }
      }
      if (!term_alive) {
        continue;
      }
      if (ground_term.empty()) {
        // A certainly-true disjunct: ψ holds in every world.
        result.certainly_true = true;
        result.terms.clear();
        return result;
      }
      std::sort(ground_term.begin(), ground_term.end());
      if (seen_terms.insert(ground_term).second) {
        QREL_RETURN_IF_ERROR(ChargeWork(ctx));
        result.terms.push_back(std::move(ground_term));
        if (result.terms.size() > max_terms) {
          return Status::OutOfRange("grounded DNF exceeds term limit");
        }
      }
    }

    more_assignments =
        !bound_assignment.empty() &&
        AdvanceTuple(&bound_assignment, database.universe_size());
    if (bound_assignment.empty()) {
      more_assignments = false;
    }
  }

  return result;
}

}  // namespace qrel
