// The error probability function μ of Definition 2.1.
//
// μ assigns to every atomic statement R(ā) about the observed database the
// probability that its truth value is wrong (the events Wrong(R(ā)) are
// independent). Atoms not mentioned in the model have error probability 0.
// Only the mentioned atoms ("entries") are stored; entries are indexed
// densely in insertion order and those ids double as the propositional
// variable ids of grounded queries.

#ifndef QREL_PROB_ERROR_MODEL_H_
#define QREL_PROB_ERROR_MODEL_H_

#include <vector>

#include "qrel/relational/atom_table.h"
#include "qrel/util/rational.h"

namespace qrel {

class ErrorModel {
 public:
  ErrorModel() = default;

  // Sets μ(atom) = `error`, which must lie in [0, 1]. Returns the entry id.
  // Overwrites any previous value for the same atom.
  int SetError(const GroundAtom& atom, Rational error);

  int entry_count() const { return index_.size(); }
  const GroundAtom& atom(int entry_id) const { return index_.atom(entry_id); }
  const Rational& error(int entry_id) const;
  std::optional<int> Find(const GroundAtom& atom) const {
    return index_.Find(atom);
  }

  // μ(atom): the stored value, or 0 for unmentioned atoms.
  Rational ErrorOf(const GroundAtom& atom) const;

  // Entry ids with 0 < μ < 1: the dimensions of the possible-world space.
  std::vector<int> UncertainEntries() const;
  // Entry ids with μ = 1: atoms that are certainly wrong in the observed
  // database (deterministic flips).
  std::vector<int> CertainFlipEntries() const;

 private:
  AtomIndex index_;
  std::vector<Rational> errors_;
};

}  // namespace qrel

#endif  // QREL_PROB_ERROR_MODEL_H_
