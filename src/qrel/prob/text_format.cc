#include "qrel/prob/text_format.h"

#include <cstring>
#include <memory>
#include <new>
#include <sstream>
#include <unordered_set>
#include <vector>

#include "qrel/relational/atom_table.h"
#include "qrel/util/fault_injection.h"
#include "qrel/util/vfs.h"

namespace qrel {

namespace {

// Input hardening caps: a single .udb line longer than this, or with more
// tokens than this, is rejected with a `line N:` error instead of being
// buffered without bound. Generous for any legitimate fact line (the
// bottleneck is arity), tight enough that adversarial input cannot force
// pathological allocations per line.
constexpr size_t kMaxLineLength = 1 << 16;
constexpr size_t kMaxLineTokens = 1 << 12;
// A .udb file bigger than this is rejected outright rather than buffered:
// far beyond any legitimate database text, small enough to bound memory.
constexpr size_t kMaxUdbFileBytes = size_t{1} << 30;

std::vector<std::string> Tokenize(std::string_view line) {
  std::vector<std::string> tokens;
  std::string current;
  for (char c : line) {
    if (c == '#') {
      break;
    }
    if (c == ' ' || c == '\t' || c == '\r') {
      if (!current.empty()) {
        tokens.push_back(current);
        current.clear();
      }
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) {
    tokens.push_back(current);
  }
  return tokens;
}

Status LineError(int line_number, const std::string& message) {
  return Status::InvalidArgument("line " + std::to_string(line_number) + ": " +
                                 message);
}

StatusOr<int> ParseInt(const std::string& token, int line_number) {
  if (token.empty()) {
    return LineError(line_number, "empty integer");
  }
  int value = 0;
  for (char c : token) {
    if (c < '0' || c > '9') {
      return LineError(line_number, "invalid integer '" + token + "'");
    }
    if (value > 100000000) {
      return LineError(line_number, "integer out of range '" + token + "'");
    }
    value = value * 10 + (c - '0');
  }
  return value;
}

}  // namespace

namespace {

StatusOr<UnreliableDatabase> ParseUdbImpl(std::string_view text) {
  auto vocabulary = std::make_shared<Vocabulary>();
  int universe_size = -1;

  struct PendingAtom {
    GroundAtom atom;
    bool observed_true;
    Rational error;
  };
  std::vector<PendingAtom> pending;
  // Atoms already named by a fact/absent line; a second line for the same
  // atom is rejected rather than silently overwriting the first.
  std::unordered_set<GroundAtom, GroundAtomHash> declared;

  std::istringstream stream{std::string(text)};
  std::string line;
  int line_number = 0;
  while (std::getline(stream, line)) {
    ++line_number;
    QREL_FAULT_SITE("prob.parse_udb.line");
    if (line.size() > kMaxLineLength) {
      return LineError(line_number,
                       "line exceeds " + std::to_string(kMaxLineLength) +
                           " characters");
    }
    std::vector<std::string> tokens = Tokenize(line);
    if (tokens.size() > kMaxLineTokens) {
      return LineError(line_number,
                       "line has more than " +
                           std::to_string(kMaxLineTokens) + " tokens");
    }
    if (tokens.empty()) {
      continue;
    }
    const std::string& directive = tokens[0];
    if (directive == "universe") {
      if (universe_size != -1) {
        return LineError(line_number, "duplicate 'universe' directive");
      }
      if (tokens.size() != 2) {
        return LineError(line_number, "'universe' takes exactly one argument");
      }
      StatusOr<int> n = ParseInt(tokens[1], line_number);
      if (!n.ok()) return n.status();
      if (*n <= 0) {
        return LineError(line_number, "universe size must be positive");
      }
      universe_size = *n;
    } else if (directive == "relation") {
      if (tokens.size() != 3) {
        return LineError(line_number, "'relation' takes a name and an arity");
      }
      if (vocabulary->FindRelation(tokens[1]).has_value()) {
        return LineError(line_number, "duplicate relation '" + tokens[1] + "'");
      }
      StatusOr<int> arity = ParseInt(tokens[2], line_number);
      if (!arity.ok()) return arity.status();
      vocabulary->AddRelation(tokens[1], *arity);
    } else if (directive == "fact" || directive == "absent") {
      if (universe_size == -1) {
        return LineError(line_number, "'universe' must come before facts");
      }
      if (tokens.size() < 2) {
        return LineError(line_number, "'" + directive + "' needs a relation");
      }
      std::optional<int> relation = vocabulary->FindRelation(tokens[1]);
      if (!relation.has_value()) {
        return LineError(line_number, "unknown relation '" + tokens[1] + "'");
      }
      int arity = vocabulary->relation(*relation).arity;

      // Optional trailing "err=<rational>".
      Rational error = Rational::Zero();
      size_t arg_end = tokens.size();
      if (!tokens.empty() && tokens.back().rfind("err=", 0) == 0) {
        StatusOr<Rational> parsed = Rational::Parse(tokens.back().substr(4));
        if (!parsed.ok()) {
          return LineError(line_number, parsed.status().message());
        }
        if (!parsed->IsProbability()) {
          return LineError(line_number, "error probability outside [0, 1]");
        }
        error = *parsed;
        --arg_end;
      }
      if (static_cast<int>(arg_end) - 2 != arity) {
        return LineError(line_number,
                         "relation '" + tokens[1] + "' has arity " +
                             std::to_string(arity) + " but " +
                             std::to_string(static_cast<int>(arg_end) - 2) +
                             " arguments were given");
      }
      PendingAtom entry;
      entry.atom.relation = *relation;
      for (size_t i = 2; i < arg_end; ++i) {
        StatusOr<int> element = ParseInt(tokens[i], line_number);
        if (!element.ok()) return element.status();
        if (*element >= universe_size) {
          return LineError(line_number, "element " + tokens[i] +
                                            " outside universe of size " +
                                            std::to_string(universe_size));
        }
        entry.atom.args.push_back(*element);
      }
      if (!declared.insert(entry.atom).second) {
        return LineError(line_number,
                         "atom " +
                             GroundAtomToString(entry.atom, *vocabulary) +
                             " already declared by an earlier fact/absent "
                             "line");
      }
      entry.observed_true = directive == "fact";
      entry.error = std::move(error);
      pending.push_back(std::move(entry));
    } else {
      return LineError(line_number, "unknown directive '" + directive + "'");
    }
  }

  if (universe_size == -1) {
    return Status::InvalidArgument("missing 'universe' directive");
  }

  Structure observed(vocabulary, universe_size);
  for (const PendingAtom& entry : pending) {
    if (entry.observed_true) {
      observed.AddFact(entry.atom.relation, entry.atom.args);
    }
  }
  UnreliableDatabase database(std::move(observed));
  for (const PendingAtom& entry : pending) {
    if (!entry.error.IsZero()) {
      database.SetErrorProbability(entry.atom, entry.error);
    }
  }
  return database;
}

}  // namespace

StatusOr<UnreliableDatabase> ParseUdb(std::string_view text) {
  try {
    return ParseUdbImpl(text);
  } catch (const std::bad_alloc&) {
    return Status::ResourceExhausted("out of memory while parsing .udb text");
  }
}

StatusOr<UnreliableDatabase> LoadUdbFile(const std::string& path) {
  // Through the injectable filesystem (util/vfs.h) so catalog loads share
  // the same fault drills as the snapshot/manifest write path.
  StatusOr<std::vector<uint8_t>> bytes =
      ProcessVfs().ReadFileBytes(path, kMaxUdbFileBytes);
  if (!bytes.ok()) {
    // Missing file and unreadable file are different operational problems:
    // kNotFound is a caller typo or a deployment gap, anything else (EACCES,
    // EISDIR, ENOSPC on a network mount, ...) is an environment fault.
    if (bytes.status().code() == StatusCode::kNotFound) {
      return Status::NotFound("no such file: '" + path + "'");
    }
    return Status(bytes.status().code(),
                  "cannot read '" + path + "': " + bytes.status().message());
  }
  QREL_RETURN_IF_ERROR(QREL_FAULT_HIT("prob.load_udb.read"));
  return ParseUdb(std::string_view(
      reinterpret_cast<const char*>(bytes->data()), bytes->size()));
}

std::string FormatUdb(const UnreliableDatabase& database) {
  std::ostringstream out;
  const Vocabulary& vocabulary = database.vocabulary();
  out << "universe " << database.universe_size() << "\n";
  for (int r = 0; r < vocabulary.relation_count(); ++r) {
    out << "relation " << vocabulary.relation(r).name << " "
        << vocabulary.relation(r).arity << "\n";
  }
  // Observed facts, with their error probability when one is set.
  for (int r = 0; r < vocabulary.relation_count(); ++r) {
    for (const Tuple& tuple : database.observed().Facts(r)) {
      out << "fact " << vocabulary.relation(r).name;
      for (Element e : tuple) {
        out << " " << e;
      }
      Rational mu = database.model().ErrorOf(GroundAtom{r, tuple});
      if (!mu.IsZero()) {
        out << " err=" << mu.ToString();
      }
      out << "\n";
    }
  }
  // Unreliable negative information.
  const ErrorModel& model = database.model();
  for (int id = 0; id < model.entry_count(); ++id) {
    const GroundAtom& atom = model.atom(id);
    if (database.observed().AtomTrue(atom.relation, atom.args)) {
      continue;  // already emitted with its fact line
    }
    if (model.error(id).IsZero()) {
      continue;
    }
    out << "absent " << vocabulary.relation(atom.relation).name;
    for (Element e : atom.args) {
      out << " " << e;
    }
    out << " err=" << model.error(id).ToString() << "\n";
  }
  return out.str();
}

}  // namespace qrel
