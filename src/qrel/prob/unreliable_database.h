// Unreliable databases 𝔇 = (𝔄, μ): the model of Definition 2.1.
//
// 𝔄 is the observed database (a finite relational structure) and μ assigns
// to every atomic statement the probability that its observed truth value
// is wrong. 𝔇 induces the probability space Ω(𝔇) of possible worlds with
//
//   ν(𝔅) = Π_{φ ∈ Lit(𝔅)} ν(φ),   ν(R ā) = 1-μ(R ā) if 𝔄 ⊨ R ā, else μ(R ā).
//
// This class provides exact ν values (Rational), the Theorem 4.2 scaling
// integer g (the least g with ν(𝔅)·g ∈ ℕ for all 𝔅), world sampling,
// and exhaustive world enumeration for the exact algorithms.

#ifndef QREL_PROB_UNRELIABLE_DATABASE_H_
#define QREL_PROB_UNRELIABLE_DATABASE_H_

#include <functional>
#include <vector>

#include "qrel/prob/error_model.h"
#include "qrel/prob/world.h"
#include "qrel/relational/structure.h"
#include "qrel/util/bigint.h"
#include "qrel/util/rational.h"
#include "qrel/util/rng.h"

namespace qrel {

class UnreliableDatabase {
 public:
  explicit UnreliableDatabase(Structure observed);

  // The Remark of Section 2: instead of (𝔄, μ), specify directly the
  // marginals ν(R ā) of a tuple-independent distribution. This constructor
  // realizes that presentation inside the (𝔄, μ) model by taking the most
  // likely truth value of each atom as the observed database (ν ≥ 1/2 →
  // observed true) with μ = min(ν, 1-ν). Atoms not listed have ν = 0.
  static UnreliableDatabase FromMarginals(
      std::shared_ptr<const Vocabulary> vocabulary, int universe_size,
      const std::vector<std::pair<GroundAtom, Rational>>& nu_true);

  // Whether the error model satisfies de Rougemont's restricted model
  // (the Remark after Prop. 3.2): only *positive* data are unreliable,
  // i.e. μ(R ā) > 0 implies 𝔄 ⊨ R ā.
  bool IsPositiveOnlyModel() const;

  const Structure& observed() const { return observed_; }
  const ErrorModel& model() const { return model_; }
  const Vocabulary& vocabulary() const { return observed_.vocabulary(); }
  int universe_size() const { return observed_.universe_size(); }

  // Sets μ(atom) = error ∈ [0, 1]. Validates the atom against the observed
  // database's vocabulary and universe. Returns the entry id.
  int SetErrorProbability(const GroundAtom& atom, Rational error);

  // Classification of a ground atom with respect to the possible worlds.
  enum class AtomStatus {
    kCertainFalse,  // false in every world with positive probability
    kCertainTrue,   // true in every world with positive probability
    kUncertain,     // 0 < ν(atom true) < 1; *entry_id is set
  };
  AtomStatus StatusOf(const GroundAtom& atom, int* entry_id) const;

  // ν(atom): probability that `atom` holds in the actual database.
  Rational NuTrue(const GroundAtom& atom) const;
  // ν for an entry of the error model (same quantity, by entry id).
  Rational EntryNuTrue(int entry_id) const;

  // ν(𝔅) for the world represented by `world` (Definition 2.1 product).
  // The world's entry count must match the model's.
  Rational WorldProbability(const World& world) const;

  // A natural number g such that ν(𝔅)·g ∈ ℕ for all 𝔅 ∈ Ω(𝔇): the product
  // of the denominators of the (normalized) entry probabilities. Its bit
  // length is polynomial in the encoding of 𝔇, which is all Theorem 4.2
  // needs.
  //
  // Erratum note: the paper's proof computes the *lcm* of the denominators
  // (the gcd loop); since ν(𝔅) is a product of per-atom probabilities, the
  // lcm is not always sufficient — e.g. μ-values 1/4, 3/7, 1/6 give
  // lcm = 84 but the world probability (1/4)(3/7)(1/6) = 1/56 needs a
  // factor 56 ∤ 84. See ComputeGPaperLcm() for the literal construction and
  // tests/unreliable_database_test.cc for the counterexample.
  BigInt ComputeG() const;

  // The literal gcd-loop from the proof of Theorem 4.2 (lcm of the entry
  // probability denominators). Kept for comparison; insufficient in
  // general — see the erratum note on ComputeG().
  BigInt ComputeGPaperLcm() const;

  // Entry ids with 0 < μ < 1, i.e. the dimensions of Ω(𝔇). The number of
  // worlds with positive probability is 2^|UncertainEntries()|.
  const std::vector<int>& UncertainEntries() const {
    return uncertain_entries_;
  }

  // A world drawn from Ω(𝔇): each uncertain atom flips independently with
  // probability μ; μ=1 atoms always flip. Exact (integer-threshold)
  // Bernoulli draws when a μ denominator fits in 64 bits, which covers
  // every probability this library parses from text; wider denominators
  // fall back to a double-precision threshold.
  World SampleWorld(Rng* rng) const;

  // Enumerates all worlds with positive probability along with their exact
  // probabilities. Cost is Θ(2^u) with u = |UncertainEntries()|; aborts if
  // u > 62 (the enumeration counter would overflow — and such an
  // enumeration would never finish anyway).
  void ForEachWorld(
      const std::function<void(const World&, const Rational&)>& fn) const;

  // Like ForEachWorld, but the callback returns false to stop early (used
  // by budgeted/cancellable enumeration loops — see util/run_context.h).
  // Enumeration starts at world index `first_code` (worlds are indexed by
  // the bitmask over uncertain entries, in increasing order) — nonzero only
  // for checkpoint resume (util/snapshot.h), which must continue the scan
  // exactly where the interrupted run stopped. Returns true iff every
  // remaining world was visited.
  bool ForEachWorldWhile(
      const std::function<bool(const World&, const Rational&)>& fn,
      uint64_t first_code = 0) const;

  // Copies the observed database and applies the world's flips; for tests
  // and materializing examples. Prefer WorldView for evaluation.
  Structure MaterializeWorld(const World& world) const;

  // FNV-1a digest of the full instance content: universe size, vocabulary
  // (relation names and arities), every observed fact, and every error-model
  // entry (atom and exact probability). Mixed into checkpoint resume
  // fingerprints (util/snapshot.h) so a database edit that preserves the
  // instance shape still refuses to resume a stale snapshot.
  uint64_t ContentFingerprint() const;

 private:
  Structure observed_;
  ErrorModel model_;
  std::vector<int> uncertain_entries_;
  std::vector<int> certain_flip_entries_;

  void RefreshEntryCaches();
};

}  // namespace qrel

#endif  // QREL_PROB_UNRELIABLE_DATABASE_H_
