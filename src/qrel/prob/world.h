// Possible worlds of an unreliable database.
//
// A world 𝔅 ∈ Ω(𝔇) differs from the observed database 𝔄 only on atoms
// mentioned by the error model, so it is represented as a bitset of *flips*
// over the model's entry ids: bit e set means the event Wrong(atom_e)
// occurred, i.e. the truth value of atom_e in 𝔅 is the opposite of its
// value in 𝔄. This keeps worlds O(#entries) regardless of how many ground
// atoms the database has.

#ifndef QREL_PROB_WORLD_H_
#define QREL_PROB_WORLD_H_

#include <cstdint>
#include <vector>

#include "qrel/prob/error_model.h"
#include "qrel/relational/structure.h"

namespace qrel {

class World {
 public:
  // A world with no flips (the observed database itself).
  explicit World(int entry_count)
      : entry_count_(entry_count),
        bits_(static_cast<size_t>((entry_count + 63) / 64), 0) {}

  int entry_count() const { return entry_count_; }

  bool Flipped(int entry_id) const {
    return (bits_[static_cast<size_t>(entry_id) / 64] >>
            (static_cast<size_t>(entry_id) % 64)) &
           1u;
  }

  void SetFlipped(int entry_id, bool flipped) {
    uint64_t mask = uint64_t{1} << (static_cast<size_t>(entry_id) % 64);
    if (flipped) {
      bits_[static_cast<size_t>(entry_id) / 64] |= mask;
    } else {
      bits_[static_cast<size_t>(entry_id) / 64] &= ~mask;
    }
  }

  int FlipCount() const;

  bool operator==(const World& other) const {
    return entry_count_ == other.entry_count_ && bits_ == other.bits_;
  }

 private:
  int entry_count_;
  std::vector<uint64_t> bits_;
};

class UnreliableDatabase;

// AtomOracle view of one world: atom truth = observed truth XOR flip.
// Holds references; the database and world must outlive the view.
class WorldView : public AtomOracle {
 public:
  WorldView(const UnreliableDatabase& database, const World& world);

  const Vocabulary& vocabulary() const override;
  int universe_size() const override;
  bool AtomTrue(int relation_id, const Tuple& tuple) const override;

 private:
  const UnreliableDatabase& database_;
  const World& world_;
};

}  // namespace qrel

#endif  // QREL_PROB_WORLD_H_
