#include "qrel/prob/error_model.h"

#include <utility>

#include "qrel/util/check.h"

namespace qrel {

int ErrorModel::SetError(const GroundAtom& atom, Rational error) {
  QREL_CHECK_MSG(error.IsProbability(), "error probability outside [0, 1]");
  int id = index_.Intern(atom);
  if (id == static_cast<int>(errors_.size())) {
    errors_.push_back(std::move(error));
  } else {
    errors_[static_cast<size_t>(id)] = std::move(error);
  }
  return id;
}

const Rational& ErrorModel::error(int entry_id) const {
  QREL_CHECK_GE(entry_id, 0);
  QREL_CHECK_LT(entry_id, entry_count());
  return errors_[static_cast<size_t>(entry_id)];
}

Rational ErrorModel::ErrorOf(const GroundAtom& atom) const {
  std::optional<int> id = index_.Find(atom);
  if (!id.has_value()) {
    return Rational::Zero();
  }
  return errors_[static_cast<size_t>(*id)];
}

std::vector<int> ErrorModel::UncertainEntries() const {
  std::vector<int> result;
  for (int id = 0; id < entry_count(); ++id) {
    const Rational& mu = errors_[static_cast<size_t>(id)];
    if (!mu.IsZero() && !mu.IsOne()) {
      result.push_back(id);
    }
  }
  return result;
}

std::vector<int> ErrorModel::CertainFlipEntries() const {
  std::vector<int> result;
  for (int id = 0; id < entry_count(); ++id) {
    if (errors_[static_cast<size_t>(id)].IsOne()) {
      result.push_back(id);
    }
  }
  return result;
}

}  // namespace qrel
