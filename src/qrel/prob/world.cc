#include "qrel/prob/world.h"

#include <bit>

#include "qrel/prob/unreliable_database.h"
#include "qrel/util/check.h"

namespace qrel {

int World::FlipCount() const {
  int count = 0;
  for (uint64_t word : bits_) {
    count += std::popcount(word);
  }
  return count;
}

WorldView::WorldView(const UnreliableDatabase& database, const World& world)
    : database_(database), world_(world) {
  QREL_CHECK_EQ(world.entry_count(), database.model().entry_count());
}

const Vocabulary& WorldView::vocabulary() const {
  return database_.vocabulary();
}

int WorldView::universe_size() const { return database_.universe_size(); }

bool WorldView::AtomTrue(int relation_id, const Tuple& tuple) const {
  bool observed = database_.observed().AtomTrue(relation_id, tuple);
  std::optional<int> entry =
      database_.model().Find(GroundAtom{relation_id, tuple});
  if (entry.has_value() && world_.Flipped(*entry)) {
    return !observed;
  }
  return observed;
}

}  // namespace qrel
