#include "qrel/prob/unreliable_database.h"

#include <utility>

#include "qrel/util/check.h"
#include "qrel/util/snapshot.h"

namespace qrel {

UnreliableDatabase::UnreliableDatabase(Structure observed)
    : observed_(std::move(observed)) {}

UnreliableDatabase UnreliableDatabase::FromMarginals(
    std::shared_ptr<const Vocabulary> vocabulary, int universe_size,
    const std::vector<std::pair<GroundAtom, Rational>>& nu_true) {
  Structure observed(std::move(vocabulary), universe_size);
  for (const auto& [atom, nu] : nu_true) {
    QREL_CHECK_MSG(nu.IsProbability(), "marginal outside [0, 1]");
    if (nu >= Rational::Half()) {
      observed.AddFact(atom.relation, atom.args);
    }
  }
  UnreliableDatabase db(std::move(observed));
  for (const auto& [atom, nu] : nu_true) {
    Rational mu = nu >= Rational::Half() ? nu.Complement() : nu;
    if (!mu.IsZero()) {
      db.SetErrorProbability(atom, mu);
    }
  }
  return db;
}

bool UnreliableDatabase::IsPositiveOnlyModel() const {
  for (int id = 0; id < model_.entry_count(); ++id) {
    if (model_.error(id).IsZero()) {
      continue;
    }
    const GroundAtom& atom = model_.atom(id);
    if (!observed_.AtomTrue(atom.relation, atom.args)) {
      return false;
    }
  }
  return true;
}

int UnreliableDatabase::SetErrorProbability(const GroundAtom& atom,
                                            Rational error) {
  // Delegate range/arity validation to the structure's own checks.
  observed_.AtomTrue(atom.relation, atom.args);
  int id = model_.SetError(atom, std::move(error));
  RefreshEntryCaches();
  return id;
}

void UnreliableDatabase::RefreshEntryCaches() {
  uncertain_entries_ = model_.UncertainEntries();
  certain_flip_entries_ = model_.CertainFlipEntries();
}

UnreliableDatabase::AtomStatus UnreliableDatabase::StatusOf(
    const GroundAtom& atom, int* entry_id) const {
  std::optional<int> id = model_.Find(atom);
  bool observed_true = observed_.AtomTrue(atom.relation, atom.args);
  if (!id.has_value()) {
    return observed_true ? AtomStatus::kCertainTrue : AtomStatus::kCertainFalse;
  }
  const Rational& mu = model_.error(*id);
  if (mu.IsZero()) {
    return observed_true ? AtomStatus::kCertainTrue : AtomStatus::kCertainFalse;
  }
  if (mu.IsOne()) {
    // Certainly wrong: the actual value is the negation of the observed one.
    return observed_true ? AtomStatus::kCertainFalse : AtomStatus::kCertainTrue;
  }
  if (entry_id != nullptr) {
    *entry_id = *id;
  }
  return AtomStatus::kUncertain;
}

Rational UnreliableDatabase::NuTrue(const GroundAtom& atom) const {
  Rational mu = model_.ErrorOf(atom);
  if (observed_.AtomTrue(atom.relation, atom.args)) {
    return mu.Complement();
  }
  return mu;
}

Rational UnreliableDatabase::EntryNuTrue(int entry_id) const {
  const GroundAtom& atom = model_.atom(entry_id);
  const Rational& mu = model_.error(entry_id);
  if (observed_.AtomTrue(atom.relation, atom.args)) {
    return mu.Complement();
  }
  return mu;
}

Rational UnreliableDatabase::WorldProbability(const World& world) const {
  QREL_CHECK_EQ(world.entry_count(), model_.entry_count());
  Rational probability = Rational::One();
  for (int id = 0; id < model_.entry_count(); ++id) {
    const Rational& mu = model_.error(id);
    probability *= world.Flipped(id) ? mu : mu.Complement();
    if (probability.IsZero()) {
      return probability;
    }
  }
  return probability;
}

BigInt UnreliableDatabase::ComputeG() const {
  // ν(𝔅) is a product of one factor n_i/d_i (or (d_i-n_i)/d_i) per entry,
  // so the product of the d_i clears every world probability.
  BigInt g(1);
  for (int id = 0; id < model_.entry_count(); ++id) {
    g = g * model_.error(id).denominator();
  }
  return g;
}

BigInt UnreliableDatabase::ComputeGPaperLcm() const {
  // The gcd loop from the proof of Theorem 4.2: fold the denominators of
  // the normalized probabilities into their least common multiple.
  BigInt g(1);
  for (int id = 0; id < model_.entry_count(); ++id) {
    const BigInt& d = model_.error(id).denominator();
    BigInt b = BigInt::Gcd(g, d);
    if (b != d) {
      g = g * (d / b);
    }
  }
  return g;
}

World UnreliableDatabase::SampleWorld(Rng* rng) const {
  QREL_CHECK(rng != nullptr);
  World world(model_.entry_count());
  for (int id : certain_flip_entries_) {
    world.SetFlipped(id, true);
  }
  for (int id : uncertain_entries_) {
    const Rational& mu = model_.error(id);
    bool flipped;
    if (mu.denominator().FitsInt64()) {
      // Exact: flip iff a uniform draw from {0, .., den-1} lands below num.
      uint64_t den = static_cast<uint64_t>(mu.denominator().ToInt64());
      uint64_t num = static_cast<uint64_t>(mu.numerator().ToInt64());
      flipped = rng->NextBelow(den) < num;
    } else {
      flipped = rng->NextBernoulli(mu.ToDouble());
    }
    world.SetFlipped(id, flipped);
  }
  return world;
}

void UnreliableDatabase::ForEachWorld(
    const std::function<void(const World&, const Rational&)>& fn) const {
  ForEachWorldWhile([&fn](const World& world, const Rational& probability) {
    fn(world, probability);
    return true;
  });
}

bool UnreliableDatabase::ForEachWorldWhile(
    const std::function<bool(const World&, const Rational&)>& fn,
    uint64_t first_code) const {
  size_t u = uncertain_entries_.size();
  QREL_CHECK_MSG(u <= 62, "world enumeration over more than 62 atoms");

  // Probability contributions of the uncertain entries, reused per world.
  std::vector<Rational> mu(u);
  std::vector<Rational> one_minus_mu(u);
  for (size_t i = 0; i < u; ++i) {
    mu[i] = model_.error(uncertain_entries_[i]);
    one_minus_mu[i] = mu[i].Complement();
  }

  World world(model_.entry_count());
  for (int id : certain_flip_entries_) {
    world.SetFlipped(id, true);
  }

  uint64_t world_count = uint64_t{1} << u;
  for (uint64_t code = first_code; code < world_count; ++code) {
    Rational probability = Rational::One();
    for (size_t i = 0; i < u; ++i) {
      bool flipped = (code >> i) & 1u;
      world.SetFlipped(uncertain_entries_[i], flipped);
      probability *= flipped ? mu[i] : one_minus_mu[i];
    }
    if (!fn(world, probability)) {
      return false;
    }
  }
  return true;
}

Structure UnreliableDatabase::MaterializeWorld(const World& world) const {
  QREL_CHECK_EQ(world.entry_count(), model_.entry_count());
  Structure result = observed_;
  for (int id = 0; id < model_.entry_count(); ++id) {
    if (world.Flipped(id)) {
      const GroundAtom& atom = model_.atom(id);
      result.SetFact(atom.relation, atom.args,
                     !observed_.AtomTrue(atom.relation, atom.args));
    }
  }
  return result;
}

uint64_t UnreliableDatabase::ContentFingerprint() const {
  Fingerprint fp;
  fp.Mix(static_cast<uint64_t>(observed_.universe_size()));
  const Vocabulary& vocab = observed_.vocabulary();
  fp.Mix(static_cast<uint64_t>(vocab.relation_count()));
  for (int r = 0; r < vocab.relation_count(); ++r) {
    const RelationSymbol& symbol = vocab.relation(r);
    fp.Mix(symbol.name);
    fp.Mix(static_cast<uint64_t>(symbol.arity));
    const std::set<Tuple>& facts = observed_.Facts(r);
    fp.Mix(static_cast<uint64_t>(facts.size()));
    for (const Tuple& tuple : facts) {
      for (Element element : tuple) {
        fp.Mix(static_cast<uint64_t>(static_cast<uint32_t>(element)));
      }
    }
  }
  fp.Mix(static_cast<uint64_t>(model_.entry_count()));
  for (int e = 0; e < model_.entry_count(); ++e) {
    const GroundAtom& atom = model_.atom(e);
    fp.Mix(static_cast<uint64_t>(atom.relation));
    fp.Mix(static_cast<uint64_t>(atom.args.size()));
    for (Element element : atom.args) {
      fp.Mix(static_cast<uint64_t>(static_cast<uint32_t>(element)));
    }
    fp.MixRational(model_.error(e));
  }
  return fp.value();
}

}  // namespace qrel
