// Text serialization of unreliable databases (.udb).
//
// Line-oriented format, '#' starts a comment, blank lines ignored:
//
//   universe 6                 # required first directive; elements are 0..5
//   relation E 2               # declare relation E with arity 2
//   relation S 1
//   fact E 0 1                 # observed true, error probability 0
//   fact E 1 2 err=0.1         # observed true, error probability 1/10
//   absent S 3 err=1/2         # observed false, error probability 1/2
//
// Probabilities are exact rationals: "p/q", integers, or decimals.
// `absent` lines make sense only with a positive error probability (they
// declare unreliable negative information, the general model of Sect. 2;
// de Rougemont's restricted model uses only `fact ... err=` lines).

#ifndef QREL_PROB_TEXT_FORMAT_H_
#define QREL_PROB_TEXT_FORMAT_H_

#include <string>
#include <string_view>

#include "qrel/prob/unreliable_database.h"
#include "qrel/util/status.h"

namespace qrel {

// Parses the .udb `text` into an UnreliableDatabase.
StatusOr<UnreliableDatabase> ParseUdb(std::string_view text);

// Reads and parses a .udb file.
StatusOr<UnreliableDatabase> LoadUdbFile(const std::string& path);

// Renders `database` in the .udb format (parseable by ParseUdb).
std::string FormatUdb(const UnreliableDatabase& database);

}  // namespace qrel

#endif  // QREL_PROB_TEXT_FORMAT_H_
