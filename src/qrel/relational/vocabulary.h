// Relational vocabularies: named relation symbols with fixed arities.
//
// A Vocabulary is shared (immutably, once built) by the observed database,
// its possible worlds, queries, and the atom index, so relation symbols are
// referred to everywhere by their dense integer id.

#ifndef QREL_RELATIONAL_VOCABULARY_H_
#define QREL_RELATIONAL_VOCABULARY_H_

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace qrel {

struct RelationSymbol {
  std::string name;
  int arity = 0;
};

class Vocabulary {
 public:
  Vocabulary() = default;

  // Registers a relation symbol and returns its id. Aborts on duplicate
  // names or negative arity (parsers must check FindRelation first).
  int AddRelation(std::string name, int arity);

  int relation_count() const { return static_cast<int>(relations_.size()); }
  const RelationSymbol& relation(int id) const;

  // Id of the relation named `name`, if registered.
  std::optional<int> FindRelation(const std::string& name) const;

 private:
  std::vector<RelationSymbol> relations_;
  std::unordered_map<std::string, int> by_name_;
};

}  // namespace qrel

#endif  // QREL_RELATIONAL_VOCABULARY_H_
