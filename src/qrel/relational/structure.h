// Finite relational structures (databases) and the AtomOracle abstraction.
//
// The universe of a structure of size n is {0, ..., n-1}. Query evaluation
// (logic/eval.h) reads atom truth values through the AtomOracle interface,
// so the same evaluator runs against the observed database (a Structure)
// and against a possible world (prob/world.h) without materializing the
// world into a second structure.

#ifndef QREL_RELATIONAL_STRUCTURE_H_
#define QREL_RELATIONAL_STRUCTURE_H_

#include <cstdint>
#include <memory>
#include <set>
#include <vector>

#include "qrel/relational/vocabulary.h"

namespace qrel {

// An element of the universe.
using Element = int32_t;
// A tuple of universe elements; its length is the arity of the relation it
// belongs to. Arity-0 relations have the single empty tuple.
using Tuple = std::vector<Element>;

// Advances `tuple` to the lexicographically next tuple over {0..n-1}
// (odometer order). Returns false after the last tuple; the all-zero tuple
// is the first. The empty tuple (arity 0) has exactly one value: the first
// call returns false.
bool AdvanceTuple(Tuple* tuple, int universe_size);

// Read access to the ground-atom truth values of one database or world.
class AtomOracle {
 public:
  virtual ~AtomOracle() = default;

  virtual const Vocabulary& vocabulary() const = 0;
  virtual int universe_size() const = 0;
  // Truth of the ground atom R(tuple); `tuple` length must equal the arity
  // of `relation_id`.
  virtual bool AtomTrue(int relation_id, const Tuple& tuple) const = 0;
};

// A mutable finite relational structure over a shared vocabulary.
class Structure : public AtomOracle {
 public:
  Structure(std::shared_ptr<const Vocabulary> vocabulary, int universe_size);

  Structure(const Structure&) = default;
  Structure& operator=(const Structure&) = default;

  const Vocabulary& vocabulary() const override { return *vocabulary_; }
  const std::shared_ptr<const Vocabulary>& vocabulary_ptr() const {
    return vocabulary_;
  }
  int universe_size() const override { return universe_size_; }

  // Inserts R(tuple). Idempotent. Aborts on arity/range errors.
  void AddFact(int relation_id, const Tuple& tuple);
  // Sets the truth value of R(tuple).
  void SetFact(int relation_id, const Tuple& tuple, bool value);
  bool AtomTrue(int relation_id, const Tuple& tuple) const override;

  // All tuples currently in relation `relation_id`, in lexicographic order.
  const std::set<Tuple>& Facts(int relation_id) const;

  // Total number of facts across all relations.
  size_t FactCount() const;

  bool operator==(const Structure& other) const;

 private:
  void CheckTuple(int relation_id, const Tuple& tuple) const;

  std::shared_ptr<const Vocabulary> vocabulary_;
  int universe_size_;
  std::vector<std::set<Tuple>> relations_;
};

}  // namespace qrel

#endif  // QREL_RELATIONAL_STRUCTURE_H_
