#include "qrel/relational/atom_table.h"

#include "qrel/util/check.h"

namespace qrel {

std::string GroundAtomToString(const GroundAtom& atom,
                               const Vocabulary& vocabulary) {
  std::string result = vocabulary.relation(atom.relation).name;
  result += '(';
  for (size_t i = 0; i < atom.args.size(); ++i) {
    if (i != 0) {
      result += ',';
    }
    result += std::to_string(atom.args[i]);
  }
  result += ')';
  return result;
}

int AtomIndex::Intern(const GroundAtom& atom) {
  auto [it, inserted] = ids_.emplace(atom, static_cast<int>(atoms_.size()));
  if (inserted) {
    atoms_.push_back(atom);
  }
  return it->second;
}

std::optional<int> AtomIndex::Find(const GroundAtom& atom) const {
  auto it = ids_.find(atom);
  if (it == ids_.end()) {
    return std::nullopt;
  }
  return it->second;
}

const GroundAtom& AtomIndex::atom(int id) const {
  QREL_CHECK_GE(id, 0);
  QREL_CHECK_LT(id, size());
  return atoms_[static_cast<size_t>(id)];
}

}  // namespace qrel
