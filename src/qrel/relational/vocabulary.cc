#include "qrel/relational/vocabulary.h"

#include <utility>

#include "qrel/util/check.h"

namespace qrel {

int Vocabulary::AddRelation(std::string name, int arity) {
  QREL_CHECK_GE(arity, 0);
  QREL_CHECK_MSG(by_name_.find(name) == by_name_.end(),
                 "duplicate relation name");
  int id = static_cast<int>(relations_.size());
  by_name_.emplace(name, id);
  relations_.push_back(RelationSymbol{std::move(name), arity});
  return id;
}

const RelationSymbol& Vocabulary::relation(int id) const {
  QREL_CHECK_GE(id, 0);
  QREL_CHECK_LT(id, relation_count());
  return relations_[static_cast<size_t>(id)];
}

std::optional<int> Vocabulary::FindRelation(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return std::nullopt;
  }
  return it->second;
}

}  // namespace qrel
