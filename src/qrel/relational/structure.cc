#include "qrel/relational/structure.h"

#include <utility>

#include "qrel/util/check.h"

namespace qrel {

bool AdvanceTuple(Tuple* tuple, int universe_size) {
  QREL_CHECK_GT(universe_size, 0);
  for (size_t i = tuple->size(); i-- > 0;) {
    if ((*tuple)[i] + 1 < universe_size) {
      ++(*tuple)[i];
      for (size_t j = i + 1; j < tuple->size(); ++j) {
        (*tuple)[j] = 0;
      }
      return true;
    }
  }
  return false;
}

Structure::Structure(std::shared_ptr<const Vocabulary> vocabulary,
                     int universe_size)
    : vocabulary_(std::move(vocabulary)), universe_size_(universe_size) {
  QREL_CHECK(vocabulary_ != nullptr);
  QREL_CHECK_GT(universe_size_, 0);
  relations_.resize(static_cast<size_t>(vocabulary_->relation_count()));
}

void Structure::CheckTuple(int relation_id, const Tuple& tuple) const {
  QREL_CHECK_GE(relation_id, 0);
  QREL_CHECK_LT(relation_id, vocabulary_->relation_count());
  QREL_CHECK_EQ(static_cast<int>(tuple.size()),
                vocabulary_->relation(relation_id).arity);
  for (Element e : tuple) {
    QREL_CHECK_GE(e, 0);
    QREL_CHECK_LT(e, universe_size_);
  }
}

void Structure::AddFact(int relation_id, const Tuple& tuple) {
  CheckTuple(relation_id, tuple);
  relations_[static_cast<size_t>(relation_id)].insert(tuple);
}

void Structure::SetFact(int relation_id, const Tuple& tuple, bool value) {
  CheckTuple(relation_id, tuple);
  if (value) {
    relations_[static_cast<size_t>(relation_id)].insert(tuple);
  } else {
    relations_[static_cast<size_t>(relation_id)].erase(tuple);
  }
}

bool Structure::AtomTrue(int relation_id, const Tuple& tuple) const {
  CheckTuple(relation_id, tuple);
  const std::set<Tuple>& facts = relations_[static_cast<size_t>(relation_id)];
  return facts.find(tuple) != facts.end();
}

const std::set<Tuple>& Structure::Facts(int relation_id) const {
  QREL_CHECK_GE(relation_id, 0);
  QREL_CHECK_LT(relation_id, vocabulary_->relation_count());
  return relations_[static_cast<size_t>(relation_id)];
}

size_t Structure::FactCount() const {
  size_t count = 0;
  for (const std::set<Tuple>& facts : relations_) {
    count += facts.size();
  }
  return count;
}

bool Structure::operator==(const Structure& other) const {
  return universe_size_ == other.universe_size_ &&
         relations_ == other.relations_;
}

}  // namespace qrel
