// Ground atoms and the dense atom index.
//
// A GroundAtom is a relation id plus a concrete argument tuple — one atomic
// statement R(ā) about a database. The AtomIndex assigns dense, stable ids
// to a set of ground atoms in insertion order; the error model uses it to
// index its support (the atoms with positive error probability), and the
// grounding of a query (Theorem 5.4) uses the same ids as propositional
// variables, so no translation layer is needed between the two.

#ifndef QREL_RELATIONAL_ATOM_TABLE_H_
#define QREL_RELATIONAL_ATOM_TABLE_H_

#include <cstddef>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "qrel/relational/structure.h"
#include "qrel/relational/vocabulary.h"

namespace qrel {

struct GroundAtom {
  int relation = 0;
  Tuple args;

  bool operator==(const GroundAtom& other) const {
    return relation == other.relation && args == other.args;
  }
  bool operator<(const GroundAtom& other) const {
    if (relation != other.relation) return relation < other.relation;
    return args < other.args;
  }
};

// "R(1,2)" rendered with the names in `vocabulary`.
std::string GroundAtomToString(const GroundAtom& atom,
                               const Vocabulary& vocabulary);

struct GroundAtomHash {
  size_t operator()(const GroundAtom& atom) const {
    // FNV-1a over the relation id and elements.
    uint64_t h = 1469598103934665603ULL;
    auto mix = [&h](uint64_t value) {
      h ^= value;
      h *= 1099511628211ULL;
    };
    mix(static_cast<uint64_t>(atom.relation));
    for (Element e : atom.args) {
      mix(static_cast<uint64_t>(static_cast<uint32_t>(e)) + 0x9e37u);
    }
    return static_cast<size_t>(h);
  }
};

// Insertion-ordered bidirectional map GroundAtom <-> dense id.
class AtomIndex {
 public:
  AtomIndex() = default;

  // Returns the id of `atom`, inserting it if new.
  int Intern(const GroundAtom& atom);
  // Returns the id of `atom` if present.
  std::optional<int> Find(const GroundAtom& atom) const;

  int size() const { return static_cast<int>(atoms_.size()); }
  const GroundAtom& atom(int id) const;

 private:
  std::vector<GroundAtom> atoms_;
  std::unordered_map<GroundAtom, int, GroundAtomHash> ids_;
};

}  // namespace qrel

#endif  // QREL_RELATIONAL_ATOM_TABLE_H_
