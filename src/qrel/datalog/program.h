// Stratified Datalog programs.
//
// Section 4 of the paper notes that the FP^#P upper bound "includes all
// Datalog queries (for which the result has already been proved by de
// Rougemont) and all fixed point queries". This module supplies that query
// language as a substrate: stratified Datalog with negation, evaluated
// bottom-up to a fixpoint. Datalog queries are polynomial-time evaluable,
// so both the exact world-enumeration algorithm (Thm 4.2) and the padded
// estimator (Thm 5.12) apply to them — see datalog/reliability.h.
//
// Text syntax (parser below):
//
//   Path(x, y)       :- E(x, y).
//   Path(x, z)       :- Path(x, y), E(y, z).
//   Unreached(x, y)  :- Node(x), Node(y), !Path(x, y).
//
// Variables are identifiers, constants are #k (or bare integers), '!'
// negates a body literal. Safety: every variable of a rule must occur in
// some positive body literal. Negation must be stratified.

#ifndef QREL_DATALOG_PROGRAM_H_
#define QREL_DATALOG_PROGRAM_H_

#include <string>
#include <string_view>
#include <vector>

#include "qrel/logic/ast.h"
#include "qrel/util/status.h"

namespace qrel {

struct DatalogAtom {
  std::string relation;
  std::vector<Term> args;

  // Byte range in the program text this atom was parsed from (set by
  // ParseDatalogProgram; invalid for programmatically built atoms).
  // Ignored by ToString() and all semantic comparisons.
  SourceRange range;

  std::string ToString() const;
};

struct DatalogLiteral {
  bool positive = true;
  DatalogAtom atom;
};

struct DatalogRule {
  DatalogAtom head;
  std::vector<DatalogLiteral> body;

  // Byte range of the whole rule, head through the terminating '.'.
  SourceRange range;

  std::string ToString() const;
};

// A parsed, unvalidated program. Predicates that appear in some head are
// intensional (IDB); all others are extensional (EDB) and must exist in
// the database vocabulary at compile time (see eval.h).
struct DatalogProgram {
  std::vector<DatalogRule> rules;

  // Names of intensional predicates, in first-head-appearance order.
  std::vector<std::string> IdbPredicates() const;

  std::string ToString() const;
};

// Parses a program (sequence of rules terminated by '.'; '%' or '#'
// comments to end of line are not supported — use blank space).
StatusOr<DatalogProgram> ParseDatalogProgram(std::string_view text);

// Like above; on a syntax error additionally fills `*syntax_error` (when
// non-null) with a source-located Diagnostic (check id "syntax-error") so
// Datalog parse errors share the analyzers' machine-readable output path.
StatusOr<DatalogProgram> ParseDatalogProgram(std::string_view text,
                                             Diagnostic* syntax_error);

}  // namespace qrel

#endif  // QREL_DATALOG_PROGRAM_H_
