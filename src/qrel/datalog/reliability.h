// Reliability of Datalog queries on unreliable databases.
//
// A stratified Datalog program evaluates in polynomial time, so the
// paper's machinery applies directly:
//   * Theorem 4.2 — exact reliability by possible-world enumeration (the
//     "in particular, this includes all Datalog queries" remark);
//   * Theorem 5.12 — the padded (ψ ∨ Rc) ∧ Rd estimator gives an
//     absolute-error randomized approximation, since it only needs to
//     *evaluate* the query on sampled worlds.
// The query is one predicate of the program; its materialized relation is
// the answer set whose expected Hamming error defines H and R.

#ifndef QREL_DATALOG_RELIABILITY_H_
#define QREL_DATALOG_RELIABILITY_H_

#include <string>

#include "qrel/core/approx.h"
#include "qrel/core/reliability.h"
#include "qrel/datalog/eval.h"
#include "qrel/prob/unreliable_database.h"

namespace qrel {

// Exact H and R for `predicate` by world enumeration. Fails if the
// database has more than 62 uncertain atoms. `ctx` (nullable) is charged
// one unit per world plus the fixpoint's own per-node charges; a tripped
// envelope aborts with the budget status.
StatusOr<ReliabilityReport> ExactDatalogReliability(
    const CompiledDatalog& program, const std::string& predicate,
    const UnreliableDatabase& db, RunContext* ctx = nullptr);

// Theorem 5.12 estimator for Datalog: samples worlds, evaluates the
// program on each, and applies the ξ-padding inversion per answer tuple.
// Worlds are shared across tuples (each per-tuple estimate stays unbiased
// and Lemma 5.11 applies marginally; the union bound over tuples is
// unaffected by correlation). Absolute error `options.epsilon` on R with
// probability ≥ 1 − options.delta. Respects options.run_context (one unit
// per sampled world); because worlds are shared across tuples, a prefix of
// completed worlds is usable for every tuple, so options.allow_truncation
// applies here even for k-ary predicates.
StatusOr<ApproxResult> PaddedDatalogReliability(
    const CompiledDatalog& program, const std::string& predicate,
    const UnreliableDatabase& db, const ApproxOptions& options);

}  // namespace qrel

#endif  // QREL_DATALOG_RELIABILITY_H_
