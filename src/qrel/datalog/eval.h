// Compilation and bottom-up fixpoint evaluation of stratified Datalog.
//
// CompiledDatalog validates a program against an EDB vocabulary: EDB
// predicates must exist with matching arities, IDB arities must be
// consistent, rules must be safe (every variable occurs in a positive body
// literal) and negation stratified. Evaluation runs stratum by stratum to
// the fixpoint, reading extensional atoms through the AtomOracle
// interface — so a program evaluates on the observed database and on any
// possible world alike, which is what the reliability algorithms need.

#ifndef QREL_DATALOG_EVAL_H_
#define QREL_DATALOG_EVAL_H_

#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "qrel/datalog/program.h"
#include "qrel/relational/structure.h"
#include "qrel/util/run_context.h"
#include "qrel/util/status.h"

namespace qrel {

// Materialized IDB contents after a fixpoint evaluation.
using DatalogResult = std::map<std::string, std::set<Tuple>>;

class CompiledDatalog {
 public:
  static StatusOr<CompiledDatalog> Compile(DatalogProgram program,
                                           const Vocabulary& edb_vocabulary);

  // Evaluates the program over the given extensional database to the
  // least fixpoint (per stratum) and returns all IDB relations. Uses
  // semi-naive evaluation: after the first round, a rule only re-fires
  // with one of its same-stratum positive IDB literals restricted to the
  // previous round's delta, so unchanged derivations are not recomputed.
  // `ctx` (nullable) is charged one work unit per rule-body enumeration
  // node; a tripped envelope aborts the fixpoint with the budget status.
  StatusOr<DatalogResult> Eval(const AtomOracle& edb, RunContext* ctx) const;
  DatalogResult Eval(const AtomOracle& edb) const {
    return std::move(Eval(edb, nullptr)).value();
  }

  // The textbook naive fixpoint (re-derives everything every round);
  // exponentially wasteful on deep recursions, kept as the semi-naive
  // algorithm's test oracle.
  StatusOr<DatalogResult> EvalNaive(const AtomOracle& edb,
                                    RunContext* ctx) const;
  DatalogResult EvalNaive(const AtomOracle& edb) const {
    return std::move(EvalNaive(edb, nullptr)).value();
  }

  // Convenience: the contents of one predicate after evaluation. The
  // predicate may be intensional or extensional.
  StatusOr<std::set<Tuple>> EvalPredicate(const AtomOracle& edb,
                                          const std::string& predicate,
                                          RunContext* ctx = nullptr) const;

  // Declared IDB predicates in stratum order.
  const std::vector<std::string>& idb_predicates() const {
    return idb_predicates_;
  }
  // The source program (rule bodies and all); its ToString() is mixed into
  // checkpoint resume fingerprints so an edited program refuses to resume.
  const DatalogProgram& program() const { return program_; }
  // Arity of an IDB or EDB predicate.
  StatusOr<int> PredicateArity(const std::string& predicate) const;

 private:
  struct CompiledLiteral {
    bool positive = true;
    bool is_idb = false;
    // Positive IDB literal whose predicate lives in the same stratum as
    // the rule head (the literals semi-naive evaluation restricts).
    bool same_stratum_idb = false;
    int edb_relation = -1;     // when !is_idb
    std::string idb_relation;  // when is_idb
    // One entry per argument: variable slot (>= 0) or -1 with a constant.
    std::vector<int> slots;
    std::vector<Element> constants;
  };
  struct CompiledRule {
    std::string head;
    std::vector<int> head_slots;        // -1 entries use head_constants
    std::vector<Element> head_constants;
    int variable_count = 0;
    std::vector<CompiledLiteral> body;
    int stratum = 0;
  };

  DatalogProgram program_;
  std::vector<CompiledRule> rules_;
  std::vector<std::string> idb_predicates_;  // stratum order
  std::map<std::string, int> idb_arity_;
  std::map<std::string, int> idb_stratum_;
  const Vocabulary* edb_vocabulary_ = nullptr;
  int stratum_count_ = 1;

  // Enumerates body bindings and collects new head tuples. When
  // `delta_index` is a body-literal index, that (positive, same-stratum
  // IDB) literal iterates `*delta_contents` instead of the full relation —
  // the semi-naive restriction; pass delta_index = -1 for full evaluation.
  // Charges one unit of `ctx` per invocation (= per enumeration node) and
  // unwinds as soon as `*budget` goes non-OK.
  void BodySatisfied(const CompiledRule& rule, size_t literal_index,
                     std::vector<Element>* binding, const AtomOracle& edb,
                     const DatalogResult& idb,
                     const std::set<Tuple>& head_set, Tuple* head_tuple,
                     std::set<Tuple>* additions, int delta_index,
                     const std::set<Tuple>* delta_contents, RunContext* ctx,
                     Status* budget) const;
};

}  // namespace qrel

#endif  // QREL_DATALOG_EVAL_H_
