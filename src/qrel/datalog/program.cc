#include "qrel/datalog/program.h"

#include <algorithm>
#include <cctype>

namespace qrel {

std::string DatalogAtom::ToString() const {
  std::string result = relation + "(";
  for (size_t i = 0; i < args.size(); ++i) {
    if (i != 0) result += ", ";
    result += args[i].ToString();
  }
  return result + ")";
}

std::string DatalogRule::ToString() const {
  std::string result = head.ToString();
  if (!body.empty()) {
    result += " :- ";
    for (size_t i = 0; i < body.size(); ++i) {
      if (i != 0) result += ", ";
      if (!body[i].positive) result += "!";
      result += body[i].atom.ToString();
    }
  }
  return result + ".";
}

std::vector<std::string> DatalogProgram::IdbPredicates() const {
  std::vector<std::string> result;
  for (const DatalogRule& rule : rules) {
    if (std::find(result.begin(), result.end(), rule.head.relation) ==
        result.end()) {
      result.push_back(rule.head.relation);
    }
  }
  return result;
}

std::string DatalogProgram::ToString() const {
  std::string result;
  for (const DatalogRule& rule : rules) {
    result += rule.ToString();
    result += "\n";
  }
  return result;
}

namespace {

class RuleParser {
 public:
  RuleParser(std::string_view text, Diagnostic* diagnostic)
      : text_(text), diagnostic_(diagnostic) {}

  StatusOr<DatalogProgram> Parse() {
    DatalogProgram program;
    SkipSpace();
    while (pos_ < text_.size()) {
      StatusOr<DatalogRule> rule = ParseRule();
      if (!rule.ok()) {
        return rule.status();
      }
      program.rules.push_back(*rule);
      SkipSpace();
    }
    if (program.rules.empty()) {
      if (diagnostic_ != nullptr) {
        *diagnostic_ = MakeError("syntax-error", "empty Datalog program");
      }
      return Status::InvalidArgument("empty Datalog program");
    }
    return program;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  Status Error(const std::string& message) {
    if (diagnostic_ != nullptr) {
      *diagnostic_ = MakeError("syntax-error", message,
                               SourceRange{pos_, pos_ + 1});
    }
    return Status::InvalidArgument("at position " + std::to_string(pos_) +
                                   ": " + message);
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeTurnstile() {
    SkipSpace();
    if (pos_ + 1 < text_.size() && text_[pos_] == ':' &&
        text_[pos_ + 1] == '-') {
      pos_ += 2;
      return true;
    }
    return false;
  }

  StatusOr<std::string> ParseIdentifier() {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Error("expected an identifier");
    }
    return std::string(text_.substr(start, pos_ - start));
  }

  StatusOr<Term> ParseTerm() {
    SkipSpace();
    if (pos_ < text_.size() &&
        (text_[pos_] == '#' ||
         std::isdigit(static_cast<unsigned char>(text_[pos_])))) {
      if (text_[pos_] == '#') {
        ++pos_;
      }
      size_t start = pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
      if (pos_ == start) {
        return Error("expected digits after '#'");
      }
      long value = 0;
      for (size_t i = start; i < pos_; ++i) {
        value = value * 10 + (text_[i] - '0');
        if (value > 1000000000) {
          return Error("constant out of range");
        }
      }
      return Term::Const(static_cast<Element>(value));
    }
    StatusOr<std::string> name = ParseIdentifier();
    if (!name.ok()) {
      return name.status();
    }
    return Term::Var(*name);
  }

  StatusOr<DatalogAtom> ParseAtom() {
    SkipSpace();
    size_t start = pos_;
    StatusOr<std::string> relation = ParseIdentifier();
    if (!relation.ok()) {
      return relation.status();
    }
    DatalogAtom atom;
    atom.relation = *relation;
    if (!Consume('(')) {
      return Error("expected '(' after predicate name");
    }
    if (Consume(')')) {
      atom.range = SourceRange{start, pos_};
      return atom;
    }
    for (;;) {
      StatusOr<Term> term = ParseTerm();
      if (!term.ok()) {
        return term.status();
      }
      atom.args.push_back(*term);
      if (Consume(')')) {
        atom.range = SourceRange{start, pos_};
        return atom;
      }
      if (!Consume(',')) {
        return Error("expected ',' or ')' in argument list");
      }
    }
  }

  StatusOr<DatalogRule> ParseRule() {
    SkipSpace();
    size_t start = pos_;
    DatalogRule rule;
    StatusOr<DatalogAtom> head = ParseAtom();
    if (!head.ok()) {
      return head.status();
    }
    rule.head = *head;
    if (ConsumeTurnstile()) {
      for (;;) {
        DatalogLiteral literal;
        literal.positive = !Consume('!');
        StatusOr<DatalogAtom> atom = ParseAtom();
        if (!atom.ok()) {
          return atom.status();
        }
        literal.atom = *atom;
        rule.body.push_back(std::move(literal));
        if (Consume('.')) {
          rule.range = SourceRange{start, pos_};
          return rule;
        }
        if (!Consume(',')) {
          return Error("expected ',' or '.' after a body literal");
        }
      }
    }
    if (!Consume('.')) {
      return Error("expected '.' after a fact rule");
    }
    rule.range = SourceRange{start, pos_};
    return rule;
  }

  std::string_view text_;
  size_t pos_ = 0;
  Diagnostic* diagnostic_;
};

}  // namespace

StatusOr<DatalogProgram> ParseDatalogProgram(std::string_view text) {
  return RuleParser(text, nullptr).Parse();
}

StatusOr<DatalogProgram> ParseDatalogProgram(std::string_view text,
                                             Diagnostic* syntax_error) {
  return RuleParser(text, syntax_error).Parse();
}

}  // namespace qrel
