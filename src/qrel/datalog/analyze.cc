#include "qrel/datalog/analyze.h"

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <utility>

namespace qrel {

namespace {

bool Contains(const std::vector<std::string>& names,
              const std::string& name) {
  return std::find(names.begin(), names.end(), name) != names.end();
}

// Arity bookkeeping shared by IDB and EDB predicates: the first use wins
// and later disagreements are reported against the later use's range.
class ArityTable {
 public:
  explicit ArityTable(std::vector<Diagnostic>* diagnostics)
      : diagnostics_(diagnostics) {}

  void Record(const DatalogAtom& atom) {
    int arity = static_cast<int>(atom.args.size());
    auto [it, inserted] = arity_.emplace(atom.relation, arity);
    if (!inserted && it->second != arity) {
      diagnostics_->push_back(MakeError(
          "arity-mismatch",
          "predicate '" + atom.relation + "' first used with arity " +
              std::to_string(it->second) + " but here has " +
              std::to_string(arity) + " argument(s)",
          atom.range));
    }
  }

  void Seed(const std::string& name, int arity) {
    arity_.emplace(name, arity);
  }

 private:
  std::map<std::string, int> arity_;
  std::vector<Diagnostic>* diagnostics_;
};

// Mirrors eval.cc's relaxation: stratum(head) >= stratum(positive IDB body
// atom) and >= stratum(negated IDB body atom) + 1. A stratum exceeding the
// IDB count proves a negative cycle.
void CheckStratification(const DatalogProgram& program,
                         const std::vector<std::string>& idb,
                         std::vector<Diagnostic>* diagnostics) {
  std::map<std::string, int> stratum;
  for (const std::string& predicate : idb) {
    stratum[predicate] = 0;
  }
  std::set<std::string> reported;
  int idb_count = static_cast<int>(idb.size());
  bool changed = true;
  for (int round = 0; changed && round <= idb_count * idb_count + 1;
       ++round) {
    changed = false;
    for (const DatalogRule& rule : program.rules) {
      int& head_stratum = stratum[rule.head.relation];
      for (const DatalogLiteral& literal : rule.body) {
        if (!Contains(idb, literal.atom.relation)) {
          continue;
        }
        int required =
            stratum[literal.atom.relation] + (literal.positive ? 0 : 1);
        if (head_stratum < required) {
          head_stratum = required;
          changed = true;
          if (head_stratum > idb_count) {
            if (reported.insert(rule.head.relation).second) {
              diagnostics->push_back(MakeError(
                  "unstratifiable-cycle",
                  "predicate '" + rule.head.relation +
                      "' depends negatively on itself; the program is not "
                      "stratified",
                  rule.range));
            }
            // Pin the stratum so the relaxation terminates and other
            // cycles still get their own report.
            head_stratum = idb_count;
          }
        }
      }
    }
  }
}

// Head predicates that cannot reach `query_predicate` in the dependency
// graph never influence the query's answer set.
void CheckReachability(const DatalogProgram& program,
                       const std::vector<std::string>& idb,
                       const std::string& query_predicate,
                       std::vector<Diagnostic>* diagnostics) {
  if (!Contains(idb, query_predicate)) {
    return;  // extensional or unknown query predicate: nothing to prune
  }
  // Reverse reachability from the query predicate over "head depends on
  // body" edges.
  std::set<std::string> reachable = {query_predicate};
  bool changed = true;
  while (changed) {
    changed = false;
    for (const DatalogRule& rule : program.rules) {
      if (reachable.count(rule.head.relation) == 0) {
        continue;
      }
      for (const DatalogLiteral& literal : rule.body) {
        if (Contains(idb, literal.atom.relation) &&
            reachable.insert(literal.atom.relation).second) {
          changed = true;
        }
      }
    }
  }
  std::set<std::string> reported;
  for (const DatalogRule& rule : program.rules) {
    if (reachable.count(rule.head.relation) != 0) {
      continue;
    }
    if (reported.insert(rule.head.relation).second) {
      diagnostics->push_back(MakeNote(
          "unreachable-predicate",
          "predicate '" + rule.head.relation +
              "' cannot influence the query predicate '" + query_predicate +
              "'",
          rule.range));
    }
  }
}

}  // namespace

DatalogAnalysis AnalyzeDatalogProgram(const DatalogProgram& program,
                                      const Vocabulary* vocabulary,
                                      const std::string& query_predicate) {
  DatalogAnalysis analysis;
  std::vector<Diagnostic>* diagnostics = &analysis.diagnostics;
  const std::vector<std::string> idb = program.IdbPredicates();

  if (vocabulary != nullptr) {
    for (const DatalogRule& rule : program.rules) {
      if (vocabulary->FindRelation(rule.head.relation).has_value()) {
        diagnostics->push_back(MakeError(
            "idb-edb-clash",
            "predicate '" + rule.head.relation +
                "' is both intensional (appears in a rule head) and "
                "extensional",
            rule.head.range));
      }
    }
  }

  ArityTable arities(diagnostics);
  if (vocabulary != nullptr) {
    for (int id = 0; id < vocabulary->relation_count(); ++id) {
      const RelationSymbol& symbol = vocabulary->relation(id);
      arities.Seed(symbol.name, symbol.arity);
    }
  }
  for (const DatalogRule& rule : program.rules) {
    arities.Record(rule.head);
    for (const DatalogLiteral& literal : rule.body) {
      const std::string& name = literal.atom.relation;
      if (!Contains(idb, name) && vocabulary != nullptr &&
          !vocabulary->FindRelation(name).has_value()) {
        diagnostics->push_back(MakeError(
            "unknown-predicate",
            "unknown extensional predicate '" + name + "'",
            literal.atom.range));
        continue;  // no arity to check against
      }
      arities.Record(literal.atom);
    }
  }

  // Safety: head variables and negated variables must be bound by some
  // positive body literal.
  for (const DatalogRule& rule : program.rules) {
    std::set<std::string> positive_variables;
    for (const DatalogLiteral& literal : rule.body) {
      if (!literal.positive) {
        continue;
      }
      for (const Term& term : literal.atom.args) {
        if (term.is_variable()) {
          positive_variables.insert(term.variable);
        }
      }
    }
    std::set<std::string> reported;
    for (const Term& term : rule.head.args) {
      if (term.is_variable() &&
          positive_variables.count(term.variable) == 0 &&
          reported.insert(term.variable).second) {
        diagnostics->push_back(MakeError(
            "unbound-head-variable",
            "head variable '" + term.variable +
                "' is not bound by a positive body literal",
            rule.head.range));
      }
    }
    for (const DatalogLiteral& literal : rule.body) {
      if (literal.positive) {
        continue;
      }
      for (const Term& term : literal.atom.args) {
        if (term.is_variable() &&
            positive_variables.count(term.variable) == 0 &&
            reported.insert(term.variable).second) {
          diagnostics->push_back(MakeError(
              "unsafe-variable",
              "variable '" + term.variable +
                  "' occurs only in negated literals and is never bound",
              literal.atom.range));
        }
      }
    }
  }

  // Verbatim duplicates (ToString ignores ranges, so rules that differ
  // only in source position still match).
  std::set<std::string> seen_rules;
  for (const DatalogRule& rule : program.rules) {
    if (!seen_rules.insert(rule.ToString()).second) {
      diagnostics->push_back(MakeWarning(
          "duplicate-rule",
          "rule repeats an earlier rule verbatim: " + rule.ToString(),
          rule.range));
    }
  }

  CheckStratification(program, idb, diagnostics);

  if (!query_predicate.empty()) {
    CheckReachability(program, idb, query_predicate, diagnostics);
  }
  return analysis;
}

}  // namespace qrel
