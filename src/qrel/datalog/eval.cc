#include "qrel/datalog/eval.h"

#include <algorithm>
#include <utility>

#include "qrel/util/check.h"
#include "qrel/util/fault_injection.h"
#include "qrel/util/snapshot.h"

namespace qrel {

namespace {

constexpr Element kUnbound = -1;

// IDB serialization for fixpoint checkpoints. std::map iteration order is
// the predicate-name order, so the encoding is canonical.
void WriteIdb(SnapshotWriter& w, const DatalogResult& idb) {
  w.U32(static_cast<uint32_t>(idb.size()));
  for (const auto& [predicate, tuples] : idb) {
    w.String(predicate);
    w.U32(static_cast<uint32_t>(tuples.size()));
    for (const Tuple& tuple : tuples) {
      w.TupleVal(tuple);
    }
  }
}

// Restores into `idb`, which must already hold exactly the program's
// predicates (mapped to empty sets); unknown names are data loss. Every
// restored tuple is validated against the predicate's recorded arity and
// the universe, so a forged payload (valid checksum, matching fingerprint)
// cannot smuggle a short or out-of-range tuple into BodySatisfied's
// indexing — it degrades to kDataLoss, never UB.
Status ReadIdb(SnapshotReader& r, const std::map<std::string, int>& arity,
               int universe_size, DatalogResult* idb) {
  uint32_t predicate_count = 0;
  QREL_RETURN_IF_ERROR(r.U32(&predicate_count));
  if (predicate_count != idb->size()) {
    return Status::DataLoss("snapshot IDB predicate count mismatch");
  }
  for (uint32_t p = 0; p < predicate_count; ++p) {
    std::string predicate;
    QREL_RETURN_IF_ERROR(r.String(&predicate));
    auto it = idb->find(predicate);
    if (it == idb->end()) {
      return Status::DataLoss("snapshot IDB holds unknown predicate '" +
                              predicate + "'");
    }
    auto arity_it = arity.find(predicate);
    if (arity_it == arity.end()) {
      return Status::DataLoss("snapshot IDB predicate '" + predicate +
                              "' has no recorded arity");
    }
    uint32_t tuple_count = 0;
    QREL_RETURN_IF_ERROR(r.U32(&tuple_count));
    for (uint32_t t = 0; t < tuple_count; ++t) {
      Tuple tuple;
      QREL_RETURN_IF_ERROR(r.TupleVal(&tuple));
      if (tuple.size() != static_cast<size_t>(arity_it->second)) {
        return Status::DataLoss("snapshot IDB tuple arity mismatch for '" +
                                predicate + "'");
      }
      for (Element element : tuple) {
        if (element < 0 || element >= universe_size) {
          return Status::DataLoss(
              "snapshot IDB tuple element out of range for '" + predicate +
              "'");
        }
      }
      it->second.insert(std::move(tuple));
    }
  }
  return Status::Ok();
}

}  // namespace

StatusOr<CompiledDatalog> CompiledDatalog::Compile(
    DatalogProgram program, const Vocabulary& edb_vocabulary) {
  CompiledDatalog compiled;
  compiled.edb_vocabulary_ = &edb_vocabulary;

  // IDB predicates and arities (consistent across all uses).
  std::vector<std::string> idb = program.IdbPredicates();
  for (const std::string& predicate : idb) {
    if (edb_vocabulary.FindRelation(predicate).has_value()) {
      return Status::InvalidArgument(
          "predicate '" + predicate +
          "' is both intensional (appears in a rule head) and extensional");
    }
  }
  auto is_idb = [&idb](const std::string& name) {
    return std::find(idb.begin(), idb.end(), name) != idb.end();
  };
  auto record_arity = [&compiled](const std::string& name,
                                  int arity) -> Status {
    auto [it, inserted] = compiled.idb_arity_.emplace(name, arity);
    if (!inserted && it->second != arity) {
      return Status::InvalidArgument("inconsistent arity for predicate '" +
                                     name + "'");
    }
    return Status::Ok();
  };

  for (const DatalogRule& rule : program.rules) {
    QREL_RETURN_IF_ERROR(record_arity(
        rule.head.relation, static_cast<int>(rule.head.args.size())));
    for (const DatalogLiteral& literal : rule.body) {
      const std::string& name = literal.atom.relation;
      int arity = static_cast<int>(literal.atom.args.size());
      if (is_idb(name)) {
        QREL_RETURN_IF_ERROR(record_arity(name, arity));
      } else {
        std::optional<int> relation = edb_vocabulary.FindRelation(name);
        if (!relation.has_value()) {
          return Status::InvalidArgument("unknown extensional predicate '" +
                                         name + "'");
        }
        if (edb_vocabulary.relation(*relation).arity != arity) {
          return Status::InvalidArgument("arity mismatch for predicate '" +
                                         name + "'");
        }
      }
    }
  }

  // Stratification by relaxation: stratum(head) >= stratum(positive IDB
  // body atom) and >= stratum(negated IDB body atom) + 1.
  for (const std::string& predicate : idb) {
    compiled.idb_stratum_[predicate] = 0;
  }
  int idb_count = static_cast<int>(idb.size());
  bool changed = true;
  for (int round = 0; changed && round <= idb_count * idb_count + 1;
       ++round) {
    changed = false;
    for (const DatalogRule& rule : program.rules) {
      int& head_stratum = compiled.idb_stratum_[rule.head.relation];
      for (const DatalogLiteral& literal : rule.body) {
        if (!is_idb(literal.atom.relation)) {
          continue;
        }
        int required = compiled.idb_stratum_[literal.atom.relation] +
                       (literal.positive ? 0 : 1);
        if (head_stratum < required) {
          head_stratum = required;
          changed = true;
          if (head_stratum > idb_count) {
            return Status::InvalidArgument(
                "program is not stratified: predicate '" +
                rule.head.relation + "' depends negatively on itself");
          }
        }
      }
    }
  }
  for (const auto& [predicate, stratum] : compiled.idb_stratum_) {
    compiled.stratum_count_ =
        std::max(compiled.stratum_count_, stratum + 1);
  }
  compiled.idb_predicates_ = idb;
  std::stable_sort(compiled.idb_predicates_.begin(),
                   compiled.idb_predicates_.end(),
                   [&compiled](const std::string& a, const std::string& b) {
                     return compiled.idb_stratum_.at(a) <
                            compiled.idb_stratum_.at(b);
                   });

  // Per-rule compilation: variable slots, safety, body reordering.
  for (const DatalogRule& rule : program.rules) {
    CompiledRule compiled_rule;
    compiled_rule.head = rule.head.relation;
    compiled_rule.stratum = compiled.idb_stratum_.at(rule.head.relation);

    std::vector<std::string> variables;
    auto slot_of = [&variables](const Term& term) {
      auto it = std::find(variables.begin(), variables.end(), term.variable);
      if (it == variables.end()) {
        variables.push_back(term.variable);
        return static_cast<int>(variables.size()) - 1;
      }
      return static_cast<int>(it - variables.begin());
    };
    auto compile_args = [&](const std::vector<Term>& args,
                            std::vector<int>* slots,
                            std::vector<Element>* constants) {
      for (const Term& term : args) {
        if (term.is_variable()) {
          slots->push_back(slot_of(term));
          constants->push_back(0);
        } else {
          slots->push_back(-1);
          constants->push_back(term.constant);
        }
      }
    };

    // Positive body literals bind variables; compile them first so
    // negative literals always see fully bound arguments.
    std::vector<const DatalogLiteral*> ordered;
    for (const DatalogLiteral& literal : rule.body) {
      if (literal.positive) ordered.push_back(&literal);
    }
    size_t positive_count = ordered.size();
    for (const DatalogLiteral& literal : rule.body) {
      if (!literal.positive) ordered.push_back(&literal);
    }

    std::vector<std::string> positive_variables;
    for (size_t i = 0; i < ordered.size(); ++i) {
      const DatalogLiteral& literal = *ordered[i];
      CompiledLiteral compiled_literal;
      compiled_literal.positive = literal.positive;
      compiled_literal.is_idb = is_idb(literal.atom.relation);
      if (compiled_literal.is_idb) {
        compiled_literal.idb_relation = literal.atom.relation;
        compiled_literal.same_stratum_idb =
            literal.positive &&
            compiled.idb_stratum_.at(literal.atom.relation) ==
                compiled_rule.stratum;
      } else {
        compiled_literal.edb_relation =
            *edb_vocabulary.FindRelation(literal.atom.relation);
      }
      compile_args(literal.atom.args, &compiled_literal.slots,
                   &compiled_literal.constants);
      if (i < positive_count) {
        for (const Term& term : literal.atom.args) {
          if (term.is_variable()) {
            positive_variables.push_back(term.variable);
          }
        }
      }
      compiled_rule.body.push_back(std::move(compiled_literal));
    }

    // Safety: head and negated variables must occur positively.
    auto bound_positively = [&positive_variables](const std::string& name) {
      return std::find(positive_variables.begin(), positive_variables.end(),
                       name) != positive_variables.end();
    };
    for (const Term& term : rule.head.args) {
      if (term.is_variable() && !bound_positively(term.variable)) {
        return Status::InvalidArgument(
            "unsafe rule (head variable '" + term.variable +
            "' not bound by a positive body literal): " + rule.ToString());
      }
    }
    for (const DatalogLiteral& literal : rule.body) {
      if (literal.positive) continue;
      for (const Term& term : literal.atom.args) {
        if (term.is_variable() && !bound_positively(term.variable)) {
          return Status::InvalidArgument(
              "unsafe rule (negated variable '" + term.variable +
              "' not bound by a positive body literal): " + rule.ToString());
        }
      }
    }

    compile_args(rule.head.args, &compiled_rule.head_slots,
                 &compiled_rule.head_constants);
    compiled_rule.variable_count = static_cast<int>(variables.size());
    compiled.rules_.push_back(std::move(compiled_rule));
  }

  compiled.program_ = std::move(program);
  return compiled;
}

void CompiledDatalog::BodySatisfied(
    const CompiledRule& rule, size_t literal_index,
    std::vector<Element>* binding, const AtomOracle& edb,
    const DatalogResult& idb, const std::set<Tuple>& head_set,
    Tuple* head_tuple, std::set<Tuple>* additions, int delta_index,
    const std::set<Tuple>* delta_contents, RunContext* ctx,
    Status* budget) const {
  if (!budget->ok()) {
    return;
  }
  *budget = ChargeWork(ctx);
  if (!budget->ok()) {
    return;
  }
  if (literal_index == rule.body.size()) {
    // Body satisfied: emit the head tuple (safety guarantees all head
    // slots are bound).
    head_tuple->clear();
    for (size_t i = 0; i < rule.head_slots.size(); ++i) {
      int slot = rule.head_slots[i];
      head_tuple->push_back(slot < 0 ? rule.head_constants[i]
                                     : (*binding)[static_cast<size_t>(slot)]);
    }
    if (head_set.find(*head_tuple) == head_set.end()) {
      additions->insert(*head_tuple);
    }
    return;  // keep enumerating all bindings
  }

  const CompiledLiteral& literal = rule.body[literal_index];
  size_t arity = literal.slots.size();

  // Instantiate what is already bound; record unbound slots.
  Tuple args(arity, 0);
  std::vector<size_t> free_positions;
  for (size_t i = 0; i < arity; ++i) {
    int slot = literal.slots[i];
    if (slot < 0) {
      args[i] = literal.constants[i];
    } else if ((*binding)[static_cast<size_t>(slot)] != kUnbound) {
      args[i] = (*binding)[static_cast<size_t>(slot)];
    } else {
      free_positions.push_back(i);
    }
  }

  auto args_match_and_bind = [&](const Tuple& candidate,
                                 std::vector<int>* newly_bound) {
    for (size_t i = 0; i < arity; ++i) {
      int slot = literal.slots[i];
      if (slot < 0) {
        if (candidate[i] != literal.constants[i]) return false;
        continue;
      }
      Element& value = (*binding)[static_cast<size_t>(slot)];
      if (value == kUnbound) {
        value = candidate[i];
        newly_bound->push_back(slot);
      } else if (value != candidate[i]) {
        return false;
      }
    }
    return true;
  };

  if (!literal.positive) {
    // All arguments bound (compile-time safety): a simple membership test.
    bool holds;
    if (literal.is_idb) {
      const std::set<Tuple>& contents = idb.at(literal.idb_relation);
      holds = contents.find(args) != contents.end();
    } else {
      holds = edb.AtomTrue(literal.edb_relation, args);
    }
    if (holds) {
      return;
    }
    BodySatisfied(rule, literal_index + 1, binding, edb, idb, head_set,
                  head_tuple, additions, delta_index, delta_contents, ctx,
                  budget);
    return;
  }

  if (literal.is_idb) {
    // Iterate the materialized relation (or the delta, when this is the
    // restricted literal of a semi-naive pass), filtered by the bound
    // positions.
    const std::set<Tuple>& contents =
        static_cast<int>(literal_index) == delta_index
            ? *delta_contents
            : idb.at(literal.idb_relation);
    for (const Tuple& candidate : contents) {
      std::vector<int> newly_bound;
      bool matched = args_match_and_bind(candidate, &newly_bound);
      if (matched) {
        BodySatisfied(rule, literal_index + 1, binding, edb, idb, head_set,
                      head_tuple, additions, delta_index, delta_contents,
                      ctx, budget);
      }
      for (int slot : newly_bound) {
        (*binding)[static_cast<size_t>(slot)] = kUnbound;
      }
      if (!budget->ok()) {
        return;
      }
    }
    return;
  }

  // Extensional literal: enumerate values for the unbound positions and
  // probe the oracle. Positions sharing one variable slot move together.
  std::vector<int> distinct_free_slots;
  for (size_t position : free_positions) {
    int slot = literal.slots[position];
    if (std::find(distinct_free_slots.begin(), distinct_free_slots.end(),
                  slot) == distinct_free_slots.end()) {
      distinct_free_slots.push_back(slot);
    }
  }
  int n = edb.universe_size();
  Tuple values(distinct_free_slots.size(), 0);
  bool more = true;
  while (more) {
    for (size_t i = 0; i < distinct_free_slots.size(); ++i) {
      (*binding)[static_cast<size_t>(distinct_free_slots[i])] = values[i];
    }
    for (size_t i = 0; i < arity; ++i) {
      int slot = literal.slots[i];
      if (slot >= 0) {
        args[i] = (*binding)[static_cast<size_t>(slot)];
      }
    }
    if (edb.AtomTrue(literal.edb_relation, args)) {
      BodySatisfied(rule, literal_index + 1, binding, edb, idb, head_set,
                    head_tuple, additions, delta_index, delta_contents, ctx,
                    budget);
      if (!budget->ok()) {
        break;
      }
    }
    more = !values.empty() && AdvanceTuple(&values, n);
    if (values.empty()) {
      more = false;
    }
  }
  for (int slot : distinct_free_slots) {
    (*binding)[static_cast<size_t>(slot)] = kUnbound;
  }
}

StatusOr<DatalogResult> CompiledDatalog::EvalNaive(const AtomOracle& edb,
                                                   RunContext* ctx) const {
  DatalogResult idb;
  for (const std::string& predicate : idb_predicates_) {
    idb[predicate] = {};
  }
  Tuple head_tuple;
  Status budget = Status::Ok();
  for (int stratum = 0; stratum < stratum_count_; ++stratum) {
    bool changed = true;
    while (changed) {
      QREL_FAULT_SITE("datalog.fixpoint.round");
      changed = false;
      for (const CompiledRule& rule : rules_) {
        if (rule.stratum != stratum) {
          continue;
        }
        std::set<Tuple> additions;
        std::vector<Element> binding(
            static_cast<size_t>(rule.variable_count), kUnbound);
        BodySatisfied(rule, 0, &binding, edb, idb, idb.at(rule.head),
                      &head_tuple, &additions, -1, nullptr, ctx, &budget);
        QREL_RETURN_IF_ERROR(budget);
        if (!additions.empty()) {
          idb[rule.head].insert(additions.begin(), additions.end());
          changed = true;
        }
      }
    }
  }
  return idb;
}

StatusOr<DatalogResult> CompiledDatalog::Eval(const AtomOracle& edb,
                                              RunContext* ctx) const {
  DatalogResult idb;
  for (const std::string& predicate : idb_predicates_) {
    idb[predicate] = {};
  }

  // Checkpoints at stratum entry and at every semi-naive round boundary:
  // the derived-atom frontier (idb + delta) at those points fully
  // determines the rest of the fixpoint. Inert when a world loop above
  // already claimed the scope (datalog/reliability.cc).
  //
  // The content digest (program text + full EDB relation contents) is
  // computed only when this scope would actually claim: hashing the EDB
  // costs Θ(n^arity) per relation through the oracle, and the per-world
  // fixpoints under a claimed world loop must not pay that per world.
  Fingerprint fingerprint;
  if (CheckpointScope::WouldClaim(ctx)) {
    fingerprint.Mix("datalog.fixpoint")
        .Mix(program_.ToString())
        .Mix(static_cast<uint64_t>(edb.universe_size()));
    const Vocabulary& vocab = edb.vocabulary();
    fingerprint.Mix(static_cast<uint64_t>(vocab.relation_count()));
    for (int r = 0; r < vocab.relation_count(); ++r) {
      const RelationSymbol& symbol = vocab.relation(r);
      fingerprint.Mix(symbol.name);
      fingerprint.Mix(static_cast<uint64_t>(symbol.arity));
      if (symbol.arity > 0 && edb.universe_size() == 0) {
        continue;  // no ground atoms to digest
      }
      // Pack the relation's truth table into 64-bit words; tuple
      // enumeration order is deterministic (odometer order).
      Tuple probe(static_cast<size_t>(symbol.arity), 0);
      uint64_t word = 0;
      int bit = 0;
      do {
        if (edb.AtomTrue(r, probe)) {
          word |= uint64_t{1} << bit;
        }
        if (++bit == 64) {
          fingerprint.Mix(word);
          word = 0;
          bit = 0;
        }
      } while (AdvanceTuple(&probe, edb.universe_size()));
      if (bit != 0) {
        fingerprint.Mix(word);
      }
    }
  }
  CheckpointScope checkpoint(ctx, "datalog.fixpoint.v1", fingerprint.value());

  int start_stratum = 0;
  bool resume_in_round = false;
  DatalogResult resume_delta;
  {
    std::optional<SnapshotReader> resume;
    QREL_RETURN_IF_ERROR(checkpoint.TakeResume(&resume));
    if (resume.has_value()) {
      uint32_t stratum = 0;
      uint8_t in_round = 0;
      QREL_RETURN_IF_ERROR(resume->U32(&stratum));
      QREL_RETURN_IF_ERROR(resume->U8(&in_round));
      if (stratum >= static_cast<uint32_t>(stratum_count_)) {
        return Status::DataLoss("snapshot stratum out of range");
      }
      QREL_RETURN_IF_ERROR(
          ReadIdb(*resume, idb_arity_, edb.universe_size(), &idb));
      if (in_round != 0) {
        for (const std::string& predicate : idb_predicates_) {
          resume_delta[predicate] = {};
        }
        QREL_RETURN_IF_ERROR(
            ReadIdb(*resume, idb_arity_, edb.universe_size(), &resume_delta));
        resume_in_round = true;
      }
      QREL_RETURN_IF_ERROR(resume->ExpectEnd());
      start_stratum = static_cast<int>(stratum);
    }
  }

  Tuple head_tuple;
  Status budget = Status::Ok();
  for (int stratum = start_stratum; stratum < stratum_count_; ++stratum) {
    DatalogResult delta;
    for (const std::string& predicate : idb_predicates_) {
      delta[predicate] = {};
    }
    if (resume_in_round) {
      // The interrupted run already finished this stratum's seed round and
      // some semi-naive rounds; re-enter the round loop with its frontier.
      resume_in_round = false;
      delta = std::move(resume_delta);
    } else {
      QREL_RETURN_IF_ERROR(checkpoint.MaybeCheckpoint([&](SnapshotWriter& w) {
        w.U32(static_cast<uint32_t>(stratum));
        w.U8(0);
        WriteIdb(w, idb);
      }));
      QREL_FAULT_SITE("datalog.fixpoint.round");
      // Round 0: full evaluation seeds the delta (also the only round for
      // rules with no same-stratum recursion).
      for (const CompiledRule& rule : rules_) {
        if (rule.stratum != stratum) {
          continue;
        }
        std::set<Tuple> additions;
        std::vector<Element> binding(
            static_cast<size_t>(rule.variable_count), kUnbound);
        BodySatisfied(rule, 0, &binding, edb, idb, idb.at(rule.head),
                      &head_tuple, &additions, -1, nullptr, ctx, &budget);
        QREL_RETURN_IF_ERROR(budget);
        delta[rule.head].insert(additions.begin(), additions.end());
      }
      for (auto& [predicate, tuples] : delta) {
        idb[predicate].insert(tuples.begin(), tuples.end());
      }
    }

    // Semi-naive rounds: each recursive rule re-fires once per
    // same-stratum positive IDB literal, with that literal restricted to
    // the previous delta.
    bool any_delta = true;
    while (any_delta) {
      QREL_FAULT_SITE("datalog.fixpoint.round");
      DatalogResult next_delta;
      for (const std::string& predicate : idb_predicates_) {
        next_delta[predicate] = {};
      }
      any_delta = false;
      for (const CompiledRule& rule : rules_) {
        if (rule.stratum != stratum) {
          continue;
        }
        for (size_t i = 0; i < rule.body.size(); ++i) {
          if (!rule.body[i].same_stratum_idb) {
            continue;
          }
          const std::set<Tuple>& restricted =
              delta.at(rule.body[i].idb_relation);
          if (restricted.empty()) {
            continue;
          }
          std::set<Tuple> additions;
          std::vector<Element> binding(
              static_cast<size_t>(rule.variable_count), kUnbound);
          BodySatisfied(rule, 0, &binding, edb, idb, idb.at(rule.head),
                        &head_tuple, &additions, static_cast<int>(i),
                        &restricted, ctx, &budget);
          QREL_RETURN_IF_ERROR(budget);
          for (const Tuple& tuple : additions) {
            if (idb.at(rule.head).find(tuple) == idb.at(rule.head).end()) {
              next_delta[rule.head].insert(tuple);
            }
          }
        }
      }
      for (auto& [predicate, tuples] : next_delta) {
        if (!tuples.empty()) {
          idb[predicate].insert(tuples.begin(), tuples.end());
          any_delta = true;
        }
      }
      delta = std::move(next_delta);
      if (any_delta) {
        QREL_RETURN_IF_ERROR(
            checkpoint.MaybeCheckpoint([&](SnapshotWriter& w) {
              w.U32(static_cast<uint32_t>(stratum));
              w.U8(1);
              WriteIdb(w, idb);
              WriteIdb(w, delta);
            }));
      }
    }
  }
  return idb;
}

StatusOr<std::set<Tuple>> CompiledDatalog::EvalPredicate(
    const AtomOracle& edb, const std::string& predicate,
    RunContext* ctx) const {
  if (idb_arity_.find(predicate) != idb_arity_.end()) {
    StatusOr<DatalogResult> result = Eval(edb, ctx);
    if (!result.ok()) {
      return result.status();
    }
    return std::move(result->at(predicate));
  }
  std::optional<int> relation = edb_vocabulary_->FindRelation(predicate);
  if (!relation.has_value()) {
    return Status::NotFound("unknown predicate '" + predicate + "'");
  }
  // Materialize the extensional relation through the oracle.
  std::set<Tuple> contents;
  int arity = edb_vocabulary_->relation(*relation).arity;
  Tuple tuple(static_cast<size_t>(arity), 0);
  do {
    QREL_RETURN_IF_ERROR(ChargeWork(ctx));
    if (edb.AtomTrue(*relation, tuple)) {
      contents.insert(tuple);
    }
  } while (AdvanceTuple(&tuple, edb.universe_size()));
  return contents;
}

StatusOr<int> CompiledDatalog::PredicateArity(
    const std::string& predicate) const {
  auto it = idb_arity_.find(predicate);
  if (it != idb_arity_.end()) {
    return it->second;
  }
  std::optional<int> relation = edb_vocabulary_->FindRelation(predicate);
  if (!relation.has_value()) {
    return Status::NotFound("unknown predicate '" + predicate + "'");
  }
  return edb_vocabulary_->relation(*relation).arity;
}

}  // namespace qrel
