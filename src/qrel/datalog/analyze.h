// Static analysis of Datalog programs: the same checks eval.h's Compile
// enforces fatally, reported instead as source-located Diagnostics — all of
// them at once, not just the first — plus lint-style checks Compile does
// not care about. engine/engine.h runs this before compiling so a broken
// program fails with every problem listed and before any budget is
// charged.
//
// Checks (stable ids — see DESIGN.md "Static analysis and plan
// explanation"):
//   error   unknown-predicate      body EDB predicate not in the vocabulary
//   error   arity-mismatch         EDB/IDB predicate used at two arities
//   error   idb-edb-clash          predicate is both a rule head and EDB
//   error   unbound-head-variable  head variable not positively bound
//   error   unsafe-variable        negated variable not positively bound
//   error   unstratifiable-cycle   predicate depends negatively on itself
//   warning duplicate-rule         rule repeats an earlier rule verbatim
//   note    unreachable-predicate  rule head cannot influence the query
//                                  predicate (only with `query_predicate`)

#ifndef QREL_DATALOG_ANALYZE_H_
#define QREL_DATALOG_ANALYZE_H_

#include <string>
#include <vector>

#include "qrel/datalog/program.h"
#include "qrel/logic/diagnostics.h"
#include "qrel/relational/vocabulary.h"

namespace qrel {

struct DatalogAnalysis {
  std::vector<Diagnostic> diagnostics;

  bool has_errors() const { return HasErrors(diagnostics); }
};

// Analyzes `program` against the extensional vocabulary. `vocabulary` is
// nullable; without it the EDB checks (unknown-predicate, arity-mismatch
// against the vocabulary, idb-edb-clash) are skipped. `query_predicate`,
// when non-empty, additionally flags rules whose head predicate cannot
// reach it through the dependency graph (note unreachable-predicate).
DatalogAnalysis AnalyzeDatalogProgram(const DatalogProgram& program,
                                      const Vocabulary* vocabulary,
                                      const std::string& query_predicate = "");

}  // namespace qrel

#endif  // QREL_DATALOG_ANALYZE_H_
