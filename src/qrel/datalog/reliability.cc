#include "qrel/datalog/reliability.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "qrel/util/check.h"
#include "qrel/util/fault_injection.h"
#include "qrel/util/snapshot.h"

namespace qrel {

namespace {

Rational TupleSpaceSize(int n, int k) {
  return Rational(BigInt::Pow(BigInt(n), static_cast<uint32_t>(k)),
                  BigInt(1));
}

size_t SymmetricDifferenceSize(const std::set<Tuple>& a,
                               const std::set<Tuple>& b) {
  size_t common = 0;
  const std::set<Tuple>& smaller = a.size() <= b.size() ? a : b;
  const std::set<Tuple>& larger = a.size() <= b.size() ? b : a;
  for (const Tuple& tuple : smaller) {
    if (larger.find(tuple) != larger.end()) {
      ++common;
    }
  }
  return a.size() + b.size() - 2 * common;
}

}  // namespace

StatusOr<ReliabilityReport> ExactDatalogReliability(
    const CompiledDatalog& program, const std::string& predicate,
    const UnreliableDatabase& db, RunContext* ctx) {
  StatusOr<int> arity = program.PredicateArity(predicate);
  if (!arity.ok()) {
    return arity.status();
  }
  if (db.UncertainEntries().size() > 62) {
    return Status::OutOfRange(
        "exact Datalog reliability would enumerate more than 2^62 worlds");
  }
  // Claimed before any EvalPredicate call: the fixpoint inside each world
  // carries its own (here inert) scope, and granularity must be one world.
  Fingerprint fingerprint;
  fingerprint.Mix("datalog.exact")
      .Mix(predicate)
      .Mix(static_cast<uint64_t>(db.universe_size()))
      .Mix(static_cast<uint64_t>(*arity))
      .Mix(static_cast<uint64_t>(db.UncertainEntries().size()))
      .Mix(program.program().ToString())
      .Mix(db.ContentFingerprint());
  CheckpointScope checkpoint(ctx, "datalog.exact.v1", fingerprint.value());

  StatusOr<std::set<Tuple>> observed =
      program.EvalPredicate(db.observed(), predicate, ctx);
  if (!observed.ok()) {
    return observed.status();
  }

  ReliabilityReport report;
  report.arity = *arity;
  uint64_t code = 0;  // index of the next world to visit
  {
    std::optional<SnapshotReader> resume;
    QREL_RETURN_IF_ERROR(checkpoint.TakeResume(&resume));
    if (resume.has_value()) {
      QREL_RETURN_IF_ERROR(resume->U64(&code));
      QREL_RETURN_IF_ERROR(resume->RationalVal(&report.expected_error));
      QREL_RETURN_IF_ERROR(resume->U64(&report.work_units));
      QREL_RETURN_IF_ERROR(resume->ExpectEnd());
    }
  }

  Status budget = Status::Ok();
  db.ForEachWorldWhile(
      [&](const World& world, const Rational& probability) {
        budget = checkpoint.MaybeCheckpoint([&](SnapshotWriter& w) {
          w.U64(code);
          w.RationalVal(report.expected_error);
          w.U64(report.work_units);
        });
        if (budget.ok()) {
          budget = ChargeWork(ctx);
        }
        if (budget.ok()) {
          budget = QREL_FAULT_HIT("datalog.exact.world");
        }
        if (!budget.ok()) {
          return false;
        }
        ++report.work_units;
        ++code;
        if (probability.IsZero()) {
          return true;
        }
        WorldView view(db, world);
        StatusOr<std::set<Tuple>> actual =
            program.EvalPredicate(view, predicate, ctx);
        if (!actual.ok()) {
          budget = actual.status();  // the envelope, or an injected fault
          return false;
        }
        size_t differing = SymmetricDifferenceSize(*observed, *actual);
        if (differing > 0) {
          report.expected_error +=
              probability * Rational(static_cast<int64_t>(differing));
        }
        return true;
      },
      code);
  QREL_RETURN_IF_ERROR(budget);
  report.reliability =
      Rational(1) -
      report.expected_error / TupleSpaceSize(db.universe_size(), *arity);
  return report;
}

StatusOr<ApproxResult> PaddedDatalogReliability(
    const CompiledDatalog& program, const std::string& predicate,
    const UnreliableDatabase& db, const ApproxOptions& options) {
  if (options.epsilon <= 0.0 || options.epsilon >= 1.0 ||
      options.delta <= 0.0 || options.delta >= 1.0) {
    return Status::InvalidArgument("epsilon and delta must lie in (0, 1)");
  }
  if (options.xi <= 0.0 || options.xi >= 0.5) {
    return Status::InvalidArgument("xi must lie in (0, 1/2)");
  }
  StatusOr<int> arity = program.PredicateArity(predicate);
  if (!arity.ok()) {
    return arity.status();
  }
  int n = db.universe_size();
  int k = *arity;
  double tuple_count = std::pow(static_cast<double>(n),
                                static_cast<double>(k));
  if (tuple_count > static_cast<double>(uint64_t{1} << 22)) {
    return Status::OutOfRange("answer space too large");
  }
  uint64_t tuples = static_cast<uint64_t>(tuple_count);

  // Claimed before any EvalPredicate call so the per-world fixpoint scope
  // is inert; granularity is one sampled world.
  Fingerprint fingerprint;
  fingerprint.Mix("datalog.padded")
      .Mix(predicate)
      .Mix(options.seed)
      .Mix(static_cast<uint64_t>(n))
      .Mix(static_cast<uint64_t>(k))
      .MixDouble(options.xi)
      .Mix(options.fixed_samples.value_or(0))
      .Mix(static_cast<uint64_t>(db.model().entry_count()))
      .Mix(program.program().ToString())
      .Mix(db.ContentFingerprint());
  CheckpointScope checkpoint(options.run_context, "datalog.padded.v1",
                             fingerprint.value());

  StatusOr<std::set<Tuple>> observed =
      program.EvalPredicate(db.observed(), predicate, options.run_context);
  if (!observed.ok()) {
    return observed.status();
  }

  double per_epsilon = options.epsilon / tuple_count;
  double per_delta = options.delta / tuple_count;
  uint64_t samples =
      options.fixed_samples.has_value()
          ? *options.fixed_samples
          : PaddedSampleBound(options.xi, per_epsilon / 2.0, per_delta);

  // Enumerate the tuple space once; per-tuple hit counters.
  std::vector<Tuple> all_tuples;
  {
    Tuple tuple(static_cast<size_t>(k), 0);
    do {
      all_tuples.push_back(tuple);
    } while (AdvanceTuple(&tuple, n));
  }
  QREL_CHECK_EQ(all_tuples.size(), static_cast<size_t>(tuples));
  std::vector<uint64_t> hits(all_tuples.size(), 0);

  const double xi = options.xi;
  Rng rng(options.seed);
  bool truncated = false;
  uint64_t drawn = 0;
  {
    std::optional<SnapshotReader> resume;
    QREL_RETURN_IF_ERROR(checkpoint.TakeResume(&resume));
    if (resume.has_value()) {
      QREL_RETURN_IF_ERROR(resume->U64(&drawn));
      uint32_t hit_count = 0;
      QREL_RETURN_IF_ERROR(resume->U32(&hit_count));
      if (hit_count != hits.size()) {
        return Status::DataLoss("snapshot hit-counter count mismatch");
      }
      for (uint64_t& h : hits) {
        QREL_RETURN_IF_ERROR(resume->U64(&h));
      }
      QREL_RETURN_IF_ERROR(resume->RngState(&rng));
      QREL_RETURN_IF_ERROR(resume->ExpectEnd());
    }
  }
  for (uint64_t s = drawn; s < samples; ++s) {
    Status budget = checkpoint.MaybeCheckpoint([&](SnapshotWriter& w) {
      w.U64(drawn);
      w.U32(static_cast<uint32_t>(hits.size()));
      for (uint64_t h : hits) {
        w.U64(h);
      }
      w.RngState(rng);
    });
    if (budget.ok()) {
      budget = ChargeWork(options.run_context);
    }
    if (budget.ok()) {
      budget = QREL_FAULT_HIT("datalog.padded.world");
    }
    std::set<Tuple> actual;
    if (budget.ok()) {
      World world = db.SampleWorld(&rng);
      WorldView view(db, world);
      StatusOr<std::set<Tuple>> evaluated =
          program.EvalPredicate(view, predicate, options.run_context);
      if (evaluated.ok()) {
        actual = std::move(evaluated).value();
      } else {
        budget = evaluated.status();  // the fixpoint tripped mid-world
      }
    }
    if (!budget.ok()) {
      // A prefix of completed worlds is a valid (smaller) sample for every
      // tuple at once, so truncation is sound on an envelope trip — never
      // on cancellation, and never on a non-budget failure (e.g. an
      // injected fault), which must surface as-is.
      if (options.allow_truncation && drawn > 0 &&
          IsBudgetStatusCode(budget.code()) &&
          budget.code() != StatusCode::kCancelled) {
        truncated = true;
        break;
      }
      return budget;
    }
    for (size_t i = 0; i < all_tuples.size(); ++i) {
      bool rd = rng.NextBernoulli(xi);
      if (!rd) {
        continue;
      }
      bool rc = rng.NextBernoulli(xi);
      bool psi_true =
          rc || actual.find(all_tuples[i]) != actual.end();
      if (psi_true) {
        ++hits[i];
      }
    }
    ++drawn;
  }
  if (drawn == 0) {
    return Status::InvalidArgument("padded estimator needs at least 1 sample");
  }

  double expected_error = 0.0;
  for (size_t i = 0; i < all_tuples.size(); ++i) {
    double x_bar =
        static_cast<double>(hits[i]) / static_cast<double>(drawn);
    double nu = (x_bar - xi * xi) / (xi - xi * xi);
    nu = std::clamp(nu, 0.0, 1.0);
    bool was_observed = observed->find(all_tuples[i]) != observed->end();
    expected_error += was_observed ? 1.0 - nu : nu;
  }

  ApproxResult result;
  result.samples = drawn;
  result.truncated = truncated;
  if (drawn > 0 &&
      drawn < PaddedSampleBound(options.xi, per_epsilon / 2.0, per_delta)) {
    result.achieved_epsilon =
        PaddedAchievedEpsilon(options.xi, drawn, per_delta) * tuple_count;
  }
  result.estimate = std::clamp(1.0 - expected_error / tuple_count, 0.0, 1.0);
  result.method =
      "Thm 5.12 padded estimator on Datalog predicate '" + predicate + "'";
  return result;
}

}  // namespace qrel
