// Fuzz target for the first-order formula parser: arbitrary bytes must
// either parse or come back as a typed error — never crash (in particular,
// deep nesting must hit the depth limit, not the process stack).

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "qrel/logic/ast.h"
#include "qrel/logic/parser.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string_view text(reinterpret_cast<const char*>(data), size);
  qrel::StatusOr<qrel::FormulaPtr> formula = qrel::ParseFormula(text);
  if (!formula.ok()) {
    return 0;
  }
  // Printed form must be a parse/print fixpoint.
  std::string printed = (*formula)->ToString();
  qrel::StatusOr<qrel::FormulaPtr> reparsed = qrel::ParseFormula(printed);
  if (!reparsed.ok() || (*reparsed)->ToString() != printed) {
    __builtin_trap();
  }
  return 0;
}
