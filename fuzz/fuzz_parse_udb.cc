// Fuzz target for the .udb text parser: arbitrary bytes must either parse
// or come back as a typed error — never crash, leak, or hang. Accepted
// inputs must round-trip through FormatUdb to a fixpoint.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "qrel/prob/text_format.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string_view text(reinterpret_cast<const char*>(data), size);
  qrel::StatusOr<qrel::UnreliableDatabase> database = qrel::ParseUdb(text);
  if (!database.ok()) {
    return 0;
  }
  // Round-trip invariant: format must be re-parseable and a fixpoint.
  std::string formatted = qrel::FormatUdb(*database);
  qrel::StatusOr<qrel::UnreliableDatabase> reparsed =
      qrel::ParseUdb(formatted);
  if (!reparsed.ok() || qrel::FormatUdb(*reparsed) != formatted) {
    __builtin_trap();
  }
  return 0;
}
