// Deterministic fallback driver for the fuzz harnesses when libFuzzer is
// unavailable (gcc has no -fsanitize=fuzzer). Replays every corpus file
// given on the command line, then runs a fixed-seed mutation loop over the
// corpus, feeding each variant to the harness's LLVMFuzzerTestOneInput.
// Same seed + same corpus => byte-identical input sequence, so this doubles
// as the CTest fuzz smoke target.
//
//   fuzz_parse_udb [--iters=N] [--seed=N] <corpus file or directory>...

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

// splitmix64: tiny, seedable, and good enough to steer byte mutations.
uint64_t NextRandom(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::vector<uint8_t> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<uint8_t>((std::istreambuf_iterator<char>(in)),
                              std::istreambuf_iterator<char>());
}

void CollectCorpus(const std::string& path,
                   std::vector<std::vector<uint8_t>>* corpus) {
  std::error_code ec;
  if (std::filesystem::is_directory(path, ec)) {
    std::vector<std::string> entries;
    for (const auto& entry : std::filesystem::directory_iterator(path, ec)) {
      if (entry.is_regular_file()) {
        entries.push_back(entry.path().string());
      }
    }
    // directory_iterator order is unspecified; sort for determinism.
    std::sort(entries.begin(), entries.end());
    for (const std::string& file : entries) {
      corpus->push_back(ReadFile(file));
    }
  } else {
    corpus->push_back(ReadFile(path));
  }
}

void Mutate(std::vector<uint8_t>* input, uint64_t* rng) {
  int rounds = 1 + static_cast<int>(NextRandom(rng) % 4);
  for (int r = 0; r < rounds; ++r) {
    uint64_t roll = NextRandom(rng);
    size_t size = input->size();
    switch (roll % 5) {
      case 0:  // flip a byte
        if (size > 0) {
          (*input)[NextRandom(rng) % size] ^=
              static_cast<uint8_t>(NextRandom(rng));
        }
        break;
      case 1:  // insert a random byte
        input->insert(input->begin() + (size ? NextRandom(rng) % size : 0),
                      static_cast<uint8_t>(NextRandom(rng)));
        break;
      case 2:  // erase a byte
        if (size > 0) {
          input->erase(input->begin() + NextRandom(rng) % size);
        }
        break;
      case 3: {  // duplicate a chunk (grows structure, e.g. repeated lines)
        if (size > 1) {
          size_t start = NextRandom(rng) % size;
          size_t len = 1 + NextRandom(rng) % (size - start);
          if (len > 256) len = 256;
          std::vector<uint8_t> chunk(input->begin() + start,
                                     input->begin() + start + len);
          input->insert(input->begin() + NextRandom(rng) % size,
                        chunk.begin(), chunk.end());
        }
        break;
      }
      default:  // truncate
        if (size > 0) {
          input->resize(NextRandom(rng) % size);
        }
        break;
    }
    if (input->size() > (1u << 18)) {  // keep iterations fast
      input->resize(1u << 18);
    }
  }
}

bool ParseUint64Flag(const char* arg, const char* name, uint64_t* out) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') {
    return false;
  }
  *out = std::strtoull(arg + len + 1, nullptr, 10);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t iterations = 10000;
  uint64_t seed = 1;
  std::vector<std::vector<uint8_t>> corpus;
  for (int i = 1; i < argc; ++i) {
    if (ParseUint64Flag(argv[i], "--iters", &iterations) ||
        ParseUint64Flag(argv[i], "--seed", &seed)) {
      continue;
    }
    CollectCorpus(argv[i], &corpus);
  }
  if (corpus.empty()) {
    corpus.push_back({});  // start from the empty input
  }

  for (const std::vector<uint8_t>& input : corpus) {
    LLVMFuzzerTestOneInput(input.data(), input.size());
  }

  uint64_t rng = seed;
  for (uint64_t i = 0; i < iterations; ++i) {
    std::vector<uint8_t> input = corpus[NextRandom(&rng) % corpus.size()];
    Mutate(&input, &rng);
    LLVMFuzzerTestOneInput(input.data(), input.size());
  }
  std::printf("replayed %zu corpus file(s), ran %llu mutated input(s): OK\n",
              corpus.size(), static_cast<unsigned long long>(iterations));
  return 0;
}
