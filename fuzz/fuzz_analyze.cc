// Fuzz target for the static analyzer and simplifier: any formula the
// parser accepts must analyze without crashing, and the simplifier must
// honour its contracts — idempotence, and never moving the query to a
// worse rung of the dispatch ladder (PlanRank). Safe-plan contract: when
// the classifier declares a query safe conjunctive, the extensional
// evaluator must accept it and agree bit-for-bit with exact world
// enumeration on a tiny deterministic database.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "qrel/lifted/extensional.h"
#include "qrel/logic/analyze.h"
#include "qrel/logic/classify.h"
#include "qrel/logic/parser.h"
#include "qrel/logic/safe_plan.h"
#include "qrel/logic/simplify.h"

namespace {

const qrel::Vocabulary& FuzzVocabulary() {
  static const qrel::Vocabulary* vocabulary = [] {
    auto* v = new qrel::Vocabulary();
    v->AddRelation("S", 1);
    v->AddRelation("T", 1);
    v->AddRelation("E", 2);
    return v;
  }();
  return *vocabulary;
}

// Universe {0, 1}; S = {0}, T = {1}, E = {(0, 1)}; three uncertain atoms.
const qrel::UnreliableDatabase& FuzzDatabase() {
  static const qrel::UnreliableDatabase* database = [] {
    auto vocabulary = std::make_shared<qrel::Vocabulary>();
    vocabulary->AddRelation("S", 1);
    vocabulary->AddRelation("T", 1);
    vocabulary->AddRelation("E", 2);
    qrel::Structure observed(vocabulary, 2);
    observed.AddFact(0, {0});
    observed.AddFact(1, {1});
    observed.AddFact(2, {0, 1});
    auto* db = new qrel::UnreliableDatabase(std::move(observed));
    db->SetErrorProbability(qrel::GroundAtom{0, {0}}, qrel::Rational(1, 3));
    db->SetErrorProbability(qrel::GroundAtom{1, {0}}, qrel::Rational(1, 4));
    db->SetErrorProbability(qrel::GroundAtom{2, {1, 0}},
                            qrel::Rational(1, 5));
    return db;
  }();
  return *database;
}

// Whether evaluating `formula` on FuzzDatabase() is both meaningful and
// cheap: every constant fits the 2-element universe, and the variable
// count keeps the n^depth recursion and the 2^u · n^k enumeration small.
bool CheaplyEvaluable(const qrel::FormulaPtr& formula) {
  std::set<std::string> variables;
  int quantifiers = 0;
  // Iterative walk; fuzz inputs can nest arbitrarily deep.
  std::vector<const qrel::Formula*> stack = {formula.get()};
  while (!stack.empty()) {
    const qrel::Formula* node = stack.back();
    stack.pop_back();
    for (const qrel::Term& term : node->args) {
      if (term.is_variable()) {
        variables.insert(term.variable);
      } else if (term.constant < 0 || term.constant >= 2) {
        return false;
      }
    }
    if (!node->bound_variable.empty()) {
      variables.insert(node->bound_variable);
      // Shadowing binders keep the name count low but still multiply the
      // n^depth enumeration: cap quantifier nodes, not just names.
      ++quantifiers;
    }
    if (variables.size() > 6 || quantifiers > 6) {
      return false;
    }
    for (const qrel::FormulaPtr& child : node->children) {
      stack.push_back(child.get());
    }
  }
  return true;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string_view text(reinterpret_cast<const char*>(data), size);
  qrel::Diagnostic syntax_error;
  qrel::StatusOr<qrel::FormulaPtr> formula =
      qrel::ParseFormula(text, &syntax_error);
  if (!formula.ok()) {
    // A rejected input must still yield a well-formed diagnostic.
    if (syntax_error.check_id != "syntax-error" ||
        syntax_error.message.empty()) {
      __builtin_trap();
    }
    return 0;
  }

  // Analysis must not crash, with or without a vocabulary.
  qrel::FormulaAnalysis unscoped = qrel::AnalyzeFormula(*formula, nullptr);
  qrel::FormulaAnalysis scoped =
      qrel::AnalyzeFormula(*formula, &FuzzVocabulary());
  if (unscoped.simplified == nullptr || scoped.simplified == nullptr) {
    __builtin_trap();
  }

  // Simplifier contract 1: the plan rank never gets worse.
  if (qrel::PlanRank(qrel::Classify(unscoped.simplified)) >
      qrel::PlanRank(qrel::Classify(*formula))) {
    __builtin_trap();
  }

  // Simplifier contract 2: simplification is idempotent.
  qrel::FormulaPtr again = qrel::SimplifyFormula(unscoped.simplified);
  if (again->ToString() != unscoped.simplified->ToString()) {
    __builtin_trap();
  }

  // Every diagnostic must render (exercises the JSON escaper too).
  for (const qrel::Diagnostic& diagnostic : scoped.diagnostics) {
    if (diagnostic.ToString().empty() || diagnostic.ToJson().empty()) {
      __builtin_trap();
    }
  }

  // Safe-plan contract: the analysis is internally consistent, its note
  // renders, and on a kSafeConjunctive verdict the extensional evaluator
  // reproduces exact world enumeration bit for bit.
  qrel::SafePlanAnalysis safety = qrel::AnalyzeSafePlan(*formula);
  if (safety.safe != (safety.applicable && safety.plan != nullptr)) {
    __builtin_trap();
  }
  if (safety.safe && safety.plan->ToString().empty()) {
    __builtin_trap();
  }
  if (qrel::Classify(*formula) == qrel::QueryClass::kSafeConjunctive) {
    if (!safety.safe) {
      __builtin_trap();  // classifier and analyzer disagree
    }
    if (!scoped.has_errors() && CheaplyEvaluable(*formula)) {
      qrel::StatusOr<qrel::ReliabilityReport> lifted =
          qrel::ExtensionalReliability(*formula, FuzzDatabase());
      if (!lifted.ok()) {
        __builtin_trap();  // a safe query the evaluator refused
      }
      qrel::StatusOr<qrel::ReliabilityReport> enumerated =
          qrel::ExactReliability(*formula, FuzzDatabase());
      if (!enumerated.ok() ||
          !(lifted->reliability == enumerated->reliability) ||
          !(lifted->expected_error == enumerated->expected_error)) {
        __builtin_trap();  // the polynomial rung changed the answer
      }
    }
  }
  return 0;
}
