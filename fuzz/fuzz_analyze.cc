// Fuzz target for the static analyzer and simplifier: any formula the
// parser accepts must analyze without crashing, and the simplifier must
// honour its contracts — idempotence, and never moving the query to a
// worse rung of the dispatch ladder (PlanRank).

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "qrel/logic/analyze.h"
#include "qrel/logic/classify.h"
#include "qrel/logic/parser.h"
#include "qrel/logic/simplify.h"

namespace {

const qrel::Vocabulary& FuzzVocabulary() {
  static const qrel::Vocabulary* vocabulary = [] {
    auto* v = new qrel::Vocabulary();
    v->AddRelation("S", 1);
    v->AddRelation("T", 1);
    v->AddRelation("E", 2);
    return v;
  }();
  return *vocabulary;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string_view text(reinterpret_cast<const char*>(data), size);
  qrel::Diagnostic syntax_error;
  qrel::StatusOr<qrel::FormulaPtr> formula =
      qrel::ParseFormula(text, &syntax_error);
  if (!formula.ok()) {
    // A rejected input must still yield a well-formed diagnostic.
    if (syntax_error.check_id != "syntax-error" ||
        syntax_error.message.empty()) {
      __builtin_trap();
    }
    return 0;
  }

  // Analysis must not crash, with or without a vocabulary.
  qrel::FormulaAnalysis unscoped = qrel::AnalyzeFormula(*formula, nullptr);
  qrel::FormulaAnalysis scoped =
      qrel::AnalyzeFormula(*formula, &FuzzVocabulary());
  if (unscoped.simplified == nullptr || scoped.simplified == nullptr) {
    __builtin_trap();
  }

  // Simplifier contract 1: the plan rank never gets worse.
  if (qrel::PlanRank(qrel::Classify(unscoped.simplified)) >
      qrel::PlanRank(qrel::Classify(*formula))) {
    __builtin_trap();
  }

  // Simplifier contract 2: simplification is idempotent.
  qrel::FormulaPtr again = qrel::SimplifyFormula(unscoped.simplified);
  if (again->ToString() != unscoped.simplified->ToString()) {
    __builtin_trap();
  }

  // Every diagnostic must render (exercises the JSON escaper too).
  for (const qrel::Diagnostic& diagnostic : scoped.diagnostics) {
    if (diagnostic.ToString().empty() || diagnostic.ToJson().empty()) {
      __builtin_trap();
    }
  }
  return 0;
}
