// Fuzz target for the wire layer: frame decoding plus request/response
// parsing. Arbitrary bytes must either decode or come back as a typed
// error — never crash, over-read, or consume more bytes than the buffer
// holds. Accepted payloads must satisfy the round-trip contracts the
// server and client rely on:
//
//  - a decoded frame re-frames (EncodeFrame) to something DecodeFrame
//    returns verbatim — framing loses nothing;
//  - a parsed request serializes to a payload that reparses to the same
//    serialization (SerializeRequest is a fixpoint), so a proxy or retry
//    layer can re-emit requests without drift;
//  - the same for responses, including the ERR line, the Retry-After
//    hint, and the ordered key=value fields.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "qrel/net/protocol.h"

namespace {

void CheckRequestFixpoint(std::string_view payload) {
  qrel::StatusOr<qrel::Request> parsed = qrel::ParseRequest(payload);
  if (!parsed.ok()) {
    return;
  }
  std::string wire = qrel::SerializeRequest(*parsed);
  qrel::StatusOr<qrel::Request> reparsed = qrel::ParseRequest(wire);
  // The serialized form of any accepted request must itself be accepted
  // and must serialize identically.
  if (!reparsed.ok() || qrel::SerializeRequest(*reparsed) != wire) {
    __builtin_trap();
  }
}

void CheckResponseFixpoint(std::string_view payload) {
  qrel::StatusOr<qrel::Response> parsed = qrel::ParseResponse(payload);
  if (!parsed.ok()) {
    return;
  }
  std::string wire = qrel::SerializeResponse(*parsed);
  qrel::StatusOr<qrel::Response> reparsed = qrel::ParseResponse(wire);
  if (!reparsed.ok() || qrel::SerializeResponse(*reparsed) != wire) {
    __builtin_trap();
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string_view buffer(reinterpret_cast<const char*>(data), size);

  size_t consumed = 0;
  std::string payload;
  qrel::Status status = qrel::DecodeFrame(buffer, &consumed, &payload);
  if (!status.ok()) {
    return 0;  // typed rejection: the stream would be closed
  }
  if (consumed == 0) {
    return 0;  // incomplete prefix: the reader would wait for more bytes
  }
  if (consumed > size || payload.size() > qrel::kMaxFramePayload) {
    __builtin_trap();  // over-consumed or over-sized: framing is broken
  }

  // Round-trip: re-framing the decoded payload must decode verbatim.
  std::string reframed = qrel::EncodeFrame(payload);
  size_t consumed2 = 0;
  std::string payload2;
  if (!qrel::DecodeFrame(reframed, &consumed2, &payload2).ok() ||
      consumed2 != reframed.size() || payload2 != payload) {
    __builtin_trap();
  }

  // The payload is wire-visible in both directions; both parsers must
  // hold their fixpoint contracts on whatever the frame carried.
  CheckRequestFixpoint(payload);
  CheckResponseFixpoint(payload);
  return 0;
}
