// Fuzz target for the snapshot container decoder: arbitrary bytes must
// either decode or come back as a typed error — never crash, read out of
// bounds, or silently accept corruption. Accepted inputs must re-encode
// byte-identically (the container encoding is canonical), and their
// payloads must be safely consumable through every SnapshotReader method.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "qrel/util/snapshot.h"

namespace {

// Drains a payload through each reader method in turn; every call must
// return cleanly (OK or typed error) on arbitrary bytes.
void ExercisePayloadReaders(const std::vector<uint8_t>& payload) {
  qrel::SnapshotReader reader(payload);
  uint8_t u8;
  uint32_t u32;
  uint64_t u64;
  int64_t i64;
  double d;
  std::string s;
  qrel::BigInt big;
  qrel::Rational rational;
  qrel::Rng rng(1);
  std::vector<int32_t> tuple;
  while (reader.remaining() > 0) {
    if (!reader.U8(&u8).ok() || !reader.U32(&u32).ok() ||
        !reader.U64(&u64).ok() || !reader.I64(&i64).ok() ||
        !reader.Double(&d).ok() || !reader.String(&s).ok() ||
        !reader.BigIntVal(&big).ok() || !reader.RationalVal(&rational).ok() ||
        !reader.RngState(&rng).ok() || !reader.TupleVal(&tuple).ok()) {
      break;
    }
  }
  (void)reader.ExpectEnd();
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  qrel::StatusOr<qrel::SnapshotData> decoded =
      qrel::DecodeSnapshot(data, size);
  if (!decoded.ok()) {
    return 0;
  }
  // Canonical-encoding invariant: a successfully decoded container
  // re-encodes to exactly the input bytes.
  std::vector<uint8_t> reencoded = qrel::EncodeSnapshot(*decoded);
  if (reencoded.size() != size ||
      !std::equal(reencoded.begin(), reencoded.end(), data)) {
    __builtin_trap();
  }
  ExercisePayloadReaders(decoded->payload);
  return 0;
}
