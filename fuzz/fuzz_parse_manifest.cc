// Fuzz target for the durable catalog manifest and the idempotency
// journal record (net/manifest.h). Arbitrary bytes must decode to a
// typed error or a valid object — never crash or accept corruption —
// and every accepted input must satisfy the canonical-encoding fixpoint:
// re-encoding reproduces the input bytes exactly. That fixpoint is what
// lets crash recovery trust a manifest that merely *decodes*: there is
// exactly one byte representation per logical manifest, so a decoded
// manifest carries no attacker- or corruption-controlled slack.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "qrel/net/manifest.h"
#include "qrel/util/snapshot.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  qrel::StatusOr<qrel::SnapshotData> container =
      qrel::DecodeSnapshot(data, size);
  if (!container.ok()) {
    return 0;
  }
  qrel::StatusOr<qrel::CatalogManifest> manifest =
      qrel::DecodeManifest(*container);
  if (manifest.ok()) {
    std::vector<uint8_t> reencoded =
        qrel::EncodeSnapshot(qrel::EncodeManifest(*manifest));
    if (reencoded.size() != size ||
        !std::equal(reencoded.begin(), reencoded.end(), data)) {
      __builtin_trap();
    }
  }
  qrel::StatusOr<qrel::IdempotencyRecord> record =
      qrel::DecodeIdempotencyRecord(*container);
  if (record.ok()) {
    std::vector<uint8_t> reencoded =
        qrel::EncodeSnapshot(qrel::EncodeIdempotencyRecord(*record));
    if (reencoded.size() != size ||
        !std::equal(reencoded.begin(), reencoded.end(), data)) {
      __builtin_trap();
    }
  }
  return 0;
}
