// Fuzz target for the .mfdb (metafinite database) text parser: arbitrary
// bytes must either parse or come back as a typed error — never crash.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "qrel/metafinite/text_format.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string_view text(reinterpret_cast<const char*>(data), size);
  qrel::StatusOr<qrel::UnreliableFunctionalDatabase> database =
      qrel::ParseMfdb(text);
  if (database.ok()) {
    // Formatting an accepted database must not crash.
    (void)qrel::FormatMfdb(*database);
  }
  return 0;
}
