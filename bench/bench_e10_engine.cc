// E10 — the engine crossover: exact vs approximate as uncertainty grows.
//
// The practical reading of the paper: exact reliability (Thm 4.2) costs
// 2^u; the approximations cost polynomial time with an ε that does not
// care about u. For one fixed conjunctive query we sweep the number of
// uncertain atoms u and time both paths. Expected shape: exact doubles per
// atom and overtakes the (flat) FPTRAS cost around u ≈ 15–20 at these
// parameters; the engine's automatic mode follows the cheaper side of the
// crossover.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "qrel/engine/engine.h"

namespace {

// Optimization sink: keeps results alive without the
// DoNotOptimize asm-constraint issues seen with older
// google-benchmark builds.
volatile double qrel_bench_sink = 0.0;

constexpr char kQuery[] = "exists x y . E(x, y) & S(x) & S(y)";

void BM_E10_ExactPath(benchmark::State& state) {
  int uncertain = static_cast<int>(state.range(0));
  qrel::ReliabilityEngine engine(
      qrel_bench::GraphDatabase(16, uncertain, /*seed=*/55));
  qrel::EngineOptions options;
  options.force_exact = true;
  double r = 0;
  for (auto _ : state) {
    r = engine.Run(kQuery, options)->reliability;
    qrel_bench_sink = static_cast<double>(r);
  }
  state.counters["u"] =
      static_cast<double>(engine.database().UncertainEntries().size());
  state.counters["R"] = r;
}
BENCHMARK(BM_E10_ExactPath)->DenseRange(4, 18, 2)
    ->Unit(benchmark::kMillisecond);

void BM_E10_ApproximatePath(benchmark::State& state) {
  int uncertain = static_cast<int>(state.range(0));
  qrel::ReliabilityEngine engine(
      qrel_bench::GraphDatabase(16, uncertain, /*seed=*/55));
  qrel::EngineOptions options;
  options.force_approximate = true;
  options.epsilon = 0.03;
  options.delta = 0.05;
  options.seed = 77;
  double r = 0;
  for (auto _ : state) {
    r = engine.Run(kQuery, options)->reliability;
    qrel_bench_sink = static_cast<double>(r);
  }
  state.counters["u"] =
      static_cast<double>(engine.database().UncertainEntries().size());
  state.counters["R"] = r;
}
BENCHMARK(BM_E10_ApproximatePath)->DenseRange(4, 18, 2)
    ->Unit(benchmark::kMillisecond);

void BM_E10_AutomaticMode(benchmark::State& state) {
  int uncertain = static_cast<int>(state.range(0));
  qrel::ReliabilityEngine engine(
      qrel_bench::GraphDatabase(16, uncertain, /*seed=*/55));
  qrel::EngineOptions options;
  options.epsilon = 0.03;
  options.delta = 0.05;
  options.seed = 77;
  options.max_exact_worlds = uint64_t{1} << 12;
  bool exact = false;
  for (auto _ : state) {
    qrel::StatusOr<qrel::EngineReport> report = engine.Run(kQuery, options);
    exact = report->is_exact;
    benchmark::DoNotOptimize(report);
  }
  state.counters["u"] =
      static_cast<double>(engine.database().UncertainEntries().size());
  state.counters["chose_exact"] = exact ? 1 : 0;
}
BENCHMARK(BM_E10_AutomaticMode)->DenseRange(4, 18, 2)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
