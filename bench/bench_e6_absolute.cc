// E6 — Corollary 5.5 and Theorem 5.12: absolute-error reliability
// approximation across query classes, plus the ξ ablation.
//
// Claim: |R̂ − R_ψ| ≤ ε with probability 1−δ — for existential/universal
// queries via the FPTRAS (Cor 5.5) and for arbitrary first-order queries
// via the padded estimator (Thm 5.12). Expected shape: measured absolute
// error ≤ ε on every class; the padded estimator's accuracy at a fixed
// budget is best for moderate ξ (the 1/ξ factor in the sample bound) and
// degrades toward both ends of (0, 1/2).

#include <cmath>

#include <benchmark/benchmark.h>

#include <memory>

#include "qrel/core/approx.h"
#include "qrel/core/reliability.h"
#include "qrel/logic/parser.h"

namespace {

// Optimization sink: keeps results alive without the
// DoNotOptimize asm-constraint issues seen with older
// google-benchmark builds.
volatile double qrel_bench_sink = 0.0;

struct NamedQuery {
  const char* label;
  const char* text;
};

constexpr NamedQuery kQueries[] = {
    {"existential", "exists x . S(x) & E(x, x)"},
    {"universal", "forall x . S(x) | !E(x, x)"},
    {"general", "forall x . S(x) -> (exists y . E(x, y))"},
};

// A hand-built database on which none of the three queries is trivially
// certain: a 6-ring with labels S = {0, 3}, an uncertain self-loop at 2,
// uncertain labels and one uncertain ring edge.
qrel::UnreliableDatabase Db() {
  auto vocabulary = std::make_shared<qrel::Vocabulary>();
  int e = vocabulary->AddRelation("E", 2);
  int s = vocabulary->AddRelation("S", 1);
  qrel::Structure observed(vocabulary, 6);
  for (int i = 0; i < 6; ++i) {
    observed.AddFact(e, {static_cast<qrel::Element>(i),
                         static_cast<qrel::Element>((i + 1) % 6)});
  }
  observed.AddFact(s, {0});
  observed.AddFact(s, {3});
  qrel::UnreliableDatabase db(std::move(observed));
  db.SetErrorProbability(qrel::GroundAtom{e, {2, 2}}, qrel::Rational(1, 3));
  db.SetErrorProbability(qrel::GroundAtom{e, {3, 4}}, qrel::Rational(1, 4));
  db.SetErrorProbability(qrel::GroundAtom{s, {0}}, qrel::Rational(1, 5));
  db.SetErrorProbability(qrel::GroundAtom{s, {2}}, qrel::Rational(1, 2));
  db.SetErrorProbability(qrel::GroundAtom{s, {4}}, qrel::Rational(2, 5));
  return db;
}

void BM_E6_Cor55(benchmark::State& state) {
  const NamedQuery& nq = kQueries[state.range(0)];
  qrel::UnreliableDatabase db = Db();
  qrel::FormulaPtr query = *qrel::ParseFormula(nq.text);
  double exact = qrel::ExactReliability(query, db)->reliability.ToDouble();
  qrel::ApproxOptions options;
  options.epsilon = 0.03;
  options.delta = 0.05;
  options.seed = 3;
  double estimate = 0;
  bool supported = true;
  for (auto _ : state) {
    qrel::StatusOr<qrel::ApproxResult> result =
        qrel::ReliabilityAbsoluteApprox(query, db, options);
    supported = result.ok();
    if (!supported) {
      state.SkipWithError("query class unsupported by Cor 5.5");
      break;
    }
    estimate = result->estimate;
    qrel_bench_sink = static_cast<double>(estimate);
  }
  if (supported) {
    state.counters["abs_err"] = std::fabs(estimate - exact);
    state.counters["eps"] = options.epsilon;
  }
  state.SetLabel(nq.label);
}
BENCHMARK(BM_E6_Cor55)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_E6_Thm512(benchmark::State& state) {
  const NamedQuery& nq = kQueries[state.range(0)];
  qrel::UnreliableDatabase db = Db();
  qrel::FormulaPtr query = *qrel::ParseFormula(nq.text);
  double exact = qrel::ExactReliability(query, db)->reliability.ToDouble();
  qrel::ApproxOptions options;
  options.epsilon = 0.05;
  options.delta = 0.05;
  options.seed = 5;
  options.fixed_samples = 100000;
  double estimate = 0;
  for (auto _ : state) {
    estimate = qrel::PaddedReliabilityApprox(query, db, options)->estimate;
    qrel_bench_sink = static_cast<double>(estimate);
  }
  state.counters["abs_err"] = std::fabs(estimate - exact);
  state.counters["eps"] = options.epsilon;
  state.SetLabel(nq.label);
}
BENCHMARK(BM_E6_Thm512)->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMillisecond);

// ξ ablation at fixed sample budget: accuracy across ξ ∈ (0, 1/2).
void BM_E6_XiAblation(benchmark::State& state) {
  double xi = static_cast<double>(state.range(0)) / 100.0;
  qrel::UnreliableDatabase db = Db();
  qrel::FormulaPtr query =
      *qrel::ParseFormula("forall x . S(x) -> (exists y . E(x, y))");
  double exact = qrel::ExactReliability(query, db)->reliability.ToDouble();
  qrel::ApproxOptions options;
  options.xi = xi;
  options.seed = 9;
  options.fixed_samples = 100000;
  double estimate = 0;
  for (auto _ : state) {
    estimate = qrel::PaddedReliabilityApprox(query, db, options)->estimate;
    qrel_bench_sink = static_cast<double>(estimate);
  }
  state.counters["xi"] = xi;
  state.counters["abs_err"] = std::fabs(estimate - exact);
  // The theorem's derived bound at this budget: ε with t = 9/(2ξε²)ln(1/δ).
  state.counters["eps_at_budget"] =
      std::sqrt(9.0 * std::log(1.0 / 0.05) /
                (2.0 * xi * 100000.0)) * 2.0;
}
BENCHMARK(BM_E6_XiAblation)->Arg(5)->Arg(15)->Arg(25)->Arg(35)->Arg(45)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
