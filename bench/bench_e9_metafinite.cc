// E9 — Theorem 6.2: reliability on metafinite (functional) databases.
//
// Claims: (i) quantifier-free terms are polynomial — the per-row local
// algorithm scales with n while exact world enumeration scales with the
// product of outcome counts; (ii) first-order (aggregate) terms are exact
// by enumeration and approximable by Monte Carlo.
//
// Expected shape: QF-poly ≈ linear in n at fixed per-row uncertainty;
// exact enumeration ≈ 2^u; MC flat in u at a fixed sample budget with
// small absolute error.

#include <cmath>
#include <memory>

#include <benchmark/benchmark.h>

#include "qrel/metafinite/reliability.h"

namespace {

// Optimization sink: keeps results alive without the
// DoNotOptimize asm-constraint issues seen with older
// google-benchmark builds.
volatile double qrel_bench_sink = 0.0;

// n-row payroll with every 2nd salary a two-point distribution.
qrel::UnreliableFunctionalDatabase Payroll(int n, int uncertain) {
  auto vocabulary = std::make_shared<qrel::FunctionalVocabulary>();
  int salary = vocabulary->AddFunction("salary", 1);
  qrel::FunctionalStructure observed(vocabulary, n);
  for (int i = 0; i < n; ++i) {
    observed.SetValue(salary, {i}, qrel::Rational(3000 + 137 * i));
  }
  qrel::UnreliableFunctionalDatabase db(std::move(observed));
  for (int i = 0; i < uncertain && i < n; ++i) {
    qrel::ValueDistribution distribution;
    distribution.outcomes.push_back(
        {qrel::Rational(3000 + 137 * i), qrel::Rational(4, 5)});
    distribution.outcomes.push_back(
        {qrel::Rational(3000 + 137 * i + 5000), qrel::Rational(1, 5)});
    db.SetDistribution(qrel::FunctionEntry{salary, {i}},
                       std::move(distribution))
        .value();
  }
  return db;
}

const qrel::MTermPtr& QfTerm() {
  // salary(x) > 4000, per row.
  static const qrel::MTermPtr term = qrel::MLess(
      qrel::MConst(qrel::Rational(4000)),
      qrel::MApply("salary", {qrel::Term::Var("x")}));
  return term;
}

const qrel::MTermPtr& SumTerm() {
  static const qrel::MTermPtr term =
      qrel::MSum("y", qrel::MApply("salary", {qrel::Term::Var("y")}));
  return term;
}

void BM_E9_QuantifierFreePoly(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  // Uncertainty on every second row: u grows with n, the QF algorithm
  // only ever sees one entry per row.
  qrel::UnreliableFunctionalDatabase db = Payroll(n, n / 2);
  for (auto _ : state) {
    qrel::StatusOr<qrel::FunctionalReliabilityReport> report =
        qrel::QuantifierFreeFunctionalReliability(QfTerm(), db);
    benchmark::DoNotOptimize(report);
  }
  state.counters["n"] = n;
  state.counters["u"] = n / 2;
  state.SetComplexityN(n);
}
BENCHMARK(BM_E9_QuantifierFreePoly)->RangeMultiplier(2)->Range(8, 256)
    ->Complexity(benchmark::oN);

void BM_E9_ExactAggregateEnumeration(benchmark::State& state) {
  int uncertain = static_cast<int>(state.range(0));
  qrel::UnreliableFunctionalDatabase db = Payroll(24, uncertain);
  double r = 0;
  for (auto _ : state) {
    qrel::StatusOr<qrel::FunctionalReliabilityReport> report =
        qrel::ExactFunctionalReliability(SumTerm(), db);
    benchmark::DoNotOptimize(report);
    r = report->reliability.ToDouble();
  }
  state.counters["u"] = uncertain;
  state.counters["worlds"] = std::pow(2.0, uncertain);
  state.counters["R"] = r;
}
BENCHMARK(BM_E9_ExactAggregateEnumeration)->DenseRange(2, 14, 2)
    ->Unit(benchmark::kMillisecond);

void BM_E9_MonteCarloAggregate(benchmark::State& state) {
  int uncertain = static_cast<int>(state.range(0));
  qrel::UnreliableFunctionalDatabase db = Payroll(24, uncertain);
  double exact =
      qrel::ExactFunctionalReliability(SumTerm(), db)->reliability.ToDouble();
  double estimate = 0;
  for (auto _ : state) {
    estimate =
        qrel::McFunctionalReliability(SumTerm(), db, 5000, 3)->estimate;
    qrel_bench_sink = static_cast<double>(estimate);
  }
  state.counters["u"] = uncertain;
  state.counters["abs_err"] = std::fabs(estimate - exact);
}
BENCHMARK(BM_E9_MonteCarloAggregate)->DenseRange(2, 14, 4)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
