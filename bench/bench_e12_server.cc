// E12 — serving-layer behavior under load: an in-process load generator
// driving QrelServer::Handle (the same code path the TCP layer uses)
// through three scenarios:
//
//   steady    — mixed cacheable/unique/EXPLAIN traffic at a load the
//               queue absorbs: nothing sheds, the cache replays repeats,
//               and we report qps and p50/p99 latency.
//   stampede  — N threads issue the identical expensive query at once:
//               single-flight dedup must collapse them to one compute.
//   overload  — one worker, a tiny queue, and a burst of unique slow
//               queries: the excess sheds with typed UNAVAILABLE +
//               Retry-After, HEALTH stays responsive throughout, and the
//               server drains to idle afterwards.
//   reload_churn — steady traffic against one catalog database while an
//               admin thread alternates RELOAD between two content-
//               distinct versions: every OK answer's db_fingerprint must
//               map to that exact content's answer (version pinning), no
//               reload may fail, and no request may observe a mix.
//
// Unlike the E1–E11 microbenchmarks this is a scenario harness, not a
// google-benchmark binary: each scenario asserts its robustness
// invariants and any violation exits nonzero, so CI can run it as a
// smoke test (--smoke shrinks the workload). --json[=PATH] writes the
// metrics to BENCH_e12_server.json (or PATH) for trend tracking, and
// --baseline=PATH replays a committed report and fails on invariant
// regressions (lost scenarios, shrunk workloads, new untyped errors or
// pinning mismatches) — deliberately not on latency, which CI machines
// cannot compare meaningfully.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "qrel/net/protocol.h"
#include "qrel/net/server.h"
#include "qrel/prob/text_format.h"

namespace {

using qrel::Request;
using qrel::RequestVerb;
using qrel::Response;
using qrel::ServerOptions;
using qrel::ServerStatsSnapshot;
using qrel::StatusCode;

using Clock = std::chrono::steady_clock;

int g_failures = 0;

void Check(bool condition, const std::string& message) {
  if (!condition) {
    ++g_failures;
    std::fprintf(stderr, "INVARIANT VIOLATED: %s\n", message.c_str());
  }
}

// A ring on n elements where *every* edge is uncertain (err=1/4) and the
// S column mixes certain facts with uncertain absences. No query over E
// has a certain witness, so a forced-approximate request really runs its
// full Karp-Luby sample count — the load generator controls request
// duration through fixed_samples instead of short-circuiting on a
// "certainly true" grounding. With n=12 that is 20 uncertain atoms: 2^20
// worlds, comfortably past the engine's exact ceiling, so unforced
// requests approximate too.
qrel::ReliabilityEngine BenchEngine() {
  const int n = 12;
  std::string udb = "universe " + std::to_string(n) +
                    "\nrelation E 2\nrelation S 1\n";
  for (int i = 0; i < n; ++i) {
    udb += "fact E " + std::to_string(i) + " " +
           std::to_string((i + 1) % n) + " err=1/4\n";
    if (i % 3 == 0) {
      udb += "fact S " + std::to_string(i) + "\n";
    } else {
      udb += "absent S " + std::to_string(i) + " err=1/5\n";
    }
  }
  qrel::StatusOr<qrel::UnreliableDatabase> database = qrel::ParseUdb(udb);
  if (!database.ok()) {
    std::fprintf(stderr, "bench database: %s\n",
                 database.status().ToString().c_str());
    std::exit(2);
  }
  return qrel::ReliabilityEngine(std::move(database).value());
}

Request QueryRequest(const std::string& query) {
  Request request;
  request.verb = RequestVerb::kQuery;
  request.query = query;
  return request;
}

// A request that samples instead of enumerating, with a per-caller seed so
// distinct seeds are distinct cache keys (and equal seeds collide).
Request SampledRequest(const std::string& query, uint64_t seed,
                       uint64_t samples) {
  Request request = QueryRequest(query);
  request.options.force_approximate = true;
  request.options.fixed_samples = samples;
  request.options.seed = seed;
  return request;
}

struct ScenarioMetrics {
  std::string name;
  uint64_t requests = 0;
  uint64_t ok = 0;
  uint64_t shed = 0;
  uint64_t other_errors = 0;
  double elapsed_s = 0.0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t single_flight_shared = 0;
  uint64_t reloads = 0;      // reload_churn only
  uint64_t mismatches = 0;   // answers whose fingerprint→value pin broke
};

double PercentileMs(std::vector<double>* latencies_ms, double q) {
  if (latencies_ms->empty()) {
    return 0.0;
  }
  std::sort(latencies_ms->begin(), latencies_ms->end());
  size_t index = static_cast<size_t>(q * static_cast<double>(
                                             latencies_ms->size() - 1));
  return (*latencies_ms)[index];
}

// Runs `per_thread` requests on each of `threads` threads, pulling the
// i-th request from `make_request(thread, i)`; records latencies and
// typed outcome counts into `metrics`.
void RunClients(qrel::QrelServer* server, int threads, int per_thread,
                const std::function<Request(int, int)>& make_request,
                ScenarioMetrics* metrics) {
  std::vector<std::vector<double>> latencies(
      static_cast<size_t>(threads));
  std::atomic<uint64_t> ok{0};
  std::atomic<uint64_t> shed{0};
  std::atomic<uint64_t> other{0};
  Clock::time_point start = Clock::now();
  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      for (int i = 0; i < per_thread; ++i) {
        Request request = make_request(t, i);
        Clock::time_point begin = Clock::now();
        Response response = server->Handle(request);
        double ms = std::chrono::duration<double, std::milli>(
                        Clock::now() - begin)
                        .count();
        latencies[static_cast<size_t>(t)].push_back(ms);
        if (response.ok()) {
          ok.fetch_add(1);
        } else if (response.status.code() == StatusCode::kUnavailable) {
          shed.fetch_add(1);
          Check(response.retry_after_ms.has_value(),
                "a shed response must carry a Retry-After hint");
        } else {
          other.fetch_add(1);
          // Whatever went wrong must be a *typed* protocol error.
          Check(response.status.code() != StatusCode::kOk,
                "an error response must carry a nonzero status code");
        }
      }
    });
  }
  for (std::thread& t : pool) {
    t.join();
  }
  metrics->elapsed_s =
      std::chrono::duration<double>(Clock::now() - start).count();
  std::vector<double> all;
  for (const std::vector<double>& per : latencies) {
    all.insert(all.end(), per.begin(), per.end());
  }
  metrics->requests = all.size();
  metrics->ok = ok.load();
  metrics->shed = shed.load();
  metrics->other_errors = other.load();
  metrics->qps = metrics->elapsed_s > 0.0
                     ? static_cast<double>(all.size()) / metrics->elapsed_s
                     : 0.0;
  metrics->p50_ms = PercentileMs(&all, 0.50);
  metrics->p99_ms = PercentileMs(&all, 0.99);
}

// Steady state: a queue deep enough for the offered load, traffic that is
// 50% repeats of two cacheable queries, 25% unique sampled queries, 25%
// EXPLAIN. Nothing may shed and the cache must be doing real work.
ScenarioMetrics RunSteady(bool smoke) {
  ScenarioMetrics metrics;
  metrics.name = "steady";
  ServerOptions options;
  options.workers = 2;
  options.queue_capacity = 256;
  options.work_quota = uint64_t{1} << 32;
  qrel::QrelServer server(BenchEngine(), options);

  const int threads = 4;
  const int per_thread = smoke ? 15 : 100;
  const uint64_t samples = smoke ? 2000 : 20000;
  RunClients(
      &server, threads, per_thread,
      [&](int t, int i) -> Request {
        int kind = (t + i) % 4;
        if (kind == 0) {
          return QueryRequest("exists x y . E(x,y) & S(y)");
        }
        if (kind == 1) {
          return QueryRequest("exists x . S(x) & !E(x,x)");
        }
        if (kind == 2) {
          return SampledRequest(
              "exists x y . E(x,y) & S(y)",
              /*seed=*/static_cast<uint64_t>(t) * 1000 +
                  static_cast<uint64_t>(i),
              samples);
        }
        Request explain = QueryRequest("exists x y . E(x,y) & S(y)");
        explain.verb = RequestVerb::kExplain;
        return explain;
      },
      &metrics);

  ServerStatsSnapshot stats = server.stats_snapshot();
  metrics.cache_hits = stats.cache_hits;
  metrics.cache_misses = stats.cache_misses;
  metrics.single_flight_shared = stats.cache_shared;
  Check(metrics.ok == metrics.requests,
        "steady: every request must succeed (got " +
            std::to_string(metrics.ok) + "/" +
            std::to_string(metrics.requests) + ")");
  Check(stats.shed_queue_full + stats.shed_quota + stats.shed_draining == 0,
        "steady: nothing may shed at this load");
  Check(stats.cache_hits > 0, "steady: repeats must hit the cache");
  server.Shutdown();
  return metrics;
}

// Stampede: every thread issues the *identical* expensive query at once.
// Single-flight must collapse the burst into one compute; everyone gets
// the leader's answer.
ScenarioMetrics RunStampede(bool smoke) {
  ScenarioMetrics metrics;
  metrics.name = "stampede";
  ServerOptions options;
  options.workers = 2;
  options.queue_capacity = 64;
  options.default_max_work = uint64_t{1} << 26;
  options.max_request_work = uint64_t{1} << 26;
  options.work_quota = uint64_t{1} << 32;
  qrel::QrelServer server(BenchEngine(), options);

  const int threads = 8;
  const uint64_t samples = smoke ? 50000 : 400000;
  Request hot = SampledRequest("exists x y . E(x,y) & S(y)", /*seed=*/7,
                               samples);
  RunClients(
      &server, threads, /*per_thread=*/1,
      [&](int, int) { return hot; }, &metrics);

  ServerStatsSnapshot stats = server.stats_snapshot();
  metrics.cache_hits = stats.cache_hits;
  metrics.cache_misses = stats.cache_misses;
  metrics.single_flight_shared = stats.cache_shared;
  Check(metrics.ok == metrics.requests, "stampede: every caller must get "
                                        "the leader's answer");
  Check(stats.cache_misses == 1,
        "stampede: single-flight must collapse to exactly one compute "
        "(got " + std::to_string(stats.cache_misses) + " misses)");
  Check(stats.cache_hits + stats.cache_shared ==
            static_cast<uint64_t>(threads - 1),
        "stampede: every follower must be served from the flight or the "
        "store");
  server.Shutdown();
  return metrics;
}

// Overload: one worker, a 2-slot queue, and a burst of unique slow
// queries. The excess must shed typed and O(1); the server must stay
// responsive to HEALTH while saturated and be idle once the burst ends.
ScenarioMetrics RunOverload(bool smoke) {
  ScenarioMetrics metrics;
  metrics.name = "overload";
  ServerOptions options;
  options.workers = 1;
  options.queue_capacity = 2;
  options.default_max_work = uint64_t{1} << 26;
  options.max_request_work = uint64_t{1} << 26;
  options.work_quota = uint64_t{1} << 32;
  qrel::QrelServer server(BenchEngine(), options);

  const int threads = 8;
  const int per_thread = smoke ? 2 : 6;
  const uint64_t samples = smoke ? 100000 : 400000;
  std::atomic<bool> burst_done{false};
  std::atomic<uint64_t> health_ok{0};
  std::thread prober([&] {
    // HEALTH must answer promptly no matter how saturated the queue is.
    while (!burst_done.load()) {
      Request health;
      health.verb = RequestVerb::kHealth;
      Response response = server.Handle(health);
      if (response.ok()) {
        health_ok.fetch_add(1);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });
  RunClients(
      &server, threads, per_thread,
      [&](int t, int i) {
        return SampledRequest(
            "exists x y . E(x,y) & S(y)",
            /*seed=*/9000 + static_cast<uint64_t>(t) * 100 +
                static_cast<uint64_t>(i),
            samples);
      },
      &metrics);
  burst_done.store(true);
  prober.join();

  ServerStatsSnapshot stats = server.stats_snapshot();
  metrics.cache_hits = stats.cache_hits;
  metrics.cache_misses = stats.cache_misses;
  metrics.single_flight_shared = stats.cache_shared;
  Check(metrics.shed > 0, "overload: an oversubscribed 2-slot queue must "
                          "shed something");
  Check(metrics.shed == stats.shed_queue_full + stats.shed_quota,
        "overload: every shed must be accounted to a typed cause");
  Check(metrics.ok + metrics.shed == metrics.requests,
        "overload: every request ends OK or typed-shed, nothing vanishes");
  Check(health_ok.load() > 0,
        "overload: HEALTH must stay responsive under saturation");
  server.Drain();
  Check(server.inflight() == 0 && server.queue_depth() == 0,
        "overload: the server must drain to idle after the burst");
  server.Shutdown();
  return metrics;
}

// Reload churn: traffic hammers one catalog database while an admin
// thread alternates its backing file between two content-distinct
// versions and RELOADs through the same admin plane an operator uses.
// The catalog's pinning contract makes this safe: the scenario first
// learns each version's (fingerprint → exact answer) by probing it in
// isolation, then asserts every answer produced under churn matches the
// learned value for the fingerprint it reports.
ScenarioMetrics RunReloadChurn(bool smoke) {
  ScenarioMetrics metrics;
  metrics.name = "reload_churn";
  ServerOptions options;
  options.workers = 2;
  options.queue_capacity = 256;
  options.work_quota = uint64_t{1} << 32;
  qrel::QrelServer server(options);

  // Two tiny exact-regime databases whose only difference is the error
  // probability of the one E edge: "exists x y . E(x,y) & S(x)" answers
  // 3/4 on A and 1/2 on B, so a cross-version mix is always visible.
  const char* kContentA =
      "universe 3\nrelation E 2\nrelation S 1\n"
      "fact E 0 1 err=1/4\nfact S 0\nabsent S 1 err=1/3\n";
  const char* kContentB =
      "universe 3\nrelation E 2\nrelation S 1\n"
      "fact E 0 1 err=1/2\nfact S 0\nabsent S 1 err=1/3\n";
  const char* tmpdir = std::getenv("TMPDIR");
  std::string path = std::string(tmpdir != nullptr ? tmpdir : "/tmp") +
                     "/qrel_bench_churn.udb";
  auto write_file = [&](const char* text) {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    Check(f != nullptr, "churn: cannot write " + path);
    if (f != nullptr) {
      std::fputs(text, f);
      std::fclose(f);
    }
  };
  auto admin = [&](RequestVerb verb) {
    Request request;
    request.verb = verb;
    request.target = "churn";
    if (verb == RequestVerb::kAttach) {
      request.path = path;
    }
    return server.Handle(request);
  };

  write_file(kContentA);
  Check(admin(RequestVerb::kAttach).ok(), "churn: ATTACH must succeed");

  Request probe = QueryRequest("exists x y . E(x,y) & S(x)");
  probe.options.db = "churn";

  // Calibration: one version at a time, learn fingerprint → answer.
  std::map<std::string, std::string> expected;
  auto learn = [&] {
    Response response = server.Handle(probe);
    Check(response.ok(), "churn: calibration probe must succeed");
    expected[response.Field("db_fingerprint").value_or("")] =
        response.Field("exact_value").value_or("");
  };
  learn();
  write_file(kContentB);
  Response swapped = admin(RequestVerb::kReload);
  Check(swapped.ok() && swapped.Field("changed").value_or("") == "1",
        "churn: the calibration reload must swap content");
  learn();
  Check(expected.size() == 2,
        "churn: the two versions must fingerprint differently");
  Check(expected.begin()->second != expected.rbegin()->second,
        "churn: the two versions must answer differently");

  const int rounds = smoke ? 10 : 40;
  const int threads = 4;
  const uint64_t min_per_thread = smoke ? 10 : 50;
  std::atomic<bool> churn_done{false};
  std::atomic<uint64_t> ok{0};
  std::atomic<uint64_t> errors{0};
  std::atomic<uint64_t> mismatches{0};
  std::vector<std::vector<double>> latencies(
      static_cast<size_t>(threads));
  Clock::time_point start = Clock::now();

  std::vector<std::thread> pool;
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      uint64_t i = 0;
      // Keep querying for the whole churn window (bounded hard so a
      // wedged churn thread cannot spin us forever).
      while ((i < min_per_thread || !churn_done.load()) && i < 200000) {
        Request request = probe;
        request.options.seed = static_cast<uint64_t>(t) * 131 + (i % 8);
        Clock::time_point begin = Clock::now();
        Response response = server.Handle(request);
        latencies[static_cast<size_t>(t)].push_back(
            std::chrono::duration<double, std::milli>(Clock::now() - begin)
                .count());
        if (!response.ok()) {
          errors.fetch_add(1);
        } else {
          ok.fetch_add(1);
          auto it =
              expected.find(response.Field("db_fingerprint").value_or(""));
          if (it == expected.end() ||
              it->second != response.Field("exact_value").value_or("")) {
            mismatches.fetch_add(1);
          }
        }
        ++i;
      }
    });
  }
  std::thread churn([&] {
    for (int r = 0; r < rounds; ++r) {
      write_file(r % 2 == 0 ? kContentA : kContentB);
      Response response = admin(RequestVerb::kReload);
      Check(response.ok(), "churn: a clean reload must never fail");
      Check(response.Field("changed").value_or("") == "1",
            "churn: every alternating reload must change content");
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    churn_done.store(true);
  });
  churn.join();
  for (std::thread& t : pool) {
    t.join();
  }
  metrics.elapsed_s =
      std::chrono::duration<double>(Clock::now() - start).count();

  std::vector<double> all;
  for (const std::vector<double>& per : latencies) {
    all.insert(all.end(), per.begin(), per.end());
  }
  metrics.requests = all.size();
  metrics.ok = ok.load();
  metrics.other_errors = errors.load();
  metrics.mismatches = mismatches.load();
  metrics.qps = metrics.elapsed_s > 0.0
                    ? static_cast<double>(all.size()) / metrics.elapsed_s
                    : 0.0;
  metrics.p50_ms = PercentileMs(&all, 0.50);
  metrics.p99_ms = PercentileMs(&all, 0.99);

  ServerStatsSnapshot stats = server.stats_snapshot();
  metrics.reloads = stats.reloads;
  metrics.cache_hits = stats.cache_hits;
  metrics.cache_misses = stats.cache_misses;
  metrics.single_flight_shared = stats.cache_shared;
  Check(metrics.mismatches == 0,
        "churn: every answer must match its reported fingerprint's "
        "content (got " + std::to_string(metrics.mismatches) +
        " mismatches)");
  Check(metrics.ok == metrics.requests,
        "churn: an atomic reload must never fail a request");
  Check(stats.reload_failures == 0, "churn: no reload may fail");
  Check(metrics.reloads == static_cast<uint64_t>(rounds) + 1,
        "churn: every requested reload must be accounted");
  server.Shutdown();
  std::remove(path.c_str());
  return metrics;
}

void PrintHuman(const ScenarioMetrics& m) {
  std::printf(
      "%-9s: %5llu req in %6.2fs  (%7.1f qps)  p50 %7.2fms  p99 %7.2fms  "
      "ok %llu  shed %llu  cache %llu/%llu (+%llu shared)\n",
      m.name.c_str(), static_cast<unsigned long long>(m.requests),
      m.elapsed_s, m.qps, m.p50_ms, m.p99_ms,
      static_cast<unsigned long long>(m.ok),
      static_cast<unsigned long long>(m.shed),
      static_cast<unsigned long long>(m.cache_hits),
      static_cast<unsigned long long>(m.cache_misses),
      static_cast<unsigned long long>(m.single_flight_shared));
}

void AppendJson(std::string* out, const ScenarioMetrics& m, bool last) {
  char buffer[512];
  std::snprintf(
      buffer, sizeof(buffer),
      "    {\"name\": \"%s\", \"requests\": %llu, \"ok\": %llu, "
      "\"shed\": %llu, \"other_errors\": %llu, \"elapsed_s\": %.4f, "
      "\"qps\": %.2f, \"p50_ms\": %.3f, \"p99_ms\": %.3f, "
      "\"cache_hits\": %llu, \"cache_misses\": %llu, "
      "\"single_flight_shared\": %llu, \"reloads\": %llu, "
      "\"mismatches\": %llu}%s\n",
      m.name.c_str(), static_cast<unsigned long long>(m.requests),
      static_cast<unsigned long long>(m.ok),
      static_cast<unsigned long long>(m.shed),
      static_cast<unsigned long long>(m.other_errors), m.elapsed_s, m.qps,
      m.p50_ms, m.p99_ms, static_cast<unsigned long long>(m.cache_hits),
      static_cast<unsigned long long>(m.cache_misses),
      static_cast<unsigned long long>(m.single_flight_shared),
      static_cast<unsigned long long>(m.reloads),
      static_cast<unsigned long long>(m.mismatches), last ? "" : ",");
  out->append(buffer);
}

// ---------------------------------------------------------------------------
// Baseline regression gate.

// Extracts `"key": <u64>` from one scenario's JSON line; 0 when absent
// (older baselines predate some fields).
uint64_t FindU64(const std::string& line, const std::string& key) {
  std::string needle = "\"" + key + "\": ";
  size_t pos = line.find(needle);
  if (pos == std::string::npos) {
    return 0;
  }
  return std::strtoull(line.c_str() + pos + needle.size(), nullptr, 10);
}

// Compares this run against a committed --json report. The gate is over
// invariants, not speed: every baseline scenario must still run, at the
// same workload size (when the smoke flag matches), with no growth in
// untyped errors or pinning mismatches. Latency and qps are reported for
// trend reading but never gated — CI machines are not comparable.
void CheckAgainstBaseline(const std::string& baseline_path, bool smoke,
                          const std::vector<ScenarioMetrics>& results) {
  std::FILE* f = std::fopen(baseline_path.c_str(), "rb");
  if (f == nullptr) {
    ++g_failures;
    std::fprintf(stderr, "cannot read baseline %s\n", baseline_path.c_str());
    return;
  }
  std::string contents;
  char buffer[4096];
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    contents.append(buffer, n);
  }
  std::fclose(f);

  const bool baseline_smoke =
      contents.find("\"smoke\": true") != std::string::npos;
  size_t pos = 0;
  int scenarios_checked = 0;
  while ((pos = contents.find("{\"name\": \"", pos)) != std::string::npos) {
    size_t name_start = pos + std::strlen("{\"name\": \"");
    size_t name_end = contents.find('"', name_start);
    size_t line_end = contents.find('}', pos);
    if (name_end == std::string::npos || line_end == std::string::npos) {
      break;
    }
    std::string name = contents.substr(name_start, name_end - name_start);
    std::string line = contents.substr(pos, line_end - pos);
    pos = line_end;

    const ScenarioMetrics* current = nullptr;
    for (const ScenarioMetrics& m : results) {
      if (m.name == name) {
        current = &m;
      }
    }
    Check(current != nullptr,
          "baseline: scenario \"" + name + "\" no longer runs");
    if (current == nullptr) {
      continue;
    }
    ++scenarios_checked;
    // reload_churn issues requests for as long as the churn window lasts,
    // so its request count is machine-dependent; its gated invariants are
    // the reload count and the mismatch count below.
    if (baseline_smoke == smoke && name != "reload_churn") {
      Check(current->requests >= FindU64(line, "requests"),
            "baseline: scenario \"" + name + "\" workload shrank (" +
                std::to_string(current->requests) + " < " +
                std::to_string(FindU64(line, "requests")) + " requests)");
      Check(current->reloads >= FindU64(line, "reloads"),
            "baseline: scenario \"" + name + "\" exercises fewer reloads");
    }
    Check(current->other_errors <= FindU64(line, "other_errors"),
          "baseline: scenario \"" + name + "\" grew untyped errors (" +
              std::to_string(current->other_errors) + ")");
    Check(current->mismatches <= FindU64(line, "mismatches"),
          "baseline: scenario \"" + name + "\" grew pinning mismatches");
  }
  Check(scenarios_checked > 0,
        "baseline: " + baseline_path + " lists no scenarios");
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path;
  std::string baseline_path;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--json") {
      json_path = "BENCH_e12_server.json";
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(std::strlen("--json="));
    } else if (arg.rfind("--baseline=", 0) == 0) {
      baseline_path = arg.substr(std::strlen("--baseline="));
    } else {
      std::fprintf(stderr,
                   "usage: bench_e12_server [--smoke] [--json[=PATH]] "
                   "[--baseline=PATH]\n");
      return 2;
    }
  }

  std::vector<ScenarioMetrics> results;
  results.push_back(RunSteady(smoke));
  PrintHuman(results.back());
  results.push_back(RunStampede(smoke));
  PrintHuman(results.back());
  results.push_back(RunOverload(smoke));
  PrintHuman(results.back());
  results.push_back(RunReloadChurn(smoke));
  PrintHuman(results.back());

  if (!baseline_path.empty()) {
    CheckAgainstBaseline(baseline_path, smoke, results);
  }

  if (!json_path.empty()) {
    std::string json = "{\n  \"bench\": \"e12_server\",\n  \"smoke\": ";
    json += smoke ? "true" : "false";
    json += ",\n  \"scenarios\": [\n";
    for (size_t i = 0; i < results.size(); ++i) {
      AppendJson(&json, results[i], i + 1 == results.size());
    }
    json += "  ]\n}\n";
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 2;
    }
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }

  if (g_failures > 0) {
    std::fprintf(stderr, "%d invariant(s) violated\n", g_failures);
    return 1;
  }
  return 0;
}
