// E12 — serving-layer behavior under load: an in-process load generator
// driving QrelServer::Handle (the same code path the TCP layer uses)
// through three scenarios:
//
//   steady    — mixed cacheable/unique/EXPLAIN traffic at a load the
//               queue absorbs: nothing sheds, the cache replays repeats,
//               and we report qps and p50/p99 latency.
//   stampede  — N threads issue the identical expensive query at once:
//               single-flight dedup must collapse them to one compute.
//   overload  — one worker, a tiny queue, and a burst of unique slow
//               queries: the excess sheds with typed UNAVAILABLE +
//               Retry-After, HEALTH stays responsive throughout, and the
//               server drains to idle afterwards.
//
// Unlike the E1–E11 microbenchmarks this is a scenario harness, not a
// google-benchmark binary: each scenario asserts its robustness
// invariants and any violation exits nonzero, so CI can run it as a
// smoke test (--smoke shrinks the workload). --json[=PATH] writes the
// metrics to BENCH_e12_server.json (or PATH) for trend tracking.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "qrel/net/protocol.h"
#include "qrel/net/server.h"
#include "qrel/prob/text_format.h"

namespace {

using qrel::Request;
using qrel::RequestVerb;
using qrel::Response;
using qrel::ServerOptions;
using qrel::ServerStatsSnapshot;
using qrel::StatusCode;

using Clock = std::chrono::steady_clock;

int g_failures = 0;

void Check(bool condition, const std::string& message) {
  if (!condition) {
    ++g_failures;
    std::fprintf(stderr, "INVARIANT VIOLATED: %s\n", message.c_str());
  }
}

// A ring on n elements where *every* edge is uncertain (err=1/4) and the
// S column mixes certain facts with uncertain absences. No query over E
// has a certain witness, so a forced-approximate request really runs its
// full Karp-Luby sample count — the load generator controls request
// duration through fixed_samples instead of short-circuiting on a
// "certainly true" grounding. With n=12 that is 20 uncertain atoms: 2^20
// worlds, comfortably past the engine's exact ceiling, so unforced
// requests approximate too.
qrel::ReliabilityEngine BenchEngine() {
  const int n = 12;
  std::string udb = "universe " + std::to_string(n) +
                    "\nrelation E 2\nrelation S 1\n";
  for (int i = 0; i < n; ++i) {
    udb += "fact E " + std::to_string(i) + " " +
           std::to_string((i + 1) % n) + " err=1/4\n";
    if (i % 3 == 0) {
      udb += "fact S " + std::to_string(i) + "\n";
    } else {
      udb += "absent S " + std::to_string(i) + " err=1/5\n";
    }
  }
  qrel::StatusOr<qrel::UnreliableDatabase> database = qrel::ParseUdb(udb);
  if (!database.ok()) {
    std::fprintf(stderr, "bench database: %s\n",
                 database.status().ToString().c_str());
    std::exit(2);
  }
  return qrel::ReliabilityEngine(std::move(database).value());
}

Request QueryRequest(const std::string& query) {
  Request request;
  request.verb = RequestVerb::kQuery;
  request.query = query;
  return request;
}

// A request that samples instead of enumerating, with a per-caller seed so
// distinct seeds are distinct cache keys (and equal seeds collide).
Request SampledRequest(const std::string& query, uint64_t seed,
                       uint64_t samples) {
  Request request = QueryRequest(query);
  request.options.force_approximate = true;
  request.options.fixed_samples = samples;
  request.options.seed = seed;
  return request;
}

struct ScenarioMetrics {
  std::string name;
  uint64_t requests = 0;
  uint64_t ok = 0;
  uint64_t shed = 0;
  uint64_t other_errors = 0;
  double elapsed_s = 0.0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t single_flight_shared = 0;
};

double PercentileMs(std::vector<double>* latencies_ms, double q) {
  if (latencies_ms->empty()) {
    return 0.0;
  }
  std::sort(latencies_ms->begin(), latencies_ms->end());
  size_t index = static_cast<size_t>(q * static_cast<double>(
                                             latencies_ms->size() - 1));
  return (*latencies_ms)[index];
}

// Runs `per_thread` requests on each of `threads` threads, pulling the
// i-th request from `make_request(thread, i)`; records latencies and
// typed outcome counts into `metrics`.
void RunClients(qrel::QrelServer* server, int threads, int per_thread,
                const std::function<Request(int, int)>& make_request,
                ScenarioMetrics* metrics) {
  std::vector<std::vector<double>> latencies(
      static_cast<size_t>(threads));
  std::atomic<uint64_t> ok{0};
  std::atomic<uint64_t> shed{0};
  std::atomic<uint64_t> other{0};
  Clock::time_point start = Clock::now();
  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      for (int i = 0; i < per_thread; ++i) {
        Request request = make_request(t, i);
        Clock::time_point begin = Clock::now();
        Response response = server->Handle(request);
        double ms = std::chrono::duration<double, std::milli>(
                        Clock::now() - begin)
                        .count();
        latencies[static_cast<size_t>(t)].push_back(ms);
        if (response.ok()) {
          ok.fetch_add(1);
        } else if (response.status.code() == StatusCode::kUnavailable) {
          shed.fetch_add(1);
          Check(response.retry_after_ms.has_value(),
                "a shed response must carry a Retry-After hint");
        } else {
          other.fetch_add(1);
          // Whatever went wrong must be a *typed* protocol error.
          Check(response.status.code() != StatusCode::kOk,
                "an error response must carry a nonzero status code");
        }
      }
    });
  }
  for (std::thread& t : pool) {
    t.join();
  }
  metrics->elapsed_s =
      std::chrono::duration<double>(Clock::now() - start).count();
  std::vector<double> all;
  for (const std::vector<double>& per : latencies) {
    all.insert(all.end(), per.begin(), per.end());
  }
  metrics->requests = all.size();
  metrics->ok = ok.load();
  metrics->shed = shed.load();
  metrics->other_errors = other.load();
  metrics->qps = metrics->elapsed_s > 0.0
                     ? static_cast<double>(all.size()) / metrics->elapsed_s
                     : 0.0;
  metrics->p50_ms = PercentileMs(&all, 0.50);
  metrics->p99_ms = PercentileMs(&all, 0.99);
}

// Steady state: a queue deep enough for the offered load, traffic that is
// 50% repeats of two cacheable queries, 25% unique sampled queries, 25%
// EXPLAIN. Nothing may shed and the cache must be doing real work.
ScenarioMetrics RunSteady(bool smoke) {
  ScenarioMetrics metrics;
  metrics.name = "steady";
  ServerOptions options;
  options.workers = 2;
  options.queue_capacity = 256;
  options.work_quota = uint64_t{1} << 32;
  qrel::QrelServer server(BenchEngine(), options);

  const int threads = 4;
  const int per_thread = smoke ? 15 : 100;
  const uint64_t samples = smoke ? 2000 : 20000;
  RunClients(
      &server, threads, per_thread,
      [&](int t, int i) -> Request {
        int kind = (t + i) % 4;
        if (kind == 0) {
          return QueryRequest("exists x y . E(x,y) & S(y)");
        }
        if (kind == 1) {
          return QueryRequest("exists x . S(x) & !E(x,x)");
        }
        if (kind == 2) {
          return SampledRequest(
              "exists x y . E(x,y) & S(y)",
              /*seed=*/static_cast<uint64_t>(t) * 1000 +
                  static_cast<uint64_t>(i),
              samples);
        }
        Request explain = QueryRequest("exists x y . E(x,y) & S(y)");
        explain.verb = RequestVerb::kExplain;
        return explain;
      },
      &metrics);

  ServerStatsSnapshot stats = server.stats_snapshot();
  metrics.cache_hits = stats.cache_hits;
  metrics.cache_misses = stats.cache_misses;
  metrics.single_flight_shared = stats.cache_shared;
  Check(metrics.ok == metrics.requests,
        "steady: every request must succeed (got " +
            std::to_string(metrics.ok) + "/" +
            std::to_string(metrics.requests) + ")");
  Check(stats.shed_queue_full + stats.shed_quota + stats.shed_draining == 0,
        "steady: nothing may shed at this load");
  Check(stats.cache_hits > 0, "steady: repeats must hit the cache");
  server.Shutdown();
  return metrics;
}

// Stampede: every thread issues the *identical* expensive query at once.
// Single-flight must collapse the burst into one compute; everyone gets
// the leader's answer.
ScenarioMetrics RunStampede(bool smoke) {
  ScenarioMetrics metrics;
  metrics.name = "stampede";
  ServerOptions options;
  options.workers = 2;
  options.queue_capacity = 64;
  options.default_max_work = uint64_t{1} << 26;
  options.max_request_work = uint64_t{1} << 26;
  options.work_quota = uint64_t{1} << 32;
  qrel::QrelServer server(BenchEngine(), options);

  const int threads = 8;
  const uint64_t samples = smoke ? 50000 : 400000;
  Request hot = SampledRequest("exists x y . E(x,y) & S(y)", /*seed=*/7,
                               samples);
  RunClients(
      &server, threads, /*per_thread=*/1,
      [&](int, int) { return hot; }, &metrics);

  ServerStatsSnapshot stats = server.stats_snapshot();
  metrics.cache_hits = stats.cache_hits;
  metrics.cache_misses = stats.cache_misses;
  metrics.single_flight_shared = stats.cache_shared;
  Check(metrics.ok == metrics.requests, "stampede: every caller must get "
                                        "the leader's answer");
  Check(stats.cache_misses == 1,
        "stampede: single-flight must collapse to exactly one compute "
        "(got " + std::to_string(stats.cache_misses) + " misses)");
  Check(stats.cache_hits + stats.cache_shared ==
            static_cast<uint64_t>(threads - 1),
        "stampede: every follower must be served from the flight or the "
        "store");
  server.Shutdown();
  return metrics;
}

// Overload: one worker, a 2-slot queue, and a burst of unique slow
// queries. The excess must shed typed and O(1); the server must stay
// responsive to HEALTH while saturated and be idle once the burst ends.
ScenarioMetrics RunOverload(bool smoke) {
  ScenarioMetrics metrics;
  metrics.name = "overload";
  ServerOptions options;
  options.workers = 1;
  options.queue_capacity = 2;
  options.default_max_work = uint64_t{1} << 26;
  options.max_request_work = uint64_t{1} << 26;
  options.work_quota = uint64_t{1} << 32;
  qrel::QrelServer server(BenchEngine(), options);

  const int threads = 8;
  const int per_thread = smoke ? 2 : 6;
  const uint64_t samples = smoke ? 100000 : 400000;
  std::atomic<bool> burst_done{false};
  std::atomic<uint64_t> health_ok{0};
  std::thread prober([&] {
    // HEALTH must answer promptly no matter how saturated the queue is.
    while (!burst_done.load()) {
      Request health;
      health.verb = RequestVerb::kHealth;
      Response response = server.Handle(health);
      if (response.ok()) {
        health_ok.fetch_add(1);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });
  RunClients(
      &server, threads, per_thread,
      [&](int t, int i) {
        return SampledRequest(
            "exists x y . E(x,y) & S(y)",
            /*seed=*/9000 + static_cast<uint64_t>(t) * 100 +
                static_cast<uint64_t>(i),
            samples);
      },
      &metrics);
  burst_done.store(true);
  prober.join();

  ServerStatsSnapshot stats = server.stats_snapshot();
  metrics.cache_hits = stats.cache_hits;
  metrics.cache_misses = stats.cache_misses;
  metrics.single_flight_shared = stats.cache_shared;
  Check(metrics.shed > 0, "overload: an oversubscribed 2-slot queue must "
                          "shed something");
  Check(metrics.shed == stats.shed_queue_full + stats.shed_quota,
        "overload: every shed must be accounted to a typed cause");
  Check(metrics.ok + metrics.shed == metrics.requests,
        "overload: every request ends OK or typed-shed, nothing vanishes");
  Check(health_ok.load() > 0,
        "overload: HEALTH must stay responsive under saturation");
  server.Drain();
  Check(server.inflight() == 0 && server.queue_depth() == 0,
        "overload: the server must drain to idle after the burst");
  server.Shutdown();
  return metrics;
}

void PrintHuman(const ScenarioMetrics& m) {
  std::printf(
      "%-9s: %5llu req in %6.2fs  (%7.1f qps)  p50 %7.2fms  p99 %7.2fms  "
      "ok %llu  shed %llu  cache %llu/%llu (+%llu shared)\n",
      m.name.c_str(), static_cast<unsigned long long>(m.requests),
      m.elapsed_s, m.qps, m.p50_ms, m.p99_ms,
      static_cast<unsigned long long>(m.ok),
      static_cast<unsigned long long>(m.shed),
      static_cast<unsigned long long>(m.cache_hits),
      static_cast<unsigned long long>(m.cache_misses),
      static_cast<unsigned long long>(m.single_flight_shared));
}

void AppendJson(std::string* out, const ScenarioMetrics& m, bool last) {
  char buffer[512];
  std::snprintf(
      buffer, sizeof(buffer),
      "    {\"name\": \"%s\", \"requests\": %llu, \"ok\": %llu, "
      "\"shed\": %llu, \"other_errors\": %llu, \"elapsed_s\": %.4f, "
      "\"qps\": %.2f, \"p50_ms\": %.3f, \"p99_ms\": %.3f, "
      "\"cache_hits\": %llu, \"cache_misses\": %llu, "
      "\"single_flight_shared\": %llu}%s\n",
      m.name.c_str(), static_cast<unsigned long long>(m.requests),
      static_cast<unsigned long long>(m.ok),
      static_cast<unsigned long long>(m.shed),
      static_cast<unsigned long long>(m.other_errors), m.elapsed_s, m.qps,
      m.p50_ms, m.p99_ms, static_cast<unsigned long long>(m.cache_hits),
      static_cast<unsigned long long>(m.cache_misses),
      static_cast<unsigned long long>(m.single_flight_shared),
      last ? "" : ",");
  out->append(buffer);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--json") {
      json_path = "BENCH_e12_server.json";
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(std::strlen("--json="));
    } else {
      std::fprintf(stderr,
                   "usage: bench_e12_server [--smoke] [--json[=PATH]]\n");
      return 2;
    }
  }

  std::vector<ScenarioMetrics> results;
  results.push_back(RunSteady(smoke));
  PrintHuman(results.back());
  results.push_back(RunStampede(smoke));
  PrintHuman(results.back());
  results.push_back(RunOverload(smoke));
  PrintHuman(results.back());

  if (!json_path.empty()) {
    std::string json = "{\n  \"bench\": \"e12_server\",\n  \"smoke\": ";
    json += smoke ? "true" : "false";
    json += ",\n  \"scenarios\": [\n";
    for (size_t i = 0; i < results.size(); ++i) {
      AppendJson(&json, results[i], i + 1 == results.size());
    }
    json += "  ]\n}\n";
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 2;
    }
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }

  if (g_failures > 0) {
    std::fprintf(stderr, "%d invariant(s) violated\n", g_failures);
    return 1;
  }
  return 0;
}
