// E11 — Datalog (fixed-point) queries: the Theorem 4.2 / Theorem 5.12
// pipeline beyond first-order logic.
//
// Claim (Sect. 4 remark): the FP^#P upper bound and the Thm 5.12
// absolute-error estimator apply to every polynomial-time evaluable
// query — in particular to recursive Datalog queries, which first-order
// logic cannot express. Expected shape: exact reliability of transitive
// closure doubles per uncertain edge; the padded estimator's time is flat
// in the number of uncertain atoms at a fixed budget, and grows with the
// per-world evaluation cost only.

#include <cmath>
#include <memory>

#include <benchmark/benchmark.h>

#include "qrel/datalog/reliability.h"

namespace {

volatile double qrel_bench_sink = 0.0;

constexpr char kProgram[] =
    "Path(x, y) :- E(x, y).\n"
    "Path(x, z) :- Path(x, y), E(y, z).";

// A ring of `n` nodes whose first `uncertain` edges are unreliable.
qrel::UnreliableDatabase Ring(int n, int uncertain) {
  auto vocabulary = std::make_shared<qrel::Vocabulary>();
  int e = vocabulary->AddRelation("E", 2);
  qrel::Structure observed(vocabulary, n);
  for (int i = 0; i < n; ++i) {
    observed.AddFact(e, {static_cast<qrel::Element>(i),
                         static_cast<qrel::Element>((i + 1) % n)});
  }
  qrel::UnreliableDatabase db(std::move(observed));
  for (int i = 0; i < uncertain && i < n; ++i) {
    db.SetErrorProbability(
        qrel::GroundAtom{e,
                         {static_cast<qrel::Element>(i),
                          static_cast<qrel::Element>((i + 1) % n)}},
        qrel::Rational(1, 10));
  }
  return db;
}

void BM_E11_ExactTransitiveClosure(benchmark::State& state) {
  int uncertain = static_cast<int>(state.range(0));
  qrel::UnreliableDatabase db = Ring(10, uncertain);
  qrel::CompiledDatalog program =
      std::move(qrel::CompiledDatalog::Compile(
                    *qrel::ParseDatalogProgram(kProgram), db.vocabulary()))
          .value();
  double r = 0;
  for (auto _ : state) {
    r = qrel::ExactDatalogReliability(program, "Path", db)
            ->reliability.ToDouble();
    qrel_bench_sink = r;
  }
  state.counters["u"] = uncertain;
  state.counters["worlds"] = std::pow(2.0, uncertain);
  state.counters["R"] = r;
}
BENCHMARK(BM_E11_ExactTransitiveClosure)->DenseRange(2, 10, 2)
    ->Unit(benchmark::kMillisecond);

void BM_E11_PaddedTransitiveClosure(benchmark::State& state) {
  int uncertain = static_cast<int>(state.range(0));
  qrel::UnreliableDatabase db = Ring(10, uncertain);
  qrel::CompiledDatalog program =
      std::move(qrel::CompiledDatalog::Compile(
                    *qrel::ParseDatalogProgram(kProgram), db.vocabulary()))
          .value();
  double exact = qrel::ExactDatalogReliability(program, "Path", db)
                     ->reliability.ToDouble();
  qrel::ApproxOptions options;
  options.seed = 19;
  options.fixed_samples = 3000;
  double estimate = 0;
  for (auto _ : state) {
    estimate =
        qrel::PaddedDatalogReliability(program, "Path", db, options)
            ->estimate;
    qrel_bench_sink = estimate;
  }
  state.counters["u"] = uncertain;
  state.counters["abs_err"] = std::fabs(estimate - exact);
}
BENCHMARK(BM_E11_PaddedTransitiveClosure)->DenseRange(2, 10, 4)
    ->Unit(benchmark::kMillisecond);

// Ablation: semi-naive vs naive fixpoint evaluation on a long chain,
// where naive re-derives all shorter paths every round.
void BM_E11_SemiNaiveVsNaive(benchmark::State& state) {
  bool semi = state.range(1) == 1;
  int n = static_cast<int>(state.range(0));
  auto vocabulary = std::make_shared<qrel::Vocabulary>();
  int e = vocabulary->AddRelation("E", 2);
  qrel::Structure db(vocabulary, n);
  for (int i = 0; i + 1 < n; ++i) {
    db.AddFact(e, {static_cast<qrel::Element>(i),
                   static_cast<qrel::Element>(i + 1)});
  }
  qrel::CompiledDatalog program =
      std::move(qrel::CompiledDatalog::Compile(
                    *qrel::ParseDatalogProgram(kProgram), db.vocabulary()))
          .value();
  size_t facts = 0;
  for (auto _ : state) {
    qrel::DatalogResult result = semi ? program.Eval(db)
                                      : program.EvalNaive(db);
    facts = result.at("Path").size();
    qrel_bench_sink = static_cast<double>(facts);
  }
  state.counters["n"] = n;
  state.counters["semi_naive"] = semi ? 1 : 0;
  state.counters["path_facts"] = static_cast<double>(facts);
}
BENCHMARK(BM_E11_SemiNaiveVsNaive)
    ->Args({16, 0})->Args({16, 1})
    ->Args({32, 0})->Args({32, 1})
    ->Args({48, 0})->Args({48, 1})
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
