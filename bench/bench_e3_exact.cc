// E3 — Theorem 4.2: exact FP^#P computation by world enumeration.
//
// Claim: reliability of any (second-order; here first-order) query reduces
// to one #P-style count — realized as exact big-rational enumeration of
// the 2^u worlds — followed by polynomial post-processing. The scaling
// integer g (product of the ν-denominators) certifies the arithmetic:
// g · Pr[𝔅 ⊨ ψ] is an integer on every instance.
//
// Expected shape: time ≈ 2^u with u = #uncertain atoms; the per-world
// factor grows mildly with u because the exact rationals widen.

#include <cmath>

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "qrel/core/reliability.h"
#include "qrel/logic/parser.h"

namespace {

void BM_E3_ExactEnumeration(benchmark::State& state) {
  int uncertain = static_cast<int>(state.range(0));
  qrel::UnreliableDatabase db =
      qrel_bench::GraphDatabase(16, uncertain, /*seed=*/3);
  qrel::FormulaPtr query =
      *qrel::ParseFormula("exists x y . E(x, y) & S(x) & !S(y)");
  uint64_t worlds = 0;
  for (auto _ : state) {
    qrel::StatusOr<qrel::ReliabilityReport> report =
        qrel::ExactReliability(query, db);
    benchmark::DoNotOptimize(report);
    worlds = report->work_units;
  }
  state.counters["u"] = static_cast<double>(db.UncertainEntries().size());
  state.counters["worlds"] = static_cast<double>(worlds);
}
BENCHMARK(BM_E3_ExactEnumeration)->DenseRange(4, 18, 2)
    ->Unit(benchmark::kMillisecond);

void BM_E3_ScaledProbabilityIntegrality(benchmark::State& state) {
  // The g·Pr ∈ ℕ check of the theorem, including the (large) g arithmetic.
  int uncertain = static_cast<int>(state.range(0));
  qrel::UnreliableDatabase db =
      qrel_bench::GraphDatabase(12, uncertain, /*seed=*/4);
  qrel::FormulaPtr query = *qrel::ParseFormula("exists x . S(x) & E(x, x)");
  double g_bits = 0;
  for (auto _ : state) {
    qrel::StatusOr<qrel::ScaledProbability> scaled =
        qrel::ExactScaledProbability(query, db, {});
    benchmark::DoNotOptimize(scaled);
    g_bits = static_cast<double>(scaled->g.BitLength());
  }
  state.counters["u"] = static_cast<double>(db.UncertainEntries().size());
  state.counters["g_bits"] = g_bits;
}
BENCHMARK(BM_E3_ScaledProbabilityIntegrality)->DenseRange(4, 16, 4)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
