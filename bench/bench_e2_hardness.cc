// E2 — Proposition 3.2: conjunctive-query reliability is #P-hard.
//
// Claim, made measurable: exact reliability of the fixed conjunctive query
// ψ = ∃xyz (Lxy ∧ Rxz ∧ Sy ∧ Sz) on Prop-3.2 reduction instances computes
// #MONOTONE-2SAT, so its cost doubles with every propositional variable,
// while the FPTRAS (Theorem 5.4 + Karp-Luby) on the *same* instance stays
// polynomial. Expected shape: exact ≈ 2^m growth; FPTRAS ≈ flat in m at a
// fixed (ε, δ).

#include <cmath>

#include <benchmark/benchmark.h>

#include "qrel/core/approx.h"
#include "qrel/core/reliability.h"
#include "qrel/reductions/monotone_two_sat.h"

namespace {

qrel::Prop32Instance Instance(int variables) {
  qrel::Rng rng(1000 + static_cast<uint64_t>(variables));
  qrel::MonotoneTwoSat formula =
      qrel::RandomMonotoneTwoSat(variables, 2 * variables, &rng);
  return qrel::BuildProp32Instance(formula);
}

void BM_E2_ExactConjunctiveReliability(benchmark::State& state) {
  int variables = static_cast<int>(state.range(0));
  qrel::Prop32Instance instance = Instance(variables);
  double h = 0;
  for (auto _ : state) {
    qrel::StatusOr<qrel::ReliabilityReport> report =
        qrel::ExactReliability(instance.query, instance.database);
    benchmark::DoNotOptimize(report);
    h = report->expected_error.ToDouble();
  }
  state.counters["m"] = variables;
  state.counters["worlds"] = std::pow(2.0, variables);
  state.counters["H"] = h;
}
BENCHMARK(BM_E2_ExactConjunctiveReliability)->DenseRange(4, 12, 2)->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_E2_FptrasOnSameInstance(benchmark::State& state) {
  int variables = static_cast<int>(state.range(0));
  qrel::Prop32Instance instance = Instance(variables);
  qrel::ApproxOptions options;
  options.epsilon = 0.05;
  options.delta = 0.05;
  options.seed = 99;
  double estimate = 0;
  for (auto _ : state) {
    qrel::StatusOr<qrel::ApproxResult> result =
        qrel::ExistentialProbabilityFptras(instance.query, instance.database,
                                           {}, options);
    benchmark::DoNotOptimize(result);
    estimate = result->estimate;
  }
  state.counters["m"] = variables;
  state.counters["Pr[psi]"] = estimate;
}
BENCHMARK(BM_E2_FptrasOnSameInstance)->DenseRange(4, 20, 2)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
