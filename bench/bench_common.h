// Shared workload generators for the experiment benchmarks (E1..E10).
//
// Every generator is deterministic given its seed, so benchmark runs are
// reproducible and comparable across machines.

#ifndef QREL_BENCH_BENCH_COMMON_H_
#define QREL_BENCH_BENCH_COMMON_H_

#include <memory>

#include "qrel/prob/unreliable_database.h"
#include "qrel/util/rng.h"

namespace qrel_bench {

// A graph database with relations E(2), S(1) on `n` elements: a sparse
// pseudo-random edge set, S on every third element, and `uncertain_atoms`
// error-probability entries spread over E and S facts/non-facts.
inline qrel::UnreliableDatabase GraphDatabase(int n, int uncertain_atoms,
                                              uint64_t seed) {
  auto vocabulary = std::make_shared<qrel::Vocabulary>();
  int e = vocabulary->AddRelation("E", 2);
  int s = vocabulary->AddRelation("S", 1);
  qrel::Structure observed(vocabulary, n);
  qrel::Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    observed.AddFact(e, {static_cast<qrel::Element>(i),
                         static_cast<qrel::Element>((i + 1) % n)});
    if (rng.NextBernoulli(0.3)) {
      observed.AddFact(e, {static_cast<qrel::Element>(i),
                           static_cast<qrel::Element>(
                               rng.NextBelow(static_cast<uint64_t>(n)))});
    }
    if (i % 3 == 0) {
      observed.AddFact(s, {static_cast<qrel::Element>(i)});
    }
  }
  qrel::UnreliableDatabase db(std::move(observed));
  // Error probabilities with small non-dyadic denominators.
  const int64_t denominators[] = {3, 4, 5, 7, 8};
  for (int a = 0; a < uncertain_atoms; ++a) {
    int64_t den = denominators[a % 5];
    qrel::Rational mu(1 + static_cast<int64_t>(rng.NextBelow(
                              static_cast<uint64_t>(den) - 1)),
                      den);
    if (a % 2 == 0) {
      qrel::Element u =
          static_cast<qrel::Element>(rng.NextBelow(static_cast<uint64_t>(n)));
      qrel::Element v =
          static_cast<qrel::Element>(rng.NextBelow(static_cast<uint64_t>(n)));
      db.SetErrorProbability(qrel::GroundAtom{e, {u, v}}, mu);
    } else {
      qrel::Element u =
          static_cast<qrel::Element>(rng.NextBelow(static_cast<uint64_t>(n)));
      db.SetErrorProbability(qrel::GroundAtom{s, {u}}, mu);
    }
  }
  return db;
}

}  // namespace qrel_bench

#endif  // QREL_BENCH_BENCH_COMMON_H_
