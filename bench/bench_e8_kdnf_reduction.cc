// E8 — Theorem 5.3: the Prob-kDNF → #DNF reduction.
//
// Claim: the construction is polynomial in the formula size and in the
// bit-length of the probabilities, but exponential in the width k (each
// term multiplies out the ≤ ℓ-term comparison DNFs of its k literals).
// Expected shape: φ'' size grows ≈ ℓ^k in the width sweep and ≈ ℓ^k
// polynomially in the bit-length sweep; correctness is asserted against
// the exact Shannon oracle on every instance.

#include <benchmark/benchmark.h>

#include "qrel/propositional/exact.h"
#include "qrel/propositional/kdnf_reduction.h"
#include "qrel/util/rng.h"

namespace {

// Optimization sink: keeps results alive without the
// DoNotOptimize asm-constraint issues seen with older
// google-benchmark builds.
volatile double qrel_bench_sink = 0.0;

qrel::Dnf RandomKdnf(int variables, int terms, int width, uint64_t seed) {
  qrel::Rng rng(seed);
  qrel::Dnf dnf(variables);
  for (int t = 0; t < terms; ++t) {
    std::vector<qrel::PropLiteral> term;
    for (int l = 0; l < width; ++l) {
      term.push_back({static_cast<int>(
                          rng.NextBelow(static_cast<uint64_t>(variables))),
                      rng.NextBernoulli(0.5)});
    }
    dnf.AddTerm(std::move(term));
  }
  return dnf;
}

// Probabilities with denominators of roughly `bits` bits (non-dyadic).
std::vector<qrel::Rational> WideProbabilities(int variables, int bits,
                                              uint64_t seed) {
  qrel::Rng rng(seed);
  std::vector<qrel::Rational> result;
  for (int v = 0; v < variables; ++v) {
    int64_t den = (int64_t{1} << bits) + 1 +
                  static_cast<int64_t>(rng.NextBelow(1u << (bits - 1)));
    int64_t num =
        1 + static_cast<int64_t>(rng.NextBelow(static_cast<uint64_t>(den) - 1));
    result.push_back(qrel::Rational(num, den));
  }
  return result;
}

void BM_E8_WidthSweep(benchmark::State& state) {
  int width = static_cast<int>(state.range(0));
  qrel::Dnf dnf = RandomKdnf(8, 6, width, /*seed=*/41);
  std::vector<qrel::Rational> prob = WideProbabilities(8, 4, /*seed=*/42);
  double terms = 0, bits = 0;
  for (auto _ : state) {
    qrel::StatusOr<qrel::KdnfReduction> reduction =
        qrel::ReduceProbKdnfToSharpDnf(dnf, prob);
    benchmark::DoNotOptimize(reduction);
    terms = reduction->phi_pp.term_count();
    bits = reduction->bit_count;
  }
  state.counters["k"] = width;
  state.counters["phi_pp_terms"] = terms;
  state.counters["phi_pp_bits"] = bits;
}
BENCHMARK(BM_E8_WidthSweep)->DenseRange(1, 5, 1);

void BM_E8_BitLengthSweep(benchmark::State& state) {
  int bits = static_cast<int>(state.range(0));
  qrel::Dnf dnf = RandomKdnf(8, 6, 2, /*seed=*/43);
  std::vector<qrel::Rational> prob = WideProbabilities(8, bits, /*seed=*/44);
  double terms = 0;
  for (auto _ : state) {
    qrel::StatusOr<qrel::KdnfReduction> reduction =
        qrel::ReduceProbKdnfToSharpDnf(dnf, prob);
    benchmark::DoNotOptimize(reduction);
    terms = reduction->phi_pp.term_count();
  }
  state.counters["prob_bits"] = bits;
  state.counters["phi_pp_terms"] = terms;
}
BENCHMARK(BM_E8_BitLengthSweep)->DenseRange(2, 12, 2);

void BM_E8_EndToEndCorrectness(benchmark::State& state) {
  // Reduction + exact count of φ'' recovers ν(φ) exactly.
  qrel::Dnf dnf = RandomKdnf(6, 5, 2, /*seed=*/45);
  std::vector<qrel::Rational> prob = WideProbabilities(6, 3, /*seed=*/46);
  qrel::Rational exact = qrel::ShannonDnfProbability(dnf, prob);
  int matches = 0;
  for (auto _ : state) {
    qrel::KdnfReduction reduction =
        *qrel::ReduceProbKdnfToSharpDnf(dnf, prob);
    qrel::Rational recovered =
        reduction.RecoverProbability(qrel::CountDnfModels(reduction.phi_pp));
    matches = recovered == exact ? 1 : 0;
    qrel_bench_sink = static_cast<double>(matches);
  }
  state.counters["matches_exact"] = matches;
}
BENCHMARK(BM_E8_EndToEndCorrectness)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
