// E7 — Lemmas 5.7/5.8/5.9: the absolute reliability problem.
//
// Claims, made measurable:
//   * Lemma 5.7 — AR_ψ for quantifier-free ψ is polynomial: decided
//     through Prop 3.1 in time ≈ n^k, uncertainty notwithstanding.
//   * Lemma 5.9 — AR_ψ is co-NP-hard via 4-colourability: on reduction
//     instances of non-4-colourable graphs the witness search must visit
//     all 4^V colour worlds, so the cost quadruples per vertex; on
//     4-colourable graphs a witness usually appears early.
//
// Expected shape: QF decider polynomial in n; witness search exponential
// in V for "no" (non-colourable ⇒ absolutely reliable) instances and
// typically early-exit for "yes" instances.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "qrel/core/absolute.h"
#include "qrel/logic/parser.h"
#include "qrel/reductions/four_coloring.h"

namespace {

// Optimization sink: keeps results alive without the
// DoNotOptimize asm-constraint issues seen with older
// google-benchmark builds.
volatile double qrel_bench_sink = 0.0;

void BM_E7_QuantifierFreeDecider(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  qrel::UnreliableDatabase db = qrel_bench::GraphDatabase(n, n, /*seed=*/31);
  qrel::FormulaPtr query = *qrel::ParseFormula("E(x, y) & S(x)");
  bool reliable = false;
  for (auto _ : state) {
    reliable = *qrel::AbsolutelyReliableQuantifierFree(query, db);
    qrel_bench_sink = static_cast<double>(reliable);
  }
  state.counters["n"] = n;
  state.counters["AR"] = reliable ? 1 : 0;
  state.SetComplexityN(n);
}
BENCHMARK(BM_E7_QuantifierFreeDecider)->RangeMultiplier(2)->Range(8, 128)
    ->Complexity(benchmark::oNSquared);

// Non-4-colourable instances: K5 plus a path tail of total size V.
qrel::Graph HardNoInstance(int vertices) {
  qrel::Graph graph = qrel::CompleteGraph(5);
  graph.vertex_count = vertices;
  for (int v = 5; v < vertices; ++v) {
    graph.edges.emplace_back(v - 1, v);
  }
  return graph;
}

void BM_E7_WitnessSearchNonColorable(benchmark::State& state) {
  int vertices = static_cast<int>(state.range(0));
  qrel::Lemma59Instance instance =
      qrel::BuildLemma59Instance(HardNoInstance(vertices));
  uint64_t worlds = 0;
  bool reliable = false;
  for (auto _ : state) {
    qrel::AbsoluteReliabilityResult result =
        *qrel::AbsoluteReliabilityByWitness(instance.query,
                                            instance.database);
    worlds = result.worlds_checked;
    reliable = result.absolutely_reliable;
    benchmark::DoNotOptimize(result);
  }
  state.counters["V"] = vertices;
  state.counters["worlds_checked"] = static_cast<double>(worlds);
  state.counters["AR"] = reliable ? 1 : 0;  // expect 1: not 4-colourable
}
BENCHMARK(BM_E7_WitnessSearchNonColorable)->DenseRange(5, 9, 1)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_E7_WitnessSearchColorable(benchmark::State& state) {
  int vertices = static_cast<int>(state.range(0));
  qrel::Lemma59Instance instance =
      qrel::BuildLemma59Instance(qrel::CycleGraph(vertices));
  uint64_t worlds = 0;
  for (auto _ : state) {
    qrel::AbsoluteReliabilityResult result =
        *qrel::AbsoluteReliabilityByWitness(instance.query,
                                            instance.database);
    worlds = result.worlds_checked;
    benchmark::DoNotOptimize(result);
  }
  state.counters["V"] = vertices;
  state.counters["worlds_checked"] = static_cast<double>(worlds);
}
BENCHMARK(BM_E7_WitnessSearchColorable)->DenseRange(5, 9, 1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
