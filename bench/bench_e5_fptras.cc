// E5 — Theorem 5.4: the FPTRAS for existential query probabilities is
// fully polynomial.
//
// Claim: the runtime is polynomial in the database size n, in 1/ε and in
// ln(1/δ). Expected shape: the n-sweep grows like the grounding size
// (≈ n^{#quantified variables} term construction plus Karp-Luby work
// linear in the term count); the ε-sweep grows ≈ 1/ε²; the δ-sweep grows
// logarithmically.

#include <benchmark/benchmark.h>

#include <memory>

#include "qrel/core/approx.h"
#include "qrel/logic/parser.h"

namespace {

// A database where *every* atom relevant to the query is uncertain, so the
// grounding never collapses to a constant and the Karp-Luby stage always
// runs: the ring edges E(i, i+1) carry error 1/4 and every S(i) label
// error 1/3.
qrel::UnreliableDatabase FullyUncertainRing(int n) {
  auto vocabulary = std::make_shared<qrel::Vocabulary>();
  int e = vocabulary->AddRelation("E", 2);
  int s = vocabulary->AddRelation("S", 1);
  qrel::Structure observed(vocabulary, n);
  for (int i = 0; i < n; ++i) {
    observed.AddFact(e, {static_cast<qrel::Element>(i),
                         static_cast<qrel::Element>((i + 1) % n)});
    if (i % 2 == 0) {
      observed.AddFact(s, {static_cast<qrel::Element>(i)});
    }
  }
  qrel::UnreliableDatabase db(std::move(observed));
  for (int i = 0; i < n; ++i) {
    db.SetErrorProbability(
        qrel::GroundAtom{e,
                         {static_cast<qrel::Element>(i),
                          static_cast<qrel::Element>((i + 1) % n)}},
        qrel::Rational(1, 4));
    db.SetErrorProbability(qrel::GroundAtom{s, {static_cast<qrel::Element>(i)}},
                           qrel::Rational(1, 3));
  }
  return db;
}

const qrel::FormulaPtr& Query() {
  static const qrel::FormulaPtr query =
      *qrel::ParseFormula("exists x y . E(x, y) & S(x) & !S(y)");
  return query;
}

void BM_E5_ScalingInN(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  qrel::UnreliableDatabase db = FullyUncertainRing(n);
  qrel::ApproxOptions options;
  options.epsilon = 0.05;
  options.delta = 0.05;
  options.seed = 11;
  uint64_t samples = 0;
  for (auto _ : state) {
    qrel::StatusOr<qrel::ApproxResult> result =
        qrel::ExistentialProbabilityFptras(Query(), db, {}, options);
    benchmark::DoNotOptimize(result);
    samples = result->samples;
  }
  state.counters["n"] = n;
  state.counters["samples"] = static_cast<double>(samples);
  state.SetComplexityN(n);
}
BENCHMARK(BM_E5_ScalingInN)->RangeMultiplier(2)->Range(8, 128)
    ->Unit(benchmark::kMillisecond)->Complexity();

void BM_E5_ScalingInInverseEpsilon(benchmark::State& state) {
  double epsilon = 1.0 / static_cast<double>(state.range(0));
  qrel::UnreliableDatabase db = FullyUncertainRing(24);
  qrel::ApproxOptions options;
  options.epsilon = epsilon;
  options.delta = 0.05;
  options.seed = 13;
  uint64_t samples = 0;
  for (auto _ : state) {
    qrel::StatusOr<qrel::ApproxResult> result =
        qrel::ExistentialProbabilityFptras(Query(), db, {}, options);
    benchmark::DoNotOptimize(result);
    samples = result->samples;
  }
  state.counters["inv_eps"] = static_cast<double>(state.range(0));
  state.counters["samples"] = static_cast<double>(samples);
}
BENCHMARK(BM_E5_ScalingInInverseEpsilon)->RangeMultiplier(2)->Range(4, 64)
    ->Unit(benchmark::kMillisecond);

void BM_E5_ScalingInInverseDelta(benchmark::State& state) {
  double delta = 1.0 / static_cast<double>(state.range(0));
  qrel::UnreliableDatabase db = FullyUncertainRing(24);
  qrel::ApproxOptions options;
  options.epsilon = 0.05;
  options.delta = delta;
  options.seed = 17;
  uint64_t samples = 0;
  for (auto _ : state) {
    qrel::StatusOr<qrel::ApproxResult> result =
        qrel::ExistentialProbabilityFptras(Query(), db, {}, options);
    benchmark::DoNotOptimize(result);
    samples = result->samples;
  }
  state.counters["inv_delta"] = static_cast<double>(state.range(0));
  state.counters["samples"] = static_cast<double>(samples);
}
BENCHMARK(BM_E5_ScalingInInverseDelta)->RangeMultiplier(4)->Range(4, 4096)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
