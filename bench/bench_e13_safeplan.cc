// E13 — the safe-plan dichotomy in practice: exact reliability at scales
// where world enumeration is impossible.
//
// The paper's Theorem 4.2 pays 2^u for exactness and Proposition 3.2 says
// that in general nothing better exists; the safe-plan rung (DESIGN.md
// "Safe-plan analysis and lifted inference") answers the safe self-join-
// free conjunctive subclass exactly in polynomial time. This harness
// drives both sides of that dichotomy through the engine:
//
//   safe_sweep      — one safe query over graph databases with u up to
//                     hundreds of uncertain atoms (2^u worlds ≫ anything
//                     enumerable): every answer must come from the
//                     extensional rung, exact, with zero samples, and the
//                     per-point latency/plan-op counts trace the
//                     polynomial cost curve.
//   crosscheck      — small instances where 2^u enumeration IS feasible:
//                     the extensional rational must equal the Thm 4.2
//                     rational bit for bit.
//   unsafe_control  — the same-shape query with a self-join at the same
//                     large u: force_exact must refuse (enumeration
//                     infeasible) and automatic mode must fall back to
//                     sampling — demonstrating that the exactness really
//                     comes from safety, not from instance luck.
//
// Scenario harness in the E12 style, not a google-benchmark binary:
// invariant violations exit nonzero, --smoke shrinks the sweep for CI,
// --json[=PATH] writes BENCH_e13_safeplan.json, and --baseline=PATH gates
// on invariants (scenarios present, sweep not shrunk, zero samples on the
// safe side, zero cross-check mismatches) — never on latency.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "qrel/core/reliability.h"
#include "qrel/engine/engine.h"
#include "qrel/logic/parser.h"
#include "qrel/prob/text_format.h"

namespace {

using Clock = std::chrono::steady_clock;

int g_failures = 0;

void Check(bool condition, const std::string& message) {
  if (!condition) {
    ++g_failures;
    std::fprintf(stderr, "INVARIANT VIOLATED: %s\n", message.c_str());
  }
}

// A ring on n elements where every edge and every S row is uncertain
// (the e12 recipe): no query over E or S has a certain witness, so
// nothing short-circuits — the safe rung really multiplies marginals and
// the sampling rungs really sample. u = 2n uncertain atoms.
qrel::ReliabilityEngine RingEngine(int n) {
  std::string udb = "universe " + std::to_string(n) +
                    "\nrelation E 2\nrelation S 1\n";
  for (int i = 0; i < n; ++i) {
    udb += "fact E " + std::to_string(i) + " " +
           std::to_string((i + 1) % n) + " err=1/4\n";
    if (i % 3 == 0) {
      udb += "fact S " + std::to_string(i) + " err=1/5\n";
    } else {
      udb += "absent S " + std::to_string(i) + " err=1/7\n";
    }
  }
  qrel::StatusOr<qrel::UnreliableDatabase> database = qrel::ParseUdb(udb);
  if (!database.ok()) {
    std::fprintf(stderr, "bench database: %s\n",
                 database.status().ToString().c_str());
    std::exit(2);
  }
  return qrel::ReliabilityEngine(std::move(database).value());
}

// Safe: x is in both atoms, so the plan is
// proj x . (S(x) * proj y . E(x, y)).
constexpr char kSafeQuery[] = "exists x y . E(x, y) & S(x)";
// Unsafe sibling: the S self-join blocks the safe-plan rules.
constexpr char kUnsafeQuery[] = "exists x y . E(x, y) & S(x) & S(y)";

struct ScenarioMetrics {
  std::string name;
  uint64_t points = 0;        // sweep points (or cross-checked instances)
  uint64_t max_uncertain = 0; // largest u exercised
  uint64_t samples = 0;       // total samples drawn on the exact side
  uint64_t mismatches = 0;    // cross-check or invariant mismatches
  double elapsed_s = 0.0;
  double max_point_ms = 0.0;  // slowest single safe evaluation
};

ScenarioMetrics RunSafeSweep(bool smoke) {
  ScenarioMetrics metrics;
  metrics.name = "safe_sweep";
  std::vector<int> sweep = smoke ? std::vector<int>{8, 16, 40, 80}
                                 : std::vector<int>{8, 16, 32, 64, 128, 256};
  auto scenario_start = Clock::now();
  std::printf("safe_sweep: %s\n", kSafeQuery);
  for (int n : sweep) {
    // u = 2n: from n = 32 on, u > 62 and Thm 4.2 enumeration is not even
    // representable, let alone feasible.
    qrel::ReliabilityEngine engine = RingEngine(n);
    uint64_t u = engine.database().UncertainEntries().size();
    auto start = Clock::now();
    qrel::StatusOr<qrel::EngineReport> report = engine.Run(kSafeQuery);
    double ms = std::chrono::duration<double, std::milli>(Clock::now() -
                                                          start)
                    .count();
    Check(report.ok(), "safe_sweep n=" + std::to_string(n) + ": " +
                           report.status().ToString());
    if (!report.ok()) {
      continue;
    }
    bool point_ok =
        report->is_exact && report->samples == 0 &&
        report->exact_reliability.has_value() &&
        report->method.rfind("safe-plan extensional evaluation", 0) == 0 &&
        report->reliability >= 0.0 && report->reliability <= 1.0;
    Check(point_ok, "safe_sweep n=" + std::to_string(n) +
                        ": not an exact sample-free extensional answer "
                        "(method \"" +
                        report->method + "\", samples " +
                        std::to_string(report->samples) + ")");
    if (!point_ok) {
      ++metrics.mismatches;
    }
    metrics.samples += report->samples;
    ++metrics.points;
    if (u > metrics.max_uncertain) {
      metrics.max_uncertain = u;
    }
    if (ms > metrics.max_point_ms) {
      metrics.max_point_ms = ms;
    }
    std::printf("  n %4d  u %4llu  R %.8f  %8.2f ms  %s\n", n,
                static_cast<unsigned long long>(u), report->reliability, ms,
                report->method.c_str());
  }
  Check(metrics.max_uncertain > 62,
        "safe_sweep: never left the enumerable regime (max u " +
            std::to_string(metrics.max_uncertain) + ")");
  metrics.elapsed_s =
      std::chrono::duration<double>(Clock::now() - scenario_start).count();
  return metrics;
}

ScenarioMetrics RunCrosscheck(bool smoke) {
  ScenarioMetrics metrics;
  metrics.name = "crosscheck";
  std::vector<int> sweep = smoke ? std::vector<int>{5, 7}
                                 : std::vector<int>{5, 7, 9};
  auto scenario_start = Clock::now();
  qrel::StatusOr<qrel::FormulaPtr> query = qrel::ParseFormula(kSafeQuery);
  Check(query.ok(), "crosscheck: query must parse");
  for (int n : sweep) {
    // u = 2n stays small enough here that 2^u enumeration is feasible.
    qrel::ReliabilityEngine engine = RingEngine(n);
    qrel::StatusOr<qrel::EngineReport> lifted = engine.Run(kSafeQuery);
    qrel::StatusOr<qrel::ReliabilityReport> enumerated =
        qrel::ExactReliability(*query, engine.database());
    Check(lifted.ok() && enumerated.ok(),
          "crosscheck n=" + std::to_string(n) + ": both paths must run");
    if (!lifted.ok() || !enumerated.ok()) {
      continue;
    }
    Check(lifted->exact_reliability.has_value() &&
              lifted->method.rfind("safe-plan extensional evaluation", 0) ==
                  0,
          "crosscheck n=" + std::to_string(n) + ": engine left the "
          "extensional rung");
    bool equal = lifted->exact_reliability.has_value() &&
                 *lifted->exact_reliability == enumerated->reliability;
    Check(equal, "crosscheck n=" + std::to_string(n) +
                     ": extensional != enumeration");
    if (!equal) {
      ++metrics.mismatches;
    }
    metrics.samples += lifted->samples;
    ++metrics.points;
    uint64_t u = engine.database().UncertainEntries().size();
    if (u > metrics.max_uncertain) {
      metrics.max_uncertain = u;
    }
  }
  metrics.elapsed_s =
      std::chrono::duration<double>(Clock::now() - scenario_start).count();
  std::printf("crosscheck: %llu instances bit-identical to Thm 4.2\n",
              static_cast<unsigned long long>(metrics.points));
  return metrics;
}

ScenarioMetrics RunUnsafeControl(bool smoke) {
  ScenarioMetrics metrics;
  metrics.name = "unsafe_control";
  auto scenario_start = Clock::now();
  int n = smoke ? 40 : 64;
  qrel::ReliabilityEngine engine = RingEngine(n);
  metrics.max_uncertain = engine.database().UncertainEntries().size();

  qrel::EngineOptions exact_only;
  exact_only.force_exact = true;
  qrel::StatusOr<qrel::EngineReport> refused =
      engine.Run(kUnsafeQuery, exact_only);
  Check(!refused.ok(),
        "unsafe_control: force_exact must refuse the self-join at u=" +
            std::to_string(metrics.max_uncertain));
  if (refused.ok()) {
    ++metrics.mismatches;
  }
  ++metrics.points;

  qrel::EngineOptions sampled;
  sampled.seed = 17;
  sampled.epsilon = 0.1;
  sampled.delta = 0.1;
  qrel::StatusOr<qrel::EngineReport> automatic =
      engine.Run(kUnsafeQuery, sampled);
  Check(automatic.ok(), "unsafe_control: automatic mode must still answer");
  if (automatic.ok()) {
    Check(!automatic->is_exact && automatic->samples > 0,
          "unsafe_control: the unsafe sibling cannot be exact at this u");
    if (automatic->is_exact) {
      ++metrics.mismatches;
    }
    metrics.samples += automatic->samples;
  }
  ++metrics.points;
  metrics.elapsed_s =
      std::chrono::duration<double>(Clock::now() - scenario_start).count();
  std::printf("unsafe_control: %s refused exact, sampled %llu\n",
              kUnsafeQuery,
              static_cast<unsigned long long>(metrics.samples));
  return metrics;
}

void AppendJson(std::string* out, const ScenarioMetrics& m, bool last) {
  char buffer[512];
  std::snprintf(
      buffer, sizeof(buffer),
      "    {\"name\": \"%s\", \"points\": %llu, \"max_uncertain\": %llu, "
      "\"samples\": %llu, \"mismatches\": %llu, \"elapsed_s\": %.4f, "
      "\"max_point_ms\": %.3f}%s\n",
      m.name.c_str(), static_cast<unsigned long long>(m.points),
      static_cast<unsigned long long>(m.max_uncertain),
      static_cast<unsigned long long>(m.samples),
      static_cast<unsigned long long>(m.mismatches), m.elapsed_s,
      m.max_point_ms, last ? "" : ",");
  out->append(buffer);
}

// Extracts `"key": <u64>` from one scenario's JSON line; 0 when absent.
uint64_t FindU64(const std::string& line, const std::string& key) {
  std::string needle = "\"" + key + "\": ";
  size_t pos = line.find(needle);
  if (pos == std::string::npos) {
    return 0;
  }
  return std::strtoull(line.c_str() + pos + needle.size(), nullptr, 10);
}

// Invariant gate against a committed --json report: every baseline
// scenario still runs, the sweep has not shrunk (when the smoke flag
// matches), the safe side still draws zero samples, and no mismatches
// appeared. Latency fields are trend data, never gated.
void CheckAgainstBaseline(const std::string& baseline_path, bool smoke,
                          const std::vector<ScenarioMetrics>& results) {
  std::FILE* f = std::fopen(baseline_path.c_str(), "rb");
  if (f == nullptr) {
    ++g_failures;
    std::fprintf(stderr, "cannot read baseline %s\n", baseline_path.c_str());
    return;
  }
  std::string contents;
  char buffer[4096];
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    contents.append(buffer, n);
  }
  std::fclose(f);

  const bool baseline_smoke =
      contents.find("\"smoke\": true") != std::string::npos;
  size_t pos = 0;
  int scenarios_checked = 0;
  while ((pos = contents.find("{\"name\": \"", pos)) != std::string::npos) {
    size_t name_start = pos + std::strlen("{\"name\": \"");
    size_t name_end = contents.find('"', name_start);
    size_t line_end = contents.find('}', pos);
    if (name_end == std::string::npos || line_end == std::string::npos) {
      break;
    }
    std::string name = contents.substr(name_start, name_end - name_start);
    std::string line = contents.substr(pos, line_end - pos);
    pos = line_end;

    const ScenarioMetrics* current = nullptr;
    for (const ScenarioMetrics& m : results) {
      if (m.name == name) {
        current = &m;
      }
    }
    Check(current != nullptr,
          "baseline: scenario \"" + name + "\" no longer runs");
    if (current == nullptr) {
      continue;
    }
    ++scenarios_checked;
    if (baseline_smoke == smoke) {
      Check(current->points >= FindU64(line, "points"),
            "baseline: scenario \"" + name + "\" sweep shrank");
      Check(current->max_uncertain >= FindU64(line, "max_uncertain"),
            "baseline: scenario \"" + name + "\" retreated to smaller u");
    }
    if (name != "unsafe_control") {
      Check(current->samples == 0,
            "baseline: scenario \"" + name + "\" started sampling");
    }
    Check(current->mismatches == 0,
          "baseline: scenario \"" + name + "\" has mismatches");
  }
  Check(scenarios_checked > 0,
        "baseline: " + baseline_path + " lists no scenarios");
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path;
  std::string baseline_path;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--json") {
      json_path = "BENCH_e13_safeplan.json";
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(std::strlen("--json="));
    } else if (arg.rfind("--baseline=", 0) == 0) {
      baseline_path = arg.substr(std::strlen("--baseline="));
    } else {
      std::fprintf(stderr,
                   "usage: bench_e13_safeplan [--smoke] [--json[=PATH]] "
                   "[--baseline=PATH]\n");
      return 2;
    }
  }

  std::vector<ScenarioMetrics> results;
  results.push_back(RunSafeSweep(smoke));
  results.push_back(RunCrosscheck(smoke));
  results.push_back(RunUnsafeControl(smoke));

  if (!baseline_path.empty()) {
    CheckAgainstBaseline(baseline_path, smoke, results);
  }

  if (!json_path.empty()) {
    std::string json = "{\n  \"bench\": \"e13_safeplan\",\n  \"smoke\": ";
    json += smoke ? "true" : "false";
    json += ",\n  \"scenarios\": [\n";
    for (size_t i = 0; i < results.size(); ++i) {
      AppendJson(&json, results[i], i + 1 == results.size());
    }
    json += "  ]\n}\n";
    std::FILE* f = std::fopen(json_path.c_str(), "wb");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 2;
    }
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }

  if (g_failures != 0) {
    std::fprintf(stderr, "%d invariant violation(s)\n", g_failures);
    return 1;
  }
  std::printf("all invariants held\n");
  return 0;
}
