// E1 — Proposition 3.1: quantifier-free reliability is polynomial time.
//
// Claim: R_ψ for fixed quantifier-free ψ is computable in time polynomial
// in the database size. Expected shape: runtime grows ≈ n^k (the number of
// tuples) with a constant per-tuple factor 2^{atoms(ψ)}, regardless of how
// many atoms of the database are uncertain.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "qrel/core/reliability.h"
#include "qrel/logic/parser.h"

namespace {

const qrel::FormulaPtr& UnaryQuery() {
  static const qrel::FormulaPtr query =
      *qrel::ParseFormula("S(x) & E(x, x) | !S(x)");
  return query;
}

const qrel::FormulaPtr& BinaryQuery() {
  static const qrel::FormulaPtr query =
      *qrel::ParseFormula("E(x, y) & (S(x) | !S(y))");
  return query;
}

void BM_E1_QfReliability_Unary(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  // Uncertainty scales with the database: one uncertain atom per element.
  qrel::UnreliableDatabase db = qrel_bench::GraphDatabase(n, n, /*seed=*/1);
  uint64_t work = 0;
  for (auto _ : state) {
    qrel::StatusOr<qrel::ReliabilityReport> report =
        qrel::QuantifierFreeReliability(UnaryQuery(), db);
    benchmark::DoNotOptimize(report);
    work = report->work_units;
  }
  state.counters["n"] = n;
  state.counters["work_units"] = static_cast<double>(work);
  state.SetComplexityN(n);
}
BENCHMARK(BM_E1_QfReliability_Unary)->RangeMultiplier(2)->Range(8, 512)
    ->Complexity(benchmark::oN);

void BM_E1_QfReliability_Binary(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  qrel::UnreliableDatabase db = qrel_bench::GraphDatabase(n, n, /*seed=*/2);
  uint64_t work = 0;
  for (auto _ : state) {
    qrel::StatusOr<qrel::ReliabilityReport> report =
        qrel::QuantifierFreeReliability(BinaryQuery(), db);
    benchmark::DoNotOptimize(report);
    work = report->work_units;
  }
  state.counters["n"] = n;
  state.counters["work_units"] = static_cast<double>(work);
  state.SetComplexityN(n);
}
BENCHMARK(BM_E1_QfReliability_Binary)->RangeMultiplier(2)->Range(8, 128)
    ->Complexity(benchmark::oNSquared);

}  // namespace

BENCHMARK_MAIN();
